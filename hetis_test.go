package hetis

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	// The README quickstart, end to end.
	cluster := PaperCluster()
	cfg := DefaultEngineConfig(Llama13B, cluster)
	reqs := PoissonTrace(ShareGPT, 4, 15, 1)
	plan, err := PlanDeployment(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewHetisEngine(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(reqs) {
		t.Fatalf("completed %d of %d", res.Completed, len(reqs))
	}
	if res.Recorder.TTFTSummary().P95 <= 0 {
		t.Fatal("no TTFT recorded")
	}
}

func TestBaselineConstructors(t *testing.T) {
	cfg := DefaultEngineConfig(Llama13B, PaperCluster())
	if _, err := NewSplitwiseEngine(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := NewHexGenEngine(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLookups(t *testing.T) {
	if _, err := GPUByName("a100"); err != nil {
		t.Error(err)
	}
	if _, err := ModelByName("llama-70b"); err != nil {
		t.Error(err)
	}
	if _, err := DatasetByName("LB"); err != nil {
		t.Error(err)
	}
}

func TestCustomClusterAndPlan(t *testing.T) {
	cluster, err := NewClusterBuilder(LAN100G).
		AddHost("big", NVLink3, A100, 2).
		AddHost("small", PCIe3x16, T4, 2).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	wl := PlanWorkload{DecodeBatch: 16, AvgContext: 500, PrefillBatch: 2, AvgPrompt: 300, AvgOutput: 150}
	plan, err := SearchPlan(cluster, Llama13B, wl, DefaultPlanOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Instances) == 0 {
		t.Fatal("empty plan")
	}
}

func TestProfileClusterFacade(t *testing.T) {
	prof, err := ProfileCluster(OPT30B, PaperCluster(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Attn) != PaperCluster().NumDevices() {
		t.Fatalf("profile covers %d devices", len(prof.Attn))
	}
}

func TestExperimentRegistryViaFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	tab, err := RunExperiment("table1", ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"A100", "3090", "P100"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestEstimatorFacade(t *testing.T) {
	est := NewEstimator(Llama70B)
	if est.DenseLayerTime(A100, 64, 1) <= 0 {
		t.Fatal("estimator returned non-positive time")
	}
}
