package hetis_test

import (
	"fmt"
	"log"

	"hetis"
)

// Example is the package doc-comment quickstart, kept compiling and
// producing the documented output: plan a Hetis deployment for a trace on
// the paper cluster and serve it.
func Example() {
	cluster := hetis.PaperCluster()
	cfg := hetis.DefaultEngineConfig(hetis.Llama13B, cluster)
	reqs := hetis.PoissonTrace(hetis.ShareGPT, 5, 60, 1)
	plan, err := hetis.PlanDeployment(cfg, reqs)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := hetis.NewHetisEngine(cfg, plan)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(reqs, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d/%d requests, p95 TTFT %.2fs\n",
		res.Completed, len(reqs), res.Recorder.TTFTSummary().P95)
	// Output:
	// completed 301/301 requests, p95 TTFT 0.53s
}

// ExampleRunGrid sweeps engines × rates concurrently on the worker pool;
// the table is ordered by grid key, independent of completion order.
func ExampleRunGrid() {
	tab, err := hetis.RunGrid(hetis.GridSpec{
		Engines:  []string{"hetis", "splitwise"},
		Datasets: []string{"HE"},
		Rates:    []float64{2, 8},
		Duration: 5,
	}, hetis.SweepOptions{Jobs: 4})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range tab.Rows {
		fmt.Println(row[2], row[3], row[4], "->", row[6], "completed")
	}
	// Output:
	// HE 2 hetis -> 14 completed
	// HE 2 splitwise -> 14 completed
	// HE 8 hetis -> 36 completed
	// HE 8 splitwise -> 36 completed
}

// ExampleRunScenarios pools the scenario catalog over workers; rows follow
// catalog order (scenarios as named, engines in spec order) for any job
// count.
func ExampleRunScenarios() {
	tab, err := hetis.RunScenarios([]string{"bursty", "steady"}, true, 0, hetis.SweepOptions{Jobs: 4})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range tab.Rows {
		fmt.Println(row[0], row[1], "tenant", row[2])
	}
	// Output:
	// bursty hetis tenant all
	// bursty hexgen tenant all
	// bursty splitwise tenant all
	// steady hetis tenant all
	// steady hexgen tenant all
	// steady splitwise tenant all
}
