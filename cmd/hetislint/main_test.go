package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListDescribesEveryAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	out := stdout.String()
	for _, name := range []string{"maprange", "noglobalentropy", "handlelifetime", "sinkdiscipline"} {
		if !strings.Contains(out, name+" (suppress: //hetis:") {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out)
		}
	}
}

func TestBadFlagIsParseError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr)
	if !errors.Is(err, errParse) {
		t.Fatalf("err = %v, want errParse", err)
	}
}

func TestCleanPackageExitsQuietly(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// The driver resolves ./ patterns against the test's working
	// directory, so this lints just cmd/hetislint itself.
	if err := run([]string{"./..."}, &stdout, &stderr); err != nil {
		t.Fatalf("run ./...: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run wrote diagnostics:\n%s", stdout.String())
	}
}

func TestFindingsFailWithDiagnostics(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tmpmod\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "internal", "engine", "bad.go"), `package engine

func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
`)
	t.Chdir(dir)
	var stdout, stderr bytes.Buffer
	err := run([]string{"./..."}, &stdout, &stderr)
	if !errors.Is(err, errFindings) {
		t.Fatalf("err = %v, want errFindings\nstdout:\n%s", err, stdout.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[maprange]") || !strings.Contains(out, "bad.go:5") {
		t.Errorf("diagnostics missing the maprange finding at bad.go:5:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "1 finding(s)") {
		t.Errorf("stderr missing the findings summary:\n%s", stderr.String())
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
