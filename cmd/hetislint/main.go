// Command hetislint runs hetis' determinism-and-invariant lint suite
// (internal/analysis) over the module: unordered map iteration in
// deterministic packages, wall-clock/global-rand/env entropy in sim
// paths, sim.Handle lifetime misuse, and metrics-sink / trace-log
// discipline, plus an audit of the //hetis: suppression directives
// themselves.
//
// Usage:
//
//	hetislint ./...                  # whole module (the CI gate)
//	hetislint ./internal/engine      # one package
//	hetislint -list                  # describe the analyzers
//
// Exit status is 0 when the tree is clean, 1 when there are findings.
// The analyzers mirror golang.org/x/tools/go/analysis; if x/tools ever
// becomes a dependency they can be rehosted on it verbatim and driven by
// `go vet -vettool=$(which hetislint)` — see doc/ANALYSIS.md.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hetis/internal/analysis"
)

// errParse marks flag-parse failures the FlagSet already reported.
var errParse = errors.New("flag parse error")

// errFindings marks a clean run that found problems: reported already,
// exit 1 without the "hetislint:" banner.
var errFindings = errors.New("findings reported")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		// -h prints usage and succeeds, matching flag.ExitOnError.
	case errors.Is(err, errParse):
		os.Exit(2) // the FlagSet already reported the mistake
	case errors.Is(err, errFindings):
		os.Exit(1) // the diagnostics are the report
	default:
		fmt.Fprintf(os.Stderr, "hetislint: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of main.
func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hetislint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "describe the analyzers and exit")
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errParse, err)
	}

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%s (suppress: //hetis:%s <reason>)\n    %s\n", a.Name, a.Directive, a.Doc)
		}
		return nil
	}

	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return err
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	resolved := make([]string, len(patterns))
	for i, p := range patterns {
		resolved[i], err = resolvePattern(loader, root, cwd, p)
		if err != nil {
			return err
		}
	}

	pkgs, err := loader.Load(resolved...)
	if err != nil {
		return err
	}
	diags := analysis.RunSuite(suite, pkgs)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Fprintf(stdout, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "hetislint: %d finding(s)\n", len(diags))
		return errFindings
	}
	return nil
}

// resolvePattern turns a ./-relative pattern into a module import path
// (keeping any trailing /...); bare patterns pass through as import
// paths.
func resolvePattern(loader *analysis.Loader, root, cwd, pat string) (string, error) {
	if !strings.HasPrefix(pat, "./") && pat != "." {
		return pat, nil
	}
	base, rec := pat, false
	if b, ok := strings.CutSuffix(pat, "/..."); ok {
		base, rec = b, true
	}
	rel, err := filepath.Rel(root, filepath.Join(cwd, base))
	if err != nil {
		return "", err
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("pattern %q escapes the module rooted at %s", pat, root)
	}
	path := loader.ModulePath
	if rel != "." {
		path += "/" + filepath.ToSlash(rel)
	}
	if rec {
		path += "/..."
	}
	return path, nil
}
