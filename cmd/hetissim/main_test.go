package main

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestListFirstLine(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(out.String(), "\n")
	if first != "available experiments:" {
		t.Errorf("first line = %q", first)
	}
	if !strings.Contains(out.String(), "  table1\n") {
		t.Error("-list output missing table1")
	}
}

func TestNoExpIsUsageError(t *testing.T) {
	var out bytes.Buffer
	err := run(nil, &out, io.Discard)
	if !errors.Is(err, errUsage) {
		t.Fatalf("err = %v, want errUsage", err)
	}
	// The experiment list still prints, so the user sees what to pass.
	if !strings.Contains(out.String(), "available experiments:") {
		t.Error("usage path should list experiments")
	}
}

func TestUnknownExperiment(t *testing.T) {
	err := run([]string{"-exp", "fig99"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "fig99") {
		t.Errorf("err = %v, want unknown-experiment naming fig99", err)
	}
}
