package main

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestListFirstLine(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(out.String(), "\n")
	if first != "available experiments:" {
		t.Errorf("first line = %q", first)
	}
	if !strings.Contains(out.String(), "  table1\n") {
		t.Error("-list output missing table1")
	}
}

func TestNoExpIsUsageError(t *testing.T) {
	var out bytes.Buffer
	err := run(nil, &out, io.Discard)
	if !errors.Is(err, errUsage) {
		t.Fatalf("err = %v, want errUsage", err)
	}
	// The experiment list still prints, so the user sees what to pass.
	if !strings.Contains(out.String(), "available experiments:") {
		t.Error("usage path should list experiments")
	}
}

func TestUnknownExperiment(t *testing.T) {
	err := run([]string{"-exp", "fig99"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "fig99") {
		t.Errorf("err = %v, want unknown-experiment naming fig99", err)
	}
}

func TestScenarioStreamMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "steady", "-stream", "-windows", "5", "-quick"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "=== scenarios, streaming") {
		t.Errorf("missing streaming banner:\n%s", s)
	}
	if !strings.Contains(s, "=== windows steady/hetis (5s buckets) ===") {
		t.Errorf("missing windows table:\n%s", s)
	}
}

func TestScenarioFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "fig8", "-scenario", "steady"},
		{"-exp", "fig8", "-stream"},
		{"-scenario", "steady", "-windows", "5"},
	} {
		if err := run(args, io.Discard, io.Discard); !errors.Is(err, errUsage) {
			t.Errorf("run(%v) err = %v, want errUsage", args, err)
		}
	}
}
