// Command hetissim regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	hetissim -exp fig8            # one experiment
//	hetissim -exp all -quick     # everything, at reduced scale
//	hetissim -list               # show experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hetis"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or 'all'")
	quick := flag.Bool("quick", false, "reduced-scale traces for fast runs")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range hetis.ExperimentIDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nerror: -exp is required (or use -list)")
			os.Exit(2)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = hetis.ExperimentIDs()
	}
	opts := hetis.ExperimentOptions{Quick: *quick}
	for _, id := range ids {
		start := time.Now()
		tab, err := hetis.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hetissim: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.2fs) ===\n%s\n", id, time.Since(start).Seconds(), tab)
	}
}
