// Command hetissim regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	hetissim -exp fig8            # one experiment
//	hetissim -exp all -quick     # everything, at reduced scale
//	hetissim -list               # show experiment ids
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hetis"
)

// errUsage marks command-line mistakes (exit code 2, like flag errors);
// run reports them to stderr itself.
var errUsage = errors.New("usage: -exp is required (or use -list)")

// errParse marks flag-parse failures the FlagSet already reported.
var errParse = errors.New("flag parse error")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		// -h prints usage and succeeds, matching flag.ExitOnError.
	case errors.Is(err, errParse), errors.Is(err, errUsage):
		os.Exit(2) // already reported
	default:
		fmt.Fprintf(os.Stderr, "hetissim: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of main.
func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hetissim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "", "experiment id (see -list), or 'all'")
	quick := fs.Bool("quick", false, "reduced-scale traces for fast runs")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errParse, err)
	}

	if *list || *exp == "" {
		fmt.Fprintln(stdout, "available experiments:")
		for _, id := range hetis.ExperimentIDs() {
			fmt.Fprintf(stdout, "  %s\n", id)
		}
		if *exp == "" && !*list {
			fmt.Fprintln(stderr, "\nerror: -exp is required (or use -list)")
			return errUsage
		}
		return nil
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = hetis.ExperimentIDs()
	}
	opts := hetis.ExperimentOptions{Quick: *quick}
	for _, id := range ids {
		start := time.Now()
		tab, err := hetis.RunExperiment(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintf(stdout, "=== %s (%.2fs) ===\n%s\n", id, time.Since(start).Seconds(), tab)
	}
	return nil
}
