// Command hetissim regenerates the paper's evaluation tables and figures,
// and serves registered scenarios directly.
//
// Usage:
//
//	hetissim -exp fig8            # one experiment
//	hetissim -exp all -quick     # everything, at reduced scale
//	hetissim -scenario diurnal   # one scenario, exact measurement
//	hetissim -scenario megascale -stream             # million requests, O(1) metric memory
//	hetissim -scenario diurnal -stream -windows 5    # plus 5s windowed series
//	hetissim -list               # show experiment ids and scenarios
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"hetis"
)

// errUsage marks command-line mistakes (exit code 2, like flag errors);
// run reports them to stderr itself.
var errUsage = errors.New("usage: one of -exp or -scenario is required (or use -list)")

// errParse marks flag-parse failures the FlagSet already reported.
var errParse = errors.New("flag parse error")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		// -h prints usage and succeeds, matching flag.ExitOnError.
	case errors.Is(err, errParse), errors.Is(err, errUsage):
		os.Exit(2) // already reported
	default:
		fmt.Fprintf(os.Stderr, "hetissim: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of main.
func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hetissim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "", "experiment id (see -list), or 'all'")
	scen := fs.String("scenario", "", "scenario names, comma-separated, or 'all' (the non-heavy catalog)")
	quick := fs.Bool("quick", false, "reduced-scale traces for fast runs")
	stream := fs.Bool("stream", false, "with -scenario: measure through constant-memory streaming sinks")
	windows := fs.Float64("windows", 0, "with -scenario -stream: also print windowed time series with this bucket width in seconds")
	shardWorkers := fs.Int("shard-workers", 0, "max concurrent shards within a fleet scenario (0 = one per CPU; output is identical at every value)")
	list := fs.Bool("list", false, "list experiment ids and scenarios, then exit")
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errParse, err)
	}

	if *list || (*exp == "" && *scen == "") {
		fmt.Fprintln(stdout, "available experiments:")
		for _, id := range hetis.ExperimentIDs() {
			fmt.Fprintf(stdout, "  %s\n", id)
		}
		fmt.Fprintln(stdout, "available scenarios:")
		for _, name := range hetis.ScenarioNames() {
			fmt.Fprintf(stdout, "  %s%s\n", name, scenarioTag(name))
		}
		if *exp == "" && *scen == "" && !*list {
			fmt.Fprintln(stderr, "\nerror: one of -exp or -scenario is required (or use -list)")
			return errUsage
		}
		return nil
	}
	if *exp != "" && *scen != "" {
		fmt.Fprintln(stderr, "error: -exp and -scenario are mutually exclusive")
		return errUsage
	}
	if (*stream || *windows != 0) && *scen == "" {
		fmt.Fprintln(stderr, "error: -stream and -windows apply to -scenario runs")
		return errUsage
	}
	if *windows != 0 && (!*stream || *windows < 0) {
		fmt.Fprintln(stderr, "error: -windows needs -stream and a positive bucket width")
		return errUsage
	}

	if *scen != "" {
		return runScenarios(stdout, strings.Split(*scen, ","), *quick, *stream, *windows, *shardWorkers)
	}
	if *shardWorkers != 0 {
		fmt.Fprintln(stderr, "error: -shard-workers applies to -scenario runs")
		return errUsage
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = hetis.ExperimentIDs()
	}
	opts := hetis.ExperimentOptions{Quick: *quick}
	for _, id := range ids {
		start := time.Now()
		tab, err := hetis.RunExperiment(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintf(stdout, "=== %s (%.2fs) ===\n%s\n", id, time.Since(start).Seconds(), tab)
	}
	return nil
}

// runScenarios serves the named scenarios, exact or streaming, printing
// the catalog-ordered table and (with windows > 0) each run's windowed
// time series.
func runScenarios(stdout io.Writer, names []string, quick, stream bool, windows float64, shardWorkers int) error {
	start := time.Now()
	pool := hetis.SweepOptions{ShardWorkers: shardWorkers}
	if !stream {
		tab, err := hetis.RunScenarios(names, quick, 0, pool)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "=== scenarios (%.2fs) ===\n%s", time.Since(start).Seconds(), tab)
		return nil
	}
	tab, wins, err := hetis.RunScenariosStream(names, quick, 0, windows, pool)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "=== scenarios, streaming (%.2fs) ===\n%s", time.Since(start).Seconds(), tab)
	for _, w := range wins {
		fmt.Fprintf(stdout, "\n=== windows %s/%s (%gs buckets) ===\n%s", w.Scenario, w.Engine, windows, w.Table)
	}
	return nil
}

// scenarioTag annotates a -list row for scenarios the catalog-wide
// expansions skip: heavy (cost) and chaotic (extra table columns).
func scenarioTag(name string) string {
	s, err := hetis.ScenarioByName(name)
	switch {
	case err != nil:
		return ""
	case s.Heavy && s.Sharded():
		return " [heavy] [fleet]"
	case s.Heavy:
		return " [heavy]"
	case s.Sharded():
		return " [fleet]"
	case s.Chaotic():
		return " [chaos]"
	}
	return ""
}
