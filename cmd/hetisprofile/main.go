// Command hetisprofile runs the Profiler (§5.1) and prints the fitted
// linear models per device: attention time τ = a·h + b·g + c and transfer
// overhead ρ = γ·d + β, plus the held-out fit accuracy.
//
// Usage:
//
//	hetisprofile -model OPT-30B
//	hetisprofile -model Llama-70B -primary 0
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"hetis"
)

// errParse marks flag-parse failures the FlagSet already reported.
var errParse = errors.New("flag parse error")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		// -h prints usage and succeeds, matching flag.ExitOnError.
	case errors.Is(err, errParse):
		os.Exit(2) // the FlagSet already reported the mistake
	default:
		fmt.Fprintf(os.Stderr, "hetisprofile: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of main.
func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hetisprofile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modelName := fs.String("model", "OPT-30B", "model preset name")
	primary := fs.Int("primary", 0, "device id of the primary worker (network reference)")
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errParse, err)
	}

	m, err := hetis.ModelByName(*modelName)
	if err != nil {
		return err
	}
	cluster := hetis.PaperCluster()
	prof, err := hetis.ProfileCluster(m, cluster, hetis.DeviceID(*primary))
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "model %s on %s (primary device %d)\n\n", m, cluster, *primary)
	fmt.Fprintf(stdout, "%-10s %-14s %-14s %-12s %-10s %-14s %-12s %-8s\n",
		"device", "a (s/head)", "b (s/byte)", "c (s)", "fit(%)", "γ (s/byte)", "β (s)", "net(%)")
	for _, dev := range cluster.Devices {
		am := prof.Attn[dev.ID]
		nm := prof.Net[dev.ID]
		fmt.Fprintf(stdout, "%-10s %-14.3e %-14.3e %-12.3e %-10.1f %-14.3e %-12.3e %-8.1f\n",
			dev.String(), am.A, am.B, am.C, prof.AttnAccuracy[dev.ID]*100,
			nm.Gamma, nm.Beta, prof.NetAccuracy[dev.ID]*100)
	}
	return nil
}
