// Command hetisprofile runs the Profiler (§5.1) and prints the fitted
// linear models per device: attention time τ = a·h + b·g + c and transfer
// overhead ρ = γ·d + β, plus the held-out fit accuracy.
//
// Usage:
//
//	hetisprofile -model OPT-30B
//	hetisprofile -model Llama-70B -primary 0
package main

import (
	"flag"
	"fmt"
	"os"

	"hetis"
)

func main() {
	modelName := flag.String("model", "OPT-30B", "model preset name")
	primary := flag.Int("primary", 0, "device id of the primary worker (network reference)")
	flag.Parse()

	m, err := hetis.ModelByName(*modelName)
	if err != nil {
		fatal(err)
	}
	cluster := hetis.PaperCluster()
	prof, err := hetis.ProfileCluster(m, cluster, hetis.DeviceID(*primary))
	if err != nil {
		fatal(err)
	}

	fmt.Printf("model %s on %s (primary device %d)\n\n", m, cluster, *primary)
	fmt.Printf("%-10s %-14s %-14s %-12s %-10s %-14s %-12s %-8s\n",
		"device", "a (s/head)", "b (s/byte)", "c (s)", "fit(%)", "γ (s/byte)", "β (s)", "net(%)")
	for _, dev := range cluster.Devices {
		am := prof.Attn[dev.ID]
		nm := prof.Net[dev.ID]
		fmt.Printf("%-10s %-14.3e %-14.3e %-12.3e %-10.1f %-14.3e %-12.3e %-8.1f\n",
			dev.String(), am.A, am.B, am.C, prof.AttnAccuracy[dev.ID]*100,
			nm.Gamma, nm.Beta, prof.NetAccuracy[dev.ID]*100)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hetisprofile: %v\n", err)
	os.Exit(1)
}
