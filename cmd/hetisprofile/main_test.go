package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestProfileFirstLine(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "OPT-13B"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(out.String(), "\n")
	if !strings.HasPrefix(first, "model OPT-13B") || !strings.Contains(first, "primary device 0") {
		t.Errorf("first line = %q", first)
	}
	// One fitted row per cluster device plus header lines.
	if lines := strings.Count(out.String(), "\n"); lines < 5 {
		t.Errorf("profile table only has %d lines", lines)
	}
}

func TestUnknownModel(t *testing.T) {
	if err := run([]string{"-model", "no-such"}, io.Discard, io.Discard); err == nil {
		t.Error("unknown model should error")
	}
}
