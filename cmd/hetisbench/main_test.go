package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(args, &out, io.Discard)
	return out.String(), err
}

func TestListShowsExperimentsAndScenarios(t *testing.T) {
	out, err := runBench(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	if first, _, _ := strings.Cut(out, "\n"); first != "available experiments:" {
		t.Errorf("first line = %q", first)
	}
	for _, want := range []string{"  fig8\n", "  scenarios\n", "available scenarios:", "  bursty\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestModeExclusivity(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-exp", "fig8", "-grid", "rate=2"},
		{"-exp", "fig8", "-scenario", "steady"},
		{"-scenario", "steady", "-grid", "rate=2"},
	} {
		if _, err := runBench(t, args...); !errors.Is(err, errUsage) {
			t.Errorf("run(%v) err = %v, want errUsage", args, err)
		}
	}
	if _, err := runBench(t, "stray-arg"); !errors.Is(err, errUsage) {
		t.Errorf("stray non-key=value arg err = %v, want errUsage", err)
	}
}

func TestGridFirstLine(t *testing.T) {
	out, err := runBench(t, "-grid", "engine=splitwise", "rate=2", "duration=5")
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(out, "\n")
	if !strings.HasPrefix(first, "Model") || !strings.Contains(first, "Goodput(req/s)") {
		t.Errorf("grid header = %q", first)
	}
}

func TestScenarioCSVFirstLine(t *testing.T) {
	out, err := runBench(t, "-scenario", "steady", "-quick", "-csv")
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(out, "\n")
	if first != "Scenario,Engine,Tenant,Offered,Completed,Goodput(req/s),Attain(%),TTFT-p95(s),TPOT-p95(s),NormLat-mean(s/tok)" {
		t.Errorf("scenario CSV header = %q", first)
	}
	if _, err := runBench(t, "-scenario", "no-such"); err == nil {
		t.Error("unknown scenario should error")
	}
}

// TestScenarioOutputJobsIndependent is the CLI half of the golden-trace
// acceptance: the full scenario catalog must render byte-identically on a
// serial pool and a racing 8-worker pool.
func TestScenarioOutputJobsIndependent(t *testing.T) {
	one, err := runBench(t, "-scenario", "all", "-jobs", "1")
	if err != nil {
		t.Fatal(err)
	}
	eight, err := runBench(t, "-scenario", "all", "-jobs", "8")
	if err != nil {
		t.Fatal(err)
	}
	if one != eight {
		t.Errorf("-scenario all differs between -jobs 1 and -jobs 8:\n--- jobs=1\n%s--- jobs=8\n%s", one, eight)
	}
}

// TestBenchModeWritesReport smokes the perf-trajectory mode: one quick
// scenario, report written where asked, summary on stdout.
func TestBenchModeWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	stdout, err := runBench(t, "-bench", "-scenario", "steady", "-quick", "-bench-micro=false", "-bench-fleet=false", "-bench-out", out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "suite:") || !strings.Contains(stdout, "steady") {
		t.Errorf("bench summary missing suite line:\n%s", stdout)
	}
	if !strings.Contains(stdout, "lp: ") || !strings.Contains(stdout, "warm-started") ||
		!strings.Contains(stdout, "phase1-skipped") || !strings.Contains(stdout, "in solver") {
		t.Errorf("bench summary missing lp solver line:\n%s", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"schema": "hetis-bench/4"`) {
		t.Errorf("report missing schema:\n%s", data)
	}
	if !strings.Contains(string(data), `"warm_start_rate"`) {
		t.Errorf("report missing lp section:\n%s", data)
	}
	if !strings.Contains(string(data), `"gomaxprocs"`) {
		t.Errorf("report missing gomaxprocs:\n%s", data)
	}

	// A second run using the first as baseline reports a speedup factor.
	out2 := filepath.Join(t.TempDir(), "BENCH2.json")
	stdout2, err := runBench(t, "-bench", "-scenario", "steady", "-quick", "-bench-micro=false", "-bench-fleet=false",
		"-bench-baseline", out, "-bench-out", out2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout2, "speedup vs baseline:") {
		t.Errorf("baseline run missing speedup line:\n%s", stdout2)
	}
}

// TestBenchNoWarmRecordsBaselineMode pins the baseline flag: -bench-nowarm
// runs report no warm starts and mark the document, and a warm run may use
// a nowarm document as its baseline (the whole point of the mode).
func TestBenchNoWarmRecordsBaselineMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH-nowarm.json")
	stdout, err := runBench(t, "-bench", "-scenario", "steady", "-quick", "-bench-micro=false",
		"-bench-sinks=false", "-bench-fleet=false", "-bench-nowarm", "-bench-out", out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "0 warm-started") {
		t.Errorf("-bench-nowarm still warm-started solves:\n%s", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"no_warm": true`) {
		t.Errorf("report not marked no_warm:\n%s", data)
	}
	out2 := filepath.Join(t.TempDir(), "BENCH-warm.json")
	stdout2, err := runBench(t, "-bench", "-scenario", "steady", "-quick", "-bench-micro=false",
		"-bench-sinks=false", "-bench-fleet=false", "-bench-baseline", out, "-bench-out", out2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout2, "speedup vs baseline:") {
		t.Errorf("warm-vs-nowarm baseline comparison missing:\n%s", stdout2)
	}
}

// TestBenchFleetSection smokes the shard-scaling section through the CLI:
// the cheap registered fleet scenario at two worker counts, fleet rows on
// stdout, and the fleet section in the written report.
func TestBenchFleetSection(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH-fleet.json")
	stdout, err := runBench(t, "-bench", "-scenario", "steady", "-quick", "-bench-micro=false", "-bench-sinks=false",
		"-bench-fleet-scenario", "fleet", "-bench-fleet-workers", "1,2", "-bench-out", out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "fleet: fleet/hetis 4 shards") {
		t.Errorf("bench summary missing fleet rows:\n%s", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"fleet"`, `"shard_workers": 1`, `"shard_workers": 2`, `"speedup_vs_1"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("fleet report missing %s:\n%s", want, data)
		}
	}
	if _, err := runBench(t, "-bench", "-quick", "-bench-fleet-workers", "0,x"); err == nil {
		t.Error("bad -bench-fleet-workers should error")
	}
}

// TestScenarioShardWorkersIndependent is the CLI face of the fleet
// determinism contract: a sharded scenario's CSV is byte-identical at
// every -shard-workers value.
func TestScenarioShardWorkersIndependent(t *testing.T) {
	one, err := runBench(t, "-scenario", "fleet", "-quick", "-csv", "-shard-workers", "1")
	if err != nil {
		t.Fatal(err)
	}
	four, err := runBench(t, "-scenario", "fleet", "-quick", "-csv", "-shard-workers", "4")
	if err != nil {
		t.Fatal(err)
	}
	if one != four {
		t.Errorf("-scenario fleet differs between -shard-workers 1 and 4:\n--- 1\n%s--- 4\n%s", one, four)
	}
}

// TestBenchModeComposesWithScenarioOnly ensures -bench plus -scenario is a
// single mode, while -bench plus -exp still violates exclusivity.
func TestBenchModeComposesWithScenarioOnly(t *testing.T) {
	if _, err := runBench(t, "-bench", "-exp", "fig8"); !errors.Is(err, errUsage) {
		t.Errorf("-bench -exp err = %v, want errUsage", err)
	}
}

func TestStreamScenarioWithWindows(t *testing.T) {
	out, err := runBench(t, "-scenario", "steady", "-stream", "-windows", "5", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "=== windows steady/hetis (5s buckets) ===") {
		t.Errorf("missing per-engine windows table:\n%s", out)
	}
	if !strings.Contains(out, "Goodput(req/s)") || !strings.Contains(out, "TTFT-p95(s)") {
		t.Errorf("windows table header missing:\n%s", out)
	}
}

func TestStreamFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-scenario", "steady", "-windows", "5"},         // -windows needs -stream
		{"-grid", "rate=2", "-stream", "-windows", "5"},  // -windows is scenario-only
		{"-exp", "fig8", "-stream"},                      // experiments are exact
		{"-bench", "-stream", "-windows", "5", "-quick"}, // bench has no windows
		{"-scenario", "steady", "-stream", "-windows", "-1"},
	} {
		if _, err := runBench(t, args...); !errors.Is(err, errUsage) {
			t.Errorf("run(%v) err = %v, want errUsage", args, err)
		}
	}
}

func TestStreamGridRuns(t *testing.T) {
	exact, err := runBench(t, "-grid", "engine=hexgen", "rate=2", "duration=5", "-csv")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := runBench(t, "-grid", "engine=hexgen", "rate=2", "duration=5", "-csv", "-stream")
	if err != nil {
		t.Fatal(err)
	}
	// Identity and count columns agree; only latency cells may differ.
	if exact == "" || stream == "" {
		t.Fatal("empty grid output")
	}
	ef := strings.Split(strings.Split(exact, "\n")[1], ",")
	sf := strings.Split(strings.Split(stream, "\n")[1], ",")
	for col := 0; col < 10; col++ {
		if ef[col] != sf[col] {
			t.Errorf("col %d: stream %q exact %q", col, sf[col], ef[col])
		}
	}
}

func TestStreamWindowsCSVKeepsStdoutParseable(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "steady", "-stream", "-windows", "5", "-quick", "-csv"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Contains(s, "===") {
		t.Errorf("-csv stdout contains banner lines:\n%s", s)
	}
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if line != "" && !strings.Contains(line, ",") {
			t.Errorf("-csv stdout has a non-CSV line %q", line)
		}
	}
}
