package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(args, &out, io.Discard)
	return out.String(), err
}

func TestListShowsExperimentsAndScenarios(t *testing.T) {
	out, err := runBench(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	if first, _, _ := strings.Cut(out, "\n"); first != "available experiments:" {
		t.Errorf("first line = %q", first)
	}
	for _, want := range []string{"  fig8\n", "  scenarios\n", "available scenarios:", "  bursty\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestModeExclusivity(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-exp", "fig8", "-grid", "rate=2"},
		{"-exp", "fig8", "-scenario", "steady"},
		{"-scenario", "steady", "-grid", "rate=2"},
	} {
		if _, err := runBench(t, args...); !errors.Is(err, errUsage) {
			t.Errorf("run(%v) err = %v, want errUsage", args, err)
		}
	}
	if _, err := runBench(t, "stray-arg"); !errors.Is(err, errUsage) {
		t.Errorf("stray non-key=value arg err = %v, want errUsage", err)
	}
}

func TestGridFirstLine(t *testing.T) {
	out, err := runBench(t, "-grid", "engine=splitwise", "rate=2", "duration=5")
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(out, "\n")
	if !strings.HasPrefix(first, "Model") || !strings.Contains(first, "Goodput(req/s)") {
		t.Errorf("grid header = %q", first)
	}
}

func TestScenarioCSVFirstLine(t *testing.T) {
	out, err := runBench(t, "-scenario", "steady", "-quick", "-csv")
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(out, "\n")
	if first != "Scenario,Engine,Tenant,Offered,Completed,Goodput(req/s),Attain(%),TTFT-p95(s),TPOT-p95(s),NormLat-mean(s/tok)" {
		t.Errorf("scenario CSV header = %q", first)
	}
	if _, err := runBench(t, "-scenario", "no-such"); err == nil {
		t.Error("unknown scenario should error")
	}
}

// TestScenarioOutputJobsIndependent is the CLI half of the golden-trace
// acceptance: the full scenario catalog must render byte-identically on a
// serial pool and a racing 8-worker pool.
func TestScenarioOutputJobsIndependent(t *testing.T) {
	one, err := runBench(t, "-scenario", "all", "-jobs", "1")
	if err != nil {
		t.Fatal(err)
	}
	eight, err := runBench(t, "-scenario", "all", "-jobs", "8")
	if err != nil {
		t.Fatal(err)
	}
	if one != eight {
		t.Errorf("-scenario all differs between -jobs 1 and -jobs 8:\n--- jobs=1\n%s--- jobs=8\n%s", one, eight)
	}
}

// TestBenchModeWritesReport smokes the perf-trajectory mode: one quick
// scenario, report written where asked, summary on stdout.
func TestBenchModeWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	stdout, err := runBench(t, "-bench", "-scenario", "steady", "-quick", "-bench-micro=false", "-bench-out", out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "suite:") || !strings.Contains(stdout, "steady") {
		t.Errorf("bench summary missing suite line:\n%s", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"schema": "hetis-bench/1"`) {
		t.Errorf("report missing schema:\n%s", data)
	}

	// A second run using the first as baseline reports a speedup factor.
	out2 := filepath.Join(t.TempDir(), "BENCH2.json")
	stdout2, err := runBench(t, "-bench", "-scenario", "steady", "-quick", "-bench-micro=false",
		"-bench-baseline", out, "-bench-out", out2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout2, "speedup vs baseline:") {
		t.Errorf("baseline run missing speedup line:\n%s", stdout2)
	}
}

// TestBenchModeComposesWithScenarioOnly ensures -bench plus -scenario is a
// single mode, while -bench plus -exp still violates exclusivity.
func TestBenchModeComposesWithScenarioOnly(t *testing.T) {
	if _, err := runBench(t, "-bench", "-exp", "fig8"); !errors.Is(err, errUsage) {
		t.Errorf("-bench -exp err = %v, want errUsage", err)
	}
}
