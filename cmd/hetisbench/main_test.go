package main

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(args, &out, io.Discard)
	return out.String(), err
}

func TestListShowsExperimentsAndScenarios(t *testing.T) {
	out, err := runBench(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	if first, _, _ := strings.Cut(out, "\n"); first != "available experiments:" {
		t.Errorf("first line = %q", first)
	}
	for _, want := range []string{"  fig8\n", "  scenarios\n", "available scenarios:", "  bursty\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestModeExclusivity(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-exp", "fig8", "-grid", "rate=2"},
		{"-exp", "fig8", "-scenario", "steady"},
		{"-scenario", "steady", "-grid", "rate=2"},
	} {
		if _, err := runBench(t, args...); !errors.Is(err, errUsage) {
			t.Errorf("run(%v) err = %v, want errUsage", args, err)
		}
	}
	if _, err := runBench(t, "stray-arg"); !errors.Is(err, errUsage) {
		t.Errorf("stray non-key=value arg err = %v, want errUsage", err)
	}
}

func TestGridFirstLine(t *testing.T) {
	out, err := runBench(t, "-grid", "engine=splitwise", "rate=2", "duration=5")
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(out, "\n")
	if !strings.HasPrefix(first, "Model") || !strings.Contains(first, "Goodput(req/s)") {
		t.Errorf("grid header = %q", first)
	}
}

func TestScenarioCSVFirstLine(t *testing.T) {
	out, err := runBench(t, "-scenario", "steady", "-quick", "-csv")
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(out, "\n")
	if first != "Scenario,Engine,Tenant,Offered,Completed,Goodput(req/s),Attain(%),TTFT-p95(s),TPOT-p95(s),NormLat-mean(s/tok)" {
		t.Errorf("scenario CSV header = %q", first)
	}
	if _, err := runBench(t, "-scenario", "no-such"); err == nil {
		t.Error("unknown scenario should error")
	}
}

// TestScenarioOutputJobsIndependent is the CLI half of the golden-trace
// acceptance: the full scenario catalog must render byte-identically on a
// serial pool and a racing 8-worker pool.
func TestScenarioOutputJobsIndependent(t *testing.T) {
	one, err := runBench(t, "-scenario", "all", "-jobs", "1")
	if err != nil {
		t.Fatal(err)
	}
	eight, err := runBench(t, "-scenario", "all", "-jobs", "8")
	if err != nil {
		t.Fatal(err)
	}
	if one != eight {
		t.Errorf("-scenario all differs between -jobs 1 and -jobs 8:\n--- jobs=1\n%s--- jobs=8\n%s", one, eight)
	}
}
