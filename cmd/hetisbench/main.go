// Command hetisbench runs experiments, grid sweeps, and scenarios on a
// bounded worker pool.
//
// Usage:
//
//	hetisbench -exp all -jobs 8 -quick        # every paper experiment, pooled
//	hetisbench -exp fig8,fig9                 # a subset, in id order
//	hetisbench -grid engine=hetis,splitwise,vllm dataset=SG,HE,LB rate=2,5,10
//	hetisbench -grid rate=1,2,4,8 -csv        # sweep one dimension, CSV out
//	hetisbench -grid scenario=bursty,diurnal  # scenarios as a grid dimension
//	hetisbench -scenario all -jobs 8          # the scenario catalog, pooled
//	hetisbench -scenario bursty,multitenant -csv
//	hetisbench -scenario megascale -stream    # million requests, O(1) metric memory
//	hetisbench -scenario diurnal -stream -windows 5   # plus 5s windowed series
//	hetisbench -bench                         # perf trajectory -> BENCH.json
//	hetisbench -bench -quick -repeat 3        # CI smoke: reduced scale, best-of-3
//	hetisbench -bench -bench-baseline old.json -bench-out BENCH.json
//	hetisbench -bench -bench-nowarm           # LP warm starts off (baseline mode)
//	hetisbench -list                          # show experiment ids and scenarios
//
// Grid dimensions are key=v1,v2,... pairs: engine, dataset, rate, model,
// scenario, duration, seed. They may be repeated -grid flags or bare
// trailing arguments; unspecified dimensions default to Llama-13B on
// ShareGPT at 5 req/s with the three paper systems. Output rows follow
// grid order (dimension values as given, engines innermost), experiment-id
// order, or scenario catalog order, independent of completion order, so
// stdout is byte-identical for every -jobs value; timings go to stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"hetis"
)

// multiFlag accumulates repeated -grid values.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, " ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// errUsage marks command-line mistakes (exit code 2, like flag errors).
var errUsage = errors.New("usage")

// errParse marks flag-parse failures the FlagSet already reported.
var errParse = errors.New("flag parse error")

func usageError(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errUsage, fmt.Sprintf(format, args...))
}

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		// -h prints usage and succeeds, matching flag.ExitOnError.
	case errors.Is(err, errParse):
		os.Exit(2) // the FlagSet already reported the mistake
	case errors.Is(err, errUsage):
		fmt.Fprintf(os.Stderr, "hetisbench: %v\n", err)
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "hetisbench: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of main: it parses args, runs the selected
// mode, and writes tables to stdout and timings to stderr.
func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hetisbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var gridDims multiFlag
	exp := fs.String("exp", "", "experiment ids, comma-separated, or 'all'")
	fs.Var(&gridDims, "grid", "grid dimension key=v1,v2,... (repeatable; bare trailing key=... args are folded in)")
	scen := fs.String("scenario", "", "scenario names, comma-separated, or 'all'")
	jobs := fs.Int("jobs", 0, "max concurrent runs (0 = one per CPU)")
	quick := fs.Bool("quick", false, "reduced-scale traces for fast runs")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	seed := fs.Int64("seed", 0, "trace seed offset (experiments, scenarios) or base seed (grid)")
	list := fs.Bool("list", false, "list experiment ids and scenarios, then exit")
	benchMode := fs.Bool("bench", false, "run the perf-trajectory harness (-scenario narrows the suite)")
	benchOut := fs.String("bench-out", "BENCH.json", "perf report path for -bench")
	benchBase := fs.String("bench-baseline", "", "existing BENCH.json whose suite becomes the -bench baseline")
	repeat := fs.Int("repeat", 1, "repetitions per -bench measurement (best wall-clock kept)")
	benchMicro := fs.Bool("bench-micro", true, "include micro-benchmarks in -bench (adds a few seconds)")
	benchNoWarm := fs.Bool("bench-nowarm", false, "run -bench with the LP warm-start layer disabled (records the pre-warm-start baseline; decisions are identical)")
	benchSinks := fs.Bool("bench-sinks", true, "include the exact-vs-streaming sink comparison in -bench (runs megascale twice; adds ~15s full-scale)")
	benchFleet := fs.Bool("bench-fleet", true, "include the fleet shard-scaling section in -bench (runs gigascale at several worker counts)")
	benchFleetScen := fs.String("bench-fleet-scenario", "", "sharded scenario the -bench fleet section measures (default gigascale)")
	benchFleetWorkers := fs.String("bench-fleet-workers", "", "comma-separated shard-worker counts the -bench fleet section sweeps (default 1,2,4,8)")
	stream := fs.Bool("stream", false, "measure through constant-memory streaming sinks (grid, scenario, bench modes)")
	windows := fs.Float64("windows", 0, "with -stream -scenario: also print windowed time series with this bucket width in seconds")
	shardWorkers := fs.Int("shard-workers", 0, "max concurrent shards within a fleet scenario (0 = one per CPU; output is identical at every value)")

	// Parse in rounds so flags and bare key=value grid dimensions can
	// interleave: the flag package stops at the first non-flag argument,
	// but `hetisbench -grid engine=hetis dataset=SG,HE -jobs 8` should
	// work as written.
	args := argv
	for {
		if err := fs.Parse(args); err != nil {
			if errors.Is(err, flag.ErrHelp) {
				return err
			}
			return fmt.Errorf("%w: %v", errParse, err)
		}
		rest := fs.Args()
		i := 0
		// A lone "-" is a non-flag arg the parser will never consume;
		// claim it here so the rounds always make progress.
		for i < len(rest) && (!strings.HasPrefix(rest[i], "-") || rest[i] == "-") {
			if !strings.Contains(rest[i], "=") {
				return usageError("unexpected argument %q (grid dimensions are key=v1,v2,...)", rest[i])
			}
			gridDims = append(gridDims, rest[i])
			i++
		}
		if i == len(rest) {
			break
		}
		args = rest[i:]
	}

	if *list {
		fmt.Fprintln(stdout, "available experiments:")
		for _, id := range hetis.ExperimentIDs() {
			fmt.Fprintf(stdout, "  %s\n", id)
		}
		fmt.Fprintln(stdout, "available scenarios:")
		for _, name := range hetis.ScenarioNames() {
			fmt.Fprintf(stdout, "  %s%s\n", name, scenarioTag(name))
		}
		return nil
	}

	// -bench is its own mode; -scenario composes with it to narrow the
	// suite instead of selecting the pooled scenario-table mode.
	modes := 0
	for _, on := range []bool{*exp != "", len(gridDims) > 0, *scen != "" && !*benchMode, *benchMode} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return usageError("need exactly one of -exp, -grid, -scenario or -bench (see -h; -list shows ids)")
	}

	if *windows != 0 && !(*stream && *scen != "" && !*benchMode) {
		return usageError("-windows needs -stream and -scenario (the windowed series is a streaming-sink product)")
	}
	if *windows < 0 {
		return usageError("-windows must be positive")
	}

	start := time.Now()
	pool := hetis.SweepOptions{Jobs: *jobs, Cache: hetis.NewSweepCache(), ShardWorkers: *shardWorkers}
	switch {
	case *benchMode:
		// The harness runs sequentially (stable wall-clock) with the
		// scenarios' own seeds; these knobs would be silently ignored.
		if *seed != 0 || *csv || *jobs != 0 {
			return usageError("-seed, -csv and -jobs do not apply to -bench")
		}
		fleetWorkers, err := parseWorkerList(*benchFleetWorkers)
		if err != nil {
			return usageError("-bench-fleet-workers: %v", err)
		}
		if err := runPerfBench(stdout, stderr, *scen, *quick, *repeat, *stream, *benchNoWarm, *benchOut, *benchBase,
			*benchMicro, *benchSinks, *benchFleet, *benchFleetScen, fleetWorkers); err != nil {
			return err
		}
	case len(gridDims) > 0:
		spec := hetis.GridSpec{Quick: *quick, Seed: *seed, Stream: *stream}
		spec, err := hetis.ParseGridDims(spec, gridDims)
		if err != nil {
			return err
		}
		tab, err := hetis.RunGrid(spec, pool)
		if err != nil {
			return err
		}
		emit(stdout, tab, *csv)
	case *scen != "":
		names := strings.Split(*scen, ",")
		if *stream {
			tab, wins, err := hetis.RunScenariosStream(names, *quick, *seed, *windows, pool)
			if err != nil {
				return err
			}
			emit(stdout, tab, *csv)
			// Keep -csv stdout machine-parseable: the per-run banners go to
			// stderr there, so stdout stays a sequence of pure CSV tables.
			banners := stdout
			if *csv {
				banners = stderr
			}
			for _, w := range wins {
				fmt.Fprintf(banners, "\n=== windows %s/%s (%gs buckets) ===\n", w.Scenario, w.Engine, *windows)
				emit(stdout, w.Table, *csv)
			}
			break
		}
		tab, err := hetis.RunScenarios(names, *quick, *seed, pool)
		if err != nil {
			return err
		}
		emit(stdout, tab, *csv)
	default:
		if *stream {
			return usageError("-stream does not apply to -exp (experiments pin exact paper tables)")
		}
		ids := strings.Split(*exp, ",")
		if *exp == "all" {
			ids = hetis.ExperimentIDs()
		}
		opts := hetis.ExperimentOptions{Quick: *quick, Seed: *seed}
		results, err := hetis.RunExperiments(ids, opts, pool)
		if err != nil && results == nil {
			return err
		}
		for _, r := range results {
			if r.Err != nil {
				return r.Err
			}
			fmt.Fprintf(stdout, "=== %s ===\n", r.Key)
			emit(stdout, r.Table, *csv)
			fmt.Fprintln(stdout)
		}
	}
	fmt.Fprintf(stderr, "hetisbench: done in %.2fs (jobs=%d)\n", time.Since(start).Seconds(), *jobs)
	return nil
}

// runPerfBench executes the perf-trajectory harness and writes BENCH.json. A
// summary table goes to stdout so humans see the numbers the file records.
func runPerfBench(stdout, stderr io.Writer, scen string, quick bool, repeat int, stream, noWarm bool, outPath, basePath string, micro, sinks, fleet bool, fleetScen string, fleetWorkers []int) error {
	opts := hetis.BenchOptions{
		Quick: quick, Repeat: repeat, Stream: stream, NoWarm: noWarm,
		SkipMicro: !micro, SkipSinks: !sinks,
		SkipFleet: !fleet, FleetScenario: fleetScen, FleetWorkers: fleetWorkers,
	}
	if scen != "" && scen != "all" {
		opts.Scenarios = strings.Split(scen, ",")
	}
	rep, err := hetis.RunBench(opts)
	if err != nil {
		return err
	}
	if basePath != "" {
		base, err := hetis.ReadBenchReport(basePath)
		if err != nil {
			return err
		}
		if base.Quick != rep.Quick {
			return fmt.Errorf("baseline %s was measured with quick=%v, this run is quick=%v (not comparable)",
				basePath, base.Quick, rep.Quick)
		}
		if base.Stream != rep.Stream {
			return fmt.Errorf("baseline %s was measured with stream=%v, this run is stream=%v (not comparable)",
				basePath, base.Stream, rep.Stream)
		}
		if !hetis.BenchSamePairs(&base.Suite, &rep.Suite) {
			return fmt.Errorf("baseline %s measured a different (scenario, engine) set than this run (not comparable; match the -scenario selection)",
				basePath)
		}
		rep.WithBaseline(&base.Suite)
	}
	if err := hetis.WriteBenchReport(outPath, rep); err != nil {
		return err
	}

	tab := &hetis.Table{Header: []string{
		"Scenario", "Engine", "Wall(s)", "Events", "Events/s", "LPSolves", "LPAvoided", "Allocs/ev",
	}}
	for _, sb := range rep.Suite.Scenarios {
		tab.AddRow(sb.Scenario, sb.Engine, sb.WallSeconds, sb.Events, sb.EventsPerSec,
			sb.LPSolves, sb.LPSolvesAvoided, sb.AllocsPerEvent)
	}
	fmt.Fprint(stdout, tab)
	fmt.Fprintf(stdout, "suite: %.3fs wall, %d events (%.0f events/s), %d LP solves (%d avoided)\n",
		rep.Suite.WallSeconds, rep.Suite.Events, rep.Suite.EventsPerSec,
		rep.Suite.LPSolves, rep.Suite.LPSolvesAvoided)
	fmt.Fprintf(stdout, "lp: %d solves / %d avoided / %d warm-started (%.0f%% of %d ideal) / %d phase1-skipped, %d rows patched, %.3fs in solver (%.1f%% of wall)\n",
		rep.Suite.LP.Solves, rep.Suite.LP.SolvesAvoided, rep.Suite.LP.WarmStarts,
		100*rep.Suite.LP.IdealWarmRate, rep.Suite.LP.IdealSolves, rep.Suite.LP.Phase1Skips,
		rep.Suite.LP.PatchedRows, rep.Suite.LP.SolveSeconds, 100*rep.Suite.LP.WallShare)
	for _, mb := range rep.Micro {
		fmt.Fprintf(stdout, "micro: %-28s %12.0f ns/op  %6d B/op  %4d allocs/op\n",
			mb.Name, mb.NsPerOp, mb.BytesPerOp, mb.AllocsPerOp)
	}
	for _, sb := range rep.Sinks {
		fmt.Fprintf(stdout, "sinks: %s/%s %-9s  %7.3fs wall  %5.2f allocs/ev  live heap %+.1f MB\n",
			sb.Scenario, sb.Engine, sb.Sink, sb.WallSeconds, sb.AllocsPerEvent, float64(sb.LiveHeapBytes)/1e6)
	}
	if fs := rep.Fleet; fs != nil {
		for _, row := range fs.Rows {
			fmt.Fprintf(stdout, "fleet: %s/%s %d shards  %d workers  %7.3fs wall  %.0f events/s  %.2fx vs 1  live heap %+.1f MB\n",
				fs.Scenario, fs.Engine, fs.Shards, row.ShardWorkers, row.WallSeconds,
				row.EventsPerSec, row.SpeedupVs1, float64(row.LiveHeapBytes)/1e6)
		}
	}
	if rep.Baseline != nil {
		fmt.Fprintf(stdout, "speedup vs baseline: %.2fx (%.3fs -> %.3fs)\n",
			rep.SpeedupVsBaseline, rep.Baseline.WallSeconds, rep.Suite.WallSeconds)
	}
	fmt.Fprintf(stderr, "hetisbench: wrote %s\n", outPath)
	return nil
}

// parseWorkerList parses a comma-separated list of positive shard-worker
// counts; empty means the harness default.
func parseWorkerList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func emit(w io.Writer, tab *hetis.Table, csv bool) {
	if csv {
		fmt.Fprint(w, tab.CSV())
	} else {
		fmt.Fprint(w, tab)
	}
}

// scenarioTag annotates a -list row for scenarios the catalog-wide
// expansions skip: heavy (cost) and chaotic (extra table columns).
func scenarioTag(name string) string {
	s, err := hetis.ScenarioByName(name)
	switch {
	case err != nil:
		return ""
	case s.Heavy && s.Sharded():
		return " [heavy] [fleet]"
	case s.Heavy:
		return " [heavy]"
	case s.Sharded():
		return " [fleet]"
	case s.Chaotic():
		return " [chaos]"
	}
	return ""
}
