// Command hetisbench runs experiments and grid sweeps on a bounded worker
// pool.
//
// Usage:
//
//	hetisbench -exp all -jobs 8 -quick        # every paper experiment, pooled
//	hetisbench -exp fig8,fig9                 # a subset, in id order
//	hetisbench -grid engine=hetis,splitwise,vllm dataset=SG,HE,LB rate=2,5,10
//	hetisbench -grid rate=1,2,4,8 -csv        # sweep one dimension, CSV out
//	hetisbench -list                          # show experiment ids
//
// Grid dimensions are key=v1,v2,... pairs: engine, dataset, rate, model,
// duration, seed. They may be repeated -grid flags or bare trailing
// arguments; unspecified dimensions default to Llama-13B on ShareGPT at
// 5 req/s with the three paper systems. Output rows follow grid order
// (dimension values as given, engines innermost) or experiment-id order,
// independent of completion order, so stdout is byte-identical for every
// -jobs value; timings go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hetis"
)

// multiFlag accumulates repeated -grid values.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, " ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var gridDims multiFlag
	exp := flag.String("exp", "", "experiment ids, comma-separated, or 'all'")
	flag.Var(&gridDims, "grid", "grid dimension key=v1,v2,... (repeatable; bare trailing key=... args are folded in)")
	jobs := flag.Int("jobs", 0, "max concurrent runs (0 = one per CPU)")
	quick := flag.Bool("quick", false, "reduced-scale traces for fast runs")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	seed := flag.Int64("seed", 0, "trace seed offset (experiments) or base seed (grid)")
	list := flag.Bool("list", false, "list experiment ids and exit")

	// Parse in rounds so flags and bare key=value grid dimensions can
	// interleave: the flag package stops at the first non-flag argument,
	// but `hetisbench -grid engine=hetis dataset=SG,HE -jobs 8` should
	// work as written.
	args := os.Args[1:]
	for {
		flag.CommandLine.Parse(args)
		rest := flag.Args()
		i := 0
		// A lone "-" is a non-flag arg the parser will never consume;
		// claim it here so the rounds always make progress.
		for i < len(rest) && (!strings.HasPrefix(rest[i], "-") || rest[i] == "-") {
			if !strings.Contains(rest[i], "=") {
				fatal(fmt.Errorf("unexpected argument %q (grid dimensions are key=v1,v2,...)", rest[i]))
			}
			gridDims = append(gridDims, rest[i])
			i++
		}
		if i == len(rest) {
			break
		}
		args = rest[i:]
	}

	if *list {
		fmt.Println("available experiments:")
		for _, id := range hetis.ExperimentIDs() {
			fmt.Printf("  %s\n", id)
		}
		return
	}

	gridMode := len(gridDims) > 0
	if gridMode == (*exp != "") {
		fmt.Fprintln(os.Stderr, "hetisbench: need exactly one of -exp or -grid (see -h; -list shows experiment ids)")
		os.Exit(2)
	}

	start := time.Now()
	pool := hetis.SweepOptions{Jobs: *jobs, Cache: hetis.NewSweepCache()}
	if gridMode {
		spec := hetis.GridSpec{Quick: *quick, Seed: *seed}
		spec, err := hetis.ParseGridDims(spec, gridDims)
		if err != nil {
			fatal(err)
		}
		tab, err := hetis.RunGrid(spec, pool)
		if err != nil {
			fatal(err)
		}
		emit(tab, *csv)
	} else {
		ids := strings.Split(*exp, ",")
		if *exp == "all" {
			ids = hetis.ExperimentIDs()
		}
		opts := hetis.ExperimentOptions{Quick: *quick, Seed: *seed}
		results, err := hetis.RunExperiments(ids, opts, pool)
		if err != nil && results == nil {
			fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				fatal(r.Err)
			}
			fmt.Printf("=== %s ===\n", r.Key)
			emit(r.Table, *csv)
			fmt.Println()
		}
	}
	fmt.Fprintf(os.Stderr, "hetisbench: done in %.2fs (jobs=%d)\n", time.Since(start).Seconds(), *jobs)
}

func emit(tab *hetis.Table, csv bool) {
	if csv {
		fmt.Print(tab.CSV())
	} else {
		fmt.Print(tab)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hetisbench: %v\n", err)
	os.Exit(1)
}
