// Command hetistrace serves a synthetic workload with a chosen engine and
// dumps the structured simulation event log (arrivals, prefills, decode
// steps, dispatches, migrations, evictions, finishes) as JSONL for offline
// analysis.
//
// Usage:
//
//	hetistrace -engine hetis -model Llama-13B -dataset SG -rate 5 -duration 60 -out trace.jsonl
//	hetistrace -engine splitwise -dataset LB -rate 1 | jq .kind | sort | uniq -c
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hetis"
)

func main() {
	engineName := flag.String("engine", "hetis", "hetis | splitwise | hexgen")
	modelName := flag.String("model", "Llama-13B", "model preset")
	dataset := flag.String("dataset", "SG", "SG | HE | LB")
	rate := flag.Float64("rate", 5, "request rate (req/s)")
	duration := flag.Float64("duration", 60, "trace duration (simulated seconds)")
	seed := flag.Int64("seed", 1, "trace seed")
	out := flag.String("out", "-", "output path ('-' = stdout)")
	flag.Parse()

	m, err := hetis.ModelByName(*modelName)
	if err != nil {
		fatal(err)
	}
	dist, err := hetis.DatasetByName(*dataset)
	if err != nil {
		fatal(err)
	}
	reqs := hetis.PoissonTrace(dist, *rate, *duration, *seed)
	cluster := hetis.PaperCluster()
	cfg := hetis.DefaultEngineConfig(m, cluster)

	var eng hetis.Engine
	switch *engineName {
	case "hetis":
		plan, err := hetis.PlanDeployment(cfg, reqs)
		if err != nil {
			fatal(err)
		}
		eng, err = hetis.NewHetisEngine(cfg, plan)
		if err != nil {
			fatal(err)
		}
	case "splitwise":
		eng, err = hetis.NewSplitwiseEngine(cfg)
		if err != nil {
			fatal(err)
		}
	case "hexgen":
		eng, err = hetis.NewHexGenEngine(cfg)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown engine %q", *engineName))
	}

	res, err := eng.Run(reqs, *duration*30)
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := res.Trace.WriteJSONL(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "hetistrace: %s served %d/%d requests over %.1fs; %d events written\n",
		eng.Name(), res.Completed, len(reqs), res.Horizon, res.Trace.Len())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hetistrace: %v\n", err)
	os.Exit(1)
}
