// Command hetistrace serves a synthetic workload with a chosen engine and
// dumps the structured simulation event log (arrivals, prefills, decode
// steps, dispatches, migrations, evictions, finishes) as JSONL for offline
// analysis.
//
// Usage:
//
//	hetistrace -engine hetis -model Llama-13B -dataset SG -rate 5 -duration 60 -out trace.jsonl
//	hetistrace -engine splitwise -dataset LB -rate 1 | jq .kind | sort | uniq -c
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hetis"
)

// errParse marks flag-parse failures the FlagSet already reported.
var errParse = errors.New("flag parse error")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		// -h prints usage and succeeds, matching flag.ExitOnError.
	case errors.Is(err, errParse):
		os.Exit(2) // the FlagSet already reported the mistake
	default:
		fmt.Fprintf(os.Stderr, "hetistrace: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of main.
func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hetistrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	engineName := fs.String("engine", "hetis", strings.Join(hetis.EngineNames(), " | "))
	modelName := fs.String("model", "Llama-13B", "model preset")
	dataset := fs.String("dataset", "SG", "SG | HE | LB")
	rate := fs.Float64("rate", 5, "request rate (req/s)")
	duration := fs.Float64("duration", 60, "trace duration (simulated seconds)")
	seed := fs.Int64("seed", 1, "trace seed")
	out := fs.String("out", "-", "output path ('-' = stdout)")
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errParse, err)
	}

	m, err := hetis.ModelByName(*modelName)
	if err != nil {
		return err
	}
	dist, err := hetis.DatasetByName(*dataset)
	if err != nil {
		return err
	}
	reqs := hetis.PoissonTrace(dist, *rate, *duration, *seed)
	cluster := hetis.PaperCluster()
	cfg := hetis.DefaultEngineConfig(m, cluster)

	eng, err := hetis.NewEngineByName(*engineName, cfg, reqs)
	if err != nil {
		return err
	}

	res, err := eng.Run(reqs, *duration*30)
	if err != nil {
		return err
	}

	w := stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := res.Trace.WriteJSONL(w); err != nil {
		return err
	}
	// Result.Horizon is the measurement window (the -duration*30 cutoff,
	// shared by every engine for fair rate denominators); the serving time
	// users care about here is when the last request actually finished.
	served := 0.0
	for _, r := range res.Recorder.Records() {
		if r.FinishedAt > served {
			served = r.FinishedAt
		}
	}
	fmt.Fprintf(stderr, "hetistrace: %s served %d/%d requests over %.1fs; %d events written\n",
		eng.Name(), res.Completed, len(reqs), served, res.Trace.Len())
	return nil
}
