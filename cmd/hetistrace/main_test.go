package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONLToStdout(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-engine", "splitwise", "-dataset", "HE", "-rate", "2", "-duration", "3"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(out.String(), "\n")
	if !strings.HasPrefix(first, "{") || !strings.Contains(first, `"kind"`) {
		t.Errorf("first output line = %q, want a JSONL event", first)
	}
}

func TestWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	err := run([]string{"-engine", "hexgen", "-dataset", "HE", "-rate", "2", "-duration", "3", "-out", path}, io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[0] != '{' {
		t.Errorf("trace file starts %q, want JSONL", data[:min(20, len(data))])
	}
}

func TestBadInputs(t *testing.T) {
	for _, args := range [][]string{
		{"-engine", "warp"},
		{"-model", "no-such"},
		{"-dataset", "XX"},
	} {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
