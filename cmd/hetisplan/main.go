// Command hetisplan runs the Parallelizer (§4.1) on a described cluster and
// prints the chosen deployment: primary-worker stages (with TP/PP/layers)
// and the Attention-worker pool.
//
// Usage:
//
//	hetisplan -model Llama-70B                      # paper cluster
//	hetisplan -model OPT-30B -cluster 2xA100,4xT4   # custom, one host per type
//	hetisplan -model Llama-13B -batch 128 -context 800
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hetis"
)

func main() {
	modelName := flag.String("model", "Llama-70B", "model preset name")
	clusterSpec := flag.String("cluster", "paper", `"paper" or a list like "4xA100,4x3090,4xP100" (one host per entry)`)
	batch := flag.Int("batch", 64, "expected concurrent decode batch (R)")
	context := flag.Int("context", 600, "expected average context length")
	prompt := flag.Int("prompt", 400, "expected average prompt length")
	output := flag.Int("output", 240, "expected average output length")
	delta := flag.Float64("delta", 0.05, "exclusion threshold Δ")
	flag.Parse()

	m, err := hetis.ModelByName(*modelName)
	if err != nil {
		fatal(err)
	}
	cluster, err := parseCluster(*clusterSpec)
	if err != nil {
		fatal(err)
	}
	wl := hetis.PlanWorkload{
		DecodeBatch: *batch, AvgContext: *context,
		PrefillBatch: 4, AvgPrompt: *prompt, AvgOutput: *output,
	}
	opts := hetis.DefaultPlanOptions()
	opts.Delta = *delta

	plan, err := hetis.SearchPlan(cluster, m, wl, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model:    %s\ncluster:  %s\n", m, cluster)
	fmt.Printf("searched: %d configurations in %v\n\n", plan.Evaluated, plan.Elapsed)
	fmt.Print(plan)
	fmt.Printf("\nmodeled decode step: %.2f ms   prefill: %.2f ms   KV capacity: %.1f GB\n",
		plan.DecodeStepCost*1e3, plan.PrefillCost*1e3, float64(plan.CacheCapacity)/1e9)
}

func parseCluster(spec string) (*hetis.Cluster, error) {
	if spec == "paper" {
		return hetis.PaperCluster(), nil
	}
	b := hetis.NewClusterBuilder(hetis.LAN100G)
	for i, part := range strings.Split(spec, ",") {
		fields := strings.SplitN(strings.TrimSpace(part), "x", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad cluster entry %q (want e.g. 4xA100)", part)
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bad count in %q: %v", part, err)
		}
		spec, err := hetis.GPUByName(fields[1])
		if err != nil {
			return nil, err
		}
		b.AddHost(fmt.Sprintf("host%d-%s", i, spec.Name), hetis.PCIe4x16, spec, n)
	}
	return b.Build()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hetisplan: %v\n", err)
	os.Exit(1)
}
