// Command hetisplan runs the Parallelizer (§4.1) on a described cluster and
// prints the chosen deployment: primary-worker stages (with TP/PP/layers)
// and the Attention-worker pool.
//
// Usage:
//
//	hetisplan -model Llama-70B                      # paper cluster
//	hetisplan -model OPT-30B -cluster 2xA100,4xT4   # custom, one host per type
//	hetisplan -model Llama-13B -batch 128 -context 800
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hetis"
)

// errParse marks flag-parse failures the FlagSet already reported.
var errParse = errors.New("flag parse error")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		// -h prints usage and succeeds, matching flag.ExitOnError.
	case errors.Is(err, errParse):
		os.Exit(2) // the FlagSet already reported the mistake
	default:
		fmt.Fprintf(os.Stderr, "hetisplan: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of main.
func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hetisplan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modelName := fs.String("model", "Llama-70B", "model preset name")
	clusterSpec := fs.String("cluster", "paper", `"paper" or a list like "4xA100,4x3090,4xP100" (one host per entry)`)
	batch := fs.Int("batch", 64, "expected concurrent decode batch (R)")
	context := fs.Int("context", 600, "expected average context length")
	prompt := fs.Int("prompt", 400, "expected average prompt length")
	output := fs.Int("output", 240, "expected average output length")
	delta := fs.Float64("delta", 0.05, "exclusion threshold Δ")
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errParse, err)
	}

	m, err := hetis.ModelByName(*modelName)
	if err != nil {
		return err
	}
	cluster, err := parseCluster(*clusterSpec)
	if err != nil {
		return err
	}
	wl := hetis.PlanWorkload{
		DecodeBatch: *batch, AvgContext: *context,
		PrefillBatch: 4, AvgPrompt: *prompt, AvgOutput: *output,
	}
	opts := hetis.DefaultPlanOptions()
	opts.Delta = *delta

	plan, err := hetis.SearchPlan(cluster, m, wl, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "model:    %s\ncluster:  %s\n", m, cluster)
	fmt.Fprintf(stdout, "searched: %d configurations in %v\n\n", plan.Evaluated, plan.Elapsed)
	fmt.Fprint(stdout, plan)
	fmt.Fprintf(stdout, "\nmodeled decode step: %.2f ms   prefill: %.2f ms   KV capacity: %.1f GB\n",
		plan.DecodeStepCost*1e3, plan.PrefillCost*1e3, float64(plan.CacheCapacity)/1e9)
	return nil
}

func parseCluster(spec string) (*hetis.Cluster, error) {
	if spec == "paper" {
		return hetis.PaperCluster(), nil
	}
	b := hetis.NewClusterBuilder(hetis.LAN100G)
	for i, part := range strings.Split(spec, ",") {
		fields := strings.SplitN(strings.TrimSpace(part), "x", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad cluster entry %q (want e.g. 4xA100)", part)
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bad count in %q: %v", part, err)
		}
		spec, err := hetis.GPUByName(fields[1])
		if err != nil {
			return nil, err
		}
		b.AddHost(fmt.Sprintf("host%d-%s", i, spec.Name), hetis.PCIe4x16, spec, n)
	}
	return b.Build()
}
