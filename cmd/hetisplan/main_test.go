package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestPlanFirstLine(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "Llama-13B", "-cluster", "2xA100"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(out.String(), "\n")
	if !strings.HasPrefix(first, "model:") || !strings.Contains(first, "Llama-13B") {
		t.Errorf("first line = %q, want model: ... Llama-13B", first)
	}
	if !strings.Contains(out.String(), "modeled decode step:") {
		t.Error("output missing the modeled-cost summary line")
	}
}

func TestBadInputs(t *testing.T) {
	cases := [][]string{
		{"-model", "no-such-model"},
		{"-model", "Llama-13B", "-cluster", "bogus"},
		{"-model", "Llama-13B", "-cluster", "NaNxA100"},
		{"-model", "Llama-13B", "-cluster", "2xNoGPU"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
