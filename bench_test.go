package hetis

// One benchmark per table and figure of the paper's evaluation (§7). Each
// bench regenerates the corresponding experiment end to end — workload
// generation, deployment planning, engine simulation, and aggregation — so
// `go test -bench=. -benchmem` reproduces the entire evaluation and reports
// the harness cost of each artifact. See EXPERIMENTS.md for paper-vs-
// measured values.

import (
	"testing"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opts := ExperimentOptions{Quick: true}
	for i := 0; i < b.N; i++ {
		tab, err := RunExperiment(id, opts)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (per-GPU memory and iteration times).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig2 regenerates Fig. 2 (decode MLP/Attention gaps across GPUs).
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig5 regenerates Fig. 5 (head-wise vs seq-wise communication).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig7 regenerates Fig. 7 (attention-time linearity).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Fig. 8 (latency vs rate, Llama-13B).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Fig. 9 (latency vs rate, OPT-30B).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Fig. 10 (latency vs rate, Llama-70B).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Fig. 11 (available KV-cache space).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Fig. 12 (P95 TTFT and TPOT, Llama-70B).
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Fig. 13 (P95 module latencies).
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14 regenerates Fig. 14 (dynamic per-device usage).
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15a regenerates Fig. 15(a) (re-dispatching vs plain LIFO).
func BenchmarkFig15a(b *testing.B) { benchExperiment(b, "fig15a") }

// BenchmarkFig15b regenerates Fig. 15(b) (head-wise management overhead).
func BenchmarkFig15b(b *testing.B) { benchExperiment(b, "fig15b") }

// BenchmarkFig16a regenerates Fig. 16(a) (Θ sensitivity).
func BenchmarkFig16a(b *testing.B) { benchExperiment(b, "fig16a") }

// BenchmarkFig16b regenerates Fig. 16(b) (profiling-error robustness).
func BenchmarkFig16b(b *testing.B) { benchExperiment(b, "fig16b") }

// BenchmarkSearchOverhead regenerates the §7.4 Parallelizer-search timing.
func BenchmarkSearchOverhead(b *testing.B) { benchExperiment(b, "search") }

// BenchmarkModelAccuracy regenerates the §7.4 profiling-accuracy check.
func BenchmarkModelAccuracy(b *testing.B) { benchExperiment(b, "accuracy") }

// --- component microbenchmarks ------------------------------------------------

// BenchmarkParallelizerSearch measures a single §4.1 search on the paper
// cluster for Llama-70B (paper: 4 s on real hardware for the local
// cluster; the simulator's search is the same algorithm without process
// startup).
func BenchmarkParallelizerSearch(b *testing.B) {
	cluster := PaperCluster()
	wl := PlanWorkload{DecodeBatch: 64, AvgContext: 600, PrefillBatch: 4, AvgPrompt: 400, AvgOutput: 240}
	opts := DefaultPlanOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SearchPlan(cluster, Llama70B, wl, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfiler measures one full §5.1 profiling pass (8×8 grid per
// device across the 12-GPU paper cluster).
func BenchmarkProfiler(b *testing.B) {
	cluster := PaperCluster()
	for i := 0; i < b.N; i++ {
		if _, err := ProfileCluster(OPT30B, cluster, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHetisServe measures end-to-end serving throughput of the
// simulator itself: one 30-second ShareGPT trace on the paper cluster per
// iteration.
func BenchmarkHetisServe(b *testing.B) {
	cluster := PaperCluster()
	cfg := DefaultEngineConfig(Llama13B, cluster)
	reqs := PoissonTrace(ShareGPT, 5, 30, 11)
	plan, err := PlanDeployment(cfg, reqs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := NewHetisEngine(cfg, plan)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(reqs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks (design choices DESIGN.md §4 calls out) ---------------

// BenchmarkAblationSplit compares head/sequence/batch-wise splitting.
func BenchmarkAblationSplit(b *testing.B) { benchExperiment(b, "ablation-split") }

// BenchmarkAblationDelta sweeps the §4.1 exclusion threshold Δ.
func BenchmarkAblationDelta(b *testing.B) { benchExperiment(b, "ablation-delta") }

// BenchmarkAblationDispatch compares the Eq. 7 LP against greedy placement.
func BenchmarkAblationDispatch(b *testing.B) { benchExperiment(b, "ablation-dispatch") }

// BenchmarkAblationMigration compares overlapped vs blocking migration.
func BenchmarkAblationMigration(b *testing.B) { benchExperiment(b, "ablation-migration") }

// BenchmarkAblationDP sweeps the data-parallel instance count.
func BenchmarkAblationDP(b *testing.B) { benchExperiment(b, "ablation-dp") }

// BenchmarkThroughput regenerates the abstract's sustained-rate claim
// (max request rate per system under a latency SLO).
func BenchmarkThroughput(b *testing.B) { benchExperiment(b, "throughput") }

// BenchmarkAblationSearch compares the Cp-greedy heuristic with the
// extended comm-aware primary-set search.
func BenchmarkAblationSearch(b *testing.B) { benchExperiment(b, "ablation-search") }

// BenchmarkAblationHetero measures the premium-scarce cluster comparison.
func BenchmarkAblationHetero(b *testing.B) { benchExperiment(b, "ablation-hetero") }
