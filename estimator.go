package hetis

import (
	"hetis/internal/perf"
	"hetis/internal/profile"
)

// Estimator is the calibrated analytic cost model: module times on devices
// and communication costs. It is the ground truth the Profiler fits.
type Estimator = perf.Estimator

// newEstimator builds the cost model for a model configuration.
func newEstimator(m ModelConfig) *Estimator { return perf.New(m) }

// NewEstimator exposes the cost model for custom studies (e.g. exploring a
// hypothetical GPU before adding it to a cluster).
func NewEstimator(m ModelConfig) *Estimator { return perf.New(m) }

// ProfileCluster runs the §5.1 Profiler: it fits the linear attention-time
// and transfer models for every device relative to the given primary.
func ProfileCluster(m ModelConfig, cluster *Cluster, primary DeviceID) (*Profile, error) {
	return profile.Run(perf.New(m), cluster, primary, profile.DefaultOptions())
}
