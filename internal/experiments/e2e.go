package experiments

import (
	"fmt"

	"hetis/internal/engine"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/workload"
)

// sweepEntry is one dataset's rate sweep.
type sweepEntry struct {
	dataset string
	rates   []float64
}

// latencySweep reproduces the Figs. 8-10 experiment shape: normalized
// end-to-end latency (s/token) of the three systems across request rates
// for each dataset.
func latencySweep(m model.Config, entries []sweepEntry, opts Options) (*metrics.Table, error) {
	tab := &metrics.Table{Header: []string{
		"Dataset", "Rate(req/s)", "Splitwise(s/tok)", "Hexgen(s/tok)", "Hetis(s/tok)",
		"SW-done", "HG-done", "HT-done",
	}}
	dur := opts.duration(40)
	for _, e := range entries {
		dist := datasetByCode(e.dataset)
		for _, rate := range e.rates {
			reqs := workload.Poisson(dist, rate, dur, opts.seed(1000+int64(rate*10)))
			if len(reqs) == 0 {
				continue
			}
			het, hex, sw, err := buildEngines(m, reqs)
			if err != nil {
				return nil, fmt.Errorf("%s rate %.1f: %w", e.dataset, rate, err)
			}
			horizon := horizonFor(dur)
			resSW, err := sw.Run(reqs, horizon)
			if err != nil {
				return nil, err
			}
			resHG, err := hex.Run(reqs, horizon)
			if err != nil {
				return nil, err
			}
			resHT, err := het.Run(reqs, horizon)
			if err != nil {
				return nil, err
			}
			tab.AddRow(e.dataset, rate,
				resSW.Recorder.NormLatencySummary().Mean,
				resHG.Recorder.NormLatencySummary().Mean,
				resHT.Recorder.NormLatencySummary().Mean,
				resSW.Completed, resHG.Completed, resHT.Completed)
		}
	}
	return tab, nil
}

// Fig8 reproduces Fig. 8: normalized latency across datasets, Llama-13B.
func Fig8(opts Options) (*metrics.Table, error) {
	return latencySweep(model.Llama13B, []sweepEntry{
		{"SG", []float64{3, 6, 9, 12, 15}},
		{"HE", []float64{15, 30, 45, 60, 75}},
		{"LB", []float64{3, 6, 9}},
	}, opts)
}

// Fig9 reproduces Fig. 9: normalized latency across datasets, OPT-30B.
func Fig9(opts Options) (*metrics.Table, error) {
	return latencySweep(model.OPT30B, []sweepEntry{
		{"SG", []float64{3, 6, 9, 12}},
		{"HE", []float64{15, 30, 45}},
		{"LB", []float64{2, 4, 6}},
	}, opts)
}

// Fig10 reproduces Fig. 10: normalized latency across datasets, Llama-70B.
func Fig10(opts Options) (*metrics.Table, error) {
	return latencySweep(model.Llama70B, []sweepEntry{
		{"SG", []float64{1, 2, 3}},
		{"HE", []float64{3, 6, 9, 12}},
		{"LB", []float64{0.4, 0.8, 1.2, 1.6}},
	}, opts)
}

// Fig11 reproduces Fig. 11: the maximum available KV-cache space of each
// system per model and dataset.
func Fig11(opts Options) (*metrics.Table, error) {
	tab := &metrics.Table{Header: []string{"Model", "Dataset", "Hetis(GB)", "Hexgen(GB)", "Splitwise(GB)"}}
	dur := opts.duration(30)
	for _, m := range []model.Config{model.Llama13B, model.OPT30B, model.Llama70B} {
		for _, ds := range []string{"SG", "HE", "LB"} {
			reqs := workload.Poisson(datasetByCode(ds), 4, dur, opts.seed(77))
			het, hex, sw, err := buildEngines(m, reqs)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", m.Name, ds, err)
			}
			tab.AddRow(m.Name, ds,
				float64(het.CacheCapacity())/1e9,
				float64(hex.CacheCapacity())/1e9,
				float64(sw.CacheCapacity())/1e9)
		}
	}
	return tab, nil
}

// fig12Rates are the unsaturated operating points of §7.2 for Llama-70B.
var fig12Rates = map[string]float64{"SG": 1.5, "HE": 6, "LB": 0.8}

// runFig12Setting executes the three engines at the Fig. 12 operating
// point for one dataset.
func runFig12Setting(ds string, opts Options) (het, hex, sw *engine.Result, err error) {
	dur := opts.duration(40)
	reqs := workload.Poisson(datasetByCode(ds), fig12Rates[ds], dur, opts.seed(2100))
	h, x, s, err := buildEngines(model.Llama70B, reqs)
	if err != nil {
		return nil, nil, nil, err
	}
	horizon := horizonFor(dur)
	if het, err = h.Run(reqs, horizon); err != nil {
		return nil, nil, nil, err
	}
	if hex, err = x.Run(reqs, horizon); err != nil {
		return nil, nil, nil, err
	}
	if sw, err = s.Run(reqs, horizon); err != nil {
		return nil, nil, nil, err
	}
	return het, hex, sw, nil
}

// Fig12 reproduces Fig. 12: P95 TTFT and TPOT for Llama-70B, normalized to
// Hetis (the paper plots normalized time with Hetis lowest).
func Fig12(opts Options) (*metrics.Table, error) {
	tab := &metrics.Table{Header: []string{"Metric", "Dataset", "Hetis", "Hexgen", "Splitwise"}}
	for _, ds := range []string{"SG", "HE", "LB"} {
		het, hex, sw, err := runFig12Setting(ds, opts)
		if err != nil {
			return nil, fmt.Errorf("fig12 %s: %w", ds, err)
		}
		base := het.Recorder.TTFTSummary().P95
		tab.AddRow("TTFT-P95", ds, 1.0,
			hex.Recorder.TTFTSummary().P95/base,
			sw.Recorder.TTFTSummary().P95/base)
		base = het.Recorder.TPOTSummary().P95
		tab.AddRow("TPOT-P95", ds, 1.0,
			hex.Recorder.TPOTSummary().P95/base,
			sw.Recorder.TPOTSummary().P95/base)
	}
	return tab, nil
}

// Fig13 reproduces Fig. 13: P95 per-iteration execution latency of the
// decode MLP (dense) and Attention modules for Llama-70B, normalized to
// Hetis.
func Fig13(opts Options) (*metrics.Table, error) {
	tab := &metrics.Table{Header: []string{"Module", "Dataset", "Hetis", "Hexgen", "Splitwise"}}
	p95 := func(vals []float64) float64 {
		return metrics.SummarizeValues(vals).P95
	}
	for _, ds := range []string{"SG", "HE", "LB"} {
		het, hex, sw, err := runFig12Setting(ds, opts)
		if err != nil {
			return nil, fmt.Errorf("fig13 %s: %w", ds, err)
		}
		base := p95(het.DenseTimes)
		tab.AddRow("MLP", ds, 1.0, p95(hex.DenseTimes)/base, p95(sw.DenseTimes)/base)
		base = p95(het.AttnTimes)
		tab.AddRow("Attention", ds, 1.0, p95(hex.AttnTimes)/base, p95(sw.AttnTimes)/base)
	}
	return tab, nil
}

// Fig16a reproduces Fig. 16(a): sensitivity of per-token latency to the
// re-dispatching threshold Θ, normalized to the default Θ = 0.5.
func Fig16a(opts Options) (*metrics.Table, error) {
	tab := &metrics.Table{Header: []string{"Theta", "SG", "HE", "LB"}}
	dur := opts.duration(40)
	thetas := []float64{0.3, 0.4, 0.5, 0.6, 0.7}

	// Latency at each theta per dataset, on the memory-pressured small
	// cluster where re-dispatching actually fires.
	lat := map[string][]float64{}
	for _, ds := range []string{"SG", "HE", "LB"} {
		rate := map[string]float64{"SG": 6, "HE": 30, "LB": 2.5}[ds]
		reqs := workload.Poisson(datasetByCode(ds), rate, dur, opts.seed(1600))
		for _, theta := range thetas {
			res, err := runSmallHetis(reqs, theta, false)
			if err != nil {
				return nil, fmt.Errorf("fig16a %s theta %.1f: %w", ds, theta, err)
			}
			lat[ds] = append(lat[ds], res.Recorder.NormLatencySummary().Mean)
		}
	}
	for i, theta := range thetas {
		row := []any{theta}
		for _, ds := range []string{"SG", "HE", "LB"} {
			base := lat[ds][2] // Θ = 0.5
			row = append(row, lat[ds][i]/base)
		}
		tab.AddRow(row...)
	}
	return tab, nil
}

// Fig16b reproduces Fig. 16(b): per-token latency under profiling errors of
// up to ±20% in each fitted parameter, normalized to the exact profile.
func Fig16b(opts Options) (*metrics.Table, error) {
	dur := opts.duration(40)
	reqs := workload.Poisson(workload.ShareGPT, 5, dur, opts.seed(1700))

	baseRes, err := runSmallHetisProfile(reqs, 0.5, "", 1)
	if err != nil {
		return nil, err
	}
	base := baseRes.Recorder.NormLatencySummary().Mean

	tab := &metrics.Table{Header: []string{"Error(%)", "a", "b", "c", "gamma", "beta"}}
	for _, pct := range []float64{5, 10, 15, 20} {
		row := []any{pct}
		for _, param := range []string{"a", "b", "c", "gamma", "beta"} {
			res, err := runSmallHetisProfile(reqs, 0.5, param, 1+pct/100)
			if err != nil {
				return nil, fmt.Errorf("fig16b %s %+.0f%%: %w", param, pct, err)
			}
			row = append(row, res.Recorder.NormLatencySummary().Mean/base)
		}
		tab.AddRow(row...)
	}
	return tab, nil
}
