package experiments

import (
	"hetis/internal/metrics"
	"hetis/internal/scenario"
	"hetis/internal/sweep"
)

// Scenarios runs every registered serving scenario — bursty, diurnal,
// flash-crowd, closed-loop, multi-tenant — on its engines and reports
// goodput and SLO attainment per engine (and per tenant for mixed
// workloads). This is the production-facing counterpart of the paper's
// steady-rate tables: systems are ranked by how much traffic they serve
// within the latency objective, not by raw latency. It delegates to the
// pooled catalog runner so `-exp scenarios` and `-scenario all` share one
// implementation (and its quick/seed semantics).
func Scenarios(opts Options) (*metrics.Table, error) {
	// SuiteNames: heavy scenarios (megascale) are streaming-sink workloads,
	// not experiment tables; they run when named explicitly.
	return sweep.RunScenarios(scenario.SuiteNames(), opts.Quick, opts.Seed, sweep.Options{})
}
