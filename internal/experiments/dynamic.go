package experiments

import (
	"fmt"

	"hetis/internal/engine"
	"hetis/internal/hardware"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/parallelizer"
	"hetis/internal/profile"
	"hetis/internal/workload"
)

// smallCluster reproduces the Fig. 14/15 ablation setup: one A100 primary
// plus two RTX 3090 attention workers on separate hosts.
func smallCluster() *hardware.Cluster {
	return hardware.NewBuilder(hardware.LAN100G).
		AddHost("a100", hardware.PCIe4x16, hardware.A100, 1).
		AddHost("3090-a", hardware.PCIe3x16, hardware.RTX3090, 1).
		AddHost("3090-b", hardware.PCIe3x16, hardware.RTX3090, 1).
		MustBuild()
}

// smallPlan pins the Fig. 14 deployment: the A100 is the sole primary
// worker holding every layer; both 3090s are attention workers.
func smallPlan(m model.Config) *parallelizer.Plan {
	return &parallelizer.Plan{Instances: []parallelizer.Instance{{
		Stages: []parallelizer.Stage{{
			Spec:    hardware.A100,
			Devices: []hardware.DeviceID{0},
			TP:      1, PP: 1,
			Layers: m.Layers,
		}},
		AttentionWorkers: []hardware.DeviceID{1, 2},
	}}}
}

// runSmallHetis serves a trace on the small cluster with the pinned plan.
func runSmallHetis(reqs []workload.Request, theta float64, disableRedispatch bool) (*engine.Result, error) {
	cfg := engine.DefaultConfig(model.Llama13B, smallCluster())
	cfg.Theta = theta
	cfg.DisableRedispatch = disableRedispatch
	h, err := engine.NewHetis(cfg, smallPlan(model.Llama13B))
	if err != nil {
		return nil, err
	}
	return h.Run(reqs, horizonFor(60))
}

// runSmallHetisProfile runs the small setup with one profile parameter
// scaled (Fig. 16(b)); an empty param runs the exact profile.
func runSmallHetisProfile(reqs []workload.Request, theta float64, param string, factor float64) (*engine.Result, error) {
	cfg := engine.DefaultConfig(model.Llama13B, smallCluster())
	cfg.Theta = theta
	h, err := engine.NewHetis(cfg, smallPlan(model.Llama13B))
	if err != nil {
		return nil, err
	}
	if param != "" {
		// Perturb the profile the engine fitted at construction. We reach
		// it through a fresh profiling run to stay deterministic.
		prof, err := reprofileSmall()
		if err != nil {
			return nil, err
		}
		perturbed, err := prof.PerturbParam(param, factor)
		if err != nil {
			return nil, err
		}
		h.SetProfile(perturbed)
		// Rebuilding the engine is unnecessary: instances profile at Run.
	}
	return h.Run(reqs, horizonFor(60))
}

// Fig14 reproduces Fig. 14: per-device cache utilization and head counts
// over time under the rps 5 → 0 → 2.5 → 0 arrival pattern (Llama-13B, one
// A100 primary, two 3090 attention workers).
func Fig14(opts Options) (*metrics.Table, error) {
	segs := []workload.RateSegment{
		{Rate: 5, Duration: 25},
		{Rate: 0, Duration: 25},
		{Rate: 2.5, Duration: 25},
		{Rate: 0, Duration: 25},
	}
	if opts.Quick {
		for i := range segs {
			segs[i].Duration = 10
		}
	}
	reqs := workload.PiecewiseRate(workload.ShareGPT, segs, opts.seed(1400))
	cfg := engine.DefaultConfig(model.Llama13B, smallCluster())
	cfg.SampleEvery = 5
	h, err := engine.NewHetis(cfg, smallPlan(model.Llama13B))
	if err != nil {
		return nil, err
	}
	res, err := h.Run(reqs, horizonFor(100))
	if err != nil {
		return nil, err
	}
	tab := &metrics.Table{Header: []string{
		"Time(s)", "A100-cache(%)", "3090a-cache(%)", "3090b-cache(%)",
		"A100-heads", "3090a-heads", "3090b-heads",
	}}
	a100c := res.CacheSeries[0]
	c0 := res.CacheSeries[1]
	c1 := res.CacheSeries[2]
	h0 := res.HeadSeries[0]
	h1 := res.HeadSeries[1]
	h2 := res.HeadSeries[2]
	if a100c == nil || c0 == nil || c1 == nil {
		return nil, fmt.Errorf("fig14: missing sampled series")
	}
	end := 100.0
	if opts.Quick {
		end = 40
	}
	for t := 5.0; t <= end; t += 5 {
		tab.AddRow(t, a100c.At(t), c0.At(t), c1.At(t), h0.At(t), h1.At(t), h2.At(t))
	}
	return tab, nil
}

// Fig15a reproduces Fig. 15(a): the benefit of §5.3 re-dispatching over a
// plain LIFO eviction policy, measured as mean and P95 per-output-token
// latency on a memory-pressured ShareGPT run at rate 5.
func Fig15a(opts Options) (*metrics.Table, error) {
	// This experiment needs sustained pressure to trigger §5.3; it always
	// runs the full 60-second trace (still sub-second wall time).
	dur := 60.0
	// Rate 6 pressures the small cluster's memory the way the paper's
	// rate-5 run pressures its larger one: §5.3 re-dispatching fires
	// regularly while Hetis still completes the whole trace.
	reqs := workload.Poisson(workload.ShareGPT, 6, dur, opts.seed(1500))

	withRd, err := runSmallHetis(reqs, 0.5, false)
	if err != nil {
		return nil, fmt.Errorf("fig15a hetis: %w", err)
	}
	lifo, err := runSmallHetis(reqs, 0.5, true)
	if err != nil {
		return nil, fmt.Errorf("fig15a lifo: %w", err)
	}
	hn := withRd.Recorder.NormLatencySummary()
	ln := lifo.Recorder.NormLatencySummary()
	tab := &metrics.Table{Header: []string{"Metric", "Hetis", "LIFO", "LIFO/Hetis"}}
	tab.AddRow("mean(s/tok)", hn.Mean, ln.Mean, ln.Mean/hn.Mean)
	tab.AddRow("p95(s/tok)", hn.P95, ln.P95, ln.P95/hn.P95)
	tab.AddRow("completed", withRd.Completed, lifo.Completed, float64(lifo.Completed)/float64(withRd.Completed))
	tab.AddRow("evictions", withRd.Evictions, lifo.Evictions, 0.0)
	tab.AddRow("migrations", withRd.Migrations, lifo.Migrations, 0.0)
	return tab, nil
}

// reprofileSmall re-runs the profiler on the small cluster so Fig. 16(b)
// perturbs exactly the models the engine would otherwise use.
func reprofileSmall() (*profile.Profile, error) {
	cfg := engine.DefaultConfig(model.Llama13B, smallCluster())
	h, err := engine.NewHetis(cfg, smallPlan(model.Llama13B))
	if err != nil {
		return nil, err
	}
	return h.Profile(), nil
}
