package experiments

import (
	"fmt"

	"hetis/internal/engine"
	"hetis/internal/hardware"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/parallelizer"
	"hetis/internal/perf"
	"hetis/internal/workload"
)

// The ablations quantify the design choices DESIGN.md calls out, beyond the
// paper's own figures: the splitting dimension, the Δ exclusion threshold,
// LP vs greedy dispatching, migration overlap, and data-parallel fan-out.

// AblationSplit extends Fig. 5 with a batch-wise series: splitting whole
// requests across devices moves no per-token traffic but forfeits
// fine-grained balance, which the table shows as the per-device load spread
// each scheme can achieve for a mixed batch.
func AblationSplit(Options) (*metrics.Table, error) {
	est := perf.New(model.Llama70B)
	cfg := model.Llama70B
	link := hardware.LAN100G
	const batch = 64

	tab := &metrics.Table{Header: []string{
		"Scheme", "Granularity(heads)", "TrafficPerStep(ms)", "LoadQuantum(%)",
	}}
	// Head-wise: quantum = one KV head group; traffic per Eq. 4.
	headQuantum := float64(cfg.GroupRatio()) / float64(cfg.Heads) * 100
	headTraffic := perf.P2PTime(link, int64(batch)*est.HeadScatterBytes(cfg.Heads/4)) * 1e3
	tab.AddRow("head-wise", cfg.GroupRatio(), headTraffic, headQuantum)

	// Sequence-wise: quantum = one token's worth of every head; traffic
	// replicates full q.
	seqTraffic := perf.P2PTime(link, int64(batch)*est.SeqScatterBytes()) * 1e3
	tab.AddRow("seq-wise", cfg.Heads, seqTraffic, 100.0/1000) // per-token granularity of a 1000-token ctx

	// Batch-wise: quantum = a whole request (all heads, all tokens); only
	// the final hidden state moves, but the load unit is an entire
	// request.
	batchTraffic := perf.P2PTime(link, cfg.HiddenStateBytes(batch)) * 1e3
	tab.AddRow("batch-wise", cfg.Heads, batchTraffic, 100.0)
	return tab, nil
}

// AblationDelta sweeps the §4.1 exclusion threshold Δ and reports how many
// GPUs each value demotes to attention workers and the modeled costs.
func AblationDelta(Options) (*metrics.Table, error) {
	cluster := hardware.PaperCluster()
	est := perf.New(model.Llama70B)
	wl := parallelizer.DefaultWorkload()
	tab := &metrics.Table{Header: []string{
		"Delta", "AttentionWorkers", "DecodeStep(ms)", "Prefill(ms)", "Cache(GB)",
	}}
	for _, delta := range []float64{0, 0.01, 0.02, 0.05, 0.10, 0.25, 0.50} {
		opts := parallelizer.DefaultOptions()
		opts.Delta = delta
		plan, err := parallelizer.Search(cluster, est, wl, opts)
		if err != nil {
			return nil, fmt.Errorf("delta %.2f: %w", delta, err)
		}
		tab.AddRow(delta, plan.NumAttentionWorkers(),
			plan.DecodeStepCost*1e3, plan.PrefillCost*1e3,
			float64(plan.CacheCapacity)/1e9)
	}
	return tab, nil
}

// AblationDispatch compares the Eq. 7 LP dispatcher against the greedy
// longest-processing-time heuristic on a loaded trace.
func AblationDispatch(opts Options) (*metrics.Table, error) {
	dur := 40.0 // fixed: the comparison needs the loaded regime
	reqs := workload.Poisson(workload.ShareGPT, 8, dur, opts.seed(1900))

	run := func(greedy bool) (*engine.Result, error) {
		cfg := engine.DefaultConfig(model.Llama13B, smallCluster())
		cfg.GreedyDispatch = greedy
		h, err := engine.NewHetis(cfg, smallPlan(model.Llama13B))
		if err != nil {
			return nil, err
		}
		return h.Run(reqs, horizonFor(60))
	}
	lpRes, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("lp: %w", err)
	}
	grRes, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("greedy: %w", err)
	}
	tab := &metrics.Table{Header: []string{"Metric", "LP", "Greedy", "Greedy/LP"}}
	ln, gn := lpRes.Recorder.NormLatencySummary(), grRes.Recorder.NormLatencySummary()
	tab.AddRow("mean(s/tok)", ln.Mean, gn.Mean, gn.Mean/ln.Mean)
	tab.AddRow("p95(s/tok)", ln.P95, gn.P95, gn.P95/ln.P95)
	tab.AddRow("completed", lpRes.Completed, grRes.Completed,
		float64(grRes.Completed)/float64(lpRes.Completed))
	return tab, nil
}

// AblationMigration compares §6's low-priority-stream (overlapped) cache
// migration against blocking migration. Memory-pressure dynamics are
// chaotic run to run, so the table averages several seeded traces.
func AblationMigration(opts Options) (*metrics.Table, error) {
	// Needs sustained memory pressure; always run the full-length trace
	// (quick mode trims the seed count instead).
	dur := 60.0
	seeds := []int64{2000, 2001, 2002, 2003}
	if opts.Quick {
		seeds = seeds[:2]
	}

	var meanOver, meanBlock, p95Over, p95Block float64
	var migOver, migBlock int
	for _, seed := range seeds {
		reqs := workload.Poisson(workload.ShareGPT, 6, dur, opts.seed(seed))
		run := func(blocking bool) (*engine.Result, error) {
			cfg := engine.DefaultConfig(model.Llama13B, smallCluster())
			cfg.BlockingMigration = blocking
			h, err := engine.NewHetis(cfg, smallPlan(model.Llama13B))
			if err != nil {
				return nil, err
			}
			return h.Run(reqs, horizonFor(60))
		}
		over, err := run(false)
		if err != nil {
			return nil, err
		}
		block, err := run(true)
		if err != nil {
			return nil, err
		}
		on, bn := over.Recorder.NormLatencySummary(), block.Recorder.NormLatencySummary()
		meanOver += on.Mean
		meanBlock += bn.Mean
		p95Over += on.P95
		p95Block += bn.P95
		migOver += over.Migrations
		migBlock += block.Migrations
	}
	n := float64(len(seeds))
	tab := &metrics.Table{Header: []string{"Metric", "Overlapped", "Blocking", "Blocking/Overlapped"}}
	tab.AddRow("mean(s/tok)", meanOver/n, meanBlock/n, meanBlock/meanOver)
	tab.AddRow("p95(s/tok)", p95Over/n, p95Block/n, p95Block/p95Over)
	tab.AddRow("migrations/run", float64(migOver)/n, float64(migBlock)/n, 0.0)
	return tab, nil
}

// AblationDP forces the data-parallel instance count and reports the
// latency/capacity trade-off the CacheTolerance selection navigates.
func AblationDP(Options) (*metrics.Table, error) {
	cluster := hardware.PaperCluster()
	est := perf.New(model.Llama13B)
	wl := parallelizer.DefaultWorkload()
	tab := &metrics.Table{Header: []string{
		"Instances", "DecodeStep(ms)", "Prefill(ms)", "Cache(GB)", "AttnWorkers",
	}}
	for _, d := range []int{1, 2, 4} {
		opts := parallelizer.DefaultOptions()
		opts.ForceInstances = d
		plan, err := parallelizer.Search(cluster, est, wl, opts)
		if err != nil {
			tab.AddRow(d, "infeasible", "", "", "")
			continue
		}
		tab.AddRow(d, plan.DecodeStepCost*1e3, plan.PrefillCost*1e3,
			float64(plan.CacheCapacity)/1e9, plan.NumAttentionWorkers())
	}
	return tab, nil
}

// AblationSearch compares the paper's Cp-greedy exclusion heuristic with
// the extended tier-suffix search (comm-aware primary-set selection), both
// as modeled objectives and end to end on a ShareGPT trace.
func AblationSearch(opts Options) (*metrics.Table, error) {
	dur := opts.duration(40)
	reqs := workload.Poisson(workload.ShareGPT, 8, dur, opts.seed(2200))
	cluster := hardware.PaperCluster()
	tab := &metrics.Table{Header: []string{
		"Model", "Variant", "AttnWorkers", "Objective(s)", "E2E mean(s/tok)",
	}}
	for _, m := range []model.Config{model.Llama13B, model.Llama70B} {
		for _, ext := range []bool{false, true} {
			popts := parallelizer.DefaultOptions()
			popts.ExtendedSearch = ext
			wl := parallelizer.DefaultWorkload()
			plan, err := parallelizer.Search(cluster, perf.New(m), wl, popts)
			if err != nil {
				return nil, fmt.Errorf("search ext=%v: %w", ext, err)
			}
			cfg := engine.DefaultConfig(m, cluster)
			h, err := engine.NewHetis(cfg, plan)
			if err != nil {
				return nil, err
			}
			res, err := h.Run(reqs, horizonFor(dur))
			if err != nil {
				return nil, err
			}
			variant := "cp-greedy"
			if ext {
				variant = "extended"
			}
			tab.AddRow(m.Name, variant, plan.NumAttentionWorkers(),
				plan.Objective, res.Recorder.NormLatencySummary().Mean)
		}
	}
	return tab, nil
}
