package experiments

import (
	"strings"
	"testing"

	"hetis/internal/sweep"
)

// TestRunManyMatchesSequentialRun pins the pool contract: pooled execution
// renders exactly what the sequential runner renders, in id order.
func TestRunManyMatchesSequentialRun(t *testing.T) {
	// Cheap, fully deterministic experiments (no wall-clock columns).
	ids := []string{"table1", "fig15b", "fig5", "ablation-split"}
	opts := Options{Quick: true}

	results, err := RunMany(ids, opts, sweep.Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ids) {
		t.Fatalf("got %d results, want %d", len(results), len(ids))
	}
	wantOrder := []string{"ablation-split", "fig15b", "fig5", "table1"}
	for i, r := range results {
		if r.Key != wantOrder[i] {
			t.Fatalf("result %d keyed %s, want %s", i, r.Key, wantOrder[i])
		}
		seq, err := Run(r.Key, opts)
		if err != nil {
			t.Fatal(err)
		}
		if r.Table.String() != seq.String() {
			t.Errorf("%s: pooled table differs from sequential run", r.Key)
		}
	}
}

func TestRunManyRejectsUnknownIDBeforeRunning(t *testing.T) {
	if _, err := RunMany([]string{"fig15b", "fig99"}, Options{Quick: true}, sweep.Options{}); err == nil || !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("err = %v, want unknown-id error naming fig99", err)
	}
}

// TestSeedShiftsTraces confirms Options.Seed actually reaches the trace
// generators: a seeded replica of a trace-driven experiment must differ.
func TestSeedShiftsTraces(t *testing.T) {
	base, err := Run("fig15a", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	replica, err := Run("fig15a", Options{Quick: true, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	if base.String() == replica.String() {
		t.Error("Seed=123 produced an identical fig15a table; seeds are not threaded through")
	}
}
