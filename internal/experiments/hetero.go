package experiments

import (
	"fmt"

	"hetis/internal/engine"
	"hetis/internal/hardware"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/workload"
)

// AblationHetero quantifies the value of the low-end GPUs themselves: Hetis
// over a premium-scarce heterogeneous cluster (one A100 plus the 3090/P100
// leftovers) vs a vLLM-style reference that serves on the lone A100 only.
// With abundant premium GPUs a homogeneous deployment wins outright (a 13B
// model on 4×A100 needs no help); the heterogeneous machinery pays off
// exactly when high-end supply is the constraint — the production setting
// §1 motivates.
func AblationHetero(opts Options) (*metrics.Table, error) {
	m := model.Llama13B
	dur := opts.duration(40)
	tab := &metrics.Table{Header: []string{
		"Rate(req/s)", "vLLM-A100(s/tok)", "Hetis(s/tok)", "vLLM-done", "Hetis-done",
		"vLLM-cache(GB)", "Hetis-cache(GB)",
	}}
	for _, rate := range []float64{4, 8, 12, 16} {
		reqs := workload.Poisson(workload.ShareGPT, rate, dur, opts.seed(4000+int64(rate)))
		cluster := hardware.NewBuilder(hardware.LAN100G).
			AddHost("a100", hardware.PCIe4x16, hardware.A100, 1).
			AddHost("3090-0", hardware.PCIe3x16, hardware.RTX3090, 2).
			AddHost("3090-1", hardware.PCIe3x16, hardware.RTX3090, 2).
			AddHost("p100", hardware.PCIe3x16, hardware.P100, 4).
			MustBuild()
		cfg := engine.DefaultConfig(m, cluster)

		ref, err := engine.NewVLLM(cfg)
		if err != nil {
			return nil, fmt.Errorf("vllm: %w", err)
		}
		plan, err := engine.PlanForWorkload(cfg, reqs)
		if err != nil {
			return nil, err
		}
		het, err := engine.NewHetis(cfg, plan)
		if err != nil {
			return nil, err
		}
		horizon := dur * 12
		refRes, err := ref.Run(reqs, horizon)
		if err != nil {
			return nil, err
		}
		hetRes, err := het.Run(reqs, horizon)
		if err != nil {
			return nil, err
		}
		tab.AddRow(rate,
			refRes.Recorder.NormLatencySummary().Mean,
			hetRes.Recorder.NormLatencySummary().Mean,
			refRes.Completed, hetRes.Completed,
			float64(refRes.CacheCapacity)/1e9,
			float64(hetRes.CacheCapacity)/1e9)
	}
	return tab, nil
}
