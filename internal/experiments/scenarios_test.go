package experiments

import (
	"testing"

	"hetis/internal/scenario"
)

func TestScenariosExperiment(t *testing.T) {
	st := runOK(t, "scenarios")
	if got, want := st.header[0], "Scenario"; got != want {
		t.Fatalf("header[0] = %q, want %q", got, want)
	}
	// Every suite scenario contributes at least one row per engine, in
	// catalog order; heavy scenarios (megascale) stay out of the
	// experiment table.
	seen := map[string]int{}
	for _, row := range st.rows {
		seen[row[0]]++
	}
	for _, name := range scenario.SuiteNames() {
		if seen[name] < 3 {
			t.Errorf("scenario %s has %d rows, want >= 3 (one per engine)", name, seen[name])
		}
	}
	if seen["megascale"] != 0 {
		t.Errorf("heavy scenario megascale leaked into the experiment table (%d rows)", seen["megascale"])
	}
	// Attainment is a percentage.
	attainCol := st.col("Attain(%)")
	if attainCol < 0 {
		t.Fatal("no Attain(%) column")
	}
	for i := range st.rows {
		if v := st.float(t, i, attainCol); v < 0 || v > 100 {
			t.Errorf("row %d attainment %g outside [0,100]", i, v)
		}
	}
	// The multitenant scenario reports per-tenant rows.
	tenants := map[string]bool{}
	for _, row := range st.rows {
		if row[0] == "multitenant" {
			tenants[row[2]] = true
		}
	}
	for _, want := range []string{"all", "chat", "code", "batch"} {
		if !tenants[want] {
			t.Errorf("multitenant rows missing tenant %q (have %v)", want, tenants)
		}
	}
}

// TestScenariosSeedOffsetChangesTraffic: replicas must draw independent
// traces, like every other experiment.
func TestScenariosSeedOffsetChangesTraffic(t *testing.T) {
	a, err := Scenarios(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scenarios(Options{Quick: true, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Error("seed offset did not change the scenario tables")
	}
}
