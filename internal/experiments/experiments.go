// Package experiments regenerates every table and figure of the paper's
// evaluation (§7). Each experiment is a named function producing a text
// table with the same rows/series the paper reports; EXPERIMENTS.md records
// the paper-vs-measured comparison. Experiments are deterministic given
// their built-in seeds.
package experiments

import (
	"fmt"
	"sort"

	"hetis/internal/engine"
	"hetis/internal/hardware"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/sweep"
	"hetis/internal/workload"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks trace durations for smoke tests and benchmarks.
	Quick bool
	// Seed offsets every built-in trace seed, so sweeps can draw
	// independent replicas of the same experiment; 0 keeps the paper's
	// seeds. Runners are pure functions of these options — all randomness
	// flows through the seeds, and no runner touches shared mutable state
	// — which is what lets RunMany execute them concurrently.
	Seed int64
}

// seed derives a trace seed from an experiment's built-in base.
func (o Options) seed(base int64) int64 { return base + o.Seed }

// Runner is one experiment entry point.
type Runner func(Options) (*metrics.Table, error)

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"table1":     Table1,
	"fig2":       Fig2,
	"fig5":       Fig5,
	"fig7":       Fig7,
	"fig8":       Fig8,
	"fig9":       Fig9,
	"fig10":      Fig10,
	"fig11":      Fig11,
	"fig12":      Fig12,
	"fig13":      Fig13,
	"fig14":      Fig14,
	"fig15a":     Fig15a,
	"fig15b":     Fig15b,
	"fig16a":     Fig16a,
	"fig16b":     Fig16b,
	"search":     SearchOverhead,
	"accuracy":   ModelAccuracy,
	"throughput": Throughput,
	"scenarios":  Scenarios,
	// Ablations beyond the paper's figures (DESIGN.md §4).
	"ablation-split":     AblationSplit,
	"ablation-delta":     AblationDelta,
	"ablation-dispatch":  AblationDispatch,
	"ablation-migration": AblationMigration,
	"ablation-dp":        AblationDP,
	"ablation-hetero":    AblationHetero,
	"ablation-search":    AblationSearch,
}

// IDs lists the registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, opts Options) (*metrics.Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	return r(opts)
}

// RunMany executes the given experiments concurrently on a sweep pool and
// returns one result per id, ordered by id independent of completion
// order. Unknown ids fail fast before anything runs. The joined error
// aggregates every failed runner; successful tables are still returned
// alongside it.
func RunMany(ids []string, opts Options, pool sweep.Options) ([]sweep.Result, error) {
	jobs := make([]sweep.Job, len(ids))
	for i, id := range ids {
		r, ok := registry[id]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
		}
		jobs[i] = sweep.Job{Key: id, Run: func(*sweep.Cache) (*metrics.Table, error) {
			return r(opts)
		}}
	}
	return sweep.RunMany(jobs, pool)
}

// RunAll runs every registered experiment on the pool, in id order.
func RunAll(opts Options, pool sweep.Options) ([]sweep.Result, error) {
	return RunMany(IDs(), opts, pool)
}

// duration scales a trace length by Quick mode.
func (o Options) duration(full float64) float64 {
	if o.Quick {
		return full / 4
	}
	return full
}

// horizonFor bounds a run generously past the trace end.
func horizonFor(dur float64) float64 { return dur * 30 }

// buildEngines constructs the three systems for a model on the paper
// cluster, planning Hetis for the given trace.
func buildEngines(m model.Config, reqs []workload.Request) (het *engine.Hetis, hex *engine.HexGen, sw *engine.Splitwise, err error) {
	cluster := hardware.PaperCluster()
	cfg := engine.DefaultConfig(m, cluster)
	plan, err := engine.PlanForWorkload(cfg, reqs)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("plan: %w", err)
	}
	het, err = engine.NewHetis(cfg, plan)
	if err != nil {
		return nil, nil, nil, err
	}
	hex, err = engine.NewHexGen(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	sw, err = engine.NewSplitwise(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return het, hex, sw, nil
}

// datasetByCode resolves the two-letter dataset codes used in the paper's
// figures.
func datasetByCode(code string) workload.LengthDist {
	d, err := workload.ByName(code)
	if err != nil {
		panic(err)
	}
	return d
}
