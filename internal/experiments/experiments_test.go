package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

var quick = Options{Quick: true}

func runOK(t *testing.T, id string) *stringsTable {
	t.Helper()
	tab, err := Run(id, quick)
	if err != nil {
		t.Fatalf("Run(%s): %v", id, err)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("Run(%s): empty table", id)
	}
	return &stringsTable{header: tab.Header, rows: tab.Rows}
}

// stringsTable helps assertions over the rendered tables.
type stringsTable struct {
	header []string
	rows   [][]string
}

func (st *stringsTable) col(name string) int {
	for i, h := range st.header {
		if h == name {
			return i
		}
	}
	return -1
}

func (st *stringsTable) float(t *testing.T, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(st.rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d)=%q not a float: %v", row, col, st.rows[row][col], err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablation-delta", "ablation-dispatch", "ablation-dp", "ablation-hetero", "ablation-migration", "ablation-search",
		"ablation-split", "accuracy", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15a",
		"fig15b", "fig16a", "fig16b", "fig2", "fig5", "fig7", "fig8", "fig9", "scenarios", "search", "table1", "throughput"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs() = %v want %v", got, want)
		}
	}
	if _, err := Run("fig99", quick); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestTable1Shape(t *testing.T) {
	st := runOK(t, "table1")
	if len(st.rows) != 3 {
		t.Fatalf("table1 has %d rows, want 3", len(st.rows))
	}
	// Decode times must order A100 < 3090 < P100.
	dec := st.col("Time(Decode,s)")
	a, b, p := st.float(t, 0, dec), st.float(t, 1, dec), st.float(t, 2, dec)
	if !(a < b && b < p) {
		t.Fatalf("decode ordering broken: %g %g %g", a, b, p)
	}
}

func TestFig2MLPGapExceedsAttentionGap(t *testing.T) {
	st := runOK(t, "fig2")
	p100 := st.col("P100")
	var mlpMax, attnMax float64
	for i, row := range st.rows {
		v := st.float(t, i, p100)
		if row[1] == "MLP" && v > mlpMax {
			mlpMax = v
		}
		if row[1] == "Attention" && v > attnMax {
			attnMax = v
		}
	}
	t.Logf("fig2: max P100 gap MLP %.1fx, Attention %.1fx", mlpMax, attnMax)
	if mlpMax < 10 {
		t.Errorf("MLP gap %.1fx too small (paper: up to 40x)", mlpMax)
	}
	if attnMax > 6 {
		t.Errorf("attention gap %.1fx too large (paper: <5x)", attnMax)
	}
}

func TestFig5HeadWiseWins(t *testing.T) {
	st := runOK(t, "fig5")
	ratio := st.col("Ratio")
	for i, row := range st.rows {
		// A single worker in part (b) receives ALL heads; full offload
		// degenerates to near-identical volume, so skip that row.
		if row[0] == "(b)" && row[1] == "1" {
			continue
		}
		r := st.float(t, i, ratio)
		if r <= 1 {
			t.Errorf("row %v: head-wise should win, ratio %.2f", row, r)
		}
	}
	// At 20% offload the paper reports ~2.68x; accept 1.5-8x.
	first := st.float(t, 0, ratio)
	if first < 1.5 || first > 8 {
		t.Errorf("20%% offload ratio %.2f outside [1.5,8]", first)
	}
	// Four workers: paper reports up to 3.55x.
	last := st.float(t, len(st.rows)-1, ratio)
	if last < 2 {
		t.Errorf("4-worker ratio %.2f below 2", last)
	}
}

func TestFig7Linearity(t *testing.T) {
	st := runOK(t, "fig7")
	timeCol := st.col("AttnTime(ms)")
	var a, b, c []float64
	for i, row := range st.rows {
		v := st.float(t, i, timeCol)
		switch row[0] {
		case "(a)":
			a = append(a, v)
		case "(b)":
			b = append(b, v)
		case "(c)":
			c = append(c, v)
		}
	}
	// (a): flat within 1%.
	for _, v := range a[1:] {
		if math.Abs(v-a[0])/a[0] > 0.01 {
			t.Errorf("(a) not flat: %v", a)
		}
	}
	// (b), (c): strictly increasing.
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Errorf("(b) not increasing: %v", b)
		}
	}
	for i := 1; i < len(c); i++ {
		if c[i] <= c[i-1] {
			t.Errorf("(c) not increasing: %v", c)
		}
	}
}

func TestFig8HetisWinsAtHighRate(t *testing.T) {
	st := runOK(t, "fig8")
	sw, hg, ht := st.col("Splitwise(s/tok)"), st.col("Hexgen(s/tok)"), st.col("Hetis(s/tok)")
	wins := 0
	for i := range st.rows {
		if st.float(t, i, ht) <= st.float(t, i, hg) && st.float(t, i, ht) <= st.float(t, i, sw) {
			wins++
		}
	}
	if wins*2 < len(st.rows) {
		t.Errorf("hetis wins only %d of %d settings", wins, len(st.rows))
	}
}

func TestFig11HetisLargestCache(t *testing.T) {
	st := runOK(t, "fig11")
	h, x, s := st.col("Hetis(GB)"), st.col("Hexgen(GB)"), st.col("Splitwise(GB)")
	for i, row := range st.rows {
		ht, hx, sw := st.float(t, i, h), st.float(t, i, x), st.float(t, i, s)
		if !(ht > hx && hx > sw) {
			t.Errorf("%v: cache ordering broken: hetis %.0f hexgen %.0f splitwise %.0f", row[:2], ht, hx, sw)
		}
	}
}

func TestFig12HetisBestP95(t *testing.T) {
	st := runOK(t, "fig12")
	hx, sw := st.col("Hexgen"), st.col("Splitwise")
	for i, row := range st.rows {
		// HexGen must lose on every metric (it drags dense modules through
		// low-end GPUs and pays pipeline bubbles).
		if st.float(t, i, hx) < 0.99 {
			t.Errorf("%v: hexgen %.2f beat hetis", row[:2], st.float(t, i, hx))
		}
		// Our Splitwise is stronger than the paper's (its decode side gets
		// two A100s so FP16 Llama-70B fits; see EXPERIMENTS.md). At the
		// unsaturated Fig. 12 rates it may edge Hetis slightly, but never
		// by a large margin.
		if v := st.float(t, i, sw); v < 0.55 {
			t.Errorf("%v: splitwise %.2f beats hetis beyond the documented band", row[:2], v)
		}
	}
}

func TestFig13ModuleGains(t *testing.T) {
	st := runOK(t, "fig13")
	hx := st.col("Hexgen")
	for i, row := range st.rows {
		if st.float(t, i, hx) < 0.95 {
			t.Errorf("%v: hexgen module latency %.2f should not beat hetis", row[:2], st.float(t, i, hx))
		}
	}
}

func TestFig14SeriesShape(t *testing.T) {
	st := runOK(t, "fig14")
	// The A100 should carry load before the 3090s (light-load locality).
	a100Heads := st.col("A100-heads")
	w0 := st.col("3090a-heads")
	var a100First, remoteFirst float64 = -1, -1
	for i := range st.rows {
		tcol := st.float(t, i, 0)
		if a100First < 0 && st.float(t, i, a100Heads) > 0 {
			a100First = tcol
		}
		if remoteFirst < 0 && st.float(t, i, w0) > 0 {
			remoteFirst = tcol
		}
	}
	if a100First < 0 {
		t.Fatal("A100 never took load")
	}
	if remoteFirst >= 0 && remoteFirst < a100First {
		t.Errorf("3090 took load (t=%.0f) before the A100 (t=%.0f)", remoteFirst, a100First)
	}
}

func TestFig15aRedispatchHelps(t *testing.T) {
	st := runOK(t, "fig15a")
	ratio := st.col("LIFO/Hetis")
	hetisCol := st.col("Hetis")
	lifoCol := st.col("LIFO")
	completedRatio := st.float(t, 2, ratio)
	hetisEvict := st.float(t, 3, hetisCol)
	lifoEvict := st.float(t, 3, lifoCol)
	migrations := st.float(t, 4, hetisCol)
	t.Logf("fig15a: completed ratio %.2f, evictions hetis %.0f vs lifo %.0f, migrations %.0f",
		completedRatio, hetisEvict, lifoEvict, migrations)
	// The paper reports 1.06x mean / 1.14x P95 latency degradation under
	// plain LIFO; in the simulator the device-oblivious policy degrades
	// further, into recompute storms. The invariant either way: Hetis
	// serves at least as many requests with far fewer evictions.
	if completedRatio > 1.001 {
		t.Errorf("plain LIFO completed more requests (ratio %.2f)", completedRatio)
	}
	if lifoEvict > 0 && hetisEvict >= lifoEvict {
		t.Errorf("re-dispatching should cut evictions: hetis %.0f vs lifo %.0f", hetisEvict, lifoEvict)
	}
	if migrations == 0 {
		t.Error("no re-dispatch migrations fired; the experiment lost its pressure")
	}
}

func TestFig15bOverheads(t *testing.T) {
	st := runOK(t, "fig15b")
	hetis := st.col("Hetis(norm)")
	store := st.float(t, 0, hetis)
	fetch := st.float(t, 1, hetis)
	if store <= 1.0 || store > 1.3 {
		t.Errorf("store overhead %.2f outside (1.0,1.3]", store)
	}
	if fetch >= 1.0 || fetch < 0.5 {
		t.Errorf("fetch ratio %.2f outside [0.5,1.0)", fetch)
	}
}

func TestFig16aDefaultNearOptimal(t *testing.T) {
	st := runOK(t, "fig16a")
	// Θ=0.5 row must be 1.0 by construction and no Θ should improve on it
	// by more than ~10%.
	for _, ds := range []string{"SG", "HE", "LB"} {
		col := st.col(ds)
		for i := range st.rows {
			v := st.float(t, i, col)
			if v < 0.85 {
				t.Errorf("%s: Θ=%s beats default by %.0f%%", ds, st.rows[i][0], (1-v)*100)
			}
		}
	}
}

func TestFig16bBoundedDegradation(t *testing.T) {
	st := runOK(t, "fig16b")
	// Paper: ≤6.9% degradation at ±20%. Allow 15% in the simulator.
	for i, row := range st.rows {
		for _, param := range []string{"a", "b", "c", "gamma", "beta"} {
			v := st.float(t, i, st.col(param))
			if v > 1.15 {
				t.Errorf("error %s%%: parameter %s degrades latency by %.0f%%", row[0], param, (v-1)*100)
			}
		}
	}
}

func TestSearchOverheadFast(t *testing.T) {
	st := runOK(t, "search")
	if len(st.rows) != 2 {
		t.Fatalf("want 2 clusters, got %d", len(st.rows))
	}
	for _, row := range st.rows {
		if !strings.Contains(row[3], "µs") && !strings.Contains(row[3], "ms") && !strings.Contains(row[3], "ns") {
			t.Errorf("search time %q suspiciously large", row[3])
		}
	}
}

func TestAccuracyMatchesPaperBand(t *testing.T) {
	st := runOK(t, "accuracy")
	attn := st.col("AttnAccuracy(%)")
	net := st.col("NetAccuracy(%)")
	for i := range st.rows {
		if st.float(t, i, attn) < 90 {
			t.Errorf("device %s: attention accuracy %.1f%% below 90%%", st.rows[i][0], st.float(t, i, attn))
		}
		if st.float(t, i, net) < 92 {
			t.Errorf("device %s: network accuracy %.1f%% below 92%%", st.rows[i][0], st.float(t, i, net))
		}
	}
}

func TestFig9And10Run(t *testing.T) {
	for _, id := range []string{"fig9", "fig10"} {
		st := runOK(t, id)
		ht := st.col("Hetis(s/tok)")
		for i := range st.rows {
			if v := st.float(t, i, ht); v <= 0 {
				t.Errorf("%s row %d: non-positive latency %g", id, i, v)
			}
		}
	}
}
