package experiments

import (
	"time"

	"hetis/internal/hardware"
	"hetis/internal/kvcache"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/parallelizer"
	"hetis/internal/perf"
	"hetis/internal/profile"
)

// Table1 reproduces Table 1: memory capacity and full-model iteration time
// per GPU for OPT-2.7B (3 prefill requests, 25 decode requests).
func Table1(Options) (*metrics.Table, error) {
	est := perf.New(model.OPT27B)
	cfg := model.OPT27B
	const (
		promptLen = 512
		decodeCtx = 200
		prefills  = 3
		decodes   = 25
	)
	prompts := make([]int, prefills)
	for i := range prompts {
		prompts[i] = promptLen
	}
	tab := &metrics.Table{Header: []string{"Device", "Memory(GB)", "Time(Prefill,s)", "Time(Decode,s)"}}
	for _, spec := range []hardware.GPUSpec{hardware.A100, hardware.RTX3090, hardware.P100} {
		prefill := est.PrefillStepTime(spec, prompts, cfg.Layers, 1)
		decode := est.DecodeStepDenseTime(spec, decodes, cfg.Layers, 1)
		heads := decodes * cfg.Heads
		cache := est.CacheBytesPerLayer(cfg.Heads, decodeCtx) * decodes
		decode += float64(cfg.Layers) * est.AttnDecodeTime(spec, heads, cache)
		tab.AddRow(spec.Name, float64(spec.MemBytes)/1e9, prefill, decode)
	}
	return tab, nil
}

// Fig2 reproduces Fig. 2: per-layer decode MLP and Attention time across
// GPUs for Llama-70B with 1000-token contexts, normalized to the A100.
func Fig2(Options) (*metrics.Table, error) {
	est := perf.New(model.Llama70B)
	cfg := model.Llama70B
	const seqLen = 1000
	tab := &metrics.Table{Header: []string{"Requests", "Module", "P100", "3090", "A100(norm=1)"}}
	for _, n := range []int{20, 100, 200, 300, 400} {
		mlp := func(spec hardware.GPUSpec) float64 {
			// MLP share of the dense layer (module-level, no projections).
			full := est.DenseLayerTime(spec, n, 1)
			frac := cfg.MLPFlopsPerToken() / cfg.DenseFlopsPerToken()
			return full * frac
		}
		attn := func(spec hardware.GPUSpec) float64 {
			heads := n * cfg.Heads
			cache := est.CacheBytesPerLayer(cfg.Heads, seqLen) * int64(n)
			return est.AttnDecodeTime(spec, heads, cache)
		}
		baseM, baseA := mlp(hardware.A100), attn(hardware.A100)
		tab.AddRow(n, "MLP", mlp(hardware.P100)/baseM, mlp(hardware.RTX3090)/baseM, 1.0)
		tab.AddRow(n, "Attention", attn(hardware.P100)/baseA, attn(hardware.RTX3090)/baseA, 1.0)
	}
	return tab, nil
}

// Fig5 reproduces Fig. 5: communication overhead of head-wise vs
// sequence-wise attention splitting on Llama-70B over 100 Gbps.
// (a) one attention worker at varying offload ratios; (b) loads spread
// evenly over 1-4 workers.
func Fig5(Options) (*metrics.Table, error) {
	est := perf.New(model.Llama70B)
	cfg := model.Llama70B
	link := hardware.LAN100G
	const batch = 64 // decoding requests per iteration

	tab := &metrics.Table{Header: []string{"Part", "X", "HeadWise(ms)", "SeqWise(ms)", "Ratio"}}

	// (a) offload ratio sweep, one worker.
	for _, pct := range []int{20, 40, 60, 80} {
		heads := cfg.Heads * pct / 100
		hw := perf.P2PTime(link, int64(batch)*est.HeadScatterBytes(heads))
		// Sequence-wise must ship the full q vector and gather the full
		// partial result regardless of the cache fraction offloaded.
		sw := perf.P2PTime(link, int64(batch)*est.SeqScatterBytes())
		tab.AddRow("(a)", pct, hw*1e3, sw*1e3, sw/hw)
	}

	// (b) even split over w workers. All legs originate at the primary and
	// serialize on its NIC: head-wise total volume is constant in w (each
	// worker receives its own disjoint heads), while sequence-wise must
	// replicate the full q vector to every worker, so its volume grows
	// linearly with w — the contention the paper highlights.
	for _, w := range []int{1, 2, 3, 4} {
		headsPer := cfg.Heads / w
		hwBytes := int64(batch) * est.HeadScatterBytes(headsPer) * int64(w)
		hw := float64(w)*link.Alpha + float64(hwBytes)/link.Beta
		swBytes := int64(batch) * est.SeqScatterBytes() * int64(w)
		sw := float64(w)*link.Alpha + float64(swBytes)/link.Beta
		tab.AddRow("(b)", w, hw*1e3, sw*1e3, sw/hw)
	}
	return tab, nil
}

// Fig7 reproduces Fig. 7: the linear structure of decode-attention time on
// OPT-30B. (a) time vs request count at fixed totals; (b) vs average
// context length; (c) vs head count.
func Fig7(Options) (*metrics.Table, error) {
	est := perf.New(model.OPT30B)
	cfg := model.OPT30B
	spec := hardware.A100
	tab := &metrics.Table{Header: []string{"Part", "X", "AttnTime(ms)"}}

	// (a) fixed totals (30k heads, fixed cache), varying request count.
	totalHeads := 30000
	for _, n := range []int{400, 500, 600, 700} {
		// The same total cache split over n requests.
		cache := est.CacheBytesPerLayer(cfg.Heads, 1000) * 550 // constant
		t := est.AttnDecodeTime(spec, totalHeads, cache)
		tab.AddRow("(a)", n, t*1e3)
	}

	// (b) growing context length, fixed 550 requests.
	for _, ctx := range []int{900, 1000, 1100, 1200} {
		heads := 550 * cfg.Heads
		cache := est.CacheBytesPerLayer(cfg.Heads, ctx) * 550
		t := est.AttnDecodeTime(spec, heads, cache)
		tab.AddRow("(b)", ctx, t*1e3)
	}

	// (c) growing head count, fixed cache.
	fixedCache := est.CacheBytesPerLayer(cfg.Heads, 1000) * 550
	for _, heads := range []int{15000, 30000, 45000} {
		t := est.AttnDecodeTime(spec, heads, fixedCache)
		tab.AddRow("(c)", heads, t*1e3)
	}
	return tab, nil
}

// Fig15b reproduces Fig. 15(b): head-wise vs token-wise cache-management
// overhead on the store and fetch paths.
func Fig15b(Options) (*metrics.Table, error) {
	m := kvcache.DefaultMgmtCost()
	const groups, blocks = 40, 64
	tab := &metrics.Table{Header: []string{"Path", "vLLM(norm)", "Hetis(norm)"}}
	tab.AddRow("Stor.", 1.0, m.HeadWiseStore(groups)/m.TokenWiseStore())
	tab.AddRow("Fetch.", 1.0, m.HeadWiseFetch(groups, blocks)/m.TokenWiseFetch(blocks))
	return tab, nil
}

// SearchOverhead reproduces the §7.4 searching-overhead measurement: the
// Parallelizer's wall-clock time on the paper cluster and on a large
// simulated cluster with five GPU types × 32 GPUs.
func SearchOverhead(Options) (*metrics.Table, error) {
	tab := &metrics.Table{Header: []string{"Cluster", "GPUs", "Configs", "SearchTime"}}

	run := func(name string, cluster *hardware.Cluster, m model.Config, batch int) error {
		wl := parallelizer.DefaultWorkload()
		wl.DecodeBatch = batch
		start := time.Now()
		plan, err := parallelizer.Search(cluster, perf.New(m), wl, parallelizer.DefaultOptions())
		if err != nil {
			return err
		}
		tab.AddRow(name, cluster.NumDevices(), plan.Evaluated, time.Since(start).String())
		return nil
	}
	if err := run("paper(4xA100+4x3090+4xP100)", hardware.PaperCluster(), model.Llama70B, 64); err != nil {
		return nil, err
	}
	big := hardware.NewBuilder(hardware.LAN100G)
	for _, s := range []hardware.GPUSpec{hardware.H100, hardware.A100, hardware.V100, hardware.RTX3090, hardware.P100} {
		for h := 0; h < 4; h++ {
			big.AddHost(s.Name, hardware.PCIe4x16, s, 8)
		}
	}
	if err := run("large(5 types x 32)", big.MustBuild(), model.Llama70B, 512); err != nil {
		return nil, err
	}
	return tab, nil
}

// ModelAccuracy reproduces the §7.4 profiling-accuracy measurement: the
// fitted Eq. 3 / Eq. 4 models against held-out ground truth per device.
func ModelAccuracy(Options) (*metrics.Table, error) {
	est := perf.New(model.OPT30B)
	cluster := hardware.PaperCluster()
	prof, err := profile.Run(est, cluster, 0, profile.DefaultOptions())
	if err != nil {
		return nil, err
	}
	tab := &metrics.Table{Header: []string{"Device", "AttnAccuracy(%)", "NetAccuracy(%)"}}
	for _, dev := range cluster.Devices {
		tab.AddRow(dev.String(), prof.AttnAccuracy[dev.ID]*100, prof.NetAccuracy[dev.ID]*100)
	}
	return tab, nil
}
