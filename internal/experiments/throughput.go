package experiments

import (
	"fmt"

	"hetis/internal/engine"
	"hetis/internal/hardware"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/workload"
)

// sloNormLatency is the service objective used to define "sustained": mean
// normalized latency at or below this many seconds per token.
const sloNormLatency = 0.25

// maxSustainedRate ladders the request rate upward and returns the largest
// rate at which the engine finishes ≥99% of the trace within the horizon
// while meeting the latency SLO.
func maxSustainedRate(build func(reqs []workload.Request) (engine.Engine, error), dist workload.LengthDist, rates []float64, dur float64, opts Options) (float64, error) {
	best := 0.0
	for _, rate := range rates {
		reqs := workload.Poisson(dist, rate, dur, opts.seed(3000+int64(rate*7)))
		if len(reqs) == 0 {
			continue
		}
		eng, err := build(reqs)
		if err != nil {
			return 0, err
		}
		res, err := eng.Run(reqs, dur*8)
		if err != nil {
			return 0, err
		}
		done := float64(res.Completed) / float64(len(reqs))
		lat := res.Recorder.NormLatencySummary().Mean
		if done >= 0.99 && lat <= sloNormLatency {
			best = rate
		}
	}
	return best, nil
}

// Throughput reproduces the abstract's headline claim: the maximum request
// rate each system sustains (≥99% completion within the horizon and mean
// normalized latency ≤ 0.25 s/token), per dataset, on Llama-13B over the
// paper cluster. The paper reports Hetis sustaining up to 2.25× Splitwise's
// rate and 1.33× HexGen's.
func Throughput(opts Options) (*metrics.Table, error) {
	m := model.Llama13B
	dur := opts.duration(40)
	ladders := map[string][]float64{
		"SG": {2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 16},
		"HE": {10, 15, 20, 25, 30, 40, 50, 60, 70, 80},
		"LB": {1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
	}
	tab := &metrics.Table{Header: []string{
		"Dataset", "Splitwise(req/s)", "Hexgen(req/s)", "Hetis(req/s)",
		"Hetis/SW", "Hetis/HG",
	}}
	for _, ds := range []string{"SG", "HE", "LB"} {
		dist := datasetByCode(ds)
		rates := ladders[ds]

		swRate, err := maxSustainedRate(func(reqs []workload.Request) (engine.Engine, error) {
			cfg := engine.DefaultConfig(m, clusterForThroughput())
			return engine.NewSplitwise(cfg)
		}, dist, rates, dur, opts)
		if err != nil {
			return nil, fmt.Errorf("splitwise %s: %w", ds, err)
		}
		hgRate, err := maxSustainedRate(func(reqs []workload.Request) (engine.Engine, error) {
			cfg := engine.DefaultConfig(m, clusterForThroughput())
			return engine.NewHexGen(cfg)
		}, dist, rates, dur, opts)
		if err != nil {
			return nil, fmt.Errorf("hexgen %s: %w", ds, err)
		}
		htRate, err := maxSustainedRate(func(reqs []workload.Request) (engine.Engine, error) {
			cfg := engine.DefaultConfig(m, clusterForThroughput())
			plan, err := engine.PlanForWorkload(cfg, reqs)
			if err != nil {
				return nil, err
			}
			return engine.NewHetis(cfg, plan)
		}, dist, rates, dur, opts)
		if err != nil {
			return nil, fmt.Errorf("hetis %s: %w", ds, err)
		}

		ratio := func(a, b float64) float64 {
			if b == 0 {
				return 0
			}
			return a / b
		}
		tab.AddRow(ds, swRate, hgRate, htRate, ratio(htRate, swRate), ratio(htRate, hgRate))
	}
	return tab, nil
}

// clusterForThroughput isolates cluster construction so the ladder gets a
// fresh deployment per probe.
func clusterForThroughput() *hardware.Cluster { return hardware.PaperCluster() }
