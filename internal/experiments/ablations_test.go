package experiments

import (
	"strings"
	"testing"
)

func TestAblationIDsRegistered(t *testing.T) {
	ids := strings.Join(IDs(), " ")
	for _, id := range []string{"ablation-split", "ablation-delta", "ablation-dispatch", "ablation-migration", "ablation-dp"} {
		if !strings.Contains(ids, id) {
			t.Errorf("registry missing %s", id)
		}
	}
}

func TestAblationDeltaMonotoneDemotion(t *testing.T) {
	st := runOK(t, "ablation-delta")
	// Larger Δ can only demote more (or equally many) GPUs.
	col := st.col("AttentionWorkers")
	prev := -1.0
	for i := range st.rows {
		v := st.float(t, i, col)
		if v < prev {
			t.Fatalf("demotion count decreased as Δ grew: row %d has %v after %v", i, v, prev)
		}
		prev = v
	}
	// Δ = 0 demotes nothing on the 70B plan (every GPU helps Cp a little).
	if st.float(t, 0, col) != 0 {
		t.Errorf("Δ=0 should keep every GPU primary, demoted %v", st.rows[0])
	}
}

func TestAblationDispatchLPCompetitive(t *testing.T) {
	st := runOK(t, "ablation-dispatch")
	ratio := st.col("Greedy/LP")
	mean := st.float(t, 0, ratio)
	completed := st.float(t, 2, ratio)
	t.Logf("greedy/LP: mean latency %.3f, completion %.3f", mean, completed)
	// Both policies place head groups sensibly; the LP must not lose
	// badly (it is the paper's choice for optimality, greedy is the
	// cheap approximation). Allow ±25% chaos band.
	if mean < 0.75 || mean > 1.35 {
		t.Errorf("greedy/LP mean latency ratio %.2f outside sanity band", mean)
	}
	if completed < 0.9 {
		t.Errorf("greedy completed only %.0f%% of LP's requests", completed*100)
	}
}

func TestAblationMigrationRuns(t *testing.T) {
	st := runOK(t, "ablation-migration")
	migRow := st.col("Overlapped")
	if st.float(t, 2, migRow) <= 0 {
		t.Error("overlapped run performed no migrations; experiment lost pressure")
	}
}

func TestAblationDPTradeoff(t *testing.T) {
	st := runOK(t, "ablation-dp")
	if len(st.rows) != 3 {
		t.Fatalf("want 3 instance counts, got %d", len(st.rows))
	}
	// More instances duplicate weights: cache must shrink monotonically.
	cache := st.col("Cache(GB)")
	prev := 1e18
	for i, row := range st.rows {
		if row[1] == "infeasible" {
			continue
		}
		v := st.float(t, i, cache)
		if v > prev+1e-9 {
			t.Errorf("cache grew with more instances: %v", st.rows)
		}
		prev = v
	}
}

func TestAblationSplitGranularity(t *testing.T) {
	st := runOK(t, "ablation-split")
	if len(st.rows) != 3 {
		t.Fatalf("want 3 schemes, got %d", len(st.rows))
	}
	traffic := st.col("TrafficPerStep(ms)")
	headTraffic := st.float(t, 0, traffic)
	seqTraffic := st.float(t, 1, traffic)
	if headTraffic >= seqTraffic {
		t.Errorf("head-wise traffic %.3f should undercut seq-wise %.3f", headTraffic, seqTraffic)
	}
}

func TestThroughputHeadline(t *testing.T) {
	st := runOK(t, "throughput")
	if len(st.rows) != 3 {
		t.Fatalf("want 3 datasets, got %d", len(st.rows))
	}
	hgRatio := st.col("Hetis/HG")
	swRatio := st.col("Hetis/SW")
	swWins := 0
	var maxRatio float64
	for i := range st.rows {
		hg := st.float(t, i, hgRatio)
		sw := st.float(t, i, swRatio)
		if hg < 1 {
			t.Errorf("%s: hetis sustains less than hexgen (ratio %.2f)", st.rows[i][0], hg)
		}
		if sw >= 1 {
			swWins++
		}
		if hg > maxRatio {
			maxRatio = hg
		}
		if sw > maxRatio {
			maxRatio = sw
		}
	}
	// Paper: up to 2.25x (vs Splitwise) / 1.33x (vs HexGen) higher rate.
	// Require a clear advantage somewhere and wins against Splitwise on
	// most datasets (HumanEval's prefill-heavy profile can favour
	// disaggregation at the SLO boundary; see EXPERIMENTS.md).
	if maxRatio < 1.3 {
		t.Errorf("best sustained-rate advantage %.2fx below 1.3x", maxRatio)
	}
	if swWins < 2 {
		t.Errorf("hetis out-sustains splitwise on only %d of 3 datasets", swWins)
	}
}
