// Package fleet shards one simulated serving run across N independent
// cluster replicas behind a front-door router — the layer that turns "one
// run is one cluster" into "one run is a fleet", and the first place the
// simulator parallelizes *inside* a single run rather than across runs.
//
// The package deliberately contains no execution machinery: it decides,
// deterministically and entirely at admission time, which shard serves
// each request (Router), and how each shard derives its private random
// seed from the run seed (SplitSeed). The scenario layer owns the rest —
// building one engine per shard, executing the shards concurrently on the
// sweep worker pool, and merging per-shard results/windows/traces in shard
// order. Because every routing decision is a pure function of the request
// sequence (never of completion-order feedback), the merged output is
// byte-identical at any shard-worker count and any GOMAXPROCS.
package fleet

import (
	"fmt"
	"strings"

	"hetis/internal/workload"
)

// Routing policies.
const (
	// PolicyWeighted is smooth weighted round-robin: shard i receives a
	// share of requests proportional to its weight, interleaved as evenly
	// as the weights allow (nginx's SWRR, without the dynamic demotion).
	PolicyWeighted = "weighted"
	// PolicyLeastLoaded routes each request to the shard with the least
	// cumulative assigned work (prompt + output tokens, scaled by shard
	// weight) at admission time. This is the deterministic stand-in for a
	// queue-depth balancer: assigned work is known at admission, queue
	// depth is not knowable without completion feedback.
	PolicyLeastLoaded = "least-loaded"
	// PolicyAffinity pins each tenant to a shard by hashing the tenant
	// name (FNV-1a), so a tenant's requests share one shard's KV cache and
	// batch. Untenanted requests fall back to weighted round-robin.
	PolicyAffinity = "affinity"
)

// Policies lists the routing policies in documentation order.
func Policies() []string {
	return []string{PolicyWeighted, PolicyLeastLoaded, PolicyAffinity}
}

// KnownPolicy reports whether name is a routing policy.
func KnownPolicy(name string) bool {
	switch name {
	case PolicyWeighted, PolicyLeastLoaded, PolicyAffinity:
		return true
	}
	return false
}

// Router assigns requests to shards under one of the routing policies. A
// Router is stateful (round-robin counters, cumulative load) and
// single-goroutine: route one trace through it in arrival order, before
// any shard executes. It is NOT safe for concurrent use — by construction
// it never needs to be, since routing completes before execution begins.
type Router struct {
	policy  string
	weights []float64
	total   float64 // sum of weights

	current []float64 // SWRR per-shard accumulators
	load    []float64 // least-loaded cumulative assigned tokens
}

// NewRouter builds a router over `shards` shards. weights may be nil (all
// shards weigh 1) or one positive weight per shard; they scale both the
// round-robin share and the least-loaded capacity.
func NewRouter(policy string, shards int, weights []float64) (*Router, error) {
	if shards < 1 {
		return nil, fmt.Errorf("fleet: need at least 1 shard, got %d", shards)
	}
	if !KnownPolicy(policy) {
		return nil, fmt.Errorf("fleet: unknown routing policy %q (known: %s)", policy, strings.Join(Policies(), ", "))
	}
	if weights == nil {
		weights = make([]float64, shards)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != shards {
		return nil, fmt.Errorf("fleet: %d weights for %d shards", len(weights), shards)
	}
	var total float64
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("fleet: shard %d weight %g must be positive", i, w)
		}
		total += w
	}
	return &Router{
		policy:  policy,
		weights: append([]float64(nil), weights...),
		total:   total,
		current: make([]float64, shards),
		load:    make([]float64, shards),
	}, nil
}

// Shards reports the shard count.
func (r *Router) Shards() int { return len(r.weights) }

// Policy reports the routing policy.
func (r *Router) Policy() string { return r.policy }

// Route assigns one request to a shard. Decisions depend only on the
// request sequence routed so far — admission-time state, never execution
// feedback — so the assignment is reproducible from the trace alone.
func (r *Router) Route(req workload.Request) int {
	switch r.policy {
	case PolicyLeastLoaded:
		return r.routeLeastLoaded(req)
	case PolicyAffinity:
		if req.Tenant != "" {
			return int(fnv1a(req.Tenant) % uint64(len(r.weights)))
		}
		return r.routeSWRR()
	default: // PolicyWeighted
		return r.routeSWRR()
	}
}

// routeSWRR is one smooth-weighted-round-robin step: every shard gains its
// weight, the richest shard wins and pays the total back. Ties break to
// the lowest index.
func (r *Router) routeSWRR() int {
	best := 0
	for i := range r.current {
		r.current[i] += r.weights[i]
		if r.current[i] > r.current[best] {
			best = i
		}
	}
	r.current[best] -= r.total
	return best
}

// routeLeastLoaded picks the shard with the smallest weight-scaled
// cumulative assigned work and charges the request's total tokens to it.
// Ties break to the lowest index.
func (r *Router) routeLeastLoaded(req workload.Request) int {
	best := 0
	for i := 1; i < len(r.load); i++ {
		if r.load[i]/r.weights[i] < r.load[best]/r.weights[best] {
			best = i
		}
	}
	r.load[best] += float64(req.TotalLen())
	return best
}

// Partition routes a whole trace and returns one per-shard sub-trace,
// preserving arrival order within each shard. Every request lands in
// exactly one shard; the sub-trace lengths sum to len(reqs).
func (r *Router) Partition(reqs []workload.Request) [][]workload.Request {
	out := make([][]workload.Request, r.Shards())
	for _, req := range reqs {
		s := r.Route(req)
		out[s] = append(out[s], req)
	}
	return out
}

// fnv1a is the 64-bit FNV-1a hash, inlined so routing a tenant costs no
// allocation and no stdlib hashing state.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
