package fleet

import (
	"math/rand"
	"testing"

	"hetis/internal/workload"
)

func TestNewRouterValidation(t *testing.T) {
	cases := []struct {
		name    string
		policy  string
		shards  int
		weights []float64
	}{
		{"zero shards", PolicyWeighted, 0, nil},
		{"unknown policy", "round-robin-ish", 4, nil},
		{"weight count mismatch", PolicyWeighted, 4, []float64{1, 2}},
		{"zero weight", PolicyLeastLoaded, 2, []float64{1, 0}},
		{"negative weight", PolicyAffinity, 2, []float64{1, -3}},
	}
	for _, c := range cases {
		if _, err := NewRouter(c.policy, c.shards, c.weights); err == nil {
			t.Errorf("%s: NewRouter(%q, %d, %v) accepted", c.name, c.policy, c.shards, c.weights)
		}
	}
	for _, p := range Policies() {
		if !KnownPolicy(p) {
			t.Errorf("KnownPolicy(%q) = false for listed policy", p)
		}
		if _, err := NewRouter(p, 3, nil); err != nil {
			t.Errorf("NewRouter(%q, 3, nil): %v", p, err)
		}
	}
	if KnownPolicy("") {
		t.Error(`KnownPolicy("") = true`)
	}
}

// Equal weights reduce SWRR to plain round-robin — the tightest possible
// interleave, and a readable spot-check of the accumulator arithmetic.
func TestWeightedEqualIsRoundRobin(t *testing.T) {
	r, err := NewRouter(PolicyWeighted, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if got, want := r.Route(workload.Request{}), i%4; got != want {
			t.Fatalf("request %d routed to shard %d, want %d", i, got, want)
		}
	}
}

// Unequal weights must split the request count proportionally over any
// window that is a multiple of the weight total, and never starve the
// light shard to the end (the "smooth" in SWRR).
func TestWeightedShares(t *testing.T) {
	r, err := NewRouter(PolicyWeighted, 2, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := [2]int{}
	firstLight := -1
	for i := 0; i < 40; i++ {
		s := r.Route(workload.Request{})
		counts[s]++
		if s == 1 && firstLight < 0 {
			firstLight = i
		}
	}
	if counts[0] != 30 || counts[1] != 10 {
		t.Fatalf("shares = %v, want [30 10]", counts)
	}
	if firstLight >= 4 {
		t.Fatalf("light shard first served at request %d; SWRR should interleave within one weight cycle", firstLight)
	}
}

func TestLeastLoadedBalancesTokens(t *testing.T) {
	r, err := NewRouter(PolicyLeastLoaded, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	load := [3]float64{}
	for i := 0; i < 2000; i++ {
		req := workload.Request{PromptLen: 1 + rng.Intn(900), OutputLen: 1 + rng.Intn(300)}
		load[r.Route(req)] += float64(req.TotalLen())
	}
	min, max := load[0], load[0]
	for _, l := range load[1:] {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	// Admission-time balancing keeps shard loads within one max-request of
	// each other; 5% is a generous ceiling for this trace.
	if (max-min)/max > 0.05 {
		t.Fatalf("token loads diverge: %v", load)
	}
}

// A heavier least-loaded shard must absorb proportionally more tokens.
func TestLeastLoadedHonorsWeights(t *testing.T) {
	r, err := NewRouter(PolicyLeastLoaded, 2, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	load := [2]float64{}
	for i := 0; i < 4000; i++ {
		req := workload.Request{PromptLen: 100, OutputLen: 100}
		load[r.Route(req)] += float64(req.TotalLen())
	}
	ratio := load[0] / load[1]
	if ratio < 2.9 || ratio > 3.1 {
		t.Fatalf("load ratio %.2f, want ~3 for weights 3:1 (loads %v)", ratio, load)
	}
}

func TestAffinityPinsTenants(t *testing.T) {
	r, err := NewRouter(PolicyAffinity, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	pinned := map[string]int{}
	tenants := []string{"chat", "code", "batch", "search", ""}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		tn := tenants[rng.Intn(len(tenants))]
		s := r.Route(workload.Request{Tenant: tn})
		if tn == "" {
			continue // untenanted traffic round-robins; no pin to check
		}
		if prev, ok := pinned[tn]; ok && prev != s {
			t.Fatalf("tenant %q moved from shard %d to %d", tn, prev, s)
		}
		pinned[tn] = s
	}
	if len(pinned) != 4 {
		t.Fatalf("saw %d pinned tenants, want 4", len(pinned))
	}
}

// Routing must be a pure function of the request sequence: two routers fed
// the same trace agree on every assignment, regardless of anything else in
// the process.
func TestRouteDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tenants := []string{"chat", "code", "", "batch"}
	reqs := make([]workload.Request, 500)
	for i := range reqs {
		reqs[i] = workload.Request{
			ID:        int64(i),
			PromptLen: 1 + rng.Intn(500),
			OutputLen: 1 + rng.Intn(200),
			Tenant:    tenants[rng.Intn(len(tenants))],
		}
	}
	for _, policy := range Policies() {
		a, err := NewRouter(policy, 5, []float64{2, 1, 1, 3, 1})
		if err != nil {
			t.Fatal(err)
		}
		b, _ := NewRouter(policy, 5, []float64{2, 1, 1, 3, 1})
		for i, req := range reqs {
			if sa, sb := a.Route(req), b.Route(req); sa != sb {
				t.Fatalf("%s: request %d routed to %d and %d by identical routers", policy, i, sa, sb)
			}
		}
	}
}

func TestPartitionConservation(t *testing.T) {
	reqs := make([]workload.Request, 300)
	rng := rand.New(rand.NewSource(5))
	for i := range reqs {
		reqs[i] = workload.Request{ID: int64(i), ArrivalAt: float64(i) * 0.1,
			PromptLen: 1 + rng.Intn(100), OutputLen: 1 + rng.Intn(50)}
	}
	for _, policy := range Policies() {
		r, err := NewRouter(policy, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		parts := r.Partition(reqs)
		if len(parts) != 4 {
			t.Fatalf("%s: %d partitions, want 4", policy, len(parts))
		}
		seen := map[int64]bool{}
		total := 0
		for _, part := range parts {
			total += len(part)
			last := -1.0
			for _, req := range part {
				if seen[req.ID] {
					t.Fatalf("%s: request %d routed twice", policy, req.ID)
				}
				seen[req.ID] = true
				if req.ArrivalAt < last {
					t.Fatalf("%s: arrival order not preserved within shard", policy)
				}
				last = req.ArrivalAt
			}
		}
		if total != len(reqs) {
			t.Fatalf("%s: partitions hold %d requests, offered %d", policy, total, len(reqs))
		}
	}
}

func TestSplitSeed(t *testing.T) {
	seen := map[int64]bool{}
	for run := int64(0); run < 8; run++ {
		for shard := 0; shard < 16; shard++ {
			s := SplitSeed(run, shard)
			if seen[s] {
				t.Fatalf("SplitSeed(%d, %d) = %d collides", run, shard, s)
			}
			seen[s] = true
			if s2 := SplitSeed(run, shard); s2 != s {
				t.Fatalf("SplitSeed(%d, %d) not stable: %d vs %d", run, shard, s, s2)
			}
		}
	}
	if SplitSeed(1, 0) == 1 {
		t.Error("SplitSeed(1, 0) left the run seed unmixed")
	}
}

// FuzzRouterConservation checks the two routing invariants the fleet merge
// relies on, for every policy on arbitrary traces: each request lands on
// exactly one in-range shard, and the per-shard token sums conserve the
// offered total.
func FuzzRouterConservation(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(0), uint16(100))
	f.Add(int64(99), uint8(1), uint8(1), uint16(37))
	f.Add(int64(-7), uint8(13), uint8(2), uint16(999))
	f.Fuzz(func(t *testing.T, seed int64, nshards, policyIdx uint8, n uint16) {
		shards := 1 + int(nshards)%16
		policy := Policies()[int(policyIdx)%len(Policies())]
		rng := rand.New(rand.NewSource(seed))
		weights := make([]float64, shards)
		for i := range weights {
			weights[i] = 0.25 + rng.Float64()*4
		}
		tenants := []string{"", "a", "b", "c", "long-tenant-name"}
		reqs := make([]workload.Request, int(n)%2048)
		var offered int64
		for i := range reqs {
			reqs[i] = workload.Request{
				ID:        int64(i),
				PromptLen: 1 + rng.Intn(2000),
				OutputLen: 1 + rng.Intn(500),
				Tenant:    tenants[rng.Intn(len(tenants))],
			}
			offered += int64(reqs[i].TotalLen())
		}
		r, err := NewRouter(policy, shards, weights)
		if err != nil {
			t.Fatal(err)
		}
		parts := r.Partition(reqs)
		seen := make(map[int64]bool, len(reqs))
		var got int64
		count := 0
		for s, part := range parts {
			if s < 0 || s >= shards {
				t.Fatalf("shard index %d out of range", s)
			}
			for _, req := range part {
				if seen[req.ID] {
					t.Fatalf("request %d routed twice", req.ID)
				}
				seen[req.ID] = true
				got += int64(req.TotalLen())
				count++
			}
		}
		if count != len(reqs) {
			t.Fatalf("routed %d of %d requests", count, len(reqs))
		}
		if got != offered {
			t.Fatalf("token conservation broken: routed %d, offered %d", got, offered)
		}
	})
}
