package fleet

// SplitSeed derives shard `shard`'s private random seed from the run seed
// with one splitmix64 step over the pair. The mix gives every (run, shard)
// combination a statistically independent stream while staying a pure
// function of its inputs, so a shard's seed never depends on how many
// shards run or in what order they finish — the fleet analogue of the
// run-seed contract. Shard 0 of a 1-shard fleet still gets a mixed seed,
// deliberately: a fleet of one is not byte-identical to an unsharded run,
// it is a fleet whose router happens to have one choice.
func SplitSeed(runSeed int64, shard int) int64 {
	// splitmix64 finalizer over the golden-gamma-spaced stream position.
	z := uint64(runSeed) + (uint64(shard)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
