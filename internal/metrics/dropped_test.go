package metrics

import (
	"math"
	"testing"
)

// The denominator contract for overload scenarios, pinned as a test:
// attainment and goodput divide by completed + dropped, a dropped request
// never attains (even the zero SLO), latency summaries exclude dropped
// records, and a preempted-then-requeued request appears exactly once (as
// its final completion) so preemption costs latency, not a denominator
// slot. Every sink implementation must agree on this arithmetic.

func completedRecord(id int64, ttft float64) RequestRecord {
	return RequestRecord{
		ID:         id,
		ArrivalAt:  0,
		FirstToken: ttft,
		FinishedAt: ttft + 1,
		PromptLen:  8,
		OutputLen:  4,
	}
}

func droppedRecord(id int64, at float64) RequestRecord {
	return RequestRecord{ID: id, ArrivalAt: at, FinishedAt: at, Dropped: true}
}

func TestAttainmentDenominatorIncludesDropped(t *testing.T) {
	slo := SLOTarget{TTFT: 0.5}
	rec := NewRecorder()
	rec.Add(completedRecord(1, 0.1)) // attains
	rec.Add(completedRecord(2, 0.2)) // attains
	rec.Add(completedRecord(3, 0.9)) // misses TTFT
	rec.Add(droppedRecord(4, 1.0))   // dropped: in denominator, never attains

	if got := rec.Count(); got != 4 {
		t.Fatalf("Count() = %d, want 4 (completed + dropped)", got)
	}
	if got := rec.Completed(); got != 3 {
		t.Fatalf("Completed() = %d, want 3", got)
	}
	if got := rec.DroppedCount(); got != 1 {
		t.Fatalf("DroppedCount() = %d, want 1", got)
	}
	if got, want := rec.Attainment(slo), 2.0/4.0; got != want {
		t.Fatalf("Attainment = %v, want %v (2 attained over 3 completed + 1 dropped)", got, want)
	}
	if got, want := rec.Goodput(slo, 10), 2.0/10.0; got != want {
		t.Fatalf("Goodput = %v, want %v", got, want)
	}
}

func TestDroppedNeverAttainsZeroSLO(t *testing.T) {
	var zero SLOTarget
	if !zero.Attained(completedRecord(1, 5)) {
		t.Fatal("zero SLO must attain every completed request")
	}
	if zero.Attained(droppedRecord(2, 0)) {
		t.Fatal("a dropped request must not attain even the zero SLO")
	}
}

func TestSummariesExcludeDropped(t *testing.T) {
	rec := NewRecorder()
	rec.Add(completedRecord(1, 0.25))
	rec.Add(droppedRecord(2, 0)) // zero timestamps must not flatten TTFT
	rec.Add(completedRecord(3, 0.75))

	ttft := rec.TTFTSummary()
	if ttft.Count != 2 {
		t.Fatalf("TTFT summary count = %d, want 2 completed", ttft.Count)
	}
	if ttft.Min != 0.25 {
		t.Fatalf("TTFT min = %v; dropped record's zero leaked into the summary", ttft.Min)
	}
	bttft, _, _ := rec.Summaries()
	if bttft != ttft {
		t.Fatalf("bulk Summaries diverged from TTFTSummary: %+v vs %+v", bttft, ttft)
	}
}

func TestSnapshotDenominators(t *testing.T) {
	slo := SLOTarget{TTFT: 0.5}
	feed := func(s Sink) {
		s.Observe(completedRecord(1, 0.1)) // attains
		s.Observe(completedRecord(2, 0.9)) // misses
		s.Observe(droppedRecord(3, 1.0))
	}
	check := func(name string, s Sink) {
		t.Helper()
		snap := s.Snapshot()
		if snap.Count != 2 {
			t.Fatalf("%s: Count = %d, want 2 completed", name, snap.Count)
		}
		if snap.Dropped != 1 {
			t.Fatalf("%s: Dropped = %d, want 1", name, snap.Dropped)
		}
		if snap.Attained != 1 {
			t.Fatalf("%s: Attained = %d, want 1", name, snap.Attained)
		}
		if got, want := snap.Attainment(), 1.0/3.0; math.Abs(got-want) > 1e-15 {
			t.Fatalf("%s: Attainment = %v, want %v", name, got, want)
		}
	}

	exact := NewExactRecorder(slo)
	feed(exact)
	check("ExactRecorder", exact)

	stream := NewStreamingSink(slo)
	feed(stream)
	check("StreamingSink", stream)
	if stream.Snapshot().TTFT.Count != 2 {
		t.Fatal("StreamingSink sketches must exclude dropped records")
	}

	win := NewWindowedSeries(1, slo)
	feed(win)
	check("WindowedSeries", win)

	mux := NewKeyedMux(
		func(r RequestRecord) string {
			if r.ID%2 == 0 {
				return "even"
			}
			return "odd"
		},
		func(string) Sink { return NewStreamingSink(slo) },
	)
	feed(mux)
	check("KeyedMux", mux)
}

func TestWindowStatDropped(t *testing.T) {
	slo := SLOTarget{TTFT: 0.5}
	w := NewWindowedSeries(1, slo)
	w.Observe(completedRecord(1, 0.1)) // finishes at 1.1 -> window 1
	w.Observe(droppedRecord(2, 1.5))   // dropped in window 1
	w.Observe(completedRecord(3, 2.0)) // finishes at 3.0 -> window 3, closes window 1

	wins := w.Windows()
	if len(wins) != 3 {
		t.Fatalf("got %d windows, want 3 (1, gap 2, 3)", len(wins))
	}
	st := wins[0]
	if st.Completions != 1 || st.Dropped != 1 || st.Attained != 1 {
		t.Fatalf("window 1 = %+v, want 1 completion, 1 dropped, 1 attained", st)
	}
	if got, want := st.Attainment(), 0.5; got != want {
		t.Fatalf("window attainment = %v, want %v (1 attained over 1+1)", got, want)
	}
}
