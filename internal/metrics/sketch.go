// Streaming quantile estimation for the sink pipeline. The sketch is a
// DDSketch-style logarithmic histogram: values land in geometrically sized
// buckets, so any reported quantile is within a fixed *relative* error of a
// true sample value regardless of the input distribution. That guarantee is
// what lets the streaming sinks promise "within 1% of the exact summary" on
// adversarial inputs (bimodal, heavy-tailed, constant) where rank-error
// sketches like P² or GK can drift arbitrarily far in value space.

package metrics

import (
	"math"
	"sort"
)

// DefaultSketchAlpha is the relative accuracy the streaming sinks use:
// every quantile estimate q̂ satisfies |q̂ - v| <= alpha·v for some sample
// v in the estimate's rank bucket. 0.25% leaves the rest of the documented
// 1% budget for the gap between neighbouring order statistics.
const DefaultSketchAlpha = 0.0025

// sketchMinValue is the smallest magnitude the log buckets resolve;
// anything in (0, sketchMinValue) collapses into the zero bucket. Serving
// latencies sit in microseconds-to-hours, far above it.
const sketchMinValue = 1e-9

// QuantileSketch estimates quantiles of a nonnegative stream in constant
// memory. Buckets are the geometric cells [gamma^k, gamma^(k+1)) with
// gamma = (1+alpha)/(1-alpha); the bucket count is bounded by the dynamic
// range of the data (≈5.5k cells spanning 1e-9..1e3 seconds at the default
// alpha), not by the stream length. Negative inputs are clamped into the
// zero bucket — the latency metrics it serves are nonnegative by
// construction. The zero value is not ready; use newQuantileSketch.
type QuantileSketch struct {
	alpha    float64
	logGamma float64
	count    uint64
	zero     uint64         // exact count of values <= sketchMinValue
	buckets  map[int]uint64 // bucket key -> count
	keys     []int          // sorted bucket keys, rebuilt lazily
	dirty    bool           // keys out of date
}

// newQuantileSketch returns an empty sketch with the given relative
// accuracy (alpha <= 0 takes DefaultSketchAlpha).
func newQuantileSketch(alpha float64) *QuantileSketch {
	if alpha <= 0 {
		alpha = DefaultSketchAlpha
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &QuantileSketch{
		alpha:    alpha,
		logGamma: math.Log(gamma),
		buckets:  map[int]uint64{},
	}
}

// Alpha reports the sketch's relative accuracy.
func (q *QuantileSketch) Alpha() float64 { return q.alpha }

// Count reports how many values the sketch absorbed.
func (q *QuantileSketch) Count() int { return int(q.count) }

// Observe adds one value.
func (q *QuantileSketch) Observe(v float64) {
	q.count++
	if v <= sketchMinValue || math.IsNaN(v) {
		q.zero++
		return
	}
	key := int(math.Ceil(math.Log(v) / q.logGamma))
	if _, ok := q.buckets[key]; !ok {
		q.dirty = true
	}
	q.buckets[key]++
}

// Quantile estimates the p-quantile (p in [0,1]) using the same
// rank convention as Percentile: target rank p·(n-1). It returns 0 for an
// empty sketch, matching Percentile's empty-input behaviour.
func (q *QuantileSketch) Quantile(p float64) float64 {
	if q.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// The value at rank r is the (r+1)-th smallest; round the fractional
	// interpolated rank to the nearest order statistic. The rounding is at
	// most one rank off the interpolated value, which the alpha budget
	// documented on DefaultSketchAlpha absorbs for non-degenerate streams.
	rank := uint64(math.Round(p * float64(q.count-1)))
	if rank < q.zero {
		return 0
	}
	if q.dirty {
		q.keys = q.keys[:0]
		for k := range q.buckets {
			q.keys = append(q.keys, k)
		}
		sort.Ints(q.keys)
		q.dirty = false
	}
	cum := q.zero
	for _, k := range q.keys {
		cum += q.buckets[k]
		if rank < cum {
			// Midpoint of [gamma^(k-1), gamma^k] in relative terms:
			// 2·gamma^k/(gamma+1) is within alpha of every value in the cell.
			gk := math.Exp(float64(k) * q.logGamma)
			gamma := math.Exp(q.logGamma)
			return 2 * gk / (gamma + 1)
		}
	}
	// Unreachable when counts are consistent; fall back to the top cell.
	if len(q.keys) == 0 {
		return 0
	}
	gk := math.Exp(float64(q.keys[len(q.keys)-1]) * q.logGamma)
	gamma := math.Exp(q.logGamma)
	return 2 * gk / (gamma + 1)
}

// Buckets reports how many log cells the sketch currently holds — the
// memory-bound tests pin this against the stream length.
func (q *QuantileSketch) Buckets() int { return len(q.buckets) }
