package metrics

import (
	"math/rand"
	"reflect"
	"testing"
)

// slabRecords builds n deterministic records with a tenant mix and a
// sprinkling of drops — enough to cross several 256-record chunk
// boundaries and exercise every aggregate the recorder serves.
func slabRecords(n int) []RequestRecord {
	rng := rand.New(rand.NewSource(99))
	tenants := []string{"", "gold", "bronze"}
	recs := make([]RequestRecord, n)
	for i := range recs {
		ttft := 0.05 + rng.ExpFloat64()*0.2
		recs[i] = RequestRecord{
			ID:         int64(i),
			Tenant:     tenants[i%len(tenants)],
			FirstToken: ttft,
			FinishedAt: ttft + rng.Float64()*4,
			PromptLen:  100 + rng.Intn(400),
			OutputLen:  1 + rng.Intn(256),
			Dropped:    i%17 == 0,
		}
	}
	return recs
}

// TestRecorderChunkingMatchesFlat drives the chunked recorder across
// several chunk boundaries and checks every read path — counts, records,
// summaries, SLO aggregates, tenant fanout — against the same data held
// in a pre-sized single-slab recorder fed through the batch path.
func TestRecorderChunkingMatchesFlat(t *testing.T) {
	const n = 3*256 + 57
	recs := slabRecords(n)
	slo := SLOTarget{TTFT: 1.5, TPOT: 0.1}
	const horizon = 120.0

	chunked := NewRecorder()
	for _, r := range recs {
		chunked.Add(r)
	}
	flat := NewRecorderCap(n)
	flat.AddBatch(recs)

	dropped := 0
	for _, r := range recs {
		if r.Dropped {
			dropped++
		}
	}
	for name, c := range map[string]*Recorder{"chunked": chunked, "flat-cap": flat} {
		if c.Count() != n {
			t.Fatalf("%s: Count() = %d want %d", name, c.Count(), n)
		}
		if c.DroppedCount() != dropped {
			t.Fatalf("%s: DroppedCount() = %d want %d", name, c.DroppedCount(), dropped)
		}
		if c.Completed() != n-dropped {
			t.Fatalf("%s: Completed() = %d want %d", name, c.Completed(), n-dropped)
		}
		if got := c.Records(); !reflect.DeepEqual(got, recs) {
			t.Fatalf("%s: Records() diverged from the input order", name)
		}
	}

	// Every aggregate must be identical whether the records lived in one
	// slab or several chunks.
	if got, want := chunked.Attained(slo), flat.Attained(slo); got != want {
		t.Fatalf("Attained() = %d want %d", got, want)
	}
	if got, want := chunked.Attainment(slo), flat.Attainment(slo); got != want {
		t.Fatalf("Attainment() = %v want %v", got, want)
	}
	if got, want := chunked.Goodput(slo, horizon), flat.Goodput(slo, horizon); got != want {
		t.Fatalf("Goodput() = %v want %v", got, want)
	}
	if got, want := chunked.Tenants(), flat.Tenants(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Tenants() = %v want %v", got, want)
	}
	ct, cp, cn := chunked.Summaries()
	ft, fp, fn := flat.Summaries()
	if ct != ft || cp != fp || cn != fn {
		t.Fatalf("Summaries() diverged between chunked and flat recorders")
	}
	if got, want := chunked.PerTenant(slo, horizon), flat.PerTenant(slo, horizon); !reflect.DeepEqual(got, want) {
		t.Fatalf("PerTenant() diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestRecorderCapSingleSlab pins the known-length optimization: a
// NewRecorderCap recorder filled to exactly its capacity never splits
// into chunks — Records() returns one contiguous slab without copying.
func TestRecorderCapSingleSlab(t *testing.T) {
	recs := slabRecords(300) // > one 256 chunk, so the cap matters
	c := NewRecorderCap(len(recs))
	for _, r := range recs {
		c.Add(r)
	}
	got := c.Records()
	if len(got) != len(recs) {
		t.Fatalf("Records() len = %d want %d", len(got), len(recs))
	}
	if cap(got) < len(recs) {
		t.Fatalf("cap recorder split into chunks: cap %d < %d", cap(got), len(recs))
	}
}

// TestRecorderEmpty pins the zero-value edges the engines rely on.
func TestRecorderEmpty(t *testing.T) {
	c := NewRecorder()
	if c.Count() != 0 || c.Completed() != 0 || c.DroppedCount() != 0 {
		t.Fatalf("empty recorder has nonzero counts")
	}
	if got := c.Records(); got != nil {
		t.Fatalf("empty Records() = %v want nil", got)
	}
	c.AddBatch(nil)
	if c.Count() != 0 {
		t.Fatalf("AddBatch(nil) changed Count to %d", c.Count())
	}
}

// batchSpy records whether the batch path was taken.
type batchSpy struct {
	single int
	batch  int
	got    []RequestRecord
}

func (s *batchSpy) Observe(r RequestRecord) { s.single++; s.got = append(s.got, r) }
func (s *batchSpy) Snapshot() Snapshot      { return Snapshot{} }
func (s *batchSpy) ObserveBatch(recs []RequestRecord) {
	s.batch++
	s.got = append(s.got, recs...)
}

// singleSpy is a Sink without the batch extension.
type singleSpy struct {
	single int
	got    []RequestRecord
}

func (s *singleSpy) Observe(r RequestRecord) { s.single++; s.got = append(s.got, r) }
func (s *singleSpy) Snapshot() Snapshot      { return Snapshot{} }

// TestObserveAllBatchDispatch pins ObserveAll's contract: one batch call
// when the sink supports it, per-record Observe otherwise, identical
// records in identical order either way, and Recorder itself taking the
// batch path.
func TestObserveAllBatchDispatch(t *testing.T) {
	recs := slabRecords(10)

	bs := &batchSpy{}
	ObserveAll(bs, recs)
	if bs.batch != 1 || bs.single != 0 {
		t.Fatalf("batch sink saw batch=%d single=%d want 1/0", bs.batch, bs.single)
	}
	ss := &singleSpy{}
	ObserveAll(ss, recs)
	if ss.single != len(recs) {
		t.Fatalf("plain sink saw %d Observe calls want %d", ss.single, len(recs))
	}
	if !reflect.DeepEqual(bs.got, ss.got) {
		t.Fatalf("batch and single paths delivered different records")
	}
	ObserveAll(bs, nil)
	if bs.batch != 1 {
		t.Fatalf("empty ObserveAll still called the sink")
	}

	rec := NewRecorder()
	ObserveAll(rec, recs)
	if !reflect.DeepEqual(rec.Records(), recs) {
		t.Fatalf("Recorder via ObserveAll diverged from the input")
	}
}
