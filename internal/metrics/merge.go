// Sink merging for the fleet layer: every shard of a sharded run feeds its
// own private sink, and the front door combines them afterwards. Merging
// is defined so that the merged sink is observation-equivalent to one sink
// that saw every shard's stream — exact counters add, record stores
// concatenate in merge order, and quantile sketches combine bucket-wise
// (a DDSketch merge is lossless: same cells, summed counts). The fleet
// calls MergeSink in shard-index order, which is what makes merged output
// independent of shard completion order.

package metrics

import "fmt"

// MergeableSink is a Sink that can absorb the contents of a same-shaped
// sibling. MergeSink(other) makes the receiver equivalent to having
// observed its own stream followed by other's stream; other is left in an
// unspecified state and must not be used afterwards. Merging is shape- and
// config-checked: a sink only merges with its own type, matching SLO,
// window width, and sketch accuracy.
type MergeableSink interface {
	Sink
	MergeSink(other Sink) error
}

// MergeSinks merges each src into dst in order. It is the fleet's
// one-liner for folding per-shard sinks: pass the shards' sinks in shard
// index order and dst becomes the whole-run view.
func MergeSinks(dst Sink, srcs ...Sink) error {
	m, ok := dst.(MergeableSink)
	if !ok {
		return fmt.Errorf("metrics: %T is not mergeable", dst)
	}
	for i, s := range srcs {
		if err := m.MergeSink(s); err != nil {
			return fmt.Errorf("metrics: merging sink %d: %w", i, err)
		}
	}
	return nil
}

// mergeInto dispatches one sub-sink merge, for the composite sinks.
func mergeInto(dst, src Sink) error {
	m, ok := dst.(MergeableSink)
	if !ok {
		return fmt.Errorf("metrics: %T is not mergeable", dst)
	}
	return m.MergeSink(src)
}

// Merge folds other into q. Both sketches must share an alpha — the cell
// boundaries are a function of it, so cross-accuracy merging would smear
// counts across cells. The merge is lossless: the result is bucket-for-
// bucket identical to one sketch that observed both streams.
func (q *QuantileSketch) Merge(other *QuantileSketch) error {
	if other == nil || other.count == 0 {
		return nil
	}
	if other.alpha != q.alpha {
		return fmt.Errorf("metrics: cannot merge sketches with alpha %g and %g", q.alpha, other.alpha)
	}
	q.count += other.count
	q.zero += other.zero
	//hetis:ordered bucket-count addition is commutative, so cell order cannot change the merged histogram
	for k, c := range other.buckets {
		if _, ok := q.buckets[k]; !ok {
			q.dirty = true
		}
		q.buckets[k] += c
	}
	return nil
}

// Merge folds other into s; exact fields add, sketches merge bucket-wise.
func (s *StreamStat) Merge(other *StreamStat) error {
	if other == nil || other.count == 0 {
		return nil
	}
	if err := s.sketch.Merge(other.sketch); err != nil {
		return err
	}
	if s.count == 0 || other.min < s.min {
		s.min = other.min
	}
	if s.count == 0 || other.max > s.max {
		s.max = other.max
	}
	s.count += other.count
	s.sum += other.sum
	return nil
}

// MergeSink implements MergeableSink: the merged recorder holds its own
// records followed by other's, in other's insertion order — so folding
// shard recorders in shard index order yields the same record sequence
// regardless of which shard finished first. Attainment stays exact because
// it is recomputed from records; the receiver's SLO governs the merged
// Snapshot.
func (c *Recorder) MergeSink(other Sink) error {
	o, ok := other.(*Recorder)
	if !ok {
		return fmt.Errorf("metrics: cannot merge %T into *Recorder", other)
	}
	for _, chunk := range o.chunks() {
		c.AddBatch(chunk)
	}
	return nil
}

// MergeSink implements MergeableSink for the streaming sink; both sides
// must measure the same SLO or the merged attainment counter would mix
// objectives.
func (s *StreamingSink) MergeSink(other Sink) error {
	o, ok := other.(*StreamingSink)
	if !ok {
		return fmt.Errorf("metrics: cannot merge %T into *StreamingSink", other)
	}
	if o.slo != s.slo {
		return fmt.Errorf("metrics: cannot merge streaming sinks with different SLOs (%+v vs %+v)", s.slo, o.slo)
	}
	if err := s.ttft.Merge(o.ttft); err != nil {
		return fmt.Errorf("metrics: merging TTFT: %w", err)
	}
	if err := s.tpot.Merge(o.tpot); err != nil {
		return fmt.Errorf("metrics: merging TPOT: %w", err)
	}
	if err := s.norm.Merge(o.norm); err != nil {
		return fmt.Errorf("metrics: merging normalized latency: %w", err)
	}
	s.count += o.count
	s.dropped += o.dropped
	s.attained += o.attained
	return nil
}

// MergeSink implements MergeableSink for windowed series. Only retained
// series merge (NewWindowedSeriesRetained): a finalized bucket has
// discarded its sketches, so its p95 cannot be combined with anything.
// Buckets merge by window index, which is keyed to absolute simulated
// time — shards share one clock, so bucket k means the same interval in
// every shard.
func (w *WindowedSeries) MergeSink(other Sink) error {
	o, ok := other.(*WindowedSeries)
	if !ok {
		return fmt.Errorf("metrics: cannot merge %T into *WindowedSeries", other)
	}
	if !w.retain || !o.retain {
		return fmt.Errorf("metrics: only retained windowed series merge (use NewWindowedSeriesRetained)")
	}
	if o.window != w.window {
		return fmt.Errorf("metrics: cannot merge windowed series with widths %g and %g", w.window, o.window)
	}
	if o.slo != w.slo {
		return fmt.Errorf("metrics: cannot merge windowed series with different SLOs (%+v vs %+v)", w.slo, o.slo)
	}
	w.count += o.count
	w.dropped += o.dropped
	w.attained += o.attained
	//hetis:ordered per-bucket merging is bucket-local and additive, so bucket visit order cannot change the result
	for k, oa := range o.accums {
		a := w.accums[k]
		if a == nil {
			a = newWindowAccum()
			w.accums[k] = a
		}
		a.completions += oa.completions
		a.attained += oa.attained
		a.dropped += oa.dropped
		if err := a.ttft.Merge(oa.ttft); err != nil {
			return fmt.Errorf("metrics: merging window %d TTFT: %w", k, err)
		}
		if err := a.norm.Merge(oa.norm); err != nil {
			return fmt.Errorf("metrics: merging window %d normalized latency: %w", k, err)
		}
	}
	if o.curIdx > w.curIdx {
		w.curIdx = o.curIdx
	}
	return nil
}

// MergeSink implements MergeableSink for the tenant mux: aggregates merge,
// and each of other's per-tenant sub-sinks merges into the same tenant's
// sub-sink here, created through the factory when the tenant is new to the
// receiver. Tenants are visited in sorted order so factory side effects
// (if any) fire deterministically.
func (m *TenantMux) MergeSink(other Sink) error {
	o, ok := other.(*TenantMux)
	if !ok {
		return fmt.Errorf("metrics: cannot merge %T into *TenantMux", other)
	}
	if err := mergeInto(m.agg, o.agg); err != nil {
		return fmt.Errorf("metrics: merging tenant aggregate: %w", err)
	}
	for _, tn := range o.Tenants() {
		sub, ok := m.byTenant[tn]
		if !ok {
			sub = m.make(tn)
			m.byTenant[tn] = sub
		}
		if err := mergeInto(sub, o.byTenant[tn]); err != nil {
			return fmt.Errorf("metrics: merging tenant %q: %w", tn, err)
		}
	}
	return nil
}

// MergeSink implements MergeableSink for the keyed mux, mirroring
// TenantMux.MergeSink over arbitrary keys.
func (m *KeyedMux) MergeSink(other Sink) error {
	o, ok := other.(*KeyedMux)
	if !ok {
		return fmt.Errorf("metrics: cannot merge %T into *KeyedMux", other)
	}
	for _, k := range o.Keys() {
		sub, ok := m.byKey[k]
		if !ok {
			sub = m.make(k)
			m.byKey[k] = sub
		}
		if err := mergeInto(sub, o.byKey[k]); err != nil {
			return fmt.Errorf("metrics: merging key %q: %w", k, err)
		}
	}
	return nil
}

// MergeSink implements MergeableSink for Tee by merging element-wise: the
// i-th sub-sink absorbs other's i-th sub-sink. Both tees must have the
// same fan-out, which same-shaped pipelines do by construction.
func (t *Tee) MergeSink(other Sink) error {
	o, ok := other.(*Tee)
	if !ok {
		return fmt.Errorf("metrics: cannot merge %T into *Tee", other)
	}
	if len(o.sinks) != len(t.sinks) {
		return fmt.Errorf("metrics: cannot merge tees with fan-out %d and %d", len(t.sinks), len(o.sinks))
	}
	for i := range t.sinks {
		if err := mergeInto(t.sinks[i], o.sinks[i]); err != nil {
			return fmt.Errorf("metrics: merging tee branch %d: %w", i, err)
		}
	}
	return nil
}
