package metrics

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// mergeRecords builds a deterministic record stream for merge testing.
func mergeRecords(seed int64, n int, tenant []string) []RequestRecord {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]RequestRecord, n)
	at := 0.0
	for i := range recs {
		at += rng.ExpFloat64() * 0.05
		first := at + 0.01 + rng.Float64()*0.4
		out := 1 + rng.Intn(300)
		recs[i] = RequestRecord{
			ID:         int64(seed)<<32 | int64(i),
			ArrivalAt:  at,
			FirstToken: first,
			FinishedAt: first + float64(out)*0.02*(0.5+rng.Float64()),
			PromptLen:  1 + rng.Intn(1000),
			OutputLen:  out,
			Tenant:     tenant[rng.Intn(len(tenant))],
			Dropped:    rng.Intn(20) == 0,
		}
	}
	return recs
}

// The defining property of every merge: a merged sink is indistinguishable
// from one sink that observed both streams back to back.
func TestSketchMergeLossless(t *testing.T) {
	a, b, whole := newQuantileSketch(0), newQuantileSketch(0), newQuantileSketch(0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := rng.ExpFloat64()
		a.Observe(v)
		whole.Observe(v)
	}
	for i := 0; i < 3000; i++ {
		v := rng.Float64() * 100
		b.Observe(v)
		whole.Observe(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), whole.Count())
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		if got, want := a.Quantile(p), whole.Quantile(p); got != want {
			t.Fatalf("p%.0f: merged %g, whole-stream %g — DDSketch merge should be exact", 100*p, got, want)
		}
	}
}

func TestSketchMergeAlphaMismatch(t *testing.T) {
	a, b := newQuantileSketch(0.0025), newQuantileSketch(0.01)
	b.Observe(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging sketches with different alphas should fail")
	}
	// An empty other is a no-op regardless of alpha.
	if err := a.Merge(newQuantileSketch(0.01)); err != nil {
		t.Fatalf("merging an empty sketch: %v", err)
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merging nil sketch: %v", err)
	}
}

func TestStreamingSinkMerge(t *testing.T) {
	slo := SLOTarget{TTFT: 0.3, TPOT: 0.05}
	sa, sb, whole := NewStreamingSink(slo), NewStreamingSink(slo), NewStreamingSink(slo)
	ra := mergeRecords(1, 4000, []string{""})
	rb := mergeRecords(2, 2500, []string{""})
	for _, r := range ra {
		sa.Observe(r)
		whole.Observe(r)
	}
	for _, r := range rb {
		sb.Observe(r)
		whole.Observe(r)
	}
	if err := sa.MergeSink(sb); err != nil {
		t.Fatal(err)
	}
	wantSnapshot(t, "streaming", sa.Snapshot(), whole.Snapshot())

	if err := sa.MergeSink(NewStreamingSink(SLOTarget{TTFT: 9})); err == nil {
		t.Fatal("merging different SLOs should fail")
	}
	if err := sa.MergeSink(NewRecorder()); err == nil {
		t.Fatal("merging a Recorder into a StreamingSink should fail")
	}
}

func TestRecorderMergeConcatenatesInOrder(t *testing.T) {
	ra := mergeRecords(3, 700, []string{""}) // crosses chunk boundaries
	rb := mergeRecords(4, 300, []string{""})
	a, b := NewRecorder(), NewRecorderCap(len(rb))
	a.AddBatch(ra)
	b.AddBatch(rb)
	if err := a.MergeSink(b); err != nil {
		t.Fatal(err)
	}
	want := append(append([]RequestRecord(nil), ra...), rb...)
	if !reflect.DeepEqual(a.Records(), want) {
		t.Fatal("merged recorder does not hold a's records followed by b's")
	}
	if a.Count() != len(want) {
		t.Fatalf("merged count %d, want %d", a.Count(), len(want))
	}
	wantDropped := 0
	for _, r := range want {
		if r.Dropped {
			wantDropped++
		}
	}
	if a.DroppedCount() != wantDropped {
		t.Fatalf("merged dropped %d, want %d", a.DroppedCount(), wantDropped)
	}
	if err := a.MergeSink(NewStreamingSink(SLOTarget{})); err == nil {
		t.Fatal("merging a StreamingSink into a Recorder should fail")
	}
}

func TestWindowedRetainedMatchesStreaming(t *testing.T) {
	slo := SLOTarget{TTFT: 0.3}
	plain := NewWindowedSeries(2, slo)
	retained := NewWindowedSeriesRetained(2, slo)
	recs := mergeRecords(5, 3000, []string{""})
	// Windowed sinks expect nondecreasing finish order, like the event loop.
	sortByFinish(recs)
	for _, r := range recs {
		plain.Observe(r)
		retained.Observe(r)
	}
	if got, want := retained.Windows(), plain.Windows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("retained series diverges from streaming series:\n%v\nvs\n%v", got, want)
	}
	if got, want := retained.Snapshot(), plain.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("retained snapshot %+v, streaming %+v", got, want)
	}
}

func TestWindowedSeriesMerge(t *testing.T) {
	slo := SLOTarget{TTFT: 0.3}
	ra := mergeRecords(6, 2000, []string{""})
	rb := mergeRecords(7, 1500, []string{""})
	sortByFinish(ra)
	sortByFinish(rb)
	a, b := NewWindowedSeriesRetained(2, slo), NewWindowedSeriesRetained(2, slo)
	whole := NewWindowedSeriesRetained(2, slo)
	for _, r := range ra {
		a.Observe(r)
	}
	for _, r := range rb {
		b.Observe(r)
	}
	merged := append(append([]RequestRecord(nil), ra...), rb...)
	sortByFinish(merged)
	for _, r := range merged {
		whole.Observe(r)
	}
	if err := a.MergeSink(b); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Windows(), whole.Windows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("merged windows diverge from whole-stream windows:\n%v\nvs\n%v", got, want)
	}

	if err := a.MergeSink(NewWindowedSeriesRetained(3, slo)); err == nil {
		t.Fatal("merging different window widths should fail")
	}
	if err := a.MergeSink(NewWindowedSeriesRetained(2, SLOTarget{})); err == nil {
		t.Fatal("merging different SLOs should fail")
	}
	if err := a.MergeSink(NewWindowedSeries(2, slo)); err == nil {
		t.Fatal("merging a non-retained series should fail")
	}
	if err := NewWindowedSeries(2, slo).MergeSink(a); err == nil {
		t.Fatal("merging into a non-retained series should fail")
	}
}

func TestTenantMuxMerge(t *testing.T) {
	slo := SLOTarget{TTFT: 0.3}
	mk := func() *TenantMux {
		return NewTenantMux(NewStreamingSink(slo), func(string) Sink { return NewStreamingSink(slo) })
	}
	tenants := []string{"chat", "code", "batch"}
	ra := mergeRecords(8, 2000, tenants[:2]) // a never sees "batch"
	rb := mergeRecords(9, 2000, tenants)
	a, b, whole := mk(), mk(), mk()
	for _, r := range ra {
		a.Observe(r)
		whole.Observe(r)
	}
	for _, r := range rb {
		b.Observe(r)
		whole.Observe(r)
	}
	if err := a.MergeSink(b); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Tenants(), whole.Tenants(); !reflect.DeepEqual(got, want) {
		t.Fatalf("merged tenants %v, want %v", got, want)
	}
	wantSnapshot(t, "aggregate", a.Snapshot(), whole.Snapshot())
	for _, tn := range whole.Tenants() {
		wantSnapshot(t, "tenant "+tn, a.Tenant(tn).Snapshot(), whole.Tenant(tn).Snapshot())
	}
}

func TestKeyedMuxAndTeeMerge(t *testing.T) {
	slo := SLOTarget{TTFT: 0.3}
	key := func(r RequestRecord) string {
		if r.OutputLen >= 100 {
			return "long"
		}
		return "short"
	}
	mk := func() Sink {
		return NewTee(
			NewStreamingSink(slo),
			NewKeyedMux(key, func(string) Sink { return NewStreamingSink(slo) }),
		)
	}
	a, b, whole := mk(), mk(), mk()
	for _, r := range mergeRecords(10, 1500, []string{""}) {
		a.Observe(r)
		whole.Observe(r)
	}
	for _, r := range mergeRecords(11, 1500, []string{""}) {
		b.Observe(r)
		whole.Observe(r)
	}
	if err := MergeSinks(a, b); err != nil {
		t.Fatal(err)
	}
	wantSnapshot(t, "tee", a.Snapshot(), whole.Snapshot())

	short := NewTee(NewStreamingSink(slo))
	if err := mergeInto(a, short); err == nil {
		t.Fatal("merging tees with different fan-out should fail")
	}
	if err := MergeSinks(struct{ Sink }{NewStreamingSink(slo)}); err == nil {
		t.Fatal("MergeSinks on a non-mergeable dst should fail")
	}
}

func sortByFinish(recs []RequestRecord) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].FinishedAt < recs[j].FinishedAt })
}

// wantSnapshot checks a merged snapshot against the whole-stream one.
// Counts, extrema and sketch quantiles must match exactly; Mean may differ
// in the last ULPs because merging adds per-sink partial sums where the
// whole-stream sink added record by record, and float addition is not
// associative. (This does not weaken the determinism contract — a merge in
// fixed shard order is itself bit-reproducible — it only means "merged"
// and "one big stream" are equal up to summation order.)
func wantSnapshot(t *testing.T, label string, got, want Snapshot) {
	t.Helper()
	approx := func(s Summary) Summary { s.Mean = 0; return s }
	gotEx := got
	wantEx := want
	gotEx.TTFT, gotEx.TPOT, gotEx.NormLat = approx(got.TTFT), approx(got.TPOT), approx(got.NormLat)
	wantEx.TTFT, wantEx.TPOT, wantEx.NormLat = approx(want.TTFT), approx(want.TPOT), approx(want.NormLat)
	if !reflect.DeepEqual(gotEx, wantEx) {
		t.Fatalf("%s: merged snapshot %+v\nwhole-stream %+v", label, got, want)
	}
	for _, pair := range [][2]Summary{{got.TTFT, want.TTFT}, {got.TPOT, want.TPOT}, {got.NormLat, want.NormLat}} {
		g, w := pair[0].Mean, pair[1].Mean
		if diff := math.Abs(g - w); diff > 1e-9*math.Max(math.Abs(w), 1) {
			t.Fatalf("%s: merged mean %g vs whole-stream %g", label, g, w)
		}
	}
}
