// Package metrics collects and summarizes serving measurements: per-request
// latency components (TTFT, TPOT, normalized latency), percentiles, and
// time series for the dynamic-behaviour plots.
package metrics

import (
	"encoding/csv"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// RequestRecord captures the lifecycle timestamps of one served request.
type RequestRecord struct {
	ID         int64
	ArrivalAt  float64
	FirstToken float64 // completion time of the prefill (first token)
	FinishedAt float64
	PromptLen  int
	OutputLen  int
	// Tenant is the traffic class of multi-tenant workloads ("" for
	// single-tenant traces); see workload.Request.Tenant.
	Tenant string
	// Evicted marks requests whose processing was restarted at least once.
	Evicted bool
	// Dropped marks requests the system gave up on — rejected by admission
	// control or unservable within capacity. A dropped record carries no
	// meaningful latency (FirstToken may be zero); latency summaries skip
	// it, but it stays in the attainment/goodput denominator: dropping a
	// request is the strongest possible SLO miss, so a system must not
	// improve its attainment by shedding load. Preempted-then-requeued
	// requests are NOT dropped — they surface exactly once, as their final
	// completion record (with Evicted set).
	Dropped bool
}

// TTFT is the time-to-first-token.
func (r RequestRecord) TTFT() float64 { return r.FirstToken - r.ArrivalAt }

// TPOT is the mean time per output token after the first.
func (r RequestRecord) TPOT() float64 {
	if r.OutputLen <= 1 {
		return 0
	}
	return (r.FinishedAt - r.FirstToken) / float64(r.OutputLen-1)
}

// NormLatency is end-to-end latency divided by output length — the
// "normalized latency (s/token)" metric of Figs. 8-10.
func (r RequestRecord) NormLatency() float64 {
	if r.OutputLen <= 0 {
		return 0
	}
	return (r.FinishedAt - r.ArrivalAt) / float64(r.OutputLen)
}

// recordChunk is the slab size for recorders that did not pre-size: 256
// records × ~80 B stay under the Go allocator's 32 KB small-object
// threshold, the same rationale as the engine's request slabs.
const recordChunk = 256

// Recorder accumulates request records. It is the exact measurement sink
// (see ExactRecorder): summaries are computed from the stored records, so
// they are exact at O(n) memory. slo is what Snapshot counts attainment
// against; the zero value attains everything.
//
// Storage is slab-chunked: records land in the open cur chunk, and a full
// chunk is closed onto full rather than realloc-copied — a megascale run
// never moves a record after writing it. NewRecorderCap sizes the first
// chunk to the whole expected run, collapsing the common known-length case
// to exactly one allocation.
type Recorder struct {
	full    [][]RequestRecord // closed chunks, immutable once here
	cur     []RequestRecord   // open chunk, appended in place
	n       int               // total records across full + cur
	dropped int               // incremental count of Dropped records
	slo     SLOTarget
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// NewRecorderCap returns an empty recorder pre-sized for n records, so a
// run of known length (engines know their request count up front) fills
// one contiguous slab and never allocates again.
func NewRecorderCap(n int) *Recorder {
	if n <= 0 {
		return &Recorder{}
	}
	return &Recorder{cur: make([]RequestRecord, 0, n)}
}

// recorderFromRecords wraps an existing record slice (PerTenant's
// sub-recorders). The recorder takes ownership of recs.
func recorderFromRecords(recs []RequestRecord) *Recorder {
	c := &Recorder{cur: recs, n: len(recs)}
	for i := range recs {
		if recs[i].Dropped {
			c.dropped++
		}
	}
	return c
}

// Add appends one finished request.
func (c *Recorder) Add(r RequestRecord) {
	if len(c.cur) == cap(c.cur) {
		if c.cur != nil {
			c.full = append(c.full, c.cur)
		}
		c.cur = make([]RequestRecord, 0, recordChunk)
	}
	c.cur = append(c.cur, r)
	c.n++
	if r.Dropped {
		c.dropped++
	}
}

// AddBatch appends a batch of finished requests in order — the bulk path
// engines use when one decode iteration completes several requests.
func (c *Recorder) AddBatch(recs []RequestRecord) {
	for _, r := range recs {
		c.Add(r)
	}
}

// chunks exposes the storage as a slice of chunks for iteration. The
// returned chunk list is freshly built when an open chunk exists, so
// callers may not hold it across Adds.
func (c *Recorder) chunks() [][]RequestRecord {
	if len(c.cur) == 0 {
		return c.full
	}
	return append(c.full[:len(c.full):len(c.full)], c.cur)
}

// Count reports the number of recorded requests — completed plus dropped.
func (c *Recorder) Count() int { return c.n }

// Completed reports the recorded requests that actually finished (Count
// minus dropped).
func (c *Recorder) Completed() int { return c.n - c.dropped }

// DroppedCount reports the recorded requests the system dropped.
func (c *Recorder) DroppedCount() int { return c.dropped }

// Records returns the records in insertion order as one stitched slice.
// The slice is a copy when the recorder spans multiple chunks; callers
// must not mutate it either way.
func (c *Recorder) Records() []RequestRecord {
	if c.n == 0 {
		return nil
	}
	if len(c.full) == 0 {
		return c.cur
	}
	out := make([]RequestRecord, 0, c.n)
	for _, ch := range c.chunks() {
		out = append(out, ch...)
	}
	return out
}

// Summary aggregates a metric over the records.
type Summary struct {
	Count         int
	Mean          float64
	P50, P95, P99 float64
	Min, Max      float64
}

// Summarize computes a Summary of f over the completed records. Dropped
// records are skipped: they never produced the measured latencies, and a
// zero TTFT from a rejected request would flatter the percentiles.
func (c *Recorder) Summarize(f func(RequestRecord) float64) Summary {
	vals := make([]float64, 0, c.Completed())
	for _, ch := range c.chunks() {
		for _, r := range ch {
			if r.Dropped {
				continue
			}
			vals = append(vals, f(r))
		}
	}
	return SummarizeValues(vals)
}

// TTFTSummary, TPOTSummary and NormLatencySummary are the three standard
// aggregations of the paper's evaluation.
func (c *Recorder) TTFTSummary() Summary {
	return c.Summarize(RequestRecord.TTFT)
}

// TPOTSummary aggregates time-per-output-token.
func (c *Recorder) TPOTSummary() Summary {
	return c.Summarize(RequestRecord.TPOT)
}

// NormLatencySummary aggregates normalized end-to-end latency.
func (c *Recorder) NormLatencySummary() Summary {
	return c.Summarize(RequestRecord.NormLatency)
}

// Summaries computes the three standard summaries in one pass over the
// records. Unlike three separate *Summary calls — which each walk the
// records, copy the values, and copy again inside SummarizeValues — the
// bulk path fills one backing array and sorts each metric's slice in place,
// so a summary costs one record walk and one allocation instead of three of
// each. The results are float-for-float identical to the per-metric calls:
// both paths sort the same values and run the same accumulation.
func (c *Recorder) Summaries() (ttft, tpot, norm Summary) {
	n := c.Completed()
	if n == 0 {
		return
	}
	buf := make([]float64, 3*n)
	tv, pv, nv := buf[:n:n], buf[n:2*n:2*n], buf[2*n:]
	i := 0
	for _, ch := range c.chunks() {
		for _, r := range ch {
			if r.Dropped {
				continue
			}
			tv[i] = r.TTFT()
			pv[i] = r.TPOT()
			nv[i] = r.NormLatency()
			i++
		}
	}
	return summarizeSorted(tv), summarizeSorted(pv), summarizeSorted(nv)
}

// SummarizeValues computes order statistics of a value slice.
func SummarizeValues(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), vals...)
	return summarizeSorted(sorted)
}

// summarizeSorted sorts vals in place and computes its order statistics —
// the allocation-free core shared by SummarizeValues and the bulk
// Recorder.Summaries path.
func summarizeSorted(vals []float64) Summary {
	s := Summary{Count: len(vals)}
	if len(vals) == 0 {
		return s
	}
	sort.Float64s(vals)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	s.Mean = sum / float64(len(vals))
	s.Min = vals[0]
	s.Max = vals[len(vals)-1]
	s.P50 = Percentile(vals, 0.50)
	s.P95 = Percentile(vals, 0.95)
	s.P99 = Percentile(vals, 0.99)
	return s
}

// Percentile interpolates the p-quantile (p in [0,1]) of an ascending
// slice using the nearest-rank-with-interpolation convention. An empty
// input has no quantiles; Percentile returns 0 for it (not NaN), so
// downstream tables render an honest zero instead of "NaN" cells.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Series is a time-indexed sequence of samples.
type Series struct {
	Name   string
	Times  []float64
	Values []float64
}

// Append adds one sample.
func (s *Series) Append(t, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len reports the sample count.
func (s *Series) Len() int { return len(s.Times) }

// MaxValue returns the largest sample (0 for an empty series).
func (s *Series) MaxValue() float64 {
	max := 0.0
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	return max
}

// At returns the last sample value at or before time t (0 before the first
// sample).
func (s *Series) At(t float64) float64 {
	idx := sort.SearchFloat64s(s.Times, t)
	// idx is the first sample > t-epsilon; step back unless exact match.
	if idx < len(s.Times) && s.Times[idx] == t {
		return s.Values[idx]
	}
	if idx == 0 {
		return 0
	}
	return s.Values[idx-1]
}

// Table renders experiment output as an aligned text table. Rows store
// float cells at full round-trip precision (strconv 'g' with precision -1),
// which is what CSV emits; String prettifies them back to 4 significant
// digits for human reading. Storing full precision is deliberate: golden
// files diff the CSV, and a lossy %.4g cell would let small metric drift
// hide inside an unchanged rendering.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row; values are rendered with %v, floats at
// full round-trip precision.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = strconv.FormatFloat(v, 'g', -1, 64)
		case float32:
			row[i] = strconv.FormatFloat(float64(v), 'g', -1, 32)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// prettyCell rounds stored full-precision float cells to 4 significant
// digits for the aligned rendering. Only cells that carry a float marker
// ('.', exponent, NaN/Inf) are touched: integers and plain strings pass
// through verbatim, so "200" (a count) stays "200" while
// "0.27749999999999997" becomes "0.2775".
func prettyCell(cell string) string {
	if !strings.ContainsAny(cell, ".eE") && !strings.ContainsAny(cell, "NI") {
		return cell
	}
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return cell
	}
	return formatFloat(v)
}

// CSV renders the table as RFC 4180 comma-separated values with a header
// line.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	w.Write(t.Header)
	w.WriteAll(t.Rows)
	w.Flush()
	return b.String()
}

// String renders the table with aligned columns, float cells rounded to 4
// significant digits (CSV keeps full precision).
func (t *Table) String() string {
	pretty := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		pretty[r] = make([]string, len(row))
		for i, cell := range row {
			pretty[r][i] = prettyCell(cell)
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range pretty {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range pretty {
		writeRow(row)
	}
	return b.String()
}
