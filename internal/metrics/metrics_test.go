package metrics

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestRecordDerived(t *testing.T) {
	r := RequestRecord{ArrivalAt: 1, FirstToken: 3, FinishedAt: 12, OutputLen: 10}
	if got := r.TTFT(); got != 2 {
		t.Errorf("TTFT=%g want 2", got)
	}
	if got := r.TPOT(); math.Abs(got-1) > 1e-12 {
		t.Errorf("TPOT=%g want 1", got)
	}
	if got := r.NormLatency(); math.Abs(got-1.1) > 1e-12 {
		t.Errorf("NormLatency=%g want 1.1", got)
	}
}

func TestRequestRecordDegenerate(t *testing.T) {
	r := RequestRecord{ArrivalAt: 0, FirstToken: 1, FinishedAt: 1, OutputLen: 1}
	if got := r.TPOT(); got != 0 {
		t.Errorf("single-token TPOT=%g want 0", got)
	}
	r.OutputLen = 0
	if got := r.NormLatency(); got != 0 {
		t.Errorf("zero-output NormLatency=%g want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(vals, 0); got != 1 {
		t.Errorf("P0=%g want 1", got)
	}
	if got := Percentile(vals, 1); got != 10 {
		t.Errorf("P100=%g want 10", got)
	}
	if got := Percentile(vals, 0.5); math.Abs(got-5.5) > 1e-12 {
		t.Errorf("P50=%g want 5.5", got)
	}
	if got := Percentile([]float64{7}, 0.95); got != 7 {
		t.Errorf("single-element P95=%g want 7", got)
	}
}

// TestPercentileEdgeCases pins the documented conventions at the input
// boundaries; the empty case in particular must yield 0, not NaN, so CSV
// cells downstream never render as "NaN".
func TestPercentileEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"empty-nil", nil, 0.5, 0},
		{"empty-slice", []float64{}, 0.95, 0},
		{"empty-p0", nil, 0, 0},
		{"empty-p1", nil, 1, 0},
		{"single", []float64{3.5}, 0.5, 3.5},
		{"single-p0", []float64{3.5}, 0, 3.5},
		{"single-p1", []float64{3.5}, 1, 3.5},
		{"p0-is-min", []float64{1, 2, 3}, 0, 1},
		{"p1-is-max", []float64{1, 2, 3}, 1, 3},
		{"p-below-0-clamps", []float64{1, 2, 3}, -0.5, 1},
		{"p-above-1-clamps", []float64{1, 2, 3}, 1.5, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Percentile(tc.sorted, tc.p); got != tc.want {
				t.Errorf("Percentile(%v, %g)=%g want %g", tc.sorted, tc.p, got, tc.want)
			}
		})
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a := math.Mod(math.Abs(p1), 1)
		b := math.Mod(math.Abs(p2), 1)
		if a > b {
			a, b = b, a
		}
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		return Percentile(sorted, a) <= Percentile(sorted, b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeValues(t *testing.T) {
	s := SummarizeValues([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary wrong: %+v", s)
	}
	empty := SummarizeValues(nil)
	if empty.Count != 0 {
		t.Fatalf("empty summary: %+v", empty)
	}
}

func TestRecorderSummaries(t *testing.T) {
	rec := NewRecorder()
	for i := 0; i < 10; i++ {
		rec.Add(RequestRecord{
			ID:         int64(i),
			ArrivalAt:  0,
			FirstToken: float64(i + 1),
			FinishedAt: float64(i+1) + 10,
			OutputLen:  11,
		})
	}
	if rec.Count() != 10 {
		t.Fatalf("Count=%d", rec.Count())
	}
	ttft := rec.TTFTSummary()
	if ttft.Mean != 5.5 {
		t.Errorf("mean TTFT=%g want 5.5", ttft.Mean)
	}
	tpot := rec.TPOTSummary()
	if math.Abs(tpot.Mean-1) > 1e-12 {
		t.Errorf("mean TPOT=%g want 1", tpot.Mean)
	}
	if nl := rec.NormLatencySummary(); nl.Count != 10 {
		t.Errorf("norm latency count=%d", nl.Count)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(0, 1)
	s.Append(10, 5)
	s.Append(20, 3)
	if s.Len() != 3 {
		t.Fatalf("Len=%d", s.Len())
	}
	if got := s.MaxValue(); got != 5 {
		t.Errorf("MaxValue=%g want 5", got)
	}
	if got := s.At(-1); got != 0 {
		t.Errorf("At(-1)=%g want 0", got)
	}
	if got := s.At(10); got != 5 {
		t.Errorf("At(10)=%g want 5", got)
	}
	if got := s.At(15); got != 5 {
		t.Errorf("At(15)=%g want 5", got)
	}
	if got := s.At(100); got != 3 {
		t.Errorf("At(100)=%g want 3", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Header: []string{"device", "time"}}
	tab.AddRow("A100", 0.0097)
	tab.AddRow("P100", 0.077)
	tab.AddRow("count", 42)
	out := tab.String()
	for _, want := range []string{"device", "A100", "0.0097", "P100", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + separator + 3 rows
		t.Errorf("table has %d lines want 5:\n%s", len(lines), out)
	}
}

// TestTableCSVFullPrecision asserts CSV cells round-trip float64 exactly:
// a value that %.4g would flatten must come back bit-identical from the
// CSV rendering, so golden diffs can't hide small metric drift.
func TestTableCSVFullPrecision(t *testing.T) {
	v := 0.2774999999999999 // %.4g renders 0.2775; round-trip must not
	tab := Table{Header: []string{"v"}}
	tab.AddRow(v)
	out := tab.CSV()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines want 2:\n%s", len(lines), out)
	}
	back, err := strconv.ParseFloat(lines[1], 64)
	if err != nil {
		t.Fatalf("CSV cell %q does not parse: %v", lines[1], err)
	}
	if back != v {
		t.Errorf("CSV cell %q round-trips to %v, want %v", lines[1], back, v)
	}
	// The aligned rendering stays human-readable at 4 significant digits.
	if s := tab.String(); !strings.Contains(s, "0.2775") || strings.Contains(s, lines[1]) {
		t.Errorf("String() should round to 4 significant digits:\n%s", s)
	}
}

// TestTableStringLeavesNonFloatCellsAlone guards prettyCell against
// mangling integer counts and names that merely look numeric-ish.
func TestTableStringLeavesNonFloatCellsAlone(t *testing.T) {
	tab := Table{Header: []string{"name", "count", "bytes"}}
	tab.AddRow("hetis", 200, int64(2_000_000_000))
	out := tab.String()
	for _, want := range []string{"hetis", "200", "2000000000"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() mangled %q:\n%s", want, out)
		}
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tab := Table{Header: []string{"v"}}
	tab.AddRow(3.0)
	tab.AddRow(float32(2.5))
	out := tab.String()
	if !strings.Contains(out, "3\n") && !strings.Contains(out, "3 ") {
		t.Errorf("integral float should render without decimals:\n%s", out)
	}
	if !strings.Contains(out, "2.5") {
		t.Errorf("fractional float should keep decimals:\n%s", out)
	}
}
