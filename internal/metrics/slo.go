// Service-level objectives: per-request attainment against TTFT/TPOT
// targets, goodput (attained requests per second), and per-tenant
// breakdowns. Real serving systems are judged on how much traffic they
// serve *within* latency targets, not on raw latency summaries; these
// helpers make that the first-class metric of scenario runs.

package metrics

import "sort"

// SLOTarget is a latency service objective. A zero field leaves that
// dimension unconstrained, so the zero SLOTarget is attained by every
// finished request.
type SLOTarget struct {
	TTFT float64 // max time-to-first-token, seconds (0 = unconstrained)
	TPOT float64 // max time per output token, seconds (0 = unconstrained)
}

// IsZero reports whether no objective is set.
func (s SLOTarget) IsZero() bool { return s.TTFT == 0 && s.TPOT == 0 }

// Attained reports whether the request met every set objective. A dropped
// request never attains — even against the zero SLOTarget — because a
// request the system refused to serve met no latency target at all.
func (s SLOTarget) Attained(r RequestRecord) bool {
	if r.Dropped {
		return false
	}
	if s.TTFT > 0 && r.TTFT() > s.TTFT {
		return false
	}
	if s.TPOT > 0 && r.TPOT() > s.TPOT {
		return false
	}
	return true
}

// Attained counts the recorded requests meeting the SLO.
func (c *Recorder) Attained(slo SLOTarget) int {
	n := 0
	for _, ch := range c.chunks() {
		for _, r := range ch {
			if slo.Attained(r) {
				n++
			}
		}
	}
	return n
}

// Attainment is the fraction of recorded requests meeting the SLO
// (0 when nothing finished — an idle system attains nothing).
//
// Denominator choice, made explicit for overload scenarios: the recorder
// holds one record per completed request plus one per dropped request, so
// the denominator is completed + dropped. Dropped requests never attain
// (see SLOTarget.Attained), so shedding load lowers attainment instead of
// laundering it. Preempted-and-requeued requests appear exactly once — as
// their eventual completion — so a preemption costs latency, not a
// denominator slot.
func (c *Recorder) Attainment(slo SLOTarget) float64 {
	if c.n == 0 {
		return 0
	}
	return float64(c.Attained(slo)) / float64(c.n)
}

// Goodput is the rate of SLO-attaining completions over the horizon,
// in requests per second. Requests that never finished count against it
// implicitly: they are not in the recorder. Dropped requests are in the
// recorder but never attain, so they count against goodput the same way.
func (c *Recorder) Goodput(slo SLOTarget, horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(c.Attained(slo)) / horizon
}

// TenantStats is one tenant's slice of a run.
type TenantStats struct {
	Tenant     string
	Count      int     // completed requests
	Dropped    int     // dropped requests
	Attainment float64 // attained fraction of (completed + dropped)
	Goodput    float64 // attained req/s over the horizon
	TTFT       Summary
	TPOT       Summary
	NormLat    Summary
}

// Tenants returns the distinct tenant names seen, sorted ascending (the
// empty single-tenant name sorts first).
func (c *Recorder) Tenants() []string {
	seen := map[string]bool{}
	for _, ch := range c.chunks() {
		for _, r := range ch {
			seen[r.Tenant] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// PerTenant breaks the run down by tenant, sorted by tenant name.
func (c *Recorder) PerTenant(slo SLOTarget, horizon float64) []TenantStats {
	byTenant := map[string][]RequestRecord{}
	for _, ch := range c.chunks() {
		for _, r := range ch {
			byTenant[r.Tenant] = append(byTenant[r.Tenant], r)
		}
	}
	out := make([]TenantStats, 0, len(byTenant))
	for _, name := range c.Tenants() {
		sub := recorderFromRecords(byTenant[name])
		ttft, tpot, norm := sub.Summaries()
		out = append(out, TenantStats{
			Tenant:     name,
			Count:      sub.Completed(),
			Dropped:    sub.DroppedCount(),
			Attainment: sub.Attainment(slo),
			Goodput:    sub.Goodput(slo, horizon),
			TTFT:       ttft,
			TPOT:       tpot,
			NormLat:    norm,
		})
	}
	return out
}
