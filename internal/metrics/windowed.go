// Windowed time series: the streaming counterpart of replaying a stored
// trace into per-interval plots. Completions land in fixed-width time
// buckets as they are observed, so the dynamic-behaviour views (diurnal
// waves, flash-crowd spikes) come out of a million-request run without the
// run ever holding a per-request record.

package metrics

import (
	"math"
	"sort"
)

// WindowStat is one time bucket of a WindowedSeries.
type WindowStat struct {
	// Start is the bucket's left edge in simulated seconds; the bucket
	// covers [Start, Start+window).
	Start float64
	// Completions counts requests finished in the window; Attained those
	// meeting the series' SLO; Dropped the requests shed in the window
	// (excluded from Completions and the latency sketches, but part of the
	// window's attainment denominator — see Attainment).
	Completions int
	Attained    int
	Dropped     int
	// Goodput is attained completions per second of window.
	Goodput float64
	// TTFTP95 is the window's p95 time-to-first-token (sketch-estimated);
	// NormLatP95 the window's p95 normalized latency.
	TTFTP95    float64
	NormLatP95 float64
}

// Attainment is the window's attained fraction of completed + dropped
// requests (0 for an empty window).
func (st WindowStat) Attainment() float64 {
	if st.Completions+st.Dropped == 0 {
		return 0
	}
	return float64(st.Attained) / float64(st.Completions+st.Dropped)
}

// WindowedSeries buckets completions into fixed-width time windows keyed
// by finish time, tracking per-window completions, SLO goodput, and p95
// latencies. Memory is O(horizon/window) — bounded by simulated time, not
// trace length. Records are expected in nondecreasing finish order (the
// event loop is monotonic); a late straggler's window is clamped to the
// open one.
//
// WindowedSeries is a series producer, not an aggregate summarizer: its
// Snapshot carries exact whole-run counts and attainment but zero latency
// summaries (no per-record aggregate sketches are paid for). Compose it
// behind a StreamingSink via Tee when the run also needs whole-run
// percentiles — which is exactly what the scenario streaming pipeline
// does.
type WindowedSeries struct {
	window   float64
	slo      SLOTarget
	count    int
	dropped  int
	attained int

	done   []WindowStat
	curIdx int
	cur    *windowAccum

	// retain keeps every bucket's accumulator alive instead of finalizing
	// closed buckets to floats. Retained series cost O(horizon/window)
	// sketches but stay mergeable — per-window p95 cannot be recovered from
	// finalized floats, so the fleet's per-shard series run retained and
	// merge bucket-wise (see MergeSink).
	retain bool
	accums map[int]*windowAccum
}

// windowAccum is the open bucket under construction.
type windowAccum struct {
	completions int
	attained    int
	dropped     int
	ttft        *QuantileSketch
	norm        *QuantileSketch
}

func newWindowAccum() *windowAccum {
	return &windowAccum{ttft: newQuantileSketch(0), norm: newQuantileSketch(0)}
}

// NewWindowedSeries returns an empty series with the given bucket width in
// simulated seconds (width <= 0 takes 1s) and SLO.
func NewWindowedSeries(window float64, slo SLOTarget) *WindowedSeries {
	if window <= 0 {
		window = 1
	}
	return &WindowedSeries{window: window, slo: slo}
}

// NewWindowedSeriesRetained returns an empty series that keeps every
// bucket's sketch accumulator alive, so whole series can later be merged
// with MergeSink. Observe semantics are identical to NewWindowedSeries;
// only the memory/mergeability trade differs.
func NewWindowedSeriesRetained(window float64, slo SLOTarget) *WindowedSeries {
	w := NewWindowedSeries(window, slo)
	w.retain = true
	w.accums = map[int]*windowAccum{}
	return w
}

// Window reports the bucket width in seconds.
func (w *WindowedSeries) Window() float64 { return w.window }

// Observe implements Sink. Dropped records land in the bucket of their
// FinishedAt (the drop time) as Dropped counts: they widen the window's
// attainment denominator without touching completions or latency sketches.
func (w *WindowedSeries) Observe(r RequestRecord) {
	dropped := r.Dropped
	attained := !dropped && w.slo.Attained(r)
	if dropped {
		w.dropped++
	} else {
		w.count++
	}
	if attained {
		w.attained++
	}
	idx := int(math.Floor(r.FinishedAt / w.window))
	if idx < 0 {
		idx = 0
	}
	var a *windowAccum
	if w.retain {
		// Retained buckets never finalize, so there is no open/closed
		// distinction — just the same straggler clamp as the streaming path.
		if len(w.accums) > 0 && idx < w.curIdx {
			idx = w.curIdx
		}
		w.curIdx = idx
		a = w.accums[idx]
		if a == nil {
			a = newWindowAccum()
			w.accums[idx] = a
		}
	} else {
		if w.cur == nil {
			w.curIdx = idx
			w.cur = newWindowAccum()
		}
		if idx > w.curIdx {
			// Close the open bucket, then emit zero rows through any gap so
			// the series stays contiguous for plotting — without building
			// (and immediately discarding) sketch accumulators for empty
			// buckets.
			w.done = append(w.done, w.finalize(w.curIdx, w.cur))
			for g := w.curIdx + 1; g < idx; g++ {
				w.done = append(w.done, WindowStat{Start: float64(g) * w.window})
			}
			w.curIdx = idx
			w.cur = newWindowAccum()
		}
		a = w.cur
	}
	if dropped {
		a.dropped++
		return
	}
	a.completions++
	if attained {
		a.attained++
	}
	a.ttft.Observe(r.TTFT())
	a.norm.Observe(r.NormLatency())
}

func (w *WindowedSeries) finalize(idx int, a *windowAccum) WindowStat {
	st := WindowStat{
		Start:       float64(idx) * w.window,
		Completions: a.completions,
		Attained:    a.attained,
		Dropped:     a.dropped,
		Goodput:     float64(a.attained) / w.window,
	}
	if a.completions > 0 {
		st.TTFTP95 = a.ttft.Quantile(0.95)
		st.NormLatP95 = a.norm.Quantile(0.95)
	}
	return st
}

// Snapshot implements Sink: exact whole-run count and attainment, zero
// latency summaries (see the type comment — pair with a StreamingSink for
// those).
func (w *WindowedSeries) Snapshot() Snapshot {
	return Snapshot{Count: w.count, Dropped: w.dropped, Attained: w.attained}
}

// Windows returns the contiguous bucket series including the open bucket;
// the receiver stays usable for further Observe calls.
func (w *WindowedSeries) Windows() []WindowStat {
	if w.retain {
		if len(w.accums) == 0 {
			return nil
		}
		keys := make([]int, 0, len(w.accums))
		for k := range w.accums {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		out := make([]WindowStat, 0, keys[len(keys)-1]-keys[0]+1)
		next := keys[0]
		for _, k := range keys {
			for g := next; g < k; g++ {
				out = append(out, WindowStat{Start: float64(g) * w.window})
			}
			out = append(out, w.finalize(k, w.accums[k]))
			next = k + 1
		}
		return out
	}
	out := append([]WindowStat(nil), w.done...)
	if w.cur != nil {
		out = append(out, w.finalize(w.curIdx, w.cur))
	}
	return out
}

// WindowsHeader is the column layout of Table renderings of a series.
var WindowsHeader = []string{
	"Start(s)", "Completions", "Goodput(req/s)", "Attain(%)", "TTFT-p95(s)", "NormLat-p95(s/tok)",
}

// Table renders the series for CLI output.
func (w *WindowedSeries) Table() *Table {
	tab := &Table{Header: WindowsHeader}
	for _, st := range w.Windows() {
		tab.AddRow(st.Start, st.Completions, st.Goodput, 100*st.Attainment(), st.TTFTP95, st.NormLatP95)
	}
	return tab
}
