package metrics

import (
	"math"
	"testing"
)

// rec builds a record with the given TTFT and TPOT over 11 output tokens.
func rec(tenant string, ttft, tpot float64) RequestRecord {
	return RequestRecord{
		ArrivalAt:  0,
		FirstToken: ttft,
		FinishedAt: ttft + 10*tpot,
		OutputLen:  11,
		Tenant:     tenant,
	}
}

func TestSLOAttained(t *testing.T) {
	slo := SLOTarget{TTFT: 1.0, TPOT: 0.1}
	cases := []struct {
		r    RequestRecord
		want bool
	}{
		{rec("", 0.5, 0.05), true},
		{rec("", 1.0, 0.1), true},   // exactly at target attains
		{rec("", 1.5, 0.05), false}, // TTFT miss
		{rec("", 0.5, 0.2), false},  // TPOT miss
		{rec("", 2.0, 0.2), false},  // both miss
	}
	for i, c := range cases {
		if got := slo.Attained(c.r); got != c.want {
			t.Errorf("case %d: Attained = %v, want %v", i, got, c.want)
		}
	}
	if !(SLOTarget{}).Attained(rec("", 99, 99)) {
		t.Error("zero SLO must attain everything")
	}
	if !(SLOTarget{}).IsZero() || (SLOTarget{TTFT: 1}).IsZero() {
		t.Error("IsZero wrong")
	}
	// One-sided objectives constrain only their dimension.
	if (SLOTarget{TTFT: 1}).Attained(rec("", 2, 0.01)) {
		t.Error("TTFT-only SLO ignored TTFT")
	}
	if !(SLOTarget{TTFT: 1}).Attained(rec("", 0.5, 99)) {
		t.Error("TTFT-only SLO must ignore TPOT")
	}
}

func TestAttainmentAndGoodput(t *testing.T) {
	c := NewRecorder()
	slo := SLOTarget{TTFT: 1.0, TPOT: 0.1}
	if c.Attainment(slo) != 0 || c.Goodput(slo, 10) != 0 {
		t.Error("empty recorder should attain nothing")
	}
	c.Add(rec("", 0.5, 0.05))
	c.Add(rec("", 0.5, 0.05))
	c.Add(rec("", 2.0, 0.05))
	c.Add(rec("", 0.5, 0.5))
	if got := c.Attained(slo); got != 2 {
		t.Errorf("Attained = %d, want 2", got)
	}
	if got := c.Attainment(slo); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Attainment = %g, want 0.5", got)
	}
	if got := c.Goodput(slo, 10); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Goodput = %g, want 0.2", got)
	}
	if c.Goodput(slo, 0) != 0 {
		t.Error("zero horizon must give zero goodput")
	}
}

func TestPerTenant(t *testing.T) {
	c := NewRecorder()
	slo := SLOTarget{TTFT: 1.0}
	c.Add(rec("b", 0.5, 0.05))
	c.Add(rec("a", 2.0, 0.05))
	c.Add(rec("a", 0.5, 0.05))
	c.Add(rec("b", 0.5, 0.05))
	c.Add(rec("b", 3.0, 0.05))

	if got := c.Tenants(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Tenants = %v, want [a b]", got)
	}
	stats := c.PerTenant(slo, 10)
	if len(stats) != 2 {
		t.Fatalf("PerTenant returned %d entries, want 2", len(stats))
	}
	a, b := stats[0], stats[1]
	if a.Tenant != "a" || a.Count != 2 || math.Abs(a.Attainment-0.5) > 1e-12 || math.Abs(a.Goodput-0.1) > 1e-12 {
		t.Errorf("tenant a stats wrong: %+v", a)
	}
	if b.Tenant != "b" || b.Count != 3 || math.Abs(b.Attainment-2.0/3) > 1e-12 || math.Abs(b.Goodput-0.2) > 1e-12 {
		t.Errorf("tenant b stats wrong: %+v", b)
	}
	if b.TTFT.Max != 3.0 {
		t.Errorf("tenant b TTFT max = %g, want 3", b.TTFT.Max)
	}
	// The tenant partition must cover the recorder exactly.
	if a.Count+b.Count != c.Count() {
		t.Errorf("per-tenant counts %d+%d != total %d", a.Count, b.Count, c.Count())
	}
}
