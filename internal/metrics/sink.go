// The sink layer: engines push finished-request records into a Sink
// instead of materializing them, so measurement cost is chosen by the
// caller — store everything (ExactRecorder, the default, byte-stable for
// golden traces), stream into constant-memory sketches (StreamingSink),
// bucket into time windows (WindowedSeries), or fan out per tenant
// (TenantMux). Sinks compose with Tee.

package metrics

import "sort"

// Sink consumes finished-request records as the engines emit them and can
// produce an aggregate Snapshot at any point. Implementations are not
// required to be safe for concurrent Observe calls: each engine run feeds
// exactly one goroutine.
type Sink interface {
	// Observe records one finished request.
	Observe(RequestRecord)
	// Snapshot summarizes everything observed so far.
	Snapshot() Snapshot
}

// Snapshot is the uniform aggregate view every sink can produce: counts,
// SLO attainment (against the sink's configured SLO; sinks without one
// count every record as attained, matching the zero SLOTarget), and the
// three standard latency summaries.
type Snapshot struct {
	// Count is the completed-request count; Dropped counts requests the
	// system rejected or shed. Attainment divides by their sum (see
	// Recorder.Attainment for the denominator rationale).
	Count    int
	Dropped  int
	Attained int
	TTFT     Summary
	TPOT     Summary
	NormLat  Summary
}

// Attainment is the attained fraction of completed + dropped requests
// (0 when nothing was observed).
func (s Snapshot) Attainment() float64 {
	if s.Count+s.Dropped == 0 {
		return 0
	}
	return float64(s.Attained) / float64(s.Count+s.Dropped)
}

// Goodput is the rate of attained completions over the horizon, in
// requests per second.
func (s Snapshot) Goodput(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(s.Attained) / horizon
}

// BatchSink is the optional bulk extension of Sink: a sink that can absorb
// a whole iteration's records in one call. Engines batch the completions
// of each decode iteration; ObserveAll picks this path when available.
// Implementations must process the batch in slice order, exactly as if
// each record were Observed individually.
type BatchSink interface {
	Sink
	// ObserveBatch records the batch in order.
	ObserveBatch([]RequestRecord)
}

// ObserveAll feeds recs to the sink in order, through the sink's batch
// path when it has one. The caller keeps ownership of recs.
func ObserveAll(s Sink, recs []RequestRecord) {
	if len(recs) == 0 {
		return
	}
	if b, ok := s.(BatchSink); ok {
		b.ObserveBatch(recs)
		return
	}
	for _, r := range recs {
		s.Observe(r)
	}
}

// ExactRecorder is the store-everything Sink: the Recorder under its
// sink-architecture name. It keeps every RequestRecord, so summaries are
// exact and golden traces stay byte-identical, at O(n) memory.
type ExactRecorder = Recorder

// NewExactRecorder returns an empty exact sink; slo tunes what Snapshot
// counts as attained (the zero SLOTarget attains everything).
func NewExactRecorder(slo SLOTarget) *ExactRecorder {
	return &Recorder{slo: slo}
}

// Observe implements Sink.
func (c *Recorder) Observe(r RequestRecord) { c.Add(r) }

// ObserveBatch implements BatchSink.
func (c *Recorder) ObserveBatch(recs []RequestRecord) { c.AddBatch(recs) }

// Snapshot implements Sink, using the bulk Summaries path.
func (c *Recorder) Snapshot() Snapshot {
	ttft, tpot, norm := c.Summaries()
	return Snapshot{
		Count:    c.Completed(),
		Dropped:  c.DroppedCount(),
		Attained: c.Attained(c.slo),
		TTFT:     ttft,
		TPOT:     tpot,
		NormLat:  norm,
	}
}

// StreamStat tracks one metric's running aggregate in constant memory:
// exact count/mean/min/max plus a relative-error quantile sketch.
type StreamStat struct {
	count    int
	sum      float64
	min, max float64
	sketch   *QuantileSketch
}

func newStreamStat(alpha float64) *StreamStat {
	return &StreamStat{sketch: newQuantileSketch(alpha)}
}

// Observe absorbs one value.
func (s *StreamStat) Observe(v float64) {
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	s.sketch.Observe(v)
}

// Summary reports the running aggregate; Mean/Min/Max/Count are exact,
// the percentiles carry the sketch's relative-error bound.
func (s *StreamStat) Summary() Summary {
	if s.count == 0 {
		return Summary{}
	}
	return Summary{
		Count: s.count,
		Mean:  s.sum / float64(s.count),
		Min:   s.min,
		Max:   s.max,
		P50:   s.sketch.Quantile(0.50),
		P95:   s.sketch.Quantile(0.95),
		P99:   s.sketch.Quantile(0.99),
	}
}

// StreamingSink summarizes the record stream in O(1) memory per request:
// running mean/min/max/count plus quantile sketches for TTFT, TPOT, and
// normalized latency, and an exact attainment counter against its SLO.
// Memory is bounded by the sketches' bucket counts (data dynamic range),
// never by the trace length.
type StreamingSink struct {
	slo      SLOTarget
	count    int
	dropped  int
	attained int
	ttft     *StreamStat
	tpot     *StreamStat
	norm     *StreamStat
}

// NewStreamingSink returns an empty streaming sink measuring attainment
// against slo, with DefaultSketchAlpha quantile accuracy.
func NewStreamingSink(slo SLOTarget) *StreamingSink {
	return &StreamingSink{
		slo:  slo,
		ttft: newStreamStat(0),
		tpot: newStreamStat(0),
		norm: newStreamStat(0),
	}
}

// Observe implements Sink. Dropped records are counted separately and
// excluded from the latency sketches (see RequestRecord.Dropped).
func (s *StreamingSink) Observe(r RequestRecord) {
	if r.Dropped {
		s.dropped++
		return
	}
	s.count++
	if s.slo.Attained(r) {
		s.attained++
	}
	s.ttft.Observe(r.TTFT())
	s.tpot.Observe(r.TPOT())
	s.norm.Observe(r.NormLatency())
}

// Snapshot implements Sink.
func (s *StreamingSink) Snapshot() Snapshot {
	return Snapshot{
		Count:    s.count,
		Dropped:  s.dropped,
		Attained: s.attained,
		TTFT:     s.ttft.Summary(),
		TPOT:     s.tpot.Summary(),
		NormLat:  s.norm.Summary(),
	}
}

// SLO reports the objective the sink measures attainment against.
func (s *StreamingSink) SLO() SLOTarget { return s.slo }

// Tee fans every record out to several sinks; Snapshot delegates to the
// first (primary) sink. It composes the pipeline pieces — e.g. a TenantMux
// for the tables plus a WindowedSeries for the dynamic plots.
type Tee struct {
	sinks []Sink
}

// NewTee builds a tee over primary plus any further sinks.
func NewTee(primary Sink, rest ...Sink) *Tee {
	return &Tee{sinks: append([]Sink{primary}, rest...)}
}

// Observe implements Sink.
func (t *Tee) Observe(r RequestRecord) {
	for _, s := range t.sinks {
		s.Observe(r)
	}
}

// Snapshot implements Sink via the primary sink.
func (t *Tee) Snapshot() Snapshot { return t.sinks[0].Snapshot() }

// TenantMux fans records out per tenant for multi-tenant SLO attribution:
// every record feeds the aggregate sink and a per-tenant sink created on
// demand by the factory. Memory is one sub-sink per distinct tenant —
// independent of trace length when the sub-sinks are streaming.
type TenantMux struct {
	agg      Sink
	make     func(tenant string) Sink
	byTenant map[string]Sink
}

// NewTenantMux builds a mux over the aggregate sink; make constructs the
// per-tenant sinks lazily.
func NewTenantMux(agg Sink, make func(tenant string) Sink) *TenantMux {
	return &TenantMux{agg: agg, make: make, byTenant: map[string]Sink{}}
}

// Observe implements Sink.
func (m *TenantMux) Observe(r RequestRecord) {
	m.agg.Observe(r)
	sub, ok := m.byTenant[r.Tenant]
	if !ok {
		sub = m.make(r.Tenant)
		m.byTenant[r.Tenant] = sub
	}
	sub.Observe(r)
}

// Snapshot implements Sink via the aggregate sink.
func (m *TenantMux) Snapshot() Snapshot { return m.agg.Snapshot() }

// Tenants lists the tenant names seen so far, sorted ascending.
func (m *TenantMux) Tenants() []string {
	out := make([]string, 0, len(m.byTenant))
	for t := range m.byTenant {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Tenant returns the sub-sink for a tenant (nil if never seen).
func (m *TenantMux) Tenant(name string) Sink { return m.byTenant[name] }

// KeyedMux generalizes TenantMux to an arbitrary record→key function, so
// records can be attributed along any dimension — priority tier, dataset,
// arrival phase — with one sub-sink per distinct key. Unlike TenantMux it
// does not wrap an aggregate sink: compose it behind one with Tee when an
// aggregate view is also needed.
type KeyedMux struct {
	key   func(RequestRecord) string
	make  func(key string) Sink
	byKey map[string]Sink
}

// NewKeyedMux builds a mux classifying records with key; make constructs
// the per-key sinks lazily.
func NewKeyedMux(key func(RequestRecord) string, make func(key string) Sink) *KeyedMux {
	return &KeyedMux{key: key, make: make, byKey: map[string]Sink{}}
}

// Observe implements Sink.
func (m *KeyedMux) Observe(r RequestRecord) {
	k := m.key(r)
	sub, ok := m.byKey[k]
	if !ok {
		sub = m.make(k)
		m.byKey[k] = sub
	}
	sub.Observe(r)
}

// Snapshot implements Sink by summing the per-key counts; latency
// summaries stay zero (per-key sketches cannot be merged — read the Key
// sub-sinks for those).
func (m *KeyedMux) Snapshot() Snapshot {
	var s Snapshot
	//hetis:ordered integer field sums; addition is commutative, so key order cannot change the totals
	for _, sub := range m.byKey {
		ss := sub.Snapshot()
		s.Count += ss.Count
		s.Dropped += ss.Dropped
		s.Attained += ss.Attained
	}
	return s
}

// Keys lists the keys seen so far, sorted ascending.
func (m *KeyedMux) Keys() []string {
	out := make([]string, 0, len(m.byKey))
	for k := range m.byKey {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Key returns the sub-sink for a key (nil if never seen).
func (m *KeyedMux) Key(name string) Sink { return m.byKey[name] }
