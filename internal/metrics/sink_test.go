package metrics

import (
	"encoding/csv"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// adversarialDists are value streams chosen to break rank-error quantile
// sketches: bimodal (quantiles near a density gap), heavy-tailed (p99 far
// from the mass), and constant (zero spread). The mode weights keep the
// tested quantiles (p50/p95/p99) inside a mode, where "within 1% of the
// exact value" is well-defined; a quantile placed exactly on a bimodal
// boundary has no meaningful relative-error target for any estimator.
var adversarialDists = []struct {
	name string
	gen  func(rng *rand.Rand) float64
}{
	{"bimodal", func(rng *rand.Rand) float64 {
		// 40% fast mode around 10ms, 60% slow mode around 1s: p50, p95 and
		// p99 all land inside the slow mode.
		if rng.Float64() < 0.4 {
			return 0.010 * (1 + 0.05*rng.Float64())
		}
		return 1.0 * (1 + 0.2*rng.Float64())
	}},
	{"heavytail", func(rng *rand.Rand) float64 {
		// Pareto(alpha=2) scaled to ~50ms median.
		return 0.05 / math.Sqrt(1-rng.Float64())
	}},
	{"lognormal", func(rng *rand.Rand) float64 {
		return 0.2 * math.Exp(0.8*rng.NormFloat64())
	}},
	{"constant", func(rng *rand.Rand) float64 { return 0.125 }},
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestStreamingSinkAccuracy is the sketch-accuracy property test: on every
// adversarial distribution, the streaming percentiles must land within 1%
// relative error of the exact SummarizeValues result, and the running
// mean/min/max/count must match exactly.
func TestStreamingSinkAccuracy(t *testing.T) {
	const n = 20000
	for _, dist := range adversarialDists {
		t.Run(dist.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			exact := NewRecorder()
			stream := NewStreamingSink(SLOTarget{})
			for i := 0; i < n; i++ {
				ttft := dist.gen(rng)
				tpot := dist.gen(rng)
				const out = 11
				rec := RequestRecord{
					ID:         int64(i),
					ArrivalAt:  0,
					FirstToken: ttft,
					FinishedAt: ttft + float64(out-1)*tpot,
					OutputLen:  out,
				}
				exact.Observe(rec)
				stream.Observe(rec)
			}
			want := exact.Snapshot()
			got := stream.Snapshot()
			if got.Count != want.Count || got.Attained != want.Attained {
				t.Fatalf("counts: got (%d, %d), want (%d, %d)", got.Count, got.Attained, want.Count, want.Attained)
			}
			check := func(metric string, g, w Summary) {
				t.Helper()
				if g.Count != w.Count || g.Min != w.Min || g.Max != w.Max {
					t.Errorf("%s running stats diverged: got %+v want %+v", metric, g, w)
				}
				// The streaming mean sums in arrival order, the exact mean
				// over sorted values; only float association separates them.
				if relErr(g.Mean, w.Mean) > 1e-9 {
					t.Errorf("%s mean: streaming %g vs exact %g", metric, g.Mean, w.Mean)
				}
				for _, q := range []struct {
					name      string
					got, want float64
				}{{"p50", g.P50, w.P50}, {"p95", g.P95, w.P95}, {"p99", g.P99, w.P99}} {
					if e := relErr(q.got, q.want); e > 0.01 {
						t.Errorf("%s %s: streaming %.6g vs exact %.6g (rel err %.3f%% > 1%%)",
							metric, q.name, q.got, q.want, 100*e)
					}
				}
			}
			check("TTFT", got.TTFT, want.TTFT)
			check("TPOT", got.TPOT, want.TPOT)
			check("NormLat", got.NormLat, want.NormLat)
		})
	}
}

// TestSketchMemoryBound pins the O(1)-memory claim at the sketch level:
// the bucket count is a function of the data's dynamic range, so growing
// the stream 10x must not grow the bucket count.
func TestSketchMemoryBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := newQuantileSketch(0)
	gen := func() float64 { return 0.05 * math.Exp(1.2*rng.NormFloat64()) }
	for i := 0; i < 10000; i++ {
		q.Observe(gen())
	}
	at10k := q.Buckets()
	for i := 0; i < 90000; i++ {
		q.Observe(gen())
	}
	at100k := q.Buckets()
	// The range widens slightly with more extreme draws; allow that, but
	// nothing close to linear growth.
	if at100k > at10k+at10k/2 {
		t.Fatalf("bucket count grew with stream length: %d at 10k -> %d at 100k", at10k, at100k)
	}
	if at100k > 8000 {
		t.Fatalf("bucket count %d exceeds the dynamic-range bound", at100k)
	}
}

// TestTenantMuxMatchesExactSplit checks that fanning records through a
// TenantMux of exact recorders reproduces Recorder.PerTenant: identical
// per-tenant counts, attainment, and summaries, and an aggregate equal to
// the whole-trace snapshot.
func TestTenantMuxMatchesExactSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	slo := SLOTarget{TTFT: 0.2, TPOT: 0.05}
	tenants := []string{"chat", "code", "batch"}

	all := NewExactRecorder(slo)
	mux := NewTenantMux(NewExactRecorder(slo), func(string) Sink { return NewExactRecorder(slo) })
	for i := 0; i < 5000; i++ {
		ttft := 0.05 * math.Exp(rng.NormFloat64())
		tpot := 0.02 * math.Exp(0.5*rng.NormFloat64())
		rec := RequestRecord{
			ID:         int64(i),
			FirstToken: ttft,
			FinishedAt: ttft + 9*tpot,
			OutputLen:  10,
			Tenant:     tenants[rng.Intn(len(tenants))],
		}
		all.Observe(rec)
		mux.Observe(rec)
	}
	const horizon = 120.0

	if got, want := mux.Snapshot(), all.Snapshot(); got != want {
		t.Fatalf("aggregate snapshot diverged:\n got %+v\nwant %+v", got, want)
	}
	perTenant := all.PerTenant(slo, horizon)
	if got, want := mux.Tenants(), len(perTenant); len(got) != want {
		t.Fatalf("tenant sets diverged: mux %v vs exact %d tenants", got, want)
	}
	total := 0
	for _, ts := range perTenant {
		sub := mux.Tenant(ts.Tenant)
		if sub == nil {
			t.Fatalf("mux never saw tenant %q", ts.Tenant)
		}
		snap := sub.Snapshot()
		total += snap.Count
		if snap.Count != ts.Count {
			t.Errorf("tenant %s: mux count %d, exact %d", ts.Tenant, snap.Count, ts.Count)
		}
		if snap.Attainment() != ts.Attainment {
			t.Errorf("tenant %s: mux attainment %g, exact %g", ts.Tenant, snap.Attainment(), ts.Attainment)
		}
		if snap.Goodput(horizon) != ts.Goodput {
			t.Errorf("tenant %s: mux goodput %g, exact %g", ts.Tenant, snap.Goodput(horizon), ts.Goodput)
		}
		if snap.TTFT != ts.TTFT || snap.TPOT != ts.TPOT || snap.NormLat != ts.NormLat {
			t.Errorf("tenant %s: mux summaries diverged from PerTenant", ts.Tenant)
		}
	}
	if total != all.Count() {
		t.Errorf("per-tenant counts sum to %d, want %d", total, all.Count())
	}
}

// TestSummariesBulkMatchesPerMetric pins the bulk path's float-for-float
// equivalence with the three separate summary calls.
func TestSummariesBulkMatchesPerMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rec := NewRecorder()
	for i := 0; i < 3000; i++ {
		ttft := rng.ExpFloat64() * 0.1
		rec.Add(RequestRecord{
			FirstToken: ttft,
			FinishedAt: ttft + rng.Float64(),
			OutputLen:  1 + rng.Intn(50),
		})
	}
	ttft, tpot, norm := rec.Summaries()
	if want := rec.TTFTSummary(); ttft != want {
		t.Errorf("bulk TTFT %+v != per-metric %+v", ttft, want)
	}
	if want := rec.TPOTSummary(); tpot != want {
		t.Errorf("bulk TPOT %+v != per-metric %+v", tpot, want)
	}
	if want := rec.NormLatencySummary(); norm != want {
		t.Errorf("bulk NormLat %+v != per-metric %+v", norm, want)
	}

	var empty Recorder
	a, b, c := empty.Summaries()
	if a != (Summary{}) || b != (Summary{}) || c != (Summary{}) {
		t.Errorf("empty recorder bulk summaries not zero: %+v %+v %+v", a, b, c)
	}
}

// TestWindowedSeries covers bucketing, gap filling, and goodput math.
func TestWindowedSeries(t *testing.T) {
	slo := SLOTarget{TTFT: 0.5}
	w := NewWindowedSeries(10, slo)
	add := func(finish, ttft float64) {
		w.Observe(RequestRecord{FirstToken: ttft, FinishedAt: finish, OutputLen: 1})
	}
	add(1, 0.1)  // window 0, attained
	add(9, 0.9)  // window 0, missed
	add(12, 0.2) // window 1, attained
	// windows 2-3 empty
	add(45, 0.1) // window 4, attained

	ws := w.Windows()
	if len(ws) != 5 {
		t.Fatalf("got %d windows, want 5 (contiguous through the gap)", len(ws))
	}
	if ws[0].Completions != 2 || ws[0].Attained != 1 {
		t.Errorf("window 0: %+v, want 2 completions / 1 attained", ws[0])
	}
	if ws[0].Goodput != 0.1 {
		t.Errorf("window 0 goodput %g, want 0.1 (1 attained / 10 s)", ws[0].Goodput)
	}
	for i := 2; i <= 3; i++ {
		if ws[i].Completions != 0 || ws[i].Goodput != 0 {
			t.Errorf("gap window %d not empty: %+v", i, ws[i])
		}
		if ws[i].Start != float64(10*i) {
			t.Errorf("gap window %d start %g, want %d", i, ws[i].Start, 10*i)
		}
	}
	if ws[4].Completions != 1 || ws[4].Start != 40 {
		t.Errorf("window 4: %+v", ws[4])
	}
	if snap := w.Snapshot(); snap.Count != 4 || snap.Attained != 3 {
		t.Errorf("aggregate snapshot %+v, want 4 observed / 3 attained", snap)
	}
	if tab := w.Table(); len(tab.Rows) != 5 {
		t.Errorf("series table has %d rows, want 5", len(tab.Rows))
	}
	// Windows() must not consume the open bucket.
	add(46, 0.1)
	if ws := w.Windows(); ws[4].Completions != 2 {
		t.Errorf("open window lost state after Windows(): %+v", ws[4])
	}
}

// TestTeeFansOut checks every sink sees every record and Snapshot follows
// the primary.
func TestTeeFansOut(t *testing.T) {
	a := NewStreamingSink(SLOTarget{})
	b := NewExactRecorder(SLOTarget{})
	tee := NewTee(a, b)
	for i := 0; i < 10; i++ {
		tee.Observe(RequestRecord{FirstToken: 0.1, FinishedAt: 0.2, OutputLen: 2})
	}
	if a.Snapshot().Count != 10 || b.Count() != 10 {
		t.Fatalf("tee dropped records: %d / %d", a.Snapshot().Count, b.Count())
	}
	if tee.Snapshot() != a.Snapshot() {
		t.Errorf("tee snapshot does not follow the primary sink")
	}
}

// TestTableCSVRoundTrip guards the CSV/String split: CSV cells must parse
// back to exactly the floats that went in, so a renderer change can never
// silently reintroduce lossy %.4g cells into the golden-diffed output.
func TestTableCSVRoundTrip(t *testing.T) {
	vals := []float64{
		0.27749999999999997, 1e-17, math.Pi, 2.0 / 3.0,
		1234567.891011, 4.48, math.MaxFloat64, 5e-324, 0, -0.1,
	}
	tab := &Table{Header: []string{"Name", "Val", "Count"}}
	for i, v := range vals {
		tab.AddRow("row", v, i)
	}
	r := csv.NewReader(strings.NewReader(tab.CSV()))
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(vals)+1 {
		t.Fatalf("CSV has %d rows, want %d", len(rows), len(vals)+1)
	}
	for i, v := range vals {
		got, err := strconv.ParseFloat(rows[i+1][1], 64)
		if err != nil {
			t.Fatalf("row %d cell %q: %v", i, rows[i+1][1], err)
		}
		if got != v {
			t.Errorf("row %d: CSV cell %q parses to %g, want exactly %g", i, rows[i+1][1], got, v)
		}
		if rows[i+1][2] != strconv.Itoa(i) {
			t.Errorf("row %d: int cell %q drifted", i, rows[i+1][2])
		}
	}
}
