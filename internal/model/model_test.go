package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for _, m := range []Config{OPT27B, OPT13B, OPT30B, Llama13B, Llama70B} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	base := OPT27B
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero layers", func(c *Config) { c.Layers = 0 }},
		{"zero hidden", func(c *Config) { c.Hidden = 0 }},
		{"zero heads", func(c *Config) { c.Heads = 0 }},
		{"kv not dividing", func(c *Config) { c.KVHeads = 7 }},
		{"heads not dividing hidden", func(c *Config) { c.Heads = 33 }},
		{"zero ffn", func(c *Config) { c.FFN = 0 }},
		{"zero dtype", func(c *Config) { c.BytesPerParam = 0 }},
	}
	for _, tc := range cases {
		c := base
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", tc.name)
		}
	}
}

func TestParamCountsRoughlyMatchNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want float64 // billions
		tol  float64 // relative tolerance
	}{
		{OPT27B, 2.7, 0.15},
		{OPT13B, 13, 0.15},
		{OPT30B, 30, 0.15},
		{Llama13B, 13, 0.15},
		{Llama70B, 70, 0.15},
	}
	for _, tc := range cases {
		got := float64(tc.cfg.Params()) / 1e9
		if math.Abs(got-tc.want)/tc.want > tc.tol {
			t.Errorf("%s: %.2fB params, want ~%gB", tc.cfg.Name, got, tc.want)
		}
	}
}

func TestGQA(t *testing.T) {
	if Llama70B.GroupRatio() != 8 {
		t.Errorf("Llama-70B group ratio = %d want 8", Llama70B.GroupRatio())
	}
	if !Llama70B.IsGQA() {
		t.Error("Llama-70B should be GQA")
	}
	if OPT30B.IsGQA() {
		t.Error("OPT-30B should be MHA")
	}
	if OPT30B.GroupRatio() != 1 {
		t.Errorf("OPT-30B group ratio = %d want 1", OPT30B.GroupRatio())
	}
}

func TestKVBytesPerToken(t *testing.T) {
	// Llama-2-13B-style MHA model: paper §1 says decoding a 10k-token
	// sequence needs >8 GB. Llama13B: 40 layers * 2 * 40*128 * 2B =
	// 819200 B/token; 10k tokens = 8.19 GB.
	perTok := Llama13B.KVBytesPerToken()
	total := perTok * 10000
	if total < 8e9 || total > 9e9 {
		t.Errorf("Llama-13B 10k-token KV = %.2f GB, want just above 8 GB", float64(total)/1e9)
	}
	// GQA shrinks cache by the group ratio relative to a hypothetical MHA
	// twin.
	mhaTwin := Llama70B
	mhaTwin.KVHeads = mhaTwin.Heads
	if got, want := Llama70B.KVBytesPerToken()*8, mhaTwin.KVBytesPerToken(); got != want {
		t.Errorf("GQA cache ratio: %d*8 != %d", Llama70B.KVBytesPerToken(), want)
	}
}

func TestWeightBytesFP16(t *testing.T) {
	// FP16 OPT-2.7B should be ~5.3-6 GB (2 bytes/param).
	gb := float64(OPT27B.WeightBytes()) / 1e9
	if gb < 5 || gb > 7 {
		t.Errorf("OPT-2.7B FP16 weights = %.2f GB, want ~5.5-6.5", gb)
	}
}

func TestFlopsAccounting(t *testing.T) {
	c := OPT27B
	// QKV for MHA: 2·H·H for Q plus 2·(2·H·H) for K and V = 6·H·H.
	wantQKV := 6 * float64(c.Hidden) * float64(c.Hidden)
	if got := c.QKVFlopsPerToken(); got != wantQKV {
		t.Errorf("QKVFlopsPerToken=%g want %g", got, wantQKV)
	}
	// MLP without GLU: 4·H·F.
	wantMLP := 4 * float64(c.Hidden) * float64(c.FFN)
	if got := c.MLPFlopsPerToken(); got != wantMLP {
		t.Errorf("MLPFlopsPerToken=%g want %g", got, wantMLP)
	}
	// GLU model gets 1.5x the MLP flops.
	g := Llama13B
	wantGLU := 6 * float64(g.Hidden) * float64(g.FFN)
	if got := g.MLPFlopsPerToken(); got != wantGLU {
		t.Errorf("GLU MLPFlopsPerToken=%g want %g", got, wantGLU)
	}
	// Dense = QKV + OutProj + MLP.
	if got := c.DenseFlopsPerToken(); got != c.QKVFlopsPerToken()+c.OutProjFlopsPerToken()+c.MLPFlopsPerToken() {
		t.Errorf("DenseFlopsPerToken inconsistent: %g", got)
	}
}

func TestAttnFlopsLinearInContextAndHeads(t *testing.T) {
	c := OPT30B
	f1 := c.AttnFlopsDecodeToken(1000, 8)
	f2 := c.AttnFlopsDecodeToken(2000, 8)
	f3 := c.AttnFlopsDecodeToken(1000, 16)
	if math.Abs(f2/f1-2) > 1e-9 {
		t.Errorf("attention flops not linear in context: %g vs %g", f1, f2)
	}
	if math.Abs(f3/f1-2) > 1e-9 {
		t.Errorf("attention flops not linear in heads: %g vs %g", f1, f3)
	}
}

func TestAttnBytesGQASharing(t *testing.T) {
	// For the GQA model, 8 query heads in one group read a single KV
	// head's cache.
	g := Llama70B
	b8 := g.AttnBytesDecodeToken(1000, 8)
	b16 := g.AttnBytesDecodeToken(1000, 16)
	if b16 != 2*b8 {
		t.Errorf("two groups should read twice one group's bytes: %d vs %d", b16, b8)
	}
	// Partial groups round up.
	b9 := g.AttnBytesDecodeToken(1000, 9)
	if b9 != b16 {
		t.Errorf("9 heads spanning 2 groups should read 2 groups of cache: %d vs %d", b9, b16)
	}
}

func TestPrefillAttnQuadratic(t *testing.T) {
	c := Llama13B
	f1 := c.AttnFlopsPrefill(512)
	f2 := c.AttnFlopsPrefill(1024)
	if math.Abs(f2/f1-4) > 1e-9 {
		t.Errorf("prefill attention should be quadratic: ratio %g want 4", f2/f1)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"opt-2.7b", "OPT-30B", "llama-70b", "Llama-13B", "opt-13b"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("gpt-5"); err == nil {
		t.Error("ByName(gpt-5) should fail")
	}
}

func TestHiddenStateBytes(t *testing.T) {
	c := OPT27B
	if got, want := c.HiddenStateBytes(10), int64(10*2560*2); got != want {
		t.Errorf("HiddenStateBytes(10)=%d want %d", got, want)
	}
}

func TestPropertyKVMonotoneInLayers(t *testing.T) {
	f := func(l1, l2 uint8) bool {
		a, b := int(l1)%64+1, int(l2)%64+1
		if a > b {
			a, b = b, a
		}
		ca, cb := OPT27B, OPT27B
		ca.Layers, cb.Layers = a, b
		return ca.KVBytesPerToken() <= cb.KVBytesPerToken()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringDescriptions(t *testing.T) {
	s := Llama70B.String()
	if s == "" {
		t.Fatal("empty description")
	}
	for _, sub := range []string{"Llama-70B", "GQA"} {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("description %q missing %q", s, sub)
		}
	}
}
