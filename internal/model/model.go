// Package model describes transformer LLM architectures at the granularity
// Hetis schedules them: the parameter-carrying dense modules (QKV
// projection, attention output projection, MLP) and the parameter-free
// Attention module that operates on the KV cache head by head.
//
// All byte quantities assume the dtype given by BytesPerParam (FP16 by
// default). FLOP counts use the standard 2·m·k·n convention for an
// (m×k)·(k×n) matmul.
package model

import (
	"fmt"
	"strings"
)

// Config is one transformer architecture.
type Config struct {
	Name    string
	Layers  int // number of transformer layers
	Hidden  int // model (embedding) dimension
	Heads   int // query heads per layer
	KVHeads int // key/value heads per layer (== Heads for MHA, fewer for GQA)
	FFN     int // feed-forward intermediate dimension
	Vocab   int
	// GLU marks gated MLPs (SwiGLU, as in Llama): three weight matrices
	// instead of two.
	GLU bool
	// BytesPerParam is the serving dtype width (2 for FP16).
	BytesPerParam int
	// MaxSeqLen is the model's context window (0 = unlimited). Serving
	// systems truncate requests to this length.
	MaxSeqLen int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0:
		return fmt.Errorf("model %s: Layers must be positive", c.Name)
	case c.Hidden <= 0:
		return fmt.Errorf("model %s: Hidden must be positive", c.Name)
	case c.Heads <= 0:
		return fmt.Errorf("model %s: Heads must be positive", c.Name)
	case c.KVHeads <= 0 || c.Heads%c.KVHeads != 0:
		return fmt.Errorf("model %s: KVHeads must divide Heads (%d %% %d != 0)", c.Name, c.Heads, c.KVHeads)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("model %s: Heads must divide Hidden", c.Name)
	case c.FFN <= 0:
		return fmt.Errorf("model %s: FFN must be positive", c.Name)
	case c.BytesPerParam <= 0:
		return fmt.Errorf("model %s: BytesPerParam must be positive", c.Name)
	case c.MaxSeqLen < 0:
		return fmt.Errorf("model %s: negative MaxSeqLen", c.Name)
	}
	return nil
}

// HeadDim is the per-head dimension.
func (c Config) HeadDim() int { return c.Hidden / c.Heads }

// GroupRatio is r in the paper: query heads per key/value head group. For
// MHA models it is 1; for Llama-70B it is 8.
func (c Config) GroupRatio() int { return c.Heads / c.KVHeads }

// IsGQA reports whether the model groups query heads over fewer KV heads.
func (c Config) IsGQA() bool { return c.KVHeads < c.Heads }

// --- Parameter accounting -------------------------------------------------

// attnParamsPerLayer counts attention projection weights: Wq (H×H), Wk and
// Wv (H × KVHeads·HeadDim each), and Wo (H×H).
func (c Config) attnParamsPerLayer() int64 {
	h := int64(c.Hidden)
	kv := int64(c.KVHeads * c.HeadDim())
	return h*h + 2*h*kv + h*h
}

// mlpParamsPerLayer counts MLP weights: 2·H·F for plain MLPs, 3·H·F for
// gated (GLU) MLPs.
func (c Config) mlpParamsPerLayer() int64 {
	mats := int64(2)
	if c.GLU {
		mats = 3
	}
	return mats * int64(c.Hidden) * int64(c.FFN)
}

// ParamsPerLayer is the weight count of one transformer layer (projections
// plus MLP; norm parameters are negligible and ignored).
func (c Config) ParamsPerLayer() int64 {
	return c.attnParamsPerLayer() + c.mlpParamsPerLayer()
}

// Params approximates the total parameter count, including embeddings and
// the tied LM head.
func (c Config) Params() int64 {
	emb := int64(c.Vocab) * int64(c.Hidden)
	return int64(c.Layers)*c.ParamsPerLayer() + emb
}

// WeightBytes is the serving memory footprint of the full model.
func (c Config) WeightBytes() int64 {
	return c.Params() * int64(c.BytesPerParam)
}

// LayerWeightBytes is the footprint of a single layer.
func (c Config) LayerWeightBytes() int64 {
	return c.ParamsPerLayer() * int64(c.BytesPerParam)
}

// --- KV cache accounting ---------------------------------------------------

// KVBytesPerTokenLayer is the cache footprint of one token in one layer
// across all KV heads: K and V vectors of KVHeads·HeadDim each.
func (c Config) KVBytesPerTokenLayer() int64 {
	return 2 * int64(c.KVHeads) * int64(c.HeadDim()) * int64(c.BytesPerParam)
}

// KVBytesPerToken is the cache footprint of one token across all layers.
func (c Config) KVBytesPerToken() int64 {
	return int64(c.Layers) * c.KVBytesPerTokenLayer()
}

// KVBytesPerTokenHeadGroup is the footprint of one token in one layer for a
// single KV head group (one KV head serving GroupRatio query heads). This is
// the granularity at which Hetis places cache on devices.
func (c Config) KVBytesPerTokenHeadGroup() int64 {
	return 2 * int64(c.HeadDim()) * int64(c.BytesPerParam)
}

// --- FLOP accounting per module --------------------------------------------

// QKVFlopsPerToken counts the Q, K and V projections for one token in one
// layer.
func (c Config) QKVFlopsPerToken() float64 {
	h := float64(c.Hidden)
	kv := float64(c.KVHeads * c.HeadDim())
	return 2*h*h + 2*2*h*kv
}

// OutProjFlopsPerToken counts the attention output projection.
func (c Config) OutProjFlopsPerToken() float64 {
	h := float64(c.Hidden)
	return 2 * h * h
}

// MLPFlopsPerToken counts the feed-forward network for one token in one
// layer.
func (c Config) MLPFlopsPerToken() float64 {
	mats := 2.0
	if c.GLU {
		mats = 3.0
	}
	return mats * 2 * float64(c.Hidden) * float64(c.FFN)
}

// DenseFlopsPerToken is everything with parameters: QKV + output projection
// + MLP. This is the work Hetis restricts to primary workers.
func (c Config) DenseFlopsPerToken() float64 {
	return c.QKVFlopsPerToken() + c.OutProjFlopsPerToken() + c.MLPFlopsPerToken()
}

// AttnFlopsDecodeToken counts the parameter-free attention work of decoding
// one new token against a context of ctxLen tokens, for nHeads query heads
// (QKᵀ plus AV, 2·2·headDim FLOPs per head per context token).
func (c Config) AttnFlopsDecodeToken(ctxLen int, nHeads int) float64 {
	return 4 * float64(nHeads) * float64(c.HeadDim()) * float64(ctxLen)
}

// AttnFlopsPrefill counts the attention work of a full prompt of promptLen
// tokens (causal, so roughly promptLen²/2 interactions per head).
func (c Config) AttnFlopsPrefill(promptLen int) float64 {
	l := float64(promptLen)
	return 4 * float64(c.Heads) * float64(c.HeadDim()) * l * l / 2
}

// AttnBytesDecodeToken is the KV-cache traffic (HBM reads) needed to decode
// one token over ctxLen context for nHeads query heads. Grouped query heads
// share their KV head's cache, so traffic scales with nHeads/GroupRatio.
func (c Config) AttnBytesDecodeToken(ctxLen int, nHeads int) int64 {
	groups := (nHeads + c.GroupRatio() - 1) / c.GroupRatio()
	return int64(ctxLen) * 2 * int64(c.HeadDim()) * int64(c.BytesPerParam) * int64(groups)
}

// HiddenStateBytes is the activation size of n tokens (hidden dim × dtype),
// the unit transferred between pipeline stages.
func (c Config) HiddenStateBytes(nTokens int) int64 {
	return int64(nTokens) * int64(c.Hidden) * int64(c.BytesPerParam)
}

// QHeadBytes is the per-token size of a single query head's activation,
// the unit scattered to attention workers in head-wise parallelism.
func (c Config) QHeadBytes() int64 {
	return int64(c.HeadDim()) * int64(c.BytesPerParam)
}

// String renders a compact description.
func (c Config) String() string {
	kind := "MHA"
	if c.IsGQA() {
		kind = fmt.Sprintf("GQA r=%d", c.GroupRatio())
	}
	return fmt.Sprintf("%s (L=%d d=%d heads=%d %s, %.1fB params)",
		c.Name, c.Layers, c.Hidden, c.Heads, kind, float64(c.Params())/1e9)
}

// --- Presets ----------------------------------------------------------------

// Model presets used in the paper's evaluation plus OPT-2.7B from Table 1.
var (
	// OPT27B is OPT-2.7B (Table 1 microbenchmarks).
	OPT27B = Config{
		Name: "OPT-2.7B", Layers: 32, Hidden: 2560, Heads: 32, KVHeads: 32,
		FFN: 10240, Vocab: 50272, BytesPerParam: 2, MaxSeqLen: 2048,
	}
	// OPT13B is OPT-13B.
	OPT13B = Config{
		Name: "OPT-13B", Layers: 40, Hidden: 5120, Heads: 40, KVHeads: 40,
		FFN: 20480, Vocab: 50272, BytesPerParam: 2, MaxSeqLen: 2048,
	}
	// OPT30B is OPT-30B (Figs. 7, 9).
	OPT30B = Config{
		Name: "OPT-30B", Layers: 48, Hidden: 7168, Heads: 56, KVHeads: 56,
		FFN: 28672, Vocab: 50272, BytesPerParam: 2, MaxSeqLen: 2048,
	}
	// Llama13B is Llama-13B (Fig. 8), an MHA model.
	Llama13B = Config{
		Name: "Llama-13B", Layers: 40, Hidden: 5120, Heads: 40, KVHeads: 40,
		FFN: 13824, Vocab: 32000, GLU: true, BytesPerParam: 2, MaxSeqLen: 4096,
	}
	// Llama70B is Llama-2-70B (Figs. 2, 5, 10, 12, 13), a GQA model with
	// r = 8.
	Llama70B = Config{
		Name: "Llama-70B", Layers: 80, Hidden: 8192, Heads: 64, KVHeads: 8,
		FFN: 28672, Vocab: 32000, GLU: true, BytesPerParam: 2, MaxSeqLen: 4096,
	}
)

// ByName resolves a preset config by case-insensitive name.
func ByName(name string) (Config, error) {
	for _, m := range []Config{OPT27B, OPT13B, OPT30B, Llama13B, Llama70B} {
		if strings.EqualFold(m.Name, name) {
			return m, nil
		}
	}
	return Config{}, fmt.Errorf("model: unknown preset %q", name)
}
