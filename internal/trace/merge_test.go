package trace

import (
	"sync"
	"testing"
)

func TestMergeByTimeOrdersAndTieBreaks(t *testing.T) {
	a, b, c := &Log{}, &Log{}, &Log{}
	// Interleaved nondecreasing streams with a three-way tie at t=2.
	for _, at := range []float64{0, 2, 2, 5} {
		a.Add(Event{At: at, Kind: KindDecode, Device: 0})
	}
	for _, at := range []float64{1, 2, 4} {
		b.Add(Event{At: at, Kind: KindDecode, Device: 1})
	}
	for _, at := range []float64{2, 3} {
		c.Add(Event{At: at, Kind: KindDecode, Device: 2})
	}
	m := MergeByTime(a, b, c)
	if m.Len() != a.Len()+b.Len()+c.Len() {
		t.Fatalf("merged %d events, want %d", m.Len(), a.Len()+b.Len()+c.Len())
	}
	evs := m.Events()
	last := evs[0].At
	for _, ev := range evs[1:] {
		if ev.At < last {
			t.Fatalf("merged log not time-ordered: %v", evs)
		}
		last = ev.At
	}
	// At the t=2 four-way tie, source 0's two events drain first, then
	// source 1's, then source 2's — position in the argument list, never
	// completion order.
	gotDevs := make([]int, len(evs))
	for i, ev := range evs {
		gotDevs[i] = ev.Device
	}
	want := []int{0, 1, 0, 0, 1, 2, 2, 1, 0}
	if len(gotDevs) != len(want) {
		t.Fatalf("got %d events, want %d", len(gotDevs), len(want))
	}
	for i := range want {
		if gotDevs[i] != want[i] {
			t.Fatalf("merged source order %v, want %v (ties must break to the earlier input)", gotDevs, want)
		}
	}
	// Inputs are not consumed.
	if a.Len() != 4 || b.Len() != 3 || c.Len() != 2 {
		t.Fatal("MergeByTime consumed its inputs")
	}
}

func TestMergeByTimeDegenerate(t *testing.T) {
	if got := MergeByTime(); got.Len() != 0 {
		t.Fatalf("empty merge has %d events", got.Len())
	}
	var nilLog *Log
	one := &Log{}
	one.Add(Event{At: 1, Kind: KindArrival})
	m := MergeByTime(nilLog, &Log{}, one)
	if m.Len() != 1 || m.Events()[0].At != 1 {
		t.Fatalf("merge with nil/empty inputs produced %v", m.Events())
	}
}

// Cross-page merge: streams longer than one page keep order across the
// page-boundary cursor advance.
func TestMergeByTimeAcrossPages(t *testing.T) {
	ResetPagePool()
	defer ResetPagePool()
	a, b := &Log{}, &Log{}
	n := pageEvents + 100
	for i := 0; i < n; i++ {
		a.Add(Event{At: float64(2 * i), Kind: KindDecode, Request: 1})
		b.Add(Event{At: float64(2*i + 1), Kind: KindDecode, Request: 2})
	}
	m := MergeByTime(a, b)
	if m.Len() != 2*n {
		t.Fatalf("merged %d events, want %d", m.Len(), 2*n)
	}
	i := 0
	ok := true
	m.Each(func(ev Event) bool {
		if ev.At != float64(i) {
			ok = false
			return false
		}
		i++
		return true
	})
	if !ok {
		t.Fatal("cross-page merge broke time order")
	}
}

// Eight goroutines hammering grow/Release concurrently — the shard-arena
// access pattern the striped pool exists for. Run under -race in CI; the
// assertions here pin the pool accounting invariants.
func TestPagePoolStripedConcurrency(t *testing.T) {
	ResetPagePool()
	defer ResetPagePool()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				l := &Log{}
				for i := 0; i < 3*pageEvents; i++ {
					l.Add(Event{At: float64(i), Kind: KindSample})
				}
				l.Release()
			}
		}()
	}
	wg.Wait()
	if got := pagePoolLen(); got > poolCapPages {
		t.Fatalf("pool holds %d pages, cap is %d", got, poolCapPages)
	}
	// Everything released while under cap must have been retained: at most
	// workers*3 pages were ever live at once.
	if got := pagePoolLen(); got > workers*3 {
		t.Fatalf("pool holds %d pages, only %d were ever live", got, workers*3)
	}
}
