package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(Event{At: 1, Kind: KindArrival})
	l.Addf(2, KindDecode, 1, 0, 0, "x")
	if l.Len() != 0 || l.Events() != nil || l.Count(KindArrival) != 0 || l.Filter(KindArrival) != nil {
		t.Fatal("nil log should discard everything")
	}
	if err := l.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestAddAndFilter(t *testing.T) {
	l := &Log{}
	l.Add(Event{At: 0, Kind: KindArrival, Request: 1})
	l.Add(Event{At: 1, Kind: KindDecode, Request: 1})
	l.Add(Event{At: 2, Kind: KindDecode, Request: 1})
	l.Addf(3, KindFinish, 1, 0, 0, "done after %d steps", 2)
	if l.Len() != 4 {
		t.Fatalf("Len=%d want 4", l.Len())
	}
	if got := l.Count(KindDecode); got != 2 {
		t.Fatalf("Count(decode)=%d want 2", got)
	}
	fin := l.Filter(KindFinish)
	if len(fin) != 1 || fin[0].Note != "done after 2 steps" {
		t.Fatalf("filter/format wrong: %+v", fin)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	l := &Log{}
	l.Add(Event{At: 0.5, Kind: KindDispatch, Request: 7, Device: 3, Value: 40, Note: "heads"})
	l.Add(Event{At: 1.5, Kind: KindMigration, Request: 7, Device: 1, Value: 1 << 20})
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("expected 2 lines, got %d: %q", got, buf.String())
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip lost events: %d", back.Len())
	}
	if back.Events()[0] != l.Events()[0] || back.Events()[1] != l.Events()[1] {
		t.Fatalf("round trip mismatch: %+v vs %+v", back.Events(), l.Events())
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed input should error")
	}
}

func TestAnalysisHelpers(t *testing.T) {
	l := &Log{}
	l.Add(Event{At: 2, Kind: KindMigration, Value: 100})
	l.Add(Event{At: 1, Kind: KindMigration, Value: 50})
	l.Add(Event{At: 5, Kind: KindFinish})
	counts := l.KindCounts()
	if counts[KindMigration] != 2 || counts[KindFinish] != 1 {
		t.Fatalf("KindCounts = %v", counts)
	}
	first, last := l.Span()
	if first != 1 || last != 5 {
		t.Fatalf("Span = (%g, %g)", first, last)
	}
	if got := l.SumValues(KindMigration); got != 150 {
		t.Fatalf("SumValues = %g", got)
	}
	var nilLog *Log
	if nilLog.KindCounts() != nil || nilLog.SumValues(KindFinish) != 0 {
		t.Fatal("nil log helpers should be zero-valued")
	}
	f, la := nilLog.Span()
	if f != 0 || la != 0 {
		t.Fatal("nil span should be zero")
	}
}
