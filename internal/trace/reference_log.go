// Frozen copy of the flat-slice event log that the paged arena in trace.go
// replaced. It exists only as a differential-testing oracle (see
// TestArenaMatchesReferenceLog): random Add/Addf/query sequences must
// produce identical results from both implementations. Mirrors the frozen
// reference queue in internal/sim/reference_queue.go and the reference
// solver in internal/lp/reference.go.
//
// Do not optimize this file. Its value is that it stays byte-for-byte the
// storage logic the goldens were recorded against.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// referenceLog is the retired flat-slice implementation: every append may
// realloc-copy the whole history, which is exactly why it was replaced —
// and exactly why it makes a trivially-correct oracle.
type referenceLog struct {
	events []Event
}

func (l *referenceLog) refAdd(ev Event) { l.events = append(l.events, ev) }

func (l *referenceLog) refAddf(at float64, kind Kind, req int64, dev int, value float64, format string, args ...any) {
	note := format
	if len(args) > 0 {
		note = fmt.Sprintf(format, args...)
	}
	l.events = append(l.events, Event{At: at, Kind: kind, Request: req, Device: dev, Value: value, Note: note})
}

func (l *referenceLog) refEvents() []Event { return l.events }

func (l *referenceLog) refLen() int { return len(l.events) }

func (l *referenceLog) refFilter(kind Kind) []Event {
	var out []Event
	for _, ev := range l.events {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

func (l *referenceLog) refCount(kind Kind) int {
	n := 0
	for _, ev := range l.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

func (l *referenceLog) refWriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range l.events {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("trace: encode: %w", err)
		}
	}
	return nil
}

func (l *referenceLog) refKindCounts() map[Kind]int {
	out := make(map[Kind]int)
	for _, ev := range l.events {
		out[ev.Kind]++
	}
	return out
}

func (l *referenceLog) refSpan() (first, last float64) {
	if len(l.events) == 0 {
		return 0, 0
	}
	first = l.events[0].At
	last = l.events[0].At
	for _, ev := range l.events[1:] {
		if ev.At < first {
			first = ev.At
		}
		if ev.At > last {
			last = ev.At
		}
	}
	return first, last
}

func (l *referenceLog) refSumValues(kind Kind) float64 {
	var sum float64
	for _, ev := range l.events {
		if ev.Kind == kind {
			sum += ev.Value
		}
	}
	return sum
}
