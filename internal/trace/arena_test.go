package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// arenaKinds is the kind alphabet the differential tests draw from.
var arenaKinds = []Kind{
	KindArrival, KindPrefill, KindDecode, KindDispatch, KindFinish,
	KindMigration, KindEviction, KindSample, KindDrop,
}

// TestArenaMatchesReferenceLog drives the paged arena and the frozen
// flat-slice oracle with the same random Add/Addf stream — long enough to
// cross several page boundaries — and requires every query to agree.
func TestArenaMatchesReferenceLog(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := &Log{}
	ref := &referenceLog{}
	n := 3*pageEvents + 417 // four pages, last one partial
	for i := 0; i < n; i++ {
		ev := Event{
			At:      rng.Float64() * 100,
			Kind:    arenaKinds[rng.Intn(len(arenaKinds))],
			Request: int64(rng.Intn(512)),
			Device:  rng.Intn(8),
			Value:   float64(rng.Intn(1000)),
		}
		switch i % 3 {
		case 0:
			l.Add(ev)
			ref.refAdd(ev)
		case 1:
			l.Addf(ev.At, ev.Kind, ev.Request, ev.Device, ev.Value, "static note")
			ref.refAddf(ev.At, ev.Kind, ev.Request, ev.Device, ev.Value, "static note")
		default:
			l.Addf(ev.At, ev.Kind, ev.Request, ev.Device, ev.Value, "dev=%d", ev.Device)
			ref.refAddf(ev.At, ev.Kind, ev.Request, ev.Device, ev.Value, "dev=%d", ev.Device)
		}
	}
	if l.Len() != ref.refLen() {
		t.Fatalf("Len: arena %d, oracle %d", l.Len(), ref.refLen())
	}
	if !reflect.DeepEqual(l.Events(), ref.refEvents()) {
		t.Fatal("Events diverged from the flat-slice oracle")
	}
	for _, k := range arenaKinds {
		if got, want := l.Count(k), ref.refCount(k); got != want {
			t.Fatalf("Count(%s): arena %d, oracle %d", k, got, want)
		}
		if !reflect.DeepEqual(l.Filter(k), ref.refFilter(k)) {
			t.Fatalf("Filter(%s) diverged", k)
		}
		if got, want := l.SumValues(k), ref.refSumValues(k); got != want {
			t.Fatalf("SumValues(%s): arena %g, oracle %g", k, got, want)
		}
	}
	if !reflect.DeepEqual(l.KindCounts(), ref.refKindCounts()) {
		t.Fatal("KindCounts diverged")
	}
	gf, gl := l.Span()
	wf, wl := ref.refSpan()
	if gf != wf || gl != wl {
		t.Fatalf("Span: arena (%g,%g), oracle (%g,%g)", gf, gl, wf, wl)
	}
	// Each must visit the same sequence Events returns, and honor early
	// stop.
	var walked []Event
	l.Each(func(ev Event) bool {
		walked = append(walked, ev)
		return true
	})
	if !reflect.DeepEqual(walked, ref.refEvents()) {
		t.Fatal("Each diverged from the oracle order")
	}
	steps := 0
	l.Each(func(Event) bool {
		steps++
		return steps < 5
	})
	if steps != 5 {
		t.Fatalf("Each ignored early stop: %d steps", steps)
	}
}

// TestWriteJSONLMatchesReference is the output-equivalence check for the
// buffered single-encoder writer: byte-identical JSONL against the frozen
// per-event encoder across page boundaries.
func TestWriteJSONLMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	l := &Log{}
	ref := &referenceLog{}
	for i := 0; i < pageEvents+123; i++ {
		ev := Event{
			At:      rng.Float64() * 10,
			Kind:    arenaKinds[rng.Intn(len(arenaKinds))],
			Request: int64(i),
			Device:  rng.Intn(4),
			Value:   rng.Float64(),
			Note:    "",
		}
		if i%7 == 0 {
			ev.Note = "annotated"
		}
		l.Add(ev)
		ref.refAdd(ev)
	}
	var got, want bytes.Buffer
	if err := l.WriteJSONL(&got); err != nil {
		t.Fatal(err)
	}
	if err := ref.refWriteJSONL(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("buffered JSONL output differs from the reference encoder")
	}
}

// TestReleaseRecyclesWithoutAliasing proves the pool contract: a released
// log's pages return to the free list, a new log reuses them, and views
// taken from the first log before release stay intact — stitched copies
// must not alias recycled storage.
func TestReleaseRecyclesWithoutAliasing(t *testing.T) {
	ResetPagePool()
	defer ResetPagePool()

	first := &Log{}
	n := 2*pageEvents + 57
	for i := 0; i < n; i++ {
		first.Add(Event{At: float64(i), Kind: KindDecode, Request: int64(i), Note: "first-run"})
	}
	snapshot := first.Events()
	filtered := first.Filter(KindDecode)

	first.Release()
	if first.Len() != 0 || first.Events() != nil {
		t.Fatalf("release should empty the log: len=%d", first.Len())
	}
	if got := pagePoolLen(); got != 3 {
		t.Fatalf("pool holds %d pages after release, want 3", got)
	}

	second := &Log{}
	for i := 0; i < n; i++ {
		second.Add(Event{At: float64(-i), Kind: KindPrefill, Request: int64(i + 1000), Note: "second-run"})
	}
	if got := pagePoolLen(); got != 0 {
		t.Fatalf("second log should have drained the pool, %d pages left", got)
	}

	// The first log's views predate the recycle and must be untouched.
	for i, ev := range snapshot {
		if ev.At != float64(i) || ev.Kind != KindDecode || ev.Note != "first-run" {
			t.Fatalf("snapshot[%d] corrupted by page reuse: %+v", i, ev)
		}
	}
	if len(filtered) != n || filtered[n-1].Request != int64(n-1) {
		t.Fatalf("filtered view corrupted by page reuse: len=%d", len(filtered))
	}
	if second.Len() != n || second.Count(KindPrefill) != n {
		t.Fatalf("recycled log miscounts: len=%d", second.Len())
	}

	// Releasing the second log must zero recycled contents: pooled pages
	// may not pin the previous run's note strings.
	second.Release()
	for s := range pagePool {
		for p := pagePool[s].free; p != nil; p = p.next {
			for i := range p.ev {
				if p.ev[i] != (Event{}) {
					t.Fatalf("pooled page retains event %+v", p.ev[i])
				}
			}
		}
	}
}

// TestReleaseRespectsPoolCap fills the pool past its cap and checks the
// overflow is dropped for the GC rather than retained forever.
func TestReleaseRespectsPoolCap(t *testing.T) {
	ResetPagePool()
	defer ResetPagePool()

	l := &Log{}
	for i := 0; i < (poolCapPages+2)*pageEvents; i++ {
		l.Add(Event{At: float64(i), Kind: KindSample})
	}
	l.Release()
	if got := pagePoolLen(); got != poolCapPages {
		t.Fatalf("pool holds %d pages, cap is %d", got, poolCapPages)
	}
	var nilLog *Log
	nilLog.Release() // nil-safety
}
