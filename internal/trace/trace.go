// Package trace records structured simulation events. Engines emit events
// (request arrival, prefill/decode steps, dispatch decisions, migrations,
// evictions); experiments replay them to build time series such as Fig. 14's
// per-device cache-usage and head-count curves, and a JSONL writer dumps
// them for offline inspection.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Kind labels an event type.
type Kind string

// Event kinds emitted by the engines.
const (
	KindArrival    Kind = "arrival"
	KindPrefill    Kind = "prefill"
	KindDecode     Kind = "decode"
	KindDispatch   Kind = "dispatch"
	KindRedispatch Kind = "redispatch"
	KindMigration  Kind = "migration"
	KindEviction   Kind = "eviction"
	KindFinish     Kind = "finish"
	KindSample     Kind = "sample" // periodic device-state sample

	// Chaos-layer kinds: replica lifecycle, load shedding, and priority
	// preemption. KindScale's Value is +1 for a scale-up and -1 for a
	// scale-down decision; KindFailure/KindRecover carry the replica index
	// in Device.
	KindFailure Kind = "failure"
	KindRecover Kind = "recover"
	KindDrop    Kind = "drop"
	KindScale   Kind = "scale"
	KindPreempt Kind = "preempt"
)

// Event is one timestamped record.
type Event struct {
	At      float64 `json:"at"`
	Kind    Kind    `json:"kind"`
	Request int64   `json:"req,omitempty"`
	Device  int     `json:"dev,omitempty"`
	// Value carries the kind-specific payload: heads dispatched, bytes
	// migrated, cache utilization sampled, etc.
	Value float64 `json:"value,omitempty"`
	// Note is an optional free-form annotation.
	Note string `json:"note,omitempty"`
}

// Log accumulates events in memory. The zero value is ready to use. A nil
// *Log discards everything, so engines can trace unconditionally.
type Log struct {
	events []Event
}

// Add appends an event. Safe on a nil receiver (no-op).
func (l *Log) Add(ev Event) {
	if l == nil {
		return
	}
	l.events = append(l.events, ev)
}

// Addf is a convenience constructor-and-append.
func (l *Log) Addf(at float64, kind Kind, req int64, dev int, value float64, format string, args ...any) {
	if l == nil {
		return
	}
	note := format
	if len(args) > 0 {
		note = fmt.Sprintf(format, args...)
	}
	l.events = append(l.events, Event{At: at, Kind: kind, Request: req, Device: dev, Value: value, Note: note})
}

// Events returns the recorded events in emission order. Nil-safe.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Len reports the event count. Nil-safe.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Filter returns the events matching the kind, preserving order.
func (l *Log) Filter(kind Kind) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for _, ev := range l.events {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// Count returns the number of events of a kind.
func (l *Log) Count(kind Kind) int {
	if l == nil {
		return 0
	}
	n := 0
	for _, ev := range l.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// WriteJSONL streams the log as one JSON object per line.
func (l *Log) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, ev := range l.events {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("trace: encode: %w", err)
		}
	}
	return nil
}

// ReadJSONL parses a JSONL stream back into a log.
func ReadJSONL(r io.Reader) (*Log, error) {
	dec := json.NewDecoder(r)
	l := &Log{}
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return l, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode: %w", err)
		}
		l.events = append(l.events, ev)
	}
}

// KindCounts tallies events per kind.
func (l *Log) KindCounts() map[Kind]int {
	if l == nil {
		return nil
	}
	out := make(map[Kind]int)
	for _, ev := range l.events {
		out[ev.Kind]++
	}
	return out
}

// Span returns the first and last event timestamps (0, 0 when empty).
func (l *Log) Span() (first, last float64) {
	if l == nil || len(l.events) == 0 {
		return 0, 0
	}
	first = l.events[0].At
	last = l.events[0].At
	for _, ev := range l.events[1:] {
		if ev.At < first {
			first = ev.At
		}
		if ev.At > last {
			last = ev.At
		}
	}
	return first, last
}

// SumValues adds up the Value field across events of one kind (e.g. total
// migrated bytes for KindMigration).
func (l *Log) SumValues(kind Kind) float64 {
	if l == nil {
		return 0
	}
	var sum float64
	for _, ev := range l.events {
		if ev.Kind == kind {
			sum += ev.Value
		}
	}
	return sum
}
