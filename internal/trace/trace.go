// Package trace records structured simulation events. Engines emit events
// (request arrival, prefill/decode steps, dispatch decisions, migrations,
// evictions); experiments replay them to build time series such as Fig. 14's
// per-device cache-usage and head-count curves, and a JSONL writer dumps
// them for offline inspection.
//
// Storage is a paged arena: events land in fixed-size pages chained into a
// list, so appending never realloc-copies the whole log the way a flat
// slice does (at megascale that was hundreds of MB of copy traffic per
// run), and retired logs hand their pages back to a process-level free
// list for the next run to reuse.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Kind labels an event type.
type Kind string

// Event kinds emitted by the engines.
const (
	KindArrival    Kind = "arrival"
	KindPrefill    Kind = "prefill"
	KindDecode     Kind = "decode"
	KindDispatch   Kind = "dispatch"
	KindRedispatch Kind = "redispatch"
	KindMigration  Kind = "migration"
	KindEviction   Kind = "eviction"
	KindFinish     Kind = "finish"
	KindSample     Kind = "sample" // periodic device-state sample

	// Chaos-layer kinds: replica lifecycle, load shedding, and priority
	// preemption. KindScale's Value is +1 for a scale-up and -1 for a
	// scale-down decision; KindFailure/KindRecover carry the replica index
	// in Device.
	KindFailure Kind = "failure"
	KindRecover Kind = "recover"
	KindDrop    Kind = "drop"
	KindScale   Kind = "scale"
	KindPreempt Kind = "preempt"
)

// Event is one timestamped record.
type Event struct {
	At      float64 `json:"at"`
	Kind    Kind    `json:"kind"`
	Request int64   `json:"req,omitempty"`
	Device  int     `json:"dev,omitempty"`
	// Value carries the kind-specific payload: heads dispatched, bytes
	// migrated, cache utilization sampled, etc.
	Value float64 `json:"value,omitempty"`
	// Note is an optional free-form annotation.
	Note string `json:"note,omitempty"`
}

// pageEvents is the arena page size. 4096 events × 64 B/event keeps each
// page at 256 KB — large enough that the page-boundary branch in Add is
// one miss in four thousand, small enough that a short run wastes at most
// one page.
const pageEvents = 4096

// poolCapPages bounds the process-level free list: 1024 pages retain at
// most 256 MB, sized so one released megascale trace (~870 pages) fits and
// the next repeat of the benchmark suite allocates nothing.
const poolCapPages = 1024

// page is one fixed-size arena block. Pages chain through next both inside
// a live log and on the free list.
type page struct {
	next *page
	n    int
	ev   [pageEvents]Event
}

// poolStripes splits the process-level free list into independently locked
// stripes. One mutex was fine when only sweep workers touched the pool
// (one lock per 4096 events per run); a sharded fleet run puts 8+ arenas
// through it concurrently, and the single lock became the one line every
// shard serializes on. Each Log is pinned round-robin to a home stripe, so
// steady-state shard workloads never share a lock; getPage steals and
// Release spills across stripes, keeping the pool's total behaviour (and
// its cap) identical to the unstriped version.
const poolStripes = 8

// stripeCapPages bounds each stripe so the whole pool still retains at
// most poolCapPages pages.
const stripeCapPages = poolCapPages / poolStripes

// poolStripe is one lock's worth of free list, padded out so neighbouring
// stripes never share a cache line (the lock word would otherwise bounce
// between shard cores exactly like the single mutex it replaces).
type poolStripe struct {
	mu   sync.Mutex
	free *page
	n    int
	_    [64 - (8+8+8)%64]byte
}

var pagePool [poolStripes]poolStripe

// logStripeCounter deals home stripes to logs round-robin. Stripe choice
// is scheduling-visible but simulation-invisible: pages are zeroed on
// release, so which stripe recycled a page can never change an event.
var logStripeCounter atomic.Uint32

// pop takes one page off the stripe (nil when empty).
func (st *poolStripe) pop() *page {
	st.mu.Lock()
	p := st.free
	if p != nil {
		st.free = p.next
		st.n--
	}
	st.mu.Unlock()
	if p != nil {
		p.next = nil
	}
	return p
}

// push prepends pages from the chain until the stripe is full, returning
// the rest of the chain.
func (st *poolStripe) push(p *page) *page {
	st.mu.Lock()
	for p != nil && st.n < stripeCapPages {
		next := p.next
		p.next = st.free
		st.free = p
		st.n++
		p = next
	}
	st.mu.Unlock()
	return p
}

// getPage pops a page from the home stripe, steals from the others when it
// is empty, and allocates fresh only when the whole pool is dry.
func getPage(home int) *page {
	for i := 0; i < poolStripes; i++ {
		if p := pagePool[(home+i)%poolStripes].pop(); p != nil {
			return p
		}
	}
	return new(page)
}

// ResetPagePool drops every pooled page so the garbage collector can
// reclaim them. Memory measurements call it to keep retained pool pages
// out of live-heap baselines; ordinary code never needs it.
func ResetPagePool() {
	for i := range pagePool {
		st := &pagePool[i]
		st.mu.Lock()
		st.free = nil
		st.n = 0
		st.mu.Unlock()
	}
}

// pagePoolLen reports the pooled page count across stripes (test hook).
func pagePoolLen() int {
	n := 0
	for i := range pagePool {
		st := &pagePool[i]
		st.mu.Lock()
		n += st.n
		st.mu.Unlock()
	}
	return n
}

// Log accumulates events in memory. The zero value is ready to use. A nil
// *Log discards everything, so engines can trace unconditionally.
type Log struct {
	head *page
	tail *page
	n    int
	// stripe is the log's home pool stripe plus one (0 = not yet assigned,
	// so the zero value stays ready to use). Assigned at first grow and
	// kept across Release so a reused log stays on its stripe.
	stripe uint32
}

// homeStripe resolves (lazily assigning) the log's pool stripe.
func (l *Log) homeStripe() int {
	if l.stripe == 0 {
		l.stripe = logStripeCounter.Add(1)%poolStripes + 1
	}
	return int(l.stripe - 1)
}

// grow links a fresh (or recycled) page at the tail.
func (l *Log) grow() *page {
	p := getPage(l.homeStripe())
	if l.tail == nil {
		l.head = p
	} else {
		l.tail.next = p
	}
	l.tail = p
	return p
}

// Add appends an event. Safe on a nil receiver (no-op).
func (l *Log) Add(ev Event) {
	if l == nil {
		return
	}
	p := l.tail
	if p == nil || p.n == pageEvents {
		p = l.grow()
	}
	p.ev[p.n] = ev
	p.n++
	l.n++
}

// Addf is a convenience constructor-and-append. A format string with no
// args is stored verbatim — the hot-path contract: engines pass static
// notes and pay nothing for formatting.
func (l *Log) Addf(at float64, kind Kind, req int64, dev int, value float64, format string, args ...any) {
	if l == nil {
		return
	}
	note := format
	if len(args) > 0 {
		note = fmt.Sprintf(format, args...)
	}
	l.Add(Event{At: at, Kind: kind, Request: req, Device: dev, Value: value, Note: note})
}

// Release zeroes the log's events, returns its pages to the process free
// list (up to the pool cap), and resets the log to empty. Views previously
// returned by Events or Filter are copies and stay valid; the zeroing
// guarantees a recycled page can never leak a prior run's notes and keeps
// pooled pages from pinning dead strings. Nil-safe.
func (l *Log) Release() {
	if l == nil || l.head == nil {
		return
	}
	head := l.head
	for p := head; p != nil; p = p.next {
		clear(p.ev[:p.n])
		p.n = 0
	}
	home := l.homeStripe()
	l.head, l.tail, l.n = nil, nil, 0
	// Fill the home stripe first, spill the rest round-robin; whatever the
	// whole pool cannot hold is left for the GC.
	p := head
	for i := 0; i < poolStripes && p != nil; i++ {
		p = pagePool[(home+i)%poolStripes].push(p)
	}
}

// Each calls fn for every event in emission order, stopping early when fn
// returns false — iteration without materializing the stitched copy
// Events builds. Nil-safe.
func (l *Log) Each(fn func(Event) bool) {
	if l == nil {
		return
	}
	for p := l.head; p != nil; p = p.next {
		for i := range p.ev[:p.n] {
			if !fn(p.ev[i]) {
				return
			}
		}
	}
}

// Events returns the recorded events in emission order as one stitched
// slice. The slice is a copy: it stays valid after the log is released and
// its pages recycled. Nil-safe.
func (l *Log) Events() []Event {
	if l == nil || l.n == 0 {
		return nil
	}
	out := make([]Event, 0, l.n)
	for p := l.head; p != nil; p = p.next {
		out = append(out, p.ev[:p.n]...)
	}
	return out
}

// Len reports the event count. Nil-safe.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return l.n
}

// Filter returns the events matching the kind, preserving order.
func (l *Log) Filter(kind Kind) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for p := l.head; p != nil; p = p.next {
		for i := range p.ev[:p.n] {
			if p.ev[i].Kind == kind {
				out = append(out, p.ev[i])
			}
		}
	}
	return out
}

// Count returns the number of events of a kind.
func (l *Log) Count(kind Kind) int {
	if l == nil {
		return 0
	}
	n := 0
	for p := l.head; p != nil; p = p.next {
		for i := range p.ev[:p.n] {
			if p.ev[i].Kind == kind {
				n++
			}
		}
	}
	return n
}

// WriteJSONL streams the log as one JSON object per line through a single
// buffered encoder.
func (l *Log) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	for p := l.head; p != nil; p = p.next {
		for i := range p.ev[:p.n] {
			if err := enc.Encode(&p.ev[i]); err != nil {
				return fmt.Errorf("trace: encode: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// ReadJSONL parses a JSONL stream back into a log.
func ReadJSONL(r io.Reader) (*Log, error) {
	dec := json.NewDecoder(r)
	l := &Log{}
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return l, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode: %w", err)
		}
		l.Add(ev)
	}
}

// KindCounts tallies events per kind.
func (l *Log) KindCounts() map[Kind]int {
	if l == nil {
		return nil
	}
	out := make(map[Kind]int)
	for p := l.head; p != nil; p = p.next {
		for i := range p.ev[:p.n] {
			out[p.ev[i].Kind]++
		}
	}
	return out
}

// Span returns the first and last event timestamps (0, 0 when empty).
func (l *Log) Span() (first, last float64) {
	if l == nil || l.n == 0 {
		return 0, 0
	}
	first = l.head.ev[0].At
	last = first
	for p := l.head; p != nil; p = p.next {
		for i := range p.ev[:p.n] {
			at := p.ev[i].At
			if at < first {
				first = at
			}
			if at > last {
				last = at
			}
		}
	}
	return first, last
}

// SumValues adds up the Value field across events of one kind (e.g. total
// migrated bytes for KindMigration).
func (l *Log) SumValues(kind Kind) float64 {
	if l == nil {
		return 0
	}
	var sum float64
	for p := l.head; p != nil; p = p.next {
		for i := range p.ev[:p.n] {
			if p.ev[i].Kind == kind {
				sum += p.ev[i].Value
			}
		}
	}
	return sum
}
