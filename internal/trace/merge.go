// Ordered trace merging for sharded runs: each shard's log is emitted by
// one sequential event loop and is therefore At-nondecreasing, so the
// fleet's whole-run trace is a k-way merge of sorted streams.

package trace

// MergeByTime merges logs into one new log ordered by event time, breaking
// ties by input position (earlier log wins) so the merged order is a pure
// function of the inputs — never of shard completion order or worker
// count. Inputs must be At-nondecreasing, which every engine-emitted log
// is; nil or empty logs are skipped. The inputs are not consumed: callers
// still own (and should still Release) them.
func MergeByTime(logs ...*Log) *Log {
	out := &Log{}
	type cursor struct {
		p   *page
		i   int
		src int
	}
	heads := make([]cursor, 0, len(logs))
	for src, l := range logs {
		if l == nil || l.head == nil {
			continue
		}
		heads = append(heads, cursor{p: l.head, src: src})
	}
	for len(heads) > 0 {
		best := 0
		for c := 1; c < len(heads); c++ {
			// Strict < keeps ties on the earlier source: heads is ordered by
			// src, and an exhausted cursor is removed without reordering.
			if heads[c].p.ev[heads[c].i].At < heads[best].p.ev[heads[best].i].At {
				best = c
			}
		}
		cur := &heads[best]
		out.Add(cur.p.ev[cur.i])
		cur.i++
		if cur.i == cur.p.n {
			cur.p = cur.p.next
			cur.i = 0
			if cur.p == nil {
				heads = append(heads[:best], heads[best+1:]...)
			}
		}
	}
	return out
}
