// Arrival processes beyond steady Poisson: bursty (MMPP), diurnal,
// flash-crowd, and closed-loop traffic, plus multi-tenant workload mixing.
// Each process generates sorted arrival times; Assemble turns times into
// Requests by sampling a weighted tenant mix. Everything is seeded and
// deterministic: the same (parameters, seed) always yield the same trace.

package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// PoissonTimes generates homogeneous Poisson arrival times at `rate`
// requests/second over [0, duration).
func PoissonTimes(rate, duration float64, rng *rand.Rand) []float64 {
	if rate <= 0 || duration <= 0 {
		return nil
	}
	var times []float64
	t := rng.ExpFloat64() / rate
	for t < duration {
		times = append(times, t)
		t += rng.ExpFloat64() / rate
	}
	return times
}

// MMPPState is one phase of a cyclic Markov-modulated Poisson process:
// arrivals come at Rate while the process dwells in the state for an
// exponentially distributed time with mean MeanDwell seconds.
type MMPPState struct {
	Rate      float64 // requests/second while in this state
	MeanDwell float64 // mean sojourn time, seconds
}

// MMPPTimes generates arrival times of a cyclic MMPP over [0, duration):
// the process cycles through the states in order, staying Exp(MeanDwell)
// in each. With two states (high/low rate) this is the classic
// interrupted-Poisson bursty source.
func MMPPTimes(states []MMPPState, duration float64, rng *rand.Rand) []float64 {
	if len(states) == 0 || duration <= 0 {
		return nil
	}
	// Zero-dwell states are skipped, so at least one must be inhabitable
	// or the cycle would never advance time.
	inhabitable := false
	for _, st := range states {
		if st.MeanDwell > 0 {
			inhabitable = true
		}
	}
	if !inhabitable {
		return nil
	}
	var times []float64
	now := 0.0
	for i := 0; now < duration; i = (i + 1) % len(states) {
		st := states[i]
		dwell := st.MeanDwell
		if dwell <= 0 {
			continue
		}
		end := now + rng.ExpFloat64()*dwell
		if end > duration {
			end = duration
		}
		if st.Rate > 0 {
			t := now + rng.ExpFloat64()/st.Rate
			for t < end {
				times = append(times, t)
				t += rng.ExpFloat64() / st.Rate
			}
		}
		now = end
	}
	return times
}

// DiurnalTimes generates an inhomogeneous Poisson process with sinusoidal
// rate λ(t) = base·(1 + amplitude·sin(2πt/period)) via thinning.
// amplitude is clamped to [0, 1] so the rate never goes negative; period
// is the full day-night cycle in simulated seconds.
func DiurnalTimes(base, amplitude, period, duration float64, rng *rand.Rand) []float64 {
	if base <= 0 || period <= 0 || duration <= 0 {
		return nil
	}
	if amplitude < 0 {
		amplitude = 0
	}
	if amplitude > 1 {
		amplitude = 1
	}
	rate := func(t float64) float64 {
		return base * (1 + amplitude*math.Sin(2*math.Pi*t/period))
	}
	return thinned(rate, base*(1+amplitude), duration, rng)
}

// FlashCrowdTimes generates Poisson arrivals at base req/s with a sudden
// spike: during [spikeAt, spikeAt+spikeDur) the rate jumps to base·factor
// (a breaking-news or retry-storm surge), then returns to base.
func FlashCrowdTimes(base, spikeAt, spikeDur, factor, duration float64, rng *rand.Rand) []float64 {
	if base <= 0 || duration <= 0 {
		return nil
	}
	if factor < 0 {
		factor = 0
	}
	rate := func(t float64) float64 {
		if t >= spikeAt && t < spikeAt+spikeDur {
			return base * factor
		}
		return base
	}
	return thinned(rate, base*math.Max(1, factor), duration, rng)
}

// thinned samples an inhomogeneous Poisson process with instantaneous rate
// rate(t) ≤ maxRate by Lewis-Shedler thinning.
func thinned(rate func(float64) float64, maxRate, duration float64, rng *rand.Rand) []float64 {
	if maxRate <= 0 {
		return nil
	}
	var times []float64
	t := 0.0
	for {
		t += rng.ExpFloat64() / maxRate
		if t >= duration {
			return times
		}
		if rng.Float64()*maxRate <= rate(t) {
			times = append(times, t)
		}
	}
}

// ClosedLoopTimes models a closed-loop population: `users` concurrent
// sessions, each issuing its next request an Exp(think)-distributed pause
// after the previous one (the request-response-think cycle of a replayed
// session log, with service time folded into the think time). The merged
// stream is sorted ascending.
func ClosedLoopTimes(users int, think, duration float64, rng *rand.Rand) []float64 {
	if users <= 0 || think <= 0 || duration <= 0 {
		return nil
	}
	var times []float64
	for u := 0; u < users; u++ {
		t := rng.ExpFloat64() * think
		for t < duration {
			times = append(times, t)
			t += rng.ExpFloat64() * think
		}
	}
	sort.Float64s(times)
	return times
}

// MixEntry is one tenant of a multi-tenant workload mix: a share of the
// arrival stream drawing lengths from the tenant's dataset.
type MixEntry struct {
	Tenant  string
	Dataset LengthDist
	Weight  float64 // relative share of arrivals; entries with Weight <= 0 are ignored
}

// Assemble turns sorted arrival times into a trace by sampling the weighted
// tenant mix independently per arrival: tenant first, then (prompt, output)
// from that tenant's dataset. An empty (or fully zero-weight) mix defaults
// to single-tenant ShareGPT. IDs are assigned in arrival order.
func Assemble(times []float64, mix []MixEntry, seed int64) []Request {
	return assemble(times, mix, rand.New(rand.NewSource(seed)))
}

func assemble(times []float64, mix []MixEntry, rng *rand.Rand) []Request {
	var total float64
	for _, e := range mix {
		if e.Weight > 0 {
			total += e.Weight
		}
	}
	if total == 0 {
		mix = []MixEntry{{Dataset: ShareGPT, Weight: 1}}
		total = 1
	}
	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	reqs := make([]Request, 0, len(sorted))
	for i, t := range sorted {
		pick := rng.Float64() * total
		var e MixEntry
		for _, cand := range mix {
			if cand.Weight <= 0 {
				continue
			}
			e = cand
			if pick < cand.Weight {
				break
			}
			pick -= cand.Weight
		}
		p, o := e.Dataset.Sample(rng)
		reqs = append(reqs, Request{
			ID: int64(i), ArrivalAt: t, PromptLen: p, OutputLen: o, Tenant: e.Tenant,
		})
	}
	return reqs
}

// MMPP generates a single-tenant bursty trace: a cyclic MMPP through the
// states with lengths from dist.
func MMPP(dist LengthDist, states []MMPPState, duration float64, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	return assemble(MMPPTimes(states, duration, rng), []MixEntry{{Dataset: dist, Weight: 1}}, rng)
}

// Diurnal generates a single-tenant trace with sinusoidal arrival rate.
func Diurnal(dist LengthDist, base, amplitude, period, duration float64, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	return assemble(DiurnalTimes(base, amplitude, period, duration, rng), []MixEntry{{Dataset: dist, Weight: 1}}, rng)
}

// FlashCrowd generates a single-tenant trace with a rate spike.
func FlashCrowd(dist LengthDist, base, spikeAt, spikeDur, factor, duration float64, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	return assemble(FlashCrowdTimes(base, spikeAt, spikeDur, factor, duration, rng), []MixEntry{{Dataset: dist, Weight: 1}}, rng)
}

// ClosedLoop generates a single-tenant closed-loop trace.
func ClosedLoop(dist LengthDist, users int, think, duration float64, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	return assemble(ClosedLoopTimes(users, think, duration, rng), []MixEntry{{Dataset: dist, Weight: 1}}, rng)
}

// ValidateMix reports whether the mix is usable: at least one positive-weight
// entry, every positive-weight entry with a named, non-empty dataset.
func ValidateMix(mix []MixEntry) error {
	any := false
	for i, e := range mix {
		if e.Weight <= 0 {
			continue
		}
		any = true
		if e.Dataset.Name == "" {
			return fmt.Errorf("workload: mix entry %d (%q) has no dataset", i, e.Tenant)
		}
	}
	if len(mix) > 0 && !any {
		return fmt.Errorf("workload: mix has no positive-weight entry")
	}
	return nil
}
