package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"ShareGPT", "sharegpt", "SG", "HumanEval", "HE", "LongBench", "lb"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("wikitext"); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestSampleRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []LengthDist{ShareGPT, HumanEval, LongBench} {
		for i := 0; i < 5000; i++ {
			p, o := d.Sample(rng)
			if p < d.PromptMin || p > d.PromptMax {
				t.Fatalf("%s: prompt %d outside [%d,%d]", d.Name, p, d.PromptMin, d.PromptMax)
			}
			if o < d.OutputMin || o > d.OutputMax {
				t.Fatalf("%s: output %d outside [%d,%d]", d.Name, o, d.OutputMin, d.OutputMax)
			}
		}
	}
}

func TestDatasetCharacter(t *testing.T) {
	// The three datasets must keep their published relative character:
	// LongBench prompts >> ShareGPT prompts >> HumanEval prompts, and
	// ShareGPT outputs the longest.
	reqs := func(d LengthDist) Stats { return Summarize(FixedBatch(d, 4000, 7)) }
	sg, he, lb := reqs(ShareGPT), reqs(HumanEval), reqs(LongBench)

	if !(lb.MeanPrompt > 3*sg.MeanPrompt) {
		t.Errorf("LongBench prompts (%.0f) should dwarf ShareGPT's (%.0f)", lb.MeanPrompt, sg.MeanPrompt)
	}
	if !(sg.MeanPrompt > 1.5*he.MeanPrompt) {
		t.Errorf("ShareGPT prompts (%.0f) should exceed HumanEval's (%.0f)", sg.MeanPrompt, he.MeanPrompt)
	}
	if !(sg.MeanOutput > he.MeanOutput) {
		t.Errorf("ShareGPT outputs (%.0f) should exceed HumanEval's (%.0f)", sg.MeanOutput, he.MeanOutput)
	}
	// LongBench average context matches the paper's served range (~1-3k
	// after truncation to the context window).
	if lb.MeanPrompt < 1200 || lb.MeanPrompt > 3500 {
		t.Errorf("LongBench mean prompt %.0f outside [1200,3500]", lb.MeanPrompt)
	}
}

func TestPoissonRate(t *testing.T) {
	reqs := Poisson(ShareGPT, 10, 300, 42)
	got := float64(len(reqs)) / 300
	if math.Abs(got-10)/10 > 0.1 {
		t.Errorf("empirical rate %.2f deviates >10%% from 10", got)
	}
	// Arrivals sorted and within [0, duration).
	for i, r := range reqs {
		if r.ArrivalAt < 0 || r.ArrivalAt >= 300 {
			t.Fatalf("arrival %g out of range", r.ArrivalAt)
		}
		if i > 0 && reqs[i].ArrivalAt < reqs[i-1].ArrivalAt {
			t.Fatal("arrivals not sorted")
		}
		if r.ID != int64(i) {
			t.Fatalf("IDs not sequential: %d at %d", r.ID, i)
		}
	}
}

func TestPoissonDeterminism(t *testing.T) {
	a := Poisson(HumanEval, 5, 100, 9)
	b := Poisson(HumanEval, 5, 100, 9)
	if len(a) != len(b) {
		t.Fatal("same seed produced different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
	c := Poisson(HumanEval, 5, 100, 10)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	if r := Poisson(ShareGPT, 0, 100, 1); r != nil {
		t.Error("zero rate should produce nil")
	}
	if r := Poisson(ShareGPT, 5, 0, 1); r != nil {
		t.Error("zero duration should produce nil")
	}
}

func TestPiecewiseRate(t *testing.T) {
	segs := []RateSegment{
		{Rate: 5, Duration: 25},
		{Rate: 0, Duration: 25},
		{Rate: 2.5, Duration: 25},
		{Rate: 0, Duration: 25},
	}
	reqs := PiecewiseRate(ShareGPT, segs, 3)
	// No arrivals during silent windows.
	for _, r := range reqs {
		in1 := r.ArrivalAt < 25
		in3 := r.ArrivalAt >= 50 && r.ArrivalAt < 75
		if !in1 && !in3 {
			t.Fatalf("arrival %.2f falls in a silent window", r.ArrivalAt)
		}
	}
	// Roughly 5*25=125 arrivals in phase 1 and 2.5*25=62 in phase 3.
	var n1, n3 int
	for _, r := range reqs {
		if r.ArrivalAt < 25 {
			n1++
		} else {
			n3++
		}
	}
	if math.Abs(float64(n1)-125) > 40 || math.Abs(float64(n3)-62.5) > 30 {
		t.Errorf("phase counts %d/%d far from expectation 125/62", n1, n3)
	}
}

func TestFixedBatch(t *testing.T) {
	reqs := FixedBatch(LongBench, 25, 11)
	if len(reqs) != 25 {
		t.Fatalf("len=%d want 25", len(reqs))
	}
	for _, r := range reqs {
		if r.ArrivalAt != 0 {
			t.Fatal("fixed batch must arrive at t=0")
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.TotalTokens != 0 {
		t.Fatalf("empty summary should be zero: %+v", s)
	}
}

func TestSummarize(t *testing.T) {
	reqs := []Request{
		{PromptLen: 10, OutputLen: 2},
		{PromptLen: 30, OutputLen: 6},
		{PromptLen: 20, OutputLen: 4},
	}
	s := Summarize(reqs)
	if s.MeanPrompt != 20 || s.MeanOutput != 4 {
		t.Fatalf("means wrong: %+v", s)
	}
	if s.MedianPrompt != 20 || s.MaxPrompt != 30 || s.MaxOutput != 6 {
		t.Fatalf("order stats wrong: %+v", s)
	}
	if s.TotalTokens != 72 {
		t.Fatalf("TotalTokens=%d want 72", s.TotalTokens)
	}
}

func TestPropertyMedianNearConfigured(t *testing.T) {
	// Sampled medians should track the configured medians (log-normal has
	// median = the median parameter, modulo clamping).
	f := func(seed int64) bool {
		reqs := FixedBatch(ShareGPT, 2000, seed)
		s := Summarize(reqs)
		return math.Abs(float64(s.MedianPrompt)-ShareGPT.PromptMedian)/ShareGPT.PromptMedian < 0.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalLen(t *testing.T) {
	r := Request{PromptLen: 100, OutputLen: 20}
	if r.TotalLen() != 120 {
		t.Fatalf("TotalLen=%d want 120", r.TotalLen())
	}
}

func TestTruncate(t *testing.T) {
	reqs := []Request{
		{PromptLen: 100, OutputLen: 50},
		{PromptLen: 5000, OutputLen: 500},
		{PromptLen: 2000, OutputLen: 100},
	}
	got := Truncate(reqs, 2048)
	if got[0] != reqs[0] {
		t.Errorf("short request should be untouched: %+v", got[0])
	}
	if got[1].PromptLen != 2047 || got[1].OutputLen != 1 {
		t.Errorf("long prompt not clamped: %+v", got[1])
	}
	if got[2].PromptLen != 2000 || got[2].OutputLen != 48 {
		t.Errorf("overflowing output not clamped: %+v", got[2])
	}
	// Input untouched.
	if reqs[1].PromptLen != 5000 {
		t.Error("Truncate mutated its input")
	}
	// maxSeq <= 0 passes through.
	if &Truncate(reqs, 0)[0] != &reqs[0] {
		t.Error("maxSeq=0 should return the input slice")
	}
	for _, r := range got {
		if r.TotalLen() > 2048 {
			t.Errorf("request exceeds window after truncation: %+v", r)
		}
	}
}

func TestByNameCaseInsensitive(t *testing.T) {
	// ByName folds case via strings.EqualFold: every casing of a preset
	// name resolves to the same dataset.
	cases := map[string]string{
		"sharegpt": "ShareGPT", "SHAREGPT": "ShareGPT", "ShArEgPt": "ShareGPT",
		"humaneval": "HumanEval", "HUMANEVAL": "HumanEval",
		"longbench": "LongBench", "LoNgBeNcH": "LongBench",
	}
	for in, want := range cases {
		d, err := ByName(in)
		if err != nil {
			t.Errorf("ByName(%q): %v", in, err)
			continue
		}
		if d.Name != want {
			t.Errorf("ByName(%q) = %s, want %s", in, d.Name, want)
		}
	}
	if _, err := ByName("sharegpt2"); err == nil {
		t.Error("near-miss name should not resolve")
	}
}
