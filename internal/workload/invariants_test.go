package workload

import (
	"math"
	"testing"
)

// generators enumerates every arrival-process generator under one
// normalized signature so the invariant checks cover them uniformly.
var generators = []struct {
	name string
	gen  func(rate, duration float64, seed int64) []Request
}{
	{"poisson", func(rate, duration float64, seed int64) []Request {
		return Poisson(ShareGPT, rate, duration, seed)
	}},
	{"piecewise", func(rate, duration float64, seed int64) []Request {
		return PiecewiseRate(HumanEval, []RateSegment{
			{Rate: rate, Duration: duration / 3},
			{Rate: 0, Duration: duration / 3},
			{Rate: rate / 2, Duration: duration / 3},
		}, seed)
	}},
	{"mmpp", func(rate, duration float64, seed int64) []Request {
		return MMPP(ShareGPT, []MMPPState{
			{Rate: rate * 2, MeanDwell: duration / 8},
			{Rate: rate / 4, MeanDwell: duration / 4},
		}, duration, seed)
	}},
	{"diurnal", func(rate, duration float64, seed int64) []Request {
		return Diurnal(LongBench, rate, 0.8, duration, duration, seed)
	}},
	{"flashcrowd", func(rate, duration float64, seed int64) []Request {
		return FlashCrowd(ShareGPT, rate, duration/3, duration/6, 5, duration, seed)
	}},
	{"closedloop", func(rate, duration float64, seed int64) []Request {
		users := int(rate * 4)
		if users < 1 {
			users = 1
		}
		return ClosedLoop(HumanEval, users, 4, duration, seed)
	}},
}

// checkTraceInvariants asserts the contract every generator must keep:
// arrivals sorted within [0, duration), IDs sequential from 0, lengths
// positive, and byte-for-byte determinism across regenerations.
func checkTraceInvariants(t *testing.T, name string, gen func() []Request, duration float64) {
	t.Helper()
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("%s: regeneration changed length: %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: request %d differs across identical generations: %+v vs %+v", name, i, a[i], b[i])
		}
		if a[i].ArrivalAt < 0 || a[i].ArrivalAt >= duration {
			t.Fatalf("%s: arrival %g outside [0,%g)", name, a[i].ArrivalAt, duration)
		}
		if i > 0 && a[i].ArrivalAt < a[i-1].ArrivalAt {
			t.Fatalf("%s: arrivals not sorted at %d (%g < %g)", name, i, a[i].ArrivalAt, a[i-1].ArrivalAt)
		}
		if a[i].ID != int64(i) {
			t.Fatalf("%s: ID %d at index %d", name, a[i].ID, i)
		}
		if a[i].PromptLen <= 0 || a[i].OutputLen <= 0 {
			t.Fatalf("%s: nonpositive lengths %+v", name, a[i])
		}
	}
}

// FuzzGeneratorInvariants drives every arrival generator with arbitrary
// (rate, duration, seed) and asserts the trace contract. The corpus seeds
// double as the regression set under plain `go test`.
func FuzzGeneratorInvariants(f *testing.F) {
	f.Add(5.0, 30.0, int64(1))
	f.Add(0.3, 120.0, int64(42))
	f.Add(25.0, 10.0, int64(-7))
	f.Add(1.0, 1.0, int64(0))
	f.Add(100.0, 2.0, int64(1<<40))
	f.Fuzz(func(t *testing.T, rate, duration float64, seed int64) {
		if math.IsNaN(rate) || math.IsInf(rate, 0) || math.IsNaN(duration) || math.IsInf(duration, 0) {
			t.Skip()
		}
		// Clamp to a sane sampling envelope: the invariants must hold for
		// ANY parameters in range, the clamp only bounds fuzz runtime.
		if rate <= 0 || rate > 200 || duration <= 0 || duration > 200 || rate*duration > 20000 {
			t.Skip()
		}
		for _, g := range generators {
			g := g
			checkTraceInvariants(t, g.name, func() []Request { return g.gen(rate, duration, seed) }, duration)
		}
	})
}

// TestSeedIndependence: different seeds must (overwhelmingly) give
// different traces — seeds flow through, not get ignored.
func TestSeedIndependence(t *testing.T) {
	for _, g := range generators {
		a := g.gen(5, 60, 1)
		b := g.gen(5, 60, 2)
		if len(a) == 0 || len(b) == 0 {
			t.Fatalf("%s: empty trace", g.name)
		}
		same := len(a) == len(b)
		if same {
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 2 produced identical traces", g.name)
		}
	}
}
