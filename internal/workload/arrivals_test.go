package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestMMPPBurstiness(t *testing.T) {
	// A strongly bimodal MMPP must be overdispersed relative to Poisson:
	// the variance of per-second arrival counts well above the mean.
	states := []MMPPState{{Rate: 20, MeanDwell: 4}, {Rate: 1, MeanDwell: 8}}
	rng := rand.New(rand.NewSource(3))
	times := MMPPTimes(states, 600, rng)
	if len(times) == 0 {
		t.Fatal("no arrivals")
	}
	counts := make([]float64, 600)
	for _, at := range times {
		counts[int(at)]++
	}
	var mean, varr float64
	for _, c := range counts {
		mean += c
	}
	mean /= float64(len(counts))
	for _, c := range counts {
		varr += (c - mean) * (c - mean)
	}
	varr /= float64(len(counts))
	if varr < 2*mean {
		t.Errorf("MMPP index of dispersion %.2f, want >= 2 (variance %.2f, mean %.2f)", varr/mean, varr, mean)
	}
	// Long-run rate near the dwell-weighted mean (20*4+1*8)/12 ≈ 7.3.
	rate := float64(len(times)) / 600
	if rate < 4 || rate > 11 {
		t.Errorf("MMPP empirical rate %.2f far from dwell-weighted mean 7.3", rate)
	}
}

func TestDiurnalFollowsSinusoid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const base, amp, period = 10.0, 0.9, 200.0
	times := DiurnalTimes(base, amp, period, period, rng)
	// First half-period (sin >= 0) must clearly out-arrive the second.
	firstHalf := 0
	for _, at := range times {
		if at < period/2 {
			firstHalf++
		}
	}
	secondHalf := len(times) - firstHalf
	if firstHalf <= secondHalf*2 {
		t.Errorf("diurnal peak half has %d arrivals vs %d in the trough half; want > 2x", firstHalf, secondHalf)
	}
	// Overall rate stays near base (the sinusoid integrates to zero).
	rate := float64(len(times)) / period
	if math.Abs(rate-base)/base > 0.15 {
		t.Errorf("diurnal mean rate %.2f deviates >15%% from base %g", rate, base)
	}
}

func TestFlashCrowdSpike(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const base, spikeAt, spikeDur, factor, dur = 2.0, 100.0, 20.0, 8.0, 300.0
	times := FlashCrowdTimes(base, spikeAt, spikeDur, factor, dur, rng)
	in, out := 0, 0
	for _, at := range times {
		if at >= spikeAt && at < spikeAt+spikeDur {
			in++
		} else {
			out++
		}
	}
	inRate := float64(in) / spikeDur
	outRate := float64(out) / (dur - spikeDur)
	if inRate < 4*outRate {
		t.Errorf("spike rate %.2f vs baseline %.2f; want >= 4x", inRate, outRate)
	}
}

func TestClosedLoopScalesWithUsers(t *testing.T) {
	rate := func(users int) float64 {
		rng := rand.New(rand.NewSource(11))
		return float64(len(ClosedLoopTimes(users, 5, 400, rng))) / 400
	}
	r16, r64 := rate(16), rate(64)
	// Offered rate ≈ users/think and grows with the population.
	if math.Abs(r16-16.0/5)/(16.0/5) > 0.2 {
		t.Errorf("closed-loop rate %.2f for 16 users, want ≈ %.2f", r16, 16.0/5)
	}
	if r64 < 3*r16 {
		t.Errorf("64 users rate %.2f not ≈ 4x the 16-user rate %.2f", r64, r16)
	}
}

func TestAssembleMixesTenants(t *testing.T) {
	times := make([]float64, 6000)
	for i := range times {
		times[i] = float64(i) * 0.01
	}
	mix := []MixEntry{
		{Tenant: "chat", Dataset: ShareGPT, Weight: 3},
		{Tenant: "code", Dataset: HumanEval, Weight: 1},
		{Tenant: "off", Dataset: LongBench, Weight: 0}, // ignored
	}
	reqs := Assemble(times, mix, 1)
	if len(reqs) != len(times) {
		t.Fatalf("Assemble dropped requests: %d of %d", len(reqs), len(times))
	}
	counts := map[string]int{}
	for i, r := range reqs {
		counts[r.Tenant]++
		if r.ID != int64(i) {
			t.Fatalf("IDs not sequential at %d", i)
		}
		if i > 0 && r.ArrivalAt < reqs[i-1].ArrivalAt {
			t.Fatal("arrivals not sorted")
		}
	}
	if counts["off"] != 0 {
		t.Errorf("zero-weight tenant received %d requests", counts["off"])
	}
	share := float64(counts["chat"]) / float64(len(reqs))
	if share < 0.65 || share > 0.85 {
		t.Errorf("chat share %.2f, want ≈ 0.75", share)
	}
	// Per-tenant length character: code prompts must be shorter on average.
	var chatSum, codeSum, chatN, codeN float64
	for _, r := range reqs {
		if r.Tenant == "chat" {
			chatSum += float64(r.PromptLen)
			chatN++
		} else {
			codeSum += float64(r.PromptLen)
			codeN++
		}
	}
	if chatSum/chatN < codeSum/codeN {
		t.Errorf("ShareGPT tenant mean prompt %.0f not above HumanEval tenant's %.0f", chatSum/chatN, codeSum/codeN)
	}
}

func TestAssembleDefaultsToShareGPT(t *testing.T) {
	reqs := Assemble([]float64{0, 1, 2}, nil, 1)
	if len(reqs) != 3 {
		t.Fatalf("got %d requests", len(reqs))
	}
	for _, r := range reqs {
		if r.Tenant != "" {
			t.Errorf("default mix should be tenantless, got %q", r.Tenant)
		}
	}
}

func TestValidateMix(t *testing.T) {
	if err := ValidateMix(nil); err != nil {
		t.Errorf("empty mix should validate: %v", err)
	}
	if err := ValidateMix([]MixEntry{{Tenant: "a", Dataset: ShareGPT, Weight: 1}}); err != nil {
		t.Errorf("good mix should validate: %v", err)
	}
	if err := ValidateMix([]MixEntry{{Tenant: "a", Weight: 1}}); err == nil {
		t.Error("positive-weight entry without dataset should fail")
	}
	if err := ValidateMix([]MixEntry{{Tenant: "a", Dataset: ShareGPT, Weight: 0}}); err == nil {
		t.Error("all-zero-weight mix should fail")
	}
}

func TestPoissonTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	times := PoissonTimes(10, 200, rng)
	rate := float64(len(times)) / 200
	if math.Abs(rate-10)/10 > 0.1 {
		t.Errorf("empirical rate %.2f deviates >10%% from 10", rate)
	}
	for i, at := range times {
		if at < 0 || at >= 200 {
			t.Fatalf("time %g out of range", at)
		}
		if i > 0 && at < times[i-1] {
			t.Fatal("times not sorted")
		}
	}
}

func TestDegenerateParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := PoissonTimes(0, 10, rng); got != nil {
		t.Errorf("PoissonTimes(rate=0) = %v, want nil", got)
	}
	if got := PoissonTimes(5, 0, rng); got != nil {
		t.Errorf("PoissonTimes(duration=0) = %v, want nil", got)
	}
	if got := MMPPTimes(nil, 10, rng); got != nil {
		t.Errorf("MMPPTimes(no states) = %v, want nil", got)
	}
	if got := MMPPTimes([]MMPPState{{Rate: 5, MeanDwell: 0}}, 10, rng); got != nil {
		t.Errorf("MMPPTimes(zero dwell) = %v, want nil (state skipped forever is unreachable; zero-dwell states are skipped)", got)
	}
	if got := DiurnalTimes(0, 0.5, 10, 10, rng); got != nil {
		t.Errorf("DiurnalTimes(base=0) = %v, want nil", got)
	}
	if got := DiurnalTimes(5, 0.5, 0, 10, rng); got != nil {
		t.Errorf("DiurnalTimes(period=0) = %v, want nil", got)
	}
	if got := FlashCrowdTimes(0, 1, 1, 2, 10, rng); got != nil {
		t.Errorf("FlashCrowdTimes(base=0) = %v, want nil", got)
	}
	if got := ClosedLoopTimes(0, 5, 10, rng); got != nil {
		t.Errorf("ClosedLoopTimes(users=0) = %v, want nil", got)
	}
	if got := ClosedLoopTimes(4, 0, 10, rng); got != nil {
		t.Errorf("ClosedLoopTimes(think=0) = %v, want nil", got)
	}
	// Amplitude and factor are clamped, not rejected.
	if got := DiurnalTimes(5, 7, 10, 10, rng); len(got) == 0 {
		t.Error("DiurnalTimes with amplitude > 1 should clamp and generate")
	}
	if got := DiurnalTimes(5, -1, 10, 10, rng); len(got) == 0 {
		t.Error("DiurnalTimes with negative amplitude should clamp and generate")
	}
	if got := FlashCrowdTimes(5, 2, 2, -3, 10, rng); len(got) == 0 {
		t.Error("FlashCrowdTimes with negative factor should clamp the spike to silence, not fail")
	}
}
