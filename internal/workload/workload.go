// Package workload generates synthetic serving traces that stand in for the
// paper's three datasets. The real datasets cannot ship with an offline
// stdlib-only build, so each generator reproduces the published length
// statistics instead:
//
//   - ShareGPT (chatbot): medium prompts with a heavy tail, long answers.
//   - HumanEval (code completion): short prompts, short completions.
//   - LongBench (summarization): very long documents, short summaries.
//
// The scheduler under test is sensitive to the length distributions and the
// arrival process only, both of which these generators control, so the
// substitution preserves the behaviour the experiments measure. All
// sampling is seeded and deterministic.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Request is one inference request in a trace.
type Request struct {
	ID        int64
	ArrivalAt float64 // seconds since trace start
	PromptLen int     // tokens in the prompt
	OutputLen int     // tokens to generate (decode steps)
	// Tenant names the traffic class the request belongs to in a
	// multi-tenant mix (empty for single-tenant traces). Engines carry it
	// through to the metrics records so SLO attainment can be broken down
	// per tenant.
	Tenant string
}

// TotalLen is the request's final context length.
func (r Request) TotalLen() int { return r.PromptLen + r.OutputLen }

// LengthDist is a two-sided token-length distribution: log-normal prompt
// and output lengths with floors and caps.
type LengthDist struct {
	Name string

	PromptMedian float64 // median prompt tokens
	PromptSigma  float64 // log-normal shape
	PromptMin    int
	PromptMax    int

	OutputMedian float64
	OutputSigma  float64
	OutputMin    int
	OutputMax    int
}

// Sample draws one (prompt, output) pair.
func (d LengthDist) Sample(rng *rand.Rand) (prompt, output int) {
	prompt = clampInt(logNormal(rng, d.PromptMedian, d.PromptSigma), d.PromptMin, d.PromptMax)
	output = clampInt(logNormal(rng, d.OutputMedian, d.OutputSigma), d.OutputMin, d.OutputMax)
	return prompt, output
}

func logNormal(rng *rand.Rand, median, sigma float64) int {
	return int(math.Round(median * math.Exp(sigma*rng.NormFloat64())))
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Dataset presets. Statistics follow the commonly published profiles of the
// three corpora (see DESIGN.md for the substitution rationale).
var (
	// ShareGPT models multi-turn chat: prompt median ~330 tokens with a
	// heavy tail, outputs median ~240 tokens.
	ShareGPT = LengthDist{
		Name:         "ShareGPT",
		PromptMedian: 330, PromptSigma: 0.9, PromptMin: 16, PromptMax: 4096,
		OutputMedian: 240, OutputSigma: 0.7, OutputMin: 8, OutputMax: 1024,
	}
	// HumanEval models code completion: short docstring prompts, short
	// function-body completions.
	HumanEval = LengthDist{
		Name:         "HumanEval",
		PromptMedian: 130, PromptSigma: 0.5, PromptMin: 32, PromptMax: 512,
		OutputMedian: 70, OutputSigma: 0.5, OutputMin: 8, OutputMax: 256,
	}
	// LongBench models long-article summarization: long documents
	// truncated to the serving context window (the paper's runs see
	// ~0.9-1.2k average context per request, Fig. 7), compact summaries.
	LongBench = LengthDist{
		Name:         "LongBench",
		PromptMedian: 1800, PromptSigma: 0.45, PromptMin: 512, PromptMax: 4096,
		OutputMedian: 220, OutputSigma: 0.5, OutputMin: 32, OutputMax: 512,
	}
)

// ByName resolves a dataset preset.
func ByName(name string) (LengthDist, error) {
	for _, d := range []LengthDist{ShareGPT, HumanEval, LongBench} {
		if strings.EqualFold(d.Name, name) {
			return d, nil
		}
	}
	switch name {
	case "SG", "sg":
		return ShareGPT, nil
	case "HE", "he":
		return HumanEval, nil
	case "LB", "lb":
		return LongBench, nil
	}
	return LengthDist{}, fmt.Errorf("workload: unknown dataset %q", name)
}

// Poisson generates a trace with exponential inter-arrival times at `rate`
// requests/second for `duration` seconds.
func Poisson(dist LengthDist, rate, duration float64, seed int64) []Request {
	if rate <= 0 || duration <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var reqs []Request
	t := rng.ExpFloat64() / rate
	id := int64(0)
	for t < duration {
		p, o := dist.Sample(rng)
		reqs = append(reqs, Request{ID: id, ArrivalAt: t, PromptLen: p, OutputLen: o})
		id++
		t += rng.ExpFloat64() / rate
	}
	return reqs
}

// RateSegment is one phase of a piecewise-constant arrival process.
type RateSegment struct {
	Rate     float64 // requests/second (0 = silence)
	Duration float64 // seconds
}

// PiecewiseRate generates a trace whose arrival rate steps through the
// segments, reproducing time-varying loads like Fig. 14's
// rps 5 → 0 → 2.5 → 0 pattern.
func PiecewiseRate(dist LengthDist, segments []RateSegment, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	var reqs []Request
	id := int64(0)
	base := 0.0
	for _, seg := range segments {
		if seg.Duration <= 0 {
			continue
		}
		if seg.Rate > 0 {
			t := rng.ExpFloat64() / seg.Rate
			for t < seg.Duration {
				p, o := dist.Sample(rng)
				reqs = append(reqs, Request{ID: id, ArrivalAt: base + t, PromptLen: p, OutputLen: o})
				id++
				t += rng.ExpFloat64() / seg.Rate
			}
		}
		base += seg.Duration
	}
	return reqs
}

// FixedBatch generates n simultaneous requests at time zero with lengths
// drawn from the distribution; used by microbenchmarks such as Table 1.
func FixedBatch(dist LengthDist, n int, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	for i := range reqs {
		p, o := dist.Sample(rng)
		reqs[i] = Request{ID: int64(i), ArrivalAt: 0, PromptLen: p, OutputLen: o}
	}
	return reqs
}

// Stats summarizes a trace.
type Stats struct {
	Count                      int
	MeanPrompt, MeanOutput     float64
	MedianPrompt, MedianOutput int
	MaxPrompt, MaxOutput       int
	TotalTokens                int64
}

// Summarize computes trace statistics.
func Summarize(reqs []Request) Stats {
	var s Stats
	s.Count = len(reqs)
	if s.Count == 0 {
		return s
	}
	prompts := make([]int, 0, len(reqs))
	outputs := make([]int, 0, len(reqs))
	for _, r := range reqs {
		prompts = append(prompts, r.PromptLen)
		outputs = append(outputs, r.OutputLen)
		s.MeanPrompt += float64(r.PromptLen)
		s.MeanOutput += float64(r.OutputLen)
		s.TotalTokens += int64(r.PromptLen) + int64(r.OutputLen)
		if r.PromptLen > s.MaxPrompt {
			s.MaxPrompt = r.PromptLen
		}
		if r.OutputLen > s.MaxOutput {
			s.MaxOutput = r.OutputLen
		}
	}
	s.MeanPrompt /= float64(s.Count)
	s.MeanOutput /= float64(s.Count)
	sort.Ints(prompts)
	sort.Ints(outputs)
	s.MedianPrompt = prompts[len(prompts)/2]
	s.MedianOutput = outputs[len(outputs)/2]
	return s
}

// Truncate clamps every request to a model context window: prompts longer
// than maxSeq-1 are cut, and outputs are cut so prompt+output ≤ maxSeq.
// maxSeq <= 0 returns the input unchanged. A new slice is returned; the
// input is not mutated.
func Truncate(reqs []Request, maxSeq int) []Request {
	if maxSeq <= 0 {
		return reqs
	}
	out := make([]Request, len(reqs))
	copy(out, reqs)
	for i := range out {
		if out[i].PromptLen > maxSeq-1 {
			out[i].PromptLen = maxSeq - 1
		}
		if out[i].PromptLen+out[i].OutputLen > maxSeq {
			out[i].OutputLen = maxSeq - out[i].PromptLen
		}
		if out[i].OutputLen < 1 {
			out[i].OutputLen = 1
		}
	}
	return out
}
