package hardware

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"A100", "a100", "3090", "P100", "p100", "H100", "V100", "T4", "A40", "L4"} {
		if _, err := SpecByName(name); err != nil {
			t.Errorf("SpecByName(%q) unexpected error: %v", name, err)
		}
	}
	if _, err := SpecByName("TPUv4"); err == nil {
		t.Error("SpecByName(TPUv4) should fail")
	}
}

func TestTierOrdering(t *testing.T) {
	if !(A100.Tier > RTX3090.Tier && RTX3090.Tier > P100.Tier) {
		t.Fatalf("tier ordering broken: A100=%d 3090=%d P100=%d", A100.Tier, RTX3090.Tier, P100.Tier)
	}
	if !(H100.Tier > A100.Tier) {
		t.Fatal("H100 should outrank A100")
	}
}

func TestMemoryCapacitiesMatchPaperTable1(t *testing.T) {
	// Table 1: A100 80GB, 3090 24GB, P100 12GB. The paper reports A100
	// having 3.33x and 6.67x the capacity of 3090 and P100.
	if got := float64(A100.MemBytes) / float64(RTX3090.MemBytes); math.Abs(got-3.33) > 0.01 {
		t.Errorf("A100/3090 memory ratio = %.2f want 3.33", got)
	}
	if got := float64(A100.MemBytes) / float64(P100.MemBytes); math.Abs(got-6.67) > 0.01 {
		t.Errorf("A100/P100 memory ratio = %.2f want 6.67", got)
	}
}

func TestTransferTime(t *testing.T) {
	l := LinkSpec{Alpha: 1e-5, Beta: 1e9}
	if got := l.TransferTime(0); got != 0 {
		t.Errorf("zero bytes should cost 0, got %g", got)
	}
	if got := l.TransferTime(-5); got != 0 {
		t.Errorf("negative bytes should cost 0, got %g", got)
	}
	want := 1e-5 + 1e6/1e9
	if got := l.TransferTime(1e6); math.Abs(got-want) > 1e-12 {
		t.Errorf("TransferTime(1MB)=%g want %g", got, want)
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return LAN100G.TransferTime(x) <= LAN100G.TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaperCluster(t *testing.T) {
	c := PaperCluster()
	if got := c.NumDevices(); got != 12 {
		t.Fatalf("paper cluster has %d devices, want 12", got)
	}
	if got := len(c.Hosts); got != 4 {
		t.Fatalf("paper cluster has %d hosts, want 4", got)
	}
	groups := c.DevicesByType()
	if len(groups) != 3 {
		t.Fatalf("expected 3 GPU types, got %d", len(groups))
	}
	// DevicesByType orders high tier to low.
	if groups[0].Spec.Name != "A100" || groups[1].Spec.Name != "3090" || groups[2].Spec.Name != "P100" {
		t.Fatalf("type order wrong: %v %v %v", groups[0].Spec.Name, groups[1].Spec.Name, groups[2].Spec.Name)
	}
	if len(groups[0].IDs) != 4 || len(groups[1].IDs) != 4 || len(groups[2].IDs) != 4 {
		t.Fatalf("group sizes wrong: %d %d %d", len(groups[0].IDs), len(groups[1].IDs), len(groups[2].IDs))
	}
}

func TestClusterLinks(t *testing.T) {
	c := PaperCluster()
	// Device 0..3 are the A100s on one host; 4,5 and 6,7 are 3090s on two
	// separate hosts.
	if got := c.Link(0, 0); got.Name != "loopback" {
		t.Errorf("self link = %s want loopback", got.Name)
	}
	if got := c.Link(0, 1); got.Name != "PCIe4x16" {
		t.Errorf("intra-host A100 link = %s want PCIe4x16", got.Name)
	}
	if !c.SameHost(4, 5) {
		t.Error("3090s 4 and 5 should share a host")
	}
	if c.SameHost(5, 6) {
		t.Error("3090s 5 and 6 are on different hosts")
	}
	if got := c.Link(5, 6); got.Name != "100GbE" {
		t.Errorf("inter-host link = %s want 100GbE", got.Name)
	}
	if got := c.Link(0, 11); got.Name != "100GbE" {
		t.Errorf("A100<->P100 link = %s want 100GbE", got.Name)
	}
}

func TestTotalMemory(t *testing.T) {
	c := PaperCluster()
	want := 4*A100.MemBytes + 4*RTX3090.MemBytes + 4*P100.MemBytes
	if got := c.TotalMemory(); got != want {
		t.Fatalf("TotalMemory=%d want %d", got, want)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(LAN100G).Build(); err == nil {
		t.Error("empty cluster should fail to build")
	}
	if _, err := NewBuilder(LAN100G).AddHost("bad", PCIe3x16, A100, 0).Build(); err == nil {
		t.Error("zero-GPU host should fail to build")
	}
	// Error sticks across subsequent calls.
	if _, err := NewBuilder(LAN100G).
		AddHost("bad", PCIe3x16, A100, -1).
		AddHost("ok", PCIe3x16, A100, 2).
		Build(); err == nil {
		t.Error("builder error should persist")
	}
}

func TestDeviceString(t *testing.T) {
	c := PaperCluster()
	if got := c.Device(0).String(); got != "A100#0" {
		t.Errorf("Device(0)=%q want A100#0", got)
	}
	if got := c.Device(11).String(); got != "P100#11" {
		t.Errorf("Device(11)=%q want P100#11", got)
	}
}

func TestEffectiveRates(t *testing.T) {
	for _, s := range []GPUSpec{A100, RTX3090, P100, H100, V100, T4, A40, L4} {
		if s.EffFLOPS() <= 0 || s.EffFLOPS() > s.PeakFLOPS {
			t.Errorf("%s: EffFLOPS %g out of range (peak %g)", s.Name, s.EffFLOPS(), s.PeakFLOPS)
		}
		if s.EffBandwidth() <= 0 || s.EffBandwidth() > s.MemBandwidth {
			t.Errorf("%s: EffBandwidth %g out of range", s.Name, s.EffBandwidth())
		}
		if s.LaunchOverhead <= 0 {
			t.Errorf("%s: LaunchOverhead must be positive", s.Name)
		}
	}
}

func TestClusterString(t *testing.T) {
	got := PaperCluster().String()
	if got == "" {
		t.Fatal("empty cluster string")
	}
	for _, sub := range []string{"4xA100", "4x3090", "4xP100", "100GbE"} {
		if !contains(got, sub) {
			t.Errorf("cluster string %q missing %q", got, sub)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
