// Package hardware describes heterogeneous GPU clusters: device
// capabilities, host groupings, and the interconnect between devices. It is
// the static substrate every other layer (cost model, parallelizer,
// dispatcher, engines) consumes.
//
// All capacities are in bytes, bandwidths in bytes/second, compute in
// FLOP/s, and latencies in seconds.
package hardware

import (
	"fmt"
	"sort"
	"strings"
)

// GPUSpec captures the capability of one GPU model. PeakFLOPS is the dense
// FP16 (tensor-core where available) throughput; MemBandwidth is HBM/GDDR
// bandwidth. ComputeEff and MemEff derate the peaks to achievable values for
// transformer kernels; LaunchOverhead is the fixed per-kernel cost that
// dominates tiny decode batches on slow parts.
type GPUSpec struct {
	Name           string
	MemBytes       int64   // total device memory
	PeakFLOPS      float64 // dense FP16 FLOP/s
	MemBandwidth   float64 // bytes/s
	ComputeEff     float64 // fraction of PeakFLOPS achievable on GEMM
	MemEff         float64 // fraction of MemBandwidth achievable
	LaunchOverhead float64 // seconds per kernel launch round
	// Tier orders GPU models by computational power; higher is faster.
	// The Parallelizer's exclusion heuristic walks tiers bottom-up.
	Tier int
}

// String returns the spec name.
func (g GPUSpec) String() string { return g.Name }

// EffFLOPS is the achievable FLOP/s for dense kernels.
func (g GPUSpec) EffFLOPS() float64 { return g.PeakFLOPS * g.ComputeEff }

// EffBandwidth is the achievable memory bandwidth.
func (g GPUSpec) EffBandwidth() float64 { return g.MemBandwidth * g.MemEff }

const (
	// GB is one gigabyte (10^9 bytes), the unit vendors quote memory in.
	GB = int64(1e9)
	// GiB is one gibibyte.
	GiB = int64(1) << 30
)

// Built-in GPU presets. Memory sizes follow Table 1 of the paper for the
// three GPUs it uses (A100 80 GB, RTX 3090 24 GB, P100 12 GB); the rest are
// vendor datasheet values. Efficiency factors were calibrated so that the
// perf package reproduces the paper's Table 1 iteration-time ratios.
var (
	A100 = GPUSpec{
		Name: "A100", MemBytes: 80 * GB, PeakFLOPS: 312e12,
		MemBandwidth: 2039e9, ComputeEff: 0.52, MemEff: 0.80,
		LaunchOverhead: 25e-6, Tier: 60,
	}
	H100 = GPUSpec{
		Name: "H100", MemBytes: 80 * GB, PeakFLOPS: 990e12,
		MemBandwidth: 3350e9, ComputeEff: 0.48, MemEff: 0.80,
		LaunchOverhead: 8e-6, Tier: 70,
	}
	V100 = GPUSpec{
		Name: "V100", MemBytes: 32 * GB, PeakFLOPS: 125e12,
		MemBandwidth: 900e9, ComputeEff: 0.50, MemEff: 0.78,
		LaunchOverhead: 10e-6, Tier: 50,
	}
	A40 = GPUSpec{
		Name: "A40", MemBytes: 48 * GB, PeakFLOPS: 150e12,
		MemBandwidth: 696e9, ComputeEff: 0.50, MemEff: 0.78,
		LaunchOverhead: 10e-6, Tier: 45,
	}
	RTX3090 = GPUSpec{
		Name: "3090", MemBytes: 24 * GB, PeakFLOPS: 142e12,
		MemBandwidth: 936e9, ComputeEff: 0.44, MemEff: 0.75,
		LaunchOverhead: 20e-6, Tier: 40,
	}
	L4 = GPUSpec{
		Name: "L4", MemBytes: 24 * GB, PeakFLOPS: 121e12,
		MemBandwidth: 300e9, ComputeEff: 0.45, MemEff: 0.72,
		LaunchOverhead: 11e-6, Tier: 35,
	}
	T4 = GPUSpec{
		Name: "T4", MemBytes: 16 * GB, PeakFLOPS: 65e12,
		MemBandwidth: 320e9, ComputeEff: 0.40, MemEff: 0.70,
		LaunchOverhead: 13e-6, Tier: 20,
	}
	P100 = GPUSpec{
		Name: "P100", MemBytes: 12 * GB, PeakFLOPS: 18.7e12,
		MemBandwidth: 549e9, ComputeEff: 0.33, MemEff: 0.68,
		LaunchOverhead: 120e-6, Tier: 10,
	}
)

// SpecByName resolves a preset GPU spec by its case-insensitive name.
func SpecByName(name string) (GPUSpec, error) {
	for _, s := range []GPUSpec{A100, H100, V100, A40, RTX3090, L4, T4, P100} {
		if strings.EqualFold(s.Name, name) {
			return s, nil
		}
	}
	return GPUSpec{}, fmt.Errorf("hardware: unknown GPU spec %q", name)
}

// LinkSpec is a point-to-point alpha-beta channel: transferring n bytes
// costs Alpha + n/Beta seconds.
type LinkSpec struct {
	Name  string
	Alpha float64 // latency, seconds
	Beta  float64 // bandwidth, bytes/s
}

// TransferTime returns the alpha-beta cost of moving n bytes.
func (l LinkSpec) TransferTime(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.Alpha + float64(bytes)/l.Beta
}

// Interconnect presets. LAN100G matches the paper's 100 Gbps Ethernet;
// PCIe3/PCIe4 are effective host-internal rates; NVLink3 is included for
// richer clusters. Loopback models a device talking to itself.
var (
	LAN100G  = LinkSpec{Name: "100GbE", Alpha: 25e-6, Beta: 11.0e9}
	LAN25G   = LinkSpec{Name: "25GbE", Alpha: 30e-6, Beta: 2.8e9}
	PCIe3x16 = LinkSpec{Name: "PCIe3x16", Alpha: 6e-6, Beta: 12.0e9}
	PCIe4x16 = LinkSpec{Name: "PCIe4x16", Alpha: 5e-6, Beta: 24.0e9}
	NVLink3  = LinkSpec{Name: "NVLink3", Alpha: 3e-6, Beta: 250e9}
	Loopback = LinkSpec{Name: "loopback", Alpha: 0, Beta: 1e15}
)

// DeviceID identifies a GPU within a Cluster.
type DeviceID int

// Device is one physical GPU placed on a host.
type Device struct {
	ID   DeviceID
	Spec GPUSpec
	Host int // index of owning host
	// Slot is the index of the device within its host.
	Slot int
}

// String renders "A100#3".
func (d Device) String() string { return fmt.Sprintf("%s#%d", d.Spec.Name, d.ID) }

// Host is a machine holding several GPUs connected by IntraLink and exposed
// to the rest of the cluster through the cluster NIC.
type Host struct {
	Name      string
	IntraLink LinkSpec // GPU<->GPU within the host
}

// Cluster is an immutable description of the machines and devices.
type Cluster struct {
	Hosts     []Host
	Devices   []Device
	InterLink LinkSpec // host<->host network
}

// Builder assembles a Cluster host by host.
type Builder struct {
	c   Cluster
	err error
}

// NewBuilder starts a cluster whose hosts are joined by inter.
func NewBuilder(inter LinkSpec) *Builder {
	return &Builder{c: Cluster{InterLink: inter}}
}

// AddHost appends a host with n GPUs of the given spec, connected internally
// by intra. It returns the builder for chaining.
func (b *Builder) AddHost(name string, intra LinkSpec, spec GPUSpec, n int) *Builder {
	if b.err != nil {
		return b
	}
	if n <= 0 {
		b.err = fmt.Errorf("hardware: host %q must have at least one GPU, got %d", name, n)
		return b
	}
	hostIdx := len(b.c.Hosts)
	b.c.Hosts = append(b.c.Hosts, Host{Name: name, IntraLink: intra})
	for i := 0; i < n; i++ {
		b.c.Devices = append(b.c.Devices, Device{
			ID:   DeviceID(len(b.c.Devices)),
			Spec: spec,
			Host: hostIdx,
			Slot: i,
		})
	}
	return b
}

// Build finalizes the cluster.
func (b *Builder) Build() (*Cluster, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.c.Devices) == 0 {
		return nil, fmt.Errorf("hardware: cluster has no devices")
	}
	c := b.c // copy
	return &c, nil
}

// MustBuild is Build that panics on error, for tests and presets.
func (b *Builder) MustBuild() *Cluster {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// PaperCluster reproduces the evaluation cluster of §7.1: one host with four
// A100-80GB, two hosts with two RTX 3090 each, and one host with four P100,
// all joined by 100 Gbps Ethernet with PCIe3 inside each host.
func PaperCluster() *Cluster {
	return NewBuilder(LAN100G).
		AddHost("a100-node", PCIe4x16, A100, 4).
		AddHost("3090-node-0", PCIe3x16, RTX3090, 2).
		AddHost("3090-node-1", PCIe3x16, RTX3090, 2).
		AddHost("p100-node", PCIe3x16, P100, 4).
		MustBuild()
}

// Device returns the device with the given id.
func (c *Cluster) Device(id DeviceID) Device {
	return c.Devices[id]
}

// NumDevices reports the number of GPUs in the cluster.
func (c *Cluster) NumDevices() int { return len(c.Devices) }

// Link returns the channel connecting two devices: Loopback for a device to
// itself, the host's intra link if colocated, and the cluster inter link
// otherwise.
func (c *Cluster) Link(a, b DeviceID) LinkSpec {
	if a == b {
		return Loopback
	}
	da, db := c.Devices[a], c.Devices[b]
	if da.Host == db.Host {
		return c.Hosts[da.Host].IntraLink
	}
	return c.InterLink
}

// SameHost reports whether two devices share a host.
func (c *Cluster) SameHost(a, b DeviceID) bool {
	return c.Devices[a].Host == c.Devices[b].Host
}

// TotalMemory sums device memory across the cluster.
func (c *Cluster) TotalMemory() int64 {
	var total int64
	for _, d := range c.Devices {
		total += d.Spec.MemBytes
	}
	return total
}

// DevicesByType groups device IDs by GPU spec name, ordered from the
// highest to the lowest tier. Devices inside each group keep ID order.
func (c *Cluster) DevicesByType() []TypeGroup {
	byName := map[string]*TypeGroup{}
	var order []string
	for _, d := range c.Devices {
		g, ok := byName[d.Spec.Name]
		if !ok {
			g = &TypeGroup{Spec: d.Spec}
			byName[d.Spec.Name] = g
			order = append(order, d.Spec.Name)
		}
		g.IDs = append(g.IDs, d.ID)
	}
	groups := make([]TypeGroup, 0, len(order))
	for _, name := range order {
		groups = append(groups, *byName[name])
	}
	sort.SliceStable(groups, func(i, j int) bool {
		if groups[i].Spec.Tier != groups[j].Spec.Tier {
			return groups[i].Spec.Tier > groups[j].Spec.Tier
		}
		return groups[i].Spec.Name < groups[j].Spec.Name
	})
	return groups
}

// TypeGroup is the set of devices sharing one GPU model.
type TypeGroup struct {
	Spec GPUSpec
	IDs  []DeviceID
}

// Fingerprint renders the full topology — every host with its intra link
// and device spec lineup, plus the inter-host link — so distinct clusters
// never collide. Use it as a cache or map key; String is a lossy summary
// that omits link generations and device arrangement.
func (c *Cluster) Fingerprint() string {
	var b strings.Builder
	b.WriteString(c.InterLink.Name)
	for i, h := range c.Hosts {
		fmt.Fprintf(&b, "|%s/%s:", h.Name, h.IntraLink.Name)
		for _, d := range c.Devices {
			if d.Host == i {
				b.WriteString(d.Spec.Name)
				b.WriteByte(',')
			}
		}
	}
	return b.String()
}

// String summarizes the cluster composition, e.g.
// "4xA100 + 4x3090 + 4xP100 (3 hosts? ...)".
func (c *Cluster) String() string {
	var parts []string
	for _, g := range c.DevicesByType() {
		parts = append(parts, fmt.Sprintf("%dx%s", len(g.IDs), g.Spec.Name))
	}
	return fmt.Sprintf("%s over %d hosts (%s)", strings.Join(parts, " + "), len(c.Hosts), c.InterLink.Name)
}
