// The package loader: a minimal, offline substitute for
// golang.org/x/tools/go/packages. It parses and type-checks module
// packages with the standard library's source importer, resolving module
// import paths ("hetis/...") against the module root and — for
// analysistest — fixture paths against a testdata/src root, exactly like
// x/tools' analysistest layout.

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// sharedFset and stdImporter are process-wide: the source importer
// type-checks each stdlib package from GOROOT/src once, and every loader
// (the self-check, each analysistest fixture run, the hetislint driver)
// reuses that work. Loads are single-threaded; nothing here locks.
var (
	sharedFset  = token.NewFileSet()
	stdImporter = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("hetis/internal/sim", or a fixture path).
	Path string
	// Dir is the directory the sources were read from (empty for
	// stdlib packages resolved through the source importer).
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	supp *suppressionIndex
}

// Loader resolves, parses, and type-checks packages.
type Loader struct {
	// ModuleRoot is the absolute directory holding go.mod.
	ModuleRoot string
	// ModulePath is the module's import path prefix ("hetis").
	ModulePath string
	// FixtureRoot, when set, resolves import paths that are neither
	// module-local nor standard library against this directory —
	// the analysistest testdata/src layout.
	FixtureRoot string

	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at dir (the directory
// containing go.mod).
func NewLoader(moduleRoot string) (*Loader, error) {
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: module root %s: %w", abs, err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", abs)
	}
	return &Loader{
		ModuleRoot: abs,
		ModulePath: modPath,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// FindModuleRoot walks upward from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		d = parent
	}
}

// Load resolves the patterns to packages and returns them sorted by
// import path. A pattern is an import path ("hetis/internal/sim", a
// fixture path under FixtureRoot), or a recursive form ending in "/..."
// that expands below the named package's directory. Standard-library
// packages cannot be named as patterns; they load implicitly as imports.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var paths []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "/..."); ok {
			dir, err := l.dirOf(base)
			if err != nil {
				return nil, fmt.Errorf("analysis: pattern %q: %w", pat, err)
			}
			sub, err := packageDirs(dir)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				rel, err := filepath.Rel(dir, d)
				if err != nil {
					return nil, err
				}
				if rel == "." {
					add(base)
					continue
				}
				add(base + "/" + filepath.ToSlash(rel))
			}
			continue
		}
		add(pat)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.importPkg(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// dirOf maps an import path to its source directory.
func (l *Loader) dirOf(path string) (string, error) {
	switch {
	case path == l.ModulePath:
		return l.ModuleRoot, nil
	case strings.HasPrefix(path, l.ModulePath+"/"):
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/"))), nil
	case l.FixtureRoot != "":
		dir := filepath.Join(l.FixtureRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("cannot resolve %q to a directory", path)
}

// packageDirs lists dir and every subdirectory containing non-test Go
// files, skipping testdata, hidden, and underscore-prefixed directories.
func packageDirs(dir string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goSources(p)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			out = append(out, p)
		}
		return nil
	})
	return out, err
}

// goSources lists a directory's non-test .go files, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	pkg, err := l.importPkg(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// ImportFrom implements types.ImporterFrom (the checker calls this form).
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return l.Import(path)
}

// importPkg loads, parses, and type-checks one package (memoized).
// Non-module, non-fixture paths fall through to the standard library's
// source importer.
func (l *Loader) importPkg(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir, err := l.dirOf(path)
	if err != nil {
		// Not module-local and not a fixture: standard library.
		tpkg, stdErr := stdImporter.ImportFrom(path, l.ModuleRoot, 0)
		if stdErr != nil {
			return nil, fmt.Errorf("analysis: import %q: %v (and %v)", path, stdErr, err)
		}
		pkg := &Package{Path: path, Fset: sharedFset, Types: tpkg}
		l.pkgs[path] = pkg
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	srcs, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(srcs))
	for _, src := range srcs {
		f, err := parser.ParseFile(sharedFset, src, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, sharedFset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  sharedFset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
