// Package analysis is hetis' determinism-and-invariant lint suite: a set
// of repo-specific static checks that mechanically enforce the conventions
// every golden trace rests on — no unordered map iteration in simulation
// state, no wall-clock or global-rand entropy in deterministic packages,
// single-shot discipline for sim.Handle, and the metrics-sink / trace-log
// lifecycle contracts.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the suite could migrate to the real framework and a
// `go vet -vettool` driver if x/tools ever becomes a dependency; the build
// image pins a dependency-free toolchain, so the loader and driver here
// run on the standard library alone (go/parser + go/types with the source
// importer).
//
// Analyzers identify the repo's types structurally — by (package-path
// suffix, type name), e.g. a named type Handle declared in a package whose
// import path ends in "internal/sim" — so the analysistest fixtures under
// testdata/src can exercise every rule against small self-contained
// lookalike packages without type-checking the whole module.
//
// Findings are suppressed site-by-site with a justification comment on the
// flagged line or the line above:
//
//	//hetis:<directive> <why the order/entropy/lifetime cannot escape>
//
// The justification is mandatory: a directive with an empty reason does
// not suppress, it reports. See doc/ANALYSIS.md for the catalog and the
// suppression contract.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check, mirroring the x/tools shape.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is the one-paragraph description `hetislint -list` prints.
	Doc string
	// Directive is the suppression keyword: a comment
	// `//hetis:<Directive> <reason>` on (or immediately above) a flagged
	// line suppresses the finding when reason is non-empty.
	Directive string
	// Run reports the analyzer's findings on one package via pass.Reportf.
	Run func(pass *Pass)
}

// Diagnostic is one reported finding, carrying its resolved position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet

	diags *[]Diagnostic
	supp  *suppressionIndex
}

// Reportf records a finding at pos unless a justified suppression
// directive covers that line. A directive present but missing its
// justification does not suppress: the finding is reported with a note,
// so every surviving annotation in the tree carries a written reason.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if s := p.supp.lookup(position.Filename, position.Line, p.Analyzer.Directive); s != nil {
		if s.reason != "" {
			s.used = true
			return
		}
		format += " (a //hetis:" + p.Analyzer.Directive + " directive is present but missing its justification)"
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf resolves an expression's type (nil when unknown).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// RunAnalyzer applies one analyzer to the packages and returns its
// findings sorted by position. Suppression directives are honored but not
// audited — RunSuite adds the directive hygiene checks.
func RunAnalyzer(a *Analyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		pass := &Pass{
			Analyzer: a,
			Pkg:      pkg,
			Fset:     pkg.Fset,
			diags:    &diags,
			supp:     pkg.suppressions(),
		}
		a.Run(pass)
	}
	sortDiagnostics(diags)
	return diags
}

// RunSuite applies every analyzer to every package and audits the
// suppression directives themselves: unknown //hetis: keywords and
// directives that no longer suppress anything are findings too, so stale
// annotations cannot linger after the code they excused is gone.
func RunSuite(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Directive] = true
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Fset:     pkg.Fset,
				diags:    &diags,
				supp:     pkg.suppressions(),
			}
			a.Run(pass)
		}
	}
	for _, pkg := range pkgs {
		for _, s := range pkg.suppressions().all {
			switch {
			case !known[s.directive]:
				diags = append(diags, Diagnostic{
					Pos:      s.pos,
					Analyzer: "directives",
					Message:  fmt.Sprintf("unknown directive //hetis:%s (known: %s)", s.directive, directiveNames(analyzers)),
				})
			case !s.used && s.reason != "":
				diags = append(diags, Diagnostic{
					Pos:      s.pos,
					Analyzer: "directives",
					Message:  fmt.Sprintf("unused suppression //hetis:%s — the finding it excused is gone; delete it", s.directive),
				})
			}
		}
	}
	sortDiagnostics(diags)
	return diags
}

func directiveNames(analyzers []*Analyzer) string {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Directive)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// deterministicPkgs are the path suffixes of the packages whose control
// flow must be bit-reproducible: everything the golden traces and the
// cross-jobs equivalence tests referee.
var deterministicPkgs = []string{
	"internal/sim",
	"internal/engine",
	"internal/dispatch",
	"internal/scenario",
	"internal/metrics",
	"internal/fleet",
}

// DeterministicPackage reports whether an import path names one of the
// repo's determinism-critical packages. Matching is by path suffix so the
// analysistest fixtures (whose paths end in the same suffixes) exercise
// the same predicate the real module does.
func DeterministicPackage(path string) bool {
	for _, d := range deterministicPkgs {
		if pathIs(path, d) {
			return true
		}
	}
	return false
}

// pathIs reports whether path equals suffix or ends in "/"+suffix.
func pathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isNamedFrom reports whether t — after stripping one pointer level — is
// the named type `name` declared in a package whose path ends in
// pkgSuffix.
func isNamedFrom(t types.Type, pkgSuffix, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pathIs(obj.Pkg().Path(), pkgSuffix)
}

// hasMethod reports whether t's method set (including the pointer method
// set) contains a method with the given name.
func hasMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	_, ok := obj.(*types.Func)
	return ok
}

// inspectWithStack walks every node of the file, maintaining the ancestor
// stack (outermost first, not including n itself).
func inspectWithStack(file *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// enclosingFunc returns the innermost function declaration or literal in
// the ancestor stack (nil when at file scope).
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// funcBody returns the body of a FuncDecl or FuncLit.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}
