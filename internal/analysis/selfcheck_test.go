package analysis_test

import (
	"testing"

	"hetis/internal/analysis"
)

// TestRepoSelfCheck runs the full suite over every package in the module
// — the same sweep cmd/hetislint and the static-analysis CI job perform —
// and requires it to come back clean. Any new unordered map range,
// entropy leak, handle misuse, sink misordering, or stale/unjustified
// //hetis: directive anywhere in the tree fails this test.
func TestRepoSelfCheck(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(loader.ModulePath + "/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from %s — the module walk looks broken", len(pkgs), root)
	}
	diags := analysis.RunSuite(analysis.Suite(), pkgs)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
