// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against expectations embedded in the fixtures — a
// minimal, offline mirror of golang.org/x/tools/go/analysis/analysistest.
//
// Fixture packages live under <testdata>/src/<import-path>/ and may
// import each other and the standard library. An expected diagnostic is a
// trailing comment on the line it fires:
//
//	for k := range m { // want `iterates over a map`
//
// Each quoted or backquoted string after "want" is a regexp that must
// match one diagnostic reported on that line; diagnostics without a
// matching want, and wants without a matching diagnostic, fail the test.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hetis/internal/analysis"
)

// TestData returns the absolute path of the caller's testdata directory.
func TestData() string {
	td, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	if _, err := os.Stat(filepath.Join(td, "src")); err != nil {
		panic("analysistest: no testdata/src directory: " + err.Error())
	}
	return td
}

// Run applies one analyzer to the fixture packages named by the import
// paths and checks its diagnostics against the // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	runWith(t, testdata, paths, func(pkgs []*analysis.Package) []analysis.Diagnostic {
		return analysis.RunAnalyzer(a, pkgs)
	})
}

// RunSuite applies a whole suite — including the directive audit
// (unknown keywords, unused suppressions) that per-analyzer runs skip —
// to the fixture packages.
func RunSuite(t *testing.T, testdata string, analyzers []*analysis.Analyzer, paths ...string) {
	t.Helper()
	runWith(t, testdata, paths, func(pkgs []*analysis.Package) []analysis.Diagnostic {
		return analysis.RunSuite(analyzers, pkgs)
	})
}

func runWith(t *testing.T, testdata string, paths []string, run func([]*analysis.Package) []analysis.Diagnostic) {
	t.Helper()
	moduleRoot, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	loader.FixtureRoot = filepath.Join(testdata, "src")
	pkgs, err := loader.Load(paths...)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkgs)
	for _, d := range run(pkgs) {
		if !claimWant(wants, d) {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}

// want is one expected diagnostic, parsed from a fixture comment.
type want struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

// wantStrings pulls the Go string literals out of a // want comment.
var wantStrings = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, pkgs []*analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := c.Text
					// Block form `/* want ... */` lets a fixture expect a
					// diagnostic on a line whose trailing comment is already
					// taken (e.g. a //hetis: directive under audit).
					if inner, isBlock := strings.CutPrefix(text, "/*"); isBlock {
						text = "// " + strings.TrimSpace(strings.TrimSuffix(inner, "*/"))
					}
					rest, ok := strings.CutPrefix(text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					lits := wantStrings.FindAllString(rest, -1)
					if len(lits) == 0 {
						t.Errorf("%s:%d: malformed want comment (no string literal): %s", pos.Filename, pos.Line, c.Text)
						continue
					}
					for _, lit := range lits {
						pattern, err := strconv.Unquote(lit)
						if err != nil {
							t.Errorf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
							continue
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
							continue
						}
						wants = append(wants, &want{
							file:    pos.Filename,
							line:    pos.Line,
							pattern: pattern,
							re:      re,
						})
					}
				}
			}
		}
	}
	return wants
}

// claimWant marks the first unmatched want on the diagnostic's line whose
// regexp matches, and reports whether one was found.
func claimWant(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
