// The noglobalentropy analyzer: deterministic packages take entropy only
// through injection.
//
// The simulator's whole contract is that (scenario, seed) → byte-identical
// results. That dies the moment simulation code reads the wall clock, the
// process environment, or math/rand's global generator: each is a hidden
// input that varies run-to-run and machine-to-machine. Time must come from
// the sim clock and randomness from an injected seeded *rand.Rand, so the
// analyzer flags uses of time.Now, os.Getenv and friends, and math/rand's
// package-level functions inside deterministic packages. Constructing a
// local generator (rand.New, rand.NewSource, ...) stays legal — that is
// exactly how seeded entropy enters.

package analysis

import (
	"go/ast"
	"go/types"
)

// NoGlobalEntropy is the noglobalentropy analyzer.
var NoGlobalEntropy = &Analyzer{
	Name:      "noglobalentropy",
	Doc:       "flags wall-clock time (time.Now), process environment (os.Getenv/LookupEnv/Environ), and math/rand package-level functions in deterministic packages — entropy must be injected as a seeded *rand.Rand and time must come from the sim clock; suppress deliberate wall-clock reads (e.g. self-profiling) with //hetis:entropy <reason>",
	Directive: "entropy",
	Run:       runNoGlobalEntropy,
}

// entropyFuncs lists the forbidden package-level functions. math/rand's
// constructors are exempt: building a local seeded generator is the
// sanctioned way in.
var entropyFuncs = map[string]map[string]bool{
	"time": {"Now": true},
	"os":   {"Getenv": true, "LookupEnv": true, "Environ": true},
}

var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNoGlobalEntropy(pass *Pass) {
	if !DeterministicPackage(pass.Pkg.Path) {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				// Methods are fine: r.Intn on an injected *rand.Rand is
				// the sanctioned pattern.
				return true
			}
			path, name := fn.Pkg().Path(), fn.Name()
			switch {
			case entropyFuncs[path] != nil && entropyFuncs[path][name]:
				pass.Reportf(id.Pos(),
					"%s.%s in deterministic package %s: hidden run-to-run input — take time from the sim clock / config instead, or annotate //hetis:entropy <why this cannot affect results>",
					path, name, pass.Pkg.Path)
			case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name]:
				pass.Reportf(id.Pos(),
					"package-level %s.%s in deterministic package %s: uses the global generator — draw from an injected seeded *rand.Rand instead",
					path, name, pass.Pkg.Path)
			}
			return true
		})
	}
}
