package analysis_test

import (
	"testing"

	"hetis/internal/analysis"
	"hetis/internal/analysis/analysistest"
)

// Each analyzer runs over a positive fixture (a deterministic package
// path with violations, suppressed sites, and missing-justification
// directives) plus an out-of-scope package that must stay silent.

func TestMapRange(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.MapRange,
		"maprange/internal/engine", "maprange/internal/fleet", "maprange/util")
}

func TestNoGlobalEntropy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NoGlobalEntropy,
		"entropy/internal/dispatch", "entropy/internal/fleet", "entropy/cmdutil")
}

func TestHandleLifetime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.HandleLifetime,
		"handle/internal/sim", "handle/internal/engine", "handle/util")
}

func TestSinkDiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.SinkDiscipline,
		"sink/internal/metrics", "sink/internal/trace", "sink/internal/engine")
}

// TestDirectiveAudit exercises the suite-level hygiene checks that
// per-analyzer runs skip: unknown //hetis: keywords and justified
// suppressions that no longer excuse any finding.
func TestDirectiveAudit(t *testing.T) {
	analysistest.RunSuite(t, analysistest.TestData(), analysis.Suite(),
		"suite/internal/engine")
}
