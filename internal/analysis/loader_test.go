package analysis_test

import (
	"strings"
	"testing"

	"hetis/internal/analysis"
)

func TestLoaderResolvesModuleAndStdlib(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModulePath != "hetis" {
		t.Fatalf("module path = %q, want hetis", loader.ModulePath)
	}
	pkgs, err := loader.Load("hetis/internal/trace")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "hetis/internal/trace" {
		t.Fatalf("Load returned %+v, want exactly hetis/internal/trace", pkgs)
	}
	pkg := pkgs[0]
	if pkg.Types == nil || pkg.Info == nil || len(pkg.Files) == 0 {
		t.Fatal("package loaded without types, info, or files")
	}
	if pkg.Types.Scope().Lookup("Log") == nil {
		t.Fatal("type-checked hetis/internal/trace has no Log in scope")
	}
}

func TestLoaderRecursivePattern(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("hetis/internal/...")
	if err != nil {
		t.Fatal(err)
	}
	var sawSim, sawFixture bool
	for _, p := range pkgs {
		if p.Path == "hetis/internal/sim" {
			sawSim = true
		}
		if strings.Contains(p.Path, "testdata") {
			sawFixture = true
		}
	}
	if !sawSim {
		t.Error("hetis/internal/... did not include hetis/internal/sim")
	}
	if sawFixture {
		t.Error("hetis/internal/... descended into a testdata directory")
	}
}

func TestDeterministicPackagePredicate(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"hetis/internal/sim", true},
		{"hetis/internal/engine", true},
		{"maprange/internal/engine", true},
		{"internal/metrics", true},
		{"hetis/internal/trace", false},
		{"hetis/cmd/hetislint", false},
		{"hetis/internal/engineering", false},
	}
	for _, c := range cases {
		if got := analysis.DeterministicPackage(c.path); got != c.want {
			t.Errorf("DeterministicPackage(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
