// The maprange analyzer: no raw map iteration in deterministic packages.
//
// Go randomizes map iteration order per run, so any `range` over a map in
// simulation-state code is a latent determinism bug — the class the golden
// traces catch only after the fact, one lucky seed at a time. The analyzer
// flags every map range in a deterministic package except the one blessed
// idiom: collecting keys (or values) into a slice that is subsequently
// sorted in the same function before anything else observes it. Sites that
// are provably order-insensitive for another reason carry
// `//hetis:ordered <why>`.

package analysis

import (
	"go/ast"
	"go/types"
)

// MapRange is the maprange analyzer.
var MapRange = &Analyzer{
	Name:      "maprange",
	Doc:       "flags range-over-map in deterministic packages (internal/{sim,engine,dispatch,scenario,metrics}) unless the loop only collects into a slice that is sorted afterwards; suppress provably order-insensitive sites with //hetis:ordered <reason>",
	Directive: "ordered",
	Run:       runMapRange,
}

func runMapRange(pass *Pass) {
	if !DeterministicPackage(pass.Pkg.Path) {
		return
	}
	for _, file := range pass.Pkg.Files {
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return
			}
			if collectAndSortExempt(pass, rs, enclosingFunc(stack)) {
				return
			}
			pass.Reportf(rs.For,
				"iterates over a map (%s) in deterministic package %s: iteration order is randomized — collect and sort the keys first, or annotate //hetis:ordered <why the order cannot escape>",
				types.TypeString(t, types.RelativeTo(pass.Pkg.Types)), pass.Pkg.Path)
		})
	}
}

// collectAndSortExempt recognizes the blessed sorted-iteration idiom: the
// range body does nothing but append map keys/values into slices
// (optionally under an if filter), and at least one of those slices is
// passed to a sort call later in the same function. Everything the loop
// produced is then consumed in sorted order, so the map's order never
// escapes.
func collectAndSortExempt(pass *Pass, rs *ast.RangeStmt, fn ast.Node) bool {
	if fn == nil {
		return false
	}
	targets := map[string]bool{}
	if !collectOnly(rs.Body.List, targets) || len(targets) == 0 {
		return false
	}
	body := funcBody(fn)
	if body == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() || !isSortCall(pass, call) {
			return true
		}
		if len(call.Args) > 0 && callArgMentions(call.Args[0], targets) {
			sorted = true
			return false
		}
		return true
	})
	return sorted
}

// collectOnly reports whether every statement is an append of the form
// `x = append(x, ...)` (or an else-less if containing only such appends),
// recording the appended-to expressions in targets.
func collectOnly(stmts []ast.Stmt, targets map[string]bool) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" || len(call.Args) == 0 {
				return false
			}
			lhs := types.ExprString(s.Lhs[0])
			if types.ExprString(call.Args[0]) != lhs {
				return false
			}
			targets[lhs] = true
		case *ast.IfStmt:
			if s.Else != nil || s.Init != nil {
				return false
			}
			if !collectOnly(s.Body.List, targets) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sortFuncs are the recognized sorting entry points, by package path.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// isSortCall reports whether call invokes one of the recognized sort
// functions.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	names := sortFuncs[pkgName.Imported().Path()]
	return names != nil && names[sel.Sel.Name]
}

// callArgMentions reports whether the sort call's first argument is one
// of the collected slices, unwrapping adapter calls such as
// sort.Reverse(sort.IntSlice(x)).
func callArgMentions(arg ast.Expr, targets map[string]bool) bool {
	if targets[types.ExprString(arg)] {
		return true
	}
	if call, ok := arg.(*ast.CallExpr); ok {
		for _, a := range call.Args {
			if callArgMentions(a, targets) {
				return true
			}
		}
	}
	return false
}
