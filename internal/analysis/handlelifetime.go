// The handlelifetime analyzer: sim.Handle is single-shot; don't build
// lifetimes the kernel can't see.
//
// A sim.Handle pairs a pooled *Event with the generation it was issued
// for; once the event fires, the kernel recycles the Event and bumps the
// generation, so a retained Handle silently goes stale (the PR 5 bug was
// exactly this — cancelling through a handle whose event had already fired
// and been reissued). The safe shapes are (a) one handle in one struct
// field, cleared or overwritten when the event fires, and (b) sim.Group,
// which tracks arbitrarily many handles with pruning. The analyzer flags
// the shapes that historically rot: handles stored into ad-hoc collections
// (slices, maps, composite literals), where no code path ties the stored
// copy to the event's firing, and ==/!= between handles, which compares
// pooled pointers and lies after reuse — use Alive/Cancel instead.
//
// internal/sim itself is exempt: the kernel is the one place that
// legitimately manipulates raw handle state.

package analysis

import (
	"go/ast"
	"go/token"
)

// HandleLifetime is the handlelifetime analyzer.
var HandleLifetime = &Analyzer{
	Name:      "handlelifetime",
	Doc:       "flags sim.Handle values stored into slices, maps, or composite literals (use a single struct field or sim.Group, which track firing) and ==/!= comparisons between handles (pooled events make equality lie after reuse — use Alive/Cancel); suppress audited sites with //hetis:handle <reason>",
	Directive: "handle",
	Run:       runHandleLifetime,
}

func runHandleLifetime(pass *Pass) {
	if !DeterministicPackage(pass.Pkg.Path) || pathIs(pass.Pkg.Path, "internal/sim") {
		return
	}
	isHandle := func(e ast.Expr) bool {
		return isNamedFrom(pass.TypeOf(e), "internal/sim", "Handle")
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if (x.Op == token.EQL || x.Op == token.NEQ) && isHandle(x.X) && isHandle(x.Y) {
					pass.Reportf(x.OpPos,
						"compares sim.Handle values with %s: handles wrap pooled events, so equality is meaningless once either event has fired and been reissued — use Simulator.Alive or track state alongside the handle",
						x.Op)
				}
			case *ast.CompositeLit:
				for _, el := range x.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isHandle(v) {
						pass.Reportf(v.Pos(),
							"stores a sim.Handle in a composite literal: collections of handles go stale when events fire — keep one handle per struct field or use sim.Group")
					}
				}
			case *ast.CallExpr:
				if fn, ok := x.Fun.(*ast.Ident); ok && fn.Name == "append" {
					for _, arg := range x.Args[min(1, len(x.Args)):] {
						if isHandle(arg) {
							pass.Reportf(arg.Pos(),
								"appends a sim.Handle to a slice: ad-hoc handle collections go stale when events fire — use sim.Group, which prunes dead handles")
						}
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					ix, ok := lhs.(*ast.IndexExpr)
					if !ok || i >= len(x.Rhs) {
						continue
					}
					if isHandle(x.Rhs[min(i, len(x.Rhs)-1)]) {
						pass.Reportf(ix.Pos(),
							"stores a sim.Handle into an indexed collection: nothing removes the entry when its event fires — use sim.Group or a struct field the firing callback clears")
					}
				}
			}
			return true
		})
	}
}
