// The sinkdiscipline analyzer: snapshots end a sink's life, and trace
// logs are optional.
//
// Two lifecycle contracts, both easy to violate silently:
//
//  1. metrics sinks are observe-then-snapshot: Snapshot() is the
//     end-of-run read, and Observe calls after it produce data no
//     snapshot will ever report (or, for mux sinks, skew a second
//     snapshot relative to the first). The analyzer flags an Observe on
//     a receiver that has already been Snapshot()ed earlier in the same
//     function.
//
//  2. trace logs are nil when tracing is off (Config.NoTrace): every
//     exported *Log method must open with an `if l == nil` guard, and
//     code outside internal/trace must not dereference a *trace.Log
//     value (unary *) without a nil check in scope — method calls are
//     the nil-safe surface.
//
// Suppress audited sites with //hetis:sink <reason>.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SinkDiscipline is the sinkdiscipline analyzer.
var SinkDiscipline = &Analyzer{
	Name:      "sinkdiscipline",
	Doc:       "flags Observe calls on a metrics sink after Snapshot() in the same function, exported *Log methods in internal/trace missing the leading nil guard, and unary dereferences of *trace.Log without a nil check in scope (trace logs are nil under Config.NoTrace); suppress audited sites with //hetis:sink <reason>",
	Directive: "sink",
	Run:       runSinkDiscipline,
}

func runSinkDiscipline(pass *Pass) {
	inTrace := pathIs(pass.Pkg.Path, "internal/trace")
	if !DeterministicPackage(pass.Pkg.Path) && !inTrace {
		return
	}
	for _, file := range pass.Pkg.Files {
		if inTrace {
			checkNilGuards(pass, file)
			continue
		}
		checkSnapshotThenObserve(pass, file)
		checkLogDerefs(pass, file)
	}
}

// checkSnapshotThenObserve flags, within each function, an Observe call
// on a receiver expression that Snapshot() was already called on. The
// receiver must actually be sink-shaped (both methods in its method set)
// so ordinary Snapshot methods elsewhere don't trip it.
func checkSnapshotThenObserve(pass *Pass, file *ast.File) {
	type snapshotSite struct {
		pos token.Pos
	}
	var snapped map[string]snapshotSite // receiver ExprString → first Snapshot
	inspectWithStack(file, func(n ast.Node, stack []ast.Node) {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			// ast.Inspect visits functions in source order and we only
			// compare sites inside one function, so resetting at each
			// function entry keeps the map scoped. Nested literals share
			// the enclosing map on purpose: a closure observing a sink
			// its parent already snapshot is the same bug.
			if enclosingFunc(stack) == nil {
				snapped = map[string]snapshotSite{}
			}
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || snapped == nil {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		recvT := pass.TypeOf(sel.X)
		if recvT == nil || !hasMethod(recvT, "Snapshot") || !hasMethod(recvT, "Observe") {
			return
		}
		recv := types.ExprString(sel.X)
		switch sel.Sel.Name {
		case "Snapshot":
			if _, done := snapped[recv]; !done {
				snapped[recv] = snapshotSite{pos: call.Pos()}
			}
		case "Observe":
			if site, done := snapped[recv]; done && call.Pos() > site.pos {
				pass.Reportf(call.Pos(),
					"Observe on %s after its Snapshot() at line %d: observations after the snapshot are invisible to it — snapshot once, after the last observation",
					recv, pass.Fset.Position(site.pos).Line)
			}
		}
	})
}

// checkNilGuards enforces the internal/trace contract: every exported
// method with a pointer *Log receiver starts with `if <recv> == nil`.
// Callers hold nil logs whenever tracing is disabled, so the guard is the
// entire reason method calls are the safe surface.
func checkNilGuards(pass *Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() || fd.Body == nil {
			continue
		}
		recvT := pass.TypeOf(fd.Recv.List[0].Type)
		if _, isPtr := recvT.(*types.Pointer); !isPtr || !isNamedFrom(recvT, "internal/trace", "Log") {
			continue
		}
		if !startsWithNilGuard(fd) {
			pass.Reportf(fd.Name.Pos(),
				"exported method %s on *Log does not start with a nil-receiver guard: trace logs are nil when tracing is off, so every exported method must begin `if l == nil`",
				fd.Name.Name)
		}
	}
}

// startsWithNilGuard reports whether the method body's first statement is
// `if <recv> == nil { ... }` — possibly as the leftmost operand of an ||
// chain (`if l == nil || len(l.events) == 0`), which short-circuiting
// makes just as safe.
func startsWithNilGuard(fd *ast.FuncDecl) bool {
	if len(fd.Body.List) == 0 {
		return false
	}
	ifs, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	cond := ifs.Cond
	for {
		or, ok := cond.(*ast.BinaryExpr)
		if !ok || or.Op != token.LOR {
			break
		}
		cond = or.X
	}
	cmp, ok := cond.(*ast.BinaryExpr)
	if !ok || cmp.Op != token.EQL {
		return false
	}
	recvName := ""
	if names := fd.Recv.List[0].Names; len(names) == 1 {
		recvName = names[0].Name
	}
	x, xOK := cmp.X.(*ast.Ident)
	y, yOK := cmp.Y.(*ast.Ident)
	if !xOK || !yOK {
		return false
	}
	if x.Name == recvName && y.Name == "nil" {
		return true
	}
	return y.Name == recvName && x.Name == "nil"
}

// checkLogDerefs flags `*x` where x is a *trace.Log, unless an ancestor
// if-statement's condition mentions a `!= nil` comparison. Method calls
// on a nil log are safe (the guards above); copying the pointed-to Log
// is not.
func checkLogDerefs(pass *Pass, file *ast.File) {
	inspectWithStack(file, func(n ast.Node, stack []ast.Node) {
		star, ok := n.(*ast.StarExpr)
		if !ok {
			return
		}
		t := pass.TypeOf(star.X)
		if _, isPtr := t.(*types.Pointer); !isPtr || !isNamedFrom(t, "internal/trace", "Log") {
			return
		}
		// *ast.StarExpr is also the syntax for the pointer *type*; a
		// type expression has no value, so require a value here.
		if tv, ok := pass.Pkg.Info.Types[star.X]; !ok || !tv.IsValue() {
			return
		}
		for _, anc := range stack {
			ifs, ok := anc.(*ast.IfStmt)
			if ok && condChecksNotNil(ifs.Cond) {
				return
			}
		}
		pass.Reportf(star.Pos(),
			"dereferences a *trace.Log without a nil check in scope: the log is nil when Config.NoTrace is set — guard with `if x != nil` or stick to method calls, which are nil-safe")
	})
}

// condChecksNotNil reports whether the condition contains a `!= nil`
// comparison (possibly among && / || clauses).
func condChecksNotNil(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if cmp, ok := n.(*ast.BinaryExpr); ok && cmp.Op == token.NEQ {
			if isNilIdent(cmp.X) || isNilIdent(cmp.Y) {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
