// Suppression directives: `//hetis:<keyword> <justification>` on a
// flagged line (trailing) or on the line immediately above (leading)
// excuses one analyzer's findings on that line. The justification is part
// of the contract — it must say why the invariant cannot be violated at
// this site (e.g. why iteration order does not escape into results), and
// an empty justification reports instead of suppressing. RunSuite audits
// the directives themselves: unknown keywords and suppressions that no
// longer excuse anything are findings.

package analysis

import (
	"go/token"
	"strings"
)

const directivePrefix = "//hetis:"

// suppression is one parsed //hetis: comment.
type suppression struct {
	pos       token.Position
	directive string
	reason    string
	used      bool
}

// suppressionIndex locates directives by (file, line).
type suppressionIndex struct {
	byLine map[string]map[int]*suppression
	all    []*suppression
}

// suppressions parses and memoizes the package's //hetis: comments.
func (p *Package) suppressions() *suppressionIndex {
	if p.supp != nil {
		return p.supp
	}
	idx := &suppressionIndex{byLine: map[string]map[int]*suppression{}}
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(rest, " ")
				s := &suppression{
					pos:       p.Fset.Position(c.Pos()),
					directive: name,
					reason:    strings.TrimSpace(reason),
				}
				lines := idx.byLine[s.pos.Filename]
				if lines == nil {
					lines = map[int]*suppression{}
					idx.byLine[s.pos.Filename] = lines
				}
				// A multi-line leading comment group ends on the line
				// above the code it documents; index the directive at the
				// line of the comment itself (lookup checks line and
				// line-1, which covers both trailing and leading forms).
				lines[s.pos.Line] = s
				idx.all = append(idx.all, s)
			}
		}
	}
	p.supp = idx
	return idx
}

// lookup finds a directive with the given keyword covering line (the line
// itself for trailing comments, or the line above for leading ones).
func (idx *suppressionIndex) lookup(file string, line int, directive string) *suppression {
	lines := idx.byLine[file]
	if lines == nil {
		return nil
	}
	for _, l := range [2]int{line, line - 1} {
		if s := lines[l]; s != nil && s.directive == directive {
			return s
		}
	}
	return nil
}
