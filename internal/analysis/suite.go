package analysis

// Suite returns every analyzer in the hetis lint suite, in the order
// cmd/hetislint lists and runs them.
func Suite() []*Analyzer {
	return []*Analyzer{
		MapRange,
		NoGlobalEntropy,
		HandleLifetime,
		SinkDiscipline,
	}
}
