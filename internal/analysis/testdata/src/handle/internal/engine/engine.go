// Package engine exercises the handlelifetime analyzer outside the
// kernel, inside a deterministic package path.
package engine

import "handle/internal/sim"

type worker struct {
	pending sim.Handle
	busy    bool
}

// arm shows the blessed shape: one handle in one struct field, cleared by
// the firing callback's state flip.
func (w *worker) arm(s *sim.Simulator) {
	w.pending = s.Schedule(5, func() { w.busy = false })
	w.busy = true
}

func compare(a, b sim.Handle) bool {
	return a == b // want `compares sim\.Handle values`
}

func collect(s *sim.Simulator) []sim.Handle {
	var hs []sim.Handle
	hs = append(hs, s.Schedule(1, nil)) // want `appends a sim\.Handle`
	return hs
}

func literal(h sim.Handle) []sim.Handle {
	return []sim.Handle{h} // want `composite literal`
}

func indexed(m map[int]sim.Handle, h sim.Handle) {
	m[0] = h // want `indexed collection`
}

func grouped(g *sim.Group, h sim.Handle) {
	g.Track(h)
}

func audited(s *sim.Simulator) []sim.Handle {
	hs := make([]sim.Handle, 0, 4)
	//hetis:handle every handle is cancelled before the clock advances; none can fire
	hs = append(hs, s.Schedule(1, nil))
	return hs
}
