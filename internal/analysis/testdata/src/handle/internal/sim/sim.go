// Package sim is a structural lookalike of hetis' event kernel: the
// handlelifetime analyzer matches the named type Handle declared in any
// package whose path ends internal/sim, so this fixture stands in for the
// real kernel. The kernel package itself is exempt from the analyzer —
// the raw handle manipulation below must produce no diagnostics.
package sim

type Event struct{ seq uint64 }

type Handle struct {
	ev  *Event
	gen uint64
}

type Simulator struct{ now int64 }

func (s *Simulator) Schedule(delay int64, fn func()) Handle { return Handle{} }

func (s *Simulator) Alive(h Handle) bool { return h.ev != nil }

func (s *Simulator) Cancel(h Handle) bool { return h.ev != nil }

// Group collects handles inside the kernel — legal here, flagged outside.
type Group struct{ handles []Handle }

func (g *Group) Track(h Handle) { g.handles = append(g.handles, h) }

func sameIssue(a, b Handle) bool { return a == b }
