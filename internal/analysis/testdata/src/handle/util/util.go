// Package util sits outside the deterministic set: handle collections in
// test/bench scaffolding are not the analyzer's business.
package util

import "handle/internal/sim"

func Collect(s *sim.Simulator) []sim.Handle {
	var hs []sim.Handle
	hs = append(hs, s.Schedule(1, nil))
	return hs
}
