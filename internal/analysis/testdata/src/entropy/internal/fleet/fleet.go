// Package fleet exercises the noglobalentropy analyzer on a router shape
// inside a deterministic package path (suffix internal/fleet): routing
// decisions must derive from the run seed, never ambient entropy.
package fleet

import (
	"math/rand"
	"time"
)

func pickShardGlobal(n int) int {
	return rand.Intn(n) // want `package-level math/rand\.Intn`
}

func jitterAdmission() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic package`
}

func pickShardSeeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}
