// Package dispatch exercises the noglobalentropy analyzer inside a
// deterministic package path (suffix internal/dispatch).
package dispatch

import (
	"math/rand"
	"os"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic package`
}

func envRead() string {
	return os.Getenv("HETIS_MODE") // want `os\.Getenv in deterministic package`
}

func globalRand() int {
	return rand.Intn(10) // want `package-level math/rand\.Intn`
}

func injected(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func profiled() {
	//hetis:entropy wall-clock self-profiling only; the reading never feeds results
	_ = time.Now()
}
