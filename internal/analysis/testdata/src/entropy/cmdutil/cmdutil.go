// Package cmdutil sits outside the deterministic set: wall-clock reads in
// CLI glue are fine.
package cmdutil

import "time"

func Stamp() int64 { return time.Now().Unix() }
