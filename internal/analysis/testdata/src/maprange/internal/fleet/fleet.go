// Package fleet exercises the maprange analyzer on a front-door-router
// shape inside a deterministic package path (suffix internal/fleet):
// routing tables keyed by tenant must never be walked in map order.
package fleet

import "sort"

type router struct {
	byTenant map[string]int
	load     []float64
}

func (r *router) drainUnordered() []int {
	var shards []int
	for _, shard := range r.byTenant { // want `iterates over a map`
		shards = append(shards, shard)
	}
	return shards
}

func (r *router) tenantsSorted() []string {
	tenants := make([]string, 0, len(r.byTenant))
	for t := range r.byTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	return tenants
}

func (r *router) totalPinned() int {
	n := 0
	//hetis:ordered pin-count only; the total is independent of order
	for range r.byTenant {
		n++
	}
	return n
}
