// Package engine exercises the maprange analyzer inside a deterministic
// package path (suffix internal/engine).
package engine

import "sort"

func plainRange(m map[string]int) int {
	total := 0
	for _, v := range m { // want `iterates over a map`
		total += v
	}
	return total
}

func collectAndSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectWithFilter(m map[string]int) []string {
	var keys []string
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `iterates over a map`
		keys = append(keys, k)
	}
	return keys
}

func sortBeforeNotAfter(m map[string]int, keys []string) []string {
	sort.Strings(keys)
	for k := range m { // want `iterates over a map`
		keys = append(keys, k)
	}
	return keys
}

func suppressed(m map[string]int) int {
	n := 0
	//hetis:ordered counting entries only; the count is independent of order
	for range m {
		n++
	}
	return n
}

func missingReason(m map[string]int) int {
	n := 0
	//hetis:ordered
	for range m { // want `missing its justification`
		n++
	}
	return n
}

func sliceRange(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
