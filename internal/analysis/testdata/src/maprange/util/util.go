// Package util sits outside the deterministic set: map iteration here is
// not the analyzer's business.
package util

func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
