// Package trace exercises sinkdiscipline's nil-guard contract: every
// exported method on *Log must open with `if l == nil`, because callers
// hold a nil log whenever tracing is disabled.
package trace

type Log struct{ events []int }

func (l *Log) Append(v int) { // want `does not start with a nil-receiver guard`
	l.events = append(l.events, v)
}

func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

func (l *Log) Events() []int {
	if nil == l {
		return nil
	}
	return l.events
}

func (l *Log) First() int {
	if l == nil || len(l.events) == 0 {
		return 0
	}
	return l.events[0]
}

func (l *Log) Guardless() int { // want `does not start with a nil-receiver guard`
	if len(l.events) == 0 || l == nil {
		return 0
	}
	return len(l.events)
}

// Release mirrors the arena recycler: no results, so the guard is a bare
// early return — still a leading nil guard.
func (l *Log) Release() {
	if l == nil {
		return
	}
	l.events = nil
}

// Each mirrors the zero-copy visitor: a callback parameter does not
// change the receiver contract.
func (l *Log) Each(fn func(int) bool) {
	if l == nil {
		return
	}
	for _, v := range l.events {
		if !fn(v) {
			return
		}
	}
}

// Drain shows the visitor shape with the guard missing: iterating an
// empty slice would be safe, but the contract is syntactic on purpose.
func (l *Log) Drain(fn func(int)) { // want `does not start with a nil-receiver guard`
	for _, v := range l.events {
		fn(v)
	}
	l.events = l.events[:0]
}

// unexported methods run only behind the exported guards.
func (l *Log) reset() { l.events = nil }
