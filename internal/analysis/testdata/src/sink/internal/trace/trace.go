// Package trace exercises sinkdiscipline's nil-guard contract: every
// exported method on *Log must open with `if l == nil`, because callers
// hold a nil log whenever tracing is disabled.
package trace

type Log struct{ events []int }

func (l *Log) Append(v int) { // want `does not start with a nil-receiver guard`
	l.events = append(l.events, v)
}

func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

func (l *Log) Events() []int {
	if nil == l {
		return nil
	}
	return l.events
}

func (l *Log) First() int {
	if l == nil || len(l.events) == 0 {
		return 0
	}
	return l.events[0]
}

func (l *Log) Guardless() int { // want `does not start with a nil-receiver guard`
	if len(l.events) == 0 || l == nil {
		return 0
	}
	return len(l.events)
}

// unexported methods run only behind the exported guards.
func (l *Log) reset() { l.events = nil }
