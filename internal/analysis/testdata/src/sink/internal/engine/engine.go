// Package engine exercises sinkdiscipline's trace-log dereference rule: a
// *trace.Log is nil when tracing is off, so unary dereferences need a nil
// check in scope (method calls are the nil-safe surface).
package engine

import "sink/internal/trace"

type result struct{ Trace *trace.Log }

func copyLog(r result) trace.Log {
	return *r.Trace // want `dereferences a \*trace\.Log`
}

func guardedCopy(r result) trace.Log {
	if r.Trace != nil {
		return *r.Trace
	}
	return trace.Log{}
}

func methodCall(r result) int {
	return r.Trace.Len()
}

func audited(r result) trace.Log {
	//hetis:sink this helper is only reached from traced runs; the caller checks NoTrace
	return *r.Trace
}
