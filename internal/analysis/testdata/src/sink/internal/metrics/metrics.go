// Package metrics exercises sinkdiscipline's snapshot-then-observe rule
// with a structural Sink lookalike (any receiver with both Observe and
// Snapshot in its method set).
package metrics

type Sink struct{ n int }

func (s *Sink) Observe(v float64) { s.n++ }

func (s *Sink) Snapshot() int { return s.n }

func snapshotThenObserve(s *Sink) int {
	s.Observe(1)
	got := s.Snapshot()
	s.Observe(2) // want `Observe on s after its Snapshot`
	return got
}

func observeThenSnapshot(s *Sink) int {
	s.Observe(1)
	return s.Snapshot()
}

func twoSinks(a, b *Sink) int {
	got := a.Snapshot()
	b.Observe(1)
	return got
}

func snapshotOnly(s *Sink) int { return s.Snapshot() }

func observeOnly(s *Sink) { s.Observe(3) }

func audited(s *Sink) int {
	got := s.Snapshot()
	//hetis:sink mid-run snapshot by design; later observations land in the final snapshot
	s.Observe(1)
	return got
}
