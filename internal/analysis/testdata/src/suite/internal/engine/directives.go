// Package engine exercises RunSuite's directive audit: unknown //hetis:
// keywords and justified suppressions that no longer excuse anything are
// findings in their own right.
package engine

import "sort"

func used(m map[string]int) int {
	n := 0
	//hetis:ordered entry count is independent of iteration order
	for range m {
		n++
	}
	return n
}

func sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

/* want `unknown directive` */ //hetis:bogus not a keyword any analyzer owns

/* want `unused suppression` */ //hetis:ordered nothing on this line is flagged
