// Package profile implements Hetis' Profiler (§5.1): it measures the
// simulated cluster at a small grid of operating points and fits the linear
// models the Dispatcher plans with —
//
//	τᵢ(t) = aᵢ·hᵢ(t) + bᵢ·gᵢ(t) + cᵢ        (Eq. 3, attention time)
//	ρᵢ(t) = γᵢ·dᵢ(t) + βᵢ                   (Eq. 4, transfer overhead)
//
// where hᵢ is the number of query heads on device i, gᵢ the bytes of KV
// cache they touch, and dᵢ the bytes moved between the primary worker and
// attention worker i. Like the paper, the fit uses an 8×8 grid of (h, g)
// samples per device; one grid evaluation corresponds to executing the
// Attention module once per configuration.
package profile

import (
	"fmt"
	"math"
	"math/rand"

	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/perf"
)

// AttnModel is the fitted per-device attention-time model (Eq. 3).
type AttnModel struct {
	A float64 // seconds per query head
	B float64 // seconds per byte of touched cache
	C float64 // fixed seconds per layer invocation
}

// Predict evaluates τ = A·heads + B·cacheBytes + C. Zero load costs zero.
func (m AttnModel) Predict(heads int, cacheBytes int64) float64 {
	if heads <= 0 {
		return 0
	}
	return m.A*float64(heads) + m.B*float64(cacheBytes) + m.C
}

// NetModel is the fitted transfer-overhead model (Eq. 4).
type NetModel struct {
	Gamma float64 // seconds per byte
	Beta  float64 // fixed seconds per transfer round
}

// Predict evaluates ρ = Gamma·bytes + Beta. Zero bytes cost zero (local
// computation involves no transfer).
func (m NetModel) Predict(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return m.Gamma*float64(bytes) + m.Beta
}

// Profile holds the fitted models for every device of a cluster, relative
// to a designated primary device for the network legs.
type Profile struct {
	Model   model.Config
	Primary hardware.DeviceID
	Attn    map[hardware.DeviceID]AttnModel
	Net     map[hardware.DeviceID]NetModel
	// AttnAccuracy and NetAccuracy are 1 − mean relative error on a
	// held-out grid, per device.
	AttnAccuracy map[hardware.DeviceID]float64
	NetAccuracy  map[hardware.DeviceID]float64
}

// Options tunes the profiling run.
type Options struct {
	// GridPoints is the number of sample values per axis (the paper uses
	// 8 h-values × 8 g-values).
	GridPoints int
	// MaxHeads and MaxCacheBytes bound the sampled operating range.
	MaxHeads      int
	MaxCacheBytes int64
}

// DefaultOptions mirrors the paper's profiling configuration.
func DefaultOptions() Options {
	return Options{GridPoints: 8, MaxHeads: 4096, MaxCacheBytes: 4 << 30}
}

// Run profiles every device of the cluster against the ground-truth
// estimator and fits the linear models. primary designates the device whose
// links carry the scattered heads.
func Run(est *perf.Estimator, cluster *hardware.Cluster, primary hardware.DeviceID, opts Options) (*Profile, error) {
	if opts.GridPoints < 2 {
		return nil, fmt.Errorf("profile: need at least 2 grid points, got %d", opts.GridPoints)
	}
	if opts.MaxHeads < opts.GridPoints || opts.MaxCacheBytes < int64(opts.GridPoints) {
		return nil, fmt.Errorf("profile: operating range too small for %d grid points", opts.GridPoints)
	}
	p := &Profile{
		Model:        est.Config(),
		Primary:      primary,
		Attn:         make(map[hardware.DeviceID]AttnModel, cluster.NumDevices()),
		Net:          make(map[hardware.DeviceID]NetModel, cluster.NumDevices()),
		AttnAccuracy: make(map[hardware.DeviceID]float64, cluster.NumDevices()),
		NetAccuracy:  make(map[hardware.DeviceID]float64, cluster.NumDevices()),
	}
	for _, dev := range cluster.Devices {
		am, aacc := fitAttn(est, dev.Spec, opts)
		p.Attn[dev.ID] = am
		p.AttnAccuracy[dev.ID] = aacc

		nm, nacc := fitNet(est, cluster.Link(primary, dev.ID), opts)
		p.Net[dev.ID] = nm
		p.NetAccuracy[dev.ID] = nacc
	}
	return p, nil
}

// fitAttn samples the ground-truth attention time on a grid and fits Eq. 3.
func fitAttn(est *perf.Estimator, spec hardware.GPUSpec, opts Options) (AttnModel, float64) {
	n := opts.GridPoints
	var feats [][3]float64
	var ys []float64
	for i := 1; i <= n; i++ {
		h := i * opts.MaxHeads / n
		for j := 1; j <= n; j++ {
			g := int64(j) * opts.MaxCacheBytes / int64(n)
			y := est.AttnDecodeTime(spec, h, g)
			feats = append(feats, [3]float64{float64(h), float64(g), 1})
			ys = append(ys, y)
		}
	}
	coef := leastSquares3(feats, ys)
	m := AttnModel{A: coef[0], B: coef[1], C: coef[2]}

	// Held-out accuracy: mid-grid points not used for fitting.
	var relErr float64
	var count int
	for i := 1; i < n; i++ {
		h := i*opts.MaxHeads/n + opts.MaxHeads/(2*n)
		g := int64(i)*opts.MaxCacheBytes/int64(n) + opts.MaxCacheBytes/int64(2*n)
		truth := est.AttnDecodeTime(spec, h, g)
		if truth <= 0 {
			continue
		}
		relErr += math.Abs(m.Predict(h, g)-truth) / truth
		count++
	}
	acc := 1.0
	if count > 0 {
		acc = 1 - relErr/float64(count)
	}
	return m, acc
}

// fitNet samples the link and fits Eq. 4. The volume grid covers the bytes
// implied by scattering 1..MaxHeads heads (Eq. 4's d = (2+2/r)·h model).
func fitNet(est *perf.Estimator, link hardware.LinkSpec, opts Options) (NetModel, float64) {
	n := opts.GridPoints
	var feats [][3]float64
	var ys []float64
	for i := 1; i <= n; i++ {
		h := i * opts.MaxHeads / n
		bytes := est.HeadScatterBytes(h)
		y := perf.P2PTime(link, bytes)
		feats = append(feats, [3]float64{float64(bytes), 1, 0})
		ys = append(ys, y)
	}
	coef := leastSquares3(feats, ys)
	m := NetModel{Gamma: coef[0], Beta: coef[1]}

	var relErr float64
	var count int
	for i := 1; i < n; i++ {
		h := i*opts.MaxHeads/n + opts.MaxHeads/(2*n)
		bytes := est.HeadScatterBytes(h)
		truth := perf.P2PTime(link, bytes)
		if truth <= 0 {
			continue
		}
		relErr += math.Abs(m.Predict(bytes)-truth) / truth
		count++
	}
	acc := 1.0
	if count > 0 {
		acc = 1 - relErr/float64(count)
	}
	return m, acc
}

// leastSquares3 fits y ≈ w₀f₀ + w₁f₁ + w₂f₂ by normal equations. Features
// that are identically zero get weight zero.
func leastSquares3(feats [][3]float64, ys []float64) [3]float64 {
	var xtx [3][3]float64
	var xty [3]float64
	for k, f := range feats {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				xtx[i][j] += f[i] * f[j]
			}
			xty[i] += f[i] * ys[k]
		}
	}
	// Detect dead columns to keep the system well-posed.
	live := [3]bool{}
	for i := 0; i < 3; i++ {
		live[i] = xtx[i][i] > 0
	}
	// Gaussian elimination with partial pivoting on the live submatrix.
	var idx []int
	for i := 0; i < 3; i++ {
		if live[i] {
			idx = append(idx, i)
		}
	}
	n := len(idx)
	a := make([][]float64, n)
	b := make([]float64, n)
	for r, i := range idx {
		a[r] = make([]float64, n)
		for c, j := range idx {
			a[r][c] = xtx[i][j]
		}
		b[r] = xty[i]
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-30 {
			continue
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var out [3]float64
	for r, i := range idx {
		if math.Abs(a[r][r]) > 1e-30 {
			out[i] = b[r] / a[r][r]
		}
	}
	return out
}

// Perturb returns a copy of the profile with every fitted parameter
// independently scaled by a factor drawn uniformly from [1−pct, 1+pct].
// It reproduces the robustness experiment of Fig. 16(b).
func (p *Profile) Perturb(pct float64, seed int64) *Profile {
	rng := rand.New(rand.NewSource(seed))
	scale := func(v float64) float64 {
		return v * (1 + (rng.Float64()*2-1)*pct)
	}
	out := &Profile{
		Model:        p.Model,
		Primary:      p.Primary,
		Attn:         make(map[hardware.DeviceID]AttnModel, len(p.Attn)),
		Net:          make(map[hardware.DeviceID]NetModel, len(p.Net)),
		AttnAccuracy: p.AttnAccuracy,
		NetAccuracy:  p.NetAccuracy,
	}
	// Deterministic iteration order: scan IDs upward.
	for id := hardware.DeviceID(0); int(id) < len(p.Attn)+len(p.Net); id++ {
		if m, ok := p.Attn[id]; ok {
			out.Attn[id] = AttnModel{A: scale(m.A), B: scale(m.B), C: scale(m.C)}
		}
		if m, ok := p.Net[id]; ok {
			out.Net[id] = NetModel{Gamma: scale(m.Gamma), Beta: scale(m.Beta)}
		}
	}
	return out
}

// PerturbParam scales a single named parameter ("a", "b", "c", "gamma",
// "beta") on every device by the given factor, leaving the rest intact.
// Used for the per-parameter sensitivity sweep of Fig. 16(b).
func (p *Profile) PerturbParam(param string, factor float64) (*Profile, error) {
	out := &Profile{
		Model:        p.Model,
		Primary:      p.Primary,
		Attn:         make(map[hardware.DeviceID]AttnModel, len(p.Attn)),
		Net:          make(map[hardware.DeviceID]NetModel, len(p.Net)),
		AttnAccuracy: p.AttnAccuracy,
		NetAccuracy:  p.NetAccuracy,
	}
	for id, m := range p.Attn {
		out.Attn[id] = m
	}
	for id, m := range p.Net {
		out.Net[id] = m
	}
	for id := range out.Attn {
		m := out.Attn[id]
		switch param {
		case "a":
			m.A *= factor
		case "b":
			m.B *= factor
		case "c":
			m.C *= factor
		case "gamma", "beta":
			// handled below
		default:
			return nil, fmt.Errorf("profile: unknown parameter %q", param)
		}
		out.Attn[id] = m
	}
	for id := range out.Net {
		m := out.Net[id]
		switch param {
		case "gamma":
			m.Gamma *= factor
		case "beta":
			m.Beta *= factor
		}
		out.Net[id] = m
	}
	return out, nil
}
