package profile

import (
	"math"
	"testing"

	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/perf"
)

func runDefault(t *testing.T) *Profile {
	t.Helper()
	est := perf.New(model.OPT30B)
	p, err := Run(est, hardware.PaperCluster(), 0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunCoversAllDevices(t *testing.T) {
	p := runDefault(t)
	c := hardware.PaperCluster()
	if len(p.Attn) != c.NumDevices() || len(p.Net) != c.NumDevices() {
		t.Fatalf("profile covers %d/%d devices, want %d", len(p.Attn), len(p.Net), c.NumDevices())
	}
}

func TestFitAccuracyMatchesPaper(t *testing.T) {
	// §7.4: computation prediction accuracy up to 93.8%, network accuracy
	// 92.4-96.1%. Our ground truth is mildly nonlinear, so the linear fit
	// must land in the same bracket: >= 90% on every device.
	p := runDefault(t)
	for id, acc := range p.AttnAccuracy {
		t.Logf("device %d attention fit accuracy %.1f%%", id, acc*100)
		if acc < 0.90 {
			t.Errorf("device %d attention accuracy %.3f < 0.90", id, acc)
		}
	}
	for id, acc := range p.NetAccuracy {
		if acc < 0.92 {
			t.Errorf("device %d network accuracy %.3f < 0.92", id, acc)
		}
	}
}

func TestFittedSignsAndMagnitudes(t *testing.T) {
	p := runDefault(t)
	for id, m := range p.Attn {
		if m.A <= 0 || m.B <= 0 {
			t.Errorf("device %d: non-positive slopes a=%g b=%g", id, m.A, m.B)
		}
		// Per-head cost should be nanoseconds-to-microseconds; per-byte
		// cost should be around 1/bandwidth.
		if m.A > 1e-3 {
			t.Errorf("device %d: per-head cost %g unreasonably large", id, m.A)
		}
		if m.B > 1e-7 {
			t.Errorf("device %d: per-byte cost %g unreasonably large", id, m.B)
		}
	}
}

func TestSlowDevicesCostMore(t *testing.T) {
	p := runDefault(t)
	c := hardware.PaperCluster()
	var a100, p100 AttnModel
	for _, d := range c.Devices {
		switch d.Spec.Name {
		case "A100":
			a100 = p.Attn[d.ID]
		case "P100":
			p100 = p.Attn[d.ID]
		}
	}
	if p100.B <= a100.B {
		t.Errorf("P100 per-byte attention cost (%g) should exceed A100's (%g)", p100.B, a100.B)
	}
	if p100.A <= a100.A {
		t.Errorf("P100 per-head attention cost (%g) should exceed A100's (%g)", p100.A, a100.A)
	}
}

func TestNetModelDistinguishesLocality(t *testing.T) {
	// Devices sharing the primary's host see PCIe; remote ones see LAN
	// latency. The fitted Beta (fixed cost) must reflect that.
	p := runDefault(t)
	c := hardware.PaperCluster()
	local := p.Net[1]   // A100 on same host as primary (device 0)
	remote := p.Net[11] // P100 on another host
	if remote.Beta <= local.Beta {
		t.Errorf("remote link fixed cost (%g) should exceed local (%g)", remote.Beta, local.Beta)
	}
	_ = c
}

func TestPredictZeroLoad(t *testing.T) {
	m := AttnModel{A: 1e-6, B: 1e-9, C: 1e-4}
	if got := m.Predict(0, 100); got != 0 {
		t.Errorf("zero heads should predict 0, got %g", got)
	}
	n := NetModel{Gamma: 1e-9, Beta: 1e-5}
	if got := n.Predict(0); got != 0 {
		t.Errorf("zero bytes should predict 0, got %g", got)
	}
}

func TestPerturbBounded(t *testing.T) {
	p := runDefault(t)
	q := p.Perturb(0.2, 1)
	for id, m := range p.Attn {
		pm := q.Attn[id]
		for _, pair := range [][2]float64{{m.A, pm.A}, {m.B, pm.B}, {m.C, pm.C}} {
			if pair[0] == 0 {
				continue
			}
			ratio := pair[1] / pair[0]
			if ratio < 0.8-1e-9 || ratio > 1.2+1e-9 {
				t.Fatalf("device %d: perturbation ratio %g outside ±20%%", id, ratio)
			}
		}
	}
	// Determinism: same seed, same result.
	q2 := p.Perturb(0.2, 1)
	for id := range q.Attn {
		if q.Attn[id] != q2.Attn[id] {
			t.Fatal("Perturb not deterministic for equal seeds")
		}
	}
	// Different seeds should differ.
	q3 := p.Perturb(0.2, 2)
	same := true
	for id := range q.Attn {
		if q.Attn[id] != q3.Attn[id] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical perturbations")
	}
}

func TestPerturbParam(t *testing.T) {
	p := runDefault(t)
	q, err := p.PerturbParam("a", 1.2)
	if err != nil {
		t.Fatal(err)
	}
	for id, m := range p.Attn {
		pm := q.Attn[id]
		if math.Abs(pm.A/m.A-1.2) > 1e-9 {
			t.Fatalf("device %d: a not scaled: %g vs %g", id, pm.A, m.A)
		}
		if pm.B != m.B || pm.C != m.C {
			t.Fatalf("device %d: b/c should be untouched", id)
		}
	}
	g, err := p.PerturbParam("gamma", 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for id, m := range p.Net {
		if math.Abs(g.Net[id].Gamma/m.Gamma-0.8) > 1e-9 {
			t.Fatalf("device %d: gamma not scaled", id)
		}
	}
	if _, err := p.PerturbParam("zeta", 1.1); err == nil {
		t.Fatal("unknown parameter should error")
	}
}

func TestRunOptionValidation(t *testing.T) {
	est := perf.New(model.OPT30B)
	c := hardware.PaperCluster()
	if _, err := Run(est, c, 0, Options{GridPoints: 1, MaxHeads: 10, MaxCacheBytes: 10}); err == nil {
		t.Error("GridPoints=1 should fail")
	}
	if _, err := Run(est, c, 0, Options{GridPoints: 8, MaxHeads: 2, MaxCacheBytes: 1000}); err == nil {
		t.Error("tiny range should fail")
	}
}

func TestLeastSquaresRecoversExactLinear(t *testing.T) {
	// If the ground truth is exactly linear the fit must recover it.
	var feats [][3]float64
	var ys []float64
	a, b, c := 2.5, -1.0, 4.0
	for i := 1; i <= 5; i++ {
		for j := 1; j <= 5; j++ {
			f := [3]float64{float64(i), float64(j), 1}
			feats = append(feats, f)
			ys = append(ys, a*f[0]+b*f[1]+c*f[2])
		}
	}
	got := leastSquares3(feats, ys)
	for k, want := range []float64{a, b, c} {
		if math.Abs(got[k]-want) > 1e-9 {
			t.Fatalf("coef %d = %g want %g", k, got[k], want)
		}
	}
}

func TestLeastSquaresDeadColumn(t *testing.T) {
	// Third feature identically zero: its weight must be zero and the rest
	// still fit.
	var feats [][3]float64
	var ys []float64
	for i := 1; i <= 10; i++ {
		f := [3]float64{float64(i), 1, 0}
		feats = append(feats, f)
		ys = append(ys, 3*f[0]+7)
	}
	got := leastSquares3(feats, ys)
	if math.Abs(got[0]-3) > 1e-9 || math.Abs(got[1]-7) > 1e-9 || got[2] != 0 {
		t.Fatalf("got %v want [3 7 0]", got)
	}
}
