package perf

import (
	"math"
	"testing"

	"hetis/internal/hardware"
	"hetis/internal/model"
)

// Table1Scenario reproduces the setting of the paper's Table 1: OPT-2.7B,
// a prefill batch of 3 requests and a decode batch of 25 requests. The
// paper does not state the prompt/context lengths; we use ShareGPT-typical
// values (512-token prompts, ~200-token decode contexts), which reproduce
// the published ratios.
const (
	table1PromptLen = 512
	table1DecodeCtx = 200
	table1Prefills  = 3
	table1Decodes   = 25
)

// table1Times returns (prefill, decode) full-model iteration times on spec.
func table1Times(spec hardware.GPUSpec) (prefill, decode float64) {
	e := New(model.OPT27B)
	cfg := model.OPT27B
	prompts := make([]int, table1Prefills)
	for i := range prompts {
		prompts[i] = table1PromptLen
	}
	prefill = e.PrefillStepTime(spec, prompts, cfg.Layers, 1)

	decode = e.DecodeStepDenseTime(spec, table1Decodes, cfg.Layers, 1)
	heads := table1Decodes * cfg.Heads
	cache := e.CacheBytesPerLayer(cfg.Heads, table1DecodeCtx) * table1Decodes
	decode += float64(cfg.Layers) * e.AttnDecodeTime(spec, heads, cache)
	return prefill, decode
}

func TestTable1AbsoluteTimes(t *testing.T) {
	// Paper values: prefill 0.06 / 0.147 / 1.47 s; decode 0.0097 / 0.0143 /
	// 0.077 s for A100 / 3090 / P100. We require agreement within 35%
	// absolute (the simulator is calibrated on ratios, not absolutes).
	cases := []struct {
		spec                    hardware.GPUSpec
		wantPrefill, wantDecode float64
		tolPrefill, tolDecode   float64
	}{
		{hardware.A100, 0.060, 0.0097, 0.35, 0.35},
		{hardware.RTX3090, 0.147, 0.0143, 0.35, 0.35},
		{hardware.P100, 1.47, 0.077, 0.35, 0.35},
	}
	for _, tc := range cases {
		p, d := table1Times(tc.spec)
		t.Logf("%s: prefill=%.4fs (paper %.4f)  decode=%.5fs (paper %.5f)",
			tc.spec.Name, p, tc.wantPrefill, d, tc.wantDecode)
		if rel := math.Abs(p-tc.wantPrefill) / tc.wantPrefill; rel > tc.tolPrefill {
			t.Errorf("%s prefill %.4fs deviates %.0f%% from paper %.4fs", tc.spec.Name, p, rel*100, tc.wantPrefill)
		}
		if rel := math.Abs(d-tc.wantDecode) / tc.wantDecode; rel > tc.tolDecode {
			t.Errorf("%s decode %.5fs deviates %.0f%% from paper %.5fs", tc.spec.Name, d, rel*100, tc.wantDecode)
		}
	}
}

func TestTable1Ratios(t *testing.T) {
	// The ratios are what the scheduler sees; they must match closely.
	// Paper: prefill A100 is 2.45x faster than 3090 and 24.5x faster than
	// P100; decode 1.47x and 7.93x.
	pA, dA := table1Times(hardware.A100)
	p3, d3 := table1Times(hardware.RTX3090)
	pP, dP := table1Times(hardware.P100)

	check := func(name string, got, want, tol float64) {
		t.Helper()
		t.Logf("%s: got %.2fx want %.2fx", name, got, want)
		if math.Abs(got-want)/want > tol {
			t.Errorf("%s ratio %.2f deviates from paper %.2f beyond %.0f%%", name, got, want, tol*100)
		}
	}
	check("prefill A100/3090", p3/pA, 2.45, 0.25)
	check("prefill A100/P100", pP/pA, 24.5, 0.25)
	check("decode A100/3090", d3/dA, 1.47, 0.25)
	check("decode A100/P100", dP/dA, 7.93, 0.25)
}
