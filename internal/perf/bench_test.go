package perf

import (
	"testing"

	"hetis/internal/hardware"
	"hetis/internal/model"
)

// BenchmarkDenseLayerTime measures the hot path of every engine iteration.
func BenchmarkDenseLayerTime(b *testing.B) {
	e := New(model.Llama70B)
	for i := 0; i < b.N; i++ {
		_ = e.DenseLayerTime(hardware.A100, 64, 4)
	}
}

// BenchmarkAttnDecodeTime measures the ground-truth attention model.
func BenchmarkAttnDecodeTime(b *testing.B) {
	e := New(model.Llama70B)
	for i := 0; i < b.N; i++ {
		_ = e.AttnDecodeTime(hardware.P100, 2048, 1<<30)
	}
}

// BenchmarkPrefillStepTime measures a full prefill estimate.
func BenchmarkPrefillStepTime(b *testing.B) {
	e := New(model.Llama13B)
	prompts := []int{512, 900, 300, 1400}
	for i := 0; i < b.N; i++ {
		_ = e.PrefillStepTime(hardware.A100, prompts, 40, 4)
	}
}
