// Package perf is the ground-truth analytic cost model of the simulated
// cluster: given a GPU spec, a model architecture and a batch description it
// predicts how long each LLM module takes, and how long tensors take to move
// between devices. Every scheduling layer above (Profiler, Parallelizer,
// Dispatcher, engines) consumes times produced here.
//
// The model is roofline-shaped: a module costs
//
//	max(FLOPs / effFLOPS(rows), bytes / effBandwidth) + kernels·launchOverhead
//
// where effFLOPS saturates with the number of matmul rows (small decode
// batches underutilize wide GPUs, and old architectures need many rows to
// reach peak). Constants were calibrated against Table 1 of the paper
// (OPT-2.7B iteration times on A100 / RTX 3090 / P100); the calibration test
// lives in table1_test.go.
package perf

import (
	"fmt"
	"math"

	"hetis/internal/hardware"
	"hetis/internal/model"
)

// kernel-count constants: how many kernel-launch rounds each module costs
// per layer. They scale the fixed overhead term that dominates small decode
// batches, especially on old GPUs.
const (
	kernelsQKV   = 1.5 // fused QKV + rotary/norm epilogue
	kernelsAttn  = 1.0 // fused paged attention (cache store included)
	kernelsProj  = 1.0
	kernelsMLP   = 2.5 // two or three matmuls + activation
	kernelsDense = kernelsQKV + kernelsProj + kernelsMLP
)

// satRows is the matmul row count at which a GPU reaches half of its dense
// efficiency. Modern tensor-core parts saturate quickly; the P100 needs far
// more rows, which is what makes its small-batch dense decode
// disproportionately slow (Fig. 2a of the paper).
func satRows(spec hardware.GPUSpec) float64 {
	switch {
	case spec.Tier >= 60: // A100, H100
		return 8
	case spec.Tier >= 35: // 3090, A40, V100, L4
		return 12
	case spec.Tier >= 20: // T4
		return 18
	default: // P100 and older
		return 24
	}
}

// effFLOPS is the achievable FLOP/s on a matmul with the given number of
// rows (tokens in the batch).
func effFLOPS(spec hardware.GPUSpec, rows float64) float64 {
	if rows <= 0 {
		rows = 1
	}
	sat := satRows(spec)
	return spec.EffFLOPS() * rows / (rows + sat)
}

// Estimator predicts module times for one model on arbitrary devices.
type Estimator struct {
	cfg model.Config
}

// New returns an estimator for the model configuration.
func New(cfg model.Config) *Estimator {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("perf: invalid model: %v", err))
	}
	return &Estimator{cfg: cfg}
}

// Config returns the model the estimator was built for.
func (e *Estimator) Config() model.Config { return e.cfg }

// roofline combines compute and memory cost with fixed kernel overhead.
func roofline(spec hardware.GPUSpec, flops float64, bytes float64, rows float64, kernels float64) float64 {
	comp := flops / effFLOPS(spec, rows)
	mem := bytes / spec.EffBandwidth()
	return math.Max(comp, mem) + kernels*spec.LaunchOverhead
}

// DenseLayerTime is the time for the parameter-carrying modules (QKV
// projection, output projection, MLP) of ONE layer processing tokens rows,
// with the layer's weights sharded tp ways (tensor parallelism divides both
// FLOPs and weight traffic). Weight bytes are charged because at decode
// batch sizes dense modules are weight-bandwidth-bound.
func (e *Estimator) DenseLayerTime(spec hardware.GPUSpec, tokens int, tp int) float64 {
	if tokens <= 0 {
		return 0
	}
	if tp < 1 {
		tp = 1
	}
	t := float64(tokens)
	flops := t * e.cfg.DenseFlopsPerToken() / float64(tp)
	weightBytes := float64(e.cfg.LayerWeightBytes()) / float64(tp)
	actBytes := float64(e.cfg.HiddenStateBytes(tokens)) * 4 // read/write around each module
	return roofline(spec, flops, weightBytes+actBytes, t, kernelsDense)
}

// DenseIterTime is DenseLayerTime summed over layers.
func (e *Estimator) DenseIterTime(spec hardware.GPUSpec, tokens, layers, tp int) float64 {
	return float64(layers) * e.DenseLayerTime(spec, tokens, tp)
}

// LMHeadTime is the final vocabulary projection for tokens rows, sharded tp
// ways. Only the last pipeline stage pays it.
func (e *Estimator) LMHeadTime(spec hardware.GPUSpec, tokens, tp int) float64 {
	if tokens <= 0 {
		return 0
	}
	t := float64(tokens)
	flops := 2 * t * float64(e.cfg.Hidden) * float64(e.cfg.Vocab) / float64(tp)
	bytes := float64(e.cfg.Hidden) * float64(e.cfg.Vocab) * float64(e.cfg.BytesPerParam) / float64(tp)
	return roofline(spec, flops, bytes, t, 1)
}

// AttnPrefillLayerTime is the attention-score computation of one layer for a
// set of prompts being prefilled together, with heads sharded tp ways.
// Prefill attention is compute-bound (quadratic in prompt length).
func (e *Estimator) AttnPrefillLayerTime(spec hardware.GPUSpec, promptLens []int, tp int) float64 {
	if len(promptLens) == 0 {
		return 0
	}
	if tp < 1 {
		tp = 1
	}
	var flops float64
	var rows float64
	var kvBytes float64
	for _, l := range promptLens {
		flops += e.cfg.AttnFlopsPrefill(l)
		rows += float64(l)
		kvBytes += float64(l) * float64(e.cfg.KVBytesPerTokenLayer())
	}
	flops /= float64(tp)
	kvBytes /= float64(tp)
	return roofline(spec, flops, kvBytes, rows, kernelsAttn)
}

// AttnDecodeTime is the ground truth for the quantity the paper models as
// τᵢ(t) = aᵢ·hᵢ(t) + bᵢ·gᵢ(t) + cᵢ (Eq. 3): the per-layer decode-attention
// time on a device computing `heads` query heads whose footprint on the
// device is cacheBytes of K/V for that layer.
//
// The decode attention kernel is memory-bound (it streams the KV cache from
// HBM once) with a per-head scheduling cost and a fixed launch cost. A mild
// bandwidth-saturation term makes the ground truth not exactly linear, so
// the Profiler's linear fit is an approximation, as it is on real hardware.
func (e *Estimator) AttnDecodeTime(spec hardware.GPUSpec, heads int, cacheBytes int64) float64 {
	if heads <= 0 || cacheBytes <= 0 {
		return 0
	}
	h := float64(heads)
	g := float64(cacheBytes)

	// Per-head issue cost: each query head is a separate block of work for
	// the paged-attention kernel (q·Kᵀ GEMV setup, softmax, A·V). Scaled
	// off the launch overhead so older parts pay proportionally more;
	// ≈25 ns per head on A100-class GPUs, matching the slope of Fig. 7(c).
	perHead := spec.LaunchOverhead * 1e-3
	issue := h * perHead

	// Cache streaming, with saturation: small transfers do not reach full
	// HBM bandwidth. Saturation half-point at 8 MB.
	const halfSat = 8 << 20
	bw := spec.EffBandwidth() * g / (g + halfSat)
	stream := g / bw

	// Head-contention term: beyond the SM count, heads queue behind each
	// other; modelled as a soft quadratic with a large scale so the ground
	// truth stays near-linear (Fig. 7(c)) yet not exactly linear.
	contention := issue * h / 16384

	return issue + stream + contention + kernelsAttn*spec.LaunchOverhead
}

// AttnDecodeTimeForRequests is a convenience over AttnDecodeTime for a set
// of (heads, contextLen) pairs decoded together on one device in one layer.
func (e *Estimator) AttnDecodeTimeForRequests(spec hardware.GPUSpec, reqs []AttnLoad) float64 {
	var heads int
	var bytes int64
	for _, r := range reqs {
		heads += r.Heads
		bytes += e.CacheBytesPerLayer(r.Heads, r.ContextLen)
	}
	return e.AttnDecodeTime(spec, heads, bytes)
}

// AttnLoad is one request's attention share on a device: the number of its
// query heads placed there and the request's current context length.
type AttnLoad struct {
	Heads      int
	ContextLen int
}

// CacheBytesPerLayer is the single-layer KV footprint of `heads` query
// heads over ctxLen tokens. Grouped query heads (GQA) share one KV head's
// cache, so the footprint scales with ceil(heads/r).
func (e *Estimator) CacheBytesPerLayer(heads, ctxLen int) int64 {
	r := e.cfg.GroupRatio()
	groups := (heads + r - 1) / r
	return int64(groups) * int64(ctxLen) * e.cfg.KVBytesPerTokenHeadGroup()
}

// --- Communication ----------------------------------------------------------

// P2PTime is a point-to-point transfer over the link.
func P2PTime(link hardware.LinkSpec, bytes int64) float64 {
	return link.TransferTime(bytes)
}

// AllReduceTime models a ring all-reduce of n bytes among p participants
// over the given link: 2·(p−1) steps each moving n/p bytes.
func AllReduceTime(link hardware.LinkSpec, bytes int64, p int) float64 {
	if p <= 1 || bytes <= 0 {
		return 0
	}
	steps := 2 * (p - 1)
	chunk := float64(bytes) / float64(p)
	return float64(steps) * (link.Alpha + chunk/link.Beta)
}

// AllGatherTime models a ring all-gather of n total bytes among p
// participants: (p−1) steps each moving n/p bytes.
func AllGatherTime(link hardware.LinkSpec, bytes int64, p int) float64 {
	if p <= 1 || bytes <= 0 {
		return 0
	}
	steps := p - 1
	chunk := float64(bytes) / float64(p)
	return float64(steps) * (link.Alpha + chunk/link.Beta)
}

// HeadScatterBytes is the per-token traffic of offloading `heads` query
// heads to a remote attention worker, following Eq. 4's volume model
// d = (2 + 2/r)·h: the q vector and attention result (one head each) plus
// the K and V vectors shared across the r heads of a group.
func (e *Estimator) HeadScatterBytes(heads int) int64 {
	r := float64(e.cfg.GroupRatio())
	perHead := (2 + 2/r) * float64(e.cfg.QHeadBytes())
	return int64(perHead * float64(heads))
}

// SeqScatterBytes is the per-token traffic of sequence-wise attention
// splitting for comparison (Fig. 5): the full q vector of every request
// chunk must reach each worker holding part of the sequence, and the full
// partial attention value plus softmax statistics come back.
func (e *Estimator) SeqScatterBytes() int64 {
	// q out (all H heads) + partial result back (all H heads) + per-head
	// softmax max/sum statistics (2 floats per head, negligible but
	// included).
	full := 2 * int64(e.cfg.Heads) * int64(e.cfg.QHeadBytes())
	stats := int64(e.cfg.Heads) * 2 * 4
	return full + stats
}

// DecodeStepDenseTime is a convenience: full dense time of a decode step of
// `tokens` sequences over `layers` layers plus the LM head (applied once).
func (e *Estimator) DecodeStepDenseTime(spec hardware.GPUSpec, tokens, layers, tp int) float64 {
	return e.DenseIterTime(spec, tokens, layers, tp) + e.LMHeadTime(spec, tokens, tp)
}

// PrefillStepTime is the full single-device time to prefill prompts with
// the given lengths over `layers` layers: dense modules plus prompt
// attention plus the LM head for the last token of each prompt.
func (e *Estimator) PrefillStepTime(spec hardware.GPUSpec, promptLens []int, layers, tp int) float64 {
	if len(promptLens) == 0 {
		return 0
	}
	total := 0
	for _, l := range promptLens {
		total += l
	}
	dense := e.DenseIterTime(spec, total, layers, tp)
	attn := float64(layers) * e.AttnPrefillLayerTime(spec, promptLens, tp)
	lm := e.LMHeadTime(spec, len(promptLens), tp)
	return dense + attn + lm
}
