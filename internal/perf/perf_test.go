package perf

import (
	"math"
	"testing"
	"testing/quick"

	"hetis/internal/hardware"
	"hetis/internal/model"
)

func TestDenseLayerTimeBasics(t *testing.T) {
	e := New(model.OPT27B)
	if got := e.DenseLayerTime(hardware.A100, 0, 1); got != 0 {
		t.Errorf("zero tokens should cost 0, got %g", got)
	}
	t1 := e.DenseLayerTime(hardware.A100, 100, 1)
	t2 := e.DenseLayerTime(hardware.A100, 200, 1)
	if t2 <= t1 {
		t.Errorf("dense time should grow with tokens: %g vs %g", t1, t2)
	}
	// TP divides the work; with saturation and fixed overheads the speedup
	// is sublinear but must be a speedup.
	tp2 := e.DenseLayerTime(hardware.A100, 4096, 2)
	full := e.DenseLayerTime(hardware.A100, 4096, 1)
	if tp2 >= full {
		t.Errorf("tp=2 should be faster at large batch: %g vs %g", tp2, full)
	}
	if tp2 < full/2.5 {
		t.Errorf("tp=2 speedup unrealistically superlinear: %g vs %g", tp2, full)
	}
}

func TestDenseIterTimeScalesWithLayers(t *testing.T) {
	e := New(model.OPT27B)
	one := e.DenseIterTime(hardware.A100, 32, 1, 1)
	ten := e.DenseIterTime(hardware.A100, 32, 10, 1)
	if math.Abs(ten-10*one) > 1e-12 {
		t.Errorf("iter time not linear in layers: %g vs %g", ten, 10*one)
	}
}

func TestDecodeIsWeightBandwidthBound(t *testing.T) {
	// At decode batch sizes, dense module time on an A100 should track the
	// weight-read time, not the FLOP time.
	e := New(model.OPT27B)
	cfg := model.OPT27B
	got := e.DenseLayerTime(hardware.A100, 8, 1)
	weightRead := float64(cfg.LayerWeightBytes()) / hardware.A100.EffBandwidth()
	if got < weightRead {
		t.Errorf("decode layer time %g below weight-read floor %g", got, weightRead)
	}
	if got > 5*weightRead {
		t.Errorf("decode layer time %g far above weight-read floor %g", got, weightRead)
	}
}

func TestAttnDecodeTimeLinearity(t *testing.T) {
	// Fig. 7: attention time should be (near-)linear in the number of
	// heads at fixed cache, and in the cache size at fixed heads.
	e := New(model.OPT30B)
	const mb = int64(1) << 20
	base := e.AttnDecodeTime(hardware.A100, 1000, 512*mb)
	dblHeads := e.AttnDecodeTime(hardware.A100, 2000, 512*mb)
	dblCache := e.AttnDecodeTime(hardware.A100, 1000, 1024*mb)
	if dblHeads <= base || dblCache <= base {
		t.Fatalf("attention time must increase with heads and cache: %g %g %g", base, dblHeads, dblCache)
	}
	// Marginal cost of heads should be near-constant (linearity): compare
	// slope on [1000,2000] vs [2000,3000].
	s1 := dblHeads - base
	s2 := e.AttnDecodeTime(hardware.A100, 3000, 512*mb) - dblHeads
	if math.Abs(s2-s1)/s1 > 0.25 {
		t.Errorf("head slope not near-linear: %g vs %g", s1, s2)
	}
}

func TestAttnDecodeBatchInvariance(t *testing.T) {
	// Fig. 7(a): with total heads and cache fixed, the number of requests
	// they are split across must not matter. Our ground truth only sees
	// (heads, bytes), so this is exact.
	e := New(model.OPT30B)
	few := []AttnLoad{{Heads: 560, ContextLen: 1000}}
	many := make([]AttnLoad, 10)
	for i := range many {
		many[i] = AttnLoad{Heads: 56, ContextLen: 1000}
	}
	a := e.AttnDecodeTimeForRequests(hardware.A100, few)
	b := e.AttnDecodeTimeForRequests(hardware.A100, many)
	if math.Abs(a-b)/a > 1e-9 {
		t.Errorf("attention time should depend only on totals: %g vs %g", a, b)
	}
}

func TestAttnGapSmallerThanDenseGap(t *testing.T) {
	// §2.3/Fig. 2: the A100-P100 performance gap is far larger for MLP
	// (dense) than for Attention. This asymmetry is what Hetis exploits.
	e := New(model.Llama70B)
	tokens := 400
	denseA := e.DenseLayerTime(hardware.A100, tokens, 1)
	denseP := e.DenseLayerTime(hardware.P100, tokens, 1)
	heads := tokens * model.Llama70B.Heads
	cache := e.CacheBytesPerLayer(model.Llama70B.Heads, 1000) * int64(tokens)
	attnA := e.AttnDecodeTime(hardware.A100, heads, cache)
	attnP := e.AttnDecodeTime(hardware.P100, heads, cache)

	denseGap := denseP / denseA
	attnGap := attnP / attnA
	t.Logf("dense gap %.1fx, attention gap %.1fx", denseGap, attnGap)
	if denseGap < 10 {
		t.Errorf("dense gap %.1fx too small; paper reports up to 40x", denseGap)
	}
	if attnGap > 6 {
		t.Errorf("attention gap %.1fx too large; paper reports <5x", attnGap)
	}
	if denseGap < 3*attnGap {
		t.Errorf("dense gap (%.1fx) should far exceed attention gap (%.1fx)", denseGap, attnGap)
	}
}

func TestCacheBytesPerLayerGQA(t *testing.T) {
	e := New(model.Llama70B) // r=8
	// 8 heads = 1 group; 9 heads = 2 groups.
	b8 := e.CacheBytesPerLayer(8, 100)
	b9 := e.CacheBytesPerLayer(9, 100)
	b16 := e.CacheBytesPerLayer(16, 100)
	if b9 != b16 {
		t.Errorf("9 heads should round up to 2 groups: %d vs %d", b9, b16)
	}
	if b16 != 2*b8 {
		t.Errorf("16 heads should cost twice 8 heads: %d vs %d", b16, b8)
	}
}

func TestCollectives(t *testing.T) {
	link := hardware.LAN100G
	if got := AllReduceTime(link, 1<<20, 1); got != 0 {
		t.Errorf("allreduce with 1 participant costs 0, got %g", got)
	}
	t2 := AllReduceTime(link, 1<<20, 2)
	t4 := AllReduceTime(link, 1<<20, 4)
	if t2 <= 0 || t4 <= 0 {
		t.Fatal("allreduce must cost > 0 for p > 1")
	}
	// Ring all-reduce asymptotically moves 2 bytes per byte of payload
	// regardless of p; with alpha terms t4 > t2 slightly.
	if t4 < t2 {
		t.Errorf("allreduce with more participants cannot be cheaper: %g vs %g", t4, t2)
	}
	if ag := AllGatherTime(link, 1<<20, 4); ag >= t4 {
		t.Errorf("allgather (%g) should cost less than allreduce (%g)", ag, t4)
	}
}

func TestHeadScatterBytes(t *testing.T) {
	// MHA (r=1): (2 + 2)·headDim·2B per head.
	e := New(model.OPT30B)
	hd := int64(model.OPT30B.HeadDim())
	want := 4 * hd * 2
	if got := e.HeadScatterBytes(1); got != want {
		t.Errorf("MHA scatter bytes per head = %d want %d", got, want)
	}
	// GQA (r=8): (2 + 0.25)·headDim·2B per head.
	g := New(model.Llama70B)
	hd = int64(model.Llama70B.HeadDim())
	want = int64(2.25 * float64(hd) * 2)
	if got := g.HeadScatterBytes(1); got != want {
		t.Errorf("GQA scatter bytes per head = %d want %d", got, want)
	}
}

func TestHeadWiseBeatsSeqWiseTraffic(t *testing.T) {
	// The core of Fig. 5: offloading 20% of heads moves far less data than
	// sequence-splitting, which ships the full q vector and result.
	e := New(model.Llama70B)
	offloaded := model.Llama70B.Heads / 5
	headWise := e.HeadScatterBytes(offloaded)
	seqWise := e.SeqScatterBytes()
	ratio := float64(seqWise) / float64(headWise)
	t.Logf("seq-wise/head-wise traffic ratio at 20%% offload: %.2fx", ratio)
	if ratio < 2 {
		t.Errorf("head-wise should cut traffic by >2x at 20%% offload, got %.2fx", ratio)
	}
}

func TestPrefillStepTime(t *testing.T) {
	e := New(model.Llama13B)
	if got := e.PrefillStepTime(hardware.A100, nil, 40, 1); got != 0 {
		t.Errorf("empty prefill should cost 0, got %g", got)
	}
	short := e.PrefillStepTime(hardware.A100, []int{128}, 40, 1)
	long := e.PrefillStepTime(hardware.A100, []int{2048}, 40, 1)
	if long <= short {
		t.Errorf("longer prompt must cost more: %g vs %g", short, long)
	}
}

func TestPropertyMonotoneInTokens(t *testing.T) {
	e := New(model.OPT27B)
	f := func(a, b uint16) bool {
		x, y := int(a)%4096+1, int(b)%4096+1
		if x > y {
			x, y = y, x
		}
		return e.DenseLayerTime(hardware.RTX3090, x, 1) <= e.DenseLayerTime(hardware.RTX3090, y, 1)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAttnMonotone(t *testing.T) {
	e := New(model.Llama70B)
	f := func(h1, h2 uint16, g1, g2 uint32) bool {
		ha, hb := int(h1)%5000+1, int(h2)%5000+1
		ga, gb := int64(g1)%(1<<30)+1, int64(g2)%(1<<30)+1
		if ha > hb {
			ha, hb = hb, ha
		}
		if ga > gb {
			ga, gb = gb, ga
		}
		return e.AttnDecodeTime(hardware.P100, ha, ga) <= e.AttnDecodeTime(hardware.P100, hb, gb)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnInvalidModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid model config")
		}
	}()
	bad := model.OPT27B
	bad.Layers = 0
	New(bad)
}
