package dispatch

import (
	"testing"

	"hetis/internal/model"
)

func TestGreedyPolicyBasics(t *testing.T) {
	d := newDispatcher(t, model.OPT30B, testWorkers(1e12, 1e12))
	if d.Policy() != PolicyLP {
		t.Fatalf("default policy = %v want lp", d.Policy())
	}
	d.SetPolicy(PolicyGreedy)
	if d.Policy() != PolicyGreedy || d.Policy().String() != "greedy" {
		t.Fatalf("policy switch broken: %v", d.Policy())
	}
	if PolicyLP.String() != "lp" || Policy(99).String() != "unknown" {
		t.Fatal("policy strings wrong")
	}
}

func TestGreedyConservesHeads(t *testing.T) {
	for _, cfg := range []model.Config{model.OPT30B, model.Llama70B} {
		d := newDispatcher(t, cfg, testWorkers(1e12, 1e12, 1e12))
		d.SetPolicy(PolicyGreedy)
		got, err := d.Dispatch([]NewRequest{
			{ID: 1, ContextLen: 1000},
			{ID: 2, ContextLen: 3000},
		})
		if err != nil {
			t.Fatal(err)
		}
		r := cfg.GroupRatio()
		for id, x := range got {
			sum := 0
			for _, h := range x {
				if h%r != 0 {
					t.Errorf("%s req %d: heads %d not group-aligned", cfg.Name, id, h)
				}
				sum += h
			}
			if sum != cfg.Heads {
				t.Errorf("%s req %d: placed %d heads want %d", cfg.Name, id, sum, cfg.Heads)
			}
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGreedyRespectsCapacity(t *testing.T) {
	cfg := model.Llama13B
	perHeadToken := float64(cfg.KVBytesPerTokenHeadGroup())
	primCap := 4 * 1000 * perHeadToken // room for 4 heads of a 1000-token req
	d := newDispatcher(t, cfg, testWorkers(primCap, 1e12))
	d.SetPolicy(PolicyGreedy)
	got, err := d.Dispatch([]NewRequest{{ID: 1, ContextLen: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if got[1][0] > 4 {
		t.Errorf("greedy put %d heads on a 4-head-capacity primary", got[1][0])
	}
}

func TestGreedyFailsCleanlyWhenFull(t *testing.T) {
	d := newDispatcher(t, model.Llama13B, testWorkers(100, 100))
	d.SetPolicy(PolicyGreedy)
	if _, err := d.Dispatch([]NewRequest{{ID: 1, ContextLen: 100000}}); err == nil {
		t.Fatal("oversized request should fail")
	}
	if d.AttnStepTime() != 0 {
		t.Fatal("failed greedy dispatch left residue")
	}
}

func TestGreedyVsLPQuality(t *testing.T) {
	// On a symmetric instance both policies should land within a small
	// factor of each other for the resulting max attention time.
	build := func(p Policy) *Dispatcher {
		d := newDispatcher(t, model.Llama13B, testWorkers(1e12, 1e12, 1e12))
		d.SetPolicy(p)
		var reqs []NewRequest
		for i := 0; i < 24; i++ {
			reqs = append(reqs, NewRequest{ID: int64(i), ContextLen: 1000 + 200*(i%5)})
		}
		if _, err := d.Dispatch(reqs); err != nil {
			t.Fatal(err)
		}
		return d
	}
	lp := build(PolicyLP).AttnStepTime()
	gr := build(PolicyGreedy).AttnStepTime()
	t.Logf("max attention time: lp %.3gs greedy %.3gs", lp, gr)
	if gr < lp*0.99 {
		t.Errorf("greedy (%g) beat the LP (%g) — LP should be optimal up to rounding", gr, lp)
	}
	if gr > lp*1.5 {
		t.Errorf("greedy (%g) more than 1.5x worse than LP (%g)", gr, lp)
	}
}

func TestRebalanceComputeRespectsFrozen(t *testing.T) {
	d := newDispatcher(t, model.Llama13B, testWorkers(1e12, 1e12, 1e12))
	if _, err := d.Dispatch([]NewRequest{{ID: 1, ContextLen: 200}}); err != nil {
		t.Fatal(err)
	}
	var reqs []NewRequest
	for i := 2; i < 20; i++ {
		reqs = append(reqs, NewRequest{ID: int64(i), ContextLen: 500})
	}
	if _, err := d.Dispatch(reqs); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ExtendContext(1, 30000); err != nil {
		t.Fatal(err)
	}
	// With request 1 frozen, the re-dispatcher must not touch it even
	// though it is the dominant contributor.
	rd, err := d.RebalanceCompute(0.5, map[RequestID]bool{1: true})
	if err != nil {
		t.Fatal(err)
	}
	if rd != nil && rd.Request == 1 {
		t.Fatalf("frozen request was re-dispatched: %+v", rd)
	}
}

func TestDispatchExcludingAvoidsFailedWorker(t *testing.T) {
	for _, policy := range []Policy{PolicyLP, PolicyGreedy} {
		d := newDispatcher(t, model.Llama13B, testWorkers(1e12, 1e12, 1e12))
		d.SetPolicy(policy)
		var reqs []NewRequest
		for i := 0; i < 24; i++ {
			reqs = append(reqs, NewRequest{ID: int64(i), ContextLen: 3000})
		}
		got, err := d.DispatchExcluding(reqs, []int{1})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		for id, x := range got {
			if x[1] != 0 {
				t.Fatalf("%v: request %d placed %d heads on the failed worker", policy, id, x[1])
			}
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDispatchExcludingValidation(t *testing.T) {
	d := newDispatcher(t, model.Llama13B, testWorkers(1e12, 1e12))
	if _, err := d.DispatchExcluding([]NewRequest{{ID: 1, ContextLen: 10}}, []int{7}); err == nil {
		t.Fatal("out-of-range exclusion should error")
	}
	if _, err := d.DispatchExcluding(nil, nil); err != nil {
		t.Fatal(err)
	}
	// Excluding every worker makes placement impossible.
	if _, err := d.DispatchExcluding([]NewRequest{{ID: 2, ContextLen: 10}}, []int{0, 1}); err == nil {
		t.Fatal("excluding all workers should fail")
	}
}

func TestRepairCapacityShiftsGroups(t *testing.T) {
	// Rounding can momentarily overfill a worker; repairCapacity must move
	// whole groups to workers with slack without losing any.
	groups := []int{5, 0, 0}
	used := []float64{0, 0, 0}
	caps := []float64{200, 1000, 1000}
	if err := repairCapacity(groups, used, caps, 100); err != nil {
		t.Fatal(err)
	}
	if groups[0] > 2 {
		t.Fatalf("worker 0 still overfilled: %v", groups)
	}
	if groups[0]+groups[1]+groups[2] != 5 {
		t.Fatalf("groups lost: %v", groups)
	}
	// Truly impossible placements error.
	groups = []int{5}
	if err := repairCapacity(groups, []float64{0}, []float64{100}, 100); err == nil {
		t.Fatal("impossible repair should error")
	}
	// Zero per-group bytes is a no-op.
	if err := repairCapacity([]int{3}, []float64{0}, []float64{0}, 0); err != nil {
		t.Fatal(err)
	}
}
