package dispatch

import (
	"fmt"
	"math"
)

// Policy selects the placement algorithm for new requests.
type Policy int

// Placement policies.
const (
	// PolicyLP solves the Eq. 7 min-max linear program (the paper's
	// dispatcher).
	PolicyLP Policy = iota
	// PolicyGreedy places head groups one at a time on the worker whose
	// resulting f_i is smallest — a longest-processing-time-style
	// heuristic used as the ablation baseline for the LP.
	PolicyGreedy
)

func (p Policy) String() string {
	switch p {
	case PolicyLP:
		return "lp"
	case PolicyGreedy:
		return "greedy"
	}
	return "unknown"
}

// SetPolicy switches the placement algorithm. The default is PolicyLP.
func (d *Dispatcher) SetPolicy(p Policy) { d.policy = p }

// Policy returns the active placement policy.
func (d *Dispatcher) Policy() Policy { return d.policy }

// greedyPlacement assigns each request's KVHeads head groups one group at a
// time to the worker minimizing the resulting f_i, respecting capacity.
func (d *Dispatcher) greedyPlacement(reqs []NewRequest, exclude map[int]bool) ([][]int, error) {
	nW := len(d.workers)
	r := d.cfg.GroupRatio()
	groupsPerReq := d.cfg.KVHeads

	// Simulated incremental state.
	h := append([]float64(nil), d.h...)
	g := append([]float64(nil), d.g...)

	out := make([][]int, len(reqs))
	for j, rq := range reqs {
		x := make([]int, nW)
		perGroupBytes := d.perHeadTokenBytes * float64(rq.ContextLen) * float64(r)
		for grp := 0; grp < groupsPerReq; grp++ {
			best := -1
			bestT := math.Inf(1)
			for i := range d.workers {
				if exclude[i] {
					continue
				}
				if g[i]+perGroupBytes > d.workers[i].CapacityBytes+1e-6 {
					continue
				}
				t := d.fWorkerAt(i, h[i]+float64(r), g[i]+perGroupBytes)
				if t < bestT {
					bestT = t
					best = i
				}
			}
			if best == -1 {
				return nil, fmt.Errorf("dispatch: greedy: no capacity for head group of request %d", rq.ID)
			}
			x[best] += r
			h[best] += float64(r)
			g[best] += perGroupBytes
		}
		out[j] = x
	}
	return out, nil
}

// fWorkerAt evaluates f_i at explicit load values (not deltas).
func (d *Dispatcher) fWorkerAt(i int, heads, bytes float64) float64 {
	w := d.workers[i]
	if heads <= 0 {
		return 0
	}
	t := w.Attn.A*heads + w.Attn.B*bytes + w.Attn.C
	if !w.Primary {
		t += w.Net.Gamma*d.scatterBytesPerHead*heads + w.Net.Beta
	}
	return t
}

// DispatchExcluding places new requests like Dispatch but treats the given
// worker indices as unavailable (zero capacity) — failure injection for a
// device that went unhealthy between profiling and serving.
func (d *Dispatcher) DispatchExcluding(reqs []NewRequest, excluded []int) (map[RequestID][]int, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	for _, r := range reqs {
		if _, dup := d.place[r.ID]; dup {
			return nil, fmt.Errorf("dispatch: request %d already placed", r.ID)
		}
	}
	ex := make(map[int]bool, len(excluded))
	for _, i := range excluded {
		if i < 0 || i >= len(d.workers) {
			return nil, fmt.Errorf("dispatch: bad excluded worker index %d", i)
		}
		ex[i] = true
	}
	x, err := d.solvePlacement(reqs, ex)
	if err != nil {
		return nil, err
	}
	d.Dispatches++
	out := make(map[RequestID][]int, len(reqs))
	for j, r := range reqs {
		d.commit(r.ID, r.ContextLen, x[j])
		out[r.ID] = append([]int(nil), x[j]...)
	}
	return out, nil
}
