// Package dispatch implements Hetis' online head-wise dispatching (§5.2)
// and re-dispatching (§5.3). It is the stateful placement manager for
// decode-attention loads within one serving instance: for every request it
// decides how many query heads each device computes, subject to per-device
// KV-cache capacity, by solving the min–max linear program of Eq. 7 with
// the profiled linear models of Eq. 3 and Eq. 4.
//
// Units: head counts are query heads per layer (placement is uniform
// across layers); cache loads g and capacities M are bytes per layer.
package dispatch

import (
	"fmt"
	"math"
	"sort"
	"time"

	"hetis/internal/hardware"
	"hetis/internal/lp"
	"hetis/internal/model"
	"hetis/internal/profile"
)

// RequestID identifies a request within the dispatcher.
type RequestID = int64

// Worker is one device participating in decode attention.
type Worker struct {
	ID   hardware.DeviceID
	Attn profile.AttnModel
	// Net is the transfer model to this worker from the stage's primary;
	// ignored for Primary workers (no scatter needed).
	Net profile.NetModel
	// Primary marks devices that also run dense modules. Heads placed on
	// the primary pay no network cost.
	Primary bool
	// CapacityBytes is the per-layer KV budget (r·Mᵢ/2 in the paper's
	// notation, already converted to bytes by the caller).
	CapacityBytes float64
}

// Dispatcher tracks the head placement of all in-flight requests.
type Dispatcher struct {
	cfg     model.Config
	workers []Worker

	h []float64 // heads per worker (per layer)
	g []float64 // cache bytes per worker (per layer)

	place  map[RequestID][]int // heads per worker index (multiples of r)
	ctxLen map[RequestID]int

	// perHeadTokenBytes converts (heads × tokens) to per-layer bytes:
	// KVBytesPerTokenHeadGroup / r.
	perHeadTokenBytes float64

	// scatterBytesPerHead is Eq. 4's d(t) volume per head: (2+2/r) head
	// activations.
	scatterBytesPerHead float64

	// policy selects LP or greedy placement for new requests.
	policy Policy

	// Dispatches and Redispatches count solver invocations.
	Dispatches, Redispatches int

	// LPSolves counts simplex solves (placement and ideal-relaxation LPs);
	// LPSolvesAvoided counts solves skipped by the caching layer (exact
	// input memos and the ideal lower-bound test) that a cache-free
	// dispatcher would have run. Together they are the perf trajectory's
	// "LP solves avoided" metric.
	LPSolves, LPSolvesAvoided int

	// LPIdealSolves counts the subset of LPSolves that were §5.3.1
	// ideal-relaxation solves — the only solves eligible for basis warm
	// starting (see solvePlacement for why placements always solve cold),
	// and by far the most expensive per solve (≈50x an admission LP).
	LPIdealSolves int
	// LPWarmStarts counts solves answered from a cached optimal basis
	// (phase 1 skipped and the result accepted by the decision guards).
	// LPPhase1Skips counts solver-level phase-1 skips, including warm
	// solves whose objective landed inside the rebalance-threshold gray
	// zone and were re-solved cold; it is always >= LPWarmStarts.
	// LPPatchedRows counts constraint rows mutated in place when a
	// recurring LP shape was re-posed as a patch against the cached
	// problem instead of being rebuilt.
	LPWarmStarts, LPPhase1Skips, LPPatchedRows int
	// LPSolveSeconds accumulates wall-clock spent posing and solving the
	// dispatch LPs (fresh builds and patches, warm and cold solves, and
	// guard-triggered re-solves alike), so the perf trajectory can report
	// the LP layer's share of engine time directly.
	LPSolveSeconds float64

	// nocache disables the solver caching layer (SetCaching); the
	// decision-equivalence property test runs a cache-free twin through
	// identical operation sequences.
	nocache bool
	// nowarm disables only the warm-start/patching layer (SetWarmStart),
	// keeping the PR3-era exact-input memo and lower-bound skip: the
	// baseline mode BENCH.json speedups are measured against.
	nowarm bool

	// placeMemos is a small LRU of single-request placement solves keyed
	// on their exact inputs (most recent first); see solvePlacement.
	placeMemos []placementMemo

	// placeCache holds the re-posable single-request placement LP (its
	// basis slot stays nil — placements always solve cold); idealCaches
	// hold the re-posable §5.3.1 relaxations and their warm-start bases,
	// keyed by bucket count (the relaxation's shape).
	placeCache  lpCache
	idealCaches map[int]*lpCache
}

// lpCache is one re-posable LP: the problem instance successive solves
// patch in place, and (for the ideal relaxation) the optimal basis of
// the previous solve that warm starts the next one, plus that solve's
// optimal point and bucket counts — the certificate material of the
// act-side upper-bound skip (see idealUpperBound).
type lpCache struct {
	prob  *lp.Problem
	basis *lp.Basis
	row   []float64 // row-building scratch, nVars wide

	prevX      []float64 // bucket×worker optimum of the last ideal solve
	prevCounts []int     // bucket counts that optimum conserved heads for
}

// placementMemo holds one solved single-request placement LP keyed by the
// exact dispatcher state it was solved under. Any commit, release, or
// context extension changes h/g and thus misses; a hit re-poses the
// identical LP, whose deterministic solution is returned without solving.
type placementMemo struct {
	valid  bool
	ctx    int
	h, g   []float64
	groups []int
}

func (m *placementMemo) matches(ctx int, h, g []float64) bool {
	if !m.valid || m.ctx != ctx || len(m.h) != len(h) {
		return false
	}
	for i := range h {
		if m.h[i] != h[i] || m.g[i] != g[i] {
			return false
		}
	}
	return true
}

func (m *placementMemo) store(ctx int, h, g []float64, groups []int) {
	m.valid = true
	m.ctx = ctx
	m.h = append(m.h[:0], h...)
	m.g = append(m.g[:0], g...)
	m.groups = append(m.groups[:0], groups...)
}

// New creates a dispatcher for the model over the given workers.
func New(cfg model.Config, workers []Worker) (*Dispatcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("dispatch: no workers")
	}
	hasPrimary := false
	for _, w := range workers {
		if w.Primary {
			hasPrimary = true
		}
		if w.CapacityBytes < 0 {
			return nil, fmt.Errorf("dispatch: worker %d has negative capacity", w.ID)
		}
	}
	if !hasPrimary {
		return nil, fmt.Errorf("dispatch: at least one worker must be primary")
	}
	r := float64(cfg.GroupRatio())
	return &Dispatcher{
		cfg:                 cfg,
		workers:             workers,
		h:                   make([]float64, len(workers)),
		g:                   make([]float64, len(workers)),
		place:               make(map[RequestID][]int),
		ctxLen:              make(map[RequestID]int),
		perHeadTokenBytes:   float64(cfg.KVBytesPerTokenHeadGroup()) / r,
		scatterBytesPerHead: (2 + 2/r) * float64(cfg.QHeadBytes()),
	}, nil
}

// NumWorkers returns the worker count.
func (d *Dispatcher) NumWorkers() int { return len(d.workers) }

// Workers exposes the worker table (read-only).
func (d *Dispatcher) Workers() []Worker { return d.workers }

// Requests returns the tracked request IDs in ascending order.
func (d *Dispatcher) Requests() []RequestID {
	ids := make([]RequestID, 0, len(d.place))
	for id := range d.place {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Heads returns h_i for worker index i.
func (d *Dispatcher) Heads(i int) float64 { return d.h[i] }

// CacheBytes returns g_i for worker index i.
func (d *Dispatcher) CacheBytes(i int) float64 { return d.g[i] }

// Placement returns a copy of request id's per-worker head counts, or nil.
func (d *Dispatcher) Placement(id RequestID) []int {
	p, ok := d.place[id]
	if !ok {
		return nil
	}
	return append([]int(nil), p...)
}

// PlacementView returns request id's per-worker head counts without
// copying, or nil. The slice is owned by the dispatcher and valid until
// the request is re-placed or removed; callers must treat it as
// read-only. It exists for the engine's per-iteration bookkeeping loops,
// where Placement's defensive copy was a measurable allocation source.
func (d *Dispatcher) PlacementView(id RequestID) []int { return d.place[id] }

// ContextLen returns the tracked context length of a request.
func (d *Dispatcher) ContextLen(id RequestID) int { return d.ctxLen[id] }

// NewRequest describes a request to place.
type NewRequest struct {
	ID         RequestID
	ContextLen int // tokens already cached (prompt length at admission)
}

// fWorker evaluates f_i of Eq. 7 for worker i given extra heads and bytes.
func (d *Dispatcher) fWorker(i int, extraHeads, extraBytes float64) float64 {
	w := d.workers[i]
	heads := d.h[i] + extraHeads
	bytes := d.g[i] + extraBytes
	if heads <= 0 {
		return 0
	}
	t := w.Attn.A*heads + w.Attn.B*bytes + w.Attn.C
	if !w.Primary {
		t += w.Net.Gamma*d.scatterBytesPerHead*heads + w.Net.Beta
	}
	return t
}

// AttnStepTime is the current per-layer Attention-module time: the maximum
// f_i over workers (the post-attention aggregation waits for the slowest).
func (d *Dispatcher) AttnStepTime() float64 {
	max := 0.0
	for i := range d.workers {
		if t := d.fWorker(i, 0, 0); t > max {
			max = t
		}
	}
	return max
}

// Dispatch places a batch of newly admitted requests (Eq. 7): it solves the
// min–max LP over variables x_{j,i}, rounds head counts to whole head
// groups, and commits the placement (Eq. 8). Already-dispatched requests
// are never re-parallelized here.
func (d *Dispatcher) Dispatch(reqs []NewRequest) (map[RequestID][]int, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	for _, r := range reqs {
		if _, dup := d.place[r.ID]; dup {
			return nil, fmt.Errorf("dispatch: request %d already placed", r.ID)
		}
		if r.ContextLen < 0 {
			return nil, fmt.Errorf("dispatch: request %d has negative context", r.ID)
		}
	}
	x, err := d.solvePlacement(reqs, nil)
	if err != nil {
		return nil, err
	}
	d.Dispatches++
	out := make(map[RequestID][]int, len(reqs))
	for j, r := range reqs {
		d.commit(r.ID, r.ContextLen, x[j])
		out[r.ID] = append([]int(nil), x[j]...)
	}
	return out, nil
}

// CanFit reports whether the new requests could possibly fit: total free
// capacity across workers covers their aggregate cache demand.
func (d *Dispatcher) CanFit(reqs []NewRequest) bool {
	var need float64
	for _, r := range reqs {
		need += float64(d.cfg.Heads) * float64(r.ContextLen) * d.perHeadTokenBytes
	}
	var free float64
	for i, w := range d.workers {
		f := w.CapacityBytes - d.g[i]
		if f > 0 {
			free += f
		}
	}
	return need <= free
}

// SetCaching toggles the entire solver caching layer (the placement memo
// LRU, the ideal-LP lower-bound test, and the warm-start/patching layer).
// It is on by default; the cache-equivalence property test disables it on
// a twin dispatcher to assert cached and recomputed decisions are
// bit-equal.
func (d *Dispatcher) SetCaching(enabled bool) {
	d.nocache = !enabled
	d.placeMemos = nil
	d.placeCache = lpCache{}
	d.idealCaches = nil
}

// SetWarmStart toggles only the warm-start/patching layer, leaving the
// exact-input memo and the lower-bound skip on. It is on by default;
// turning it off reproduces the pre-warm-start solver behavior, which is
// how BENCH.json baselines for this optimization are recorded.
func (d *Dispatcher) SetWarmStart(enabled bool) {
	d.nowarm = !enabled
	d.placeCache = lpCache{}
	d.idealCaches = nil
}

// memoLookup returns a copy of the placement groups solved earlier under
// an identical (ctx, h, g) key, moving the hit to the LRU front.
func (d *Dispatcher) memoLookup(ctx int) ([]int, bool) {
	for k := range d.placeMemos {
		if !d.placeMemos[k].matches(ctx, d.h, d.g) {
			continue
		}
		if k != 0 {
			hit := d.placeMemos[k]
			copy(d.placeMemos[1:k+1], d.placeMemos[:k])
			d.placeMemos[0] = hit
		}
		return append([]int(nil), d.placeMemos[0].groups...), true
	}
	return nil, false
}

// placeMemoCap bounds the placement-memo LRU. One slot covers the
// single-tenant steady state (re-trying a blocked admission on an
// unchanged instance); a few more let multi-tenant mixes that interleave
// a handful of distinct context lengths hit across each other's retries.
const placeMemoCap = 8

// memoStore records a solved placement at the LRU front, evicting the
// tail entry (whose slices are recycled) when full.
func (d *Dispatcher) memoStore(ctx int, groups []int) {
	if len(d.placeMemos) < placeMemoCap {
		d.placeMemos = append(d.placeMemos, placementMemo{})
	}
	last := len(d.placeMemos) - 1
	entry := d.placeMemos[last]
	copy(d.placeMemos[1:], d.placeMemos[:last])
	entry.store(ctx, d.h, d.g, groups)
	d.placeMemos[0] = entry
}

// solvePlacement builds and solves the Eq. 7 LP for the given requests
// (or runs the greedy heuristic under PolicyGreedy). When `exclude` is
// non-nil it maps worker index → true for workers the requests must avoid
// (failure injection).
func (d *Dispatcher) solvePlacement(reqs []NewRequest, exclude map[int]bool) ([][]int, error) {
	if d.policy == PolicyGreedy {
		return d.greedyPlacement(reqs, exclude)
	}
	// The single-request solve (the admission/redispatch hot path) is
	// memoized on its exact inputs: identical (h, g, context) re-poses the
	// identical LP, so a previous solution is returned bit-equal without
	// solving. Anything that shifts load invalidates by construction —
	// the key is the load vector itself.
	memoable := !d.nocache && len(reqs) == 1 && exclude == nil
	if memoable {
		if groups, ok := d.memoLookup(reqs[0].ContextLen); ok {
			d.LPSolvesAvoided++
			return [][]int{groups}, nil
		}
	}
	nW := len(d.workers)
	nR := len(reqs)
	r := d.cfg.GroupRatio()

	// Variables: x[j][i] for j in reqs, i in workers, then z. Index
	// helper: v(j,i) = j*nW + i; z = nR*nW.
	nVars := nR*nW + 1

	// The recurring single-request shape is re-posed as a patch against
	// the cached problem (allocation-free once warm); anything else
	// (batches, failure injection, caching off) builds a fresh problem.
	// Either way the solve itself is ALWAYS the cold two-phase simplex:
	// the min-max placement LP is massively degenerate — any head
	// distribution that keeps every worker under the binding worker's
	// time is optimal — so a basis-warm-started solve routinely lands on
	// a different optimal vertex than the legacy path, and no cheap
	// numerical certificate can tell the unique-optimum cases apart
	// reliably. Placements feed the goldens directly; bit-equality wins.
	// (The ideal relaxation, which only needs the optimal objective, IS
	// warm-started — see idealAttn.)
	reposable := memoable && !d.nowarm
	d.LPSolves++
	//hetis:entropy wall-clock self-profiling; LPSolveSeconds is reporting-only and never feeds placement decisions
	start := time.Now() // the LP layer's cost is posing + solving
	prob := d.posePlacement(reqs, exclude, nVars, reposable)
	res, err := prob.Solve()
	d.LPSolveSeconds += time.Since(start).Seconds()
	if err != nil {
		return nil, fmt.Errorf("dispatch: placement LP: %w", err)
	}

	// Round each request independently to whole head groups by largest
	// remainder, then repair any capacity violation by shifting groups to
	// workers with slack.
	out := make([][]int, nR)
	used := append([]float64(nil), d.g...)
	for j, rq := range reqs {
		frac := make([]float64, nW)
		for i := 0; i < nW; i++ {
			frac[i] = res.X[j*nW+i] / float64(r)
		}
		groups := roundLargestRemainder(frac, d.cfg.KVHeads)
		perGroupBytes := d.perHeadTokenBytes * float64(rq.ContextLen) * float64(r)
		if err := repairCapacity(groups, used, d.capacities(exclude), perGroupBytes); err != nil {
			return nil, fmt.Errorf("dispatch: request %d: %w", rq.ID, err)
		}
		x := make([]int, nW)
		for i, gc := range groups {
			x[i] = gc * r
			used[i] += float64(gc) * perGroupBytes
		}
		out[j] = x
	}
	if memoable {
		d.memoStore(reqs[0].ContextLen, out[0])
	}
	return out, nil
}

// poseInto prepares one min-z LP re-pose: with a non-nil cache it
// returns the cached problem to patch in place (counting mutated rows
// through emit), creating and remembering it on first use; with nil it
// returns a fresh problem. Callers write each row's data into the
// returned scratch before calling emit. Patched and rebuilt problems
// hold bit-identical data, so they solve identically. noBasis marks
// problems whose optimal basis nobody will ever warm-start from.
func (d *Dispatcher) poseInto(cache *lpCache, nVars int, noBasis bool) (prob *lp.Problem, row []float64, emit func(op lp.Op, rhs float64)) {
	patch := false
	if cache != nil {
		if len(cache.row) != nVars {
			cache.row = make([]float64, nVars)
		}
		row = cache.row
		if cache.prob != nil {
			prob = cache.prob
			patch = true
		}
	} else {
		row = make([]float64, nVars)
	}
	if prob == nil {
		obj := make([]float64, nVars)
		obj[nVars-1] = 1 // min z
		prob = lp.New(nVars, obj)
		prob.NoBasis = noBasis
		if cache != nil {
			cache.prob = prob
		}
	}
	idx := 0
	emit = func(op lp.Op, rhs float64) {
		if patch {
			if prob.SetConstraint(idx, row, op, rhs) {
				d.LPPatchedRows++
			}
		} else {
			prob.AddConstraint(row, op, rhs)
		}
		idx++
	}
	return prob, row, emit
}

// posePlacement states the Eq. 7 LP for the given requests. When
// reposable it builds into (or patches) the dispatcher's cached problem,
// counting mutated rows; otherwise it returns a fresh problem.
func (d *Dispatcher) posePlacement(reqs []NewRequest, exclude map[int]bool, nVars int, reposable bool) *lp.Problem {
	nW := len(d.workers)
	H := float64(d.cfg.Heads)

	var cache *lpCache
	if reposable {
		cache = &d.placeCache
	}
	// Placements never warm-start (see solvePlacement), so their solves
	// skip basis capture.
	prob, row, emit := d.poseInto(cache, nVars, true)

	// (7a) epigraph: f_i(x) − z ≤ 0 for every worker.
	for i := range d.workers {
		w := d.workers[i]
		clear(row)
		slopeHeads := w.Attn.A
		if !w.Primary {
			slopeHeads += w.Net.Gamma * d.scatterBytesPerHead
		}
		for j, rq := range reqs {
			perHead := slopeHeads + w.Attn.B*d.perHeadTokenBytes*float64(rq.ContextLen)
			row[j*nW+i] = perHead
		}
		row[nVars-1] = -1
		fixed := w.Attn.A*d.h[i] + w.Attn.B*d.g[i] + w.Attn.C
		if !w.Primary {
			fixed += w.Net.Gamma*d.scatterBytesPerHead*d.h[i] + w.Net.Beta
		}
		emit(lp.LE, -fixed)
	}

	// (7b) capacity: g_i + Σ_j bytes(x_{j,i}) ≤ M_i.
	for i := range d.workers {
		clear(row)
		for j, rq := range reqs {
			row[j*nW+i] = d.perHeadTokenBytes * float64(rq.ContextLen)
		}
		cap := d.workers[i].CapacityBytes - d.g[i]
		if exclude[i] {
			cap = 0
		}
		emit(lp.LE, cap)
	}

	// (7c) head conservation: Σ_i x_{j,i} = H.
	for j := range reqs {
		clear(row)
		for i := 0; i < nW; i++ {
			row[j*nW+i] = 1
		}
		emit(lp.EQ, H)
	}
	return prob
}

// warmIdealMargin is the relative width of the gray zone around the
// §5.3.1 rebalance threshold inside which a warm-started relaxation
// objective cannot decide and the relaxation is re-solved cold. The
// optimal objective is unique (unlike the placement LP's solution), so a
// warm solve agrees with a cold solve up to solver rounding; the margin
// sits orders of magnitude above that noise, and decisions almost never
// land inside it, so the escape hatch is essentially free.
const warmIdealMargin = 1e-6

func (d *Dispatcher) capacities(exclude map[int]bool) []float64 {
	caps := make([]float64, len(d.workers))
	for i, w := range d.workers {
		caps[i] = w.CapacityBytes
		if exclude[i] {
			caps[i] = 0
		}
	}
	return caps
}

// roundLargestRemainder converts fractional group shares to integers
// summing to total.
func roundLargestRemainder(frac []float64, total int) []int {
	n := len(frac)
	out := make([]int, n)
	type rem struct {
		idx int
		f   float64
	}
	sum := 0
	rems := make([]rem, 0, n)
	for i, f := range frac {
		if f < 0 {
			f = 0
		}
		out[i] = int(f)
		sum += out[i]
		rems = append(rems, rem{i, f - float64(out[i])})
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].f != rems[b].f {
			return rems[a].f > rems[b].f
		}
		return rems[a].idx < rems[b].idx
	})
	for k := 0; sum < total && k < len(rems); k++ {
		out[rems[k].idx]++
		sum++
	}
	// Over-allocation can only happen via float noise; trim from smallest
	// remainders.
	for k := len(rems) - 1; sum > total && k >= 0; k-- {
		i := rems[k].idx
		if out[i] > 0 {
			out[i]--
			sum--
		}
	}
	return out
}

// repairCapacity shifts groups away from workers whose usage would exceed
// capacity, to workers with slack (cheapest-first by current usage ratio).
func repairCapacity(groups []int, used, caps []float64, perGroupBytes float64) error {
	if perGroupBytes <= 0 {
		return nil
	}
	for i := range groups {
		for groups[i] > 0 && used[i]+float64(groups[i])*perGroupBytes > caps[i]+1e-6 {
			// Find the worker with the most absolute slack.
			best := -1
			var bestSlack float64
			for k := range groups {
				if k == i {
					continue
				}
				slack := caps[k] - used[k] - float64(groups[k])*perGroupBytes
				if slack >= perGroupBytes && slack > bestSlack {
					bestSlack = slack
					best = k
				}
			}
			if best == -1 {
				return fmt.Errorf("no capacity to place head group (need %.0f bytes)", perGroupBytes)
			}
			groups[i]--
			groups[best]++
		}
	}
	return nil
}

// commit applies a placement and updates h, g (Eq. 8).
func (d *Dispatcher) commit(id RequestID, ctxLen int, x []int) {
	d.place[id] = x
	d.ctxLen[id] = ctxLen
	for i, heads := range x {
		if heads == 0 {
			continue
		}
		d.h[i] += float64(heads)
		d.g[i] += float64(heads) * d.perHeadTokenBytes * float64(ctxLen)
	}
}

// release removes a request's load without forgetting which devices to
// subtract from.
func (d *Dispatcher) release(id RequestID) {
	x, ok := d.place[id]
	if !ok {
		return
	}
	l := float64(d.ctxLen[id])
	for i, heads := range x {
		if heads == 0 {
			continue
		}
		d.h[i] -= float64(heads)
		d.g[i] -= float64(heads) * d.perHeadTokenBytes * l
		if d.h[i] < 1e-9 {
			d.h[i] = 0
		}
		if d.g[i] < 1e-6 {
			d.g[i] = 0
		}
	}
	delete(d.place, id)
	delete(d.ctxLen, id)
}

// Remove drops a finished (or evicted) request.
func (d *Dispatcher) Remove(id RequestID) { d.release(id) }

// Clear drops every tracked request, returning the dispatcher to its
// empty state — the whole-instance teardown a replica failure needs.
func (d *Dispatcher) Clear() {
	for _, id := range d.Requests() {
		d.release(id)
	}
}

// ExtendContext grows a request by n freshly generated tokens, increasing
// g on every device holding its heads. It reports the devices whose
// capacity the growth overflows (empty when all fits).
func (d *Dispatcher) ExtendContext(id RequestID, n int) ([]int, error) {
	x, ok := d.place[id]
	if !ok {
		return nil, fmt.Errorf("dispatch: unknown request %d", id)
	}
	if n < 0 {
		return nil, fmt.Errorf("dispatch: negative extension %d", n)
	}
	d.ctxLen[id] += n
	var overflow []int
	for i, heads := range x {
		if heads == 0 {
			continue
		}
		d.g[i] += float64(heads) * d.perHeadTokenBytes * float64(n)
		if d.g[i] > d.workers[i].CapacityBytes+1e-6 {
			overflow = append(overflow, i)
		}
	}
	return overflow, nil
}

// idealBuckets bounds the LP size of IdealAttnTime: requests are grouped
// into this many context-length buckets. Requests of equal context length
// merge exactly (the LP is scale-invariant in the head-conservation
// constraint), so bucketing only rounds lengths within a bucket.
const idealBuckets = 24

// IdealAttnTime solves the §5.3.1 relaxation: the best achievable max f_i
// if ALL current requests could be re-placed freely, subject to the
// aggregate capacity constraint. Returns 0 when idle. The value of a
// warm-started solve can differ from a cold solve's in last-ulp noise;
// RebalanceCompute guards its threshold decision against that,
// re-solving cold near the boundary.
func (d *Dispatcher) IdealAttnTime() (float64, error) {
	if len(d.place) == 0 {
		return 0, nil
	}
	// Warm solves through this public probe are deliberately NOT counted
	// in LPWarmStarts: that counter means "accepted by the decision
	// guards", and only RebalanceCompute applies them.
	z, _, err := d.idealAttn(bucketByContext(d.Requests(), d.ctxLen, idealBuckets))
	return z, err
}

// warmIdealFloor: a warm ideal objective at or below this absolute value
// (it is measured in seconds; real values sit far above) is re-solved
// cold before the ≤0 idle test, so sign-edge decisions stay bit-exact.
const warmIdealFloor = 1e-12

// idealCacheFor returns (creating on demand) the re-posable relaxation
// cache for a bucket count, or nil when the caching layer is off.
func (d *Dispatcher) idealCacheFor(nBuckets int) *lpCache {
	if d.nocache || d.nowarm {
		return nil
	}
	if d.idealCaches == nil {
		d.idealCaches = make(map[int]*lpCache)
	}
	cache := d.idealCaches[nBuckets]
	if cache == nil {
		cache = &lpCache{}
		d.idealCaches[nBuckets] = cache
	}
	return cache
}

// idealAttn poses and solves the relaxation over the given (non-empty)
// buckets, warm-starting from the cached basis for this bucket count
// when the caching layer allows. A non-nil exact closure reports that z
// came from a warm-started solve and re-solves the identical problem
// cold on demand (the gray-zone escape hatch).
func (d *Dispatcher) idealAttn(buckets []bucket) (z float64, exact func() (float64, error), err error) {
	nW := len(d.workers)
	nVars := len(buckets)*nW + 1

	cache := d.idealCacheFor(len(buckets))
	d.LPSolves++
	d.LPIdealSolves++
	//hetis:entropy wall-clock self-profiling; LPSolveSeconds is reporting-only and never feeds placement decisions
	start := time.Now() // the LP layer's cost is posing + solving
	prob := d.poseIdeal(buckets, nVars, cache)
	var res lp.Result
	warm := false
	if cache != nil {
		var stats lp.SolveStats
		res, stats, err = prob.SolveFrom(cache.basis)
		if stats.WarmStarted {
			d.LPPhase1Skips++
			warm = true
		}
		if err == nil {
			cache.basis = res.Basis
		} else {
			cache.basis = nil
		}
	} else {
		res, err = prob.Solve()
	}
	d.LPSolveSeconds += time.Since(start).Seconds()
	if err != nil {
		return 0, nil, fmt.Errorf("dispatch: ideal LP: %w", err)
	}
	storeIdealPoint(cache, buckets, res.X, nW)
	if warm {
		exact = func() (float64, error) {
			//hetis:entropy wall-clock self-profiling; LPSolveSeconds is reporting-only and never feeds placement decisions
			start := time.Now()
			res, err := prob.Solve()
			d.LPSolveSeconds += time.Since(start).Seconds()
			if err != nil {
				cache.basis = nil
				return 0, fmt.Errorf("dispatch: ideal LP: %w", err)
			}
			cache.basis = res.Basis
			storeIdealPoint(cache, buckets, res.X, nW)
			return res.X[nVars-1], nil
		}
	}
	return res.X[nVars-1], exact, nil
}

// storeIdealPoint records a solved relaxation's optimal bucket×worker
// point and the bucket counts it conserved heads for — the certificate
// material of idealUpperBound.
func storeIdealPoint(cache *lpCache, buckets []bucket, x []float64, nW int) {
	if cache == nil {
		return
	}
	cache.prevX = append(cache.prevX[:0], x[:len(buckets)*nW]...)
	cache.prevCounts = cache.prevCounts[:0]
	for _, b := range buckets {
		cache.prevCounts = append(cache.prevCounts, b.count)
	}
}

// ubSafety inflates the certified upper bound, absorbing the solver
// tolerance slop in the stored point's feasibility the same way lbSafety
// shaves the lower bound.
const ubSafety = 1 + 1e-6

// idealUpperBound is a certified O(buckets×workers) upper bound on the
// relaxation's optimum: the previous solve's optimal point, rescaled
// per-bucket to the current head totals, is a feasible point of the
// current relaxation whenever it still fits the aggregate capacity, and
// any feasible point's max-f value bounds z* from above. Returns +Inf
// when no certificate is available (no stored point, bucket mismatch,
// or the rescaled point no longer fits).
func (d *Dispatcher) idealUpperBound(buckets []bucket, cache *lpCache) float64 {
	nW := len(d.workers)
	if cache == nil || len(cache.prevX) != len(buckets)*nW || len(cache.prevCounts) != len(buckets) {
		return math.Inf(1)
	}
	var totalCap, totalLoad float64
	for i := range d.workers {
		totalCap += d.workers[i].CapacityBytes
	}
	u := 0.0
	for i := 0; i < nW; i++ {
		w := d.workers[i]
		slope := w.Attn.A
		fixed := w.Attn.C
		if !w.Primary {
			slope += w.Net.Gamma * d.scatterBytesPerHead
			fixed += w.Net.Beta
		}
		var hHat, gHat float64
		for j, b := range buckets {
			x := cache.prevX[j*nW+i] * (float64(b.count) / float64(cache.prevCounts[j]))
			if x < 0 {
				x = 0 // solver tolerance residue
			}
			hHat += x
			gHat += x * d.perHeadTokenBytes * b.ctx
		}
		totalLoad += gHat
		if f := slope*hHat + w.Attn.B*gHat + fixed; f > u {
			u = f
		}
	}
	if totalLoad > totalCap {
		return math.Inf(1) // rescaled point no longer feasible: no certificate
	}
	return u * ubSafety
}

// poseIdeal states the §5.3.1 relaxation over the context buckets,
// patching the cached problem when one is supplied (counting mutated
// rows) or building a fresh one.
func (d *Dispatcher) poseIdeal(buckets []bucket, nVars int, cache *lpCache) *lp.Problem {
	nW := len(d.workers)
	prob, row, emit := d.poseInto(cache, nVars, false)
	for i := range d.workers {
		w := d.workers[i]
		clear(row)
		slopeHeads := w.Attn.A
		if !w.Primary {
			slopeHeads += w.Net.Gamma * d.scatterBytesPerHead
		}
		for j, b := range buckets {
			row[j*nW+i] = slopeHeads + w.Attn.B*d.perHeadTokenBytes*b.ctx
		}
		row[nVars-1] = -1
		fixed := w.Attn.C
		if !w.Primary {
			fixed += w.Net.Beta
		}
		emit(lp.LE, -fixed)
	}
	// §5.3.1 uses one aggregate capacity constraint (Σ_i loads ≤ Σ_i M_i).
	clear(row)
	var totalCap float64
	for i := range d.workers {
		totalCap += d.workers[i].CapacityBytes
		for j, b := range buckets {
			row[j*nW+i] += d.perHeadTokenBytes * b.ctx
		}
	}
	emit(lp.LE, totalCap)
	for j, b := range buckets {
		clear(row)
		for i := 0; i < nW; i++ {
			row[j*nW+i] = 1
		}
		emit(lp.EQ, float64(d.cfg.Heads)*float64(b.count))
	}
	return prob
}

// lbSafety shaves the certified lower bound by a relative margin so
// floating-point slack in either the bound's accumulation or the simplex
// solve can never push the bound above the LP's computed optimum. The
// bound is coarse (typically well below the optimum), so the shave costs
// nothing; it only guards the degenerate near-tight case.
const lbSafety = 1 - 1e-9

// idealLowerBound is a certified O(workers) lower bound on IdealAttnTime's
// optimum, from weak duality over aggregate totals. The relaxation's
// epigraph constraints give z ≥ a_i·H_i + b_i·G_i + c_i for every worker
// (so z ≥ max_i c_i outright); averaging them with weights 1/a_i
// telescopes the head terms to the conserved head total, and with weights
// 1/b_i to the byte total:
//
//	z ≥ (ΣH + Σ c_i/a_i) / Σ(1/a_i)    z ≥ (ΣG + Σ c_i/b_i) / Σ(1/b_i)
//
// Zero or negative slopes disable the corresponding bound (that worker
// could absorb load free, so the average certifies nothing). Returns 0
// when no bound applies.
func (d *Dispatcher) idealLowerBound() float64 {
	n := len(d.place)
	if n == 0 {
		return 0
	}
	headTot := float64(d.cfg.Heads) * float64(n)
	var ctxTot int64
	//hetis:ordered integer sum; int64 addition is commutative, so map order cannot change the total
	for _, l := range d.ctxLen {
		ctxTot += int64(l)
	}
	byteTot := float64(ctxTot) * d.perHeadTokenBytes * float64(d.cfg.Heads)

	var maxFixed float64
	headOK, byteOK := true, true
	var invA, fixedOverA, invB, fixedOverB float64
	for i := range d.workers {
		w := d.workers[i]
		a := w.Attn.A
		fixed := w.Attn.C
		if !w.Primary {
			a += w.Net.Gamma * d.scatterBytesPerHead
			fixed += w.Net.Beta
		}
		if a < 0 || w.Attn.B < 0 {
			// A negative fitted slope breaks every inequality above (the
			// dropped b_i·G_i / a_i·H_i terms must be nonnegative, and even
			// z ≥ fixed_i needs them so): certify nothing.
			return 0
		}
		if fixed > maxFixed {
			maxFixed = fixed
		}
		if a > 0 {
			invA += 1 / a
			fixedOverA += fixed / a
		} else {
			// A zero slope lets this worker absorb that resource free; the
			// averaged bound over it certifies nothing.
			headOK = false
		}
		if w.Attn.B > 0 {
			invB += 1 / w.Attn.B
			fixedOverB += fixed / w.Attn.B
		} else {
			byteOK = false
		}
	}
	lb := maxFixed
	if headOK && invA > 0 {
		if v := (headTot + fixedOverA) / invA; v > lb {
			lb = v
		}
	}
	if byteOK && invB > 0 {
		if v := (byteTot + fixedOverB) / invB; v > lb {
			lb = v
		}
	}
	return lb * lbSafety
}

// bucket aggregates requests with similar context lengths for the ideal
// relaxation.
type bucket struct {
	ctx   float64 // mean context length of the bucket
	count int
}

// bucketByContext groups requests into at most n buckets of similar
// context length.
func bucketByContext(ids []RequestID, ctxLen map[RequestID]int, n int) []bucket {
	lens := make([]int, len(ids))
	for k, id := range ids {
		lens[k] = ctxLen[id]
	}
	sort.Ints(lens)
	if n > len(lens) {
		n = len(lens)
	}
	out := make([]bucket, 0, n)
	per := (len(lens) + n - 1) / n
	for start := 0; start < len(lens); start += per {
		end := start + per
		if end > len(lens) {
			end = len(lens)
		}
		sum := 0
		for _, l := range lens[start:end] {
			sum += l
		}
		out = append(out, bucket{ctx: float64(sum) / float64(end-start), count: end - start})
	}
	return out
}

// Redispatch is the outcome of one §5.3 rebalancing action.
type Redispatch struct {
	Request RequestID
	Old     []int // heads per worker before
	New     []int // heads per worker after
	// MovedHeads is the number of heads that changed device.
	MovedHeads int
}

// RebalanceCompute implements §5.3.1: if the current Attention time exceeds
// the ideal by more than theta (fractional, default 0.5), re-dispatch the
// single request contributing most to the bottleneck device. Requests in
// `frozen` are skipped (the engine freezes recently migrated requests to
// damp ping-pong, the role of the paper's Θ stop condition). Returns nil
// when no action is needed.
func (d *Dispatcher) RebalanceCompute(theta float64, frozen map[RequestID]bool) (*Redispatch, error) {
	if len(d.place) == 0 {
		return nil, nil
	}
	current := d.AttnStepTime()
	// Cheap pre-tests that sandwich the relaxation's optimum without
	// solving it. Lower bound: if current is already within 1+theta of a
	// certified lower bound, the true ideal cannot justify a redispatch
	// either — skip the LP (the common balanced-steady-state outcome;
	// lb ≤ ideal and current ≤ lb·(1+θ) ⇒ current ≤ ideal·(1+θ), exactly
	// the no-action branch below).
	lb := 0.0
	if !d.nocache && theta >= 0 {
		if lb = d.idealLowerBound(); lb > 0 && current <= lb*(1+theta) {
			d.LPSolvesAvoided++
			return nil, nil
		}
	}
	buckets := bucketByContext(d.Requests(), d.ctxLen, idealBuckets)
	// Upper bound: re-evaluating the previous relaxation optimum on the
	// current buckets certifies ideal ≤ U, so current > U·(1+θ) proves
	// the redispatch is warranted without solving — the flagrant-
	// imbalance mirror of the lower-bound skip (lb > 0 certifies
	// ideal > 0, the other half of the act condition).
	if !d.nocache && !d.nowarm && theta >= 0 && lb > 0 {
		cache := d.idealCaches[len(buckets)]
		if u := d.idealUpperBound(buckets, cache); current > u*(1+theta) {
			d.LPSolvesAvoided++
			return d.redispatchBottleneck(frozen)
		}
	}
	ideal, exact, err := d.idealAttn(buckets)
	if err != nil {
		return nil, err
	}
	act := ideal > 0 && current > ideal*(1+theta)
	if exact != nil {
		// The warm-started objective differs from the cold one only in
		// last-ulp noise; decide directly when `current` sits comfortably
		// outside the noise band around the threshold, and re-solve cold
		// inside it (or for a degenerate near-zero objective, or an
		// out-of-contract negative theta) so the decision stays bit-equal
		// to the cache-free path.
		lo := ideal * (1 - warmIdealMargin) * (1 + theta)
		hi := ideal * (1 + warmIdealMargin) * (1 + theta)
		if theta < 0 || ideal <= warmIdealFloor || (current > lo && current <= hi) {
			ideal, err = exact()
			if err != nil {
				return nil, err
			}
			act = ideal > 0 && current > ideal*(1+theta)
		} else {
			d.LPWarmStarts++
			act = current > hi
		}
	}
	if !act {
		return nil, nil
	}
	return d.redispatchBottleneck(frozen)
}

// redispatchBottleneck performs the §5.3.1 action: re-dispatch the
// unfrozen request contributing most to the bottleneck device.
func (d *Dispatcher) redispatchBottleneck(frozen map[RequestID]bool) (*Redispatch, error) {
	// Bottleneck device.
	bott := 0
	maxT := -1.0
	for i := range d.workers {
		if t := d.fWorker(i, 0, 0); t > maxT {
			maxT = t
			bott = i
		}
	}
	// Request with the largest contribution to the bottleneck: heads ×
	// per-head cost + bytes × per-byte cost. Iterate in ID order so ties
	// resolve deterministically.
	var victim RequestID = -1
	var maxContrib float64
	for _, id := range d.Requests() {
		if frozen[id] {
			continue
		}
		x := d.place[id]
		heads := float64(x[bott])
		if heads == 0 {
			continue
		}
		w := d.workers[bott]
		contrib := w.Attn.A*heads + w.Attn.B*heads*d.perHeadTokenBytes*float64(d.ctxLen[id])
		if contrib > maxContrib {
			maxContrib = contrib
			victim = id
		}
	}
	if victim < 0 {
		return nil, nil
	}
	return d.redispatchRequest(victim)
}

// redispatchRequest removes the request's load and re-places it via Eq. 7.
func (d *Dispatcher) redispatchRequest(id RequestID) (*Redispatch, error) {
	old := d.Placement(id)
	ctx := d.ctxLen[id]
	d.release(id)
	x, err := d.solvePlacement([]NewRequest{{ID: id, ContextLen: ctx}}, nil)
	if err != nil {
		// Roll back to the old placement.
		d.commit(id, ctx, old)
		return nil, err
	}
	d.commit(id, ctx, x[0])
	d.Redispatches++
	moved := 0
	for i := range x[0] {
		diff := x[0][i] - old[i]
		if diff > 0 {
			moved += diff
		}
	}
	return &Redispatch{Request: id, Old: old, New: x[0], MovedHeads: moved}, nil
}

// RebalanceMemory implements §5.3.2: when worker idx is memory-exhausted,
// first check whether the cluster as a whole still has slack
// (Σg < ΣM); if so, re-dispatch the device's modified-LIFO victim instead
// of evicting it. latestArrival selects the victim: the request with
// memory on the device that arrived last (the caller supplies arrival
// order via the candidate list, newest first).
func (d *Dispatcher) RebalanceMemory(idx int, newestFirst []RequestID) (*Redispatch, error) {
	if idx < 0 || idx >= len(d.workers) {
		return nil, fmt.Errorf("dispatch: bad worker index %d", idx)
	}
	var sumG, sumM float64
	for i := range d.workers {
		sumG += d.g[i]
		sumM += d.workers[i].CapacityBytes
	}
	if sumG >= sumM {
		return nil, nil // nothing to gain; caller must evict
	}
	for _, id := range newestFirst {
		x, ok := d.place[id]
		if !ok || x[idx] == 0 {
			continue
		}
		rd, err := d.redispatchRequest(id)
		if err != nil {
			continue // try the next victim
		}
		return rd, nil
	}
	return nil, nil
}

// Utilization returns per-worker cache utilization g_i/M_i.
func (d *Dispatcher) Utilization() []float64 {
	out := make([]float64, len(d.workers))
	for i, w := range d.workers {
		if w.CapacityBytes > 0 {
			out[i] = d.g[i] / w.CapacityBytes
		}
	}
	return out
}

// CheckInvariants validates internal accounting against the per-request
// placements.
func (d *Dispatcher) CheckInvariants() error {
	h := make([]float64, len(d.workers))
	g := make([]float64, len(d.workers))
	r := d.cfg.GroupRatio()
	for _, id := range d.Requests() {
		x := d.place[id]
		total := 0
		for i, heads := range x {
			if heads%r != 0 {
				return fmt.Errorf("dispatch: request %d places %d heads on worker %d (not a multiple of r=%d)", id, heads, i, r)
			}
			total += heads
			h[i] += float64(heads)
			g[i] += float64(heads) * d.perHeadTokenBytes * float64(d.ctxLen[id])
		}
		if total != d.cfg.Heads {
			return fmt.Errorf("dispatch: request %d has %d heads placed, want %d", id, total, d.cfg.Heads)
		}
	}
	for i := range d.workers {
		if math.Abs(h[i]-d.h[i]) > 1e-6 {
			return fmt.Errorf("dispatch: worker %d heads drift: tracked %g, actual %g", i, d.h[i], h[i])
		}
		if math.Abs(g[i]-d.g[i]) > 1 {
			return fmt.Errorf("dispatch: worker %d cache drift: tracked %g, actual %g", i, d.g[i], g[i])
		}
	}
	return nil
}
