package dispatch

import (
	"testing"

	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/profile"
)

func benchWorkers() []Worker {
	return testWorkersForBench(1e12, 1e12, 1e12, 1e12, 1e12, 1e12)
}

// testWorkersForBench mirrors the test helper without *testing.T.
func testWorkersForBench(primaryCap float64, attnCaps ...float64) []Worker {
	attn := profile.AttnModel{A: 25e-9, B: 1.0 / 1600e9, C: 30e-6}
	slow := profile.AttnModel{A: 60e-9, B: 1.0 / 650e9, C: 35e-6}
	net := profile.NetModel{Gamma: 1.0 / 11e9, Beta: 30e-6}
	ws := []Worker{{ID: 0, Attn: attn, Primary: true, CapacityBytes: primaryCap}}
	for i, c := range attnCaps {
		ws = append(ws, Worker{
			ID:            hardware.DeviceID(i + 1),
			Attn:          slow,
			Net:           net,
			CapacityBytes: c,
		})
	}
	return ws
}

// BenchmarkDispatchLP measures one admission solve (Eq. 7).
func BenchmarkDispatchLP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := New(model.Llama70B, benchWorkers())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Dispatch([]NewRequest{{ID: 1, ContextLen: 1200}, {ID: 2, ContextLen: 600}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatchGreedy measures the greedy alternative.
func BenchmarkDispatchGreedy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := New(model.Llama70B, benchWorkers())
		if err != nil {
			b.Fatal(err)
		}
		d.SetPolicy(PolicyGreedy)
		if _, err := d.Dispatch([]NewRequest{{ID: 1, ContextLen: 1200}, {ID: 2, ContextLen: 600}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIdealAttnTime measures the §5.3.1 relaxation with a full batch.
func BenchmarkIdealAttnTime(b *testing.B) {
	d, err := New(model.Llama13B, benchWorkers())
	if err != nil {
		b.Fatal(err)
	}
	var reqs []NewRequest
	for i := 0; i < 128; i++ {
		reqs = append(reqs, NewRequest{ID: int64(i), ContextLen: 400 + 37*(i%19)})
	}
	if _, err := d.Dispatch(reqs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.IdealAttnTime(); err != nil {
			b.Fatal(err)
		}
	}
}
