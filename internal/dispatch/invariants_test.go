package dispatch

import (
	"math/rand"
	"testing"

	"hetis/internal/model"
)

// TestDispatchPlacementProperties drives the dispatcher with randomized
// worker pools, capacities, and admission batches, and asserts the
// placement contract on every successful dispatch:
//
//   - every request's heads sum to the model's query heads,
//   - per-worker head counts are whole KV-head groups,
//   - no worker's tracked cache load exceeds its CapacityBytes,
//   - the dispatcher's internal accounting matches the placements.
//
// Growth (ExtendContext) and release (Remove) are exercised between
// batches so the invariants hold across the whole request lifecycle, not
// only at admission.
func TestDispatchPlacementProperties(t *testing.T) {
	models := []model.Config{model.OPT13B, model.OPT30B, model.Llama13B, model.Llama70B}
	rng := rand.New(rand.NewSource(20250726))
	const rounds = 60

	for round := 0; round < rounds; round++ {
		cfg := models[rng.Intn(len(models))]
		nWorkers := 1 + rng.Intn(5)
		caps := make([]float64, 0, nWorkers-1)
		for i := 1; i < nWorkers; i++ {
			caps = append(caps, float64(1+rng.Intn(64))*1e7) // 10 MB – 640 MB per layer
		}
		d := newDispatcher(t, cfg, testWorkers(float64(1+rng.Intn(64))*1e7, caps...))

		var live []RequestID
		nextID := RequestID(1)
		for step := 0; step < 8; step++ {
			// Admit a batch of 1-4 requests with random contexts.
			batch := make([]NewRequest, 1+rng.Intn(4))
			for i := range batch {
				batch[i] = NewRequest{ID: nextID, ContextLen: 16 + rng.Intn(4000)}
				nextID++
			}
			if !d.CanFit(batch) {
				continue
			}
			placements, err := d.Dispatch(batch)
			if err != nil {
				// The LP can legitimately fail near capacity even when the
				// aggregate check passed; that must not corrupt state.
				if err := d.CheckInvariants(); err != nil {
					t.Fatalf("round %d: invariants broken after failed dispatch: %v", round, err)
				}
				continue
			}
			for _, r := range batch {
				live = append(live, r.ID)
			}

			r := cfg.GroupRatio()
			for id, x := range placements {
				total := 0
				for w, heads := range x {
					if heads < 0 {
						t.Fatalf("round %d: negative heads %d on worker %d", round, heads, w)
					}
					if heads%r != 0 {
						t.Fatalf("round %d: request %d places %d heads on worker %d, not a multiple of group ratio %d", round, id, heads, w, r)
					}
					total += heads
				}
				if total != cfg.Heads {
					t.Fatalf("round %d: request %d placed %d heads, want the model's %d query heads", round, id, total, cfg.Heads)
				}
			}
			for i, w := range d.Workers() {
				if d.CacheBytes(i) > w.CapacityBytes+1 {
					t.Fatalf("round %d: worker %d cache %g exceeds capacity %g", round, i, d.CacheBytes(i), w.CapacityBytes)
				}
			}
			if err := d.CheckInvariants(); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}

			// Grow a random live request; overflow reports are allowed, the
			// accounting must stay exact either way.
			if len(live) > 0 {
				id := live[rng.Intn(len(live))]
				if _, err := d.ExtendContext(id, rng.Intn(256)); err != nil {
					t.Fatalf("round %d: ExtendContext: %v", round, err)
				}
			}
			// Finish a random request half the time.
			if len(live) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(live))
				d.Remove(live[i])
				live = append(live[:i], live[i+1:]...)
			}
			if err := d.CheckInvariants(); err != nil {
				t.Fatalf("round %d after mutation: %v", round, err)
			}
		}
	}
}
