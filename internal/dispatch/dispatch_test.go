package dispatch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/profile"
)

// testWorkers builds a primary (A100-like) plus n attention workers
// (3090-like) with the given per-layer capacities in bytes.
func testWorkers(primaryCap float64, attnCaps ...float64) []Worker {
	ws := []Worker{{
		ID:            0,
		Attn:          profile.AttnModel{A: 25e-9, B: 1.0 / 1600e9, C: 30e-6},
		Primary:       true,
		CapacityBytes: primaryCap,
	}}
	for i, c := range attnCaps {
		ws = append(ws, Worker{
			ID:            hardware.DeviceID(i + 1),
			Attn:          profile.AttnModel{A: 60e-9, B: 1.0 / 650e9, C: 35e-6},
			Net:           profile.NetModel{Gamma: 1.0 / 11e9, Beta: 30e-6},
			CapacityBytes: c,
		})
	}
	return ws
}

func newDispatcher(t *testing.T, cfg model.Config, ws []Worker) *Dispatcher {
	t.Helper()
	d, err := New(cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(model.OPT30B, nil); err == nil {
		t.Error("no workers should error")
	}
	ws := testWorkers(1e9, 1e9)
	ws[0].Primary = false
	if _, err := New(model.OPT30B, ws); err == nil {
		t.Error("no primary should error")
	}
	ws = testWorkers(1e9)
	ws[0].CapacityBytes = -1
	if _, err := New(model.OPT30B, ws); err == nil {
		t.Error("negative capacity should error")
	}
	bad := model.OPT30B
	bad.Layers = 0
	if _, err := New(bad, testWorkers(1e9)); err == nil {
		t.Error("invalid model should error")
	}
}

func TestSingleWorkerGetsAllHeads(t *testing.T) {
	d := newDispatcher(t, model.OPT30B, testWorkers(1e12))
	got, err := d.Dispatch([]NewRequest{{ID: 1, ContextLen: 500}})
	if err != nil {
		t.Fatal(err)
	}
	if got[1][0] != model.OPT30B.Heads {
		t.Fatalf("placement %v, want all %d heads on worker 0", got[1], model.OPT30B.Heads)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeadConservationAndGroupAlignment(t *testing.T) {
	for _, cfg := range []model.Config{model.OPT30B, model.Llama70B} {
		d := newDispatcher(t, cfg, testWorkers(1e12, 1e12, 1e12))
		reqs := []NewRequest{{ID: 1, ContextLen: 1000}, {ID: 2, ContextLen: 200}, {ID: 3, ContextLen: 4000}}
		got, err := d.Dispatch(reqs)
		if err != nil {
			t.Fatal(err)
		}
		r := cfg.GroupRatio()
		for id, x := range got {
			sum := 0
			for _, h := range x {
				if h%r != 0 {
					t.Errorf("%s req %d: %d heads not a multiple of r=%d", cfg.Name, id, h, r)
				}
				sum += h
			}
			if sum != cfg.Heads {
				t.Errorf("%s req %d: %d heads placed, want %d", cfg.Name, id, sum, cfg.Heads)
			}
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLightLoadStaysLocal(t *testing.T) {
	// Fig. 14 behaviour: under light load the network overhead of remote
	// attention outweighs the compute gain, so heads stay on the primary.
	d := newDispatcher(t, model.Llama13B, testWorkers(1e12, 1e12))
	got, err := d.Dispatch([]NewRequest{{ID: 1, ContextLen: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if got[1][1] != 0 {
		t.Errorf("light load should stay on primary, placement %v", got[1])
	}
}

func TestHeavyLoadSpills(t *testing.T) {
	// With many long requests the primary saturates and the pool workers
	// pick up heads.
	d := newDispatcher(t, model.Llama13B, testWorkers(1e12, 1e12, 1e12))
	var reqs []NewRequest
	for i := 0; i < 64; i++ {
		reqs = append(reqs, NewRequest{ID: int64(i), ContextLen: 4000})
	}
	got, err := d.Dispatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	spilled := 0
	for _, x := range got {
		spilled += x[1] + x[2]
	}
	if spilled == 0 {
		t.Error("heavy load should spill heads to attention workers")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityConstraintRespected(t *testing.T) {
	// Primary capacity fits only a sliver; the rest must land on workers.
	cfg := model.Llama13B
	perHeadToken := float64(cfg.KVBytesPerTokenHeadGroup()) // r=1
	// Capacity for 4 heads of a 1000-token request on the primary.
	primCap := 4 * 1000 * perHeadToken
	d := newDispatcher(t, cfg, testWorkers(primCap, 1e12))
	got, err := d.Dispatch([]NewRequest{{ID: 1, ContextLen: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if got[1][0] > 4 {
		t.Errorf("primary got %d heads, capacity only allows 4", got[1][0])
	}
	if got[1][0]+got[1][1] != cfg.Heads {
		t.Errorf("heads lost: %v", got[1])
	}
}

func TestDispatchFailsWhenNothingFits(t *testing.T) {
	d := newDispatcher(t, model.Llama13B, testWorkers(1000, 1000))
	if _, err := d.Dispatch([]NewRequest{{ID: 1, ContextLen: 100000}}); err == nil {
		t.Fatal("oversized request should fail to place")
	}
	// Failure must not leave residue.
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d.AttnStepTime() != 0 {
		t.Fatal("failed dispatch left load behind")
	}
}

func TestCanFit(t *testing.T) {
	cfg := model.Llama13B
	perTok := float64(cfg.Heads) * float64(cfg.KVBytesPerTokenHeadGroup())
	d := newDispatcher(t, cfg, testWorkers(perTok*150, perTok*150))
	if !d.CanFit([]NewRequest{{ID: 1, ContextLen: 100}}) {
		t.Error("small request should fit")
	}
	if d.CanFit([]NewRequest{{ID: 1, ContextLen: 1000}}) {
		t.Error("oversized request should not fit")
	}
}

func TestDuplicateDispatchRejected(t *testing.T) {
	d := newDispatcher(t, model.OPT30B, testWorkers(1e12))
	if _, err := d.Dispatch([]NewRequest{{ID: 1, ContextLen: 10}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Dispatch([]NewRequest{{ID: 1, ContextLen: 10}}); err == nil {
		t.Fatal("duplicate id should be rejected")
	}
}

func TestExtendContextAndOverflow(t *testing.T) {
	cfg := model.Llama13B
	perHeadToken := float64(cfg.KVBytesPerTokenHeadGroup())
	cap0 := float64(cfg.Heads) * 110 * perHeadToken // fits 110 tokens of all heads
	d := newDispatcher(t, cfg, testWorkers(cap0))
	if _, err := d.Dispatch([]NewRequest{{ID: 1, ContextLen: 100}}); err != nil {
		t.Fatal(err)
	}
	over, err := d.ExtendContext(1, 5)
	if err != nil || len(over) != 0 {
		t.Fatalf("within capacity: over=%v err=%v", over, err)
	}
	over, err = d.ExtendContext(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(over) != 1 || over[0] != 0 {
		t.Fatalf("expected overflow on worker 0, got %v", over)
	}
	if d.ContextLen(1) != 155 {
		t.Fatalf("context = %d want 155", d.ContextLen(1))
	}
	if _, err := d.ExtendContext(99, 1); err == nil {
		t.Fatal("unknown request should error")
	}
}

func TestRemoveReleasesLoad(t *testing.T) {
	d := newDispatcher(t, model.OPT30B, testWorkers(1e12, 1e12))
	var reqs []NewRequest
	for i := 0; i < 16; i++ {
		reqs = append(reqs, NewRequest{ID: int64(i), ContextLen: 2000})
	}
	if _, err := d.Dispatch(reqs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		d.Remove(int64(i))
	}
	if d.AttnStepTime() != 0 {
		t.Fatalf("load remains after removing everything: %g", d.AttnStepTime())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIdealVsCurrent(t *testing.T) {
	d := newDispatcher(t, model.Llama13B, testWorkers(1e12, 1e12))
	var reqs []NewRequest
	for i := 0; i < 32; i++ {
		reqs = append(reqs, NewRequest{ID: int64(i), ContextLen: 1500})
	}
	if _, err := d.Dispatch(reqs); err != nil {
		t.Fatal(err)
	}
	ideal, err := d.IdealAttnTime()
	if err != nil {
		t.Fatal(err)
	}
	current := d.AttnStepTime()
	if ideal <= 0 {
		t.Fatal("ideal should be positive under load")
	}
	if current < ideal-1e-9 {
		t.Fatalf("current (%g) cannot beat ideal (%g)", current, ideal)
	}
}

func TestRebalanceComputeAfterSkew(t *testing.T) {
	// Build skew: dispatch one request, then grow its context massively so
	// its device becomes the bottleneck.
	d := newDispatcher(t, model.Llama13B, testWorkers(1e12, 1e12, 1e12))
	if _, err := d.Dispatch([]NewRequest{{ID: 1, ContextLen: 200}}); err != nil {
		t.Fatal(err)
	}
	// Admit background requests so the pool has load to balance against.
	var reqs []NewRequest
	for i := 2; i < 20; i++ {
		reqs = append(reqs, NewRequest{ID: int64(i), ContextLen: 500})
	}
	if _, err := d.Dispatch(reqs); err != nil {
		t.Fatal(err)
	}
	// Request 1 decodes 30000 tokens (unpredictably long context).
	if _, err := d.ExtendContext(1, 30000); err != nil {
		t.Fatal(err)
	}
	before := d.AttnStepTime()
	rd, err := d.RebalanceCompute(0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rd == nil {
		t.Fatal("expected a re-dispatch under heavy skew")
	}
	if rd.Request != 1 {
		t.Errorf("victim = %d want 1 (the long request)", rd.Request)
	}
	after := d.AttnStepTime()
	if after >= before {
		t.Errorf("re-dispatch did not reduce attention time: %g -> %g", before, after)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceComputeNoActionWhenBalanced(t *testing.T) {
	d := newDispatcher(t, model.Llama13B, testWorkers(1e12, 1e12))
	var reqs []NewRequest
	for i := 0; i < 8; i++ {
		reqs = append(reqs, NewRequest{ID: int64(i), ContextLen: 400})
	}
	if _, err := d.Dispatch(reqs); err != nil {
		t.Fatal(err)
	}
	rd, err := d.RebalanceCompute(0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rd != nil {
		t.Fatalf("balanced state should not re-dispatch, got %+v", rd)
	}
}

func TestRebalanceMemoryMovesVictim(t *testing.T) {
	cfg := model.Llama13B
	perHeadToken := float64(cfg.KVBytesPerTokenHeadGroup())
	// Primary fits ~2 requests of 100 tokens at full heads; worker has
	// plenty.
	primCap := float64(cfg.Heads) * 220 * perHeadToken
	d := newDispatcher(t, cfg, testWorkers(primCap, 1e12))
	if _, err := d.Dispatch([]NewRequest{{ID: 1, ContextLen: 100}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Dispatch([]NewRequest{{ID: 2, ContextLen: 100}}); err != nil {
		t.Fatal(err)
	}
	// Decode pushes the primary over; request 2 (newest) should move.
	over, err := d.ExtendContext(2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(over) == 0 {
		t.Fatal("expected overflow on the primary")
	}
	rd, err := d.RebalanceMemory(over[0], []RequestID{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rd == nil {
		t.Fatal("expected a memory re-dispatch")
	}
	if rd.Request != 2 {
		t.Errorf("victim = %d want 2 (modified LIFO)", rd.Request)
	}
	// The primary's load must now be within capacity.
	if d.CacheBytes(0) > primCap+1 {
		t.Errorf("primary still over capacity: %g > %g", d.CacheBytes(0), primCap)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceMemoryDeclinesWhenClusterFull(t *testing.T) {
	cfg := model.Llama13B
	perHeadToken := float64(cfg.KVBytesPerTokenHeadGroup())
	cap0 := float64(cfg.Heads) * 100 * perHeadToken
	d := newDispatcher(t, cfg, testWorkers(cap0, cap0))
	if _, err := d.Dispatch([]NewRequest{{ID: 1, ContextLen: 100}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Dispatch([]NewRequest{{ID: 2, ContextLen: 100}}); err != nil {
		t.Fatal(err)
	}
	// Entire cluster is full: Σg == ΣM, so re-dispatching cannot help.
	rd, err := d.RebalanceMemory(0, []RequestID{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rd != nil {
		t.Fatalf("full cluster should decline, got %+v", rd)
	}
}

func TestFasterWorkerGetsMoreHeads(t *testing.T) {
	// Two attention workers, one 3x slower: the LP should load the faster
	// one more heavily.
	cfg := model.Llama13B
	ws := testWorkers(0, 1e12, 1e12) // primary has no cache space
	ws[2].Attn.A *= 3
	ws[2].Attn.B *= 3
	d := newDispatcher(t, cfg, ws)
	var reqs []NewRequest
	for i := 0; i < 16; i++ {
		reqs = append(reqs, NewRequest{ID: int64(i), ContextLen: 2000})
	}
	got, err := d.Dispatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := 0, 0
	for _, x := range got {
		fast += x[1]
		slow += x[2]
	}
	if fast <= slow {
		t.Errorf("fast worker got %d heads, slow got %d; want fast > slow", fast, slow)
	}
}

func TestPropertyInvariantsUnderRandomChurn(t *testing.T) {
	cfg := model.Llama70B
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := New(cfg, testWorkers(5e9, 5e9, 5e9))
		if err != nil {
			return false
		}
		next := int64(0)
		var live []int64
		for step := 0; step < 40; step++ {
			switch rng.Intn(3) {
			case 0:
				id := next
				next++
				if _, err := d.Dispatch([]NewRequest{{ID: id, ContextLen: 100 + rng.Intn(2000)}}); err == nil {
					live = append(live, id)
				}
			case 1:
				if len(live) > 0 {
					k := rng.Intn(len(live))
					if _, err := d.ExtendContext(live[k], rng.Intn(50)); err != nil {
						return false
					}
				}
			case 2:
				if len(live) > 0 {
					k := rng.Intn(len(live))
					d.Remove(live[k])
					live = append(live[:k], live[k+1:]...)
				}
			}
			if d.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilization(t *testing.T) {
	cfg := model.Llama13B
	perHeadToken := float64(cfg.KVBytesPerTokenHeadGroup())
	cap0 := float64(cfg.Heads) * 200 * perHeadToken
	d := newDispatcher(t, cfg, testWorkers(cap0))
	if _, err := d.Dispatch([]NewRequest{{ID: 1, ContextLen: 100}}); err != nil {
		t.Fatal(err)
	}
	u := d.Utilization()
	if u[0] < 0.49 || u[0] > 0.51 {
		t.Fatalf("utilization %g want ~0.5", u[0])
	}
}
