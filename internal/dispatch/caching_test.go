package dispatch

import (
	"math/rand"
	"reflect"
	"testing"

	"hetis/internal/model"
)

// TestCachingDecisionEquivalence is the optimization contract's property
// test: a dispatcher with the solver caching layer on (placement memo
// LRU + ideal lower-bound skip + warm-started/patched LPs) must make
// bit-identical decisions to a cache-disabled twin across randomized
// admission / context-growth / rebalance / removal sequences.
// Placements, tracked loads, attention step times, and every
// RebalanceCompute outcome are compared after each operation. Aggregate
// assertions at the end confirm the warm-start layer actually engaged —
// the test must exercise warm-started ideal solves, not just memos.
func TestCachingDecisionEquivalence(t *testing.T) {
	var warmTotal, patchedTotal, idealTotal int
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			// Tight-ish capacities so growth hits limits and rebalancing has
			// something to do; theta varies so both skip and solve paths run.
			caps := []float64{3e8, 2e8, 2e8, 1e8, 1e8, 1e8}
			cached, err := New(model.Llama13B, testWorkersForBench(caps[0], caps[1:]...))
			if err != nil {
				t.Fatal(err)
			}
			plain, err := New(model.Llama13B, testWorkersForBench(caps[0], caps[1:]...))
			if err != nil {
				t.Fatal(err)
			}
			plain.SetCaching(false)

			theta := []float64{0, 0.1, 0.5}[rng.Intn(3)]
			var live []RequestID
			nextID := RequestID(1)
			for step := 0; step < 300; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // admit
					ctx := 64 + rng.Intn(2048)
					nr := []NewRequest{{ID: nextID, ContextLen: ctx}}
					x1, err1 := cached.Dispatch(nr)
					x2, err2 := plain.Dispatch(nr)
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("step %d: dispatch divergence: %v vs %v", step, err1, err2)
					}
					if err1 == nil {
						if !reflect.DeepEqual(x1, x2) {
							t.Fatalf("step %d: placements diverged: %v vs %v", step, x1, x2)
						}
						live = append(live, nextID)
					}
					nextID++
				case op < 7: // grow every live request by one token
					for _, id := range live {
						o1, e1 := cached.ExtendContext(id, 1)
						o2, e2 := plain.ExtendContext(id, 1)
						if (e1 == nil) != (e2 == nil) || !reflect.DeepEqual(o1, o2) {
							t.Fatalf("step %d: extend diverged for %d: %v/%v vs %v/%v", step, id, o1, e1, o2, e2)
						}
					}
				case op < 9: // rebalance check (the cached-path hot spot)
					r1, e1 := cached.RebalanceCompute(theta, nil)
					r2, e2 := plain.RebalanceCompute(theta, nil)
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("step %d: rebalance errors diverged: %v vs %v", step, e1, e2)
					}
					if !reflect.DeepEqual(r1, r2) {
						t.Fatalf("step %d: rebalance decisions diverged: %+v vs %+v", step, r1, r2)
					}
				default: // remove a random live request
					if len(live) == 0 {
						continue
					}
					k := rng.Intn(len(live))
					cached.Remove(live[k])
					plain.Remove(live[k])
					live = append(live[:k], live[k+1:]...)
				}

				// Tracked state must agree bit-for-bit after every step.
				for i := range cached.Workers() {
					if cached.Heads(i) != plain.Heads(i) || cached.CacheBytes(i) != plain.CacheBytes(i) {
						t.Fatalf("step %d: worker %d load drift: h %v/%v g %v/%v",
							step, i, cached.Heads(i), plain.Heads(i), cached.CacheBytes(i), plain.CacheBytes(i))
					}
				}
				if a, b := cached.AttnStepTime(), plain.AttnStepTime(); a != b {
					t.Fatalf("step %d: AttnStepTime drift: %v vs %v", step, a, b)
				}
				for _, id := range live {
					if !reflect.DeepEqual(cached.Placement(id), plain.Placement(id)) {
						t.Fatalf("step %d: placement drift for %d", step, id)
					}
				}
			}
			if err := cached.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if cached.LPSolvesAvoided == 0 {
				t.Error("caching layer never fired; the property test exercised nothing")
			}
			if plain.LPSolvesAvoided != 0 {
				t.Errorf("cache-disabled twin avoided %d solves", plain.LPSolvesAvoided)
			}
			if cached.LPSolves+cached.LPSolvesAvoided != plain.LPSolves {
				t.Errorf("solve accounting: cached %d+%d avoided != plain %d",
					cached.LPSolves, cached.LPSolvesAvoided, plain.LPSolves)
			}
			if cached.LPWarmStarts > cached.LPPhase1Skips {
				t.Errorf("warm starts %d exceed phase-1 skips %d", cached.LPWarmStarts, cached.LPPhase1Skips)
			}
			if plain.LPWarmStarts != 0 || plain.LPPhase1Skips != 0 || plain.LPPatchedRows != 0 {
				t.Errorf("cache-disabled twin used the warm layer: warm=%d skips=%d patched=%d",
					plain.LPWarmStarts, plain.LPPhase1Skips, plain.LPPatchedRows)
			}
			warmTotal += cached.LPWarmStarts
			patchedTotal += cached.LPPatchedRows
			idealTotal += cached.LPIdealSolves
		})
	}
	if patchedTotal == 0 {
		t.Error("no sequence ever patched a cached problem; the re-pose layer was not exercised")
	}
	if idealTotal == 0 {
		t.Error("no sequence ever solved the ideal relaxation; rebalance coverage is gone")
	}
	if warmTotal == 0 {
		t.Error("no sequence ever warm-started an ideal solve; the warm-start layer was not exercised")
	}
}

// TestPlacementMemoLRU pins the multi-entry memo: cycling a handful of
// context lengths through an otherwise-empty dispatcher re-poses LPs the
// single-slot memo of old would always miss, while the LRU answers every
// one of them without solving — and bit-equal to the first cycle.
func TestPlacementMemoLRU(t *testing.T) {
	d, err := New(model.Llama13B, testWorkersForBench(1e12, 1e12, 1e12))
	if err != nil {
		t.Fatal(err)
	}
	ctxs := []int{100, 200, 300, 400}
	first := make(map[int][]int)
	for i, c := range ctxs {
		id := RequestID(i)
		x, err := d.Dispatch([]NewRequest{{ID: id, ContextLen: c}})
		if err != nil {
			t.Fatal(err)
		}
		first[c] = x[id]
		d.Remove(id) // release restores (h, g) to the empty state bit-exactly
	}
	if d.LPSolvesAvoided != 0 {
		t.Fatalf("first cycle already hit the memo %d times", d.LPSolvesAvoided)
	}
	solves := d.LPSolves
	for i, c := range ctxs {
		id := RequestID(10 + i)
		x, err := d.Dispatch([]NewRequest{{ID: id, ContextLen: c}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(x[id], first[c]) {
			t.Errorf("ctx %d: memo answer %v != solved answer %v", c, x[id], first[c])
		}
		d.Remove(id)
	}
	if d.LPSolves != solves {
		t.Errorf("second cycle solved %d LPs; the LRU should have answered all %d", d.LPSolves-solves, len(ctxs))
	}
	if d.LPSolvesAvoided != len(ctxs) {
		t.Errorf("avoided %d solves, want %d", d.LPSolvesAvoided, len(ctxs))
	}
}

// TestSetWarmStartBaselineMode pins the nowarm toggle: with warm starts
// off the dispatcher must behave like the pre-warm-start solver (no
// patched rows, no phase-1 skips) while making identical decisions.
func TestSetWarmStartBaselineMode(t *testing.T) {
	warm, err := New(model.Llama13B, testWorkersForBench(1e12, 1e12, 1e12))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New(model.Llama13B, testWorkersForBench(1e12, 1e12, 1e12))
	if err != nil {
		t.Fatal(err)
	}
	cold.SetWarmStart(false)
	for i := 0; i < 12; i++ {
		nr := []NewRequest{{ID: RequestID(i), ContextLen: 128 + 100*i}}
		x1, err1 := warm.Dispatch(nr)
		x2, err2 := cold.Dispatch(nr)
		if (err1 == nil) != (err2 == nil) || !reflect.DeepEqual(x1, x2) {
			t.Fatalf("step %d: nowarm decisions diverged: %v/%v vs %v/%v", i, x1, err1, x2, err2)
		}
		r1, e1 := warm.RebalanceCompute(0, nil)
		r2, e2 := cold.RebalanceCompute(0, nil)
		if (e1 == nil) != (e2 == nil) || !reflect.DeepEqual(r1, r2) {
			t.Fatalf("step %d: nowarm rebalance diverged: %+v vs %+v", i, r1, r2)
		}
	}
	if cold.LPPatchedRows != 0 || cold.LPPhase1Skips != 0 || cold.LPWarmStarts != 0 {
		t.Errorf("nowarm dispatcher used the warm layer: patched=%d skips=%d warm=%d",
			cold.LPPatchedRows, cold.LPPhase1Skips, cold.LPWarmStarts)
	}
	if warm.LPPatchedRows == 0 {
		t.Error("warm dispatcher never patched a problem")
	}
}

// TestIdealLowerBoundCertified asserts the aggregate bound never exceeds
// the LP optimum it gates, across random loads — the inequality the
// RebalanceCompute skip is sound under.
func TestIdealLowerBoundCertified(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		d, err := New(model.Llama13B, testWorkersForBench(1e12, 1e12, 1e12, 1e12))
		if err != nil {
			t.Fatal(err)
		}
		n := 1 + rng.Intn(60)
		for i := 0; i < n; i++ {
			if _, err := d.Dispatch([]NewRequest{{ID: RequestID(i), ContextLen: 32 + rng.Intn(4096)}}); err != nil {
				t.Fatal(err)
			}
		}
		lb := d.idealLowerBound()
		ideal, err := d.IdealAttnTime()
		if err != nil {
			t.Fatal(err)
		}
		if lb > ideal {
			t.Fatalf("trial %d (n=%d): lower bound %v exceeds ideal %v", trial, n, lb, ideal)
		}
	}
}

// TestPlacementView pins the no-copy accessor: same content as Placement,
// same backing array as the dispatcher's own record, nil for unknowns.
func TestPlacementView(t *testing.T) {
	d, err := New(model.Llama13B, testWorkersForBench(1e12, 1e12))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumWorkers() != 2 {
		t.Fatalf("NumWorkers=%d want 2", d.NumWorkers())
	}
	if _, err := d.Dispatch([]NewRequest{{ID: 7, ContextLen: 100}}); err != nil {
		t.Fatal(err)
	}
	view := d.PlacementView(7)
	if !reflect.DeepEqual(view, d.Placement(7)) {
		t.Errorf("view %v != copy %v", view, d.Placement(7))
	}
	if d.PlacementView(8) != nil {
		t.Error("unknown request should view nil")
	}
}
