package lp

import (
	"math/rand"
	"testing"
)

// randomProblem builds a bounded feasible LP with n variables and m
// inequality constraints.
func randomProblem(rng *rand.Rand, n, m int) *Problem {
	c := make([]float64, n)
	for j := range c {
		c[j] = rng.Float64()*4 - 1
	}
	p := New(n, c)
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.Float64() * 2
		}
		p.AddConstraint(row, LE, rng.Float64()*10+1)
	}
	for j := 0; j < n; j++ {
		row := make([]float64, n)
		row[j] = 1
		p.AddConstraint(row, LE, 50)
	}
	return p
}

// BenchmarkSolveDispatchSized measures a dispatch-shaped LP: ~tens of
// variables (workers × new requests + epigraph) and ~tens of constraints,
// the size the engine solves at every admission.
func BenchmarkSolveDispatchSized(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	probs := make([]*Problem, 16)
	for i := range probs {
		probs[i] = randomProblem(rng, 12, 24)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := probs[i%len(probs)].Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveIdealSized measures the §5.3.1 ideal-placement LP size:
// bucketed requests × workers (~250 variables).
func BenchmarkSolveIdealSized(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	probs := make([]*Problem, 4)
	for i := range probs {
		probs[i] = randomProblem(rng, 240, 40)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := probs[i%len(probs)].Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSolveLargeStressFeasible(t *testing.T) {
	// A larger instance than the engine ever builds must still solve
	// within the iteration cap and produce a feasible point.
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng, 400, 80)
	res, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	for j, x := range res.X {
		if x < -1e-7 {
			t.Fatalf("x[%d] = %g negative", j, x)
		}
		if x > 50+1e-6 {
			t.Fatalf("x[%d] = %g beyond box", j, x)
		}
	}
}
