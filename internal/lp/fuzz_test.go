package lp

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzSimplexEquivalence is the differential fuzz target of the
// warm-start machinery: random small LPs are solved by the frozen legacy
// solver (reference.go) and by the warm-start path — cold (no basis) and
// warm (basis from a pre-patch solve) — and all three must agree on
// status, objective (within 1e-9 relative), and feasibility of the
// returned point.
func FuzzSimplexEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), int64(9))
	f.Add(int64(42), uint8(4), uint8(5), int64(17))
	f.Add(int64(7), uint8(3), uint8(2), int64(3))
	f.Add(int64(1234), uint8(5), uint8(6), int64(99))
	f.Add(int64(-8), uint8(1), uint8(1), int64(0))
	f.Fuzz(func(t *testing.T, seed int64, nv, nc uint8, patchSeed int64) {
		rng := rand.New(rand.NewSource(seed))
		p := randomMixedProblem(rng, 1+int(nv)%5, 1+int(nc)%6)

		want, wantErr := referenceSolve(p)
		cold, coldErr := p.Solve()
		checkAgree(t, "cold", p, cold, coldErr, want, wantErr)

		if want.Status != Optimal {
			return
		}
		// Patch and compare the warm path against a fresh reference solve
		// of the patched problem.
		perturb(p, rand.New(rand.NewSource(patchSeed)))
		want2, wantErr2 := referenceSolve(p)
		warm, _, warmErr := p.SolveFrom(cold.Basis)
		checkAgree(t, "warm", p, warm, warmErr, want2, wantErr2)
	})
}

// checkAgree asserts the differential contract between a solver-under-
// test result and the reference result for the same problem.
func checkAgree(t *testing.T, path string, p *Problem, got Result, gotErr error, want Result, wantErr error) {
	t.Helper()
	if got.Status != want.Status || (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: status %v (err %v), reference %v (err %v)", path, got.Status, gotErr, want.Status, wantErr)
	}
	if got.Status != Optimal {
		return
	}
	tol := 1e-9 * (1 + math.Abs(want.Objective))
	if math.Abs(got.Objective-want.Objective) > tol {
		t.Fatalf("%s: objective %v, reference %v (diff %g > %g)", path, got.Objective, want.Objective,
			math.Abs(got.Objective-want.Objective), tol)
	}
	if v := p.Violation(got.X); v > 1e-6 {
		t.Fatalf("%s: returned point violates constraints by %g", path, v)
	}
	if v := p.Violation(want.X); v > 1e-6 {
		t.Fatalf("%s: reference point violates constraints by %g (oracle bug)", path, v)
	}
}
