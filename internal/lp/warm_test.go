package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomProblem builds a bounded random LP (box constraints keep it from
// being unbounded) plus a mirror copy for the reference solver, shared by
// the differential tests and the fuzzer.
func randomMixedProblem(rng *rand.Rand, nVars, nCons int) *Problem {
	c := make([]float64, nVars)
	for j := range c {
		c[j] = rng.Float64()*4 - 1
	}
	p := New(nVars, c)
	for i := 0; i < nCons; i++ {
		a := make([]float64, nVars)
		for j := range a {
			a[j] = rng.Float64() * 2
		}
		switch rng.Intn(4) {
		case 0:
			p.AddConstraint(a, GE, rng.Float64()*2)
		case 1:
			p.AddConstraint(a, EQ, rng.Float64()*6+1)
		default:
			p.AddConstraint(a, LE, rng.Float64()*10+1)
		}
	}
	for j := 0; j < nVars; j++ {
		row := make([]float64, nVars)
		row[j] = 1
		p.AddConstraint(row, LE, 50)
	}
	return p
}

// perturb patches every constraint's rhs (and an occasional coefficient)
// by small amounts, modeling the between-solve drift of the dispatch LPs.
func perturb(p *Problem, rng *rand.Rand) {
	for i := 0; i < p.NumConstraints(); i++ {
		c := p.cons[i]
		coeffs := append([]float64(nil), c.coeffs...)
		if rng.Intn(3) == 0 {
			j := rng.Intn(len(coeffs))
			coeffs[j] = math.Abs(coeffs[j] + (rng.Float64()-0.5)*0.1)
		}
		p.SetConstraint(i, coeffs, c.op, c.rhs*(1+(rng.Float64()-0.5)*0.05))
	}
}

// TestSolveMatchesReference pins the cold path bit-for-bit against the
// frozen pre-warm-start solver: identical status, solution, and
// objective on random problems — "bit-equal when no basis is given".
func TestSolveMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		p := randomMixedProblem(rng, 2+rng.Intn(4), 2+rng.Intn(4))
		got, gotErr := p.Solve()
		want, wantErr := referenceSolve(p)
		if got.Status != want.Status || (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("trial %d: status %v/%v want %v/%v", trial, got.Status, gotErr, want.Status, wantErr)
		}
		if got.Status != Optimal {
			continue
		}
		if got.Objective != want.Objective {
			t.Fatalf("trial %d: objective %v != reference %v (must be bit-equal)", trial, got.Objective, want.Objective)
		}
		for j := range want.X {
			if got.X[j] != want.X[j] {
				t.Fatalf("trial %d: x[%d] = %v != reference %v", trial, j, got.X[j], want.X[j])
			}
		}
	}
}

// TestSolveFromNilIsCold pins the nil-basis fallback: SolveFrom(nil)
// must be the cold solve, bit-for-bit, with WarmStarted false.
func TestSolveFromNilIsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomMixedProblem(rng, 3, 4)
	warm, stats, err1 := p.SolveFrom(nil)
	cold, err2 := p.Solve()
	if stats.WarmStarted {
		t.Fatal("nil basis reported WarmStarted")
	}
	if (err1 == nil) != (err2 == nil) || warm.Status != cold.Status || warm.Objective != cold.Objective {
		t.Fatalf("SolveFrom(nil) = %v/%v, Solve = %v/%v", warm.Status, err1, cold.Status, err2)
	}
}

// TestWarmStartAfterPatch is the core warm-start contract: solve, patch
// the problem slightly, re-solve from the previous basis. The warm path
// must engage (phase 1 skipped) and agree with the reference solver on
// status, objective (1e-9), and feasibility.
func TestWarmStartAfterPatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	warmed := 0
	for trial := 0; trial < 300; trial++ {
		p := randomMixedProblem(rng, 2+rng.Intn(4), 2+rng.Intn(4))
		first, err := p.Solve()
		if err != nil {
			continue // infeasible instances have no basis to reuse
		}
		perturb(p, rng)
		got, stats, gotErr := p.SolveFrom(first.Basis)
		want, wantErr := referenceSolve(p)
		if got.Status != want.Status || (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("trial %d: status %v/%v want %v/%v (warm=%v)", trial, got.Status, gotErr, want.Status, wantErr, stats.WarmStarted)
		}
		if got.Status != Optimal {
			continue
		}
		if stats.WarmStarted {
			warmed++
		}
		tol := 1e-9 * (1 + math.Abs(want.Objective))
		if math.Abs(got.Objective-want.Objective) > tol {
			t.Fatalf("trial %d: warm objective %v != reference %v", trial, got.Objective, want.Objective)
		}
		if v := p.Violation(got.X); v > 1e-7 {
			t.Fatalf("trial %d: warm solution infeasible (violation %g)", trial, v)
		}
		if got.Basis == nil {
			t.Fatalf("trial %d: optimal result carries no basis", trial)
		}
	}
	if warmed == 0 {
		t.Fatal("warm path never engaged across 300 patched re-solves")
	}
	t.Logf("warm-started %d re-solves", warmed)
}

// TestWarmStartShapeMismatchFallsBack feeds a basis from a different
// problem shape; SolveFrom must quietly run the cold path.
func TestWarmStartShapeMismatchFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	small := randomMixedProblem(rng, 2, 2)
	res, err := small.Solve()
	if err != nil {
		t.Fatal(err)
	}
	big := randomMixedProblem(rng, 4, 5)
	got, stats, gotErr := big.SolveFrom(res.Basis)
	if stats.WarmStarted {
		t.Fatal("shape-mismatched basis was accepted")
	}
	cold, coldErr := big.Solve()
	if (gotErr == nil) != (coldErr == nil) || got.Status != cold.Status || got.Objective != cold.Objective {
		t.Fatalf("fallback %v/%v (err %v) != cold %v/%v (err %v)",
			got.Status, got.Objective, gotErr, cold.Status, cold.Objective, coldErr)
	}
}

// TestWarmStartInfeasiblePatch drives the patched problem infeasible;
// the stale basis cannot be feasible, so the fallback must report
// Infeasible exactly like the cold path.
func TestWarmStartInfeasiblePatch(t *testing.T) {
	p := New(1, []float64{1})
	p.AddConstraint([]float64{1}, LE, 5)
	p.AddConstraint([]float64{1}, GE, 1)
	first, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	p.SetConstraint(1, []float64{1}, GE, 10) // now 10 <= x <= 5: empty
	res, stats, err := p.SolveFrom(first.Basis)
	if err == nil || res.Status != Infeasible {
		t.Fatalf("want infeasible, got %v err=%v (warm=%v)", res.Status, err, stats.WarmStarted)
	}
}

// TestWarmGapCertifiesUniqueness checks the uniqueness certificate: a
// problem with a strict unique optimum reports a positive gap, one with
// a whole optimal edge reports a (near-)zero gap.
func TestWarmGapCertifiesUniqueness(t *testing.T) {
	unique := New(2, []float64{1, 2}) // min x+2y, x+y >= 2 -> unique (2,0)
	unique.AddConstraint([]float64{1, 1}, GE, 2)
	first, err := unique.Solve()
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := unique.SolveFrom(first.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.WarmStarted || stats.Gap <= 0 {
		t.Fatalf("unique optimum: warm=%v gap=%g, want warm with positive gap", stats.WarmStarted, stats.Gap)
	}

	edge := New(2, []float64{1, 1}) // min x+y, x+y >= 2 -> any point on the edge
	edge.AddConstraint([]float64{1, 1}, GE, 2)
	first, err = edge.Solve()
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err = edge.SolveFrom(first.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.WarmStarted || stats.Gap > 1e-9 {
		t.Fatalf("degenerate optimum: warm=%v gap=%g, want warm with ~zero gap", stats.WarmStarted, stats.Gap)
	}
}

// TestSetConstraintReportsChanges pins the patch telemetry: identical
// rewrites report false, any coefficient/op/rhs change reports true, and
// short rows imply zeros.
func TestSetConstraintReportsChanges(t *testing.T) {
	p := New(3, []float64{1, 1, 1})
	p.AddConstraint([]float64{1, 2, 3}, LE, 4)
	if p.SetConstraint(0, []float64{1, 2, 3}, LE, 4) {
		t.Error("identical rewrite reported a change")
	}
	if !p.SetConstraint(0, []float64{1, 2, 3}, LE, 5) {
		t.Error("rhs change not reported")
	}
	if !p.SetConstraint(0, []float64{1, 2, 3}, GE, 5) {
		t.Error("op change not reported")
	}
	if !p.SetConstraint(0, []float64{1, 2}, GE, 5) {
		t.Error("short row (implicit zero) change not reported")
	}
	if p.SetConstraint(0, []float64{1, 2, 0}, GE, 5) {
		t.Error("explicit zero equals implicit zero but reported a change")
	}
	res, err := p.Solve()
	if err != nil || math.Abs(res.Objective-2.5) > 1e-9 {
		t.Fatalf("patched problem solve = %v, %v (want objective 2.5)", res, err)
	}
}

// TestSetObjectivePatches re-poses the objective in place.
func TestSetObjectivePatches(t *testing.T) {
	p := New(2, []float64{1, 1})
	p.AddConstraint([]float64{1, 1}, GE, 2)
	p.SetObjective([]float64{3, 1}) // optimum moves to (0, 2)
	res, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-2) > 1e-9 || math.Abs(res.X[1]-2) > 1e-9 {
		t.Fatalf("objective patch ignored: %+v", res)
	}
}

// TestNoBasisSkipsCapture pins the placement-path knob: a NoBasis
// problem solves identically but returns no basis.
func TestNoBasisSkipsCapture(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := randomMixedProblem(rng, 3, 4)
	with, err1 := p.Solve()
	p.NoBasis = true
	without, err2 := p.Solve()
	if (err1 == nil) != (err2 == nil) || with.Status != without.Status || with.Objective != without.Objective {
		t.Fatalf("NoBasis changed the solve: %v/%v vs %v/%v", with.Status, err1, without.Status, err2)
	}
	if err1 == nil && (with.Basis == nil || without.Basis != nil) {
		t.Fatalf("basis capture: with=%v without=%v, want non-nil/nil", with.Basis, without.Basis)
	}
}

// TestScratchReuseIsInvisible re-solves the same problem twice (scratch
// cold, then warm) and demands bit-identical results.
func TestScratchReuseIsInvisible(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		p := randomMixedProblem(rng, 2+rng.Intn(3), 2+rng.Intn(4))
		a, errA := p.Solve()
		b, errB := p.Solve()
		if (errA == nil) != (errB == nil) || a.Status != b.Status || a.Objective != b.Objective {
			t.Fatalf("trial %d: repeat solve drifted: %v/%v vs %v/%v", trial, a.Status, errA, b.Status, errB)
		}
	}
}
