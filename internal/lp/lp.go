// Package lp implements a small dense linear-programming solver: two-phase
// primal simplex with Bland's anti-cycling rule. It stands in for the
// cvxpy/MOSEK stack the paper uses to solve the head-dispatching problem
// (Eq. 7); those instances are tiny (tens of variables), so a dense tableau
// is exact and fast.
//
// Problems are stated as
//
//	minimize    c·x
//	subject to  aᵢ·x (≤ | = | ≥) bᵢ   for each constraint i
//	            x ≥ 0
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // ≤
	EQ           // =
	GE           // ≥
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case EQ:
		return "="
	case GE:
		return ">="
	}
	return "?"
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// ErrNotOptimal is wrapped by Solve when the problem has no finite optimum.
var ErrNotOptimal = errors.New("lp: no finite optimum")

// constraint is one row of the problem.
type constraint struct {
	coeffs []float64
	op     Op
	rhs    float64
}

// Problem accumulates an LP. The zero value is unusable; create with New.
type Problem struct {
	n    int // number of decision variables
	obj  []float64
	cons []constraint
}

// New creates a problem with n non-negative decision variables and the
// given minimization objective (len(obj) must be n).
func New(n int, obj []float64) *Problem {
	if len(obj) != n {
		panic(fmt.Sprintf("lp: objective has %d coefficients for %d variables", len(obj), n))
	}
	o := make([]float64, n)
	copy(o, obj)
	return &Problem{n: n, obj: o}
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.n }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddConstraint appends coeffs·x op rhs. A copy of coeffs is kept. Sparse
// rows may pass a short slice; missing coefficients are zero.
func (p *Problem) AddConstraint(coeffs []float64, op Op, rhs float64) {
	if len(coeffs) > p.n {
		panic(fmt.Sprintf("lp: constraint has %d coefficients for %d variables", len(coeffs), p.n))
	}
	row := make([]float64, p.n)
	copy(row, coeffs)
	p.cons = append(p.cons, constraint{coeffs: row, op: op, rhs: rhs})
}

// AddSparseConstraint appends Σ coeffs[k]·x[idx[k]] op rhs.
func (p *Problem) AddSparseConstraint(idx []int, coeffs []float64, op Op, rhs float64) {
	if len(idx) != len(coeffs) {
		panic("lp: idx and coeffs length mismatch")
	}
	row := make([]float64, p.n)
	for k, j := range idx {
		if j < 0 || j >= p.n {
			panic(fmt.Sprintf("lp: variable index %d out of range [0,%d)", j, p.n))
		}
		row[j] += coeffs[k]
	}
	p.cons = append(p.cons, constraint{coeffs: row, op: op, rhs: rhs})
}

// Result is the outcome of Solve.
type Result struct {
	Status    Status
	X         []float64 // optimal point (valid when Status == Optimal)
	Objective float64   // c·x at the optimum
}

const eps = 1e-9

// Solve runs two-phase simplex and returns the optimum.
func (p *Problem) Solve() (Result, error) {
	m := len(p.cons)
	n := p.n

	// Normalize rows to rhs >= 0.
	rows := make([]constraint, m)
	for i, c := range p.cons {
		rows[i] = c
		if c.rhs < 0 {
			flipped := make([]float64, n)
			for j, v := range c.coeffs {
				flipped[j] = -v
			}
			var op Op
			switch c.op {
			case LE:
				op = GE
			case GE:
				op = LE
			default:
				op = EQ
			}
			rows[i] = constraint{coeffs: flipped, op: op, rhs: -c.rhs}
		}
	}

	// Count auxiliary columns: one slack/surplus per inequality, one
	// artificial per >= or = row.
	nSlack := 0
	nArt := 0
	for _, c := range rows {
		if c.op != EQ {
			nSlack++
		}
		if c.op != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt

	// Build tableau: m rows × (total+1) columns, last column is rhs.
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackCol := n
	artCol := n + nSlack
	artStart := artCol
	for i, c := range rows {
		row := make([]float64, total+1)
		copy(row, c.coeffs)
		row[total] = c.rhs
		switch c.op {
		case LE:
			row[slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			basis[i] = artCol
			artCol++
		}
		tab[i] = row
	}

	if nArt > 0 {
		// Phase 1: minimize the sum of artificial variables.
		phase1 := make([]float64, total)
		for j := artStart; j < artStart+nArt; j++ {
			phase1[j] = 1
		}
		status := simplex(tab, basis, phase1)
		if status == Unbounded {
			return Result{Status: Infeasible}, fmt.Errorf("%w: phase 1 unbounded (numerical trouble)", ErrNotOptimal)
		}
		// Feasible iff the artificial objective is ~0.
		var artSum float64
		for i, b := range basis {
			if b >= artStart {
				artSum += tab[i][total]
			}
		}
		if artSum > 1e-7 {
			return Result{Status: Infeasible}, fmt.Errorf("%w: infeasible (artificial residual %g)", ErrNotOptimal, artSum)
		}
		// Drive remaining artificials out of the basis where possible.
		for i, b := range basis {
			if b < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; zero it including the artificial column.
				for j := range tab[i] {
					tab[i][j] = 0
				}
			}
		}
	}

	// Phase 2: original objective (artificial columns fixed at zero: mask
	// them so they never re-enter).
	phase2 := make([]float64, total)
	copy(phase2, p.obj)
	for j := artStart; j < artStart+nArt; j++ {
		phase2[j] = math.Inf(1) // sentinel: blocked column
	}
	status := simplex(tab, basis, phase2)
	if status == Unbounded {
		return Result{Status: Unbounded}, fmt.Errorf("%w: unbounded", ErrNotOptimal)
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][total]
		}
	}
	var obj float64
	for j := 0; j < n; j++ {
		obj += p.obj[j] * x[j]
	}
	return Result{Status: Optimal, X: x, Objective: obj}, nil
}

// simplex optimizes the tableau in place for objective c (length = number
// of structural columns; +Inf marks blocked columns). Returns Optimal or
// Unbounded.
//
// Reduced costs r_j = c_j − c_B·B⁻¹A_j are computed directly from the
// tableau, skipping basic variables with zero cost — exactly what the
// original per-row `if cb != 0` guard did, so the arithmetic (and thus
// every pivot decision) is bit-identical. The hot-loop optimization is
// to precompute the set of nonzero-cost basic rows once per pivot
// instead of rediscovering it for every candidate column: the set is
// tiny (the artificial rows in phase 1, usually a single row in phase
// 2), which turns the entering-column scan from O(columns × rows) into
// O(columns × |hot rows|).
func simplex(tab [][]float64, basis []int, c []float64) Status {
	m := len(tab)
	if m == 0 {
		return Optimal
	}
	total := len(tab[0]) - 1
	blocked := make([]bool, len(c))
	for j, cj := range c {
		blocked[j] = math.IsInf(cj, 1)
	}
	// hot lists the basic rows whose basis variable carries nonzero cost,
	// in ascending row order (the accumulation order of the original
	// loop). Rebuilt after every pivot, O(m).
	hot := make([]int, 0, m)
	rebuildHot := func() {
		hot = hot[:0]
		for i, b := range basis {
			if b < len(c) && !blocked[b] && c[b] != 0 {
				hot = append(hot, i)
			}
		}
	}
	rebuildHot()
	for iter := 0; ; iter++ {
		if iter > 200000 {
			// With Bland's rule this cannot cycle; this is a hard safety
			// net for pathological numerics.
			return Optimal
		}
		entering := -1
		for j := 0; j < total; j++ {
			if blocked[j] {
				continue
			}
			r := c[j]
			for _, i := range hot {
				r -= c[basis[i]] * tab[i][j]
			}
			if r < -eps {
				entering = j // Bland: first improving column
				break
			}
		}
		if entering == -1 {
			return Optimal
		}
		// Ratio test with Bland tie-breaking on the leaving basic variable.
		leaving := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][entering]
			if a > eps {
				ratio := tab[i][total] / a
				if ratio < best-eps || (ratio < best+eps && (leaving == -1 || basis[i] < basis[leaving])) {
					best = ratio
					leaving = i
				}
			}
		}
		if leaving == -1 {
			return Unbounded
		}
		pivot(tab, basis, leaving, entering)
		rebuildHot()
	}
}

// pivot makes column j basic in row i.
func pivot(tab [][]float64, basis []int, i, j int) {
	piv := tab[i][j]
	row := tab[i]
	inv := 1 / piv
	for k := range row {
		row[k] *= inv
	}
	row[j] = 1 // kill rounding
	for r := range tab {
		if r == i {
			continue
		}
		f := tab[r][j]
		if f == 0 {
			continue
		}
		other := tab[r]
		for k := range other {
			other[k] -= f * row[k]
		}
		other[j] = 0
	}
	basis[i] = j
}
