// Package lp implements a small dense linear-programming solver: two-phase
// primal simplex with Bland's anti-cycling rule. It stands in for the
// cvxpy/MOSEK stack the paper uses to solve the head-dispatching problem
// (Eq. 7); those instances are tiny (tens of variables), so a dense tableau
// is exact and fast.
//
// Problems are stated as
//
//	minimize    c·x
//	subject to  aᵢ·x (≤ | = | ≥) bᵢ   for each constraint i
//	            x ≥ 0
//
// Solve runs the classic two-phase method from scratch. Successive solves
// of the same problem shape can skip phase 1 entirely: Solve returns the
// optimal Basis, constraints can be patched in place with SetConstraint,
// and SolveFrom refactors the tableau directly to the supplied basis and
// resumes phase 2 from there (see warm.go). A frozen copy of the original
// solver lives in reference.go as the differential-test oracle.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // ≤
	EQ           // =
	GE           // ≥
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case EQ:
		return "="
	case GE:
		return ">="
	}
	return "?"
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// ErrNotOptimal is wrapped by Solve when the problem has no finite optimum.
var ErrNotOptimal = errors.New("lp: no finite optimum")

// constraint is one row of the problem.
type constraint struct {
	coeffs []float64
	op     Op
	rhs    float64
}

// Problem accumulates an LP. The zero value is unusable; create with New.
type Problem struct {
	// NoBasis skips capturing Result.Basis on Optimal cold solves.
	// Callers that never warm-start from this problem (the dispatch
	// placement path solves ~30x more often than it could ever reuse a
	// basis) set it to keep the hot solve path free of the capture
	// allocations. SolveFrom's warm path captures regardless — a warm
	// start implies the basis is wanted.
	NoBasis bool

	n    int // number of decision variables
	obj  []float64
	cons []constraint

	// Scratch reused across solves of this problem, so re-posing a
	// patched problem allocates nothing once warm. Every buffer is fully
	// overwritten (or zeroed) before use, so reuse is arithmetically
	// invisible; only Result data (X, Basis) is freshly allocated because
	// it escapes to the caller.
	tab        [][]float64  // tableau rows
	normBuf    []constraint // normalized-row view
	flipBuf    []float64    // backing store for sign-flipped rows
	basisBuf   []int        // row -> basic column
	objBuf     []float64    // phase-1 / warm objective
	obj2Buf    []float64    // phase-2 objective
	blockedBuf []bool       // simplex blocked-column scratch
	hotBuf     []int        // simplex hot-row scratch
	basicBuf   []bool       // reduced-cost scans' basic-column marks
	ownerBuf   []int        // warm refactorization slack owners
	assignBuf  []bool       // warm refactorization row assignment
}

// floatScratch returns a zeroed length-n view of *buf, growing it as
// needed.
func floatScratch(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	s := (*buf)[:n]
	clear(s)
	return s
}

// intScratch returns a length-n view of *buf with unspecified contents
// (callers fully assign it), growing as needed.
func intScratch(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	return (*buf)[:n]
}

// boolScratch returns a zeroed length-n view of *buf, growing as needed.
func boolScratch(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	s := (*buf)[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// New creates a problem with n non-negative decision variables and the
// given minimization objective (len(obj) must be n).
func New(n int, obj []float64) *Problem {
	if len(obj) != n {
		panic(fmt.Sprintf("lp: objective has %d coefficients for %d variables", len(obj), n))
	}
	o := make([]float64, n)
	copy(o, obj)
	return &Problem{n: n, obj: o}
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.n }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddConstraint appends coeffs·x op rhs. A copy of coeffs is kept. Sparse
// rows may pass a short slice; missing coefficients are zero.
func (p *Problem) AddConstraint(coeffs []float64, op Op, rhs float64) {
	if len(coeffs) > p.n {
		panic(fmt.Sprintf("lp: constraint has %d coefficients for %d variables", len(coeffs), p.n))
	}
	row := make([]float64, p.n)
	copy(row, coeffs)
	p.cons = append(p.cons, constraint{coeffs: row, op: op, rhs: rhs})
}

// AddSparseConstraint appends Σ coeffs[k]·x[idx[k]] op rhs.
func (p *Problem) AddSparseConstraint(idx []int, coeffs []float64, op Op, rhs float64) {
	if len(idx) != len(coeffs) {
		panic("lp: idx and coeffs length mismatch")
	}
	row := make([]float64, p.n)
	for k, j := range idx {
		if j < 0 || j >= p.n {
			panic(fmt.Sprintf("lp: variable index %d out of range [0,%d)", j, p.n))
		}
		row[j] += coeffs[k]
	}
	p.cons = append(p.cons, constraint{coeffs: row, op: op, rhs: rhs})
}

// SetObjective replaces the objective coefficients in place (len(obj)
// must be the variable count). Together with SetConstraint it lets a
// caller re-pose a recurring problem shape as a patch against the
// existing Problem instead of rebuilding it.
func (p *Problem) SetObjective(obj []float64) {
	if len(obj) != p.n {
		panic(fmt.Sprintf("lp: objective has %d coefficients for %d variables", len(obj), p.n))
	}
	copy(p.obj, obj)
}

// SetConstraint overwrites constraint i with coeffs·x op rhs, like
// AddConstraint but in place. It reports whether any coefficient, the
// relation, or the right-hand side actually changed (bitwise comparison)
// — the dispatch layer's patched-row telemetry. Sparse rows may pass a
// short slice; missing coefficients are zero.
func (p *Problem) SetConstraint(i int, coeffs []float64, op Op, rhs float64) bool {
	if i < 0 || i >= len(p.cons) {
		panic(fmt.Sprintf("lp: constraint index %d out of range [0,%d)", i, len(p.cons)))
	}
	if len(coeffs) > p.n {
		panic(fmt.Sprintf("lp: constraint has %d coefficients for %d variables", len(coeffs), p.n))
	}
	c := &p.cons[i]
	changed := c.op != op || c.rhs != rhs
	c.op, c.rhs = op, rhs
	for j := range c.coeffs {
		var v float64
		if j < len(coeffs) {
			v = coeffs[j]
		}
		if c.coeffs[j] != v {
			c.coeffs[j] = v
			changed = true
		}
	}
	return changed
}

// Basis is the row→basic-column assignment at an optimum, together with
// the shape fingerprint (variable count and normalized relations) it is
// valid for. Solve and SolveFrom return the final basis; SolveFrom
// accepts one to warm-start a later solve of the same shape.
type Basis struct {
	n    int   // structural variable count of the producing problem
	cols []int // basic column per tableau row, solver column numbering
	ops  []Op  // per-row relations after rhs-sign normalization
}

// NumRows returns the constraint-row count the basis was produced for.
func (b *Basis) NumRows() int { return len(b.cols) }

// Result is the outcome of Solve.
type Result struct {
	Status    Status
	X         []float64 // optimal point (valid when Status == Optimal)
	Objective float64   // c·x at the optimum
	// Basis is the final basis of an Optimal solve (nil otherwise), for
	// warm-starting a subsequent SolveFrom of the same problem shape.
	Basis *Basis

	// gap carries the warm path's uniqueness certificate from solveWarm
	// to SolveFrom, which surfaces it as SolveStats.Gap.
	gap float64
}

const eps = 1e-9

// normalizeRows returns the constraints with rhs sign-normalized to be
// non-negative (flipping coefficients and relation where needed) — the
// canonical form both Solve and SolveFrom build tableaux from.
// The returned slice (and the flipped rows backing it) is scratch owned
// by the Problem, valid until the next solve-family call.
func (p *Problem) normalizeRows() []constraint {
	n := p.n
	m := len(p.cons)
	if cap(p.normBuf) < m {
		p.normBuf = make([]constraint, m)
	}
	rows := p.normBuf[:m]
	nFlip := 0
	for _, c := range p.cons {
		if c.rhs < 0 {
			nFlip++
		}
	}
	if cap(p.flipBuf) < nFlip*n {
		p.flipBuf = make([]float64, nFlip*n)
	}
	k := 0
	for i, c := range p.cons {
		rows[i] = c
		if c.rhs < 0 {
			flipped := p.flipBuf[k*n : (k+1)*n : (k+1)*n]
			k++
			for j, v := range c.coeffs {
				flipped[j] = -v
			}
			var op Op
			switch c.op {
			case LE:
				op = GE
			case GE:
				op = LE
			default:
				op = EQ
			}
			rows[i] = constraint{coeffs: flipped, op: op, rhs: -c.rhs}
		}
	}
	return rows
}

// slackArtCount returns the auxiliary-column counts of the normalized
// rows: one slack/surplus per inequality, one artificial per >= or = row.
func slackArtCount(rows []constraint) (nSlack, nArt int) {
	for _, c := range rows {
		if c.op != EQ {
			nSlack++
		}
		if c.op != LE {
			nArt++
		}
	}
	return nSlack, nArt
}

// tableauRows returns m zeroed rows of the given width, reusing the
// problem's scratch when the shape matches. Zeroed reuse is bit-identical
// to fresh allocation.
func (p *Problem) tableauRows(m, width int) [][]float64 {
	if len(p.tab) != m || (m > 0 && len(p.tab[0]) != width) {
		p.tab = make([][]float64, m)
		for i := range p.tab {
			p.tab[i] = make([]float64, width)
		}
		return p.tab
	}
	for i := range p.tab {
		clear(p.tab[i])
	}
	return p.tab
}

// captureBasis snapshots the final row→column assignment plus the shape
// fingerprint SolveFrom validates against.
func captureBasis(n int, basis []int, rows []constraint) *Basis {
	b := &Basis{n: n, cols: append([]int(nil), basis...), ops: make([]Op, len(rows))}
	for i, c := range rows {
		b.ops[i] = c.op
	}
	return b
}

// Solve runs two-phase simplex and returns the optimum.
func (p *Problem) Solve() (Result, error) {
	m := len(p.cons)
	n := p.n

	// Normalize rows to rhs >= 0.
	rows := p.normalizeRows()

	nSlack, nArt := slackArtCount(rows)
	total := n + nSlack + nArt

	// Build tableau: m rows × (total+1) columns, last column is rhs.
	tab := p.tableauRows(m, total+1)
	basis := intScratch(&p.basisBuf, m)
	slackCol := n
	artCol := n + nSlack
	artStart := artCol
	for i, c := range rows {
		row := tab[i]
		copy(row, c.coeffs)
		row[total] = c.rhs
		switch c.op {
		case LE:
			row[slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			basis[i] = artCol
			artCol++
		}
	}

	if nArt > 0 {
		// Phase 1: minimize the sum of artificial variables.
		phase1 := floatScratch(&p.objBuf, total)
		for j := artStart; j < artStart+nArt; j++ {
			phase1[j] = 1
		}
		status := p.simplex(tab, basis, phase1)
		if status == Unbounded {
			return Result{Status: Infeasible}, fmt.Errorf("%w: phase 1 unbounded (numerical trouble)", ErrNotOptimal)
		}
		// Feasible iff the artificial objective is ~0.
		var artSum float64
		for i, b := range basis {
			if b >= artStart {
				artSum += tab[i][total]
			}
		}
		if artSum > 1e-7 {
			return Result{Status: Infeasible}, fmt.Errorf("%w: infeasible (artificial residual %g)", ErrNotOptimal, artSum)
		}
		// Drive remaining artificials out of the basis where possible.
		for i, b := range basis {
			if b < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; zero it including the artificial column.
				for j := range tab[i] {
					tab[i][j] = 0
				}
			}
		}
	}

	// Phase 2: original objective (artificial columns fixed at zero: mask
	// them so they never re-enter).
	phase2 := floatScratch(&p.obj2Buf, total)
	copy(phase2, p.obj)
	for j := artStart; j < artStart+nArt; j++ {
		phase2[j] = math.Inf(1) // sentinel: blocked column
	}
	status := p.simplex(tab, basis, phase2)
	if status == Unbounded {
		return Result{Status: Unbounded}, fmt.Errorf("%w: unbounded", ErrNotOptimal)
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][total]
		}
	}
	var obj float64
	for j := 0; j < n; j++ {
		obj += p.obj[j] * x[j]
	}
	res := Result{Status: Optimal, X: x, Objective: obj}
	if !p.NoBasis {
		res.Basis = captureBasis(n, basis, rows)
	}
	return res, nil
}

// simplex optimizes the tableau in place for objective c (length = number
// of structural columns; +Inf marks blocked columns). Returns Optimal or
// Unbounded. It is a Problem method only to borrow per-problem scratch;
// the arithmetic is pure.
//
// Reduced costs r_j = c_j − c_B·B⁻¹A_j are computed directly from the
// tableau, skipping basic variables with zero cost — exactly what the
// original per-row `if cb != 0` guard did, so the arithmetic (and thus
// every pivot decision) is bit-identical. The hot-loop optimization is
// to precompute the set of nonzero-cost basic rows once per pivot
// instead of rediscovering it for every candidate column: the set is
// tiny (the artificial rows in phase 1, usually a single row in phase
// 2), which turns the entering-column scan from O(columns × rows) into
// O(columns × |hot rows|).
func (p *Problem) simplex(tab [][]float64, basis []int, c []float64) Status {
	m := len(tab)
	if m == 0 {
		return Optimal
	}
	total := len(tab[0]) - 1
	blocked := boolScratch(&p.blockedBuf, len(c))
	for j, cj := range c {
		blocked[j] = math.IsInf(cj, 1)
	}
	// hot lists the basic rows whose basis variable carries nonzero cost,
	// in ascending row order (the accumulation order of the original
	// loop). Rebuilt after every pivot, O(m).
	hot := intScratch(&p.hotBuf, m)[:0]
	rebuildHot := func() {
		hot = hot[:0]
		for i, b := range basis {
			if b < len(c) && !blocked[b] && c[b] != 0 {
				hot = append(hot, i)
			}
		}
	}
	rebuildHot()
	for iter := 0; ; iter++ {
		if iter > 200000 {
			// With Bland's rule this cannot cycle; this is a hard safety
			// net for pathological numerics.
			return Optimal
		}
		entering := -1
		for j := 0; j < total; j++ {
			if blocked[j] {
				continue
			}
			r := c[j]
			for _, i := range hot {
				r -= c[basis[i]] * tab[i][j]
			}
			if r < -eps {
				entering = j // Bland: first improving column
				break
			}
		}
		if entering == -1 {
			return Optimal
		}
		// Ratio test with Bland tie-breaking on the leaving basic variable.
		leaving := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][entering]
			if a > eps {
				ratio := tab[i][total] / a
				if ratio < best-eps || (ratio < best+eps && (leaving == -1 || basis[i] < basis[leaving])) {
					best = ratio
					leaving = i
				}
			}
		}
		if leaving == -1 {
			return Unbounded
		}
		pivot(tab, basis, leaving, entering)
		rebuildHot()
	}
}

// pivot makes column j basic in row i.
func pivot(tab [][]float64, basis []int, i, j int) {
	piv := tab[i][j]
	row := tab[i]
	inv := 1 / piv
	for k := range row {
		row[k] *= inv
	}
	row[j] = 1 // kill rounding
	for r := range tab {
		if r == i {
			continue
		}
		f := tab[r][j]
		if f == 0 {
			continue
		}
		other := tab[r]
		for k := range other {
			other[k] -= f * row[k]
		}
		other[j] = 0
	}
	basis[i] = j
}
