package lp

import (
	"fmt"
	"math"
)

// This file is a frozen copy of the dense two-phase simplex as it stood
// before the warm-start machinery landed. It exists purely as the oracle
// for differential tests (TestSolveMatchesReference and
// FuzzSimplexEquivalence): the production Solve/SolveFrom paths may be
// optimized further, but they must keep agreeing with this implementation
// on status, objective, and feasibility. Do not optimize this file.

// referenceSolve runs the frozen two-phase simplex and returns the
// optimum.
func referenceSolve(p *Problem) (Result, error) {
	m := len(p.cons)
	n := p.n

	rows := make([]constraint, m)
	for i, c := range p.cons {
		rows[i] = c
		if c.rhs < 0 {
			flipped := make([]float64, n)
			for j, v := range c.coeffs {
				flipped[j] = -v
			}
			var op Op
			switch c.op {
			case LE:
				op = GE
			case GE:
				op = LE
			default:
				op = EQ
			}
			rows[i] = constraint{coeffs: flipped, op: op, rhs: -c.rhs}
		}
	}

	nSlack := 0
	nArt := 0
	for _, c := range rows {
		if c.op != EQ {
			nSlack++
		}
		if c.op != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt

	tab := make([][]float64, m)
	basis := make([]int, m)
	slackCol := n
	artCol := n + nSlack
	artStart := artCol
	for i, c := range rows {
		row := make([]float64, total+1)
		copy(row, c.coeffs)
		row[total] = c.rhs
		switch c.op {
		case LE:
			row[slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			basis[i] = artCol
			artCol++
		}
		tab[i] = row
	}

	if nArt > 0 {
		phase1 := make([]float64, total)
		for j := artStart; j < artStart+nArt; j++ {
			phase1[j] = 1
		}
		status := referenceSimplex(tab, basis, phase1)
		if status == Unbounded {
			return Result{Status: Infeasible}, fmt.Errorf("%w: phase 1 unbounded (numerical trouble)", ErrNotOptimal)
		}
		var artSum float64
		for i, b := range basis {
			if b >= artStart {
				artSum += tab[i][total]
			}
		}
		if artSum > 1e-7 {
			return Result{Status: Infeasible}, fmt.Errorf("%w: infeasible (artificial residual %g)", ErrNotOptimal, artSum)
		}
		for i, b := range basis {
			if b < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(tab[i][j]) > eps {
					referencePivot(tab, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				for j := range tab[i] {
					tab[i][j] = 0
				}
			}
		}
	}

	phase2 := make([]float64, total)
	copy(phase2, p.obj)
	for j := artStart; j < artStart+nArt; j++ {
		phase2[j] = math.Inf(1)
	}
	status := referenceSimplex(tab, basis, phase2)
	if status == Unbounded {
		return Result{Status: Unbounded}, fmt.Errorf("%w: unbounded", ErrNotOptimal)
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][total]
		}
	}
	var obj float64
	for j := 0; j < n; j++ {
		obj += p.obj[j] * x[j]
	}
	return Result{Status: Optimal, X: x, Objective: obj}, nil
}

// referenceSimplex is the frozen tableau optimizer (Bland's rule,
// hot-row reduced-cost pricing).
func referenceSimplex(tab [][]float64, basis []int, c []float64) Status {
	m := len(tab)
	if m == 0 {
		return Optimal
	}
	total := len(tab[0]) - 1
	blocked := make([]bool, len(c))
	for j, cj := range c {
		blocked[j] = math.IsInf(cj, 1)
	}
	hot := make([]int, 0, m)
	rebuildHot := func() {
		hot = hot[:0]
		for i, b := range basis {
			if b < len(c) && !blocked[b] && c[b] != 0 {
				hot = append(hot, i)
			}
		}
	}
	rebuildHot()
	for iter := 0; ; iter++ {
		if iter > 200000 {
			return Optimal
		}
		entering := -1
		for j := 0; j < total; j++ {
			if blocked[j] {
				continue
			}
			r := c[j]
			for _, i := range hot {
				r -= c[basis[i]] * tab[i][j]
			}
			if r < -eps {
				entering = j
				break
			}
		}
		if entering == -1 {
			return Optimal
		}
		leaving := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][entering]
			if a > eps {
				ratio := tab[i][total] / a
				if ratio < best-eps || (ratio < best+eps && (leaving == -1 || basis[i] < basis[leaving])) {
					best = ratio
					leaving = i
				}
			}
		}
		if leaving == -1 {
			return Unbounded
		}
		referencePivot(tab, basis, leaving, entering)
		rebuildHot()
	}
}

// referencePivot is the frozen pivot kernel.
func referencePivot(tab [][]float64, basis []int, i, j int) {
	piv := tab[i][j]
	row := tab[i]
	inv := 1 / piv
	for k := range row {
		row[k] *= inv
	}
	row[j] = 1
	for r := range tab {
		if r == i {
			continue
		}
		f := tab[r][j]
		if f == 0 {
			continue
		}
		other := tab[r]
		for k := range other {
			other[k] -= f * row[k]
		}
		other[j] = 0
	}
	basis[i] = j
}
