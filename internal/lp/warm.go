package lp

import (
	"fmt"
	"math"
)

// Warm-start tolerances. The dispatch layer adds its own decision-level
// guards on top; these only decide whether a supplied basis is usable at
// all.
const (
	// warmPivotTol rejects a basis whose refactorization would pivot on a
	// (near-)singular element: the patched columns no longer form a basis.
	warmPivotTol = 1e-9
	// warmFeasTol is the tolerance under which a slightly negative
	// refactored basic value is clamped to zero; anything larger routes
	// through the dual-simplex repair (or, failing that, the cold path).
	warmFeasTol = 1e-9
	// warmCheckTol is the relative constraint-violation budget of the
	// post-solve verification; a warm result violating it is discarded and
	// the solve falls back to the cold two-phase path.
	warmCheckTol = 1e-7
)

// SolveStats describes how a SolveFrom call ran.
type SolveStats struct {
	// WarmStarted reports that the supplied basis was accepted: the
	// tableau was refactored directly to it and phase 1 never ran. False
	// means the call fell back to the cold two-phase Solve (nil basis,
	// shape mismatch, singular or infeasible basis, or a warm result that
	// failed post-solve verification).
	WarmStarted bool
	// Gap is the smallest scaled reduced cost over nonbasic columns at
	// the warm optimum (+Inf when every column is basic) — a uniqueness
	// certificate: a strictly positive gap proves the optimal point is
	// unique, so any correct solver returns the same solution. Valid only
	// when WarmStarted and the result is Optimal.
	Gap float64
	// Fallback names the warm precondition that failed when WarmStarted
	// is false and a basis was supplied: "shape", "ops", "artificial",
	// "singular", "dual-infeasible", "dual-unbounded", or "violation".
	// Empty when the warm path ran (or no basis was given).
	Fallback string
}

// SolveFrom solves the problem like Solve, but when the supplied basis
// fits the current problem shape it refactors the tableau directly to
// that basis and resumes phase-2 simplex from there, skipping phase 1
// entirely. With a nil or unusable basis (or when any warm sanity check
// fails) it falls back to Solve, so the result is always valid; stats
// report which path ran. Cold results are bit-identical to Solve; warm
// results are verified feasible and share the optimal objective, but may
// differ from Solve in final-ulp noise or — when the optimum is not
// unique (stats.Gap ≈ 0) — land on another optimal vertex.
func (p *Problem) SolveFrom(b *Basis) (Result, SolveStats, error) {
	if b == nil {
		res, err := p.Solve()
		return res, SolveStats{}, err
	}
	res, stage, err := p.solveWarm(b)
	if stage == "" {
		return res, SolveStats{WarmStarted: true, Gap: res.gap}, err
	}
	res, err = p.Solve()
	return res, SolveStats{Fallback: stage}, err
}

// reject is solveWarm's bail-out: the stage names the warm precondition
// that failed, telling the caller to run the cold path (and SolveStats
// consumers why).
func reject(stage string) (Result, string, error) {
	return Result{}, stage, nil
}

// solveWarm attempts the warm-started solve; the unexported Result.gap
// field carries the uniqueness certificate out to SolveFrom.
func (p *Problem) solveWarm(b *Basis) (Result, string, error) {
	m := len(p.cons)
	n := p.n
	if b == nil || b.n != n || len(b.cols) != m || len(b.ops) != m {
		return reject("shape")
	}
	rows := p.normalizeRows()
	for i, c := range rows {
		if c.op != b.ops[i] {
			// A rhs sign flip changed the slack layout; the basis column
			// numbering no longer lines up.
			return reject("ops")
		}
	}
	nSlack, _ := slackArtCount(rows)
	total := n + nSlack
	for _, c := range b.cols {
		if c < 0 || c >= total {
			// The basis holds an artificial column (a redundant row in the
			// producing solve); it cannot seed an artificial-free tableau.
			return reject("artificial")
		}
	}

	// Build the artificial-free tableau: structural + slack/surplus
	// columns, rhs last. Rows are equilibrated to unit max magnitude —
	// the dispatch LPs mix byte-scale capacity rows with second-scale
	// epigraph rows, and row scaling leaves B⁻¹A and the basic solution
	// unchanged in exact arithmetic while making the pivot and
	// feasibility tolerances meaningful across rows.
	tab := p.tableauRows(m, total+1)
	slackOwner := intScratch(&p.ownerBuf, total-n) // slack column (offset by n) → owning row
	slackCol := n
	for i, c := range rows {
		row := tab[i]
		copy(row, c.coeffs)
		row[total] = c.rhs
		switch c.op {
		case LE:
			row[slackCol] = 1
			slackOwner[slackCol-n] = i
			slackCol++
		case GE:
			row[slackCol] = -1
			slackOwner[slackCol-n] = i
			slackCol++
		}
		scale := 0.0
		for j := 0; j < total; j++ {
			if a := math.Abs(row[j]); a > scale {
				scale = a
			}
		}
		if scale > 0 && scale != 1 {
			inv := 1 / scale
			for j := range row {
				row[j] *= inv
			}
		}
	}

	// Refactor to the supplied basis columns. Only the column SET matters
	// (the producing solve's row↔column pairing is not an elimination
	// order for the patched matrix). Slack and surplus columns are
	// singletons, so they claim their own rows first — an exact
	// triangular step with no fill-in — and only the structural basis
	// columns need Gaussian elimination, with partial pivoting over the
	// rows the slacks left unclaimed. Eliminating in the reverse order
	// (structural first) can consume a slack's only row and leave the
	// slack column nothing but fill-in noise.
	basis := intScratch(&p.basisBuf, m)
	for i := range basis {
		basis[i] = -1
	}
	assigned := boolScratch(&p.assignBuf, m)
	for _, col := range b.cols {
		if col < n {
			continue
		}
		i := slackOwner[col-n]
		if assigned[i] || tab[i][col] == 0 {
			return reject("singular")
		}
		pivot(tab, basis, i, col)
		assigned[i] = true
	}
	for _, col := range b.cols {
		if col >= n {
			continue
		}
		best, bestAbs := -1, warmPivotTol
		for i := 0; i < m; i++ {
			if !assigned[i] {
				if a := math.Abs(tab[i][col]); a > bestAbs {
					best, bestAbs = i, a
				}
			}
		}
		if best < 0 {
			return reject("singular")
		}
		pivot(tab, basis, best, col)
		assigned[best] = true
	}

	c := floatScratch(&p.objBuf, total)
	copy(c, p.obj)

	// Primal feasibility: the refactored rhs must be non-negative (tiny
	// negatives are clamped — the post-solve verification bounds the
	// damage). A meaningfully negative rhs means the data drifted past the
	// old vertex; if the basis is still DUAL feasible (it always is under
	// rhs-only patches — reduced costs don't depend on b), dual simplex
	// pivots restore primal feasibility far cheaper than a cold phase 1.
	infeasible := false
	for i := 0; i < m; i++ {
		rhs := tab[i][total]
		if rhs < 0 {
			if rhs < -warmFeasTol {
				infeasible = true
				break
			}
			tab[i][total] = 0
		}
	}
	if infeasible {
		if !p.dualFeasible(tab, basis, c) {
			return reject("dual-infeasible")
		}
		if !dualSimplex(tab, basis, c) {
			// Dual unbounded (primal infeasible) or out of iterations:
			// let the cold path classify and report it the legacy way.
			return reject("dual-unbounded")
		}
	}

	// Phase 2 from the warm basis, original objective, no blocked columns.
	if status := p.simplex(tab, basis, c); status == Unbounded {
		return Result{Status: Unbounded}, "", fmt.Errorf("%w: unbounded", ErrNotOptimal)
	}

	x := make([]float64, n)
	for i, bc := range basis {
		if bc < n {
			x[bc] = tab[i][total]
		}
	}
	var obj float64
	for j := 0; j < n; j++ {
		obj += p.obj[j] * x[j]
	}
	// Verify against the original constraints: forced pivots on a
	// near-degenerate basis can amplify rounding; a result that drifted
	// out of the feasible region is discarded, not returned.
	if p.Violation(x) > warmCheckTol {
		return reject("violation")
	}
	res := Result{Status: Optimal, X: x, Objective: obj, Basis: captureBasis(n, basis, rows)}
	// The gap sweep costs one extra pricing pass — noise next to the m
	// refactorization pivots above — and keeps SolveStats.Gap a reliable
	// part of the warm contract for every consumer.
	res.gap = p.reducedCostGap(tab, basis, c, rows, n)
	return res, "", nil
}

// dualFeasible reports whether every nonbasic reduced cost of the
// tableau is non-negative (within the solver tolerance) — the
// precondition for dual simplex.
func (p *Problem) dualFeasible(tab [][]float64, basis []int, c []float64) bool {
	m := len(tab)
	total := len(tab[0]) - 1
	isBasic := boolScratch(&p.basicBuf, total)
	for _, b := range basis {
		isBasic[b] = true
	}
	for j := 0; j < total; j++ {
		if isBasic[j] {
			continue
		}
		r := c[j]
		for i := 0; i < m; i++ {
			if cb := c[basis[i]]; cb != 0 {
				r -= cb * tab[i][j]
			}
		}
		if r < -eps {
			return false
		}
	}
	return true
}

// dualSimplex restores primal feasibility of a dual-feasible tableau:
// rows with negative rhs leave the basis, the entering column chosen by
// the dual ratio test (smallest reduced-cost-to-pivot ratio, Bland-style
// index tie-breaking for determinism). Returns false when the dual is
// unbounded — the primal is infeasible — or the iteration cap trips.
func dualSimplex(tab [][]float64, basis []int, c []float64) bool {
	m := len(tab)
	total := len(tab[0]) - 1
	for iter := 0; ; iter++ {
		if iter > 200000 {
			return false
		}
		// Leaving row: most negative rhs; ties to the smallest basic
		// variable index.
		leave := -1
		worst := -eps
		for i := 0; i < m; i++ {
			rhs := tab[i][total]
			if rhs < worst-eps || (rhs < worst+eps && rhs < -eps && (leave == -1 || basis[i] < basis[leave])) {
				worst = rhs
				leave = i
			}
		}
		if leave == -1 {
			for i := 0; i < m; i++ {
				if tab[i][total] < 0 {
					tab[i][total] = 0 // clamp tolerated residue
				}
			}
			return true
		}
		// Entering column: dual ratio test over negative pivot candidates.
		enter := -1
		best := math.Inf(1)
		for j := 0; j < total; j++ {
			a := tab[leave][j]
			if a >= -eps {
				continue
			}
			r := c[j]
			for i := 0; i < m; i++ {
				if cb := c[basis[i]]; cb != 0 {
					r -= cb * tab[i][j]
				}
			}
			if r < 0 {
				r = 0 // dual-feasibility tolerance residue
			}
			ratio := r / -a
			if ratio < best-eps || (ratio < best+eps && (enter == -1 || j < enter)) {
				best = ratio
				enter = j
			}
		}
		if enter == -1 {
			return false
		}
		pivot(tab, basis, leave, enter)
	}
}

// reducedCostGap returns the minimum scaled reduced cost over nonbasic
// columns of an optimal tableau — the uniqueness certificate SolveStats
// reports. Costs are scaled per column by the largest original-matrix
// magnitude so byte-scale and head-scale columns are comparable.
func (p *Problem) reducedCostGap(tab [][]float64, basis []int, c []float64, rows []constraint, n int) float64 {
	m := len(tab)
	if m == 0 {
		return math.Inf(1)
	}
	total := len(tab[0]) - 1
	isBasic := boolScratch(&p.basicBuf, total)
	for _, b := range basis {
		if b >= 0 && b < total {
			isBasic[b] = true
		}
	}
	gap := math.Inf(1)
	for j := 0; j < total; j++ {
		if isBasic[j] {
			continue
		}
		r := c[j]
		for i := 0; i < m; i++ {
			if cb := c[basis[i]]; cb != 0 {
				r -= cb * tab[i][j]
			}
		}
		scale := 1.0
		if j < n {
			if v := math.Abs(c[j]); v > scale {
				scale = v
			}
			for i := range rows {
				if v := math.Abs(rows[i].coeffs[j]); v > scale {
					scale = v
				}
			}
		}
		if r /= scale; r < gap {
			gap = r
		}
	}
	return gap
}

// Violation returns the largest relative constraint violation of x
// (including x ≥ 0), each scaled by the constraint's own magnitude. Zero
// means feasible; the warm path uses it as its post-solve check and the
// differential tests as their feasibility oracle.
func (p *Problem) Violation(x []float64) float64 {
	worst := 0.0
	for _, xi := range x {
		if -xi > worst {
			worst = -xi
		}
	}
	for _, c := range p.cons {
		var dot, scale float64
		scale = 1 + math.Abs(c.rhs)
		for j, a := range c.coeffs {
			t := a * x[j]
			dot += t
			scale += math.Abs(t)
		}
		var v float64
		switch c.op {
		case LE:
			v = dot - c.rhs
		case GE:
			v = c.rhs - dot
		case EQ:
			v = math.Abs(dot - c.rhs)
		}
		if v /= scale; v > worst {
			worst = v
		}
	}
	return worst
}
