package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) Result {
	t.Helper()
	res, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v want optimal", res.Status)
	}
	return res
}

func TestSimpleMaximization(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic Dantzig).
	// As minimization of -3x - 5y; optimum x=2, y=6, obj=-36.
	p := New(2, []float64{-3, -5})
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	res := solveOK(t, p)
	if math.Abs(res.X[0]-2) > 1e-6 || math.Abs(res.X[1]-6) > 1e-6 {
		t.Fatalf("x = %v want [2 6]", res.X)
	}
	if math.Abs(res.Objective+36) > 1e-6 {
		t.Fatalf("objective = %g want -36", res.Objective)
	}
}

func TestGEConstraints(t *testing.T) {
	// min x + y s.t. x + 2y >= 4, 3x + y >= 6. Optimum at intersection:
	// x=1.6, y=1.2, obj=2.8.
	p := New(2, []float64{1, 1})
	p.AddConstraint([]float64{1, 2}, GE, 4)
	p.AddConstraint([]float64{3, 1}, GE, 6)
	res := solveOK(t, p)
	if math.Abs(res.Objective-2.8) > 1e-6 {
		t.Fatalf("objective = %g want 2.8 (x=%v)", res.Objective, res.X)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min 2x + 3y s.t. x + y = 10, x <= 6. Optimum x=6, y=4, obj=24.
	p := New(2, []float64{2, 3})
	p.AddConstraint([]float64{1, 1}, EQ, 10)
	p.AddConstraint([]float64{1, 0}, LE, 6)
	res := solveOK(t, p)
	if math.Abs(res.Objective-24) > 1e-6 {
		t.Fatalf("objective = %g want 24 (x=%v)", res.Objective, res.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := New(1, []float64{1})
	p.AddConstraint([]float64{1}, LE, 1)
	p.AddConstraint([]float64{1}, GE, 2)
	res, err := p.Solve()
	if err == nil || res.Status != Infeasible {
		t.Fatalf("want infeasible, got %v err=%v", res.Status, err)
	}
}

func TestUnbounded(t *testing.T) {
	p := New(2, []float64{-1, 0})
	p.AddConstraint([]float64{0, 1}, LE, 5)
	res, err := p.Solve()
	if err == nil || res.Status != Unbounded {
		t.Fatalf("want unbounded, got %v err=%v", res.Status, err)
	}
}

func TestNegativeRHS(t *testing.T) {
	// x - y <= -2 with min x+y: flips internally to y - x >= 2; optimum
	// x=0, y=2.
	p := New(2, []float64{1, 1})
	p.AddConstraint([]float64{1, -1}, LE, -2)
	res := solveOK(t, p)
	if math.Abs(res.Objective-2) > 1e-6 {
		t.Fatalf("objective = %g want 2 (x=%v)", res.Objective, res.X)
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// Beale's classic cycling example (cycles under naive most-negative
	// pivoting; Bland's rule must terminate).
	p := New(4, []float64{-0.75, 150, -0.02, 6})
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	res := solveOK(t, p)
	if math.Abs(res.Objective-(-0.05)) > 1e-6 {
		t.Fatalf("objective = %g want -0.05", res.Objective)
	}
}

func TestMinMaxEpigraph(t *testing.T) {
	// min max(2a, 3b) s.t. a + b = 10 via epigraph variable z:
	// min z, 2a - z <= 0, 3b - z <= 0, a + b = 10.
	// Optimum: 2a = 3b, a+b=10 -> a=6, b=4, z=12.
	p := New(3, []float64{0, 0, 1}) // vars a, b, z
	p.AddConstraint([]float64{2, 0, -1}, LE, 0)
	p.AddConstraint([]float64{0, 3, -1}, LE, 0)
	p.AddConstraint([]float64{1, 1, 0}, EQ, 10)
	res := solveOK(t, p)
	if math.Abs(res.X[2]-12) > 1e-6 {
		t.Fatalf("z = %g want 12 (x=%v)", res.X[2], res.X)
	}
}

func TestSparseConstraint(t *testing.T) {
	p := New(5, []float64{1, 1, 1, 1, 1})
	p.AddSparseConstraint([]int{0, 4}, []float64{1, 1}, GE, 3)
	res := solveOK(t, p)
	if math.Abs(res.Objective-3) > 1e-6 {
		t.Fatalf("objective = %g want 3", res.Objective)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// Duplicate equality rows create a redundant artificial basis row;
	// phase 1 must cope.
	p := New(2, []float64{1, 2})
	p.AddConstraint([]float64{1, 1}, EQ, 4)
	p.AddConstraint([]float64{1, 1}, EQ, 4)
	p.AddConstraint([]float64{2, 2}, EQ, 8)
	res := solveOK(t, p)
	if math.Abs(res.Objective-4) > 1e-6 { // x=4, y=0
		t.Fatalf("objective = %g want 4 (x=%v)", res.Objective, res.X)
	}
}

// bruteForce solves min c·x over {x >= 0, A x <= b} by enumerating all
// vertex candidates (intersections of n active constraints drawn from rows
// of A and the axes) and returns the best feasible objective, or +Inf if
// none found. Only valid when the optimum is attained at a vertex, which
// holds for bounded feasible LPs.
func bruteForce(c []float64, a [][]float64, b []float64) float64 {
	n := len(c)
	m := len(a)
	// Build the full constraint set: A x <= b and -x_j <= 0.
	rows := make([][]float64, 0, m+n)
	rhs := make([]float64, 0, m+n)
	for i := 0; i < m; i++ {
		rows = append(rows, a[i])
		rhs = append(rhs, b[i])
	}
	for j := 0; j < n; j++ {
		r := make([]float64, n)
		r[j] = -1
		rows = append(rows, r)
		rhs = append(rhs, 0)
	}
	best := math.Inf(1)
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			x, ok := solveSquare(rows, rhs, idx)
			if !ok {
				return
			}
			// Check feasibility of all constraints.
			for i := range rows {
				dot := 0.0
				for j := 0; j < n; j++ {
					dot += rows[i][j] * x[j]
				}
				if dot > rhs[i]+1e-7 {
					return
				}
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				obj += c[j] * x[j]
			}
			if obj < best {
				best = obj
			}
			return
		}
		for i := start; i < len(rows); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best
}

// solveSquare solves the n×n system formed by the selected rows.
func solveSquare(rows [][]float64, rhs []float64, idx []int) ([]float64, bool) {
	n := len(idx)
	mat := make([][]float64, n)
	v := make([]float64, n)
	for i, r := range idx {
		mat[i] = append([]float64(nil), rows[r]...)
		v[i] = rhs[r]
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(mat[r][col]) > math.Abs(mat[piv][col]) {
				piv = r
			}
		}
		if math.Abs(mat[piv][col]) < 1e-9 {
			return nil, false
		}
		mat[col], mat[piv] = mat[piv], mat[col]
		v[col], v[piv] = v[piv], v[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := mat[r][col] / mat[col][col]
			for k := col; k < n; k++ {
				mat[r][k] -= f * mat[col][k]
			}
			v[r] -= f * v[col]
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = v[i] / mat[i][i]
	}
	return x, true
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(2) // 2-3 vars
		m := 2 + rng.Intn(3) // 2-4 constraints
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64()*4 - 1 // mostly positive to keep bounded
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.Float64() * 2
			}
			b[i] = rng.Float64()*10 + 1
		}
		// Add a box to guarantee boundedness.
		box := make([][]float64, n)
		for j := 0; j < n; j++ {
			box[j] = make([]float64, n)
			box[j][j] = 1
		}
		p := New(n, c)
		for i := range a {
			p.AddConstraint(a[i], LE, b[i])
		}
		allA := append(append([][]float64{}, a...), box...)
		allB := append(append([]float64{}, b...), make([]float64, n)...)
		for j := 0; j < n; j++ {
			p.AddConstraint(box[j], LE, 50)
			allB[m+j] = 50
		}
		res, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteForce(c, allA, allB)
		if math.Abs(res.Objective-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("trial %d: simplex %.8f != brute force %.8f", trial, res.Objective, want)
		}
	}
}

func TestSolutionFeasibility(t *testing.T) {
	// Any Optimal result must satisfy its own constraints.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(4)
		p := New(n, randVec(rng, n, -1, 3))
		type row struct {
			a   []float64
			op  Op
			rhs float64
		}
		var saved []row
		for i := 0; i < 2+rng.Intn(4); i++ {
			a := randVec(rng, n, 0, 2)
			rhs := rng.Float64()*8 + 2
			op := LE
			if rng.Intn(4) == 0 {
				op = GE
				rhs = rng.Float64() * 2
			}
			p.AddConstraint(a, op, rhs)
			saved = append(saved, row{a, op, rhs})
		}
		for j := 0; j < n; j++ {
			a := make([]float64, n)
			a[j] = 1
			p.AddConstraint(a, LE, 30)
			saved = append(saved, row{a, LE, 30})
		}
		res, err := p.Solve()
		if err != nil {
			continue // infeasible instances are fine here
		}
		for k, r := range saved {
			dot := 0.0
			for j := 0; j < n; j++ {
				dot += r.a[j] * res.X[j]
			}
			switch r.op {
			case LE:
				if dot > r.rhs+1e-6 {
					t.Fatalf("trial %d: constraint %d violated: %g > %g", trial, k, dot, r.rhs)
				}
			case GE:
				if dot < r.rhs-1e-6 {
					t.Fatalf("trial %d: constraint %d violated: %g < %g", trial, k, dot, r.rhs)
				}
			}
		}
		for j, x := range res.X {
			if x < -1e-7 {
				t.Fatalf("trial %d: x[%d] = %g negative", trial, j, x)
			}
		}
	}
}

func randVec(rng *rand.Rand, n int, lo, hi float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = lo + rng.Float64()*(hi-lo)
	}
	return v
}

func TestPanics(t *testing.T) {
	assertPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanic("bad objective len", func() { New(2, []float64{1}) })
	assertPanic("too many coeffs", func() {
		p := New(1, []float64{1})
		p.AddConstraint([]float64{1, 2}, LE, 1)
	})
	assertPanic("sparse idx out of range", func() {
		p := New(1, []float64{1})
		p.AddSparseConstraint([]int{3}, []float64{1}, LE, 1)
	})
	assertPanic("sparse len mismatch", func() {
		p := New(1, []float64{1})
		p.AddSparseConstraint([]int{0}, []float64{1, 2}, LE, 1)
	})
}
