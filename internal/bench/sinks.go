package bench

import (
	"fmt"
	"runtime"
	"time"

	"hetis/internal/engine"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/scenario"
	"hetis/internal/sweep"
	"hetis/internal/trace"
)

// SinkBench is one sink-mode measurement of the sink-comparison scenario:
// the same (scenario, engine) run measured through the exact recorder
// (records plus event trace — what a golden run costs) and through the
// streaming pipeline (quantile sketches, no trace log). LiveHeapBytes is
// the post-run live-heap delta with the Result still referenced, after a
// forced GC on both sides of the run — the resident cost of having
// measured. The pair is the report's proof of the O(1)-memory claim: the
// exact side grows with the trace, the streaming side does not.
type SinkBench struct {
	Scenario string `json:"scenario"`
	Engine   string `json:"engine"`
	Sink     string `json:"sink"` // "exact" or "streaming"

	WallSeconds    float64 `json:"wall_seconds"`
	Events         uint64  `json:"events"`
	Completed      int     `json:"completed"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	LiveHeapBytes  int64   `json:"live_heap_bytes"`
}

// measureSinks runs the spec's first engine once per sink mode. The trace
// and engine construction stay outside the measured window.
func measureSinks(spec scenario.Spec, cache *sweep.Cache) ([]SinkBench, error) {
	key := sweep.TraceKey{Scenario: spec.Name, Duration: spec.Duration, Seed: spec.Seed}
	reqs, err := cache.Trace(key)
	if err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("bench: scenario %s has an empty trace", spec.Name)
	}
	m, err := model.ByName(spec.Model)
	if err != nil {
		return nil, err
	}
	cluster, err := scenario.ClusterByName(spec.Cluster)
	if err != nil {
		return nil, err
	}
	engName := spec.Engines[0]
	horizon := scenario.MeasurementHorizon(spec.Duration)

	var out []SinkBench
	for _, mode := range []string{"exact", "streaming"} {
		cfg := engine.DefaultConfig(m, cluster)
		if mode == "streaming" {
			cfg.Sink = metrics.NewStreamingSink(spec.SLO)
			cfg.NoTrace = true
		}
		eng, err := cache.BuildEngine(engName, cfg, key)
		if err != nil {
			return nil, fmt.Errorf("bench: sinks %s/%s: %w", spec.Name, engName, err)
		}
		// Drop pooled trace pages before the baseline: retained arena pages
		// from earlier suite runs would inflate the pre-run heap and make
		// the exact side's live-heap delta read low.
		trace.ResetPagePool()
		var before, beforeGC, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&beforeGC)
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		res, err := eng.Run(reqs, horizon)
		wall := time.Since(t0).Seconds()
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, fmt.Errorf("bench: sinks %s/%s: %w", spec.Name, engName, err)
		}
		sb := SinkBench{
			Scenario:    spec.Name,
			Engine:      engName,
			Sink:        mode,
			WallSeconds: wall,
			Events:      res.Events,
			Completed:   res.Completed,
		}
		if res.Events > 0 {
			sb.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(res.Events)
		}
		runtime.GC()
		var afterGC runtime.MemStats
		runtime.ReadMemStats(&afterGC)
		sb.LiveHeapBytes = int64(afterGC.HeapAlloc) - int64(beforeGC.HeapAlloc)
		runtime.KeepAlive(res) // the Result (records, series, trace) is the measured residue
		res.Trace.Release()
		out = append(out, sb)
	}
	return out, nil
}
