package bench

import (
	"math/rand"
	"sync"
	"testing"

	"hetis/internal/dispatch"
	"hetis/internal/engine"
	"hetis/internal/hardware"
	"hetis/internal/kvcache"
	"hetis/internal/lp"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/profile"
	"hetis/internal/sim"
	"hetis/internal/trace"
)

// RunMicro executes the micro-benchmark set through testing.Benchmark, so
// BENCH.json carries per-op latency and allocation numbers for the
// kernels the scenario suite exercises: the event loop, the admission LP,
// the ideal-placement relaxation, and block-manager bookkeeping. The set
// mirrors the *_test.go micro-benchmarks; this harness exists so the same
// measurements land in the perf trajectory without scraping `go test
// -bench` output.
func RunMicro() []MicroBench {
	return []MicroBench{
		microResult("sim/schedule-run-1024", benchSimScheduleRun),
		microResult("sim/wheel-cascade-64k", benchSimWheelCascade),
		microResult("sim/cancel-heavy-4096", benchSimCancelHeavy),
		microResult("engine/queue-storm-4096", benchQueueStorm),
		microResult("dispatch/admission-lp", benchDispatchLP),
		microResult("dispatch/ideal-attn-lp-128", benchIdealAttn),
		microResult("lp/solve-cold-20x12", benchLPSolveCold),
		microResult("lp/solve-warm-20x12", benchLPSolveWarm),
		microResult("kvcache/alloc-extend-free", benchKVCache),
		microResult("metrics/summarize-3x-10k", benchSummarizeSeparate),
		microResult("metrics/summaries-bulk-10k", benchSummariesBulk),
		microResult("metrics/streaming-observe", benchStreamingObserve),
		microResult("trace/append-1m", benchTraceAppend),
		microResult("trace/pool-contended-8", benchTracePoolContended),
		microResult("metrics/recorder-append-1m", benchRecorderAppend),
	}
}

// benchTracePoolContended hammers the trace-arena page pool from eight
// goroutines at once — the fleet layer's allocation pattern, where every
// shard grows and releases its own arena concurrently. Each worker
// appends 64k events (16 pages) and releases them back, per op. The
// striped free list keeps the workers on distinct stripes; the old single
// global mutex made every page grab and give-back a serialization point.
func benchTracePoolContended(b *testing.B) {
	const workers = 8
	trace.ResetPagePool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var log trace.Log
				for k := 0; k < 64*1024; k++ {
					log.Add(trace.Event{At: float64(k) * 1e-3, Kind: trace.KindDecode, Request: int64(k)})
				}
				log.Release()
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	trace.ResetPagePool()
}

// benchTraceAppend appends one million events per op through the paged
// arena's Add/static-Addf hot path, releasing the pages back to the pool
// between ops — the steady-state append cost of the exact-measurement
// path, with page reuse rather than fresh-arena growth dominating.
func benchTraceAppend(b *testing.B) {
	trace.ResetPagePool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var log trace.Log
		for k := 0; k < 1_000_000; k++ {
			if k%2 == 0 {
				log.Add(trace.Event{At: float64(k) * 1e-3, Kind: trace.KindDecode, Request: int64(k), Value: float64(k % 7)})
			} else {
				log.Addf(float64(k)*1e-3, trace.KindFinish, int64(k), -1, 0, "done")
			}
		}
		if log.Len() != 1_000_000 {
			b.Fatalf("trace append logged %d of 1000000 events", log.Len())
		}
		log.Release()
	}
	b.StopTimer()
	trace.ResetPagePool()
}

// benchRecorderAppend appends one million request records per op through
// the slab-chunked recorder — the exact-sink cost the engines pay per
// completion at megascale.
func benchRecorderAppend(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := metrics.NewRecorder()
		for k := 0; k < 1_000_000; k++ {
			rec.Add(metrics.RequestRecord{
				ID:         int64(k),
				FirstToken: 0.05,
				FinishedAt: 0.5,
				PromptLen:  300,
				OutputLen:  64,
			})
		}
		if rec.Count() != 1_000_000 {
			b.Fatalf("recorder append kept %d of 1000000 records", rec.Count())
		}
	}
}

// microRecords builds a deterministic 10k-record set for the summary
// micros.
func microRecords() *metrics.Recorder {
	rng := rand.New(rand.NewSource(42))
	rec := metrics.NewRecorder()
	for i := 0; i < 10000; i++ {
		ttft := 0.05 + rng.ExpFloat64()*0.2
		rec.Add(metrics.RequestRecord{
			ID:         int64(i),
			FirstToken: ttft,
			FinishedAt: ttft + rng.Float64()*4,
			PromptLen:  300,
			OutputLen:  1 + rng.Intn(256),
		})
	}
	return rec
}

// benchSummarizeSeparate is the historical path: three independent summary
// calls, each walking the records and double-copying the values.
func benchSummarizeSeparate(b *testing.B) {
	rec := microRecords()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rec.TTFTSummary()
		_ = rec.TPOTSummary()
		_ = rec.NormLatencySummary()
	}
}

// benchSummariesBulk is the bulk path: one record walk, one allocation,
// in-place sorts.
func benchSummariesBulk(b *testing.B) {
	rec := microRecords()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = rec.Summaries()
	}
}

// benchStreamingObserve measures the per-record cost of the streaming
// sink's hot path (three sketch inserts plus the SLO check) — the
// number multiplied by a million on megascale traces.
func benchStreamingObserve(b *testing.B) {
	sink := metrics.NewStreamingSink(metrics.SLOTarget{TTFT: 1.5, TPOT: 0.1})
	rng := rand.New(rand.NewSource(42))
	recs := make([]metrics.RequestRecord, 4096)
	for i := range recs {
		ttft := 0.05 + rng.ExpFloat64()*0.2
		recs[i] = metrics.RequestRecord{
			ID: int64(i), FirstToken: ttft, FinishedAt: ttft + rng.Float64()*4, OutputLen: 1 + rng.Intn(256),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Observe(recs[i%len(recs)])
	}
}

func microResult(name string, fn func(b *testing.B)) MicroBench {
	r := testing.Benchmark(fn)
	return MicroBench{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// benchSimScheduleRun drains 1024 events per op.
func benchSimScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New()
		for k := 0; k < 1024; k++ {
			s.Schedule(float64(k%37), "e", func(*sim.Simulator) {})
		}
		s.RunUntilIdle()
	}
}

// benchSimWheelCascade drains 65536 events spread over five decades of
// virtual time per op, so events land on the calendar queue's upper
// levels and pay the full cascade path down — the worst case for the
// wheel, where the old heap's O(log n) was its best.
func benchSimWheelCascade(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New()
		for k := 0; k < 65536; k++ {
			at := float64(k%97) * float64(1+k%11) * float64(1+k%1009) * 0.001
			s.Schedule(at, "e", func(*sim.Simulator) {})
		}
		s.RunUntilIdle()
	}
}

// benchSimCancelHeavy schedules 4096 events and cancels every other one
// before draining — the chaos layer's pattern (failure windows cancel a
// replica's whole in-flight group), exercising unlink and the handle
// generation counters.
func benchSimCancelHeavy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New()
		hs := make([]sim.Handle, 4096)
		for k := range hs {
			hs[k] = s.Schedule(float64(k%613)*0.01, "e", func(*sim.Simulator) {})
		}
		for k := 0; k < len(hs); k += 2 {
			s.Cancel(hs[k])
		}
		s.RunUntilIdle()
	}
}

// benchQueueStorm measures a preemption storm against the engine request
// deque: 4096 victims requeued at the head of a 4096-deep FIFO, then a
// full drain. The ring buffer makes every head insert O(1); the retired
// slice-backed queue copied the whole backing array per insert whenever
// the head sat at slot 0, turning a storm into O(n²).
func benchQueueStorm(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := engine.QueueStorm(4096, 4096); got != 8192 {
			b.Fatalf("queue storm drained %d of 8192 requests", got)
		}
	}
}

// microWorkers builds a primary plus five pooled attention workers with
// representative fitted-model coefficients.
func microWorkers() []dispatch.Worker {
	attn := profile.AttnModel{A: 25e-9, B: 1.0 / 1600e9, C: 30e-6}
	slow := profile.AttnModel{A: 60e-9, B: 1.0 / 650e9, C: 35e-6}
	net := profile.NetModel{Gamma: 1.0 / 11e9, Beta: 30e-6}
	ws := []dispatch.Worker{{ID: 0, Attn: attn, Primary: true, CapacityBytes: 1e12}}
	for i := 0; i < 5; i++ {
		ws = append(ws, dispatch.Worker{
			ID:            hardware.DeviceID(i + 1),
			Attn:          slow,
			Net:           net,
			CapacityBytes: 1e12,
		})
	}
	return ws
}

// benchDispatchLP is one admission solve (Eq. 7) per op.
func benchDispatchLP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := dispatch.New(model.Llama70B, microWorkers())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Dispatch([]dispatch.NewRequest{{ID: 1, ContextLen: 1200}, {ID: 2, ContextLen: 600}}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIdealAttn is one §5.3.1 relaxation solve over a 128-request batch
// per op.
func benchIdealAttn(b *testing.B) {
	d, err := dispatch.New(model.Llama13B, microWorkers())
	if err != nil {
		b.Fatal(err)
	}
	var reqs []dispatch.NewRequest
	for i := 0; i < 128; i++ {
		reqs = append(reqs, dispatch.NewRequest{ID: int64(i), ContextLen: 400 + 37*(i%19)})
	}
	if _, err := d.Dispatch(reqs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.IdealAttnTime(); err != nil {
			b.Fatal(err)
		}
	}
}

// lpMicroProblem builds the deterministic 20-variable, 12-constraint
// mixed LP (GE/EQ rows force a real phase 1) the solver micros share,
// returning the first constraint's row for per-op rhs patching.
// All-positive costs keep it bounded; moderate right-hand sides keep it
// feasible.
func lpMicroProblem() (*lp.Problem, []float64) {
	rng := rand.New(rand.NewSource(7))
	const n = 20
	c := make([]float64, n)
	for j := range c {
		c[j] = 0.5 + rng.Float64()*2.5
	}
	p := lp.New(n, c)
	var row0 []float64
	for i := 0; i < 12; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.Float64() * 2
		}
		switch i % 4 {
		case 0:
			p.AddConstraint(row, lp.GE, 1+rng.Float64())
		case 1:
			p.AddConstraint(row, lp.EQ, 4+rng.Float64()*4)
		default:
			p.AddConstraint(row, lp.LE, 10+rng.Float64()*10)
		}
		if i == 0 {
			row0 = row
		}
	}
	return p, row0
}

// benchLPSolveCold measures the from-scratch two-phase solve of the
// shared micro LP, with the same per-op rhs patch the warm micro
// applies (cycling values model the dispatch re-pose pattern).
func benchLPSolveCold(b *testing.B) {
	p, row0 := lpMicroProblem()
	if _, err := p.Solve(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SetConstraint(0, row0, lp.GE, 1.2+0.01*float64(i%8))
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLPSolveWarm measures the same patched re-solves through SolveFrom
// with the previous optimal basis: phase 1 skipped on every op.
func benchLPSolveWarm(b *testing.B) {
	p, row0 := lpMicroProblem()
	first, err := p.Solve()
	if err != nil {
		b.Fatal(err)
	}
	basis := first.Basis
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SetConstraint(0, row0, lp.GE, 1.2+0.01*float64(i%8))
		res, stats, err := p.SolveFrom(basis)
		if err != nil {
			b.Fatal(err)
		}
		if !stats.WarmStarted {
			b.Fatal("warm micro fell back to the cold path")
		}
		basis = res.Basis
	}
}

// benchKVCache allocates, extends, and frees 64 requests per op.
func benchKVCache(b *testing.B) {
	mgr, err := kvcache.NewManager(kvcache.Config{
		BlockTokens:        16,
		BytesPerGroupToken: 1 << 14,
		CapacityBytes:      1 << 36,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < 64; r++ {
			id := kvcache.RequestID(r)
			if err := mgr.Alloc(id, 4, 512); err != nil {
				b.Fatal(err)
			}
			for k := 0; k < 16; k++ {
				if err := mgr.Extend(id, 1); err != nil {
					b.Fatal(err)
				}
			}
		}
		for r := 0; r < 64; r++ {
			mgr.Free(kvcache.RequestID(r))
		}
	}
}
