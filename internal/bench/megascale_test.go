package bench

import (
	"math"
	"runtime"
	"testing"

	"hetis/internal/engine"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/scenario"
)

// megascaleRun serves the megascale scenario at a reduced duration through
// the given sink, returning the result and the run's allocs/event. The
// scenario's own shape (diurnal wave, code-completion mix, vllm) is kept;
// only the duration — and therefore the trace length — scales.
func megascaleRun(t *testing.T, duration float64, sink metrics.Sink) (*engine.Result, float64) {
	t.Helper()
	spec, err := scenario.ByName("megascale")
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.WithDefaults()
	spec.Duration = duration
	reqs, err := spec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.ByName(spec.Model)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := scenario.ClusterByName(spec.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig(m, cluster)
	cfg.Sink = sink
	if sink != nil {
		cfg.NoTrace = true
	}
	eng, err := engine.NewByName(spec.Engines[0], cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := eng.Run(reqs, scenario.MeasurementHorizon(spec.Duration))
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(reqs) {
		t.Fatalf("megascale at duration %g completed %d/%d", duration, res.Completed, len(reqs))
	}
	return res, float64(after.Mallocs-before.Mallocs) / float64(res.Events)
}

// TestMegascaleStreamingFlatAllocs is the bench-backed O(1)-memory
// assertion: quadrupling the megascale trace must not grow the streaming
// sink's allocs/event (flat within noise), and the absolute rate must stay
// under a pinned budget, so a regression that reintroduces per-request
// measurement allocation fails here before it lands.
func TestMegascaleStreamingFlatAllocs(t *testing.T) {
	slo := metrics.SLOTarget{TTFT: 1.5, TPOT: 0.1}
	_, small := megascaleRun(t, 1500, metrics.NewStreamingSink(slo))
	_, large := megascaleRun(t, 6000, metrics.NewStreamingSink(slo))
	t.Logf("allocs/event: %.2f at 1500s, %.2f at 6000s", small, large)
	if large > small*1.3 {
		t.Errorf("allocs/event grew with trace length: %.2f -> %.2f (4x trace)", small, large)
	}
	// The pinned budget: the decode loop itself runs ~5 allocs/event; the
	// streaming sink must stay amortized-O(1) on top of that.
	const budget = 10.0
	if large > budget {
		t.Errorf("allocs/event %.2f exceeds the pinned budget %.1f", large, budget)
	}
}

// TestMegascaleStreamingAccuracy is the acceptance bound at scale: on a
// >100k-request slice of megascale, streaming p50/p95/p99 of all three
// latency metrics must land within 1% relative error of the exact
// summaries.
func TestMegascaleStreamingAccuracy(t *testing.T) {
	slo := metrics.SLOTarget{TTFT: 1.5, TPOT: 0.1}
	sink := metrics.NewStreamingSink(slo)
	_, _ = megascaleRun(t, 6000, sink)
	exactRes, _ := megascaleRun(t, 6000, nil)

	got := sink.Snapshot()
	want := exactRes.Recorder.Snapshot()
	if got.Count != want.Count {
		t.Fatalf("streaming observed %d records, exact %d", got.Count, want.Count)
	}
	for _, m := range []struct {
		name      string
		got, want metrics.Summary
	}{{"TTFT", got.TTFT, want.TTFT}, {"TPOT", got.TPOT, want.TPOT}, {"NormLat", got.NormLat, want.NormLat}} {
		for _, p := range []struct {
			name      string
			got, want float64
		}{{"p50", m.got.P50, m.want.P50}, {"p95", m.got.P95, m.want.P95}, {"p99", m.got.P99, m.want.P99}} {
			if p.want <= 0 {
				continue
			}
			if e := math.Abs(p.got-p.want) / p.want; e > 0.01 {
				t.Errorf("%s %s: streaming %.6g vs exact %.6g (rel err %.3f%% > 1%%)",
					m.name, p.name, p.got, p.want, 100*e)
			}
		}
	}
}
