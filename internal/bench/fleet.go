package bench

import (
	"fmt"
	"runtime"
	"time"

	"hetis/internal/scenario"
	"hetis/internal/trace"
)

// FleetRow is one shard-worker setting of the fleet-scaling section: the
// fleet scenario served with up to ShardWorkers shards running
// concurrently. Events and Completed are identical on every row — the
// merged run is byte-deterministic in the worker count — so the rows
// differ only in wall-clock, and SpeedupVs1 is the intra-run parallel
// speedup over the single-worker row. LiveHeapBytes is the post-run
// live-heap delta with the merged result still referenced (forced GC on
// both sides), the resident cost of the fleet's streaming measurement.
type FleetRow struct {
	ShardWorkers  int     `json:"shard_workers"`
	WallSeconds   float64 `json:"wall_seconds"`
	Events        uint64  `json:"events"`
	EventsPerSec  float64 `json:"events_per_sec"`
	Completed     int     `json:"completed"`
	SpeedupVs1    float64 `json:"speedup_vs_1"`
	LiveHeapBytes int64   `json:"live_heap_bytes"`
}

// FleetScaling is the schema-v4 shard-scaling section: one fleet scenario
// measured at increasing shard-worker counts through streaming sinks.
type FleetScaling struct {
	Scenario string     `json:"scenario"`
	Engine   string     `json:"engine"`
	Shards   int        `json:"shards"`
	Policy   string     `json:"policy"`
	Rows     []FleetRow `json:"rows"`
}

// measureFleet times the fleet scenario's first engine at each worker
// count, best of repeat runs per row, through streaming sinks (the only
// mode that holds at gigascale). Preparation — trace generation, routing,
// per-shard engine construction — happens outside the clock, fresh per
// repeat (a FleetRun is single-use: its streaming sinks accumulate). The
// spec arrives already Prepared; PrepareFleet's own Prepare pass is then
// a no-op beyond defaulting.
func measureFleet(spec scenario.Spec, workersList []int, repeat int) (*FleetScaling, error) {
	if !spec.Sharded() {
		return nil, fmt.Errorf("bench: fleet scenario %s has no Fleet spec", spec.Name)
	}
	engName := spec.Engines[0]
	fs := &FleetScaling{
		Scenario: spec.Name,
		Engine:   engName,
		Shards:   spec.Fleet.Shards,
		Policy:   spec.Fleet.Policy,
	}
	opts := scenario.Options{Stream: true}
	for _, workers := range workersList {
		row := FleetRow{ShardWorkers: workers}
		for rep := 0; rep < repeat; rep++ {
			fr, err := scenario.PrepareFleet(spec, engName, opts)
			if err != nil {
				return nil, fmt.Errorf("bench: fleet %s/%s: %w", spec.Name, engName, err)
			}
			trace.ResetPagePool()
			var beforeGC runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&beforeGC)
			t0 := time.Now()
			res, err := fr.Run(workers)
			wall := time.Since(t0).Seconds()
			if err != nil {
				return nil, fmt.Errorf("bench: fleet %s/%s: %w", spec.Name, engName, err)
			}
			runtime.GC()
			var afterGC runtime.MemStats
			runtime.ReadMemStats(&afterGC)
			// Keep the FleetRun reachable through both measurements: its
			// routed trace is in the before-baseline, so letting the GC take
			// it mid-delta would subtract the trace from the result's cost.
			runtime.KeepAlive(fr)
			if rep == 0 || wall < row.WallSeconds {
				row.WallSeconds = wall
				row.Events = res.Events
				row.Completed = res.Completed
				row.LiveHeapBytes = int64(afterGC.HeapAlloc) - int64(beforeGC.HeapAlloc)
			}
			runtime.KeepAlive(res)
		}
		if row.WallSeconds > 0 {
			row.EventsPerSec = float64(row.Events) / row.WallSeconds
		}
		fs.Rows = append(fs.Rows, row)
	}
	// Speedups against the slowest-is-not-assumed single-worker row; a
	// missing 1-worker row leaves them zero.
	for _, base := range fs.Rows {
		if base.ShardWorkers != 1 || base.WallSeconds <= 0 {
			continue
		}
		for i := range fs.Rows {
			fs.Rows[i].SpeedupVs1 = base.WallSeconds / fs.Rows[i].WallSeconds
		}
		break
	}
	return fs, nil
}

// measureShardedScenario is the suite-row face of a fleet scenario named
// explicitly on the bench command line: every engine the spec lists,
// served through the fleet runner at the default worker count (one per
// CPU, clamped to the shard count), best of repeat runs. The sweep cache
// is not consulted — it keys engines by (scenario, duration, seed), which
// cannot tell shards of one run apart. NoWarm is not plumbed here: the
// fleet path builds shard engines from the default config.
func measureShardedScenario(spec scenario.Spec, repeat int, stream bool) ([]ScenarioBench, error) {
	workers := runtime.NumCPU()
	if workers > spec.Fleet.Shards {
		workers = spec.Fleet.Shards
	}
	var out []ScenarioBench
	for _, engName := range spec.Engines {
		sb := ScenarioBench{
			Scenario:     spec.Name,
			Engine:       engName,
			Shards:       spec.Fleet.Shards,
			ShardWorkers: workers,
		}
		if stream {
			sb.Sink = "streaming"
		}
		for rep := 0; rep < repeat; rep++ {
			fr, err := scenario.PrepareFleet(spec, engName, scenario.Options{Stream: stream})
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s: %w", spec.Name, engName, err)
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			t0 := time.Now()
			res, err := fr.Run(workers)
			wall := time.Since(t0).Seconds()
			runtime.ReadMemStats(&after)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s: %w", spec.Name, engName, err)
			}
			if rep == 0 || wall < sb.WallSeconds {
				sb.WallSeconds = wall
				sb.Events = res.Events
				sb.Completed = res.Completed
				sb.LPSolves = res.LPSolves
				sb.LPSolvesAvoided = res.LPSolvesAvoided
				sb.LPIdealSolves = res.LPIdealSolves
				sb.LPWarmStarts = res.LPWarmStarts
				sb.LPPhase1Skips = res.LPPhase1Skips
				sb.LPPatchedRows = res.LPPatchedRows
				if res.Events > 0 {
					sb.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(res.Events)
					sb.AllocBytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(res.Events)
				}
			}
			if rep == 0 || res.LPSolveSeconds < sb.LPSolveSeconds {
				sb.LPSolveSeconds = res.LPSolveSeconds
			}
			if res.Trace != nil {
				res.Trace.Release()
			}
		}
		if sb.WallSeconds > 0 {
			sb.EventsPerSec = float64(sb.Events) / sb.WallSeconds
		}
		out = append(out, sb)
	}
	return out, nil
}
