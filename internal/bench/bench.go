// Package bench is the simulator's perf-trajectory harness: it times the
// canonical scenario suite (every registered scenario × every engine the
// scenario names) plus a set of micro-benchmarks, and emits a schema'd
// BENCH.json so wall-clock, events/sec, allocation rates, and LP-solver
// work are tracked across commits instead of anecdotes.
//
// Measurements isolate serving: traces are generated and engines built
// (plans and profile fits shared through the sweep cache) before the
// clock starts, and each (scenario, engine) pair keeps the best of
// Options.Repeat runs. Runs are deterministic, so repeats only shave
// scheduler noise — every repeat executes the identical event sequence.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"hetis/internal/engine"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/scenario"
	"hetis/internal/sweep"
)

// Options tunes a harness run.
type Options struct {
	// Scenarios names the registered scenarios to measure; empty means
	// every suite scenario (scenario.SuiteNames — heavy scenarios like
	// megascale run when named explicitly). The selection is always
	// sorted, so the report layout is deterministic regardless of input
	// order.
	Scenarios []string
	// Quick quarters trace durations, like scenario.Options.Quick — the CI
	// smoke setting.
	Quick bool
	// Repeat is how many times each (scenario, engine) pair runs; the best
	// wall-clock is kept (default 1).
	Repeat int
	// Stream measures the suite through streaming sinks (and no trace log)
	// instead of the default exact recorder, so heavy scenarios stay
	// cheap. Suites measured with different sinks are not comparable as
	// baselines.
	Stream bool
	// NoWarm disables the dispatchers' LP warm-start layer for the suite
	// runs — the pre-warm-start solver behavior. Decisions and event
	// counts are identical either way, so a NoWarm report is the natural
	// baseline for measuring the warm-start optimization.
	NoWarm bool
	// SkipMicro omits the micro-benchmarks (they add a few seconds).
	SkipMicro bool
	// SkipSinks omits the exact-vs-streaming sink comparison.
	SkipSinks bool
	// SinkScenario names the scenario the sink comparison measures
	// (default megascale — the scenario built to show the bound).
	SinkScenario string
	// SkipFleet omits the fleet shard-scaling section.
	SkipFleet bool
	// FleetScenario names the sharded scenario the fleet section measures
	// (default gigascale — the scenario built to show intra-run scaling).
	FleetScenario string
	// FleetWorkers lists the shard-worker counts the fleet section sweeps
	// (default 1, 2, 4, 8). The merged output is identical at every count;
	// only the wall-clock moves.
	FleetWorkers []int
}

// Run executes the harness and assembles the report.
func Run(opts Options) (*Report, error) {
	names := append([]string(nil), opts.Scenarios...)
	if len(names) == 0 {
		names = scenario.SuiteNames()
	}
	sort.Strings(names)
	repeat := opts.Repeat
	if repeat <= 0 {
		repeat = 1
	}

	rep := &Report{
		Schema:     SchemaVersion,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      opts.Quick,
		Stream:     opts.Stream,
		NoWarm:     opts.NoWarm,
	}

	cache := sweep.NewCache()
	for _, name := range names {
		spec, err := scenario.ByName(name)
		if err != nil {
			return nil, err
		}
		spec = scenario.Prepare(spec, opts.Quick)
		// Sharded scenarios cannot run on the single-cluster path (the
		// trace must be routed and the shards merged), so an explicitly
		// named fleet scenario measures through the fleet runner instead.
		var results []ScenarioBench
		if spec.Sharded() {
			results, err = measureShardedScenario(spec, repeat, opts.Stream)
		} else {
			results, err = measureScenario(spec, repeat, opts.Stream, opts.NoWarm, cache)
		}
		if err != nil {
			return nil, err
		}
		rep.Suite.Scenarios = append(rep.Suite.Scenarios, results...)
	}
	for _, sb := range rep.Suite.Scenarios {
		rep.Suite.WallSeconds += sb.WallSeconds
		rep.Suite.Events += sb.Events
		rep.Suite.LPSolves += sb.LPSolves
		rep.Suite.LPSolvesAvoided += sb.LPSolvesAvoided
		rep.Suite.LP.Solves += sb.LPSolves
		rep.Suite.LP.SolvesAvoided += sb.LPSolvesAvoided
		rep.Suite.LP.IdealSolves += sb.LPIdealSolves
		rep.Suite.LP.WarmStarts += sb.LPWarmStarts
		rep.Suite.LP.Phase1Skips += sb.LPPhase1Skips
		rep.Suite.LP.PatchedRows += sb.LPPatchedRows
		rep.Suite.LP.SolveSeconds += sb.LPSolveSeconds
	}
	if rep.Suite.WallSeconds > 0 {
		rep.Suite.EventsPerSec = float64(rep.Suite.Events) / rep.Suite.WallSeconds
		rep.Suite.LP.WallShare = rep.Suite.LP.SolveSeconds / rep.Suite.WallSeconds
	}
	if rep.Suite.LP.Solves > 0 {
		rep.Suite.LP.WarmStartRate = float64(rep.Suite.LP.WarmStarts) / float64(rep.Suite.LP.Solves)
	}
	if rep.Suite.LP.IdealSolves > 0 {
		rep.Suite.LP.IdealWarmRate = float64(rep.Suite.LP.WarmStarts) / float64(rep.Suite.LP.IdealSolves)
	}
	rep.Suite.CacheHits, rep.Suite.CacheMisses = cache.Stats()

	if !opts.SkipMicro {
		rep.Micro = RunMicro()
	}
	if !opts.SkipSinks {
		name := opts.SinkScenario
		if name == "" {
			name = "megascale"
		}
		spec, err := scenario.ByName(name)
		if err != nil {
			return nil, err
		}
		spec = scenario.Prepare(spec, opts.Quick)
		rep.Sinks, err = measureSinks(spec, cache)
		if err != nil {
			return nil, err
		}
	}
	if !opts.SkipFleet {
		name := opts.FleetScenario
		if name == "" {
			name = "gigascale"
		}
		spec, err := scenario.ByName(name)
		if err != nil {
			return nil, err
		}
		spec = scenario.Prepare(spec, opts.Quick)
		workers := opts.FleetWorkers
		if len(workers) == 0 {
			workers = []int{1, 2, 4, 8}
		}
		rep.Fleet, err = measureFleet(spec, workers, repeat)
		if err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// measureScenario times every engine the spec names on the spec's trace,
// through the exact recorder or (stream) a fresh streaming sink per run.
func measureScenario(spec scenario.Spec, repeat int, stream, noWarm bool, cache *sweep.Cache) ([]ScenarioBench, error) {
	key := sweep.TraceKey{Scenario: spec.Name, Duration: spec.Duration, Seed: spec.Seed}
	reqs, err := cache.Trace(key)
	if err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("bench: scenario %s has an empty trace", spec.Name)
	}
	m, err := model.ByName(spec.Model)
	if err != nil {
		return nil, err
	}
	cluster, err := scenario.ClusterByName(spec.Cluster)
	if err != nil {
		return nil, err
	}
	cfg := engine.DefaultConfig(m, cluster)
	horizon := scenario.MeasurementHorizon(spec.Duration) // same window as scenario.RunEngine

	var out []ScenarioBench
	for _, engName := range spec.Engines {
		sb := ScenarioBench{Scenario: spec.Name, Engine: engName}
		if stream {
			sb.Sink = "streaming"
		}
		for rep := 0; rep < repeat; rep++ {
			// Streaming sinks accumulate across runs, so each repeat gets a
			// fresh one (and therefore a fresh engine; construction stays
			// outside the measured window and the cache keeps it cheap).
			runCfg := cfg
			runCfg.DisableLPWarmStart = noWarm
			if stream {
				runCfg.Sink = metrics.NewStreamingSink(spec.SLO)
				runCfg.NoTrace = true
			}
			eng, err := cache.BuildEngine(engName, runCfg, key)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s: %w", spec.Name, engName, err)
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			t0 := time.Now()
			res, err := eng.Run(reqs, horizon)
			wall := time.Since(t0).Seconds()
			runtime.ReadMemStats(&after)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s: %w", spec.Name, engName, err)
			}
			if rep == 0 || wall < sb.WallSeconds {
				sb.WallSeconds = wall
				sb.Events = res.Events
				sb.Completed = res.Completed
				sb.LPSolves = res.LPSolves
				sb.LPSolvesAvoided = res.LPSolvesAvoided
				sb.LPIdealSolves = res.LPIdealSolves
				sb.LPWarmStarts = res.LPWarmStarts
				sb.LPPhase1Skips = res.LPPhase1Skips
				sb.LPPatchedRows = res.LPPatchedRows
				if res.Events > 0 {
					sb.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(res.Events)
					sb.AllocBytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(res.Events)
				}
			}
			// LP solve time takes its own best-of-repeat minimum: the
			// solver work is deterministic across repeats, so like the
			// wall-clock minimum this only shaves scheduler noise — but
			// the quietest run for the whole engine is not always the
			// quietest for the solver slice of it.
			if rep == 0 || res.LPSolveSeconds < sb.LPSolveSeconds {
				sb.LPSolveSeconds = res.LPSolveSeconds
			}
			// Hand the run's trace pages back to the arena pool: the next
			// repeat (and the next scenario) appends into recycled pages
			// instead of growing a fresh multi-hundred-MB log.
			res.Trace.Release()
		}
		if sb.WallSeconds > 0 {
			sb.EventsPerSec = float64(sb.Events) / sb.WallSeconds
		}
		out = append(out, sb)
	}
	return out, nil
}
