package bench

import (
	"path/filepath"
	"reflect"
	"testing"

	"hetis/internal/scenario"
)

// TestRunQuickSteady measures one scenario at quick scale and sanity-checks
// every reported field.
func TestRunQuickSteady(t *testing.T) {
	rep, err := Run(Options{Scenarios: []string{"steady"}, Quick: true, SkipMicro: true, SkipSinks: true, SkipFleet: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != SchemaVersion {
		t.Errorf("schema %q want %q", rep.Schema, SchemaVersion)
	}
	spec, err := scenario.ByName("steady")
	if err != nil {
		t.Fatal(err)
	}
	if want := len(spec.WithDefaults().Engines); len(rep.Suite.Scenarios) != want {
		t.Fatalf("measured %d pairs want %d", len(rep.Suite.Scenarios), want)
	}
	for _, sb := range rep.Suite.Scenarios {
		if sb.Scenario != "steady" {
			t.Errorf("unexpected scenario %q", sb.Scenario)
		}
		if sb.WallSeconds <= 0 || sb.Events == 0 || sb.EventsPerSec <= 0 {
			t.Errorf("%s/%s: empty measurement %+v", sb.Scenario, sb.Engine, sb)
		}
		if sb.Completed == 0 {
			t.Errorf("%s/%s: no requests completed", sb.Scenario, sb.Engine)
		}
		if sb.Engine == "hetis" && sb.LPSolves == 0 {
			t.Errorf("hetis run reports zero LP solves")
		}
	}
	if rep.Suite.WallSeconds <= 0 || rep.Suite.Events == 0 {
		t.Errorf("suite totals empty: %+v", rep.Suite)
	}
	if rep.Suite.CacheMisses == 0 {
		t.Errorf("suite should have populated the sweep cache")
	}
}

// TestScenarioSelectionDeterministic pins the selection rule: the report
// lists scenarios in sorted name order whatever order the caller gives,
// and defaults to the full registry.
func TestScenarioSelectionDeterministic(t *testing.T) {
	rep, err := Run(Options{Scenarios: []string{"steady", "bursty"}, Quick: true, SkipMicro: true, SkipSinks: true, SkipFleet: true})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, sb := range rep.Suite.Scenarios {
		if len(order) == 0 || order[len(order)-1] != sb.Scenario {
			order = append(order, sb.Scenario)
		}
	}
	if want := []string{"bursty", "steady"}; !reflect.DeepEqual(order, want) {
		t.Errorf("scenario order %v want %v (sorted regardless of input order)", order, want)
	}
}

// TestReportRoundTrip pins the BENCH.json schema: Write then ReadFile must
// reproduce the report exactly, and a wrong schema version must be
// rejected.
func TestReportRoundTrip(t *testing.T) {
	rep := &Report{
		Schema:    SchemaVersion,
		GoVersion: "go1.24.0",
		GOOS:      "linux",
		GOARCH:    "amd64",
		NumCPU:    1,
		Suite: Suite{
			WallSeconds:  1.25,
			Events:       100,
			EventsPerSec: 80,
			LPSolves:     7,
			Scenarios: []ScenarioBench{{
				Scenario: "steady", Engine: "hetis",
				WallSeconds: 1.25, Events: 100, EventsPerSec: 80,
				Completed: 42, AllocsPerEvent: 3.5, LPSolves: 7,
			}},
		},
		Micro: []MicroBench{{Name: "sim/schedule-run-1024", NsPerOp: 123.4, AllocsPerOp: 5, BytesPerOp: 640}},
	}
	rep.WithBaseline(&Suite{WallSeconds: 2.5, Events: 100})
	if rep.SpeedupVsBaseline != 2 {
		t.Fatalf("speedup=%g want 2", rep.SpeedupVsBaseline)
	}

	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := Write(path, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("round trip diverged:\nwrote %+v\nread  %+v", rep, back)
	}

	bad := *rep
	bad.Schema = "hetis-bench/999"
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := Write(badPath, &bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(badPath); err == nil {
		t.Error("ReadFile accepted an unknown schema version")
	}
}

// TestRunUnknownScenario surfaces registry misses instead of measuring a
// partial suite.
func TestRunUnknownScenario(t *testing.T) {
	if _, err := Run(Options{Scenarios: []string{"nope"}, Quick: true, SkipMicro: true, SkipSinks: true, SkipFleet: true}); err == nil {
		t.Fatal("expected unknown-scenario error")
	}
}

// TestRunMicro smokes the micro set: every benchmark must produce a
// positive per-op time and a stable name for the report.
func TestRunMicro(t *testing.T) {
	if testing.Short() {
		t.Skip("micro benchmarks take a few seconds")
	}
	micros := RunMicro()
	want := []string{
		"sim/schedule-run-1024",
		"sim/wheel-cascade-64k",
		"sim/cancel-heavy-4096",
		"engine/queue-storm-4096",
		"dispatch/admission-lp",
		"dispatch/ideal-attn-lp-128",
		"lp/solve-cold-20x12",
		"lp/solve-warm-20x12",
		"kvcache/alloc-extend-free",
		"metrics/summarize-3x-10k",
		"metrics/summaries-bulk-10k",
		"metrics/streaming-observe",
		"trace/append-1m",
		"trace/pool-contended-8",
		"metrics/recorder-append-1m",
	}
	if len(micros) != len(want) {
		t.Fatalf("got %d micro results want %d", len(micros), len(want))
	}
	for i, mb := range micros {
		if mb.Name != want[i] {
			t.Errorf("micro[%d] = %q want %q", i, mb.Name, want[i])
		}
		if mb.NsPerOp <= 0 {
			t.Errorf("%s: NsPerOp = %g", mb.Name, mb.NsPerOp)
		}
	}
}

// TestWarmStartDecisionEquivalence pins the optimization contract at the
// harness level: a NoWarm (pre-warm-start baseline) suite and a default
// suite must execute identical event sequences and completions — only
// solver-side telemetry may differ. Full scale, because the quick suite
// never reaches the imbalanced states that solve the ideal relaxation.
func TestWarmStartDecisionEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale scenario run takes a few seconds")
	}
	base, err := Run(Options{Scenarios: []string{"steady"}, NoWarm: true, SkipMicro: true, SkipSinks: true, SkipFleet: true})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(Options{Scenarios: []string{"steady"}, SkipMicro: true, SkipSinks: true, SkipFleet: true})
	if err != nil {
		t.Fatal(err)
	}
	if !SamePairs(&base.Suite, &warm.Suite) {
		t.Fatal("suites measured different pairs")
	}
	for i := range base.Suite.Scenarios {
		b, w := base.Suite.Scenarios[i], warm.Suite.Scenarios[i]
		if b.Events != w.Events || b.Completed != w.Completed {
			t.Errorf("%s/%s: warm starts changed the simulation: events %d vs %d, completed %d vs %d",
				b.Scenario, b.Engine, b.Events, w.Events, b.Completed, w.Completed)
		}
		// The warm mode may avoid MORE solves (its upper-bound skip is
		// part of the optimization), but the logical total is invariant.
		if b.LPSolves+b.LPSolvesAvoided != w.LPSolves+w.LPSolvesAvoided {
			t.Errorf("%s/%s: solve accounting diverged: %d+%d vs %d+%d",
				b.Scenario, b.Engine, b.LPSolves, b.LPSolvesAvoided, w.LPSolves, w.LPSolvesAvoided)
		}
	}
	if base.Suite.LP.WarmStarts != 0 || base.Suite.LP.PatchedRows != 0 {
		t.Errorf("NoWarm suite reports warm-layer activity: %+v", base.Suite.LP)
	}
	if warm.Suite.LP.PatchedRows == 0 {
		t.Error("default suite never patched a cached problem")
	}
	if warm.Suite.LP.WarmStarts > warm.Suite.LP.Phase1Skips {
		t.Errorf("warm starts %d exceed phase-1 skips %d", warm.Suite.LP.WarmStarts, warm.Suite.LP.Phase1Skips)
	}
	if warm.Suite.LP.IdealSolves > 0 && warm.Suite.LP.WarmStarts == 0 {
		t.Error("ideal relaxations solved but none warm-started")
	}
}

// TestSamePairs pins the baseline comparability predicate.
func TestSamePairs(t *testing.T) {
	a := &Suite{Scenarios: []ScenarioBench{{Scenario: "steady", Engine: "hetis"}, {Scenario: "steady", Engine: "hexgen"}}}
	b := &Suite{Scenarios: []ScenarioBench{{Scenario: "steady", Engine: "hetis"}, {Scenario: "steady", Engine: "hexgen"}}}
	if !SamePairs(a, b) {
		t.Error("identical pair sets should compare equal")
	}
	b.Scenarios[1].Engine = "splitwise"
	if SamePairs(a, b) {
		t.Error("different engines must not compare equal")
	}
	if SamePairs(a, &Suite{}) || SamePairs(nil, b) {
		t.Error("size mismatch / nil must not compare equal")
	}
}

// TestSinkComparison checks the exact-vs-streaming section's structure:
// both modes measured on the same scenario and engine, identical event
// sequences, and the streaming side resident-memory no worse than exact.
func TestSinkComparison(t *testing.T) {
	rep, err := Run(Options{
		Scenarios:    []string{"steady"},
		Quick:        true,
		SkipMicro:    true,
		SkipFleet:    true,
		SinkScenario: "steady",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sinks) != 2 {
		t.Fatalf("want 2 sink measurements, got %d", len(rep.Sinks))
	}
	exact, stream := rep.Sinks[0], rep.Sinks[1]
	if exact.Sink != "exact" || stream.Sink != "streaming" {
		t.Fatalf("sink modes %q/%q, want exact/streaming", exact.Sink, stream.Sink)
	}
	if exact.Scenario != stream.Scenario || exact.Engine != stream.Engine {
		t.Errorf("sink comparison measured different runs: %+v vs %+v", exact, stream)
	}
	if exact.Events != stream.Events || exact.Completed != stream.Completed {
		t.Errorf("sink choice changed the simulation: %+v vs %+v", exact, stream)
	}
	if exact.WallSeconds <= 0 || stream.WallSeconds <= 0 {
		t.Errorf("empty wall measurements: %+v vs %+v", exact, stream)
	}
}

// TestFleetSection checks the shard-scaling section's structure on the
// cheap registered fleet scenario: one row per requested worker count,
// identical events and completions on every row (the determinism the
// section exists to prove), and speedups anchored at the 1-worker row.
func TestFleetSection(t *testing.T) {
	rep, err := Run(Options{
		Scenarios:     []string{"steady"},
		Quick:         true,
		SkipMicro:     true,
		SkipSinks:     true,
		FleetScenario: "fleet",
		FleetWorkers:  []int{1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := rep.Fleet
	if fs == nil {
		t.Fatal("report has no fleet section")
	}
	if fs.Scenario != "fleet" || fs.Shards != 4 || fs.Policy != "affinity" {
		t.Fatalf("fleet section misdescribed: %+v", fs)
	}
	if len(fs.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(fs.Rows))
	}
	base := fs.Rows[0]
	if base.ShardWorkers != 1 || base.WallSeconds <= 0 || base.Events == 0 || base.Completed == 0 {
		t.Fatalf("empty 1-worker row: %+v", base)
	}
	if base.SpeedupVs1 != 1 {
		t.Errorf("1-worker speedup %g want exactly 1", base.SpeedupVs1)
	}
	for _, row := range fs.Rows[1:] {
		if row.Events != base.Events || row.Completed != base.Completed {
			t.Errorf("worker count changed the simulation: %+v vs %+v", row, base)
		}
		if row.SpeedupVs1 <= 0 {
			t.Errorf("row %d: speedup not computed: %+v", row.ShardWorkers, row)
		}
	}
	if rep.GoMaxProcs <= 0 {
		t.Errorf("report gomaxprocs = %d", rep.GoMaxProcs)
	}
}

// TestShardedScenarioRows pins the suite-row path for an explicitly named
// fleet scenario: the row must come from the fleet runner (shards and
// shard_workers recorded) and still carry real measurements.
func TestShardedScenarioRows(t *testing.T) {
	rep, err := Run(Options{
		Scenarios: []string{"fleet"},
		Quick:     true,
		SkipMicro: true,
		SkipSinks: true,
		SkipFleet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.ByName("fleet")
	if err != nil {
		t.Fatal(err)
	}
	if want := len(spec.WithDefaults().Engines); len(rep.Suite.Scenarios) != want {
		t.Fatalf("measured %d pairs want %d", len(rep.Suite.Scenarios), want)
	}
	for _, sb := range rep.Suite.Scenarios {
		if sb.Shards != 4 || sb.ShardWorkers < 1 {
			t.Errorf("%s/%s: fleet provenance missing: %+v", sb.Scenario, sb.Engine, sb)
		}
		if sb.WallSeconds <= 0 || sb.Events == 0 || sb.Completed == 0 {
			t.Errorf("%s/%s: empty measurement %+v", sb.Scenario, sb.Engine, sb)
		}
	}
}
