package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// SchemaVersion identifies the BENCH.json layout. Consumers (CI trend
// jobs, plots) must check it before reading fields. Version 2 added the
// sink-comparison section and the suite's sink mode; version 3 the `lp`
// solver section (warm starts, phase-1 skips, patched rows, solve time)
// and the report's no_warm flag; version 4 the `fleet` shard-scaling
// section, the header's gomaxprocs, and per-row shard counts. Older
// documents remain readable (the added fields are absent).
const SchemaVersion = "hetis-bench/4"

// legacySchemas are older layouts ReadFile still accepts.
var legacySchemas = map[string]bool{
	"hetis-bench/1": true, "hetis-bench/2": true, "hetis-bench/3": true,
}

// ScenarioBench is one (scenario, engine) measurement of the canonical
// suite.
type ScenarioBench struct {
	Scenario string `json:"scenario"`
	Engine   string `json:"engine"`
	// Sink is the measurement mode ("streaming"; empty means exact, the
	// default and the only mode schema v1 had).
	Sink string `json:"sink,omitempty"`

	// WallSeconds is the best-of-Repeat serving wall-clock of Engine.Run
	// (trace generation and engine construction excluded).
	WallSeconds float64 `json:"wall_seconds"`
	// Events is the number of discrete events the run executed;
	// EventsPerSec is Events/WallSeconds.
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Completed confirms the measured run served the whole trace the same
	// way the golden harness observed it.
	Completed int `json:"completed"`
	// AllocsPerEvent and AllocBytesPerEvent are allocation counts/volume
	// amortized over executed events (from runtime.MemStats deltas around
	// the measured run).
	AllocsPerEvent     float64 `json:"allocs_per_event"`
	AllocBytesPerEvent float64 `json:"alloc_bytes_per_event"`
	// LPSolves / LPSolvesAvoided expose the dispatch-layer solver work: how
	// many simplex solves ran, and how many the caching layer skipped.
	LPSolves        int `json:"lp_solves"`
	LPSolvesAvoided int `json:"lp_solves_avoided"`
	// Shards and ShardWorkers mark a fleet measurement (schema v4): the
	// scenario ran as Shards independent cluster replicas executed on up to
	// ShardWorkers concurrent workers. Zero means the classic
	// single-cluster run.
	Shards       int `json:"shards,omitempty"`
	ShardWorkers int `json:"shard_workers,omitempty"`
	// LPIdealSolves / LPWarmStarts / LPPhase1Skips / LPPatchedRows /
	// LPSolveSeconds are the warm-start layer's telemetry (schema v3):
	// ideal-relaxation solves (the warm-startable class), solves answered
	// from a cached basis, solver-level phase-1 skips (≥ warm starts; the
	// excess is gray-zone warm solves re-solved cold), constraint rows
	// patched in place, and wall-clock spent inside simplex solves.
	LPIdealSolves  int     `json:"lp_ideal_solves"`
	LPWarmStarts   int     `json:"lp_warm_starts"`
	LPPhase1Skips  int     `json:"lp_phase1_skips"`
	LPPatchedRows  int     `json:"lp_patched_rows"`
	LPSolveSeconds float64 `json:"lp_solve_seconds"`
}

// LPStats aggregates the dispatch-layer solver work over a suite
// (schema v3's `lp` section).
type LPStats struct {
	Solves        int `json:"solves"`
	SolvesAvoided int `json:"solves_avoided"`
	// IdealSolves is the subset of Solves that were §5.3.1 relaxation
	// solves — the warm-startable class (placement solves stay cold by
	// design, see doc/PERFORMANCE.md) and the dominant per-solve cost.
	IdealSolves int `json:"ideal_solves"`
	// WarmStarts are solves answered from a cached optimal basis;
	// WarmStartRate is WarmStarts/Solves and IdealWarmRate is
	// WarmStarts/IdealSolves (the rate over the warm-startable class).
	WarmStarts    int     `json:"warm_starts"`
	WarmStartRate float64 `json:"warm_start_rate"`
	IdealWarmRate float64 `json:"ideal_warm_rate"`
	// Phase1Skips counts solver-level phase-1 skips (warm attempts,
	// including ones a decision guard then re-solved cold).
	Phase1Skips int `json:"phase1_skips"`
	// PatchedRows counts constraint rows mutated in place when recurring
	// LPs were re-posed as patches against their cached problems.
	PatchedRows int `json:"patched_rows"`
	// SolveSeconds is wall-clock inside simplex solves across the suite;
	// WallShare is SolveSeconds divided by the suite wall-clock — the "LP
	// time share" the warm-start optimization targets.
	SolveSeconds float64 `json:"solve_seconds"`
	WallShare    float64 `json:"wall_share"`
}

// MicroBench is one micro-benchmark result (testing.Benchmark under the
// hood, so Ns/allocs are per-op).
type MicroBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Suite aggregates the scenario measurements.
type Suite struct {
	// WallSeconds is the summed serving wall-clock of every (scenario,
	// engine) pair — the headline number speedups are computed from.
	WallSeconds  float64 `json:"wall_seconds"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`

	LPSolves        int `json:"lp_solves"`
	LPSolvesAvoided int `json:"lp_solves_avoided"`

	// LP is the schema-v3 solver section: warm-start and phase-1-skip
	// rates, patched rows, and the LP share of suite wall-clock.
	LP LPStats `json:"lp"`

	// CacheHits/CacheMisses report the sweep memo cache (shared traces,
	// plans, profile fits) over the suite's engine constructions.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`

	Scenarios []ScenarioBench `json:"scenarios"`
}

// Report is the BENCH.json document: the current measurement, optional
// micro-benchmarks, and an optional pre-optimization baseline the current
// suite is compared against.
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is the effective parallelism limit of the measuring
	// process (schema v4). Scaling numbers — the fleet section above all —
	// are only interpretable against it: num_cpu says what the machine
	// has, gomaxprocs what the run was allowed to use.
	GoMaxProcs int `json:"gomaxprocs"`
	// Quick records whether the suite ran at reduced scale; quick and
	// full-scale numbers are not comparable.
	Quick bool `json:"quick"`
	// Stream records whether the suite measured through streaming sinks;
	// exact and streaming suites are not comparable either.
	Stream bool `json:"stream,omitempty"`
	// NoWarm records that the suite ran with the LP warm-start layer
	// disabled. Unlike Quick/Stream this does NOT break baseline
	// comparability — decisions and event counts are identical either way
	// — it is precisely how the pre-warm-start baseline is recorded.
	NoWarm bool `json:"no_warm,omitempty"`

	Suite Suite        `json:"suite"`
	Micro []MicroBench `json:"micro,omitempty"`
	// Sinks is the exact-vs-streaming comparison on the sink scenario
	// (megascale by default): same trace, same engine, the measurement
	// path swapped — the recorded proof that streaming measurement memory
	// does not grow with trace length.
	Sinks []SinkBench `json:"sinks,omitempty"`
	// Fleet is the shard-scaling section (schema v4): the fleet scenario
	// measured at increasing shard-worker counts, same merged output every
	// row — the recorded proof that intra-run parallelism buys wall-clock
	// without buying nondeterminism.
	Fleet *FleetScaling `json:"fleet,omitempty"`

	// Baseline carries a reference suite (recorded pre-optimization with
	// the same harness); SpeedupVsBaseline is
	// Baseline.WallSeconds/Suite.WallSeconds.
	Baseline          *Suite  `json:"baseline,omitempty"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// WithBaseline attaches a reference suite and computes the speedup.
// Callers should check SamePairs first: a ratio over different pair sets
// measures suite size, not performance.
func (r *Report) WithBaseline(b *Suite) {
	r.Baseline = b
	if b != nil && r.Suite.WallSeconds > 0 {
		r.SpeedupVsBaseline = b.WallSeconds / r.Suite.WallSeconds
	}
}

// SamePairs reports whether two suites measured the same (scenario,
// engine) pairs in the same order — the precondition for a meaningful
// wall-clock ratio between them.
func SamePairs(a, b *Suite) bool {
	if a == nil || b == nil || len(a.Scenarios) != len(b.Scenarios) {
		return false
	}
	for i := range a.Scenarios {
		if a.Scenarios[i].Scenario != b.Scenarios[i].Scenario ||
			a.Scenarios[i].Engine != b.Scenarios[i].Engine {
			return false
		}
	}
	return true
}

// Write marshals the report as indented JSON to path.
func Write(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile parses a BENCH.json document and checks its schema.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.Schema != SchemaVersion && !legacySchemas[r.Schema] {
		return nil, fmt.Errorf("bench: %s has schema %q, this build reads %q", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}
