package scenario

import (
	"fmt"
	"sort"
	"sync"

	"hetis/internal/workload"
)

var (
	regMu sync.RWMutex
	specs = map[string]Spec{}
)

// Register adds a scenario to the catalog. Names are unique; registering a
// known name or an invalid spec errors.
func Register(s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := specs[s.Name]; dup {
		return fmt.Errorf("scenario: %q already registered", s.Name)
	}
	specs[s.Name] = s
	return nil
}

// ByName resolves a registered scenario.
func ByName(name string) (Spec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := specs[name]
	if !ok {
		// Build the list inline: calling Names() here would re-acquire
		// regMu.RLock and deadlock against a writer waiting in Register.
		known := make([]string, 0, len(specs))
		for n := range specs {
			known = append(known, n)
		}
		sort.Strings(known)
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q (known: %v)", name, known)
	}
	return s, nil
}

// Names lists the registered scenarios in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(specs))
	for name := range specs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SuiteNames lists the registered non-Heavy, non-chaotic, non-sharded
// scenarios in sorted order — what catalog-wide expansions ("all", the
// bench suite, the scenarios experiment) run. The rest run when named
// explicitly: Heavy because of cost, chaotic because their tables carry
// extra columns the suite consumers don't expect, and sharded because the
// suite's committed baselines are single-cluster (fleet scaling has its
// own bench section).
func SuiteNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(specs))
	for name, s := range specs {
		if !s.Heavy && !s.Chaotic() && !s.Sharded() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// The built-in catalog: one scenario per traffic shape the workload layer
// supports, plus the multi-tenant mix. Rates are sized for Llama-13B on
// the paper cluster so the engines are loaded but not hopeless, and the
// shapes are duration-relative so Quick runs keep them intact.
func init() {
	builtins := []Spec{
		{
			Name:        "steady",
			Description: "steady Poisson chat traffic at 5 req/s (the paper's serving baseline)",
			Traffic:     Traffic{Kind: KindPoisson, Rate: 5},
		},
		{
			Name:        "bursty",
			Description: "two-state MMPP: 12 req/s bursts (mean 4 s) between 1.5 req/s lulls (mean 8 s)",
			Traffic: Traffic{Kind: KindMMPP, States: []workload.MMPPState{
				{Rate: 12, MeanDwell: 4},
				{Rate: 1.5, MeanDwell: 8},
			}},
		},
		{
			Name:        "diurnal",
			Description: "sinusoidal day/night load: 4 req/s ± 80% over one cycle per trace",
			Traffic:     Traffic{Kind: KindDiurnal, Rate: 4, Amplitude: 0.8, Cycles: 1},
		},
		{
			Name:        "flashcrowd",
			Description: "2.5 req/s with a 6x spike over the middle sixth of the trace",
			Traffic:     Traffic{Kind: KindFlashCrowd, Rate: 2.5, SpikeStart: 0.4, SpikeFrac: 1.0 / 6, SpikeFactor: 6},
		},
		{
			Name:        "multitenant",
			Description: "6 req/s shared by chat (SG, w3), code (HE, w2) and batch summarization (LB, w1) tenants",
			Traffic:     Traffic{Kind: KindPoisson, Rate: 6},
			Mix: []workload.MixEntry{
				{Tenant: "chat", Dataset: workload.ShareGPT, Weight: 3},
				{Tenant: "code", Dataset: workload.HumanEval, Weight: 2},
				{Tenant: "batch", Dataset: workload.LongBench, Weight: 1},
			},
		},
		{
			Name:        "closedloop",
			Description: "closed-loop population: 48 sessions with 8 s mean think time (~6 req/s offered)",
			Traffic:     Traffic{Kind: KindClosedLoop, Users: 48, Think: 8},
		},
		{
			// The streaming-sink scale proof: ~10^6 requests in one run. A
			// day-scale diurnal wave at a rate the homogeneous reference
			// tier genuinely serves (±60% around 20 req/s of short code
			// completions, ~91% SLO attainment), so the scenario measures
			// measurement cost, not pure overload. Exact measurement holds
			// ~200 MB of records and trace events for it; the streaming
			// sink holds kilobytes.
			Name:        "megascale",
			Description: "million-request diurnal day: 20 req/s ±60% of code-completion traffic over 50000 s (run with the streaming sink)",
			Traffic:     Traffic{Kind: KindDiurnal, Rate: 20, Amplitude: 0.6, Cycles: 1},
			Mix: []workload.MixEntry{
				{Tenant: "code", Dataset: workload.HumanEval, Weight: 1},
			},
			Engines:        []string{"vllm"},
			Duration:       50000,
			Heavy:          true,
			GoldenDuration: 40,
		},
		{
			// The fleet layer's golden referee: small enough for the exact
			// recorder, sharded enough to pin the router, the per-shard seed
			// split, and the ordered merge byte-for-byte. Tenant affinity
			// keeps each tenant's requests on one shard, so the merged
			// per-tenant rows double as a routing regression check.
			Name:        "fleet",
			Description: "multitenant 6 req/s across a 4-shard fleet behind a tenant-affinity front door",
			Traffic:     Traffic{Kind: KindPoisson, Rate: 6},
			Mix: []workload.MixEntry{
				{Tenant: "chat", Dataset: workload.ShareGPT, Weight: 3},
				{Tenant: "code", Dataset: workload.HumanEval, Weight: 2},
				{Tenant: "batch", Dataset: workload.LongBench, Weight: 1},
			},
			Engines: []string{"hetis", "vllm"},
			Fleet:   &FleetSpec{Shards: 4, Policy: "affinity"},
		},
		{
			// The intra-run-parallelism scale proof: megascale's traffic
			// shape at 8x the rate and 1.25x the span — ten million requests
			// in one run, split over 8 least-loaded shards so each shard
			// carries megascale's reference 20 req/s. Run with the streaming
			// sink: exact measurement would hold ~2 GB of records.
			Name:        "gigascale",
			Description: "ten-million-request fleet day: 160 req/s ±60% of code completions over 62500 s, 8 least-loaded shards (run with the streaming sink)",
			Traffic:     Traffic{Kind: KindDiurnal, Rate: 160, Amplitude: 0.6, Cycles: 1},
			Mix: []workload.MixEntry{
				{Tenant: "code", Dataset: workload.HumanEval, Weight: 1},
			},
			Engines:        []string{"vllm"},
			Duration:       62500,
			Fleet:          &FleetSpec{Shards: 8, Policy: "least-loaded"},
			Heavy:          true,
			GoldenDuration: 40,
		},
		{
			// Chaos: one of two replicas dies twice mid-trace. The first
			// outage loses its KV (victims re-prefill from scratch); the
			// second hauls resident KV to the survivor over the
			// interconnect. Pins re-dispatch, recovery accounting and both
			// KV policies on every engine.
			Name:        "failover",
			Description: "steady 5 req/s on two replicas; replica 1 fails twice (KV lost, then KV hauled)",
			Traffic:     Traffic{Kind: KindPoisson, Rate: 5},
			Engines:     []string{"hetis", "hexgen", "vllm", "splitwise"},
			Replicas:    2,
			FailurePlan: []FailureEvent{
				{Replica: 1, Start: 0.25, End: 0.55},
				{Replica: 1, Start: 0.6, End: 0.85, HaulKV: true},
			},
		},
		{
			// Chaos: the flash-crowd spike drives SLO attainment down and
			// the controller scales 1 → 3 replicas behind a provisioning
			// lag, then folds back once the wave passes. The spike spans
			// many control intervals so the reactive loop has time to help
			// (a spike shorter than the window ends before misses surface).
			Name:        "autoscale",
			Description: "flash-crowd spike under an SLO-driven autoscaler (1-3 replicas, provisioning lag)",
			Traffic:     Traffic{Kind: KindFlashCrowd, Rate: 2.5, SpikeStart: 0.4, SpikeFrac: 1.0 / 4, SpikeFactor: 6},
			Duration:    160,
			Autoscale: &AutoscaleSpec{
				MinReplicas: 1, MaxReplicas: 3,
				Interval: 0.04, Lag: 0.02,
				UpBelow: 0.7, DownAbove: 0.95,
			},
		},
		{
			// Chaos: gold-tier chat preempts the uncapped silver tier's
			// long-context batch work out of KV memory, while bronze bulk
			// traffic is admission-capped so overload drops it instead of
			// starving the tiers above. Pins preemption counts, admission
			// drops and per-tier SLO rows.
			Name:        "preempt",
			Description: "10 req/s chat+batch+bulk mix: gold preempts silver's long contexts, bronze is admission-capped",
			Traffic:     Traffic{Kind: KindPoisson, Rate: 10},
			Mix: []workload.MixEntry{
				{Tenant: "chat", Dataset: workload.ShareGPT, Weight: 2},
				{Tenant: "batch", Dataset: workload.LongBench, Weight: 2},
				{Tenant: "bulk", Dataset: workload.LongBench, Weight: 1},
			},
			Tiers: []TierSpec{
				{Name: "gold", Tenants: []string{"chat"}, Priority: 2},
				{Name: "silver", Tenants: []string{"batch"}, Priority: 1},
				{Name: "bronze", Tenants: []string{"bulk"}, Priority: 0, MaxInflight: 8},
			},
		},
	}
	for _, s := range builtins {
		if err := Register(s); err != nil {
			panic(err)
		}
	}
}
