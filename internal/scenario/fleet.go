// The fleet run path: a sharded scenario routes its trace through a
// front-door router at admission time, serves each shard's slice on an
// independent engine (own calendar queue, trace arena, sink, and a seed
// split from the run seed), executes the shards concurrently on the sweep
// worker pool, and merges everything back in shard-index order. Every
// decision that could differ between executions is made before the shards
// start or after they all finish, so the merged output is byte-identical
// at any shard-worker count and any GOMAXPROCS.

package scenario

import (
	"errors"
	"fmt"

	"hetis/internal/engine"
	"hetis/internal/fleet"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/sweep/pool"
	"hetis/internal/trace"
	"hetis/internal/workload"
)

// fleetShard is one replica's slice of a sharded run.
type fleetShard struct {
	reqs     []workload.Request
	eng      engine.Engine   // nil when the router sent the shard nothing
	pipeline *streamPipeline // streaming runs only; built for every shard
	res      *engine.Result
	err      error
}

// FleetRun is a prepared sharded run: trace generated, routed, and one
// engine built per non-empty shard — everything except the simulation
// itself, so harnesses that time serving (internal/bench) can keep
// preparation outside the clock. A FleetRun is single-use: streaming sinks
// accumulate, so call PrepareFleet again for a repeat run.
type FleetRun struct {
	Spec       Spec // the effective (defaulted, quick-scaled) spec
	EngineName string

	reqs      []workload.Request
	shards    []*fleetShard
	streaming bool
	ran       bool
	merged    *engine.Result
}

// PrepareFleet prepares a sharded scenario for engineName: applies
// defaults and Quick scaling, validates, generates and routes the trace,
// and builds the per-shard engines. opts.Build is ignored — the sweep
// cache keys engines by (scenario, duration, seed), which cannot tell
// shards of one run apart, and each shard must plan its own sub-trace.
func PrepareFleet(spec Spec, engineName string, opts Options) (*FleetRun, error) {
	spec = Prepare(spec, opts.Quick)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !engine.Known(engineName) {
		return nil, fmt.Errorf("scenario %s: unknown engine %q", spec.Name, engineName)
	}
	return prepareFleet(spec, engineName, opts)
}

// prepareFleet is PrepareFleet after Prepare/Validate (the RunEngineSink
// entry point, which has already done both).
func prepareFleet(spec Spec, engineName string, opts Options) (*FleetRun, error) {
	if !spec.Sharded() {
		return nil, fmt.Errorf("scenario %s: not a fleet scenario (no Fleet spec)", spec.Name)
	}
	reqs, err := spec.Trace()
	if err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("scenario %s: empty trace", spec.Name)
	}
	m, err := model.ByName(spec.Model)
	if err != nil {
		return nil, err
	}
	cluster, err := ClusterByName(spec.Cluster)
	if err != nil {
		return nil, err
	}
	router, err := fleet.NewRouter(spec.Fleet.policy(), spec.Fleet.Shards, spec.Fleet.Weights)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}
	parts := router.Partition(reqs)

	f := &FleetRun{
		Spec:       spec,
		EngineName: engineName,
		reqs:       reqs,
		shards:     make([]*fleetShard, len(parts)),
		streaming:  opts.Stream,
	}
	// All shards share the pipeline shape of the whole trace (a shard that
	// happens to see one tenant still builds the mux) so the shard sinks
	// merge structurally.
	tenants := multiTenant(reqs)
	for i, part := range parts {
		sh := &fleetShard{reqs: part}
		f.shards[i] = sh
		cfg := engine.DefaultConfig(m, cluster)
		// The splittable seed mix gives every shard an independent stream
		// derived only from (run seed, shard index) — never from routing
		// outcomes or sibling shards.
		cfg.Seed = fleet.SplitSeed(spec.Seed, i)
		if opts.Stream {
			sh.pipeline = newStreamPipeline(spec.SLO, opts.Window, tenants, nil, true)
			cfg.Sink = sh.pipeline.sink
			cfg.NoTrace = true
		}
		if len(part) == 0 {
			continue // a shard the router starved has nothing to simulate
		}
		eng, err := BuildEngine(engineName, cfg, part)
		if err != nil {
			return nil, fmt.Errorf("scenario %s/%s: shard %d/%d: %w", spec.Name, engineName, i, len(parts), err)
		}
		sh.eng = eng
	}
	return f, nil
}

// Run executes the shards on up to shardWorkers concurrent workers (0 =
// one per CPU, clamped to the shard count) and merges their results in
// shard-index order. The returned Result is the fleet-wide view; Run may
// be called once per FleetRun.
func (f *FleetRun) Run(shardWorkers int) (*engine.Result, error) {
	if f.ran {
		return nil, fmt.Errorf("scenario %s/%s: FleetRun is single-use; PrepareFleet again for a repeat", f.Spec.Name, f.EngineName)
	}
	f.ran = true
	horizon := MeasurementHorizon(f.Spec.Duration)
	pool.Each(len(f.shards), shardWorkers, func(i int) {
		sh := f.shards[i]
		if sh.eng == nil {
			return
		}
		sh.res, sh.err = sh.eng.Run(sh.reqs, horizon)
	})
	var errs []error
	for i, sh := range f.shards {
		if sh.err != nil {
			// Shard-indexed context so a bad shard is debuggable from the
			// merged error alone.
			errs = append(errs, fmt.Errorf("scenario %s/%s: shard %d/%d: %w", f.Spec.Name, f.EngineName, i, len(f.shards), sh.err))
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	f.merged = f.mergeResults()
	// Once merged, the shard engines and per-shard results are dead weight
	// (a FleetRun is single-use); drop them so a retained FleetRun costs
	// the merged result, not S copies of simulation state. Shard 0's
	// pipeline stays: the merged sinks were folded onto it and Tables
	// renders from it.
	for i, sh := range f.shards {
		sh.eng = nil
		sh.res = nil
		if i > 0 {
			sh.pipeline = nil
		}
	}
	return f.merged, nil
}

// mergeResults folds the per-shard results into the fleet-wide Result, in
// shard-index order throughout. Counters sum; Horizon is the latest shard
// horizon; the exact path concatenates recorders and k-way-merges traces
// by time. Per-device series (HeadSeries, CacheSeries, DenseTimes,
// AttnTimes) stay nil: device IDs are cluster-local and collide across
// shards, so a fleet-wide device view would attribute different shards'
// devices to one another. CacheCapacity sums to the fleet's total;
// PeakCacheUsed sums the per-shard peaks, an upper bound on the true
// fleet-wide peak (shards peak at different instants).
func (f *FleetRun) mergeResults() *engine.Result {
	out := &engine.Result{Engine: f.EngineName}
	var logs []*trace.Log
	for _, sh := range f.shards {
		if sh.res == nil {
			continue
		}
		r := sh.res
		out.CacheCapacity += r.CacheCapacity
		out.PeakCacheUsed += r.PeakCacheUsed
		out.Completed += r.Completed
		out.Evictions += r.Evictions
		out.Migrations += r.Migrations
		out.MigratedBytes += r.MigratedBytes
		out.Dropped += r.Dropped
		out.Queued += r.Queued
		out.Preempted += r.Preempted
		out.Events += r.Events
		out.LPSolves += r.LPSolves
		out.LPSolvesAvoided += r.LPSolvesAvoided
		out.LPIdealSolves += r.LPIdealSolves
		out.LPWarmStarts += r.LPWarmStarts
		out.LPPhase1Skips += r.LPPhase1Skips
		out.LPPatchedRows += r.LPPatchedRows
		out.LPSolveSeconds += r.LPSolveSeconds
		if r.Horizon > out.Horizon {
			out.Horizon = r.Horizon
		}
		if r.Trace != nil {
			logs = append(logs, r.Trace)
		}
	}
	if f.streaming {
		// Shard pipelines are same-shaped by construction; fold them onto
		// shard 0's in index order. Merge errors here mean a bug, not bad
		// input — same alpha, SLO and window everywhere — so they panic
		// rather than complicate every caller.
		base := f.shards[0].pipeline
		for i, sh := range f.shards[1:] {
			if err := metrics.MergeSinks(base.sink, sh.pipeline.sink); err != nil {
				panic(fmt.Sprintf("scenario %s/%s: merging shard %d sink: %v", f.Spec.Name, f.EngineName, i+1, err))
			}
		}
		out.Sink = base.sink
	} else {
		rec := metrics.NewRecorderCap(len(f.reqs))
		for _, sh := range f.shards {
			if sh.res != nil && sh.res.Recorder != nil {
				if err := rec.MergeSink(sh.res.Recorder); err != nil {
					panic(fmt.Sprintf("scenario %s/%s: merging recorders: %v", f.Spec.Name, f.EngineName, err))
				}
			}
		}
		out.Recorder = rec
		out.Sink = rec
		// One time-ordered fleet trace (ties break to the lower shard), then
		// the shard arenas go back to the page pool.
		out.Trace = trace.MergeByTime(logs...)
		for _, l := range logs {
			l.Release()
		}
	}
	return out
}

// Result returns the merged fleet-wide result (nil before Run succeeds).
func (f *FleetRun) Result() *engine.Result { return f.merged }

// Tables renders the merged run as the scenario row table (and the merged
// windowed series table for streaming runs with a window).
func (f *FleetRun) Tables() (rows, windows *metrics.Table, err error) {
	if f.merged == nil {
		return nil, nil, fmt.Errorf("scenario %s/%s: fleet run has no result (Run first)", f.Spec.Name, f.EngineName)
	}
	tab := &metrics.Table{Header: HeaderFor(false)}
	if f.streaming {
		p := f.shards[0].pipeline
		streamRows(tab, f.Spec, f.EngineName, f.reqs, f.merged, p, false)
		if p.windows != nil {
			windows = p.windows.Table()
		}
		return tab, windows, nil
	}
	exactRows(tab, f.Spec, f.EngineName, f.reqs, f.merged, false)
	return tab, nil, nil
}
