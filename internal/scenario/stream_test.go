package scenario

import (
	"math"
	"slices"
	"strconv"
	"testing"
)

func cellFloat(t *testing.T, row []string, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		t.Fatalf("cell %d %q: %v", col, row[col], err)
	}
	return v
}

// TestStreamMatchesExact runs the multi-tenant scenario both ways and
// checks the streaming table keeps the exact path's shape and exact
// columns (offered, completed, goodput, attainment — the streaming sink
// counts SLO attainment per record, not approximately), with latency
// columns within the sketch regime.
func TestStreamMatchesExact(t *testing.T) {
	spec, err := ByName("multitenant")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := RunEngine(spec, "hexgen", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := RunEngine(spec, "hexgen", Options{Quick: true, Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(stream.Rows) != len(exact.Rows) {
		t.Fatalf("streaming table has %d rows, exact %d", len(stream.Rows), len(exact.Rows))
	}
	for i := range exact.Rows {
		er, sr := exact.Rows[i], stream.Rows[i]
		// Scenario, Engine, Tenant, Offered, Completed are identities.
		for col := 0; col < 5; col++ {
			if er[col] != sr[col] {
				t.Errorf("row %d col %d: streaming %q, exact %q", i, col, sr[col], er[col])
			}
		}
		// Goodput and Attain are exact counts in both paths.
		for col := 5; col < 7; col++ {
			if er[col] != sr[col] {
				t.Errorf("row %d col %d (exact-count column): streaming %q, exact %q", i, col, sr[col], er[col])
			}
		}
		// Latency columns are sketch estimates; the quick trace has a few
		// hundred completions in aggregate and a few dozen per tenant, so
		// the sparse-order-statistic regime applies (the 1% bound is a
		// large-n property, pinned by the metrics and megascale tests).
		tol := 0.10
		if i > 0 {
			tol = 0.25
		}
		for col := 7; col < 10; col++ {
			e, s := cellFloat(t, er, col), cellFloat(t, sr, col)
			if e > 0 && math.Abs(s-e)/e > tol {
				t.Errorf("row %d col %d: streaming %g vs exact %g", i, col, s, e)
			}
		}
	}
}

// TestRunEngineSinkWindows checks the windowed series comes back only on
// streaming runs and spans the trace contiguously.
func TestRunEngineSinkWindows(t *testing.T) {
	spec, err := ByName("steady")
	if err != nil {
		t.Fatal(err)
	}
	rows, windows, err := RunEngineSink(spec, "vllm", Options{Quick: true, Stream: true, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) == 0 {
		t.Fatal("streaming run produced no rows")
	}
	if windows == nil || len(windows.Rows) == 0 {
		t.Fatal("streaming run with Window produced no windows table")
	}
	// The series anchors at the first completion's window and must step
	// contiguously by the window width from there.
	first := cellFloat(t, windows.Rows[0], 0)
	for i, row := range windows.Rows {
		if got := cellFloat(t, row, 0); got != first+float64(2*i) {
			t.Fatalf("window %d starts at %g, want %g", i, got, first+float64(2*i))
		}
	}

	if _, windows, err = RunEngineSink(spec, "vllm", Options{Quick: true}); err != nil {
		t.Fatal(err)
	} else if windows != nil {
		t.Error("exact run must not produce a windows table")
	}
}

// TestMegascaleRegistration pins the scale scenario's contract: registered,
// heavy (excluded from suite expansions), golden-pinned at a short replay,
// and single-engine.
func TestMegascaleRegistration(t *testing.T) {
	spec, err := ByName("megascale")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Heavy {
		t.Error("megascale must be Heavy")
	}
	if spec.GoldenDuration <= 0 {
		t.Error("megascale must pin a GoldenDuration")
	}
	if got := spec.ForGolden().Duration; got != spec.GoldenDuration {
		t.Errorf("ForGolden duration %g, want %g", got, spec.GoldenDuration)
	}
	// ~1M requests at full scale: mean rate × duration.
	if n := spec.WithDefaults().Traffic.MeanRate() * spec.WithDefaults().Duration; n < 9e5 || n > 1.2e6 {
		t.Errorf("megascale expects ~1e6 requests, spec implies %.0f", n)
	}
	if slices.Contains(SuiteNames(), "megascale") {
		t.Error("SuiteNames must exclude heavy scenarios")
	}
	if !slices.Contains(Names(), "megascale") {
		t.Error("Names must still list heavy scenarios")
	}
	// Heavy without a golden replay must not register.
	bad := spec
	bad.Name = "megascale-bad"
	bad.GoldenDuration = 0
	if err := Register(bad); err == nil {
		t.Error("heavy scenario without GoldenDuration registered")
	}
}
