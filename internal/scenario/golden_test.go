package scenario

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/*.golden from the current engines")

// TestGolden pins every registered scenario's full CSV output — per-engine
// and per-tenant goodput, attainment, and latency columns — against a
// golden file. Any change anywhere in the serving stack (engine batching,
// dispatch LP, kvcache eviction, perf model, workload sampling) that
// shifts a scheduling decision shows up here as a reviewable diff instead
// of silently drifting downstream results. Regenerate with:
//
//	go test ./internal/scenario -run TestGolden -update
func TestGolden(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			// Heavy scenarios pin a shortened replay (Spec.GoldenDuration):
			// the golden referee needs every scheduling path exercised
			// byte-stably, not a million-request run per `go test`.
			spec = spec.ForGolden()
			tab, err := Run(spec, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := []byte(tab.CSV())
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("scenario %q drifted from its golden trace (rerun with -update if the change is intended):\n%s",
					name, diffLines(want, got))
			}
		})
	}
}

// diffLines renders a minimal line diff of two CSV bodies.
func diffLines(want, got []byte) string {
	w := bytes.Split(bytes.TrimRight(want, "\n"), []byte("\n"))
	g := bytes.Split(bytes.TrimRight(got, "\n"), []byte("\n"))
	var out bytes.Buffer
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		var wl, gl []byte
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if bytes.Equal(wl, gl) {
			continue
		}
		fmt.Fprintf(&out, "line %d:\n  want: %s\n  got:  %s\n", i+1, wl, gl)
	}
	return out.String()
}

// TestGoldenFilesCoverRegistry fails when a golden exists for no
// registered scenario (stale file) so the testdata directory and the
// catalog cannot drift apart. The other direction — a scenario with no
// golden — already fails in TestGolden.
func TestGoldenFilesCoverRegistry(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{}
	for _, name := range Names() {
		known[name+".golden"] = true
	}
	for _, e := range entries {
		if !known[e.Name()] {
			t.Errorf("testdata/%s matches no registered scenario; delete it or register the scenario", e.Name())
		}
	}
}
