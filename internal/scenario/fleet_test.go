package scenario

import (
	"runtime"
	"strings"
	"testing"

	"hetis/internal/trace"
	"hetis/internal/workload"
)

// fleetTestSpec is a small sharded multi-tenant scenario on the cheap vllm
// engine — fast enough to run many times under the determinism battery.
func fleetTestSpec(policy string) Spec {
	return Spec{
		Name:        "fleet-battery",
		Description: "determinism battery fixture",
		Traffic:     Traffic{Kind: KindPoisson, Rate: 6},
		Mix: []workload.MixEntry{
			{Tenant: "chat", Dataset: workload.ShareGPT, Weight: 3},
			{Tenant: "code", Dataset: workload.HumanEval, Weight: 1},
		},
		Engines:  []string{"vllm"},
		Duration: 20,
		Fleet:    &FleetSpec{Shards: 4, Policy: policy},
	}
}

// runFleetCSV runs the fixture and returns the row table (and the windowed
// table, when streaming with a window) as CSV.
func runFleetCSV(t *testing.T, spec Spec, opts Options) (string, string) {
	t.Helper()
	rows, wins, err := RunEngineSink(spec, spec.Engines[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	var w string
	if wins != nil {
		w = wins.CSV()
	}
	return rows.CSV(), w
}

// The tentpole contract: merged output is byte-identical at any
// shard-worker count and any GOMAXPROCS, on both the exact and streaming
// measurement paths, for every routing policy.
func TestFleetDeterministicAcrossWorkersAndProcs(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, policy := range []string{"weighted", "least-loaded", "affinity"} {
		spec := fleetTestSpec(policy)
		for _, stream := range []bool{false, true} {
			opts := Options{Stream: stream, ShardWorkers: 1}
			if stream {
				opts.Window = 5
			}
			runtime.GOMAXPROCS(1)
			refRows, refWins := runFleetCSV(t, spec, opts)
			if !strings.Contains(refRows, spec.Name) {
				t.Fatalf("%s: reference CSV has no scenario rows:\n%s", policy, refRows)
			}
			for _, procs := range []int{1, 2} {
				for _, workers := range []int{1, 4, 8} {
					runtime.GOMAXPROCS(procs)
					opts.ShardWorkers = workers
					rows, wins := runFleetCSV(t, spec, opts)
					if rows != refRows {
						t.Errorf("%s stream=%v: CSV differs at shard-workers=%d GOMAXPROCS=%d", policy, stream, workers, procs)
					}
					if wins != refWins {
						t.Errorf("%s stream=%v: windowed CSV differs at shard-workers=%d GOMAXPROCS=%d", policy, stream, workers, procs)
					}
				}
			}
		}
	}
}

// The fleet must conserve the offered trace — completed + dropped + queued
// sums to the request count, exactly as single-cluster runs promise — and
// the merged exact-path artifacts (recorder, time-ordered trace) must
// cover every shard.
func TestFleetConservation(t *testing.T) {
	spec := Prepare(fleetTestSpec("least-loaded"), false)
	fr, err := PrepareFleet(spec, "vllm", Options{})
	if err != nil {
		t.Fatal(err)
	}
	offered := len(fr.reqs)
	res, err := fr.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Dropped+res.Queued != offered {
		t.Fatalf("conservation broken: %d completed + %d dropped + %d queued != %d offered",
			res.Completed, res.Dropped, res.Queued, offered)
	}
	if got := res.Recorder.Count(); got != res.Completed+res.Dropped {
		t.Fatalf("merged recorder holds %d records, result counts %d", got, res.Completed+res.Dropped)
	}
	if res.Events == 0 || res.Horizon <= 0 {
		t.Fatalf("merged result missing event/horizon accounting: events=%d horizon=%g", res.Events, res.Horizon)
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("exact fleet run produced no merged trace")
	}
	last := -1.0
	res.Trace.Each(func(ev trace.Event) bool {
		if ev.At < last {
			t.Fatalf("merged trace out of order: %g after %g", ev.At, last)
		}
		last = ev.At
		return true
	})
	res.Trace.Release()
}

// A FleetRun is single-use; a second Run must refuse rather than silently
// double-accumulate streaming sinks.
func TestFleetRunSingleUse(t *testing.T) {
	fr, err := PrepareFleet(fleetTestSpec("weighted"), "vllm", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Run(1); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Run(1); err == nil {
		t.Fatal("second Run should fail")
	}
}

// Fleet excludes chaos fields and unknown policies at validation time, and
// the fleet preparation path refuses unsharded specs.
func TestFleetValidation(t *testing.T) {
	spec := fleetTestSpec("weighted")
	spec.Replicas = 2
	if err := spec.Validate(); err == nil {
		t.Fatal("fleet + chaos should fail validation")
	}
	bad := fleetTestSpec("no-such-policy")
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown routing policy should fail validation")
	}
	plain := fleetTestSpec("weighted")
	plain.Fleet = nil
	if _, err := prepareFleet(Prepare(plain, false), "vllm", Options{}); err == nil {
		t.Fatal("prepareFleet should refuse an unsharded spec")
	}
}

// Affinity routing with a single-tenant trace starves all but one shard;
// the run must still work and still merge deterministically.
func TestFleetToleratesEmptyShards(t *testing.T) {
	spec := fleetTestSpec("affinity")
	spec.Mix = nil // single-tenant: every request carries tenant ""
	a, _ := runFleetCSV(t, spec, Options{ShardWorkers: 1})
	b, _ := runFleetCSV(t, spec, Options{ShardWorkers: 4})
	if a != b {
		t.Fatal("empty-shard fleet run not deterministic across worker counts")
	}
	sa, _ := runFleetCSV(t, spec, Options{Stream: true, ShardWorkers: 1})
	sb, _ := runFleetCSV(t, spec, Options{Stream: true, ShardWorkers: 4})
	if sa != sb {
		t.Fatal("empty-shard streaming fleet run not deterministic across worker counts")
	}
}

// Streaming and exact fleet paths must agree on the count-valued columns
// (scenario, engine, tenant, offered, completed) — only latency summaries
// may differ, within the sketch's relative-error bound.
func TestFleetStreamMatchesExactCounts(t *testing.T) {
	spec := fleetTestSpec("least-loaded")
	exact, _ := runFleetCSV(t, spec, Options{})
	stream, _ := runFleetCSV(t, spec, Options{Stream: true})
	exactLines := strings.Split(strings.TrimSpace(exact), "\n")
	streamLines := strings.Split(strings.TrimSpace(stream), "\n")
	if len(exactLines) != len(streamLines) {
		t.Fatalf("row count differs: exact %d, stream %d", len(exactLines), len(streamLines))
	}
	for i := range exactLines {
		e := strings.Split(exactLines[i], ",")
		s := strings.Split(streamLines[i], ",")
		for c := 0; c < 5 && c < len(e); c++ {
			if e[c] != s[c] {
				t.Fatalf("row %d column %d: exact %q vs stream %q", i, c, e[c], s[c])
			}
		}
	}
}
