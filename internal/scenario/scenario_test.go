package scenario

import (
	"strings"
	"sync"
	"testing"
	"time"

	"hetis/internal/workload"
)

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	for _, want := range []string{"steady", "bursty", "diurnal", "flashcrowd", "multitenant", "closedloop"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("builtin scenario %q not registered (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	if _, err := ByName("steady"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("no-such"); err == nil || !strings.Contains(err.Error(), "no-such") {
		t.Errorf("ByName(no-such) = %v, want error naming it", err)
	}
}

func TestRegisterRejectsDuplicatesAndInvalid(t *testing.T) {
	if err := Register(Spec{Name: "steady", Traffic: Traffic{Kind: KindPoisson, Rate: 1}}); err == nil {
		t.Error("duplicate registration should error")
	}
	bad := []Spec{
		{Name: "", Traffic: Traffic{Kind: KindPoisson, Rate: 1}},
		{Name: "x", Traffic: Traffic{Kind: "warp", Rate: 1}},
		{Name: "x", Traffic: Traffic{Kind: KindPoisson}},
		{Name: "x", Traffic: Traffic{Kind: KindMMPP}},
		{Name: "x", Traffic: Traffic{Kind: KindClosedLoop}},
		// Flash crowds with no real spike, or a window past the trace end,
		// must not register as if they spiked.
		{Name: "x", Traffic: Traffic{Kind: KindFlashCrowd, Rate: 2, SpikeFactor: 6}},
		{Name: "x", Traffic: Traffic{Kind: KindFlashCrowd, Rate: 2, SpikeFrac: 0.2}},
		{Name: "x", Traffic: Traffic{Kind: KindFlashCrowd, Rate: 2, SpikeStart: 0.9, SpikeFrac: 0.2, SpikeFactor: 6}},
		{Name: "x", Traffic: Traffic{Kind: KindPoisson, Rate: 1}, Model: "no-model"},
		{Name: "x", Traffic: Traffic{Kind: KindPoisson, Rate: 1}, Cluster: "no-cluster"},
		{Name: "x", Traffic: Traffic{Kind: KindPoisson, Rate: 1}, Engines: []string{"warp"}},
		{Name: "x", Traffic: Traffic{Kind: KindPoisson, Rate: 1}, Mix: []workload.MixEntry{{Tenant: "a", Weight: 1}}},
	}
	for _, s := range bad {
		if err := Register(s); err == nil {
			t.Errorf("Register(%+v) succeeded, want error", s)
		}
	}
}

func TestTraceDeterministicAndSorted(t *testing.T) {
	for _, name := range Names() {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		spec = Prepare(spec, true)
		a, err := spec.Trace()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, _ := spec.Trace()
		if len(a) == 0 {
			t.Fatalf("%s: empty trace", name)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic trace length %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: request %d differs between identical generations", name, i)
			}
			if i > 0 && a[i].ArrivalAt < a[i-1].ArrivalAt {
				t.Fatalf("%s: arrivals not sorted at %d", name, i)
			}
			if a[i].ID != int64(i) {
				t.Fatalf("%s: IDs not sequential at %d", name, i)
			}
			if a[i].ArrivalAt < 0 || a[i].ArrivalAt >= spec.Duration {
				t.Fatalf("%s: arrival %g outside [0,%g)", name, a[i].ArrivalAt, spec.Duration)
			}
		}
	}
}

func TestTrafficShapes(t *testing.T) {
	// Flash crowd: the spike window must hold a disproportionate share of
	// arrivals.
	spec, _ := ByName("flashcrowd")
	spec = spec.WithDefaults()
	reqs, err := spec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	tr := spec.Traffic
	lo, hi := tr.SpikeStart*spec.Duration, (tr.SpikeStart+tr.SpikeFrac)*spec.Duration
	in := 0
	for _, r := range reqs {
		if r.ArrivalAt >= lo && r.ArrivalAt < hi {
			in++
		}
	}
	frac := float64(in) / float64(len(reqs))
	if frac < 2*tr.SpikeFrac {
		t.Errorf("spike window holds %.0f%% of arrivals, want well above its %.0f%% time share", 100*frac, 100*tr.SpikeFrac)
	}

	// Multi-tenant: every tenant of the mix shows up with roughly its
	// weight share.
	spec, _ = ByName("multitenant")
	spec = spec.WithDefaults()
	reqs, err = spec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range reqs {
		counts[r.Tenant]++
	}
	var totalW float64
	for _, e := range spec.Mix {
		totalW += e.Weight
	}
	for _, e := range spec.Mix {
		got := float64(counts[e.Tenant]) / float64(len(reqs))
		want := e.Weight / totalW
		if got < want/2 || got > want*2 {
			t.Errorf("tenant %s share %.2f, want around %.2f", e.Tenant, got, want)
		}
	}
}

func TestMeanRate(t *testing.T) {
	cases := []struct {
		tr   Traffic
		want float64
	}{
		{Traffic{Kind: KindPoisson, Rate: 5}, 5},
		{Traffic{Kind: KindDiurnal, Rate: 4, Amplitude: 0.8}, 4},
		{Traffic{Kind: KindFlashCrowd, Rate: 3, SpikeFrac: 0.1, SpikeFactor: 6}, 4.5},
		{Traffic{Kind: KindMMPP, States: []workload.MMPPState{{Rate: 10, MeanDwell: 1}, {Rate: 2, MeanDwell: 3}}}, 4},
		{Traffic{Kind: KindClosedLoop, Users: 48, Think: 8}, 6},
	}
	for _, c := range cases {
		if got := c.tr.MeanRate(); got < c.want-1e-9 || got > c.want+1e-9 {
			t.Errorf("MeanRate(%s) = %g, want %g", c.tr.Kind, got, c.want)
		}
	}
}

func TestRunEngineRows(t *testing.T) {
	spec, _ := ByName("multitenant")
	tab, err := RunEngine(spec, "splitwise", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("multitenant rows = %d, want 4 (all + 3 tenants):\n%s", len(tab.Rows), tab)
	}
	if tab.Rows[0][2] != "all" {
		t.Errorf("first row tenant = %q, want all", tab.Rows[0][2])
	}
	for i, tenant := range []string{"batch", "chat", "code"} {
		if tab.Rows[i+1][2] != tenant {
			t.Errorf("row %d tenant = %q, want %q (sorted)", i+1, tab.Rows[i+1][2], tenant)
		}
	}

	spec, _ = ByName("steady")
	tab, err = RunEngine(spec, "splitwise", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("single-tenant scenario rows = %d, want 1:\n%s", len(tab.Rows), tab)
	}

	if _, err := RunEngine(spec, "warp", Options{Quick: true}); err == nil {
		t.Error("unknown engine should error")
	}
}

func TestRunUsesSpecEngineOrder(t *testing.T) {
	spec, _ := ByName("steady")
	spec.Engines = []string{"splitwise", "hexgen"}
	tab, err := Run(spec, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || tab.Rows[0][1] != "splitwise" || tab.Rows[1][1] != "hexgen" {
		t.Fatalf("rows do not follow spec engine order:\n%s", tab)
	}
}

// TestByNameRegisterNoDeadlock pins the fix for a recursive-RLock
// deadlock: ByName's unknown-name path used to call Names() while holding
// regMu.RLock, which queued behind any writer waiting in Register.
func TestByNameRegisterNoDeadlock(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					ByName("no-such-scenario")
					// Valid spec, duplicate name: passes validation and
					// errors only under the write lock, so it contends.
					Register(Spec{Name: "steady", Traffic: Traffic{Kind: KindPoisson, Rate: 1}})
				}
			}()
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("registry deadlocked: ByName vs Register")
	}
}
