package scenario

import (
	"testing"

	"hetis/internal/engine"
	"hetis/internal/model"
)

// runResult drives a scenario's engine through the same configuration path
// RunEngine uses but returns the raw engine.Result, so invariant tests can
// read the conservation ledger directly.
func runResult(t *testing.T, s Spec, engineName string) *engine.Result {
	t.Helper()
	s = Prepare(s, false)
	reqs, err := s.Trace()
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.ByName(s.Model)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := ClusterByName(s.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig(m, cluster)
	cfg.Chaos = s.chaosConfig()
	e, err := BuildEngine(engineName, cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(reqs, MeasurementHorizon(s.Duration))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChaosConservation checks the request-conservation ledger on every
// engine of every chaos scenario (and a healthy baseline): each offered
// request is admitted exactly once into exactly one of completed, dropped,
// or still-queued, no matter how many failures, scale operations, or
// preemptions moved it around mid-flight.
func TestChaosConservation(t *testing.T) {
	for _, name := range []string{"steady", "failover", "autoscale", "preempt"} {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		spec = spec.ForGolden()
		for _, eng := range spec.WithDefaults().Engines {
			eng := eng
			t.Run(name+"/"+eng, func(t *testing.T) {
				t.Parallel()
				s := Prepare(spec, false)
				reqs, err := s.Trace()
				if err != nil {
					t.Fatal(err)
				}
				res := runResult(t, spec, eng)
				offered := len(reqs)
				if got := res.Completed + res.Dropped + res.Queued; got != offered {
					t.Errorf("ledger leak: completed %d + dropped %d + queued %d = %d, offered %d",
						res.Completed, res.Dropped, res.Queued, got, offered)
				}
				// Each finished request produced exactly one record, and
				// every record belongs to an offered request.
				ids := map[int64]bool{}
				for _, r := range reqs {
					ids[r.ID] = true
				}
				seen := map[int64]bool{}
				dropped := 0
				for _, r := range res.Recorder.Records() {
					if !ids[r.ID] {
						t.Errorf("record for unknown request %d", r.ID)
					}
					if seen[r.ID] {
						t.Errorf("request %d recorded twice", r.ID)
					}
					seen[r.ID] = true
					if r.Dropped {
						dropped++
					}
				}
				if got := res.Recorder.Completed(); got != res.Completed {
					t.Errorf("recorder completed %d, result %d", got, res.Completed)
				}
				if dropped != res.Dropped {
					t.Errorf("recorder dropped %d, result %d", dropped, res.Dropped)
				}
			})
		}
	}
}

// TestChaosNoOpIdentical pins the healthy-path guarantee: chaos fields
// that cannot change behaviour (one replica, an empty failure plan, a
// single-priority uncapped tier) must normalize away entirely, down to
// byte-identical CSV output against a spec with no chaos fields at all.
func TestChaosNoOpIdentical(t *testing.T) {
	base, err := ByName("multitenant")
	if err != nil {
		t.Fatal(err)
	}

	inert := base
	inert.Replicas = 1
	inert.FailurePlan = []FailureEvent{}
	inert.Tiers = []TierSpec{
		{Name: "everyone", Priority: 3}, // catch-all, single priority, no cap
	}
	if inert.Chaotic() {
		t.Fatal("inert chaos spec reports Chaotic() == true")
	}
	if base.Chaotic() {
		t.Fatal("chaos-free spec reports Chaotic() == true")
	}

	want, err := Run(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(inert, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.CSV() != want.CSV() {
		t.Errorf("inert chaos spec drifted from its healthy twin:\n%s",
			diffLines([]byte(want.CSV()), []byte(got.CSV())))
	}
}

// TestChaosScenarioEffects pins that each chaos scenario actually
// exercises its mechanism — a failover run measures recoveries, an
// autoscale run scales, a preempt run preempts and drops — so the golden
// tables are pinning behaviour, not zeros.
func TestChaosScenarioEffects(t *testing.T) {
	t.Run("failover", func(t *testing.T) {
		spec, err := ByName("failover")
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range spec.WithDefaults().Engines {
			res := runResult(t, spec.ForGolden(), eng)
			if len(res.RecoveryTimes) != len(spec.FailurePlan) {
				t.Errorf("%s: %d recovery samples, want %d", eng, len(res.RecoveryTimes), len(spec.FailurePlan))
			}
		}
	})
	t.Run("autoscale", func(t *testing.T) {
		spec, err := ByName("autoscale")
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range spec.WithDefaults().Engines {
			res := runResult(t, spec.ForGolden(), eng)
			if res.ScaleUps == 0 {
				t.Errorf("%s: autoscale scenario never scaled up", eng)
			}
		}
	})
	t.Run("preempt", func(t *testing.T) {
		spec, err := ByName("preempt")
		if err != nil {
			t.Fatal(err)
		}
		preempted := 0
		for _, eng := range spec.WithDefaults().Engines {
			res := runResult(t, spec.ForGolden(), eng)
			preempted += res.Preempted
			if res.Dropped == 0 {
				t.Errorf("%s: admission-capped tier never dropped", eng)
			}
			total := 0
			for _, n := range res.PreemptedByTenant {
				total += n
			}
			if total != res.Preempted {
				t.Errorf("%s: per-tenant preemptions sum to %d, result says %d", eng, total, res.Preempted)
			}
		}
		if preempted == 0 {
			t.Error("no engine preempted in the preempt scenario")
		}
	})
}
