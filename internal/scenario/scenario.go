// Package scenario turns the simulator into a scenario catalog: a
// declarative Spec names a traffic shape (steady, bursty, diurnal,
// flash-crowd, closed-loop), a multi-tenant workload mix, a latency SLO,
// and the engines to run it on. Scenarios are registered by name, runnable
// standalone, through the sweep pool, or as a hetisbench flag, and every
// registered scenario is pinned by a golden-trace regression file under
// testdata/ so a scheduling change anywhere in the stack surfaces as a
// reviewable diff instead of a silent drift.
package scenario

import (
	"fmt"
	"math/rand"

	"hetis/internal/engine"
	"hetis/internal/fleet"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/workload"
)

// Traffic kinds.
const (
	KindPoisson    = "poisson"
	KindMMPP       = "mmpp"
	KindDiurnal    = "diurnal"
	KindFlashCrowd = "flashcrowd"
	KindClosedLoop = "closedloop"
)

// Traffic declaratively describes an arrival process. Time-shape
// parameters (Cycles, SpikeStart, SpikeFrac) are fractions of the trace
// duration, so shrinking a scenario (Quick mode) shrinks the whole shape
// instead of pushing the interesting part past the end of the trace.
type Traffic struct {
	// Kind selects the process: poisson, mmpp, diurnal, flashcrowd,
	// closedloop.
	Kind string

	// Rate is the base arrival rate in req/s (poisson, diurnal,
	// flashcrowd).
	Rate float64

	// States is the cyclic MMPP state list (mmpp).
	States []workload.MMPPState

	// Amplitude is the diurnal rate swing as a fraction of Rate in [0, 1];
	// Cycles is how many full sinusoid periods fit in the trace
	// (default 1).
	Amplitude float64
	Cycles    float64

	// SpikeStart and SpikeFrac place the flash-crowd spike as fractions of
	// the trace duration; SpikeFactor multiplies Rate during the spike.
	SpikeStart  float64
	SpikeFrac   float64
	SpikeFactor float64

	// Users and Think describe the closed-loop population: Users sessions
	// each pausing Exp(Think) seconds between requests.
	Users int
	Think float64
}

// Validate reports traffic description errors.
func (t Traffic) Validate() error {
	switch t.Kind {
	case KindPoisson, KindDiurnal:
		if t.Rate <= 0 {
			return fmt.Errorf("scenario: %s traffic needs Rate > 0", t.Kind)
		}
	case KindFlashCrowd:
		if t.Rate <= 0 {
			return fmt.Errorf("scenario: %s traffic needs Rate > 0", t.Kind)
		}
		// A flash crowd without a real spike would silently degenerate to
		// steady Poisson under the scenario's label.
		if t.SpikeFrac <= 0 || t.SpikeFactor <= 0 {
			return fmt.Errorf("scenario: flashcrowd traffic needs SpikeFrac > 0 and SpikeFactor > 0")
		}
		if t.SpikeStart < 0 || t.SpikeStart+t.SpikeFrac > 1 {
			return fmt.Errorf("scenario: flashcrowd spike window [%g, %g] outside the trace (fractions of duration)",
				t.SpikeStart, t.SpikeStart+t.SpikeFrac)
		}
	case KindMMPP:
		if len(t.States) == 0 {
			return fmt.Errorf("scenario: mmpp traffic needs States")
		}
		for i, st := range t.States {
			if st.Rate < 0 || st.MeanDwell <= 0 {
				return fmt.Errorf("scenario: mmpp state %d invalid (rate %g, dwell %g)", i, st.Rate, st.MeanDwell)
			}
		}
	case KindClosedLoop:
		if t.Users <= 0 || t.Think <= 0 {
			return fmt.Errorf("scenario: closedloop traffic needs Users > 0 and Think > 0")
		}
	default:
		return fmt.Errorf("scenario: unknown traffic kind %q", t.Kind)
	}
	return nil
}

// Times generates the arrival times over [0, duration).
func (t Traffic) Times(duration float64, rng *rand.Rand) []float64 {
	switch t.Kind {
	case KindPoisson:
		return workload.PoissonTimes(t.Rate, duration, rng)
	case KindMMPP:
		return workload.MMPPTimes(t.States, duration, rng)
	case KindDiurnal:
		cycles := t.Cycles
		if cycles <= 0 {
			cycles = 1
		}
		return workload.DiurnalTimes(t.Rate, t.Amplitude, duration/cycles, duration, rng)
	case KindFlashCrowd:
		return workload.FlashCrowdTimes(t.Rate, t.SpikeStart*duration, t.SpikeFrac*duration, t.SpikeFactor, duration, rng)
	case KindClosedLoop:
		return workload.ClosedLoopTimes(t.Users, t.Think, duration, rng)
	}
	return nil
}

// MeanRate estimates the long-run offered rate in req/s, for display.
func (t Traffic) MeanRate() float64 {
	switch t.Kind {
	case KindPoisson, KindDiurnal:
		return t.Rate
	case KindFlashCrowd:
		return t.Rate * (1 + t.SpikeFrac*(t.SpikeFactor-1))
	case KindMMPP:
		var rate, dwell float64
		for _, st := range t.States {
			rate += st.Rate * st.MeanDwell
			dwell += st.MeanDwell
		}
		if dwell == 0 {
			return 0
		}
		return rate / dwell
	case KindClosedLoop:
		if t.Think == 0 {
			return 0
		}
		return float64(t.Users) / t.Think
	}
	return 0
}

// DefaultSLO is the latency objective scenarios inherit when they do not
// set one: first token within 1.5 s, then 0.1 s per token (a conversational
// read-speed target tight enough that overloaded engines visibly miss it).
var DefaultSLO = metrics.SLOTarget{TTFT: 1.5, TPOT: 0.1}

// FailureEvent takes one replica out of service for a window of the trace.
// Start and End are fractions of Duration (like the flash-crowd spike), so
// Quick scaling shrinks the outage with the trace; End past 1 reaches into
// the drain tail. HaulKV decides whether the victims' KV cache migrates to
// survivors over the interconnect or is lost (full re-prefill).
type FailureEvent struct {
	Replica    int
	Start, End float64
	HaulKV     bool
}

// AutoscaleSpec is the scenario face of the SLO-driven replica controller.
// Interval and Lag are fractions of Duration; thresholds are attainment
// fractions in [0, 1]. The controller measures against the spec's SLO.
type AutoscaleSpec struct {
	MinReplicas, MaxReplicas int
	Interval, Lag            float64
	UpBelow, DownAbove       float64
}

// TierSpec is one priority class of a tiered scenario: the tenants it
// covers (empty = catch-all), its preemption priority, and an optional
// admission cap on in-flight requests.
type TierSpec struct {
	Name        string
	Tenants     []string
	Priority    int
	MaxInflight int
}

// FleetSpec shards a scenario across independent cluster replicas behind
// a front-door router (see internal/fleet). Each shard serves its routed
// slice of the trace on its own engine, calendar queue, trace arena and
// sink, concurrently with its siblings; the results merge in shard-index
// order, so the scenario's output is byte-identical at any shard-worker
// count.
type FleetSpec struct {
	// Shards is the replica count (>= 1; 2+ for anything interesting).
	Shards int
	// Policy is the routing policy: fleet.PolicyWeighted (the default),
	// fleet.PolicyLeastLoaded, or fleet.PolicyAffinity.
	Policy string
	// Weights optionally skews routing shares, one positive weight per
	// shard (nil = uniform).
	Weights []float64
}

// policy resolves the default routing policy.
func (f *FleetSpec) policy() string {
	if f.Policy == "" {
		return fleet.PolicyWeighted
	}
	return f.Policy
}

// Spec is a declarative serving scenario.
type Spec struct {
	Name        string
	Description string

	// Traffic is the arrival process.
	Traffic Traffic
	// Mix is the weighted multi-tenant workload mix; empty means
	// single-tenant ShareGPT.
	Mix []workload.MixEntry
	// SLO is the latency objective goodput is measured against; zero takes
	// DefaultSLO.
	SLO metrics.SLOTarget

	// Model and Cluster pick the deployment; defaults: Llama-13B on the
	// paper cluster.
	Model   string
	Cluster string
	// Engines lists the systems to run, in row order; default hetis,
	// hexgen, splitwise.
	Engines []string

	// Duration is the trace length in simulated seconds (default 40);
	// Seed drives all sampling (default 1).
	Duration float64
	Seed     int64

	// Replicas is the initial fleet width: the engine's deployment is
	// replicated that many times (0 or 1 = the legacy single deployment).
	Replicas int
	// FailurePlan schedules replica failures over the trace.
	FailurePlan []FailureEvent
	// Autoscale enables the SLO-driven replica controller.
	Autoscale *AutoscaleSpec
	// Tiers splits the tenants into priority classes with admission control
	// and preemption.
	Tiers []TierSpec

	// Fleet shards the run across independent cluster replicas behind a
	// deterministic front-door router — the intra-run parallelism layer.
	// Mutually exclusive with the chaos fields above: chaos rewires one
	// cluster's replica set from inside the engine, Fleet replicates whole
	// clusters from outside it.
	Fleet *FleetSpec

	// Heavy marks large-scale scenarios (megascale and friends) that
	// catalog-wide expansions — the bench suite, "-scenario all", the
	// scenarios experiment — skip unless the scenario is named explicitly.
	// Heavy scenarios are built for the streaming sink; running them with
	// the exact recorder works but holds O(requests) memory.
	Heavy bool
	// GoldenDuration is the trace length the golden-trace harness pins the
	// scenario at. Zero means Duration. Heavy scenarios must set it: a
	// million-request exact replay per `go test` is exactly what the
	// golden referee must not cost, while a shortened trace still pins
	// every scheduling path byte-for-byte.
	GoldenDuration float64
}

// WithDefaults fills unset fields.
func (s Spec) WithDefaults() Spec {
	if s.SLO.IsZero() {
		s.SLO = DefaultSLO
	}
	if s.Model == "" {
		s.Model = model.Llama13B.Name
	}
	if s.Cluster == "" {
		s.Cluster = "paper"
	}
	if len(s.Engines) == 0 {
		s.Engines = []string{"hetis", "hexgen", "splitwise"}
	}
	if s.Duration <= 0 {
		s.Duration = 40
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Validate reports spec errors. It validates the defaulted spec, so a
// partially specified spec is fine.
func (s Spec) Validate() error {
	s = s.WithDefaults()
	if s.Name == "" {
		return fmt.Errorf("scenario: spec has no name")
	}
	if err := s.Traffic.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if err := workload.ValidateMix(s.Mix); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if _, err := model.ByName(s.Model); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if _, err := ClusterByName(s.Cluster); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	for _, e := range s.Engines {
		if !engine.Known(e) {
			return fmt.Errorf("scenario %s: unknown engine %q", s.Name, e)
		}
	}
	if s.GoldenDuration < 0 {
		return fmt.Errorf("scenario %s: negative GoldenDuration %g", s.Name, s.GoldenDuration)
	}
	if s.Heavy && s.GoldenDuration <= 0 {
		return fmt.Errorf("scenario %s: heavy scenarios must set GoldenDuration (the golden harness cannot replay them at full scale)", s.Name)
	}
	for i, fe := range s.FailurePlan {
		if fe.Start < 0 || fe.End <= fe.Start {
			return fmt.Errorf("scenario %s: failure %d: bad window fractions [%g, %g)", s.Name, i, fe.Start, fe.End)
		}
	}
	// The engine layer validates the compiled form (autoscale bounds and
	// thresholds, tier names, replica counts).
	if err := s.chaosConfig().Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if f := s.Fleet; f != nil {
		if s.chaosConfig() != nil {
			return fmt.Errorf("scenario %s: Fleet cannot combine with chaos fields (Replicas/FailurePlan/Autoscale/Tiers) — chaos rewires one cluster, Fleet replicates clusters", s.Name)
		}
		// The router constructor owns shard/policy/weight validation.
		if _, err := fleet.NewRouter(f.policy(), f.Shards, f.Weights); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	return nil
}

// Sharded reports whether the spec runs as a fleet of shards. Sharded
// scenarios are excluded from SuiteNames like chaotic ones: catalog-wide
// expansions keep their single-cluster baselines comparable, and fleet
// scaling is measured by its own bench section.
func (s Spec) Sharded() bool { return s.Fleet != nil }

// Chaotic reports whether the spec's chaos fields can change behaviour:
// chaotic scenarios get extra table columns and are excluded from
// SuiteNames (catalog-wide expansions keep their healthy baselines).
func (s Spec) Chaotic() bool {
	return s.WithDefaults().chaosConfig().Active()
}

// chaosConfig compiles the spec's chaos fields for the engine layer,
// scaling fractional times by the (possibly Quick-shrunk) Duration. Call
// on a defaulted spec; returns nil when no chaos field is set.
func (s Spec) chaosConfig() *engine.ChaosConfig {
	if s.Replicas == 0 && len(s.FailurePlan) == 0 && s.Autoscale == nil && len(s.Tiers) == 0 {
		return nil
	}
	c := &engine.ChaosConfig{Replicas: s.Replicas}
	for _, fe := range s.FailurePlan {
		c.Failures = append(c.Failures, engine.FailureWindow{
			Replica: fe.Replica,
			Start:   fe.Start * s.Duration,
			End:     fe.End * s.Duration,
			HaulKV:  fe.HaulKV,
		})
	}
	if a := s.Autoscale; a != nil {
		c.Autoscale = &engine.AutoscalePolicy{
			MinReplicas: a.MinReplicas,
			MaxReplicas: a.MaxReplicas,
			Interval:    a.Interval * s.Duration,
			Lag:         a.Lag * s.Duration,
			UpBelow:     a.UpBelow,
			DownAbove:   a.DownAbove,
			SLO:         s.SLO,
		}
	}
	for _, t := range s.Tiers {
		c.Tiers = append(c.Tiers, engine.Tier{
			Name:        t.Name,
			Tenants:     t.Tenants,
			Priority:    t.Priority,
			MaxInflight: t.MaxInflight,
		})
	}
	return c
}

// tierOf maps a tenant to its tier name under the spec's tier list (first
// tier listing the tenant, else the catch-all), or "" when untiered.
func (s Spec) tierOf(tenant string) string {
	catchAll := ""
	for _, t := range s.Tiers {
		if len(t.Tenants) == 0 {
			catchAll = t.Name
			continue
		}
		for _, tn := range t.Tenants {
			if tn == tenant {
				return t.Name
			}
		}
	}
	return catchAll
}

// ForGolden returns the spec the golden-trace harness runs: the scenario
// at its GoldenDuration (when set), everything else untouched.
func (s Spec) ForGolden() Spec {
	if s.GoldenDuration > 0 {
		s.Duration = s.GoldenDuration
	}
	return s
}

// Trace generates the scenario's request trace: arrival times from the
// traffic process, tenants and lengths from the mix. Deterministic in
// (spec, Seed).
func (s Spec) Trace() ([]workload.Request, error) {
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	times := s.Traffic.Times(s.Duration, rand.New(rand.NewSource(s.Seed)))
	// The mix draws from an independent stream so reshaping traffic does
	// not reshuffle tenant assignments and lengths.
	return workload.Assemble(times, s.Mix, s.Seed+1), nil
}
