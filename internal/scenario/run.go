package scenario

import (
	"fmt"
	"sort"

	"hetis/internal/engine"
	"hetis/internal/hardware"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/workload"
)

// Header is the column layout of scenario tables. Every engine contributes
// an aggregate row (Tenant "all"); multi-tenant scenarios add one row per
// tenant. Goodput and Attain are measured against the spec's SLO.
var Header = []string{
	"Scenario", "Engine", "Tenant",
	"Offered", "Completed", "Goodput(req/s)", "Attain(%)",
	"TTFT-p95(s)", "TPOT-p95(s)", "NormLat-mean(s/tok)",
}

// EngineBuilder constructs a named engine for a config and the trace it
// will serve. The sweep pool injects a cache-backed builder here so grid
// points share plans and profile fits; nil falls back to BuildEngine.
type EngineBuilder func(name string, cfg engine.Config, reqs []workload.Request) (engine.Engine, error)

// Options tunes a scenario run.
type Options struct {
	// Quick quarters the trace duration, like experiments.Options.Quick.
	Quick bool
	// Build overrides engine construction (nil = BuildEngine).
	Build EngineBuilder

	// Stream measures through constant-memory streaming sinks (and
	// disables the event trace log) instead of the exact recorder:
	// goodput/attainment/counts stay exact, latency percentiles carry the
	// sketch's relative-error bound, and memory stops growing with trace
	// length. The default (false) is the byte-stable golden path.
	Stream bool
	// Window, with Stream, additionally collects a windowed time series
	// (completions, goodput, p95 latency per Window seconds) that
	// RunEngineSink returns as a second table.
	Window float64
}

// BuildEngine directly constructs the named engine, planning Hetis for the
// trace.
func BuildEngine(name string, cfg engine.Config, reqs []workload.Request) (engine.Engine, error) {
	return engine.NewByName(name, cfg, reqs)
}

// ClusterByName resolves a spec's cluster name ("" and "paper" are the
// paper's evaluation cluster). Exported so harnesses that run engines
// directly (internal/bench) resolve deployments exactly like RunEngine.
func ClusterByName(name string) (*hardware.Cluster, error) {
	switch name {
	case "", "paper":
		return hardware.PaperCluster(), nil
	}
	return nil, fmt.Errorf("scenario: unknown cluster %q", name)
}

// MeasurementHorizon is the window a scenario run measures rates over: a
// generous multiple of the trace duration, so queues fully drain while
// every engine shares the same denominator (Result.Horizon advances to
// it on early drain). Harnesses that time engines directly
// (internal/bench, sweep grids) must use the same window so their runs
// replay exactly what the golden harness pinned.
func MeasurementHorizon(duration float64) float64 { return duration * 30 }

// Prepare resolves a spec into its effective form for a run: defaults
// filled and Quick scaling applied. Pooled runners use it so the trace
// they cache matches the trace RunEngine generates.
func Prepare(spec Spec, quick bool) Spec {
	spec = spec.WithDefaults()
	if quick {
		spec.Duration /= 4
	}
	return spec
}

// RunEngine serves the scenario's trace on one engine and returns its rows:
// the aggregate first, then per-tenant rows for multi-tenant mixes.
func RunEngine(spec Spec, engineName string, opts Options) (*metrics.Table, error) {
	rows, _, err := RunEngineSink(spec, engineName, opts)
	return rows, err
}

// streamPipeline is the sink stack a streaming run measures through: an
// aggregate streaming sink — wrapped in a TenantMux only when the trace
// is actually multi-tenant, so single-tenant runs pay one sketch set per
// record, not two — plus an optional windowed series for the dynamic
// plots.
type streamPipeline struct {
	agg     metrics.Sink // the aggregate view: the mux when present, else the bare sink
	mux     *metrics.TenantMux
	windows *metrics.WindowedSeries
	sink    metrics.Sink
}

func newStreamPipeline(slo metrics.SLOTarget, window float64, tenants bool) *streamPipeline {
	p := &streamPipeline{agg: metrics.NewStreamingSink(slo)}
	if tenants {
		p.mux = metrics.NewTenantMux(p.agg, func(string) metrics.Sink {
			return metrics.NewStreamingSink(slo)
		})
		p.agg = p.mux
	}
	p.sink = p.agg
	if window > 0 {
		p.windows = metrics.NewWindowedSeries(window, slo)
		p.sink = metrics.NewTee(p.agg, p.windows)
	}
	return p
}

// RunEngineSink runs like RunEngine and additionally returns the windowed
// time-series table when the run streamed with Options.Window > 0 (nil
// otherwise).
func RunEngineSink(spec Spec, engineName string, opts Options) (rows, windows *metrics.Table, err error) {
	spec = Prepare(spec, opts.Quick)
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	if !engine.Known(engineName) {
		return nil, nil, fmt.Errorf("scenario %s: unknown engine %q", spec.Name, engineName)
	}
	reqs, err := spec.Trace()
	if err != nil {
		return nil, nil, err
	}
	if len(reqs) == 0 {
		return nil, nil, fmt.Errorf("scenario %s: empty trace", spec.Name)
	}
	m, err := model.ByName(spec.Model)
	if err != nil {
		return nil, nil, err
	}
	cluster, err := ClusterByName(spec.Cluster)
	if err != nil {
		return nil, nil, err
	}
	build := opts.Build
	if build == nil {
		build = BuildEngine
	}
	cfg := engine.DefaultConfig(m, cluster)
	var stream *streamPipeline
	if opts.Stream {
		stream = newStreamPipeline(spec.SLO, opts.Window, multiTenant(reqs))
		cfg.Sink = stream.sink
		cfg.NoTrace = true
	}
	eng, err := build(engineName, cfg, reqs)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario %s/%s: %w", spec.Name, engineName, err)
	}
	res, err := eng.Run(reqs, MeasurementHorizon(spec.Duration))
	if err != nil {
		return nil, nil, fmt.Errorf("scenario %s/%s: %w", spec.Name, engineName, err)
	}

	tab := &metrics.Table{Header: Header}
	if stream != nil {
		streamRows(tab, spec, engineName, reqs, res.Horizon, stream)
		if stream.windows != nil {
			windows = stream.windows.Table()
		}
		return tab, windows, nil
	}
	exactRows(tab, spec, engineName, reqs, res)
	return tab, nil, nil
}

// exactRows fills the table from the run's exact recorder — the original,
// golden-pinned path, byte-identical to what it always produced.
func exactRows(tab *metrics.Table, spec Spec, engineName string, reqs []workload.Request, res *engine.Result) {
	rec := res.Recorder
	ttft, tpot, norm := rec.Summaries()
	tab.AddRow(spec.Name, engineName, "all",
		len(reqs), rec.Count(),
		rec.Goodput(spec.SLO, res.Horizon),
		100*rec.Attainment(spec.SLO),
		ttft.P95,
		tpot.P95,
		norm.Mean)

	if multiTenant(reqs) {
		offered := offeredByTenant(reqs)
		byTenant := map[string]metrics.TenantStats{}
		for _, ts := range rec.PerTenant(spec.SLO, res.Horizon) {
			byTenant[ts.Tenant] = ts
		}
		// Walk the trace's tenant set (sorted), not the recorder's, so
		// tenants whose every request starved still show a zero row.
		for _, tenant := range tenantNames(offered) {
			ts := byTenant[tenant]
			tab.AddRow(spec.Name, engineName, tenant,
				offered[tenant], ts.Count,
				ts.Goodput, 100*ts.Attainment,
				ts.TTFT.P95, ts.TPOT.P95,
				ts.NormLat.Mean)
		}
	}
}

// streamRows fills the table from streaming-sink snapshots: the same
// columns, with counts/goodput/attainment exact and percentiles carrying
// the sketch bound.
func streamRows(tab *metrics.Table, spec Spec, engineName string, reqs []workload.Request, horizon float64, p *streamPipeline) {
	snap := p.agg.Snapshot()
	tab.AddRow(spec.Name, engineName, "all",
		len(reqs), snap.Count,
		snap.Goodput(horizon),
		100*snap.Attainment(),
		snap.TTFT.P95,
		snap.TPOT.P95,
		snap.NormLat.Mean)

	if p.mux != nil {
		offered := offeredByTenant(reqs)
		for _, tenant := range tenantNames(offered) {
			var ts metrics.Snapshot
			if sub := p.mux.Tenant(tenant); sub != nil {
				ts = sub.Snapshot()
			}
			tab.AddRow(spec.Name, engineName, tenant,
				offered[tenant], ts.Count,
				ts.Goodput(horizon), 100*ts.Attainment(),
				ts.TTFT.P95, ts.TPOT.P95,
				ts.NormLat.Mean)
		}
	}
}

func offeredByTenant(reqs []workload.Request) map[string]int {
	offered := map[string]int{}
	for _, r := range reqs {
		offered[r.Tenant]++
	}
	return offered
}

// Run serves the scenario on every engine it names, rows in engine order.
func Run(spec Spec, opts Options) (*metrics.Table, error) {
	spec = Prepare(spec, opts.Quick)
	opts.Quick = false // already applied
	tab := &metrics.Table{Header: Header}
	for _, eng := range spec.Engines {
		sub, err := RunEngine(spec, eng, opts)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, sub.Rows...)
	}
	return tab, nil
}

func multiTenant(reqs []workload.Request) bool {
	for _, r := range reqs {
		if r.Tenant != "" {
			return true
		}
	}
	return false
}

func tenantNames(offered map[string]int) []string {
	names := make([]string, 0, len(offered))
	for name := range offered {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
