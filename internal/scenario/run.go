package scenario

import (
	"fmt"
	"sort"

	"hetis/internal/engine"
	"hetis/internal/hardware"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/workload"
)

// Header is the column layout of scenario tables. Every engine contributes
// an aggregate row (Tenant "all"); multi-tenant scenarios add one row per
// tenant, and tiered chaos scenarios one per tier (Tenant "tier:NAME").
// Goodput and Attain are measured against the spec's SLO.
var Header = []string{
	"Scenario", "Engine", "Tenant",
	"Offered", "Completed", "Goodput(req/s)", "Attain(%)",
	"TTFT-p95(s)", "TPOT-p95(s)", "NormLat-mean(s/tok)",
}

// ChaosColumns are the extra columns chaotic scenarios append: admission
// and unservable drops, priority preemptions, and the mean time from a
// failure to the next completion (the recovery measure). Dropped requests
// stay in the attainment denominator and never attain.
var ChaosColumns = []string{"Dropped", "Preempted", "Recovery-mean(s)"}

// HeaderFor returns the table header for a scenario: the base Header, plus
// ChaosColumns when the scenario is chaotic.
func HeaderFor(chaotic bool) []string {
	if !chaotic {
		return Header
	}
	return append(append([]string(nil), Header...), ChaosColumns...)
}

// EngineBuilder constructs a named engine for a config and the trace it
// will serve. The sweep pool injects a cache-backed builder here so grid
// points share plans and profile fits; nil falls back to BuildEngine.
type EngineBuilder func(name string, cfg engine.Config, reqs []workload.Request) (engine.Engine, error)

// Options tunes a scenario run.
type Options struct {
	// Quick quarters the trace duration, like experiments.Options.Quick.
	Quick bool
	// Build overrides engine construction (nil = BuildEngine).
	Build EngineBuilder

	// Stream measures through constant-memory streaming sinks (and
	// disables the event trace log) instead of the exact recorder:
	// goodput/attainment/counts stay exact, latency percentiles carry the
	// sketch's relative-error bound, and memory stops growing with trace
	// length. The default (false) is the byte-stable golden path.
	Stream bool
	// Window, with Stream, additionally collects a windowed time series
	// (completions, goodput, p95 latency per Window seconds) that
	// RunEngineSink returns as a second table.
	Window float64

	// ShardWorkers bounds how many of a sharded (Spec.Fleet) run's shards
	// execute concurrently; 0 means one worker per CPU (clamped to the
	// shard count), 1 runs the shards sequentially. Output is byte-
	// identical at every value — the knob trades wall clock for cores,
	// never results. Ignored for unsharded specs.
	ShardWorkers int
}

// BuildEngine directly constructs the named engine, planning Hetis for the
// trace.
func BuildEngine(name string, cfg engine.Config, reqs []workload.Request) (engine.Engine, error) {
	return engine.NewByName(name, cfg, reqs)
}

// ClusterByName resolves a spec's cluster name ("" and "paper" are the
// paper's evaluation cluster). Exported so harnesses that run engines
// directly (internal/bench) resolve deployments exactly like RunEngine.
func ClusterByName(name string) (*hardware.Cluster, error) {
	switch name {
	case "", "paper":
		return hardware.PaperCluster(), nil
	}
	return nil, fmt.Errorf("scenario: unknown cluster %q", name)
}

// MeasurementHorizon is the window a scenario run measures rates over: a
// generous multiple of the trace duration, so queues fully drain while
// every engine shares the same denominator (Result.Horizon advances to
// it on early drain). Harnesses that time engines directly
// (internal/bench, sweep grids) must use the same window so their runs
// replay exactly what the golden harness pinned.
func MeasurementHorizon(duration float64) float64 { return duration * 30 }

// Prepare resolves a spec into its effective form for a run: defaults
// filled and Quick scaling applied. Pooled runners use it so the trace
// they cache matches the trace RunEngine generates.
func Prepare(spec Spec, quick bool) Spec {
	spec = spec.WithDefaults()
	if quick {
		spec.Duration /= 4
	}
	return spec
}

// RunEngine serves the scenario's trace on one engine and returns its rows:
// the aggregate first, then per-tenant rows for multi-tenant mixes.
func RunEngine(spec Spec, engineName string, opts Options) (*metrics.Table, error) {
	rows, _, err := RunEngineSink(spec, engineName, opts)
	return rows, err
}

// streamPipeline is the sink stack a streaming run measures through: an
// aggregate streaming sink — wrapped in a TenantMux only when the trace
// is actually multi-tenant, so single-tenant runs pay one sketch set per
// record, not two — plus an optional windowed series for the dynamic
// plots.
type streamPipeline struct {
	agg     metrics.Sink // the aggregate view: the mux when present, else the bare sink
	mux     *metrics.TenantMux
	tiers   *metrics.KeyedMux
	windows *metrics.WindowedSeries
	sink    metrics.Sink
}

// retainWindows selects mergeable windowed series for the per-shard
// pipelines of a fleet run: per-window p95 cannot be recovered from
// finalized buckets, so shards keep their bucket sketches alive for the
// shard-order merge. Single-cluster runs keep the cheaper streaming form.
func newStreamPipeline(slo metrics.SLOTarget, window float64, tenants bool, tierKey func(metrics.RequestRecord) string, retainWindows bool) *streamPipeline {
	p := &streamPipeline{agg: metrics.NewStreamingSink(slo)}
	if tenants {
		p.mux = metrics.NewTenantMux(p.agg, func(string) metrics.Sink {
			return metrics.NewStreamingSink(slo)
		})
		p.agg = p.mux
	}
	extras := make([]metrics.Sink, 0, 2)
	if window > 0 {
		if retainWindows {
			p.windows = metrics.NewWindowedSeriesRetained(window, slo)
		} else {
			p.windows = metrics.NewWindowedSeries(window, slo)
		}
		extras = append(extras, p.windows)
	}
	if tierKey != nil {
		p.tiers = metrics.NewKeyedMux(tierKey, func(string) metrics.Sink {
			return metrics.NewStreamingSink(slo)
		})
		extras = append(extras, p.tiers)
	}
	p.sink = p.agg
	if len(extras) > 0 {
		p.sink = metrics.NewTee(p.agg, extras...)
	}
	return p
}

// RunEngineSink runs like RunEngine and additionally returns the windowed
// time-series table when the run streamed with Options.Window > 0 (nil
// otherwise).
func RunEngineSink(spec Spec, engineName string, opts Options) (rows, windows *metrics.Table, err error) {
	spec = Prepare(spec, opts.Quick)
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	if !engine.Known(engineName) {
		return nil, nil, fmt.Errorf("scenario %s: unknown engine %q", spec.Name, engineName)
	}
	if spec.Sharded() {
		fr, err := prepareFleet(spec, engineName, opts)
		if err != nil {
			return nil, nil, err
		}
		if _, err := fr.Run(opts.ShardWorkers); err != nil {
			return nil, nil, err
		}
		return fr.Tables()
	}
	reqs, err := spec.Trace()
	if err != nil {
		return nil, nil, err
	}
	if len(reqs) == 0 {
		return nil, nil, fmt.Errorf("scenario %s: empty trace", spec.Name)
	}
	m, err := model.ByName(spec.Model)
	if err != nil {
		return nil, nil, err
	}
	cluster, err := ClusterByName(spec.Cluster)
	if err != nil {
		return nil, nil, err
	}
	build := opts.Build
	if build == nil {
		build = BuildEngine
	}
	cfg := engine.DefaultConfig(m, cluster)
	cfg.Chaos = spec.chaosConfig()
	chaotic := cfg.Chaos.Active()
	var stream *streamPipeline
	if opts.Stream {
		var tierKey func(metrics.RequestRecord) string
		if chaotic && len(spec.Tiers) > 0 {
			tierKey = func(r metrics.RequestRecord) string { return spec.tierOf(r.Tenant) }
		}
		stream = newStreamPipeline(spec.SLO, opts.Window, multiTenant(reqs), tierKey, false)
		cfg.Sink = stream.sink
		cfg.NoTrace = true
	}
	eng, err := build(engineName, cfg, reqs)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario %s/%s: %w", spec.Name, engineName, err)
	}
	res, err := eng.Run(reqs, MeasurementHorizon(spec.Duration))
	if err != nil {
		return nil, nil, fmt.Errorf("scenario %s/%s: %w", spec.Name, engineName, err)
	}

	tab := &metrics.Table{Header: HeaderFor(chaotic)}
	if stream != nil {
		streamRows(tab, spec, engineName, reqs, res, stream, chaotic)
		if stream.windows != nil {
			windows = stream.windows.Table()
		}
		return tab, windows, nil
	}
	exactRows(tab, spec, engineName, reqs, res, chaotic)
	return tab, nil, nil
}

// meanOf is the arithmetic mean (0 for an empty slice).
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// tierPreempted sums a tier's preemption count from the per-tenant ledger.
func tierPreempted(spec Spec, res *engine.Result, tier string) int {
	n := 0
	for _, tenant := range tenantNames(res.PreemptedByTenant) {
		if spec.tierOf(tenant) == tier {
			n += res.PreemptedByTenant[tenant]
		}
	}
	return n
}

// exactRows fills the table from the run's exact recorder — the original,
// golden-pinned path, byte-identical to what it always produced. Chaotic
// runs append the ChaosColumns and per-tier rows.
func exactRows(tab *metrics.Table, spec Spec, engineName string, reqs []workload.Request, res *engine.Result, chaotic bool) {
	rec := res.Recorder
	ttft, tpot, norm := rec.Summaries()
	row := []any{spec.Name, engineName, "all",
		len(reqs), rec.Completed(),
		rec.Goodput(spec.SLO, res.Horizon),
		100 * rec.Attainment(spec.SLO),
		ttft.P95,
		tpot.P95,
		norm.Mean}
	if chaotic {
		row = append(row, rec.DroppedCount(), res.Preempted, meanOf(res.RecoveryTimes))
	}
	tab.AddRow(row...)

	if multiTenant(reqs) {
		offered := offeredByTenant(reqs)
		byTenant := map[string]metrics.TenantStats{}
		for _, ts := range rec.PerTenant(spec.SLO, res.Horizon) {
			byTenant[ts.Tenant] = ts
		}
		// Walk the trace's tenant set (sorted), not the recorder's, so
		// tenants whose every request starved still show a zero row.
		for _, tenant := range tenantNames(offered) {
			ts := byTenant[tenant]
			row := []any{spec.Name, engineName, tenant,
				offered[tenant], ts.Count,
				ts.Goodput, 100 * ts.Attainment,
				ts.TTFT.P95, ts.TPOT.P95,
				ts.NormLat.Mean}
			if chaotic {
				row = append(row, ts.Dropped, res.PreemptedByTenant[tenant], 0.0)
			}
			tab.AddRow(row...)
		}
	}

	if chaotic && len(spec.Tiers) > 0 {
		offered := offeredByTenant(reqs)
		for _, t := range spec.Tiers {
			sub := metrics.NewRecorder()
			for _, r := range rec.Records() {
				if spec.tierOf(r.Tenant) == t.Name {
					sub.Add(r)
				}
			}
			offeredN := 0
			for _, tenant := range tenantNames(offered) {
				if spec.tierOf(tenant) == t.Name {
					offeredN += offered[tenant]
				}
			}
			ttft, tpot, norm := sub.Summaries()
			tab.AddRow(spec.Name, engineName, "tier:"+t.Name,
				offeredN, sub.Completed(),
				sub.Goodput(spec.SLO, res.Horizon),
				100*sub.Attainment(spec.SLO),
				ttft.P95, tpot.P95, norm.Mean,
				sub.DroppedCount(), tierPreempted(spec, res, t.Name), 0.0)
		}
	}
}

// streamRows fills the table from streaming-sink snapshots: the same
// columns, with counts/goodput/attainment exact and percentiles carrying
// the sketch bound.
func streamRows(tab *metrics.Table, spec Spec, engineName string, reqs []workload.Request, res *engine.Result, p *streamPipeline, chaotic bool) {
	horizon := res.Horizon
	snap := p.agg.Snapshot()
	row := []any{spec.Name, engineName, "all",
		len(reqs), snap.Count,
		snap.Goodput(horizon),
		100 * snap.Attainment(),
		snap.TTFT.P95,
		snap.TPOT.P95,
		snap.NormLat.Mean}
	if chaotic {
		row = append(row, snap.Dropped, res.Preempted, meanOf(res.RecoveryTimes))
	}
	tab.AddRow(row...)

	if p.mux != nil {
		offered := offeredByTenant(reqs)
		for _, tenant := range tenantNames(offered) {
			var ts metrics.Snapshot
			if sub := p.mux.Tenant(tenant); sub != nil {
				ts = sub.Snapshot()
			}
			row := []any{spec.Name, engineName, tenant,
				offered[tenant], ts.Count,
				ts.Goodput(horizon), 100 * ts.Attainment(),
				ts.TTFT.P95, ts.TPOT.P95,
				ts.NormLat.Mean}
			if chaotic {
				row = append(row, ts.Dropped, res.PreemptedByTenant[tenant], 0.0)
			}
			tab.AddRow(row...)
		}
	}

	if p.tiers != nil {
		offered := offeredByTenant(reqs)
		for _, t := range spec.Tiers {
			var ts metrics.Snapshot
			if sub := p.tiers.Key(t.Name); sub != nil {
				ts = sub.Snapshot()
			}
			offeredN := 0
			for _, tenant := range tenantNames(offered) {
				if spec.tierOf(tenant) == t.Name {
					offeredN += offered[tenant]
				}
			}
			tab.AddRow(spec.Name, engineName, "tier:"+t.Name,
				offeredN, ts.Count,
				ts.Goodput(horizon), 100*ts.Attainment(),
				ts.TTFT.P95, ts.TPOT.P95, ts.NormLat.Mean,
				ts.Dropped, tierPreempted(spec, res, t.Name), 0.0)
		}
	}
}

func offeredByTenant(reqs []workload.Request) map[string]int {
	offered := map[string]int{}
	for _, r := range reqs {
		offered[r.Tenant]++
	}
	return offered
}

// Run serves the scenario on every engine it names, rows in engine order.
func Run(spec Spec, opts Options) (*metrics.Table, error) {
	spec = Prepare(spec, opts.Quick)
	opts.Quick = false // already applied
	tab := &metrics.Table{Header: HeaderFor(spec.Chaotic())}
	for _, eng := range spec.Engines {
		sub, err := RunEngine(spec, eng, opts)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, sub.Rows...)
	}
	return tab, nil
}

func multiTenant(reqs []workload.Request) bool {
	for _, r := range reqs {
		if r.Tenant != "" {
			return true
		}
	}
	return false
}

func tenantNames(offered map[string]int) []string {
	names := make([]string, 0, len(offered))
	for name := range offered {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
