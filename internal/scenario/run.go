package scenario

import (
	"fmt"
	"sort"

	"hetis/internal/engine"
	"hetis/internal/hardware"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/workload"
)

// Header is the column layout of scenario tables. Every engine contributes
// an aggregate row (Tenant "all"); multi-tenant scenarios add one row per
// tenant. Goodput and Attain are measured against the spec's SLO.
var Header = []string{
	"Scenario", "Engine", "Tenant",
	"Offered", "Completed", "Goodput(req/s)", "Attain(%)",
	"TTFT-p95(s)", "TPOT-p95(s)", "NormLat-mean(s/tok)",
}

// EngineBuilder constructs a named engine for a config and the trace it
// will serve. The sweep pool injects a cache-backed builder here so grid
// points share plans and profile fits; nil falls back to BuildEngine.
type EngineBuilder func(name string, cfg engine.Config, reqs []workload.Request) (engine.Engine, error)

// Options tunes a scenario run.
type Options struct {
	// Quick quarters the trace duration, like experiments.Options.Quick.
	Quick bool
	// Build overrides engine construction (nil = BuildEngine).
	Build EngineBuilder
}

// BuildEngine directly constructs the named engine, planning Hetis for the
// trace.
func BuildEngine(name string, cfg engine.Config, reqs []workload.Request) (engine.Engine, error) {
	return engine.NewByName(name, cfg, reqs)
}

// ClusterByName resolves a spec's cluster name ("" and "paper" are the
// paper's evaluation cluster). Exported so harnesses that run engines
// directly (internal/bench) resolve deployments exactly like RunEngine.
func ClusterByName(name string) (*hardware.Cluster, error) {
	switch name {
	case "", "paper":
		return hardware.PaperCluster(), nil
	}
	return nil, fmt.Errorf("scenario: unknown cluster %q", name)
}

// MeasurementHorizon is the window a scenario run measures rates over: a
// generous multiple of the trace duration, so queues fully drain while
// every engine shares the same denominator (Result.Horizon advances to
// it on early drain). Harnesses that time engines directly
// (internal/bench, sweep grids) must use the same window so their runs
// replay exactly what the golden harness pinned.
func MeasurementHorizon(duration float64) float64 { return duration * 30 }

// Prepare resolves a spec into its effective form for a run: defaults
// filled and Quick scaling applied. Pooled runners use it so the trace
// they cache matches the trace RunEngine generates.
func Prepare(spec Spec, quick bool) Spec {
	spec = spec.WithDefaults()
	if quick {
		spec.Duration /= 4
	}
	return spec
}

// RunEngine serves the scenario's trace on one engine and returns its rows:
// the aggregate first, then per-tenant rows for multi-tenant mixes.
func RunEngine(spec Spec, engineName string, opts Options) (*metrics.Table, error) {
	spec = Prepare(spec, opts.Quick)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !engine.Known(engineName) {
		return nil, fmt.Errorf("scenario %s: unknown engine %q", spec.Name, engineName)
	}
	reqs, err := spec.Trace()
	if err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("scenario %s: empty trace", spec.Name)
	}
	m, err := model.ByName(spec.Model)
	if err != nil {
		return nil, err
	}
	cluster, err := ClusterByName(spec.Cluster)
	if err != nil {
		return nil, err
	}
	build := opts.Build
	if build == nil {
		build = BuildEngine
	}
	cfg := engine.DefaultConfig(m, cluster)
	eng, err := build(engineName, cfg, reqs)
	if err != nil {
		return nil, fmt.Errorf("scenario %s/%s: %w", spec.Name, engineName, err)
	}
	res, err := eng.Run(reqs, MeasurementHorizon(spec.Duration))
	if err != nil {
		return nil, fmt.Errorf("scenario %s/%s: %w", spec.Name, engineName, err)
	}

	tab := &metrics.Table{Header: Header}
	rec := res.Recorder
	tab.AddRow(spec.Name, engineName, "all",
		len(reqs), rec.Count(),
		rec.Goodput(spec.SLO, res.Horizon),
		100*rec.Attainment(spec.SLO),
		rec.TTFTSummary().P95,
		rec.TPOTSummary().P95,
		rec.NormLatencySummary().Mean)

	if multiTenant(reqs) {
		offered := map[string]int{}
		for _, r := range reqs {
			offered[r.Tenant]++
		}
		byTenant := map[string]metrics.TenantStats{}
		for _, ts := range rec.PerTenant(spec.SLO, res.Horizon) {
			byTenant[ts.Tenant] = ts
		}
		// Walk the trace's tenant set (sorted), not the recorder's, so
		// tenants whose every request starved still show a zero row.
		for _, tenant := range tenantNames(offered) {
			ts := byTenant[tenant]
			tab.AddRow(spec.Name, engineName, tenant,
				offered[tenant], ts.Count,
				ts.Goodput, 100*ts.Attainment,
				ts.TTFT.P95, ts.TPOT.P95,
				ts.NormLat.Mean)
		}
	}
	return tab, nil
}

// Run serves the scenario on every engine it names, rows in engine order.
func Run(spec Spec, opts Options) (*metrics.Table, error) {
	spec = Prepare(spec, opts.Quick)
	opts.Quick = false // already applied
	tab := &metrics.Table{Header: Header}
	for _, eng := range spec.Engines {
		sub, err := RunEngine(spec, eng, opts)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, sub.Rows...)
	}
	return tab, nil
}

func multiTenant(reqs []workload.Request) bool {
	for _, r := range reqs {
		if r.Tenant != "" {
			return true
		}
	}
	return false
}

func tenantNames(offered map[string]int) []string {
	names := make([]string, 0, len(offered))
	for name := range offered {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
