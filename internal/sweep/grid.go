package sweep

import (
	"fmt"
	"slices"
	"strconv"
	"strings"

	"hetis/internal/engine"
	"hetis/internal/hardware"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/scenario"
)

// Engines lists the engine names a grid point may name, in comparison
// order (the engine package's buildable set).
var Engines = engine.Names

func errUnknownEngine(name string) error {
	return fmt.Errorf("sweep: unknown engine %q (known: %s)", name, strings.Join(Engines, ", "))
}

// GridSpec describes a sweep over the cartesian product
// {model × dataset × rate × engine} or, with Scenarios set,
// {model × scenario × engine}. Zero-valued fields take defaults:
// Llama-13B, ShareGPT, 5 req/s, the three paper systems, 40 s traces,
// seed 1. Scenarios define their own traffic and workload mix, so the
// scenario dimension excludes Datasets and Rates.
type GridSpec struct {
	Engines  []string  // engine names (see Engines)
	Models   []string  // model preset names (model.ByName)
	Datasets []string  // dataset preset names or codes (workload.ByName)
	Rates    []float64 // arrival rates, req/s
	// Scenarios names registered scenarios (scenario.Names); when set,
	// Datasets and Rates must be empty and each point's trace, mix, and
	// SLO come from the scenario spec (Duration and Seed still come from
	// the grid).
	Scenarios []string

	// Duration is the trace length in seconds; Quick quarters it, like
	// experiments.Options.Quick.
	Duration float64
	Quick    bool
	// Seed drives the trace sampling; points sharing a dataset and rate
	// share the generated trace.
	Seed int64

	// Stream measures every point through a constant-memory streaming sink
	// instead of the exact recorder: counts, goodput, and attainment stay
	// exact, the latency columns carry the sketch's relative-error bound,
	// and pooled workers stop holding a full record slice per in-flight
	// point. The default (false) is byte-identical to the historical exact
	// output.
	Stream bool
}

// withDefaults fills unset fields and folds Quick into Duration. It is
// idempotent — Quick is cleared once applied, so the spec can pass through
// RunGrid and RunPoint without quartering twice.
func (s GridSpec) withDefaults() GridSpec {
	if len(s.Engines) == 0 {
		s.Engines = []string{"hetis", "hexgen", "splitwise"}
	}
	if len(s.Models) == 0 {
		s.Models = []string{model.Llama13B.Name}
	}
	if len(s.Scenarios) == 0 {
		if len(s.Datasets) == 0 {
			s.Datasets = []string{"SG"}
		}
		if len(s.Rates) == 0 {
			s.Rates = []float64{5}
		}
	}
	if s.Duration <= 0 {
		s.Duration = 40
	}
	if s.Quick {
		s.Duration /= 4
		s.Quick = false
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// validate rejects dimension combinations Points would silently ignore.
func (s GridSpec) validate() error {
	if len(s.Scenarios) > 0 && (len(s.Datasets) > 0 || len(s.Rates) > 0) {
		return fmt.Errorf("sweep: the scenario dimension excludes dataset and rate (scenarios carry their own traffic and mix)")
	}
	return nil
}

// Point is one grid coordinate.
type Point struct {
	Model   string
	Dataset string
	Rate    float64
	Engine  string
	// Scenario is set instead of Dataset/Rate on scenario grids.
	Scenario string
}

// Key renders the coordinate as "model/dataset/rate/engine" (or
// "model/scenario/engine" on scenario grids); it is the job key and
// therefore the sort key of the sweep's rows.
func (p Point) Key() string {
	if p.Scenario != "" {
		return fmt.Sprintf("%s/%s/%s", p.Model, p.Scenario, p.Engine)
	}
	return fmt.Sprintf("%s/%s/%s/%s", p.Model, p.Dataset, strconv.FormatFloat(p.Rate, 'g', -1, 64), p.Engine)
}

// Points expands the spec into the cartesian product, engines innermost so
// consecutive points replay the same trace.
func (s GridSpec) Points() []Point {
	s = s.withDefaults()
	var pts []Point
	for _, m := range s.Models {
		if len(s.Scenarios) > 0 {
			for _, sc := range s.Scenarios {
				for _, eng := range s.Engines {
					pts = append(pts, Point{Model: m, Scenario: sc, Engine: eng})
				}
			}
			continue
		}
		for _, ds := range s.Datasets {
			for _, rate := range s.Rates {
				for _, eng := range s.Engines {
					pts = append(pts, Point{Model: m, Dataset: ds, Rate: rate, Engine: eng})
				}
			}
		}
	}
	return pts
}

// GridHeader is the column layout of RunGrid and RunPoint tables. Goodput
// and Attain measure SLO attainment: against the scenario's SLO on
// scenario grids, against scenario.DefaultSLO otherwise.
var GridHeader = []string{
	"Model", "Scenario", "Dataset", "Rate(req/s)", "Engine",
	"Requests", "Completed", "Throughput(req/s)", "Goodput(req/s)", "Attain(%)",
	"NormLat-mean(s/tok)", "TTFT-p95(s)", "TPOT-p95(s)",
}

// RunPoint simulates one grid coordinate and returns its one-row table.
// The trace, the Hetis plan, and the profile fit come from the cache, so
// points sharing a coordinate prefix share that work.
func RunPoint(s GridSpec, p Point, c *Cache) (*metrics.Table, error) {
	s = s.withDefaults()
	m, err := model.ByName(p.Model)
	if err != nil {
		return nil, err
	}
	slo := scenario.DefaultSLO
	k := TraceKey{Dataset: p.Dataset, Rate: p.Rate, Duration: s.Duration, Seed: s.Seed}
	if p.Scenario != "" {
		spec, err := scenario.ByName(p.Scenario)
		if err != nil {
			return nil, err
		}
		slo = spec.WithDefaults().SLO
		k = TraceKey{Scenario: p.Scenario, Duration: s.Duration, Seed: s.Seed}
	}
	reqs, err := c.Trace(k)
	if err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("sweep: empty trace for %s", p.Key())
	}
	cfg := engine.DefaultConfig(m, hardware.PaperCluster())
	// Grid rows never read the event trace; skipping it keeps pooled
	// workers from holding O(events) logs per in-flight point.
	cfg.NoTrace = true
	// Rows are computed from the sink's snapshot either way. The exact
	// recorder's snapshot runs the same accumulation the recorder methods
	// always ran, so the default output stays byte-identical; the streaming
	// sink swaps O(records) memory for the sketch bound.
	if s.Stream {
		cfg.Sink = metrics.NewStreamingSink(slo)
	} else {
		cfg.Sink = metrics.NewExactRecorder(slo)
	}
	eng, err := c.BuildEngine(p.Engine, cfg, k)
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(reqs, scenario.MeasurementHorizon(s.Duration))
	if err != nil {
		return nil, err
	}
	scenarioCol, datasetCol, rateCol := "-", p.Dataset, any(p.Rate)
	if p.Scenario != "" {
		scenarioCol, datasetCol, rateCol = p.Scenario, "-", "-"
	}
	snap := res.Sink.Snapshot()
	tab := &metrics.Table{Header: GridHeader}
	tab.AddRow(p.Model, scenarioCol, datasetCol, rateCol, p.Engine,
		len(reqs), res.Completed, res.Throughput(),
		snap.Goodput(res.Horizon),
		100*snap.Attainment(),
		snap.NormLat.Mean,
		snap.TTFT.P95,
		snap.TPOT.P95)
	return tab, nil
}

// RunGrid sweeps the full grid on the pool and merges the per-point rows
// into one table in grid order — the dimension values exactly as the spec
// lists them, engines innermost — independent of completion order, so the
// output is byte-identical for any Options.Jobs value.
func RunGrid(s GridSpec, opts Options) (*metrics.Table, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	s = s.withDefaults()
	pts := s.Points()
	jobs := make([]Job, len(pts))
	for i, p := range pts {
		jobs[i] = Job{Key: p.Key(), Run: func(c *Cache) (*metrics.Table, error) {
			return RunPoint(s, p, c)
		}}
	}
	results, err := RunMany(jobs, opts)
	if err != nil {
		return nil, err
	}
	// RunMany sorts by key, which orders rates lexicographically (10 < 2);
	// reassemble in point order so rows follow the spec's own dimension
	// order. Duplicate points work out because RunMany's sort is stable:
	// equal keys keep submission order, and so does the point walk.
	byKey := map[string][]*metrics.Table{}
	for _, r := range results {
		byKey[r.Key] = append(byKey[r.Key], r.Table)
	}
	tab := &metrics.Table{Header: GridHeader}
	for _, p := range pts {
		k := p.Key()
		tab.Rows = append(tab.Rows, byKey[k][0].Rows...)
		byKey[k] = byKey[k][1:]
	}
	return tab, nil
}

// ParseDims folds "key=v1,v2,..." grid dimension specs into a GridSpec.
// Recognized keys: engine(s), dataset(s), rate(s), model(s), scenario(s),
// duration, seed. Later specs for the same key replace earlier ones.
func ParseDims(spec GridSpec, dims []string) (GridSpec, error) {
	for _, dim := range dims {
		key, vals, ok := strings.Cut(dim, "=")
		if !ok || vals == "" {
			return spec, fmt.Errorf("sweep: grid dimension %q is not key=v1,v2,...", dim)
		}
		parts := strings.Split(vals, ",")
		switch strings.TrimSuffix(strings.ToLower(key), "s") {
		case "engine":
			for _, e := range parts {
				if !slices.Contains(Engines, e) {
					return spec, errUnknownEngine(e)
				}
			}
			spec.Engines = parts
		case "dataset":
			spec.Datasets = parts
		case "scenario":
			for _, sc := range parts {
				if _, err := scenario.ByName(sc); err != nil {
					return spec, err
				}
			}
			spec.Scenarios = parts
		case "model":
			spec.Models = parts
		case "rate":
			rates := make([]float64, len(parts))
			for i, p := range parts {
				v, err := strconv.ParseFloat(p, 64)
				if err != nil {
					return spec, fmt.Errorf("sweep: bad rate %q: %w", p, err)
				}
				rates[i] = v
			}
			spec.Rates = rates
		case "duration":
			v, err := strconv.ParseFloat(vals, 64)
			if err != nil {
				return spec, fmt.Errorf("sweep: bad duration %q: %w", vals, err)
			}
			spec.Duration = v
		case "seed":
			v, err := strconv.ParseInt(vals, 10, 64)
			if err != nil {
				return spec, fmt.Errorf("sweep: bad seed %q: %w", vals, err)
			}
			spec.Seed = v
		default:
			return spec, fmt.Errorf("sweep: unknown grid dimension %q", key)
		}
	}
	return spec, nil
}
