// Package sweep fans independent simulation runs out over a bounded worker
// pool and collects their tables deterministically.
//
// The unit of work is a [Job]: a key plus a function producing a
// [metrics.Table]. [RunMany] executes a batch of jobs on up to Jobs worker
// goroutines (0 = one per CPU) and returns the results ordered by key,
// independent of completion order, so a sweep's output is byte-identical
// whether it ran on one worker or eight.
//
// Jobs share a [Cache] that memoizes the expensive work many runs have in
// common — trace generation, parallelizer planning, and profile fitting —
// behind a sync.RWMutex, keyed by (model, cluster, dataset, seed). A grid
// sweep over {engine × dataset × rate × model} points ([GridSpec],
// [RunGrid]) generates each trace once and fits each model/cluster profile
// once, no matter how many engines replay them.
//
// Everything a job touches must be pool-safe: the experiment runners are
// pure functions of their options, the engines treat traces, plans and
// profiles as read-only, and all randomness is seeded explicitly.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sort"

	"hetis/internal/metrics"
	"hetis/internal/sweep/pool"
)

// Options tunes a pool run.
type Options struct {
	// Jobs bounds the number of concurrently executing jobs; 0 (or
	// negative) means one worker per CPU.
	Jobs int
	// Cache is the shared memo for traces, plans and profiles. Nil gives
	// the run a private cache.
	Cache *Cache
	// ShardWorkers bounds the intra-run shard concurrency of sharded
	// (fleet) scenarios in the batch; 0 means one worker per CPU. Output
	// is byte-identical at every value — this knob trades wall-clock only.
	// Unsharded runs ignore it.
	ShardWorkers int
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.NumCPU()
}

// Job is one unit of pool work.
type Job struct {
	// Key identifies the job and orders its result among the others.
	Key string
	// Run produces the job's table. It may use the cache for shared work
	// and must be safe to call concurrently with other jobs.
	Run func(c *Cache) (*metrics.Table, error)
}

// Result pairs a job key with its outcome.
type Result struct {
	Key   string
	Table *metrics.Table
	Err   error
}

// Each runs fn(i) for every index in [0, n) on up to workers goroutines —
// the repo's one indexed worker pool, shared with the scenario fleet layer
// through the pool subpackage (see pool.Each for the full contract).
func Each(n, workers int, fn func(i int)) { pool.Each(n, workers, fn) }

// RunMany executes the jobs on a bounded worker pool and returns one result
// per job, sorted by key (ties keep submission order). The slice always has
// len(jobs) entries; a failed job carries its error in Result.Err. The
// returned error joins all job errors in the same deterministic order, so
// callers that only care about overall success can check it alone. Every
// job runs to completion — a failure does not cancel its siblings, which
// keeps the set of executed work (and therefore the cache contents)
// independent of scheduling.
func RunMany(jobs []Job, opts Options) ([]Result, error) {
	cache := opts.Cache
	if cache == nil {
		cache = NewCache()
	}
	results := make([]Result, len(jobs))
	Each(len(jobs), opts.workers(), func(i int) {
		tab, err := jobs[i].Run(cache)
		if err != nil {
			err = fmt.Errorf("sweep: job %s: %w", jobs[i].Key, err)
		}
		results[i] = Result{Key: jobs[i].Key, Table: tab, Err: err}
	})

	sort.SliceStable(results, func(i, j int) bool { return results[i].Key < results[j].Key })
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	return results, errors.Join(errs...)
}
