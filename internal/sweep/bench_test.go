package sweep

import (
	"fmt"
	"testing"
	"time"

	"hetis/internal/metrics"
)

// benchSpec is the acceptance-sized sweep: 3 engines × 3 datasets × 3
// rates = 27 points.
func benchSpec() GridSpec {
	return GridSpec{
		Engines:  []string{"hetis", "splitwise", "vllm"},
		Datasets: []string{"SG", "HE", "LB"},
		Rates:    []float64{2, 5, 10},
		Duration: 10,
	}
}

// BenchmarkGridSharedCache runs the 27-point grid the way RunGrid does:
// one memo cache for the whole sweep, so each trace is generated once and
// each model/cluster profile is fitted once.
func BenchmarkGridSharedCache(b *testing.B) {
	spec := benchSpec()
	for i := 0; i < b.N; i++ {
		if _, err := RunGrid(spec, Options{Jobs: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridColdCache runs the same 27 points with a fresh cache per
// point — what a naive loop over independent runs pays. The gap against
// BenchmarkGridSharedCache is the memoization win, independent of core
// count.
func BenchmarkGridColdCache(b *testing.B) {
	spec := benchSpec()
	for i := 0; i < b.N; i++ {
		for _, p := range spec.Points() {
			if _, err := RunPoint(spec, p, NewCache()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPoolOverlap measures the pool's ability to overlap jobs that
// wait rather than compute (16 × 5 ms sleeps). With Jobs=8 the batch
// finishes in ~2 sleep lengths even on one core; the Jobs=1 variant pays
// all 16 serially. CPU-bound simulation jobs instead scale with physical
// cores — see doc/PARALLELISM.md.
func BenchmarkPoolOverlap(b *testing.B) {
	mkJobs := func() []Job {
		jobs := make([]Job, 16)
		for i := range jobs {
			jobs[i] = Job{Key: fmt.Sprintf("j%02d", i), Run: func(*Cache) (*metrics.Table, error) {
				time.Sleep(5 * time.Millisecond)
				return &metrics.Table{}, nil
			}}
		}
		return jobs
	}
	for _, jobs := range []int{1, 8} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunMany(mkJobs(), Options{Jobs: jobs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
