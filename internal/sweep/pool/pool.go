// Package pool is the sweep layer's indexed worker pool, split out so the
// layers below the sweep (the scenario fleet path shards a single run
// across it) can share the exact machinery sweeps fan whole runs across —
// without importing the sweep package itself, which sits above them.
package pool

import (
	"runtime"
	"sync"
)

// Each runs fn(i) for every index in [0, n) on up to workers goroutines
// (workers <= 0 means one per CPU; the count is clamped to n so short
// batches never spin idle goroutines). Every index runs to completion
// regardless of sibling failures, and fn's per-index results must be
// written into caller-owned slots so the output layout is independent of
// scheduling — the contract sweep.RunMany keeps for job tables and the
// fleet layer keeps for shard results.
func Each(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
