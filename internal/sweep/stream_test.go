package sweep

import (
	"math"
	"strconv"
	"testing"
)

// TestGridStreamMatchesExact pins the snapshot-based grid row contract:
// streaming keeps every count-derived column identical to the exact sink
// (goodput and attainment are counted per record, not sketched) and the
// latency columns within the sketch regime.
func TestGridStreamMatchesExact(t *testing.T) {
	base := GridSpec{Engines: []string{"hexgen"}, Quick: true}
	exact, err := RunGrid(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	streamSpec := base
	streamSpec.Stream = true
	stream, err := RunGrid(streamSpec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Rows) != 1 || len(stream.Rows) != 1 {
		t.Fatalf("want 1 row each, got %d and %d", len(exact.Rows), len(stream.Rows))
	}
	er, sr := exact.Rows[0], stream.Rows[0]
	// Model..Engine identities plus Requests/Completed/Throughput/
	// Goodput/Attain must match byte for byte.
	for col := 0; col < 10; col++ {
		if er[col] != sr[col] {
			t.Errorf("col %d (%s): streaming %q, exact %q", col, GridHeader[col], sr[col], er[col])
		}
	}
	for col := 10; col < 13; col++ {
		e, _ := strconv.ParseFloat(er[col], 64)
		s, _ := strconv.ParseFloat(sr[col], 64)
		if e > 0 && math.Abs(s-e)/e > 0.10 {
			t.Errorf("col %d (%s): streaming %g vs exact %g", col, GridHeader[col], s, e)
		}
	}
}

// TestRunScenariosSinkWindows checks the pooled runner returns one window
// table per (scenario, engine) pair in deterministic pair order for any
// job count.
func TestRunScenariosSinkWindows(t *testing.T) {
	tab1, wins1, err := RunScenariosSink([]string{"steady"}, true, 0, true, 5, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	tab4, wins4, err := RunScenariosSink([]string{"steady"}, true, 0, true, 5, Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tab1.CSV() != tab4.CSV() {
		t.Error("streaming scenario table depends on the job count")
	}
	if len(wins1) != 3 || len(wins4) != 3 {
		t.Fatalf("want one windows table per engine (3), got %d and %d", len(wins1), len(wins4))
	}
	for i := range wins1 {
		if wins1[i].Scenario != "steady" || wins1[i].Engine != wins4[i].Engine {
			t.Errorf("windows %d out of order: %+v vs %+v", i, wins1[i], wins4[i])
		}
		if wins1[i].Table.CSV() != wins4[i].Table.CSV() {
			t.Errorf("windows table %d depends on the job count", i)
		}
		if len(wins1[i].Table.Rows) == 0 {
			t.Errorf("windows table %d is empty", i)
		}
	}

	// Without a window the runner returns rows only.
	_, wins, err := RunScenariosSink([]string{"steady"}, true, 0, true, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if wins != nil {
		t.Error("window=0 must not collect window tables")
	}
}

// TestRunScenariosAllExcludesHeavy keeps "all" a suite-sized expansion.
func TestRunScenariosAllExcludesHeavy(t *testing.T) {
	tab, err := RunScenarios([]string{"all"}, true, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[0] == "megascale" {
			t.Fatal("RunScenarios(all) ran the heavy megascale scenario")
		}
	}
}
