package sweep

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hetis/internal/engine"
	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/parallelizer"
	"hetis/internal/perf"
	"hetis/internal/profile"
	"hetis/internal/scenario"
	"hetis/internal/workload"
)

// TraceKey identifies one generated trace: either a (dataset, rate)
// Poisson trace or a registered scenario's trace, plus the duration and
// the seed of the arrival/length sampling.
type TraceKey struct {
	Dataset  string // preset name or code accepted by workload.ByName
	Rate     float64
	Duration float64
	Seed     int64
	// Scenario, when set, generates the trace from the named scenario spec
	// (Dataset and Rate are ignored; Duration and Seed override the
	// spec's).
	Scenario string
}

// planKey identifies a parallelizer plan: the model and cluster the search
// ran for, plus the trace whose aggregate statistics shaped the workload.
type planKey struct {
	Model   string
	Cluster string
	Trace   TraceKey
}

// profileKey identifies a fitted profile: the cost models depend on the
// model architecture, the cluster topology, and the primary device whose
// links carry the scattered heads.
type profileKey struct {
	Model   string
	Cluster string
	Primary hardware.DeviceID
}

// entry memoizes one computation. The once gate means concurrent requests
// for the same key compute it exactly once while the cache lock is free.
type entry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Cache memoizes the expensive shared work of a sweep: trace generation,
// parallelizer planning, and profile fitting. All methods are safe for
// concurrent use; lookups take a read lock, and the computation itself runs
// outside the lock behind a per-key sync.Once, so identical concurrent
// requests coalesce into one computation.
//
// Cached values are shared across jobs and must be treated as read-only.
// The engines already do: they copy traces before clamping them and never
// write through a plan or profile.
type Cache struct {
	mu       sync.RWMutex
	traces   map[TraceKey]*entry[[]workload.Request]
	plans    map[planKey]*entry[*parallelizer.Plan]
	profiles map[profileKey]*entry[*profile.Profile]

	// Counters are atomic so the hot hit path stays under the read lock.
	hits, misses atomic.Int64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		traces:   map[TraceKey]*entry[[]workload.Request]{},
		plans:    map[planKey]*entry[*parallelizer.Plan]{},
		profiles: map[profileKey]*entry[*profile.Profile]{},
	}
}

// lookup returns the entry for key, creating it on first request, and
// counts the hit or miss.
func lookup[K comparable, V any](c *Cache, m map[K]*entry[V], key K) *entry[V] {
	c.mu.RLock()
	e, ok := m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return e
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok = m[key]; ok {
		c.hits.Add(1)
		return e
	}
	e = new(entry[V])
	m[key] = e
	c.misses.Add(1)
	return e
}

// Stats reports how many lookups were served from the cache vs computed.
func (c *Cache) Stats() (hits, misses int) {
	return int(c.hits.Load()), int(c.misses.Load())
}

// Trace returns the memoized trace for the key — a Poisson trace of the
// keyed dataset and rate, or the keyed scenario's trace. The returned
// slice is shared; callers must not mutate it.
func (c *Cache) Trace(k TraceKey) ([]workload.Request, error) {
	e := lookup(c, c.traces, k)
	e.once.Do(func() {
		if k.Scenario != "" {
			spec, err := scenario.ByName(k.Scenario)
			if err != nil {
				e.err = err
				return
			}
			spec = spec.WithDefaults()
			spec.Duration = k.Duration
			spec.Seed = k.Seed
			e.val, e.err = spec.Trace()
			return
		}
		dist, err := workload.ByName(k.Dataset)
		if err != nil {
			e.err = err
			return
		}
		e.val = workload.Poisson(dist, k.Rate, k.Duration, k.Seed)
	})
	return e.val, e.err
}

// Plan returns the memoized parallelizer plan for the config's model and
// cluster, shaped by the key's trace statistics.
func (c *Cache) Plan(cfg engine.Config, k TraceKey) (*parallelizer.Plan, error) {
	pk := planKey{Model: cfg.Model.Name, Cluster: cfg.Cluster.Fingerprint(), Trace: k}
	e := lookup(c, c.plans, pk)
	e.once.Do(func() {
		reqs, err := c.Trace(k)
		if err != nil {
			e.err = err
			return
		}
		e.val, e.err = engine.PlanForWorkload(cfg, reqs)
	})
	return e.val, e.err
}

// Profile returns the memoized Eq. 3 / Eq. 4 fit for the model on the
// cluster with the given primary device.
func (c *Cache) Profile(m model.Config, cluster *hardware.Cluster, primary hardware.DeviceID) (*profile.Profile, error) {
	pk := profileKey{Model: m.Name, Cluster: cluster.Fingerprint(), Primary: primary}
	e := lookup(c, c.profiles, pk)
	e.once.Do(func() {
		e.val, e.err = profile.Run(perf.New(m), cluster, primary, profile.DefaultOptions())
	})
	return e.val, e.err
}

// BuildEngine constructs the named engine (see engine.Names) for the
// config, routing the Hetis plan and profile fit through the cache so
// grid points sharing a model and trace share that work.
func (c *Cache) BuildEngine(name string, cfg engine.Config, k TraceKey) (engine.Engine, error) {
	if name == "hetis" {
		plan, err := c.Plan(cfg, k)
		if err != nil {
			return nil, err
		}
		if len(plan.Instances) == 0 {
			return nil, fmt.Errorf("sweep: empty plan for %s on %s", cfg.Model.Name, cfg.Cluster)
		}
		primary := plan.Instances[0].Stages[0].Devices[0]
		prof, err := c.Profile(cfg.Model, cfg.Cluster, primary)
		if err != nil {
			return nil, err
		}
		return engine.NewHetisWithProfile(cfg, plan, prof)
	}
	// The other engines need no trace-derived state.
	return engine.NewByName(name, cfg, nil)
}
