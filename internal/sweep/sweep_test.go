package sweep

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hetis/internal/engine"
	"hetis/internal/hardware"
	"hetis/internal/metrics"
	"hetis/internal/model"
)

// fakeJob returns a job that sleeps and then emits a one-row table naming
// its key, so completion order can be forced to differ from key order.
func fakeJob(key string, sleep time.Duration) Job {
	return Job{Key: key, Run: func(*Cache) (*metrics.Table, error) {
		time.Sleep(sleep)
		tab := &metrics.Table{Header: []string{"Key"}}
		tab.AddRow(key)
		return tab, nil
	}}
}

func TestRunManyOrdersByKeyNotCompletion(t *testing.T) {
	// Submit in reverse key order with the earliest key sleeping longest:
	// under Jobs>1 it completes last, but must still sort first.
	jobs := []Job{
		fakeJob("c", 1*time.Millisecond),
		fakeJob("b", 10*time.Millisecond),
		fakeJob("a", 30*time.Millisecond),
	}
	results, err := RunMany(jobs, Options{Jobs: 3})
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, r := range results {
		keys = append(keys, r.Key)
		if r.Table == nil || r.Table.Rows[0][0] != r.Key {
			t.Errorf("result %s carries wrong table %v", r.Key, r.Table)
		}
	}
	if got := strings.Join(keys, ","); got != "a,b,c" {
		t.Fatalf("results ordered %s, want a,b,c", got)
	}
}

func TestRunManyPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job{
		fakeJob("a", 0),
		{Key: "bad", Run: func(*Cache) (*metrics.Table, error) { return nil, boom }},
		fakeJob("z", 0),
	}
	results, err := RunMany(jobs, Options{Jobs: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("RunMany error = %v, want wrapped %v", err, boom)
	}
	if !strings.Contains(err.Error(), "job bad") {
		t.Errorf("error %q does not name the failing job", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3 (siblings of a failed job still run)", len(results))
	}
	if results[1].Key != "bad" || !errors.Is(results[1].Err, boom) {
		t.Errorf("failing job result = %+v", results[1])
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil || results[i].Table == nil {
			t.Errorf("sibling %s damaged by failure: %+v", results[i].Key, results[i])
		}
	}
}

func TestCacheTraceSingleflight(t *testing.T) {
	c := NewCache()
	k := TraceKey{Dataset: "SG", Rate: 4, Duration: 5, Seed: 7}

	const callers = 16
	traces := make([][]int64, callers) // first request IDs observed
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reqs, err := c.Trace(k)
			if err != nil {
				t.Error(err)
				return
			}
			for _, r := range reqs[:min(3, len(reqs))] {
				traces[i] = append(traces[i], r.ID)
			}
		}(i)
	}
	wg.Wait()

	if _, misses := c.Stats(); misses != 1 {
		t.Errorf("misses = %d, want 1 (concurrent identical requests must coalesce)", misses)
	}
	first, err := c.Trace(k)
	if err != nil {
		t.Fatal(err)
	}
	again, _ := c.Trace(k)
	if &first[0] != &again[0] {
		t.Error("repeated Trace returned a different slice; memoization broken")
	}
	if hits, _ := c.Stats(); hits < callers {
		t.Errorf("hits = %d, want >= %d", hits, callers)
	}
}

func TestCacheSharesPlanAndProfileAcrossEngines(t *testing.T) {
	c := NewCache()
	k := TraceKey{Dataset: "SG", Rate: 3, Duration: 5, Seed: 1}
	cfg := engine.DefaultConfig(model.Llama13B, hardware.PaperCluster())

	for i := 0; i < 3; i++ {
		if _, err := c.BuildEngine("hetis", cfg, k); err != nil {
			t.Fatal(err)
		}
	}
	// First build computes trace, plan and profile; the two rebuilds hit
	// the plan and profile entries (and never re-request the trace).
	hits, misses := c.Stats()
	if misses != 3 {
		t.Errorf("misses = %d, want 3 (one trace, one plan, one profile)", misses)
	}
	if hits != 4 {
		t.Errorf("hits = %d, want 4 (plan and profile, twice each)", hits)
	}
}

func TestBuildEngineUnknown(t *testing.T) {
	c := NewCache()
	cfg := engine.DefaultConfig(model.Llama13B, hardware.PaperCluster())
	if _, err := c.BuildEngine("triton", cfg, TraceKey{Dataset: "SG", Rate: 1, Duration: 1, Seed: 1}); err == nil || !strings.Contains(err.Error(), "triton") {
		t.Fatalf("err = %v, want unknown-engine naming triton", err)
	}
}

// acceptance-shaped check: the same grid must render byte-identically no
// matter how many workers raced over it.
func TestRunGridByteIdenticalAcrossJobs(t *testing.T) {
	spec := GridSpec{
		Engines:  []string{"hetis", "splitwise"},
		Datasets: []string{"SG", "HE"},
		Rates:    []float64{2, 4},
		Duration: 5,
	}
	var rendered []string
	for _, jobs := range []int{1, 8} {
		tab, err := RunGrid(spec, Options{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		rendered = append(rendered, tab.String())
	}
	if rendered[0] != rendered[1] {
		t.Errorf("grid output differs between jobs=1 and jobs=8:\n--- jobs=1\n%s--- jobs=8\n%s", rendered[0], rendered[1])
	}
	if rows := strings.Count(rendered[0], "\n") - 2; rows != 8 {
		t.Errorf("grid rendered %d rows, want 8", rows)
	}
}

func TestRunGridReportsFailingPoint(t *testing.T) {
	spec := GridSpec{Models: []string{"no-such-model"}, Duration: 1}
	_, err := RunGrid(spec, Options{Jobs: 2})
	if err == nil || !strings.Contains(err.Error(), "no-such-model") {
		t.Fatalf("err = %v, want failure naming the bad model", err)
	}
}

func TestParseDims(t *testing.T) {
	spec, err := ParseDims(GridSpec{}, []string{
		"engine=hetis,vllm", "datasets=SG,LB", "rate=2,5,10", "model=Llama-13B", "duration=12", "seed=9",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%v", GridSpec{
		Engines: []string{"hetis", "vllm"}, Models: []string{"Llama-13B"},
		Datasets: []string{"SG", "LB"}, Rates: []float64{2, 5, 10},
		Duration: 12, Seed: 9,
	})
	if got := fmt.Sprintf("%v", spec); got != want {
		t.Errorf("ParseDims = %s, want %s", got, want)
	}

	for _, bad := range []string{"engine=warp", "rate=fast", "flux=1", "rate", "engine="} {
		if _, err := ParseDims(GridSpec{}, []string{bad}); err == nil {
			t.Errorf("ParseDims(%q) succeeded, want error", bad)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestCacheScenarioTrace(t *testing.T) {
	c := NewCache()
	k := TraceKey{Scenario: "multitenant", Duration: 10, Seed: 3}
	reqs, err := c.Trace(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		t.Fatal("empty scenario trace")
	}
	tenants := map[string]bool{}
	for _, r := range reqs {
		tenants[r.Tenant] = true
	}
	if !tenants["chat"] || !tenants["code"] {
		t.Errorf("scenario trace lost its tenants: %v", tenants)
	}
	again, _ := c.Trace(k)
	if &reqs[0] != &again[0] {
		t.Error("scenario trace not memoized")
	}
	if _, err := c.Trace(TraceKey{Scenario: "no-such", Duration: 10, Seed: 1}); err == nil {
		t.Error("unknown scenario key should error")
	}
}

func TestGridScenarioDimension(t *testing.T) {
	spec := GridSpec{
		Engines:   []string{"splitwise", "hexgen"},
		Scenarios: []string{"bursty", "steady"},
		Duration:  5,
	}
	tab, err := RunGrid(spec, Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("got %d rows, want 4:\n%s", len(tab.Rows), tab)
	}
	// Rows follow grid order: scenarios as listed, engines innermost; the
	// scenario column is set and dataset/rate are placeholders.
	wantScen := []string{"bursty", "bursty", "steady", "steady"}
	wantEng := []string{"splitwise", "hexgen", "splitwise", "hexgen"}
	for i, row := range tab.Rows {
		if row[1] != wantScen[i] || row[4] != wantEng[i] {
			t.Errorf("row %d = (%s, %s), want (%s, %s)", i, row[1], row[4], wantScen[i], wantEng[i])
		}
		if row[2] != "-" || row[3] != "-" {
			t.Errorf("row %d dataset/rate = (%s, %s), want placeholders", i, row[2], row[3])
		}
	}
}

func TestGridScenarioExcludesDatasetAndRate(t *testing.T) {
	_, err := RunGrid(GridSpec{Scenarios: []string{"steady"}, Datasets: []string{"SG"}}, Options{})
	if err == nil {
		t.Error("scenario+dataset grid should error")
	}
	_, err = RunGrid(GridSpec{Scenarios: []string{"steady"}, Rates: []float64{2}}, Options{})
	if err == nil {
		t.Error("scenario+rate grid should error")
	}
}

func TestParseDimsScenario(t *testing.T) {
	spec, err := ParseDims(GridSpec{}, []string{"scenario=bursty,steady"})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Scenarios) != 2 || spec.Scenarios[0] != "bursty" {
		t.Errorf("Scenarios = %v", spec.Scenarios)
	}
	if _, err := ParseDims(GridSpec{}, []string{"scenario=warp"}); err == nil {
		t.Error("unknown scenario should error at parse time")
	}
}

func TestRunScenariosByteIdenticalAcrossJobs(t *testing.T) {
	var rendered []string
	for _, jobs := range []int{1, 8} {
		tab, err := RunScenarios([]string{"all"}, true, 0, Options{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		rendered = append(rendered, tab.String())
	}
	if rendered[0] != rendered[1] {
		t.Errorf("scenario catalog differs between jobs=1 and jobs=8:\n--- jobs=1\n%s--- jobs=8\n%s", rendered[0], rendered[1])
	}
}

func TestRunScenariosUnknown(t *testing.T) {
	if _, err := RunScenarios([]string{"no-such"}, true, 0, Options{}); err == nil {
		t.Error("unknown scenario should fail fast")
	}
	if _, err := RunScenarios(nil, true, 0, Options{}); err == nil {
		t.Error("empty scenario list should error")
	}
}
