package sweep_test

import (
	"fmt"

	"hetis/internal/metrics"
	"hetis/internal/sweep"
)

// ExampleRunMany sweeps a 3-point grid — the Hetis engine over the three
// paper datasets — on a 3-worker pool. Results come back ordered by key no
// matter which worker finished first, so the output is stable.
func ExampleRunMany() {
	spec := sweep.GridSpec{
		Engines:  []string{"hetis"},
		Datasets: []string{"SG", "HE", "LB"},
		Rates:    []float64{2},
		Duration: 5,
	}
	var jobs []sweep.Job
	for _, p := range spec.Points() {
		jobs = append(jobs, sweep.Job{Key: p.Key(), Run: func(c *sweep.Cache) (*metrics.Table, error) {
			return sweep.RunPoint(spec, p, c)
		}})
	}
	results, err := sweep.RunMany(jobs, sweep.Options{Jobs: 3})
	if err != nil {
		fmt.Println("sweep failed:", err)
		return
	}
	for _, r := range results {
		// Columns: ..., Requests, Completed, ...
		fmt.Printf("%s completed %s/%s\n", r.Key, r.Table.Rows[0][6], r.Table.Rows[0][5])
	}
	// Output:
	// Llama-13B/HE/2/hetis completed 14/14
	// Llama-13B/LB/2/hetis completed 14/14
	// Llama-13B/SG/2/hetis completed 14/14
}
