package sweep

import (
	"fmt"

	"hetis/internal/engine"
	"hetis/internal/metrics"
	"hetis/internal/scenario"
	"hetis/internal/workload"
)

// RunScenarios serves the named scenarios on the pool, one job per
// (scenario, engine) pair, and merges their rows in catalog order —
// scenarios as given (or sorted, for "all"), engines in each spec's order
// — independent of completion order, so the output is byte-identical for
// any Options.Jobs value. quick quarters trace durations; seed offsets
// every scenario's built-in seed.
func RunScenarios(names []string, quick bool, seed int64, opts Options) (*metrics.Table, error) {
	if len(names) == 1 && names[0] == "all" {
		names = scenario.Names()
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("sweep: no scenarios named")
	}
	type pair struct {
		spec scenario.Spec
		eng  string
	}
	var pairs []pair
	for _, name := range names {
		spec, err := scenario.ByName(name)
		if err != nil {
			return nil, err
		}
		spec = scenario.Prepare(spec, quick)
		spec.Seed += seed
		for _, eng := range spec.Engines {
			pairs = append(pairs, pair{spec: spec, eng: eng})
		}
	}
	jobs := make([]Job, len(pairs))
	for i, p := range pairs {
		jobs[i] = Job{Key: p.spec.Name + "/" + p.eng, Run: func(c *Cache) (*metrics.Table, error) {
			return scenario.RunEngine(p.spec, p.eng, scenario.Options{Build: scenarioBuilder(c, p.spec)})
		}}
	}
	results, err := RunMany(jobs, opts)
	if err != nil {
		return nil, err
	}
	// Reassemble in pair order (RunMany sorted by key); duplicates work
	// out because both the sort and the pair walk are stable.
	byKey := map[string][]*metrics.Table{}
	for _, r := range results {
		byKey[r.Key] = append(byKey[r.Key], r.Table)
	}
	tab := &metrics.Table{Header: scenario.Header}
	for _, p := range pairs {
		k := p.spec.Name + "/" + p.eng
		tab.Rows = append(tab.Rows, byKey[k][0].Rows...)
		byKey[k] = byKey[k][1:]
	}
	return tab, nil
}

// scenarioBuilder routes engine construction through the cache so every
// engine serving the same scenario shares its trace, Hetis plan, and
// profile fit.
func scenarioBuilder(c *Cache, spec scenario.Spec) scenario.EngineBuilder {
	k := TraceKey{Scenario: spec.Name, Duration: spec.Duration, Seed: spec.Seed}
	return func(name string, cfg engine.Config, reqs []workload.Request) (engine.Engine, error) {
		return c.BuildEngine(name, cfg, k)
	}
}
