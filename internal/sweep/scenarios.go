package sweep

import (
	"fmt"
	"sync"

	"hetis/internal/engine"
	"hetis/internal/metrics"
	"hetis/internal/scenario"
	"hetis/internal/workload"
)

// RunScenarios serves the named scenarios on the pool, one job per
// (scenario, engine) pair, and merges their rows in catalog order —
// scenarios as given (or the non-heavy catalog, for "all"), engines in
// each spec's order — independent of completion order, so the output is
// byte-identical for any Options.Jobs value. quick quarters trace
// durations; seed offsets every scenario's built-in seed.
func RunScenarios(names []string, quick bool, seed int64, opts Options) (*metrics.Table, error) {
	tab, _, err := RunScenariosSink(names, quick, seed, false, 0, opts)
	return tab, err
}

// ScenarioWindows is one (scenario, engine) run's windowed time series.
type ScenarioWindows struct {
	Scenario string
	Engine   string
	Table    *metrics.Table
}

// RunScenariosSink is RunScenarios with sink selection: stream measures
// through constant-memory streaming sinks (required for heavy scenarios
// like megascale to stay cheap), and window > 0 additionally returns each
// pair's windowed time series, in the same deterministic pair order as the
// rows. "all" expands to the non-heavy catalog (scenario.SuiteNames);
// heavy scenarios run when named explicitly.
func RunScenariosSink(names []string, quick bool, seed int64, stream bool, window float64, opts Options) (*metrics.Table, []ScenarioWindows, error) {
	if len(names) == 1 && names[0] == "all" {
		names = scenario.SuiteNames()
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("sweep: no scenarios named")
	}
	type pair struct {
		spec scenario.Spec
		eng  string
	}
	var pairs []pair
	chaotic, healthy := 0, 0
	for _, name := range names {
		spec, err := scenario.ByName(name)
		if err != nil {
			return nil, nil, err
		}
		spec = scenario.Prepare(spec, quick)
		spec.Seed += seed
		if spec.Chaotic() {
			chaotic++
		} else {
			healthy++
		}
		for _, eng := range spec.Engines {
			pairs = append(pairs, pair{spec: spec, eng: eng})
		}
	}
	// Chaotic scenarios append extra columns; one merged table cannot
	// carry both row shapes, so a batch must be all-chaotic or all-not.
	if chaotic > 0 && healthy > 0 {
		return nil, nil, fmt.Errorf("sweep: cannot mix chaotic and non-chaotic scenarios in one table (their columns differ); run them separately")
	}
	var winMu sync.Mutex
	winByIdx := make([]*metrics.Table, len(pairs))
	jobs := make([]Job, len(pairs))
	for i, p := range pairs {
		i := i
		jobs[i] = Job{Key: p.spec.Name + "/" + p.eng, Run: func(c *Cache) (*metrics.Table, error) {
			rows, wins, err := scenario.RunEngineSink(p.spec, p.eng, scenario.Options{
				Build:        scenarioBuilder(c, p.spec),
				Stream:       stream,
				Window:       window,
				ShardWorkers: opts.ShardWorkers,
			})
			if wins != nil {
				winMu.Lock()
				winByIdx[i] = wins
				winMu.Unlock()
			}
			return rows, err
		}}
	}
	results, err := RunMany(jobs, opts)
	if err != nil {
		return nil, nil, err
	}
	// Reassemble in pair order (RunMany sorted by key); duplicates work
	// out because both the sort and the pair walk are stable.
	byKey := map[string][]*metrics.Table{}
	for _, r := range results {
		byKey[r.Key] = append(byKey[r.Key], r.Table)
	}
	tab := &metrics.Table{Header: scenario.HeaderFor(chaotic > 0)}
	var windows []ScenarioWindows
	for i, p := range pairs {
		k := p.spec.Name + "/" + p.eng
		tab.Rows = append(tab.Rows, byKey[k][0].Rows...)
		byKey[k] = byKey[k][1:]
		if winByIdx[i] != nil {
			windows = append(windows, ScenarioWindows{Scenario: p.spec.Name, Engine: p.eng, Table: winByIdx[i]})
		}
	}
	return tab, windows, nil
}

// scenarioBuilder routes engine construction through the cache so every
// engine serving the same scenario shares its trace, Hetis plan, and
// profile fit. The run's cfg (sink injection included) passes through to
// the engine untouched.
func scenarioBuilder(c *Cache, spec scenario.Spec) scenario.EngineBuilder {
	k := TraceKey{Scenario: spec.Name, Duration: spec.Duration, Seed: spec.Seed}
	return func(name string, cfg engine.Config, reqs []workload.Request) (engine.Engine, error) {
		return c.BuildEngine(name, cfg, k)
	}
}
