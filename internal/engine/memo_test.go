package engine

import (
	"math/rand"
	"testing"

	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/parallelizer"
	"hetis/internal/perf"
	"hetis/internal/workload"
)

// TestDecodeCostMemoBitEqual asserts the per-batch dense-cost memo is a
// pure cache: for random batch sizes, memo hits return the exact values a
// fresh recomputation from the cost model produces, bit for bit. This is
// the engine half of the optimization contract (the dispatch half is
// TestCachingDecisionEquivalence).
func TestDecodeCostMemoBitEqual(t *testing.T) {
	reqs := shortTrace(workload.ShareGPT, 2, 10, 3)
	h := buildHetis(t, model.Llama13B, reqs)
	res := &Result{}
	inst, err := h.newInstance(0, h.plan.Instances[0], res)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		batch := 1 + rng.Intn(256)
		got := inst.decodeCostFor(batch) // may be a memo hit

		// Fresh recomputation straight from the cost model, mirroring
		// decodeCostFor term by term.
		stageTimes := make([]float64, len(inst.stages))
		var dense float64
		for k, st := range inst.stages {
			stageTimes[k] = parallelizer.StageDecodeTime(h.est, st, batch, inst.links[k])
			dense += stageTimes[k]
		}
		if len(inst.stages) > 1 {
			dense += float64(len(inst.stages)-1) *
				perf.P2PTime(h.cfg.Cluster.InterLink, h.cfg.Model.HiddenStateBytes(batch))
		}
		last := inst.stages[len(inst.stages)-1]
		dense += h.est.LMHeadTime(last.Spec, batch, last.TP)
		wantModule := moduleLatency(stageTimes)

		if got.dense != dense || got.denseModule != wantModule {
			t.Fatalf("batch %d: memo (%v, %v) != recomputed (%v, %v)",
				batch, got.dense, got.denseModule, dense, wantModule)
		}
	}
}

// TestStaticDenseMemoBitEqual is the same property for the static
// pipeline shared by hexgen/splitwise/vllm: decodeTime with a warm memo
// must reproduce the cold result exactly for every (batch, ctx) pair.
func TestStaticDenseMemoBitEqual(t *testing.T) {
	cfg := DefaultConfig(model.Llama13B, hardware.PaperCluster())
	hx, err := NewHexGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewHexGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	// Warm hx's memo with every batch size first; cold recomputes each
	// point on a fresh pipeline whose memo is reset before every call.
	for trial := 0; trial < 100; trial++ {
		batch := 1 + rng.Intn(128)
		ctx := int64(batch * (64 + rng.Intn(1024)))
		dt1, d1, a1 := hx.pipe.decodeTime(hx.est, cfg, batch, ctx)
		cold.pipe.denseMemo = nil // force recomputation
		dt2, d2, a2 := cold.pipe.decodeTime(cold.est, cfg, batch, ctx)
		if dt1 != dt2 || d1 != d2 || a1 != a2 {
			t.Fatalf("batch %d ctx %d: warm (%v,%v,%v) != cold (%v,%v,%v)",
				batch, ctx, dt1, d1, a1, dt2, d2, a2)
		}
	}
}
