package engine

import (
	"strings"
	"testing"

	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/sim"
	"hetis/internal/workload"
)

// stormConfig is a dense chaos setup: three replicas, four overlapping
// failure windows, an autoscaler, and two priority tiers — every chaos
// event class at once.
func stormConfig() *ChaosConfig {
	return &ChaosConfig{
		Replicas: 3,
		Failures: []FailureWindow{
			{Replica: 0, Start: 1, End: 3},
			{Replica: 1, Start: 2, End: 4, HaulKV: true},
			{Replica: 2, Start: 2.5, End: 5},
			{Replica: 0, Start: 6, End: 7},
		},
		Autoscale: &AutoscalePolicy{
			MinReplicas: 1, MaxReplicas: 4,
			Interval: 1, Lag: 0.5,
			UpBelow: 0.99, DownAbove: 0.999,
		},
		Tiers: []Tier{
			{Name: "gold", Tenants: []string{"a"}, Priority: 1},
			{Name: "bronze", Priority: 0, MaxInflight: 64},
		},
	}
}

// TestMaxSimEventsChaosMultiplier pins the budget formula's chaos term:
// every replica runs its own loop, every failure window can trigger a
// fleet-wide re-dispatch, and autoscaling and tiering each add an event
// class, so the budget must scale with all of them. Before the fix the
// budget ignored chaos entirely, sized for one healthy replica — a
// legitimate failover storm on a large trace could trip the runaway guard.
func TestMaxSimEventsChaosMultiplier(t *testing.T) {
	var cfg Config
	n := 1_000_000
	healthy := cfg.MaxSimEvents(n)

	cfg.Chaos = stormConfig()
	// maxReplicas(4) + failures(4) + autoscale(1) + tiers(1) = 10.
	if got, want := cfg.MaxSimEvents(n), healthy*10; got != want {
		t.Errorf("storm MaxSimEvents(%d)=%d want %d (10x the healthy budget)", n, got, want)
	}

	// Inert chaos — a config normalize() reports as no-op — must leave the
	// budget exactly on the legacy value, like every other chaos-off path.
	cfg.Chaos = &ChaosConfig{Replicas: 1}
	if got := cfg.MaxSimEvents(n); got != healthy {
		t.Errorf("inert chaos MaxSimEvents(%d)=%d want healthy %d", n, got, healthy)
	}

	// The floor still applies after the multiplier.
	cfg.Chaos = stormConfig()
	if got := cfg.MaxSimEvents(1); got != minEventBudget {
		t.Errorf("small-trace storm MaxSimEvents(1)=%d want floor %d", got, minEventBudget)
	}
}

// TestChaosStormStaysInsideBudget runs every engine through the full
// storm and checks two sides of the guard at once: the run terminates
// normally inside the chaos-scaled budget, and the event count really
// does exceed what a healthy-sized per-request budget would have allowed
// — the situation that used to abort legitimate failover storms.
func TestChaosStormStaysInsideBudget(t *testing.T) {
	reqs := workload.Poisson(workload.HumanEval, 4, 20, 7)
	cfg := DefaultConfig(model.Llama13B, hardware.PaperCluster())
	// A deliberately tight per-request budget, so the healthy-sized bound
	// per*n is small enough for the storm to overrun it.
	cfg.MaxEventsPerRequest = 2
	cfg.Chaos = stormConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	healthySized := uint64(cfg.MaxEventsPerRequest) * uint64(len(reqs))
	for _, name := range Names {
		eng, err := NewByName(name, cfg, reqs)
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		res, err := eng.Run(reqs, 200)
		if err != nil {
			t.Fatalf("%s: storm must finish inside the chaos-scaled budget: %v", name, err)
		}
		if budget := cfg.MaxSimEvents(len(reqs)); res.Events > budget {
			t.Errorf("%s: %d events exceed budget %d", name, res.Events, budget)
		}
		if res.Events <= healthySized {
			t.Errorf("%s: storm ran only %d events, not above the healthy-sized bound %d — test lost its teeth",
				name, res.Events, healthySized)
		}
	}
}

// TestChaosBudgetStillAbortsRunaway feeds the chaos-scaled budget to the
// simulator guard and drives a genuine livelock — an event that forever
// reschedules itself. The multiplier is a constant for a given config, so
// the guard must still trip; scaling the budget for storms must not turn
// it off.
func TestChaosBudgetStillAbortsRunaway(t *testing.T) {
	var cfg Config
	cfg.MaxEventsPerRequest = 1
	cfg.Chaos = stormConfig()
	budget := cfg.MaxSimEvents(8) // floor-dominated: 1e6 events
	s := sim.New()
	s.MaxEvents = budget
	var loop func(*sim.Simulator)
	loop = func(s *sim.Simulator) { s.After(0.001, "livelock", loop) }
	s.After(0, "livelock", loop)
	err := s.Run(0)
	if err == nil {
		t.Fatal("livelock must trip the runaway guard, got nil")
	}
	if !strings.Contains(err.Error(), "MaxEvents") {
		t.Fatalf("unexpected error: %v", err)
	}
	if s.Executed != budget+1 {
		t.Errorf("guard tripped after %d events, want budget %d + the aborting event", s.Executed, budget)
	}
}
