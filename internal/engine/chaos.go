// The chaos layer: replica failure/recovery windows, an SLO-driven
// autoscaling controller, and priority tiers with admission control and
// preemption. Engines expose a small chaosFleet surface (kill / revive /
// scale); the controller here owns the shared policy — when to fail whom,
// when the attainment window demands another replica, which tier a tenant
// belongs to — so all four engines exercise identical chaos semantics.
//
// The layer is strictly additive: a nil (or inert) ChaosConfig leaves every
// engine on its exact legacy code path, which the differential no-op test
// and the pre-chaos golden traces both pin.

package engine

import (
	"fmt"
	"sort"

	"hetis/internal/metrics"
	"hetis/internal/sim"
	"hetis/internal/trace"
)

// FailureWindow takes one replica down for [Start, End) seconds of
// simulated time. In-flight requests on the replica are re-dispatched to
// survivors; HaulKV decides whether their KV cache moves with them (a
// serialized transfer over the cluster interconnect) or is lost (full
// re-prefill of the accumulated context).
type FailureWindow struct {
	Replica    int
	Start, End float64
	HaulKV     bool
}

// AutoscalePolicy is the SLO-driven replica controller: every Interval
// seconds it reads the most recent attainment window (a
// metrics.WindowedSeries bucketed at Interval against SLO) and scales up
// when attainment falls below UpBelow — after Lag seconds of provisioning
// delay — or drains a replica when attainment holds at or above DownAbove.
// One scale operation is in flight at a time.
type AutoscalePolicy struct {
	MinReplicas, MaxReplicas int
	Interval, Lag            float64
	UpBelow, DownAbove       float64
	SLO                      metrics.SLOTarget
}

// Tier is one priority class of a tiered workload. Tenants lists the
// workload tenants it covers (empty = catch-all). Higher Priority preempts
// lower under memory pressure. MaxInflight caps the tier's admitted,
// not-yet-finished requests: arrivals beyond the cap are dropped (admission
// control); 0 means uncapped.
type Tier struct {
	Name        string
	Tenants     []string
	Priority    int
	MaxInflight int
}

// ChaosConfig bundles the resilience knobs. Replicas is the initial fleet
// width (the engine's deployment is replicated that many times); 0 or 1
// means a single replica, the legacy shape.
type ChaosConfig struct {
	Failures  []FailureWindow
	Autoscale *AutoscalePolicy
	Tiers     []Tier
	Replicas  int
}

// tiersActive reports whether the tier list actually changes behaviour:
// more than one distinct priority (preemption order exists) or any
// admission cap.
func tiersActive(tiers []Tier) bool {
	if len(tiers) == 0 {
		return false
	}
	prio := tiers[0].Priority
	for _, t := range tiers {
		if t.MaxInflight > 0 || t.Priority != prio {
			return true
		}
	}
	return false
}

// normalize collapses an inert config to nil so engines take the exact
// legacy code path whenever chaos cannot change behaviour.
func (c *ChaosConfig) normalize() *ChaosConfig {
	if c == nil {
		return nil
	}
	if len(c.Failures) == 0 && c.Autoscale == nil && c.Replicas <= 1 && !tiersActive(c.Tiers) {
		return nil
	}
	return c
}

// Active reports whether the config can change behaviour at all — the
// exported face of normalize, for callers (the scenario layer) that must
// know whether a run is chaotic before building an engine.
func (c *ChaosConfig) Active() bool { return c.normalize() != nil }

// Validate reports chaos config errors.
func (c *ChaosConfig) Validate() error {
	if c == nil {
		return nil
	}
	if c.Replicas < 0 {
		return fmt.Errorf("chaos: negative Replicas %d", c.Replicas)
	}
	for i, fw := range c.Failures {
		if fw.Replica < 0 {
			return fmt.Errorf("chaos: failure %d: negative replica %d", i, fw.Replica)
		}
		if fw.Start < 0 || fw.End <= fw.Start {
			return fmt.Errorf("chaos: failure %d: bad window [%g, %g)", i, fw.Start, fw.End)
		}
	}
	if a := c.Autoscale; a != nil {
		if a.MinReplicas < 1 || a.MaxReplicas < a.MinReplicas {
			return fmt.Errorf("chaos: autoscale bounds [%d, %d] invalid", a.MinReplicas, a.MaxReplicas)
		}
		if a.Interval <= 0 {
			return fmt.Errorf("chaos: autoscale Interval %g must be positive", a.Interval)
		}
		if a.Lag < 0 {
			return fmt.Errorf("chaos: negative autoscale Lag %g", a.Lag)
		}
		if a.UpBelow < 0 || a.DownAbove > 1 || a.UpBelow > a.DownAbove {
			return fmt.Errorf("chaos: autoscale thresholds UpBelow=%g DownAbove=%g must satisfy 0 <= UpBelow <= DownAbove <= 1", a.UpBelow, a.DownAbove)
		}
	}
	seen := map[string]bool{}
	catchAll := 0
	for _, t := range c.Tiers {
		if t.Name == "" {
			return fmt.Errorf("chaos: tier with empty name")
		}
		if seen[t.Name] {
			return fmt.Errorf("chaos: duplicate tier %q", t.Name)
		}
		seen[t.Name] = true
		if t.MaxInflight < 0 {
			return fmt.Errorf("chaos: tier %q: negative MaxInflight", t.Name)
		}
		if len(t.Tenants) == 0 {
			catchAll++
		}
	}
	if catchAll > 1 {
		return fmt.Errorf("chaos: %d catch-all tiers (at most one tier may omit Tenants)", catchAll)
	}
	return nil
}

// initialReplicas is the fleet width a run starts with: Replicas floored at
// 1, clamped into the autoscaler's bounds when one is configured.
func (c *ChaosConfig) initialReplicas() int {
	n := c.Replicas
	if n < 1 {
		n = 1
	}
	if a := c.Autoscale; a != nil {
		if n < a.MinReplicas {
			n = a.MinReplicas
		}
		if n > a.MaxReplicas {
			n = a.MaxReplicas
		}
	}
	return n
}

// maxReplicas is the fleet capacity a run must pre-provision: the largest
// width any policy can reach — initial width, the autoscaler ceiling, and
// every failure window's replica index.
func (c *ChaosConfig) maxReplicas() int {
	n := c.initialReplicas()
	if a := c.Autoscale; a != nil && a.MaxReplicas > n {
		n = a.MaxReplicas
	}
	for _, fw := range c.Failures {
		if fw.Replica+1 > n {
			n = fw.Replica + 1
		}
	}
	return n
}

// chaosFleet is the surface an engine's replica fleet exposes to the
// controller. Replica indices are stable across kill/revive.
type chaosFleet interface {
	// activeCount is the number of replicas currently serving.
	activeCount() int
	// kill fails a replica: pending events cancelled, in-flight requests
	// re-dispatched to survivors (KV hauled or lost per haul), waiting
	// requests requeued. Killing an inactive replica is a no-op.
	kill(s *sim.Simulator, replica int, haul bool)
	// revive returns a failed replica to service (empty caches).
	revive(s *sim.Simulator, replica int)
	// scaleUp activates one parked replica; false when none is available.
	scaleUp(s *sim.Simulator) bool
	// scaleDown drains one active replica (its load re-dispatches); false
	// when the fleet is at one replica.
	scaleDown(s *sim.Simulator) bool
}

// tierState is one tier's runtime admission ledger.
type tierState struct {
	Tier
	inflight int
}

// chaosCtl drives the chaos policy for one run. It wraps the run's metrics
// sink (feeding the autoscale attainment window and closing recovery-time
// measurements), owns tier admission, and schedules failure and autoscale
// events. A nil *chaosCtl is the healthy fast path: every method degrades
// to the legacy no-op.
type chaosCtl struct {
	cfg   *ChaosConfig
	fleet chaosFleet
	res   *Result
	log   *trace.Log
	inner metrics.Sink

	byTenant  map[string]*tierState
	catchAll  *tierState
	multiTier bool

	win       *metrics.WindowedSeries
	scaleBusy bool

	// openFailures holds failure-start times awaiting their first
	// at-or-after completion — the recovery-time measure.
	openFailures []float64
}

// newChaosCtl builds the controller for a run. res and log are the run's
// result and trace (log may be nil); inner is the sink the run would
// otherwise feed — the controller interposes on it.
func newChaosCtl(cfg *ChaosConfig, res *Result, log *trace.Log, inner metrics.Sink) *chaosCtl {
	ctl := &chaosCtl{cfg: cfg, res: res, log: log, inner: inner}
	if len(cfg.Tiers) > 0 {
		ctl.byTenant = map[string]*tierState{}
		prio := cfg.Tiers[0].Priority
		for i := range cfg.Tiers {
			t := &tierState{Tier: cfg.Tiers[i]}
			if t.Priority != prio {
				ctl.multiTier = true
			}
			if len(t.Tenants) == 0 {
				ctl.catchAll = t
				continue
			}
			for _, tenant := range t.Tenants {
				ctl.byTenant[tenant] = t
			}
		}
	}
	return ctl
}

// bind attaches the engine's fleet (built after the controller, since the
// fleet wants the controller as its sink).
func (ctl *chaosCtl) bind(f chaosFleet) { ctl.fleet = f }

// start schedules the failure windows and the autoscale tick loop.
func (ctl *chaosCtl) start(s *sim.Simulator) {
	if ctl == nil {
		return
	}
	for i := range ctl.cfg.Failures {
		fw := ctl.cfg.Failures[i]
		s.Schedule(fw.Start, "chaos-fail", func(s *sim.Simulator) {
			ctl.openFailures = append(ctl.openFailures, fw.Start)
			ctl.log.Add(trace.Event{At: s.Now(), Kind: trace.KindFailure, Device: fw.Replica})
			ctl.fleet.kill(s, fw.Replica, fw.HaulKV)
		})
		s.Schedule(fw.End, "chaos-recover", func(s *sim.Simulator) {
			ctl.log.Add(trace.Event{At: s.Now(), Kind: trace.KindRecover, Device: fw.Replica})
			ctl.fleet.revive(s, fw.Replica)
		})
	}
	if a := ctl.cfg.Autoscale; a != nil {
		ctl.win = metrics.NewWindowedSeries(a.Interval, a.SLO)
		s.Schedule(a.Interval, "autoscale", ctl.tick)
	}
}

// tick is the autoscale cadence: decide, then reschedule while the run
// still has work pending (the same self-limiting pattern as the sampling
// timer, so an otherwise-drained simulation ends).
func (ctl *chaosCtl) tick(s *sim.Simulator) {
	ctl.decide(s)
	if s.Pending() > 0 {
		s.Schedule(s.Now()+ctl.cfg.Autoscale.Interval, "autoscale", ctl.tick)
	}
}

// decide reads the most recent attainment window and issues at most one
// scale operation.
func (ctl *chaosCtl) decide(s *sim.Simulator) {
	a := ctl.cfg.Autoscale
	wins := ctl.win.Windows()
	if len(wins) == 0 {
		return
	}
	st := wins[len(wins)-1]
	if st.Completions+st.Dropped == 0 {
		return
	}
	att := st.Attainment()
	active := ctl.fleet.activeCount()
	switch {
	case att < a.UpBelow && active < a.MaxReplicas && !ctl.scaleBusy:
		// Scale up, but only after the provisioning lag: capacity is not
		// free the instant the controller wants it.
		ctl.scaleBusy = true
		s.Schedule(s.Now()+a.Lag, "scale-up", func(s *sim.Simulator) {
			ctl.scaleBusy = false
			if ctl.fleet.activeCount() < a.MaxReplicas && ctl.fleet.scaleUp(s) {
				ctl.res.ScaleUps++
				ctl.log.Add(trace.Event{At: s.Now(), Kind: trace.KindScale, Value: +1})
			}
		})
	case att >= a.DownAbove && active > a.MinReplicas && !ctl.scaleBusy:
		if ctl.fleet.scaleDown(s) {
			ctl.res.ScaleDowns++
			ctl.log.Add(trace.Event{At: s.Now(), Kind: trace.KindScale, Value: -1})
		}
	}
}

// tierFor maps a tenant to its tier (catch-all or nil).
func (ctl *chaosCtl) tierFor(tenant string) *tierState {
	if ctl == nil {
		return nil
	}
	if t, ok := ctl.byTenant[tenant]; ok {
		return t
	}
	return ctl.catchAll
}

// admit runs tier admission control on an arriving request, stamping its
// priority and taking an inflight slot. A false return means the request
// was dropped (recorded, counted, traced); the caller must not enqueue it.
// Nil-safe: the healthy path admits everything.
func (ctl *chaosCtl) admit(s *sim.Simulator, r *request) bool {
	if ctl == nil {
		return true
	}
	t := ctl.tierFor(r.wl.Tenant)
	if t == nil {
		return true
	}
	r.prio = t.Priority
	if t.MaxInflight > 0 && t.inflight >= t.MaxInflight {
		ctl.drop(s, r)
		return false
	}
	t.inflight++
	return true
}

// release returns an admitted request's tier slot; engines call it when
// the request finishes or is dropped after admission.
func (ctl *chaosCtl) release(r *request) {
	if ctl == nil {
		return
	}
	if t := ctl.tierFor(r.wl.Tenant); t != nil && t.inflight > 0 {
		t.inflight--
	}
}

// drop records an admission-control rejection.
func (ctl *chaosCtl) drop(s *sim.Simulator, r *request) {
	ctl.res.Dropped++
	recordDrop(ctl, r, s.Now())
	ctl.log.Add(trace.Event{At: s.Now(), Kind: trace.KindDrop, Request: r.wl.ID, Note: r.wl.Tenant})
}

// notePreempt counts one priority preemption: victim was evicted mid-flight
// so a strictly-higher-priority request could take its memory. The victim
// requeues (it is not dropped); the cost is latency.
func (ctl *chaosCtl) notePreempt(s *sim.Simulator, victim *request) {
	if ctl == nil {
		return
	}
	ctl.res.Preempted++
	if ctl.res.PreemptedByTenant == nil {
		ctl.res.PreemptedByTenant = map[string]int{}
	}
	ctl.res.PreemptedByTenant[victim.wl.Tenant]++
	ctl.log.Add(trace.Event{At: s.Now(), Kind: trace.KindPreempt, Request: victim.wl.ID, Note: victim.wl.Tenant})
}

// tiered reports whether multi-priority scheduling is active — the switch
// for priority waiting queues and tier-aware victim selection.
func (ctl *chaosCtl) tiered() bool { return ctl != nil && ctl.multiTier }

// Observe implements metrics.Sink: the controller interposes on the run's
// sink to feed the autoscale attainment window and close open recovery
// measurements (first completion at or after each failure start).
func (ctl *chaosCtl) Observe(r metrics.RequestRecord) {
	if ctl.win != nil {
		ctl.win.Observe(r)
	}
	if !r.Dropped && len(ctl.openFailures) > 0 {
		kept := ctl.openFailures[:0]
		for _, start := range ctl.openFailures {
			if r.FinishedAt >= start {
				ctl.res.RecoveryTimes = append(ctl.res.RecoveryTimes, r.FinishedAt-start)
			} else {
				kept = append(kept, start)
			}
		}
		ctl.openFailures = kept
	}
	ctl.inner.Observe(r)
}

// Snapshot implements metrics.Sink via the wrapped sink.
func (ctl *chaosCtl) Snapshot() metrics.Snapshot { return ctl.inner.Snapshot() }

// waitQueue is the engines' waiting line: a plain FIFO normally, and a
// strict-priority set of FIFOs (highest priority first) under multi-tier
// chaos. The plain path delegates to queue untouched, so non-tiered runs
// keep their exact legacy ordering.
type waitQueue struct {
	plain  queue
	tiered bool
	byPrio map[int]*queue
	prios  []int // sorted descending
	n      int
}

func newWaitQueue(tiered bool) *waitQueue {
	w := &waitQueue{tiered: tiered}
	if tiered {
		w.byPrio = map[int]*queue{}
	}
	return w
}

func (w *waitQueue) bucket(p int) *queue {
	q, ok := w.byPrio[p]
	if !ok {
		q = &queue{}
		w.byPrio[p] = q
		w.prios = append(w.prios, p)
		sort.Sort(sort.Reverse(sort.IntSlice(w.prios)))
	}
	return q
}

func (w *waitQueue) push(r *request) {
	if !w.tiered {
		w.plain.push(r)
		return
	}
	w.bucket(r.prio).push(r)
	w.n++
}

func (w *waitQueue) pushFront(r *request) {
	if !w.tiered {
		w.plain.pushFront(r)
		return
	}
	w.bucket(r.prio).pushFront(r)
	w.n++
}

func (w *waitQueue) len() int {
	if !w.tiered {
		return w.plain.len()
	}
	return w.n
}

func (w *waitQueue) peek() *request {
	if !w.tiered {
		return w.plain.peek()
	}
	for _, p := range w.prios {
		if q := w.byPrio[p]; q.len() > 0 {
			return q.peek()
		}
	}
	return nil
}

func (w *waitQueue) pop() *request {
	if !w.tiered {
		return w.plain.pop()
	}
	for _, p := range w.prios {
		if q := w.byPrio[p]; q.len() > 0 {
			w.n--
			return q.pop()
		}
	}
	return nil
}
