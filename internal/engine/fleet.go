// staticFleet replicates the static-pipeline runtime (HexGen / vLLM) for
// the chaos layer: every replica runs the same continuous-batching loop
// over the shared pipeline shape, and the fleet owns routing, failure
// handling, KV hauling, and scale operations. A healthy run is a fleet of
// one with a nil controller — every fleet path then degenerates to the
// legacy single-runtime behaviour that the golden traces pin.

package engine

import (
	"sort"

	"hetis/internal/metrics"
	"hetis/internal/perf"
	"hetis/internal/sim"
	"hetis/internal/trace"
	"hetis/internal/workload"
)

// replicaState is one replica's lifecycle position.
type replicaState int

const (
	replicaActive replicaState = iota
	replicaFailed
	replicaParked // provisioned but not serving (autoscale headroom)
)

// fleetCore is the replica-type-independent fleet bookkeeping shared by
// the static, splitwise, and hetis fleets: global arrival sequencing, the
// conservation ledger, the parked backlog, and the serialized KV-haul
// link.
type fleetCore struct {
	cfg  Config
	res  *Result
	ctl  *chaosCtl
	sink metrics.Sink

	// nextSeq numbers arrivals globally (stamped onto request.seq); victim
	// selection ("newest first") compares within one replica, where the
	// global order agrees with any per-replica numbering.
	nextSeq int64
	// inSystem counts admitted requests not yet finished or dropped —
	// the Queued term of the conservation ledger.
	inSystem int
	// parked holds admitted requests with no active replica to run on.
	parked queue
	// inHaul counts requests whose KV is mid-transfer between replicas;
	// haulFree is when the haul link next frees up (transfers serialize).
	inHaul   int
	haulFree float64
	// recBatch buffers one iteration's completion records: afterDecode
	// loops fill it through finishDeferred and flush it with one batched
	// sink append before the event callback returns.
	recBatch []metrics.RequestRecord
}

func newFleetCore(cfg Config, res *Result, ctl *chaosCtl, sink metrics.Sink) fleetCore {
	return fleetCore{cfg: cfg, res: res, ctl: ctl, sink: sink}
}

// admitArrival runs the shared arrival bookkeeping: sequence number,
// arrival trace, tier admission. A false return means the request was
// dropped at admission.
func (c *fleetCore) admitArrival(s *sim.Simulator, r *request) bool {
	r.seq = c.nextSeq
	c.nextSeq++
	c.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindArrival, Request: r.wl.ID})
	if !c.ctl.admit(s, r) {
		return false
	}
	c.inSystem++
	return true
}

// dropAdmitted records the drop of an already-admitted request (the
// unservable-size paths), closing its conservation slot.
func (c *fleetCore) dropAdmitted(s *sim.Simulator, r *request) {
	c.ctl.release(r)
	c.inSystem--
	c.res.Dropped++
	recordDrop(c.sink, r, s.Now())
	c.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindDrop, Request: r.wl.ID, Note: r.wl.Tenant})
}

// finishDeferred runs the shared completion bookkeeping with the sink
// append buffered: ledger, counter, and trace updates happen immediately
// (so trace-event order is untouched), while the completion record waits
// in recBatch for one batched sink call. Callers must flushFinishes
// before their event callback returns.
func (c *fleetCore) finishDeferred(s *sim.Simulator, r *request) {
	c.ctl.release(r)
	c.inSystem--
	c.recBatch = append(c.recBatch, finishRecord(r, s.Now()))
	c.res.Completed++
	c.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindFinish, Request: r.wl.ID})
}

// flushFinishes observes the buffered completion records in order and
// clears the buffer (dropping its tenant-string references) for reuse.
func (c *fleetCore) flushFinishes() {
	if len(c.recBatch) == 0 {
		return
	}
	metrics.ObserveAll(c.sink, c.recBatch)
	clear(c.recBatch)
	c.recBatch = c.recBatch[:0]
}

// haulTo ships a victim's KV cache toward a surviving replica over the
// cluster interconnect; transfers serialize on the link, and deliver runs
// when the transfer lands.
func (c *fleetCore) haulTo(s *sim.Simulator, r *request, deliver func(*sim.Simulator, *request)) {
	bytes := int64(r.restartCtx) * c.cfg.Model.KVBytesPerToken()
	dt := perf.P2PTime(c.cfg.Cluster.InterLink, bytes)
	now := s.Now()
	if c.haulFree < now {
		c.haulFree = now
	}
	c.haulFree += dt
	c.res.Migrations++
	c.res.MigratedBytes += bytes
	c.res.Trace.Add(trace.Event{At: now, Kind: trace.KindMigration, Request: r.wl.ID, Value: float64(bytes)})
	c.inHaul++
	s.Schedule(c.haulFree, "kv-haul", func(s *sim.Simulator) {
		c.inHaul--
		deliver(s, r)
	})
}

// loseVictim applies lost-KV failure semantics: the request re-prefills
// its full accumulated context on whichever replica it lands on.
func (c *fleetCore) loseVictim(s *sim.Simulator, r *request) {
	r.hauled = false
	c.res.Evictions++
	c.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindEviction, Request: r.wl.ID})
}

type staticFleet struct {
	fleetCore
	est      *perf.Estimator
	replicas []*staticRuntime
}

func newStaticFleet(cfg Config, est *perf.Estimator, pipe *staticPipeline, res *Result, ctl *chaosCtl, sink metrics.Sink, chaos *ChaosConfig) *staticFleet {
	width, total := 1, 1
	if chaos != nil {
		width = chaos.initialReplicas()
		total = chaos.maxReplicas()
	}
	f := &staticFleet{fleetCore: newFleetCore(cfg, res, ctl, sink), est: est}
	for i := 0; i < total; i++ {
		rt := &staticRuntime{
			cfg:     cfg,
			est:     est,
			pipe:    pipe,
			res:     res,
			fleet:   f,
			idx:     i,
			state:   replicaParked,
			waiting: newWaitQueue(ctl.tiered()),
			byID:    map[int64]*request{},
		}
		if i < width {
			rt.state = replicaActive
		}
		rt.stepFn = rt.step
		rt.prefillDoneFn = rt.prefillDone
		rt.decodeDoneFn = rt.decodeDone
		f.replicas = append(f.replicas, rt)
	}
	return f
}

// runStatic is the shared Run body of the two static-pipeline engines.
func runStatic(name string, cfg Config, est *perf.Estimator, pipe *staticPipeline, capBytes int64, reqs []workload.Request, horizon float64) (*Result, error) {
	reqs = workload.Truncate(reqs, cfg.Model.MaxSeqLen) // clamp to the context window
	sink, rec := cfg.newRunSink(len(reqs))
	res := &Result{
		Engine:        name,
		Sink:          sink,
		Recorder:      rec,
		Trace:         cfg.newTraceLog(),
		CacheCapacity: capBytes,
	}
	iters := moduleSeriesCap(reqs)
	res.DenseTimes = make([]float64, 0, iters)
	res.AttnTimes = make([]float64, 0, iters)
	chaos := cfg.Chaos.normalize()
	var ctl *chaosCtl
	runSink := sink
	if chaos != nil {
		ctl = newChaosCtl(chaos, res, res.Trace, sink)
		runSink = ctl
	}
	f := newStaticFleet(cfg, est, pipe, res, ctl, runSink, chaos)
	if ctl != nil {
		ctl.bind(f)
	}
	s := sim.New()
	s.MaxEvents = cfg.MaxSimEvents(len(reqs))
	ctl.start(s)
	scheduleArrivals(s, reqs, func(s *sim.Simulator, r *request) {
		if !f.admitArrival(s, r) {
			return
		}
		f.route(s, r)
	})
	if err := s.Run(horizon); err != nil {
		return nil, err
	}
	res.Horizon = s.Now()
	res.Events = s.Executed
	res.Queued = f.inSystem
	return res, nil
}

// activeCount implements chaosFleet.
func (f *staticFleet) activeCount() int {
	n := 0
	for _, rt := range f.replicas {
		if rt.state == replicaActive {
			n++
		}
	}
	return n
}

// route sends a request to the least-loaded active replica, or parks it
// when no replica is serving (a reviving replica drains the park).
func (f *staticFleet) route(s *sim.Simulator, r *request) {
	var best *staticRuntime
	for _, rt := range f.replicas {
		if rt.state != replicaActive {
			continue
		}
		if best == nil || rt.load() < best.load() {
			best = rt
		}
	}
	if best == nil {
		f.parked.push(r)
		return
	}
	best.waiting.push(r)
	best.kick(s)
}

// deactivate takes a replica out of service, re-dispatching everything it
// held: running requests haul their KV to survivors (haul mode) or lose it
// and re-prefill; mid-prefill and waiting requests requeue as-is.
func (f *staticFleet) deactivate(s *sim.Simulator, rt *staticRuntime, haul bool, to replicaState) {
	rt.state = to
	if rt.busy {
		s.Cancel(rt.pending)
		rt.busy = false
	}
	resident := map[int64]bool{}
	for _, r := range rt.running {
		resident[r.wl.ID] = true
	}
	victims := make([]*request, 0, len(rt.byID))
	for _, r := range rt.byID {
		victims = append(victims, r)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].seq < victims[j].seq })
	for _, r := range victims {
		id := r.wl.ID
		delete(rt.byID, id)
		r.evicted = true
		r.restartCtx = r.contextLen()
		if haul && resident[id] {
			r.hauled = true
			f.haulTo(s, r, f.route)
			continue
		}
		f.loseVictim(s, r)
		f.route(s, r)
	}
	rt.running = rt.running[:0]
	rt.used = 0
	for rt.waiting.len() > 0 {
		f.route(s, rt.waiting.pop())
	}
}

// kill implements chaosFleet.
func (f *staticFleet) kill(s *sim.Simulator, replica int, haul bool) {
	if replica >= len(f.replicas) {
		return
	}
	rt := f.replicas[replica]
	if rt.state != replicaActive {
		return
	}
	f.deactivate(s, rt, haul, replicaFailed)
}

// revive implements chaosFleet.
func (f *staticFleet) revive(s *sim.Simulator, replica int) {
	if replica >= len(f.replicas) {
		return
	}
	rt := f.replicas[replica]
	if rt.state != replicaFailed {
		return
	}
	f.activate(s, rt)
}

// activate brings a replica into service and hands it the parked backlog,
// then steals queued (not yet admitted) work from busier replicas so the
// newcomer helps drain the backlog instead of waiting on fresh arrivals.
func (f *staticFleet) activate(s *sim.Simulator, rt *staticRuntime) {
	rt.state = replicaActive
	for f.parked.len() > 0 {
		rt.waiting.push(f.parked.pop())
	}
	for {
		var donor *staticRuntime
		for _, o := range f.replicas {
			if o == rt || o.state != replicaActive {
				continue
			}
			if donor == nil || o.waiting.len() > donor.waiting.len() {
				donor = o
			}
		}
		if donor == nil || donor.waiting.len() <= rt.waiting.len()+1 {
			break
		}
		rt.waiting.push(donor.waiting.pop())
	}
	rt.kick(s)
}

// scaleUp implements chaosFleet: activate the first parked replica.
func (f *staticFleet) scaleUp(s *sim.Simulator) bool {
	for _, rt := range f.replicas {
		if rt.state == replicaParked {
			f.activate(s, rt)
			return true
		}
	}
	return false
}

// scaleDown implements chaosFleet: drain the highest-index active replica
// (its KV hauls to survivors — a graceful drain, not a crash).
func (f *staticFleet) scaleDown(s *sim.Simulator) bool {
	if f.activeCount() <= 1 {
		return false
	}
	for i := len(f.replicas) - 1; i >= 0; i-- {
		if f.replicas[i].state == replicaActive {
			f.deactivate(s, f.replicas[i], true, replicaParked)
			return true
		}
	}
	return false
}
