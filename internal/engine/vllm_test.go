package engine

import (
	"testing"

	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/workload"
)

func TestVLLMUsesOnlyTopTier(t *testing.T) {
	cfg := DefaultConfig(model.Llama13B, hardware.PaperCluster())
	v, err := NewVLLM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v.Name() != "vllm" {
		t.Fatalf("name = %q", v.Name())
	}
	c := hardware.PaperCluster()
	devs := v.Devices()
	if len(devs) != 4 {
		t.Fatalf("vllm uses %d devices, want the 4 A100s", len(devs))
	}
	for _, id := range devs {
		if c.Device(id).Spec.Name != "A100" {
			t.Fatalf("vllm used a %s", c.Device(id).Spec.Name)
		}
	}
}

func TestVLLMServesTrace(t *testing.T) {
	cfg := DefaultConfig(model.Llama13B, hardware.PaperCluster())
	v, err := NewVLLM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.Poisson(workload.HumanEval, 5, 15, 3)
	res, err := v.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(reqs) {
		t.Fatalf("completed %d of %d", res.Completed, len(reqs))
	}
}

func TestVLLMRejectsOversizedModel(t *testing.T) {
	// Llama-70B does not fit on a single P100 host's "top tier".
	small := hardware.NewBuilder(hardware.LAN100G).
		AddHost("p", hardware.PCIe3x16, hardware.P100, 4).
		MustBuild()
	cfg := DefaultConfig(model.Llama70B, small)
	if _, err := NewVLLM(cfg); err == nil {
		t.Fatal("70B on 4xP100 should be rejected")
	}
}

func TestVLLMCacheSmallerThanHetis(t *testing.T) {
	// The reference leaves 8 GPUs idle; Hetis must expose more cache.
	cfg := DefaultConfig(model.Llama13B, hardware.PaperCluster())
	v, err := NewVLLM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanForWorkload(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHetis(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if v.CacheCapacity() >= h.CacheCapacity() {
		t.Fatalf("vllm cache %d should be below hetis %d", v.CacheCapacity(), h.CacheCapacity())
	}
}
