package engine

import (
	"fmt"
	"sort"

	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/parallelizer"
	"hetis/internal/perf"
)

// staticPipeline is the shared substrate of the two baselines: a fixed
// sequence of per-type pipeline stages with static layer assignment and
// stage-local KV cache. Its capacity is limited by the most constrained
// stage — precisely the imbalance Fig. 1(b) illustrates.
type staticPipeline struct {
	stages []parallelizer.Stage
	links  []hardware.LinkSpec
	// tokenCap is the number of cacheable tokens, bounded by the tightest
	// stage: min_s floor(free_s / (kvPerTokenLayer · layers_s)).
	// Occupancy lives on the runtime replica (staticRuntime.used), not
	// here: the pipeline is a pure shared shape that chaos-mode fleets
	// replicate without copying.
	tokenCap int64

	// denseMemo caches per-batch dense stage times (pure in batch size;
	// see decodeTime), and attnScratch is the per-iteration attention
	// buffer both reused across decode steps.
	denseMemo   map[int]*staticDenseCost
	attnScratch []float64
}

// staticDenseCost memoizes the batch-dependent dense side of decodeTime.
type staticDenseCost struct {
	perStage []float64
	module   float64 // moduleLatency(perStage)
}

// buildStaticPipeline assigns layers to the given per-type device groups
// (ordered high→low tier) proportionally to their dense throughput, then
// computes the cache capacity. groups must be non-empty.
func buildStaticPipeline(cfg Config, est *perf.Estimator, cluster *hardware.Cluster, groups []hardware.TypeGroup, decodeBatch int) (*staticPipeline, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("engine: static pipeline needs devices")
	}
	m := cfg.Model

	// One stage per (type, host) so TP stays within a host, like §7.2's
	// HexGen setup (3090s form two 2-way TP stages, one per host).
	type protoStage struct {
		spec hardware.GPUSpec
		ids  []hardware.DeviceID
	}
	var protos []protoStage
	for _, g := range groups {
		byHost := map[int][]hardware.DeviceID{}
		var hosts []int
		for _, id := range g.IDs {
			h := cluster.Device(id).Host
			if _, ok := byHost[h]; !ok {
				hosts = append(hosts, h)
			}
			byHost[h] = append(byHost[h], id)
		}
		sort.Ints(hosts)
		for _, h := range hosts {
			protos = append(protos, protoStage{spec: g.Spec, ids: byHost[h]})
		}
	}

	// Apportion layers ∝ devices/denseLayerTime.
	weights := make([]float64, len(protos))
	var wsum float64
	for i, p := range protos {
		weights[i] = float64(len(p.ids)) / est.DenseLayerTime(p.spec, decodeBatch, 1)
		wsum += weights[i]
	}
	layers := apportionLayers(m.Layers, weights)

	// Enforce per-stage weight fit by shifting layers to stages with room.
	budget := func(p protoStage) float64 {
		return float64(len(p.ids)) * float64(p.spec.MemBytes) * (1 - cfg.MemHeadroom)
	}
	fits := func(i int) bool {
		return float64(layers[i])*float64(m.LayerWeightBytes()) <= budget(protos[i])
	}
	for pass := 0; pass < m.Layers; pass++ {
		moved := false
		for i := range protos {
			for !fits(i) && layers[i] > 0 {
				// Move one layer to the stage with the most spare weight
				// budget.
				best, bestSpare := -1, 0.0
				for j := range protos {
					if j == i {
						continue
					}
					spare := budget(protos[j]) - float64(layers[j]+1)*float64(m.LayerWeightBytes())
					if spare > bestSpare {
						bestSpare = spare
						best = j
					}
				}
				if best < 0 {
					return nil, fmt.Errorf("engine: %s does not fit on the static pipeline", m.Name)
				}
				layers[i]--
				layers[best]++
				moved = true
			}
		}
		if !moved {
			break
		}
	}

	p := &staticPipeline{}
	p.tokenCap = int64(^uint64(0) >> 1)
	for i, pr := range protos {
		if layers[i] == 0 {
			continue
		}
		st := parallelizer.Stage{
			Spec:    pr.spec,
			Devices: pr.ids,
			TP:      len(pr.ids),
			PP:      1,
			Layers:  layers[i],
		}
		p.stages = append(p.stages, st)
		p.links = append(p.links, parallelizer.StageLink(cluster, st))
		free := budget(pr) - float64(layers[i])*float64(m.LayerWeightBytes())
		if free < 0 {
			free = 0
		}
		capTokens := int64(free / (float64(m.KVBytesPerTokenLayer()) * float64(layers[i])))
		if capTokens < p.tokenCap {
			p.tokenCap = capTokens
		}
	}
	if len(p.stages) == 0 {
		return nil, fmt.Errorf("engine: static pipeline has no layers")
	}
	return p, nil
}

// cacheCapacityBytes converts the token capacity to bytes.
func (p *staticPipeline) cacheCapacityBytes(m model.Config) int64 {
	return p.tokenCap * m.KVBytesPerToken()
}

// denseCostFor memoizes the batch-dependent dense stage times; dense
// module cost is a pure function of (stage layout, batch), so the memo
// never invalidates.
func (p *staticPipeline) denseCostFor(est *perf.Estimator, batch int) *staticDenseCost {
	if c, ok := p.denseMemo[batch]; ok {
		return c
	}
	c := &staticDenseCost{perStage: make([]float64, len(p.stages))}
	for k, st := range p.stages {
		c.perStage[k] = parallelizer.StageDecodeTime(est, st, batch, p.links[k])
	}
	c.module = moduleLatency(c.perStage)
	if p.denseMemo == nil {
		p.denseMemo = make(map[int]*staticDenseCost)
	}
	p.denseMemo[batch] = c
	return c
}

// decodeTime is one decode iteration for `batch` sequences whose total
// cached context is ctxTokens; it returns the iteration time plus the
// §7.3 dense/attention module latencies. Dense stage times come from the
// per-batch memo; attention depends on the live cached context and is
// recomputed each call into a reused buffer. The dt accumulation walks
// stages interleaving dense and attention exactly like the pre-memo code,
// so the floating-point result is bit-identical.
func (p *staticPipeline) decodeTime(est *perf.Estimator, cfg Config, batch int, ctxTokens int64) (dt, denseModule, attnModule float64) {
	m := cfg.Model
	dense := p.denseCostFor(est, batch)
	if cap(p.attnScratch) < len(p.stages) {
		p.attnScratch = make([]float64, len(p.stages))
	}
	attnPerStage := p.attnScratch[:len(p.stages)]
	for k, st := range p.stages {
		heads := batch * m.Heads / st.TP
		cacheLayer := ctxTokens * m.KVBytesPerTokenLayer() / int64(st.TP)
		attnPerStage[k] = float64(st.Layers) * est.AttnDecodeTime(st.Spec, heads, cacheLayer)
		dt += dense.perStage[k] + attnPerStage[k]
	}
	if len(p.stages) > 1 {
		dt += float64(len(p.stages)-1) * perf.P2PTime(cfg.Cluster.InterLink, m.HiddenStateBytes(batch))
	}
	last := p.stages[len(p.stages)-1]
	dt += est.LMHeadTime(last.Spec, batch, last.TP)
	return dt, dense.module, moduleLatency(attnPerStage)
}

// prefillTime is the iteration cost of prefilling the given prompts.
func (p *staticPipeline) prefillTime(est *perf.Estimator, cfg Config, prompts []int) float64 {
	m := cfg.Model
	total := 0
	for _, l := range prompts {
		total += l
	}
	var dt float64
	for k, st := range p.stages {
		dt += parallelizer.StagePrefillTime(est, st, prompts, p.links[k])
	}
	if len(p.stages) > 1 {
		dt += float64(len(p.stages)-1) * perf.P2PTime(cfg.Cluster.InterLink, m.HiddenStateBytes(total))
	}
	last := p.stages[len(p.stages)-1]
	dt += est.LMHeadTime(last.Spec, len(prompts), last.TP)
	return dt
}

// apportionLayers is the largest-remainder apportionment used by the
// baselines (their stages always keep at least one layer when weighted).
func apportionLayers(total int, weights []float64) []int {
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	n := len(weights)
	out := make([]int, n)
	if n == 0 || wsum <= 0 {
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	assigned := 0
	rems := make([]rem, 0, n)
	for i, w := range weights {
		exact := float64(total) * w / wsum
		out[i] = int(exact)
		assigned += out[i]
		rems = append(rems, rem{i, exact - float64(out[i])})
	}
	sort.Slice(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for k := 0; assigned < total; k++ {
		out[rems[k%n].idx]++
		assigned++
	}
	for i := range out {
		if weights[i] > 0 && out[i] == 0 {
			maxIdx := 0
			for j := range out {
				if out[j] > out[maxIdx] {
					maxIdx = j
				}
			}
			if out[maxIdx] > 1 {
				out[maxIdx]--
				out[i]++
			}
		}
	}
	return out
}
