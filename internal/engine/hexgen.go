package engine

import (
	"fmt"

	"hetis/internal/parallelizer"
	"hetis/internal/perf"
	"hetis/internal/sim"
	"hetis/internal/trace"
	"hetis/internal/workload"
)

// HexGen is the parameter-splitting baseline (§7.1): a single static
// pipeline whose stages hold asymmetric layer counts balanced by device
// throughput; prefill and decode share the same workers. Its weakness is
// exactly what §2.3 describes — cache capacity is bounded by the tightest
// stage and low-end GPUs drag every dense module.
type HexGen struct {
	cfg  Config
	est  *perf.Estimator
	pipe *staticPipeline
}

// NewHexGen builds the baseline over the whole cluster.
func NewHexGen(cfg Config) (*HexGen, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	est := perf.New(cfg.Model)
	pipe, err := buildStaticPipeline(cfg, est, cfg.Cluster, cfg.Cluster.DevicesByType(), 32)
	if err != nil {
		return nil, fmt.Errorf("engine: hexgen: %w", err)
	}
	return &HexGen{cfg: cfg, est: est, pipe: pipe}, nil
}

// Name implements Engine.
func (h *HexGen) Name() string { return "hexgen" }

// CacheCapacity implements Engine.
func (h *HexGen) CacheCapacity() int64 { return h.pipe.cacheCapacityBytes(h.cfg.Model) }

// Stages exposes the static layout for tests and experiments.
func (h *HexGen) Stages() []parallelizer.Stage { return h.pipe.stages }

// Run implements Engine.
func (h *HexGen) Run(reqs []workload.Request, horizon float64) (*Result, error) {
	return runStatic(h.Name(), h.cfg, h.est, h.pipe, h.CacheCapacity(), reqs, horizon)
}

// staticRuntime is the colocated continuous-batching loop shared shape
// with Hetis' instance, but with token-count cache accounting and no
// dynamic dispatch. Under chaos it is one replica of a staticFleet; a
// healthy run is a fleet of one, which behaves exactly like the original
// single runtime.
type staticRuntime struct {
	cfg  Config
	est  *perf.Estimator
	pipe *staticPipeline
	res  *Result

	fleet *staticFleet
	idx   int
	state replicaState
	// used is this replica's cache occupancy in tokens (the pipeline shape
	// is shared; occupancy is per replica).
	used int64
	// pending is the replica's single outstanding loop event (step,
	// prefill, or decode completion) — what a failure cancels.
	pending sim.Handle

	waiting *waitQueue
	running []*request
	byID    map[int64]*request
	busy    bool

	// Cached loop callbacks and per-iteration scratch: the batching loop
	// schedules one of these every iteration, and caching the method
	// values (plus reusing the batch/prompt buffers) makes an iteration
	// allocation-free — at most one loop event is pending per replica, so
	// a single buffer per runtime is safe.
	stepFn        func(*sim.Simulator)
	prefillDoneFn func(*sim.Simulator)
	decodeDoneFn  func(*sim.Simulator)
	prefillBatch  []*request
	promptBuf     []int
}

// load is the replica's in-system request count, the routing key.
func (rt *staticRuntime) load() int { return len(rt.byID) + rt.waiting.len() }

func (rt *staticRuntime) kick(s *sim.Simulator) {
	if rt.busy {
		return
	}
	rt.busy = true
	rt.pending = s.After(0, "hexgen-step", rt.stepFn)
}

func (rt *staticRuntime) step(s *sim.Simulator) {
	if rt.tryPrefill(s) {
		return
	}
	if rt.tryDecode(s) {
		return
	}
	rt.busy = false
}

func (rt *staticRuntime) tryPrefill(s *sim.Simulator) bool {
	cfg := rt.cfg
	admitted := rt.prefillBatch[:0]
	tokens := 0
	for rt.waiting.len() > 0 &&
		len(admitted) < cfg.MaxPrefillRequests &&
		len(rt.running)+len(admitted) < cfg.MaxRunning {
		r := rt.waiting.peek()
		ctx := int64(r.restartCtx)
		if rt.fleet.ctl.tiered() && rt.used+ctx > rt.pipe.tokenCap && len(admitted) == 0 {
			rt.preemptFor(s, r, ctx)
		}
		if rt.used+ctx > rt.pipe.tokenCap {
			if len(rt.running) == 0 && len(admitted) == 0 && ctx > rt.pipe.tokenCap {
				rt.waiting.pop() // can never fit
				rt.res.Trace.Addf(s.Now(), trace.KindEviction, r.wl.ID, -1, 0, "dropped: exceeds cache")
				rt.fleet.dropAdmitted(s, r)
				continue
			}
			break
		}
		if tokens+r.prefillLen() > cfg.MaxPrefillTokens && len(admitted) > 0 {
			break
		}
		rt.waiting.pop()
		rt.used += ctx
		tokens += r.prefillLen()
		admitted = append(admitted, r)
		rt.byID[r.wl.ID] = r
	}
	rt.prefillBatch = admitted
	if len(admitted) == 0 {
		return false
	}
	prompts := rt.promptBuf[:0]
	for _, r := range admitted {
		prompts = append(prompts, r.prefillLen())
	}
	rt.promptBuf = prompts
	dt := rt.pipe.prefillTime(rt.est, cfg, prompts)
	rt.pending = s.After(dt, "hexgen-prefill", rt.prefillDoneFn)
	return true
}

// prefillDone is the prefill-completion callback over the batch stashed in
// prefillBatch (only one loop event is ever pending, so the batch cannot
// be overwritten before it fires).
func (rt *staticRuntime) prefillDone(s *sim.Simulator) {
	for _, r := range rt.prefillBatch {
		if r.firstTok == 0 {
			r.firstTok = s.Now()
		}
		if r.generated == 0 {
			r.generated = 1
			rt.used++ // cache of the first generated token
		}
		r.hauled = false
		if r.done() {
			rt.finishDeferred(s, r)
		} else {
			rt.running = append(rt.running, r)
		}
	}
	rt.fleet.flushFinishes()
	rt.step(s)
}

// preemptFor evicts strictly-lower-priority running work until ctx tokens
// fit (multi-tier chaos only): the victims requeue — preemption costs
// latency, not a completion.
func (rt *staticRuntime) preemptFor(s *sim.Simulator, r *request, ctx int64) {
	f := rt.fleet
	for rt.used+ctx > rt.pipe.tokenCap {
		idx := -1
		for i, v := range rt.running {
			if v.prio >= r.prio {
				continue
			}
			if idx == -1 {
				idx = i
				continue
			}
			b := rt.running[idx]
			if v.prio < b.prio || (v.prio == b.prio && v.seq > b.seq) {
				idx = i
			}
		}
		if idx < 0 {
			return
		}
		v := rt.running[idx]
		rt.running = append(rt.running[:idx], rt.running[idx+1:]...)
		rt.used -= int64(v.contextLen())
		v.evicted = true
		v.restartCtx = v.contextLen()
		v.hauled = false
		delete(rt.byID, v.wl.ID)
		rt.waiting.push(v)
		f.ctl.notePreempt(s, v)
	}
}

func (rt *staticRuntime) tryDecode(s *sim.Simulator) bool {
	if len(rt.running) == 0 {
		return false
	}
	var ctxTokens int64
	for _, r := range rt.running {
		ctxTokens += int64(r.contextLen())
	}
	dt, dense, attn := rt.pipe.decodeTime(rt.est, rt.cfg, len(rt.running), ctxTokens)
	rt.res.DenseTimes = append(rt.res.DenseTimes, dense)
	rt.res.AttnTimes = append(rt.res.AttnTimes, attn)
	rt.pending = s.After(dt, "hexgen-decode", rt.decodeDoneFn)
	return true
}

// decodeDone is the decode-completion callback.
func (rt *staticRuntime) decodeDone(s *sim.Simulator) {
	rt.afterDecode(s)
	rt.step(s)
}

// victimIdx picks the eviction victim among running requests: globally
// newest (LIFO) normally; under multi-tier chaos, lowest priority first
// and newest within a priority.
func (rt *staticRuntime) victimIdx() int {
	best := 0
	if rt.fleet.ctl.tiered() {
		for i, r := range rt.running {
			b := rt.running[best]
			if r.prio != b.prio {
				if r.prio < b.prio {
					best = i
				}
				continue
			}
			if r.seq > b.seq {
				best = i
			}
		}
		return best
	}
	for i, r := range rt.running {
		if r.seq > rt.running[best].seq {
			best = i
		}
	}
	return best
}

func (rt *staticRuntime) afterDecode(s *sim.Simulator) {
	still := rt.running[:0]
	for _, r := range rt.running {
		r.generated++
		rt.used++
		if r.done() {
			rt.finishDeferred(s, r)
			continue
		}
		still = append(still, r)
	}
	rt.running = still
	rt.fleet.flushFinishes()
	// Cache overflow → LIFO preemption with recomputation.
	for rt.used > rt.pipe.tokenCap && len(rt.running) > 0 {
		victimIdx := rt.victimIdx()
		v := rt.running[victimIdx]
		rt.running = append(rt.running[:victimIdx], rt.running[victimIdx+1:]...)
		rt.used -= int64(v.contextLen())
		v.evicted = true
		v.restartCtx = v.contextLen()
		v.hauled = false
		rt.waiting.pushFront(v)
		delete(rt.byID, v.wl.ID)
		rt.res.Evictions++
		rt.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindEviction, Request: v.wl.ID})
	}
	if used := rt.used * rt.cfg.Model.KVBytesPerToken(); used > rt.res.PeakCacheUsed {
		rt.res.PeakCacheUsed = used
	}
}

// finishDeferred releases the replica's cache accounting and hands the
// completion to the fleet with the sink append batched (see
// fleetCore.finishDeferred); the iteration loops use it and flush once
// per batch.
func (rt *staticRuntime) finishDeferred(s *sim.Simulator, r *request) {
	rt.used -= int64(r.contextLen())
	if rt.used < 0 {
		rt.used = 0
	}
	delete(rt.byID, r.wl.ID)
	rt.fleet.finishDeferred(s, r)
}
