package engine

import (
	"fmt"

	"hetis/internal/parallelizer"
	"hetis/internal/perf"
	"hetis/internal/sim"
	"hetis/internal/trace"
	"hetis/internal/workload"
)

// HexGen is the parameter-splitting baseline (§7.1): a single static
// pipeline whose stages hold asymmetric layer counts balanced by device
// throughput; prefill and decode share the same workers. Its weakness is
// exactly what §2.3 describes — cache capacity is bounded by the tightest
// stage and low-end GPUs drag every dense module.
type HexGen struct {
	cfg  Config
	est  *perf.Estimator
	pipe *staticPipeline
}

// NewHexGen builds the baseline over the whole cluster.
func NewHexGen(cfg Config) (*HexGen, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	est := perf.New(cfg.Model)
	pipe, err := buildStaticPipeline(cfg, est, cfg.Cluster, cfg.Cluster.DevicesByType(), 32)
	if err != nil {
		return nil, fmt.Errorf("engine: hexgen: %w", err)
	}
	return &HexGen{cfg: cfg, est: est, pipe: pipe}, nil
}

// Name implements Engine.
func (h *HexGen) Name() string { return "hexgen" }

// CacheCapacity implements Engine.
func (h *HexGen) CacheCapacity() int64 { return h.pipe.cacheCapacityBytes(h.cfg.Model) }

// Stages exposes the static layout for tests and experiments.
func (h *HexGen) Stages() []parallelizer.Stage { return h.pipe.stages }

// Run implements Engine.
func (h *HexGen) Run(reqs []workload.Request, horizon float64) (*Result, error) {
	reqs = workload.Truncate(reqs, h.cfg.Model.MaxSeqLen) // clamp to the context window
	sink, rec := h.cfg.newRunSink()
	res := &Result{
		Engine:        h.Name(),
		Sink:          sink,
		Recorder:      rec,
		Trace:         h.cfg.newTraceLog(),
		CacheCapacity: h.CacheCapacity(),
	}
	iters := moduleSeriesCap(reqs)
	res.DenseTimes = make([]float64, 0, iters)
	res.AttnTimes = make([]float64, 0, iters)
	h.pipe.usedTokens = 0 // fresh run
	rt := &staticRuntime{
		cfg:  h.cfg,
		est:  h.est,
		pipe: h.pipe,
		res:  res,
		byID: map[int64]*request{},
		seq:  map[int64]int64{},
	}
	s := sim.New()
	s.MaxEvents = h.cfg.MaxSimEvents(len(reqs))
	scheduleArrivals(s, reqs, func(s *sim.Simulator, r *request) {
		rt.waiting.push(r)
		rt.seq[r.wl.ID] = rt.nextSeq
		rt.nextSeq++
		res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindArrival, Request: r.wl.ID})
		rt.kick(s)
	})
	if err := s.Run(horizon); err != nil {
		return nil, err
	}
	res.Horizon = s.Now()
	res.Events = s.Executed
	return res, nil
}

// staticRuntime is the colocated continuous-batching loop shared shape
// with Hetis' instance, but with token-count cache accounting and no
// dynamic dispatch.
type staticRuntime struct {
	cfg  Config
	est  *perf.Estimator
	pipe *staticPipeline
	res  *Result

	waiting queue
	running []*request
	byID    map[int64]*request
	seq     map[int64]int64
	nextSeq int64
	busy    bool
}

func (rt *staticRuntime) kick(s *sim.Simulator) {
	if rt.busy {
		return
	}
	rt.busy = true
	s.After(0, "hexgen-step", rt.step)
}

func (rt *staticRuntime) step(s *sim.Simulator) {
	if rt.tryPrefill(s) {
		return
	}
	if rt.tryDecode(s) {
		return
	}
	rt.busy = false
}

func (rt *staticRuntime) tryPrefill(s *sim.Simulator) bool {
	cfg := rt.cfg
	var admitted []*request
	tokens := 0
	for rt.waiting.len() > 0 &&
		len(admitted) < cfg.MaxPrefillRequests &&
		len(rt.running)+len(admitted) < cfg.MaxRunning {
		r := rt.waiting.peek()
		ctx := int64(r.restartCtx)
		if rt.pipe.usedTokens+ctx > rt.pipe.tokenCap {
			if len(rt.running) == 0 && len(admitted) == 0 && ctx > rt.pipe.tokenCap {
				rt.waiting.pop() // can never fit
				rt.res.Trace.Addf(s.Now(), trace.KindEviction, r.wl.ID, -1, 0, "dropped: exceeds cache")
				continue
			}
			break
		}
		if tokens+int(ctx) > cfg.MaxPrefillTokens && len(admitted) > 0 {
			break
		}
		rt.waiting.pop()
		rt.pipe.usedTokens += ctx
		tokens += int(ctx)
		admitted = append(admitted, r)
		rt.byID[r.wl.ID] = r
	}
	if len(admitted) == 0 {
		return false
	}
	prompts := make([]int, len(admitted))
	for i, r := range admitted {
		prompts[i] = r.restartCtx
	}
	dt := rt.pipe.prefillTime(rt.est, cfg, prompts)
	s.After(dt, "hexgen-prefill", func(s *sim.Simulator) {
		for _, r := range admitted {
			if r.firstTok == 0 {
				r.firstTok = s.Now()
			}
			if r.generated == 0 {
				r.generated = 1
				rt.pipe.usedTokens++ // cache of the first generated token
			}
			if r.done() {
				rt.finish(s, r)
			} else {
				rt.running = append(rt.running, r)
			}
		}
		rt.step(s)
	})
	return true
}

func (rt *staticRuntime) tryDecode(s *sim.Simulator) bool {
	if len(rt.running) == 0 {
		return false
	}
	var ctxTokens int64
	for _, r := range rt.running {
		ctxTokens += int64(r.contextLen())
	}
	dt, dense, attn := rt.pipe.decodeTime(rt.est, rt.cfg, len(rt.running), ctxTokens)
	rt.res.DenseTimes = append(rt.res.DenseTimes, dense)
	rt.res.AttnTimes = append(rt.res.AttnTimes, attn)
	s.After(dt, "hexgen-decode", func(s *sim.Simulator) {
		rt.afterDecode(s)
		rt.step(s)
	})
	return true
}

func (rt *staticRuntime) afterDecode(s *sim.Simulator) {
	var still []*request
	for _, r := range rt.running {
		r.generated++
		rt.pipe.usedTokens++
		if r.done() {
			rt.finish(s, r)
			continue
		}
		still = append(still, r)
	}
	rt.running = still
	// Cache overflow → LIFO preemption with recomputation.
	for rt.pipe.usedTokens > rt.pipe.tokenCap && len(rt.running) > 0 {
		victimIdx := 0
		for i, r := range rt.running {
			if rt.seq[r.wl.ID] > rt.seq[rt.running[victimIdx].wl.ID] {
				victimIdx = i
			}
		}
		v := rt.running[victimIdx]
		rt.running = append(rt.running[:victimIdx], rt.running[victimIdx+1:]...)
		rt.pipe.usedTokens -= int64(v.contextLen())
		v.evicted = true
		v.restartCtx = v.contextLen()
		rt.waiting.pushFront(v)
		delete(rt.byID, v.wl.ID)
		rt.res.Evictions++
		rt.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindEviction, Request: v.wl.ID})
	}
	if used := rt.pipe.usedTokens * rt.cfg.Model.KVBytesPerToken(); used > rt.res.PeakCacheUsed {
		rt.res.PeakCacheUsed = used
	}
}

func (rt *staticRuntime) finish(s *sim.Simulator, r *request) {
	rt.pipe.usedTokens -= int64(r.contextLen())
	if rt.pipe.usedTokens < 0 {
		rt.pipe.usedTokens = 0
	}
	delete(rt.byID, r.wl.ID)
	recordFinish(rt.res.Sink, r, s.Now())
	rt.res.Completed++
	rt.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindFinish, Request: r.wl.ID})
}
