package engine

import (
	"fmt"
	"strings"

	"hetis/internal/workload"
)

// Names lists the buildable serving engines in comparison order. It is
// the single source of the engine-name vocabulary; sweep grids and
// scenario specs validate against it.
var Names = []string{"hetis", "hexgen", "splitwise", "vllm"}

// Known reports whether name is a buildable engine.
func Known(name string) bool {
	for _, n := range Names {
		if n == name {
			return true
		}
	}
	return false
}

// NewByName constructs the named engine for the config, planning Hetis
// for the given trace (the other engines ignore reqs).
func NewByName(name string, cfg Config, reqs []workload.Request) (Engine, error) {
	switch name {
	case "hetis":
		plan, err := PlanForWorkload(cfg, reqs)
		if err != nil {
			return nil, err
		}
		return NewHetis(cfg, plan)
	case "hexgen":
		return NewHexGen(cfg)
	case "splitwise":
		return NewSplitwise(cfg)
	case "vllm":
		return NewVLLM(cfg)
	}
	return nil, fmt.Errorf("engine: unknown engine %q (known: %s)", name, strings.Join(Names, ", "))
}
