package engine

import (
	"fmt"
	"sort"

	"hetis/internal/hardware"
	"hetis/internal/metrics"
	"hetis/internal/parallelizer"
	"hetis/internal/perf"
	"hetis/internal/sim"
	"hetis/internal/trace"
	"hetis/internal/workload"
)

// Splitwise is the phase-splitting baseline (§7.1): high-end GPUs form a
// dedicated prefill instance, the rest a decode pipeline, and every request
// hands its KV cache across the network between the phases. Both instances
// hold a full copy of the model — the memory inefficiency of Fig. 1(a).
type Splitwise struct {
	cfg     Config
	est     *perf.Estimator
	prefill *staticPipeline
	decode  *staticPipeline
}

// NewSplitwise plans the phase split: the top GPU tier preferably serves
// prefill alone; if the remaining devices cannot hold the model weights,
// top-tier devices move to the decode side until both instances fit (the
// prefill side always keeps at least one device).
func NewSplitwise(cfg Config) (*Splitwise, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	est := perf.New(cfg.Model)
	groups := cfg.Cluster.DevicesByType()
	if len(groups) < 2 {
		return nil, fmt.Errorf("engine: splitwise needs at least two GPU types (or split within one type)")
	}
	top := groups[0]
	rest := groups[1:]

	for keep := len(top.IDs); keep >= 1; keep /= 2 {
		prefillGroup := hardware.TypeGroup{Spec: top.Spec, IDs: top.IDs[:keep]}
		decodeGroups := append([]hardware.TypeGroup{}, rest...)
		if keep < len(top.IDs) {
			decodeGroups = append([]hardware.TypeGroup{{Spec: top.Spec, IDs: top.IDs[keep:]}}, decodeGroups...)
		}
		pre, errP := buildStaticPipeline(cfg, est, cfg.Cluster, []hardware.TypeGroup{prefillGroup}, 8)
		dec, errD := buildStaticPipeline(cfg, est, cfg.Cluster, decodeGroups, 32)
		if errP == nil && errD == nil {
			return &Splitwise{cfg: cfg, est: est, prefill: pre, decode: dec}, nil
		}
		if keep == 1 {
			if errP != nil {
				return nil, fmt.Errorf("engine: splitwise prefill side: %w", errP)
			}
			return nil, fmt.Errorf("engine: splitwise decode side: %w", errD)
		}
	}
	return nil, fmt.Errorf("engine: splitwise could not split %s", cfg.Model.Name)
}

// Name implements Engine.
func (sw *Splitwise) Name() string { return "splitwise" }

// CacheCapacity implements Engine: only the decode side hosts long-lived
// KV cache; the prefill side's space is transient and does not add serving
// capacity (§2.3).
func (sw *Splitwise) CacheCapacity() int64 { return sw.decode.cacheCapacityBytes(sw.cfg.Model) }

// PrefillStages and DecodeStages expose the layout.
func (sw *Splitwise) PrefillStages() []parallelizer.Stage { return sw.prefill.stages }

// DecodeStages exposes the decode pipeline layout.
func (sw *Splitwise) DecodeStages() []parallelizer.Stage { return sw.decode.stages }

// Run implements Engine.
func (sw *Splitwise) Run(reqs []workload.Request, horizon float64) (*Result, error) {
	reqs = workload.Truncate(reqs, sw.cfg.Model.MaxSeqLen) // clamp to the context window
	sink, rec := sw.cfg.newRunSink(len(reqs))
	res := &Result{
		Engine:        sw.Name(),
		Sink:          sink,
		Recorder:      rec,
		Trace:         sw.cfg.newTraceLog(),
		CacheCapacity: sw.CacheCapacity(),
	}
	iters := moduleSeriesCap(reqs)
	res.DenseTimes = make([]float64, 0, iters)
	res.AttnTimes = make([]float64, 0, iters)
	chaos := sw.cfg.Chaos.normalize()
	var ctl *chaosCtl
	runSink := sink
	if chaos != nil {
		ctl = newChaosCtl(chaos, res, res.Trace, sink)
		runSink = ctl
	}
	f := newSplitwiseFleet(sw, res, ctl, runSink, chaos)
	if ctl != nil {
		ctl.bind(f)
	}
	s := sim.New()
	s.MaxEvents = sw.cfg.MaxSimEvents(len(reqs))
	ctl.start(s)
	scheduleArrivals(s, reqs, func(s *sim.Simulator, r *request) {
		if !f.admitArrival(s, r) {
			return
		}
		f.route(s, r)
	})
	if err := s.Run(horizon); err != nil {
		return nil, err
	}
	res.Horizon = s.Now()
	res.Events = s.Executed
	res.Queued = f.inSystem
	return res, nil
}

// splitwiseFleet replicates the prefill/decode pair: a replica is one
// whole phase-split deployment, so a failure takes down both sides and a
// scale-up adds another pair.
type splitwiseFleet struct {
	fleetCore
	sw       *Splitwise
	replicas []*splitwiseRuntime
}

func newSplitwiseFleet(sw *Splitwise, res *Result, ctl *chaosCtl, sink metrics.Sink, chaos *ChaosConfig) *splitwiseFleet {
	width, total := 1, 1
	if chaos != nil {
		width = chaos.initialReplicas()
		total = chaos.maxReplicas()
	}
	f := &splitwiseFleet{fleetCore: newFleetCore(sw.cfg, res, ctl, sink), sw: sw}
	for i := 0; i < total; i++ {
		rt := &splitwiseRuntime{
			sw:       sw,
			res:      res,
			fleet:    f,
			idx:      i,
			state:    replicaParked,
			prefillQ: newWaitQueue(ctl.tiered()),
			decodeQ:  newWaitQueue(ctl.tiered()),
			handoffs: map[int64]*request{},
		}
		if i < width {
			rt.state = replicaActive
		}
		f.replicas = append(f.replicas, rt)
	}
	return f
}

// activeCount implements chaosFleet.
func (f *splitwiseFleet) activeCount() int {
	n := 0
	for _, rt := range f.replicas {
		if rt.state == replicaActive {
			n++
		}
	}
	return n
}

// route sends a request to the least-loaded active replica's prefill
// queue, or parks it when no replica is serving.
func (f *splitwiseFleet) route(s *sim.Simulator, r *request) {
	var best *splitwiseRuntime
	for _, rt := range f.replicas {
		if rt.state != replicaActive {
			continue
		}
		if best == nil || rt.load() < best.load() {
			best = rt
		}
	}
	if best == nil {
		f.parked.push(r)
		return
	}
	best.prefillQ.push(r)
	best.kickPrefill(s)
}

// deactivate takes a replica pair out of service. Requests holding KV on
// the decode side (running or transferred) haul it to survivors under
// haul mode; everything else — waiting, mid-prefill, mid-handoff — loses
// its progress and re-prefills.
func (f *splitwiseFleet) deactivate(s *sim.Simulator, rt *splitwiseRuntime, haul bool, to replicaState) {
	rt.state = to
	if rt.prefillBusy {
		s.Cancel(rt.prefillPending)
		rt.prefillBusy = false
	}
	if rt.decodeBusy {
		s.Cancel(rt.decodePending)
		rt.decodeBusy = false
	}
	rt.handoffGroup.CancelAll(s)

	resident := map[int64]bool{}
	var victims []*request
	for _, r := range rt.running {
		resident[r.wl.ID] = true
		victims = append(victims, r)
	}
	for rt.decodeQ.len() > 0 {
		r := rt.decodeQ.pop()
		resident[r.wl.ID] = true
		victims = append(victims, r)
	}
	for _, r := range rt.handoffs {
		victims = append(victims, r)
	}
	victims = append(victims, rt.prefillBatch...)
	for rt.prefillQ.len() > 0 {
		victims = append(victims, rt.prefillQ.pop())
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].seq < victims[j].seq })
	for _, r := range victims {
		r.evicted = true
		r.restartCtx = r.contextLen()
		if haul && resident[r.wl.ID] {
			r.hauled = true
			f.haulTo(s, r, f.routeHauled)
			continue
		}
		f.loseVictim(s, r)
		f.route(s, r)
	}
	rt.running = rt.running[:0]
	rt.prefillBatch = nil
	rt.handoffs = map[int64]*request{}
	rt.usedDecode = 0
	rt.inPrefill = 0
}

// routeHauled lands a hauled request straight on a survivor's decode
// queue: its KV moved with it, so it skips the prefill phase.
func (f *splitwiseFleet) routeHauled(s *sim.Simulator, r *request) {
	var best *splitwiseRuntime
	for _, rt := range f.replicas {
		if rt.state != replicaActive {
			continue
		}
		if best == nil || rt.load() < best.load() {
			best = rt
		}
	}
	if best == nil {
		r.hauled = false // park loses the staged KV
		f.parked.push(r)
		return
	}
	r.hauled = false // KV is resident again once the transfer lands
	best.decodeQ.push(r)
	best.kickDecode(s)
}

// kill implements chaosFleet.
func (f *splitwiseFleet) kill(s *sim.Simulator, replica int, haul bool) {
	if replica >= len(f.replicas) {
		return
	}
	rt := f.replicas[replica]
	if rt.state != replicaActive {
		return
	}
	f.deactivate(s, rt, haul, replicaFailed)
}

// revive implements chaosFleet.
func (f *splitwiseFleet) revive(s *sim.Simulator, replica int) {
	if replica >= len(f.replicas) {
		return
	}
	rt := f.replicas[replica]
	if rt.state != replicaFailed {
		return
	}
	f.activate(s, rt)
}

// activate brings a replica into service, hands it the parked backlog,
// and steals queued prefill work from busier replicas (decode queues stay
// put — their KV is resident where it is).
func (f *splitwiseFleet) activate(s *sim.Simulator, rt *splitwiseRuntime) {
	rt.state = replicaActive
	for f.parked.len() > 0 {
		rt.prefillQ.push(f.parked.pop())
	}
	for {
		var donor *splitwiseRuntime
		for _, o := range f.replicas {
			if o == rt || o.state != replicaActive {
				continue
			}
			if donor == nil || o.prefillQ.len() > donor.prefillQ.len() {
				donor = o
			}
		}
		if donor == nil || donor.prefillQ.len() <= rt.prefillQ.len()+1 {
			break
		}
		rt.prefillQ.push(donor.prefillQ.pop())
	}
	rt.kickPrefill(s)
}

// scaleUp implements chaosFleet.
func (f *splitwiseFleet) scaleUp(s *sim.Simulator) bool {
	for _, rt := range f.replicas {
		if rt.state == replicaParked {
			f.activate(s, rt)
			return true
		}
	}
	return false
}

// scaleDown implements chaosFleet.
func (f *splitwiseFleet) scaleDown(s *sim.Simulator) bool {
	if f.activeCount() <= 1 {
		return false
	}
	for i := len(f.replicas) - 1; i >= 0; i-- {
		if f.replicas[i].state == replicaActive {
			f.deactivate(s, f.replicas[i], true, replicaParked)
			return true
		}
	}
	return false
}

type splitwiseRuntime struct {
	sw  *Splitwise
	res *Result

	fleet *splitwiseFleet
	idx   int
	state replicaState

	prefillQ    *waitQueue
	prefillBusy bool
	// prefillPending is the prefill loop's single outstanding event;
	// prefillBatch the requests inside an in-flight prefill iteration.
	prefillPending sim.Handle
	prefillBatch   []*request
	// inPrefill tracks tokens resident on the prefill side.
	inPrefill int64

	// transferFree is when the prefill→decode link next frees up;
	// transfers of different requests serialize on it. Handoff events are
	// tracked in handoffGroup (with the requests in handoffs) so a failure
	// can abort the transfers in flight.
	transferFree float64
	handoffGroup sim.Group
	handoffs     map[int64]*request

	decodeQ *waitQueue
	running []*request
	// usedDecode is the decode side's cache occupancy in tokens.
	usedDecode    int64
	decodeBusy    bool
	decodePending sim.Handle
}

// load is the replica's in-system request count, the routing key.
func (rt *splitwiseRuntime) load() int {
	return rt.prefillQ.len() + len(rt.prefillBatch) + len(rt.handoffs) + rt.decodeQ.len() + len(rt.running)
}

func (rt *splitwiseRuntime) kickPrefill(s *sim.Simulator) {
	if rt.prefillBusy {
		return
	}
	rt.prefillBusy = true
	rt.prefillPending = s.After(0, "sw-prefill-step", rt.prefillStep)
}

func (rt *splitwiseRuntime) prefillStep(s *sim.Simulator) {
	cfg := rt.sw.cfg
	var admitted []*request
	tokens := 0
	for rt.prefillQ.len() > 0 && len(admitted) < cfg.MaxPrefillRequests {
		r := rt.prefillQ.peek()
		ctx := int64(r.restartCtx)
		if ctx > rt.sw.prefill.tokenCap {
			rt.prefillQ.pop() // cannot ever prefill
			rt.res.Trace.Addf(s.Now(), trace.KindEviction, r.wl.ID, -1, 0, "dropped: exceeds prefill cache")
			rt.fleet.dropAdmitted(s, r)
			continue
		}
		if rt.inPrefill+ctx > rt.sw.prefill.tokenCap && len(admitted) > 0 {
			break
		}
		if tokens+int(ctx) > cfg.MaxPrefillTokens && len(admitted) > 0 {
			break
		}
		rt.prefillQ.pop()
		rt.inPrefill += ctx
		tokens += int(ctx)
		admitted = append(admitted, r)
	}
	if len(admitted) == 0 {
		rt.prefillBusy = false
		return
	}
	prompts := make([]int, len(admitted))
	for i, r := range admitted {
		prompts[i] = r.restartCtx
	}
	rt.prefillBatch = admitted
	dt := rt.sw.prefill.prefillTime(rt.sw.est, cfg, prompts)
	rt.prefillPending = s.After(dt, "sw-prefill-done", func(s *sim.Simulator) {
		rt.prefillBatch = nil
		for _, r := range admitted {
			if r.firstTok == 0 {
				r.firstTok = s.Now()
			}
			if r.generated == 0 {
				r.generated = 1
			}
			rt.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindPrefill, Request: r.wl.ID, Value: float64(r.restartCtx)})
			if r.done() {
				rt.inPrefill -= int64(r.restartCtx)
				rt.fleet.finishDeferred(s, r)
				continue
			}
			rt.scheduleHandoff(s, r)
		}
		rt.fleet.flushFinishes()
		// The next prefill batch waits for this batch's KV handoffs to
		// drain the NIC: the phase split forces a full-context cache
		// transfer per request, which interferes with prefill (§2.3).
		if rt.transferFree > s.Now() {
			rt.prefillPending = s.Schedule(rt.transferFree, "sw-prefill-nic", rt.prefillStep)
			return
		}
		rt.prefillStep(s)
	})
}

// scheduleHandoff ships the request's KV cache to the decode instance over
// the cluster interconnect; transfers serialize on the link.
func (rt *splitwiseRuntime) scheduleHandoff(s *sim.Simulator, r *request) {
	m := rt.sw.cfg.Model
	bytes := int64(r.contextLen()) * m.KVBytesPerToken()
	link := rt.sw.cfg.Cluster.InterLink
	start := s.Now()
	if rt.transferFree > start {
		start = rt.transferFree
	}
	done := start + perf.P2PTime(link, bytes)
	rt.transferFree = done
	rt.res.Migrations++
	rt.res.MigratedBytes += bytes
	rt.handoffs[r.wl.ID] = r
	rt.handoffGroup.Track(s, s.Schedule(done, "sw-handoff", func(s *sim.Simulator) {
		delete(rt.handoffs, r.wl.ID)
		rt.inPrefill -= int64(r.restartCtx)
		rt.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindMigration, Request: r.wl.ID, Value: float64(bytes)})
		rt.decodeQ.push(r)
		rt.kickDecode(s)
		rt.kickPrefill(s)
	}))
}

func (rt *splitwiseRuntime) kickDecode(s *sim.Simulator) {
	if rt.decodeBusy {
		return
	}
	rt.decodeBusy = true
	rt.decodePending = s.After(0, "sw-decode-step", rt.decodeStep)
}

func (rt *splitwiseRuntime) decodeStep(s *sim.Simulator) {
	cfg := rt.sw.cfg
	dec := rt.sw.decode
	// Admit transferred requests while cache allows.
	for rt.decodeQ.len() > 0 && len(rt.running) < cfg.MaxRunning {
		r := rt.decodeQ.peek()
		ctx := int64(r.contextLen())
		if rt.fleet.ctl.tiered() && rt.usedDecode+ctx > dec.tokenCap && len(rt.running) > 0 {
			rt.preemptFor(s, r, ctx)
		}
		if rt.usedDecode+ctx > dec.tokenCap {
			if len(rt.running) == 0 && ctx > dec.tokenCap {
				rt.decodeQ.pop()
				rt.res.Trace.Addf(s.Now(), trace.KindEviction, r.wl.ID, -1, 0, "dropped: exceeds decode cache")
				rt.fleet.dropAdmitted(s, r)
				continue
			}
			break
		}
		rt.decodeQ.pop()
		rt.usedDecode += ctx
		rt.running = append(rt.running, r)
	}
	if len(rt.running) == 0 {
		rt.decodeBusy = false
		return
	}
	var ctxTokens int64
	for _, r := range rt.running {
		ctxTokens += int64(r.contextLen())
	}
	dt, dense, attn := dec.decodeTime(rt.sw.est, cfg, len(rt.running), ctxTokens)
	rt.res.DenseTimes = append(rt.res.DenseTimes, dense)
	rt.res.AttnTimes = append(rt.res.AttnTimes, attn)
	rt.decodePending = s.After(dt, "sw-decode-done", func(s *sim.Simulator) {
		rt.afterDecode(s)
		rt.decodeStep(s)
	})
}

// preemptFor evicts strictly-lower-priority running work until ctx tokens
// fit on the decode cache (multi-tier chaos only): victims restart from
// the prefill phase and re-transfer.
func (rt *splitwiseRuntime) preemptFor(s *sim.Simulator, r *request, ctx int64) {
	f := rt.fleet
	dec := rt.sw.decode
	for rt.usedDecode+ctx > dec.tokenCap {
		idx := -1
		for i, v := range rt.running {
			if v.prio >= r.prio {
				continue
			}
			if idx == -1 {
				idx = i
				continue
			}
			b := rt.running[idx]
			if v.prio < b.prio || (v.prio == b.prio && v.seq > b.seq) {
				idx = i
			}
		}
		if idx < 0 {
			return
		}
		v := rt.running[idx]
		rt.running = append(rt.running[:idx], rt.running[idx+1:]...)
		rt.usedDecode -= int64(v.contextLen())
		v.evicted = true
		v.restartCtx = v.contextLen()
		v.hauled = false
		rt.prefillQ.push(v)
		f.ctl.notePreempt(s, v)
		rt.kickPrefill(s)
	}
}

// victimIdx picks the eviction victim among running requests: globally
// newest (LIFO) normally; under multi-tier chaos, lowest priority first
// and newest within a priority.
func (rt *splitwiseRuntime) victimIdx() int {
	best := 0
	if rt.fleet.ctl.tiered() {
		for i, r := range rt.running {
			b := rt.running[best]
			if r.prio != b.prio {
				if r.prio < b.prio {
					best = i
				}
				continue
			}
			if r.seq > b.seq {
				best = i
			}
		}
		return best
	}
	for i, r := range rt.running {
		if r.seq > rt.running[best].seq {
			best = i
		}
	}
	return best
}

func (rt *splitwiseRuntime) afterDecode(s *sim.Simulator) {
	dec := rt.sw.decode
	still := rt.running[:0]
	for _, r := range rt.running {
		r.generated++
		rt.usedDecode++
		if r.done() {
			rt.usedDecode -= int64(r.contextLen())
			rt.fleet.finishDeferred(s, r)
			continue
		}
		still = append(still, r)
	}
	rt.running = still
	rt.fleet.flushFinishes()
	// Cache overflow → LIFO preemption; victims must re-prefill and
	// re-transfer.
	for rt.usedDecode > dec.tokenCap && len(rt.running) > 0 {
		victimIdx := rt.victimIdx()
		v := rt.running[victimIdx]
		rt.running = append(rt.running[:victimIdx], rt.running[victimIdx+1:]...)
		rt.usedDecode -= int64(v.contextLen())
		v.evicted = true
		v.restartCtx = v.contextLen()
		v.hauled = false
		rt.prefillQ.pushFront(v)
		rt.res.Evictions++
		rt.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindEviction, Request: v.wl.ID})
		rt.kickPrefill(s)
	}
	if rt.usedDecode < 0 {
		rt.usedDecode = 0
	}
	if used := rt.usedDecode * rt.sw.cfg.Model.KVBytesPerToken(); used > rt.res.PeakCacheUsed {
		rt.res.PeakCacheUsed = used
	}
}
