package engine

import (
	"fmt"

	"hetis/internal/hardware"
	"hetis/internal/parallelizer"
	"hetis/internal/perf"
	"hetis/internal/sim"
	"hetis/internal/trace"
	"hetis/internal/workload"
)

// Splitwise is the phase-splitting baseline (§7.1): high-end GPUs form a
// dedicated prefill instance, the rest a decode pipeline, and every request
// hands its KV cache across the network between the phases. Both instances
// hold a full copy of the model — the memory inefficiency of Fig. 1(a).
type Splitwise struct {
	cfg     Config
	est     *perf.Estimator
	prefill *staticPipeline
	decode  *staticPipeline
}

// NewSplitwise plans the phase split: the top GPU tier preferably serves
// prefill alone; if the remaining devices cannot hold the model weights,
// top-tier devices move to the decode side until both instances fit (the
// prefill side always keeps at least one device).
func NewSplitwise(cfg Config) (*Splitwise, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	est := perf.New(cfg.Model)
	groups := cfg.Cluster.DevicesByType()
	if len(groups) < 2 {
		return nil, fmt.Errorf("engine: splitwise needs at least two GPU types (or split within one type)")
	}
	top := groups[0]
	rest := groups[1:]

	for keep := len(top.IDs); keep >= 1; keep /= 2 {
		prefillGroup := hardware.TypeGroup{Spec: top.Spec, IDs: top.IDs[:keep]}
		decodeGroups := append([]hardware.TypeGroup{}, rest...)
		if keep < len(top.IDs) {
			decodeGroups = append([]hardware.TypeGroup{{Spec: top.Spec, IDs: top.IDs[keep:]}}, decodeGroups...)
		}
		pre, errP := buildStaticPipeline(cfg, est, cfg.Cluster, []hardware.TypeGroup{prefillGroup}, 8)
		dec, errD := buildStaticPipeline(cfg, est, cfg.Cluster, decodeGroups, 32)
		if errP == nil && errD == nil {
			return &Splitwise{cfg: cfg, est: est, prefill: pre, decode: dec}, nil
		}
		if keep == 1 {
			if errP != nil {
				return nil, fmt.Errorf("engine: splitwise prefill side: %w", errP)
			}
			return nil, fmt.Errorf("engine: splitwise decode side: %w", errD)
		}
	}
	return nil, fmt.Errorf("engine: splitwise could not split %s", cfg.Model.Name)
}

// Name implements Engine.
func (sw *Splitwise) Name() string { return "splitwise" }

// CacheCapacity implements Engine: only the decode side hosts long-lived
// KV cache; the prefill side's space is transient and does not add serving
// capacity (§2.3).
func (sw *Splitwise) CacheCapacity() int64 { return sw.decode.cacheCapacityBytes(sw.cfg.Model) }

// PrefillStages and DecodeStages expose the layout.
func (sw *Splitwise) PrefillStages() []parallelizer.Stage { return sw.prefill.stages }

// DecodeStages exposes the decode pipeline layout.
func (sw *Splitwise) DecodeStages() []parallelizer.Stage { return sw.decode.stages }

// Run implements Engine.
func (sw *Splitwise) Run(reqs []workload.Request, horizon float64) (*Result, error) {
	reqs = workload.Truncate(reqs, sw.cfg.Model.MaxSeqLen) // clamp to the context window
	sink, rec := sw.cfg.newRunSink()
	res := &Result{
		Engine:        sw.Name(),
		Sink:          sink,
		Recorder:      rec,
		Trace:         sw.cfg.newTraceLog(),
		CacheCapacity: sw.CacheCapacity(),
	}
	iters := moduleSeriesCap(reqs)
	res.DenseTimes = make([]float64, 0, iters)
	res.AttnTimes = make([]float64, 0, iters)
	sw.prefill.usedTokens = 0 // fresh run
	sw.decode.usedTokens = 0
	rt := &splitwiseRuntime{sw: sw, res: res, seq: map[int64]int64{}}
	s := sim.New()
	s.MaxEvents = sw.cfg.MaxSimEvents(len(reqs))
	scheduleArrivals(s, reqs, func(s *sim.Simulator, r *request) {
		rt.prefillQ.push(r)
		rt.seq[r.wl.ID] = rt.nextSeq
		rt.nextSeq++
		res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindArrival, Request: r.wl.ID})
		rt.kickPrefill(s)
	})
	if err := s.Run(horizon); err != nil {
		return nil, err
	}
	res.Horizon = s.Now()
	res.Events = s.Executed
	return res, nil
}

type splitwiseRuntime struct {
	sw  *Splitwise
	res *Result

	prefillQ    queue
	prefillBusy bool
	// inPrefill tracks tokens resident on the prefill side.
	inPrefill int64

	// transferFree is when the prefill→decode link next frees up;
	// transfers of different requests serialize on it.
	transferFree float64

	decodeQ    queue
	running    []*request
	decodeBusy bool

	seq     map[int64]int64
	nextSeq int64
}

func (rt *splitwiseRuntime) kickPrefill(s *sim.Simulator) {
	if rt.prefillBusy {
		return
	}
	rt.prefillBusy = true
	s.After(0, "sw-prefill-step", rt.prefillStep)
}

func (rt *splitwiseRuntime) prefillStep(s *sim.Simulator) {
	cfg := rt.sw.cfg
	var admitted []*request
	tokens := 0
	for rt.prefillQ.len() > 0 && len(admitted) < cfg.MaxPrefillRequests {
		r := rt.prefillQ.peek()
		ctx := int64(r.restartCtx)
		if ctx > rt.sw.prefill.tokenCap {
			rt.prefillQ.pop() // cannot ever prefill
			rt.res.Trace.Addf(s.Now(), trace.KindEviction, r.wl.ID, -1, 0, "dropped: exceeds prefill cache")
			continue
		}
		if rt.inPrefill+ctx > rt.sw.prefill.tokenCap && len(admitted) > 0 {
			break
		}
		if tokens+int(ctx) > cfg.MaxPrefillTokens && len(admitted) > 0 {
			break
		}
		rt.prefillQ.pop()
		rt.inPrefill += ctx
		tokens += int(ctx)
		admitted = append(admitted, r)
	}
	if len(admitted) == 0 {
		rt.prefillBusy = false
		return
	}
	prompts := make([]int, len(admitted))
	for i, r := range admitted {
		prompts[i] = r.restartCtx
	}
	dt := rt.sw.prefill.prefillTime(rt.sw.est, cfg, prompts)
	s.After(dt, "sw-prefill-done", func(s *sim.Simulator) {
		for _, r := range admitted {
			if r.firstTok == 0 {
				r.firstTok = s.Now()
			}
			if r.generated == 0 {
				r.generated = 1
			}
			rt.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindPrefill, Request: r.wl.ID, Value: float64(r.restartCtx)})
			if r.done() {
				rt.inPrefill -= int64(r.restartCtx)
				recordFinish(rt.res.Sink, r, s.Now())
				rt.res.Completed++
				continue
			}
			rt.scheduleHandoff(s, r)
		}
		// The next prefill batch waits for this batch's KV handoffs to
		// drain the NIC: the phase split forces a full-context cache
		// transfer per request, which interferes with prefill (§2.3).
		if rt.transferFree > s.Now() {
			s.Schedule(rt.transferFree, "sw-prefill-nic", rt.prefillStep)
			return
		}
		rt.prefillStep(s)
	})
}

// scheduleHandoff ships the request's KV cache to the decode instance over
// the cluster interconnect; transfers serialize on the link.
func (rt *splitwiseRuntime) scheduleHandoff(s *sim.Simulator, r *request) {
	m := rt.sw.cfg.Model
	bytes := int64(r.contextLen()) * m.KVBytesPerToken()
	link := rt.sw.cfg.Cluster.InterLink
	start := s.Now()
	if rt.transferFree > start {
		start = rt.transferFree
	}
	done := start + perf.P2PTime(link, bytes)
	rt.transferFree = done
	rt.res.Migrations++
	rt.res.MigratedBytes += bytes
	s.Schedule(done, "sw-handoff", func(s *sim.Simulator) {
		rt.inPrefill -= int64(r.restartCtx)
		rt.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindMigration, Request: r.wl.ID, Value: float64(bytes)})
		rt.decodeQ.push(r)
		rt.kickDecode(s)
		rt.kickPrefill(s)
	})
}

func (rt *splitwiseRuntime) kickDecode(s *sim.Simulator) {
	if rt.decodeBusy {
		return
	}
	rt.decodeBusy = true
	s.After(0, "sw-decode-step", rt.decodeStep)
}

func (rt *splitwiseRuntime) decodeStep(s *sim.Simulator) {
	cfg := rt.sw.cfg
	dec := rt.sw.decode
	// Admit transferred requests while cache allows.
	for rt.decodeQ.len() > 0 && len(rt.running) < cfg.MaxRunning {
		r := rt.decodeQ.peek()
		ctx := int64(r.contextLen())
		if dec.usedTokens+ctx > dec.tokenCap {
			if len(rt.running) == 0 && ctx > dec.tokenCap {
				rt.decodeQ.pop()
				rt.res.Trace.Addf(s.Now(), trace.KindEviction, r.wl.ID, -1, 0, "dropped: exceeds decode cache")
				continue
			}
			break
		}
		rt.decodeQ.pop()
		dec.usedTokens += ctx
		rt.running = append(rt.running, r)
	}
	if len(rt.running) == 0 {
		rt.decodeBusy = false
		return
	}
	var ctxTokens int64
	for _, r := range rt.running {
		ctxTokens += int64(r.contextLen())
	}
	dt, dense, attn := dec.decodeTime(rt.sw.est, cfg, len(rt.running), ctxTokens)
	rt.res.DenseTimes = append(rt.res.DenseTimes, dense)
	rt.res.AttnTimes = append(rt.res.AttnTimes, attn)
	s.After(dt, "sw-decode-done", func(s *sim.Simulator) {
		rt.afterDecode(s)
		rt.decodeStep(s)
	})
}

func (rt *splitwiseRuntime) afterDecode(s *sim.Simulator) {
	dec := rt.sw.decode
	var still []*request
	for _, r := range rt.running {
		r.generated++
		dec.usedTokens++
		if r.done() {
			dec.usedTokens -= int64(r.contextLen())
			recordFinish(rt.res.Sink, r, s.Now())
			rt.res.Completed++
			rt.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindFinish, Request: r.wl.ID})
			continue
		}
		still = append(still, r)
	}
	rt.running = still
	// Cache overflow → LIFO preemption; victims must re-prefill and
	// re-transfer.
	for dec.usedTokens > dec.tokenCap && len(rt.running) > 0 {
		victimIdx := 0
		for i, r := range rt.running {
			if rt.seq[r.wl.ID] > rt.seq[rt.running[victimIdx].wl.ID] {
				victimIdx = i
			}
		}
		v := rt.running[victimIdx]
		rt.running = append(rt.running[:victimIdx], rt.running[victimIdx+1:]...)
		dec.usedTokens -= int64(v.contextLen())
		v.evicted = true
		v.restartCtx = v.contextLen()
		rt.prefillQ.pushFront(v)
		rt.res.Evictions++
		rt.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindEviction, Request: v.wl.ID})
		rt.kickPrefill(s)
	}
	if dec.usedTokens < 0 {
		dec.usedTokens = 0
	}
	if used := dec.usedTokens * rt.sw.cfg.Model.KVBytesPerToken(); used > rt.res.PeakCacheUsed {
		rt.res.PeakCacheUsed = used
	}
}
