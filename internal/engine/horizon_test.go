package engine

import (
	"testing"

	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/workload"
)

// TestHorizonSharedAcrossEngines pins the horizon-denominator fix at the
// engine level: all four engines serving the identical trace under the
// same positive horizon must report the same Result.Horizon, even though
// they drain their queues at different times. Before the fix, Horizon was
// the last event time, so a faster engine divided Throughput and Goodput
// by a smaller denominator than its competitor on the same row of a
// comparison table.
func TestHorizonSharedAcrossEngines(t *testing.T) {
	reqs := shortTrace(workload.HumanEval, 3, 10, 4)
	cfg := DefaultConfig(model.Llama13B, hardware.PaperCluster())
	const horizon = 300.0 // far beyond the drain time of every engine

	for _, name := range Names {
		eng, err := NewByName(name, cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := eng.Run(reqs, horizon)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Completed != len(reqs) {
			t.Fatalf("%s completed %d of %d (trace should drain well before the horizon)",
				name, res.Completed, len(reqs))
		}
		if res.Horizon != horizon {
			t.Errorf("%s: Horizon=%g want %g — cross-engine rate denominators must match",
				name, res.Horizon, horizon)
		}
		if thr := res.Throughput(); thr != float64(res.Completed)/horizon {
			t.Errorf("%s: Throughput=%g want %g", name, thr, float64(res.Completed)/horizon)
		}
	}
}

// TestMaxSimEvents covers the Config-derived runaway guard: the budget
// scales with the trace and never drops below the floor.
func TestMaxSimEvents(t *testing.T) {
	var cfg Config
	if got := cfg.MaxSimEvents(0); got != minEventBudget {
		t.Errorf("MaxSimEvents(0)=%d want floor %d", got, minEventBudget)
	}
	if got := cfg.MaxSimEvents(1); got != minEventBudget {
		t.Errorf("MaxSimEvents(1)=%d want floor %d", got, minEventBudget)
	}
	n := 1_000_000
	want := uint64(DefaultMaxEventsPerRequest) * uint64(n)
	if got := cfg.MaxSimEvents(n); got != want {
		t.Errorf("MaxSimEvents(%d)=%d want %d (must scale with the trace)", n, got, want)
	}
	cfg.MaxEventsPerRequest = 10
	if got := cfg.MaxSimEvents(n); got != 10_000_000 {
		t.Errorf("override MaxSimEvents(%d)=%d want 10000000", n, got)
	}
	// The override still respects the floor for small traces.
	if got := cfg.MaxSimEvents(3); got != minEventBudget {
		t.Errorf("small-trace MaxSimEvents(3)=%d want floor %d", got, minEventBudget)
	}
}

// TestEventBudgetFloorKeepsSmallTracesServiceable asserts the floor side
// of the guard: even an absurdly tight per-request budget cannot starve a
// small trace, because minEventBudget dominates. (The error side of the
// guard — aborting past MaxEvents — is pinned by sim.TestMaxEventsGuard;
// the engines only derive the bound.)
func TestEventBudgetFloorKeepsSmallTracesServiceable(t *testing.T) {
	reqs := shortTrace(workload.HumanEval, 3, 10, 4)
	cfg := DefaultConfig(model.Llama13B, hardware.PaperCluster())
	cfg.MaxEventsPerRequest = 1
	hx, err := NewHexGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hx.Run(reqs, 0); err != nil {
		t.Fatalf("floored budget should serve a small trace: %v", err)
	}
}
