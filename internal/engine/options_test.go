package engine

import (
	"testing"

	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/parallelizer"
	"hetis/internal/workload"
)

// pressuredSetup builds the Fig. 14-style small cluster with a pinned plan
// and a trace heavy enough to exercise §5.3.
func pressuredSetup(t *testing.T, mutate func(*Config)) *Result {
	t.Helper()
	cluster := hardware.NewBuilder(hardware.LAN100G).
		AddHost("a100", hardware.PCIe4x16, hardware.A100, 1).
		AddHost("3090-a", hardware.PCIe3x16, hardware.RTX3090, 1).
		AddHost("3090-b", hardware.PCIe3x16, hardware.RTX3090, 1).
		MustBuild()
	m := model.Llama13B
	plan := &parallelizer.Plan{Instances: []parallelizer.Instance{{
		Stages: []parallelizer.Stage{{
			Spec: hardware.A100, Devices: []hardware.DeviceID{0},
			TP: 1, PP: 1, Layers: m.Layers,
		}},
		AttentionWorkers: []hardware.DeviceID{1, 2},
	}}}
	cfg := DefaultConfig(m, cluster)
	if mutate != nil {
		mutate(&cfg)
	}
	h, err := NewHetis(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.Poisson(workload.ShareGPT, 6, 60, 99)
	res, err := h.Run(reqs, 2400)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGreedyDispatchOptionServes(t *testing.T) {
	res := pressuredSetup(t, func(c *Config) { c.GreedyDispatch = true })
	if res.Completed == 0 {
		t.Fatal("greedy engine served nothing")
	}
	if res.Recorder.NormLatencySummary().Mean <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestBlockingMigrationOptionServes(t *testing.T) {
	res := pressuredSetup(t, func(c *Config) { c.BlockingMigration = true })
	if res.Completed == 0 {
		t.Fatal("blocking-migration engine served nothing")
	}
}

func TestRedispatchFiresUnderPressure(t *testing.T) {
	res := pressuredSetup(t, nil)
	if res.Migrations == 0 {
		t.Fatal("no §5.3 migrations under a pressured trace")
	}
	if res.MigratedBytes == 0 {
		t.Fatal("migrations recorded but no bytes moved")
	}
}

func TestDisableRedispatchNeverMigrates(t *testing.T) {
	res := pressuredSetup(t, func(c *Config) { c.DisableRedispatch = true })
	if res.Migrations != 0 {
		t.Fatalf("DisableRedispatch still migrated %d times", res.Migrations)
	}
}

func TestPressuredDeterminism(t *testing.T) {
	// The pressured path (evictions, migrations, re-dispatching) must be
	// bit-for-bit deterministic.
	a := pressuredSetup(t, nil)
	b := pressuredSetup(t, nil)
	if a.Completed != b.Completed || a.Evictions != b.Evictions ||
		a.Migrations != b.Migrations || a.MigratedBytes != b.MigratedBytes ||
		a.Horizon != b.Horizon {
		t.Fatalf("pressured runs diverge: %+v vs %+v",
			[5]any{a.Completed, a.Evictions, a.Migrations, a.MigratedBytes, a.Horizon},
			[5]any{b.Completed, b.Evictions, b.Migrations, b.MigratedBytes, b.Horizon})
	}
	sa, sb := a.Recorder.NormLatencySummary(), b.Recorder.NormLatencySummary()
	if sa != sb {
		t.Fatalf("latency summaries diverge: %+v vs %+v", sa, sb)
	}
}

func TestRebalanceEveryExtremes(t *testing.T) {
	// Rebalancing every iteration and (almost) never must both serve.
	often := pressuredSetup(t, func(c *Config) { c.RebalanceEvery = 1 })
	rare := pressuredSetup(t, func(c *Config) { c.RebalanceEvery = 1 << 30 })
	if often.Completed == 0 || rare.Completed == 0 {
		t.Fatalf("extreme RebalanceEvery failed to serve: %d / %d", often.Completed, rare.Completed)
	}
	// With rebalancing effectively off, only memory-pressure migrations
	// remain, so the frequent config must migrate at least as much.
	if often.Migrations < rare.Migrations {
		t.Errorf("RebalanceEvery=1 migrated less (%d) than never (%d)", often.Migrations, rare.Migrations)
	}
}

func TestContextWindowTruncation(t *testing.T) {
	// An OPT model (2048 window) served a LongBench trace must clamp
	// contexts rather than fail or run unbounded prompts.
	cfg := DefaultConfig(model.OPT13B, hardware.PaperCluster())
	reqs := workload.Poisson(workload.LongBench, 1, 20, 5)
	oversized := 0
	for _, r := range reqs {
		if r.TotalLen() > model.OPT13B.MaxSeqLen {
			oversized++
		}
	}
	if oversized == 0 {
		t.Skip("trace has no oversized requests; nothing to verify")
	}
	plan, err := PlanForWorkload(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHetis(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Run(reqs, 2400)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(reqs) {
		t.Fatalf("completed %d of %d truncated requests", res.Completed, len(reqs))
	}
	for _, rec := range res.Recorder.Records() {
		if rec.PromptLen+rec.OutputLen > model.OPT13B.MaxSeqLen {
			t.Fatalf("request %d served beyond the context window: %d+%d",
				rec.ID, rec.PromptLen, rec.OutputLen)
		}
	}
}

func TestImpossibleRequestIsDropped(t *testing.T) {
	// A request whose context can never fit anywhere must be dropped (with
	// a trace note) rather than wedging the queue.
	cluster := hardware.NewBuilder(hardware.LAN100G).
		AddHost("a100", hardware.PCIe4x16, hardware.A100, 1).
		MustBuild()
	m := model.Llama13B
	m.MaxSeqLen = 0 // disable truncation so the giant context survives
	plan := &parallelizer.Plan{Instances: []parallelizer.Instance{{
		Stages: []parallelizer.Stage{{
			Spec: hardware.A100, Devices: []hardware.DeviceID{0},
			TP: 1, PP: 1, Layers: m.Layers,
		}},
	}}}
	cfg := DefaultConfig(m, cluster)
	h, err := NewHetis(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []workload.Request{
		{ID: 0, ArrivalAt: 0, PromptLen: 200000, OutputLen: 10}, // impossible
		{ID: 1, ArrivalAt: 0, PromptLen: 200, OutputLen: 10},    // fine
	}
	res, err := h.Run(reqs, 600)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("completed %d, want 1 (giant dropped, small served)", res.Completed)
	}
}
