package engine

import (
	"testing"

	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/workload"
)

// tieredChaos is a two-tier config: the "gold" tenant outranks everyone
// else (catch-all "bronze").
func tieredChaos() *ChaosConfig {
	return &ChaosConfig{Tiers: []Tier{
		{Name: "gold", Tenants: []string{"gold"}, Priority: 1},
		{Name: "bronze", Priority: 0},
	}}
}

// TestStaticEnginePreemption drives the static engines (hexgen, vllm) into
// KV-cache pressure with long-context bronze work already decoding, then
// lands a gold request: the engine must preempt bronze victims rather than
// queue the gold request behind them, and the victims must requeue (a
// preemption costs latency, never a completion).
func TestStaticEnginePreemption(t *testing.T) {
	// Prompts clamp at the model's context window, so cache pressure comes
	// from shrinking the cache, not growing the prompts: at MemHeadroom
	// 0.8, hexgen's OPT-30B pipeline caches only ~4.8k tokens — two
	// 1.9k-token contexts fit, a third does not.
	cfg := DefaultConfig(model.OPT30B, hardware.PaperCluster())
	cfg.MemHeadroom = 0.8
	cfg.Chaos = tieredChaos()

	var reqs []workload.Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, workload.Request{
			ID: int64(i + 1), ArrivalAt: float64(i) * 0.2,
			PromptLen: 1500, OutputLen: 400, Tenant: "bronze",
		})
	}
	reqs = append(reqs, workload.Request{
		ID: 100, ArrivalAt: 2, PromptLen: 1500, OutputLen: 100, Tenant: "gold",
	})

	for _, name := range []string{"hexgen", "vllm"} {
		eng, err := NewByName(name, cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := eng.Run(reqs, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Preempted == 0 {
			t.Errorf("%s: gold request under cache pressure should preempt bronze work", name)
		}
		if res.PreemptedByTenant["bronze"] != res.Preempted {
			t.Errorf("%s: preemptions %d not attributed to bronze (%v)", name, res.Preempted, res.PreemptedByTenant)
		}
		if res.Completed != len(reqs) {
			t.Errorf("%s: preemption lost work: completed %d of %d", name, res.Completed, len(reqs))
		}
		for _, r := range res.Recorder.Records() {
			if r.Tenant == "gold" && r.Dropped {
				t.Errorf("%s: gold request dropped", name)
			}
		}
	}
}
