package engine

import (
	"testing"

	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/workload"
)

// FuzzFailureSchedule throws randomized kill/recover timelines — arbitrary
// replica indices, overlapping windows, zero-length gaps, haul and lose
// policies — at every engine and checks the invariants no schedule may
// break: the run terminates without panicking, stays inside the runaway
// event budget, keeps the request-conservation ledger closed, and emits
// causally ordered records.
//
// The corpus encodes a schedule in 8 bytes: each pair (a, b) becomes one
// failure window on replica a%3 over [start, start+len) derived from b.
func FuzzFailureSchedule(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(2), false)
	f.Add([]byte{1, 7, 1, 9, 2, 50, 0, 200}, uint8(3), true)
	f.Add([]byte{255, 255, 254, 1, 3, 3, 9, 81}, uint8(1), false)

	reqs := workload.Poisson(workload.HumanEval, 4, 15, 11)
	cfg := DefaultConfig(model.Llama13B, hardware.PaperCluster())

	f.Fuzz(func(t *testing.T, plan []byte, replicas uint8, haul bool) {
		chaos := &ChaosConfig{Replicas: int(replicas % 4)}
		for i := 0; i+1 < len(plan) && len(chaos.Failures) < 6; i += 2 {
			start := float64(plan[i]) * 0.1
			chaos.Failures = append(chaos.Failures, FailureWindow{
				Replica: int(plan[i]) % 3,
				Start:   start,
				End:     start + 0.1 + float64(plan[i+1])*0.05,
				HaulKV:  haul,
			})
		}
		c := cfg
		c.Chaos = chaos
		if err := c.Validate(); err != nil {
			t.Fatalf("generated config invalid: %v", err)
		}
		for _, name := range Names {
			eng, err := NewByName(name, c, reqs)
			if err != nil {
				t.Fatalf("%s: build: %v", name, err)
			}
			res, err := eng.Run(reqs, 400)
			if err != nil {
				t.Fatalf("%s: run: %v", name, err)
			}
			if got := res.Completed + res.Dropped + res.Queued; got != len(reqs) {
				t.Errorf("%s: ledger leak: completed %d + dropped %d + queued %d = %d, offered %d",
					name, res.Completed, res.Dropped, res.Queued, got, len(reqs))
			}
			if res.Events > c.MaxSimEvents(len(reqs)) {
				t.Errorf("%s: %d events exceed the runaway budget %d", name, res.Events, c.MaxSimEvents(len(reqs)))
			}
			if res.Horizon < 0 {
				t.Errorf("%s: negative horizon %g", name, res.Horizon)
			}
			seen := map[int64]bool{}
			for _, r := range res.Recorder.Records() {
				if seen[r.ID] {
					t.Errorf("%s: request %d recorded twice", name, r.ID)
				}
				seen[r.ID] = true
				if r.Dropped {
					continue
				}
				if r.FirstToken < r.ArrivalAt || r.FinishedAt < r.FirstToken {
					t.Errorf("%s: request %d violates causality: arrive %g, first token %g, finish %g",
						name, r.ID, r.ArrivalAt, r.FirstToken, r.FinishedAt)
				}
				if r.FinishedAt > res.Horizon {
					t.Errorf("%s: request %d finished at %g past horizon %g", name, r.ID, r.FinishedAt, res.Horizon)
				}
			}
			if prev := res.Trace.Events(); len(prev) > 1 {
				for i := 1; i < len(prev); i++ {
					if prev[i].At < prev[i-1].At {
						t.Fatalf("%s: trace clock went backwards: event %d at %g after %g",
							name, i, prev[i].At, prev[i-1].At)
					}
				}
			}
		}
	})
}
