package engine

import (
	"fmt"
	"math"
	"testing"

	"hetis/internal/hardware"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/workload"
)

// TestQueueReleasesPoppedRequests pins the queue's memory discipline: a
// popped slot must drop its *request pointer immediately (so served
// requests become collectable during long runs), and the ring must not
// grow beyond what peak occupancy requires — steady-state churn recycles
// slots instead of allocating.
func TestQueueReleasesPoppedRequests(t *testing.T) {
	var q queue
	const n = 1000
	for i := 0; i < n; i++ {
		q.push(&request{wl: workload.Request{ID: int64(i)}})
	}
	ringCap := len(q.ring)
	if ringCap < n || ringCap > 2*n {
		t.Fatalf("ring holding %d requests has %d slots", n, ringCap)
	}
	// Pop half and check every vacated slot dropped its pointer.
	for i := 0; i < 500; i++ {
		if r := q.pop(); r.wl.ID != int64(i) {
			t.Fatalf("pop %d returned request %d", i, r.wl.ID)
		}
	}
	for i := 0; i < 500; i++ {
		if q.ring[i] != nil {
			t.Fatalf("popped slot %d still pins its request", i)
		}
	}
	// Steady-state churn — including the pushFront requeues an eviction
	// storm produces — wraps around the ring without growing it.
	for i := 0; i < 3*n; i++ {
		q.pushFront(&request{wl: workload.Request{ID: int64(-1 - i)}})
		if r := q.pop(); r.wl.ID != int64(-1-i) {
			t.Fatalf("churn %d: pushFront/pop returned request %d", i, r.wl.ID)
		}
		q.push(&request{wl: workload.Request{ID: int64(n + i)}})
		if r := q.pop(); r == nil {
			t.Fatalf("churn %d: pop returned nil with %d queued", i, q.len())
		}
	}
	if len(q.ring) != ringCap {
		t.Fatalf("steady-state churn grew the ring: %d -> %d slots", ringCap, len(q.ring))
	}
	// Drain and verify every slot is released.
	for q.pop() != nil {
	}
	if q.pop() != nil {
		t.Fatal("drained queue still pops")
	}
	for i, r := range q.ring {
		if r != nil {
			t.Fatalf("drained ring slot %d still pins a request", i)
		}
	}
}

// engineSinkCases builds each engine once for a shared small trace.
func engineSinkCases(t *testing.T) ([]workload.Request, Config) {
	t.Helper()
	reqs := workload.Poisson(workload.ShareGPT, 4, 10, 1)
	cfg := DefaultConfig(model.Llama13B, hardware.PaperCluster())
	return reqs, cfg
}

// TestEnginesEmitThroughInjectedSink runs every engine twice on the same
// trace — default exact sink vs an injected StreamingSink — and checks the
// streaming run (a) bypasses the Recorder, (b) observes exactly the
// completed requests, and (c) agrees with the exact summaries within the
// sketch's documented 1% bound.
func TestEnginesEmitThroughInjectedSink(t *testing.T) {
	reqs, cfg := engineSinkCases(t)
	for _, name := range Names {
		t.Run(name, func(t *testing.T) {
			exactEng, err := NewByName(name, cfg, reqs)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := exactEng.Run(reqs, 0)
			if err != nil {
				t.Fatal(err)
			}
			if exact.Recorder == nil || exact.Sink == nil {
				t.Fatal("default run must expose both Recorder and Sink")
			}
			if exact.Sink != metrics.Sink(exact.Recorder) {
				t.Fatal("default run's Sink must be its exact recorder")
			}

			scfg := cfg
			scfg.Sink = metrics.NewStreamingSink(metrics.SLOTarget{})
			scfg.NoTrace = true
			streamEng, err := NewByName(name, scfg, reqs)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := streamEng.Run(reqs, 0)
			if err != nil {
				t.Fatal(err)
			}
			if stream.Recorder != nil {
				t.Error("streaming run must not materialize a Recorder")
			}
			if stream.Trace != nil {
				t.Error("NoTrace run must not hold a trace log")
			}
			got := stream.Sink.Snapshot()
			want := exact.Recorder.Snapshot()
			if got.Count != want.Count || got.Count != stream.Completed {
				t.Fatalf("streaming sink saw %d records, exact %d, completed %d", got.Count, want.Count, stream.Completed)
			}
			if stream.Completed != exact.Completed || stream.Events != exact.Events {
				t.Fatalf("sink choice changed the simulation: completed %d vs %d, events %d vs %d",
					stream.Completed, exact.Completed, stream.Events, exact.Events)
			}
			// Accuracy at scale is pinned elsewhere (the metrics property
			// tests and the megascale bench test); at this trace's ~40
			// completions the tail percentiles sit between sparse order
			// statistics, so only the medians and exact running stats are
			// meaningful here.
			for _, m := range []struct {
				name      string
				got, want metrics.Summary
			}{{"TTFT", got.TTFT, want.TTFT}, {"TPOT", got.TPOT, want.TPOT}, {"NormLat", got.NormLat, want.NormLat}} {
				if m.got.Min != m.want.Min || m.got.Max != m.want.Max || m.got.Count != m.want.Count {
					t.Errorf("%s running stats diverged: got %+v want %+v", m.name, m.got, m.want)
				}
				if w := m.want.Mean; w > 0 && math.Abs(m.got.Mean-w)/w > 1e-9 {
					t.Errorf("%s mean: streaming %g vs exact %g", m.name, m.got.Mean, w)
				}
				if w := m.want.P50; w > 0 {
					if e := math.Abs(m.got.P50-w) / w; e > 0.05 {
						t.Errorf("%s p50: streaming %g vs exact %g (rel err %.3f%%)", m.name, m.got.P50, w, 100*e)
					}
				}
			}
		})
	}
}

// TestSinkReuseAccumulates documents Config.Sink's per-run contract: the
// injected sink keeps accumulating across runs, which is exactly what a
// caller chaining traces into one aggregate wants — and what per-run
// tables must avoid by injecting a fresh sink.
func TestSinkReuseAccumulates(t *testing.T) {
	reqs, cfg := engineSinkCases(t)
	cfg.Sink = metrics.NewStreamingSink(metrics.SLOTarget{})
	eng, err := NewVLLM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := eng.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := eng.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Sink.Snapshot().Count; got != res1.Completed+res2.Completed {
		t.Fatalf("reused sink saw %d records, want %d", got, res1.Completed+res2.Completed)
	}
}

// ExampleConfig_sink shows the injection point.
func ExampleConfig_sink() {
	reqs := workload.Poisson(workload.HumanEval, 2, 5, 1)
	cfg := DefaultConfig(model.Llama13B, hardware.PaperCluster())
	cfg.Sink = metrics.NewStreamingSink(metrics.SLOTarget{TTFT: 1.5, TPOT: 0.1})
	cfg.NoTrace = true
	eng, _ := NewVLLM(cfg)
	res, _ := eng.Run(reqs, 0)
	snap := res.Sink.Snapshot()
	fmt.Println(snap.Count == res.Completed)
	// Output: true
}
