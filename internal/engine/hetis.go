package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hetis/internal/dispatch"
	"hetis/internal/hardware"
	"hetis/internal/kvcache"
	"hetis/internal/metrics"
	"hetis/internal/parallelizer"
	"hetis/internal/perf"
	"hetis/internal/profile"
	"hetis/internal/sim"
	"hetis/internal/trace"
	"hetis/internal/workload"
)

// dispatchCapacityMargin derates the dispatcher's view of per-worker cache
// capacity relative to the block manager, absorbing block-rounding slack.
const dispatchCapacityMargin = 0.9

// Hetis is the paper's serving engine: primary-worker parallelism for dense
// modules plus dynamic head-wise attention dispatch over the pooled
// low-end GPUs.
type Hetis struct {
	cfg  Config
	est  *perf.Estimator
	plan *parallelizer.Plan
	prof *profile.Profile
}

// NewHetis builds the engine from an explicit parallelization plan (use
// parallelizer.Search, or PlanForWorkload for convenience), fitting the
// cost profile on the plan's primary device.
func NewHetis(cfg Config, plan *parallelizer.Plan) (*Hetis, error) {
	return NewHetisWithProfile(cfg, plan, nil)
}

// NewHetisWithProfile builds the engine with a pre-fitted profile, skipping
// the construction-time profiling run. Profile fitting depends only on
// (model, cluster, primary device), so sweeps memoize it and share one fit
// across every engine built for the same deployment; the engine reads the
// profile but never writes it. A nil prof fits one here, like NewHetis.
func NewHetisWithProfile(cfg Config, plan *parallelizer.Plan, prof *profile.Profile) (*Hetis, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if plan == nil || len(plan.Instances) == 0 {
		return nil, fmt.Errorf("engine: hetis needs a non-empty plan")
	}
	est := perf.New(cfg.Model)
	if prof == nil {
		primary := plan.Instances[0].Stages[0].Devices[0]
		var err error
		prof, err = profile.Run(est, cfg.Cluster, primary, profile.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("engine: profiling: %w", err)
		}
	}
	return &Hetis{cfg: cfg, est: est, plan: plan, prof: prof}, nil
}

// SetProfile overrides the fitted models (used by the Fig. 16(b)
// profiling-error experiment).
func (h *Hetis) SetProfile(p *profile.Profile) { h.prof = p }

// Plan exposes the deployment plan.
func (h *Hetis) Plan() *parallelizer.Plan { return h.plan }

// PlanForWorkload runs the parallelizer on aggregate trace statistics. The
// decode-batch target adapts to what the cluster can physically cache for
// the trace's context lengths, so long-context workloads on KV-heavy models
// stay feasible.
func PlanForWorkload(cfg Config, reqs []workload.Request) (*parallelizer.Plan, error) {
	st := workload.Summarize(reqs)
	wl := parallelizer.DefaultWorkload()
	if st.Count > 0 {
		wl.AvgPrompt = max(1, int(st.MeanPrompt))
		wl.AvgOutput = max(1, int(st.MeanOutput))
		wl.AvgContext = max(1, int(st.MeanPrompt+st.MeanOutput/2))
	}
	// Upper-bound the batch target by the cache the cluster could hold
	// with one model copy resident (conservatively 60% usable for KV).
	freeBytes := float64(cfg.Cluster.TotalMemory())*(1-cfg.MemHeadroom) - float64(cfg.Model.WeightBytes())
	if freeBytes > 0 {
		maxBatch := int(0.6 * freeBytes / (float64(wl.AvgContext) * float64(cfg.Model.KVBytesPerToken())))
		if maxBatch < 4 {
			maxBatch = 4
		}
		if wl.DecodeBatch > maxBatch {
			wl.DecodeBatch = maxBatch
		}
	}
	return parallelizer.Search(cfg.Cluster, perf.New(cfg.Model), wl, parallelizer.DefaultOptions())
}

// Name implements Engine.
func (h *Hetis) Name() string { return "hetis" }

// CacheCapacity implements Engine: free memory on primaries after weights
// plus the full memory of the attention-worker pool.
func (h *Hetis) CacheCapacity() int64 {
	var total int64
	for _, in := range h.plan.Instances {
		for _, st := range in.Stages {
			free := stageFreeBytes(h.cfg, st)
			if free > 0 {
				total += free
			}
		}
		for _, id := range in.AttentionWorkers {
			total += int64(float64(h.cfg.Cluster.Device(id).Spec.MemBytes) * (1 - h.cfg.MemHeadroom))
		}
	}
	return total
}

func stageFreeBytes(cfg Config, st parallelizer.Stage) int64 {
	var mem float64
	for range st.Devices {
		mem += float64(st.Spec.MemBytes) * (1 - cfg.MemHeadroom)
	}
	weights := float64(st.Layers) * float64(cfg.Model.LayerWeightBytes())
	return int64(mem - weights)
}

// hetisInstance is the runtime of one serving instance. Under chaos it is
// one replica of a hetisFleet; a healthy run's fleet has exactly the
// plan's instances, all active, and behaves like the legacy loop.
type hetisInstance struct {
	eng    *Hetis
	idx    int
	stages []parallelizer.Stage
	links  []hardware.LinkSpec
	pool   []hardware.DeviceID

	disp *dispatch.Dispatcher
	kv   []*kvcache.Manager
	// workerDev maps dispatcher worker index to a representative device
	// (the stage's first device, or the pool device itself).
	workerDev []hardware.DeviceID
	// workerLink is the channel from the instance primary to the worker.
	workerLink []hardware.LinkSpec

	fleet *hetisFleet
	state replicaState
	// pending is the instance's single outstanding loop event (step,
	// prefill, or decode completion) — what a failure cancels.
	pending sim.Handle

	waiting *waitQueue
	running []*request
	byID    map[int64]*request
	busy    bool
	// decodeSteps counts decode iterations for the rebalance cadence.
	decodeSteps int
	// lastMig records the decode step at which a request last migrated;
	// recently migrated requests are frozen against re-migration. It stays
	// a per-instance map (unlike the hot seq field on request) because the
	// cooldown is a property of the (instance, request) pair — it must
	// survive an evict/requeue on the same instance yet not follow the
	// request to a survivor after a failure — and it is touched only on
	// migrations, far off the decode fast path.
	lastMig map[int64]int
	// pendingDelay accumulates blocking-migration time charged to the
	// next iteration.
	pendingDelay float64

	// decodeMemo caches the dense side of a decode iteration per batch
	// size. Dense-module cost is a pure function of (stage layout, batch)
	// — head placement never touches dense modules — so the memo needs no
	// invalidation; attention costs depend on the live head assignment and
	// are recomputed every iteration.
	decodeMemo map[int]*decodeCost
	// attnScratch and stillBuf are per-iteration scratch reused across
	// decode steps; overflowHit is the worker-indexed overflow marker that
	// replaces a per-step map.
	attnScratch []float64
	stillBuf    []*request
	overflowHit []bool

	res *Result
	cfg *Config
}

// decodeCost is the memoized dense side of one decode iteration.
type decodeCost struct {
	// denseModule is moduleLatency over per-stage dense times (the §7.3
	// DenseTimes sample); dense is the full iteration dense cost including
	// pipeline hops and the LM head.
	denseModule float64
	dense       float64
}

func (h *Hetis) newInstance(idx int, in parallelizer.Instance, res *Result) (*hetisInstance, error) {
	cfg := h.cfg
	inst := &hetisInstance{
		eng:     h,
		idx:     idx,
		stages:  in.Stages,
		pool:    in.AttentionWorkers,
		byID:    make(map[int64]*request),
		lastMig: make(map[int64]int),
		res:     res,
		cfg:     &h.cfg,
	}
	groupTok := cfg.Model.KVBytesPerTokenHeadGroup() * int64(cfg.Model.Layers)

	var workers []dispatch.Worker
	addWorker := func(dev hardware.DeviceID, attn profile.AttnModel, net profile.NetModel, primary bool, freeBytes int64, link hardware.LinkSpec) error {
		if freeBytes < 0 {
			freeBytes = 0
		}
		mgr, err := kvcache.NewManager(kvcache.Config{
			BlockTokens:        16,
			BytesPerGroupToken: groupTok,
			CapacityBytes:      freeBytes,
		})
		if err != nil {
			return err
		}
		inst.kv = append(inst.kv, mgr)
		inst.workerDev = append(inst.workerDev, dev)
		inst.workerLink = append(inst.workerLink, link)
		workers = append(workers, dispatch.Worker{
			ID:            dev,
			Attn:          attn,
			Net:           net,
			Primary:       primary,
			CapacityBytes: float64(mgr.CapacityBytes()) / float64(cfg.Model.Layers) * dispatchCapacityMargin,
		})
		return nil
	}

	primaryDev := in.Stages[0].Devices[0]
	for _, st := range in.Stages {
		inst.links = append(inst.links, parallelizer.StageLink(cfg.Cluster, st))
		am := h.prof.Attn[st.Devices[0]]
		// TP shards heads and cache across the stage's tensor group.
		am.A /= float64(st.TP)
		am.B /= float64(st.TP)
		if err := addWorker(st.Devices[0], am, profile.NetModel{}, true, stageFreeBytes(cfg, st), hardware.Loopback); err != nil {
			return nil, err
		}
	}
	for _, id := range in.AttentionWorkers {
		free := int64(float64(cfg.Cluster.Device(id).Spec.MemBytes) * (1 - cfg.MemHeadroom))
		link := cfg.Cluster.Link(primaryDev, id)
		if err := addWorker(id, h.prof.Attn[id], h.prof.Net[id], false, free, link); err != nil {
			return nil, err
		}
	}
	d, err := dispatch.New(cfg.Model, workers)
	if err != nil {
		return nil, err
	}
	if cfg.GreedyDispatch {
		d.SetPolicy(dispatch.PolicyGreedy)
	}
	if cfg.DisableLPWarmStart {
		d.SetWarmStart(false)
	}
	inst.disp = d
	return inst, nil
}

// Run implements Engine.
func (h *Hetis) Run(reqs []workload.Request, horizon float64) (*Result, error) {
	reqs = workload.Truncate(reqs, h.cfg.Model.MaxSeqLen) // clamp to the context window
	sink, rec := h.cfg.newRunSink(len(reqs))
	res := &Result{
		Engine:        h.Name(),
		Sink:          sink,
		Recorder:      rec,
		Trace:         h.cfg.newTraceLog(),
		CacheCapacity: h.CacheCapacity(),
		HeadSeries:    map[hardware.DeviceID]*metrics.Series{},
		CacheSeries:   map[hardware.DeviceID]*metrics.Series{},
	}
	iters := moduleSeriesCap(reqs)
	res.DenseTimes = make([]float64, 0, iters)
	res.AttnTimes = make([]float64, 0, iters)
	chaos := h.cfg.Chaos.normalize()
	var ctl *chaosCtl
	runSink := sink
	if chaos != nil {
		ctl = newChaosCtl(chaos, res, res.Trace, sink)
		runSink = ctl
	}
	f, err := newHetisFleet(h, res, ctl, runSink, chaos)
	if err != nil {
		return nil, err
	}
	if ctl != nil {
		ctl.bind(f)
	}

	s := sim.New()
	s.MaxEvents = h.cfg.MaxSimEvents(len(reqs))
	ctl.start(s)
	scheduleArrivals(s, reqs, func(s *sim.Simulator, r *request) {
		if !f.admitArrival(s, r) {
			return
		}
		f.route(s, r)
	})
	if h.cfg.SampleEvery > 0 {
		// Sample only the plan's own instances: extra chaos replicas reuse
		// the same devices, so sampling them would double-count series keys.
		sampled := f.replicas[:len(h.plan.Instances)]
		var sample func(s *sim.Simulator)
		sample = func(s *sim.Simulator) {
			for _, inst := range sampled {
				inst.sample(s.Now())
			}
			if s.Pending() > 0 {
				s.After(h.cfg.SampleEvery, "sample", sample)
			}
		}
		s.After(h.cfg.SampleEvery, "sample", sample)
	}
	if err := s.Run(horizon); err != nil {
		return nil, err
	}
	res.Horizon = s.Now()
	res.Events = s.Executed
	res.Queued = f.inSystem
	for _, inst := range f.replicas {
		res.LPSolves += inst.disp.LPSolves
		res.LPSolvesAvoided += inst.disp.LPSolvesAvoided
		res.LPIdealSolves += inst.disp.LPIdealSolves
		res.LPWarmStarts += inst.disp.LPWarmStarts
		res.LPPhase1Skips += inst.disp.LPPhase1Skips
		res.LPPatchedRows += inst.disp.LPPatchedRows
		res.LPSolveSeconds += inst.disp.LPSolveSeconds
	}
	return res, nil
}

// hetisFleet replicates serving instances for the chaos layer. The plan's
// instances are the base fleet; chaos replicas beyond them reuse the plan's
// instance templates round-robin (same stages and pool, modelling identical
// spare deployments).
type hetisFleet struct {
	fleetCore
	eng      *Hetis
	replicas []*hetisInstance
}

func newHetisFleet(h *Hetis, res *Result, ctl *chaosCtl, sink metrics.Sink, chaos *ChaosConfig) (*hetisFleet, error) {
	base := len(h.plan.Instances)
	width, total := base, base
	if chaos != nil {
		width = max(base, chaos.initialReplicas())
		total = max(width, chaos.maxReplicas())
	}
	f := &hetisFleet{fleetCore: newFleetCore(h.cfg, res, ctl, sink), eng: h}
	for i := 0; i < total; i++ {
		inst, err := h.newInstance(i, h.plan.Instances[i%base], res)
		if err != nil {
			return nil, err
		}
		inst.fleet = f
		inst.waiting = newWaitQueue(ctl.tiered())
		inst.state = replicaParked
		if i < width {
			inst.state = replicaActive
		}
		f.replicas = append(f.replicas, inst)
	}
	return f, nil
}

// activeCount implements chaosFleet.
func (f *hetisFleet) activeCount() int {
	n := 0
	for _, inst := range f.replicas {
		if inst.state == replicaActive {
			n++
		}
	}
	return n
}

// route sends a request to the least-loaded active instance (the legacy
// load key: waiting plus running), or parks it when none is serving.
func (f *hetisFleet) route(s *sim.Simulator, r *request) {
	var best *hetisInstance
	bestLoad := 0
	for _, inst := range f.replicas {
		if inst.state != replicaActive {
			continue
		}
		load := inst.waiting.len() + len(inst.running)
		if best == nil || load < bestLoad {
			best, bestLoad = inst, load
		}
	}
	if best == nil {
		f.parked.push(r)
		return
	}
	best.waiting.push(r)
	best.kick(s)
}

// deactivate takes an instance out of service: its loop event is
// cancelled, dispatch and KV state torn down, and every in-system request
// re-dispatched — running requests haul their KV to survivors (haul mode)
// or lose it and re-prefill; waiting requests requeue as-is.
func (f *hetisFleet) deactivate(s *sim.Simulator, inst *hetisInstance, haul bool, to replicaState) {
	inst.state = to
	if inst.busy {
		s.Cancel(inst.pending)
		inst.busy = false
	}
	resident := map[int64]bool{}
	for _, r := range inst.running {
		resident[r.wl.ID] = true
	}
	victims := make([]*request, 0, len(inst.byID))
	for _, r := range inst.byID {
		victims = append(victims, r)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].seq < victims[j].seq })
	for _, r := range victims {
		id := r.wl.ID
		delete(inst.byID, id)
		delete(inst.lastMig, id)
		inst.kvFree(id)
		r.evicted = true
		r.restartCtx = r.contextLen()
		if haul && resident[id] {
			r.hauled = true
			f.haulTo(s, r, f.route)
			continue
		}
		f.loseVictim(s, r)
		f.route(s, r)
	}
	inst.disp.Clear()
	inst.running = inst.running[:0]
	inst.pendingDelay = 0
	for inst.waiting.len() > 0 {
		f.route(s, inst.waiting.pop())
	}
}

// kill implements chaosFleet.
func (f *hetisFleet) kill(s *sim.Simulator, replica int, haul bool) {
	if replica >= len(f.replicas) {
		return
	}
	inst := f.replicas[replica]
	if inst.state != replicaActive {
		return
	}
	f.deactivate(s, inst, haul, replicaFailed)
}

// revive implements chaosFleet.
func (f *hetisFleet) revive(s *sim.Simulator, replica int) {
	if replica >= len(f.replicas) {
		return
	}
	inst := f.replicas[replica]
	if inst.state != replicaFailed {
		return
	}
	f.activate(s, inst)
}

// activate brings an instance into service, hands it the parked backlog,
// and steals queued (not yet admitted) work from busier instances so the
// newcomer helps drain the backlog instead of waiting on fresh arrivals.
func (f *hetisFleet) activate(s *sim.Simulator, inst *hetisInstance) {
	inst.state = replicaActive
	for f.parked.len() > 0 {
		inst.waiting.push(f.parked.pop())
	}
	for {
		var donor *hetisInstance
		for _, o := range f.replicas {
			if o == inst || o.state != replicaActive {
				continue
			}
			if donor == nil || o.waiting.len() > donor.waiting.len() {
				donor = o
			}
		}
		if donor == nil || donor.waiting.len() <= inst.waiting.len()+1 {
			break
		}
		inst.waiting.push(donor.waiting.pop())
	}
	inst.kick(s)
}

// scaleUp implements chaosFleet.
func (f *hetisFleet) scaleUp(s *sim.Simulator) bool {
	for _, inst := range f.replicas {
		if inst.state == replicaParked {
			f.activate(s, inst)
			return true
		}
	}
	return false
}

// scaleDown implements chaosFleet: drain the highest-index active instance.
func (f *hetisFleet) scaleDown(s *sim.Simulator) bool {
	if f.activeCount() <= 1 {
		return false
	}
	for i := len(f.replicas) - 1; i >= 0; i-- {
		if f.replicas[i].state == replicaActive {
			f.deactivate(s, f.replicas[i], true, replicaParked)
			return true
		}
	}
	return false
}

func (inst *hetisInstance) kick(s *sim.Simulator) {
	if inst.busy {
		return
	}
	inst.busy = true
	inst.pending = s.After(0, "step", inst.step)
}

// step runs one scheduling decision: prefill first (continuous batching
// admits whenever cache allows), otherwise a decode iteration.
func (inst *hetisInstance) step(s *sim.Simulator) {
	if inst.tryPrefill(s) {
		return
	}
	if inst.tryDecode(s) {
		return
	}
	inst.busy = false
}

// tryPrefill admits waiting requests within batching limits and runs one
// prefill iteration for them.
func (inst *hetisInstance) tryPrefill(s *sim.Simulator) bool {
	cfg := inst.cfg
	var admitted []*request
	tokens := 0
	for inst.waiting.len() > 0 &&
		len(admitted) < cfg.MaxPrefillRequests &&
		len(inst.running)+len(admitted) < cfg.MaxRunning {
		r := inst.waiting.peek()
		ctx := r.restartCtx
		if tokens+r.prefillLen() > cfg.MaxPrefillTokens && len(admitted) > 0 {
			break
		}
		nr := dispatch.NewRequest{ID: r.wl.ID, ContextLen: ctx}
		if !inst.underWatermark(ctx) {
			if inst.fleet.ctl.tiered() && len(admitted) == 0 && inst.preemptFor(s, r) {
				continue // retry the head waiter against the freed memory
			}
			// Leave growth slack for the running batch; admission resumes
			// when completions drain utilization below the watermark.
			if len(inst.running) == 0 && len(admitted) == 0 {
				// Nothing running to free space: admit anyway to make
				// progress (a single request must always be servable).
				if inst.disp.CanFit([]dispatch.NewRequest{nr}) {
					goto place
				}
				inst.waiting.pop()
				inst.res.Trace.Addf(s.Now(), trace.KindEviction, r.wl.ID, -1, 0, "dropped: cannot ever fit")
				inst.fleet.dropAdmitted(s, r)
				continue
			}
			break
		}
	place:
		if _, err := inst.disp.Dispatch([]dispatch.NewRequest{nr}); err != nil {
			// Cannot place: if the instance is otherwise empty the request
			// can never fit — drop it; else wait for cache to free up.
			if len(inst.running) == 0 && len(admitted) == 0 && !inst.disp.CanFit([]dispatch.NewRequest{nr}) {
				inst.waiting.pop()
				inst.res.Trace.Addf(s.Now(), trace.KindEviction, r.wl.ID, -1, 0, "dropped: cannot ever fit")
				inst.fleet.dropAdmitted(s, r)
				continue
			}
			break
		}
		if !inst.kvAlloc(s, r.wl.ID, ctx) {
			inst.disp.Remove(r.wl.ID)
			break
		}
		inst.waiting.pop()
		admitted = append(admitted, r)
		tokens += r.prefillLen()
	}
	if len(admitted) == 0 {
		return false
	}
	prompts := make([]int, len(admitted))
	for i, r := range admitted {
		prompts[i] = r.prefillLen()
		inst.byID[r.wl.ID] = r
	}
	dt := inst.prefillTime(prompts, admitted) + inst.pendingDelay
	inst.pendingDelay = 0
	inst.pending = s.After(dt, "prefill-done", func(s *sim.Simulator) {
		overflown := map[int]bool{}
		for _, r := range admitted {
			if inst.byID[r.wl.ID] != r {
				continue // evicted while the batch completed
			}
			if r.firstTok == 0 {
				r.firstTok = s.Now()
			}
			if r.generated == 0 {
				r.generated = 1 // prefill emits the first token
			}
			r.hauled = false
			inst.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindPrefill, Request: r.wl.ID, Value: float64(r.restartCtx)})
			if r.done() {
				inst.finishDeferred(s, r)
				continue
			}
			// Account the first generated token's KV.
			if over, err := inst.disp.ExtendContext(r.wl.ID, 1); err == nil {
				for _, w := range over {
					overflown[w] = true
				}
			}
			inst.kvExtend(s, r.wl.ID)
			inst.running = append(inst.running, r)
		}
		inst.fleet.flushFinishes()
		for _, w := range sortedKeys(overflown) {
			inst.handleMemoryPressure(s, w)
		}
		inst.step(s)
	})
	return true
}

// prefillTime is the iteration cost of prefilling the admitted prompts:
// dense + prompt attention through all stages, pipeline hops, the LM head,
// and the scatter of pool-resident KV shards.
func (inst *hetisInstance) prefillTime(prompts []int, admitted []*request) float64 {
	est := inst.eng.est
	cfg := inst.cfg
	total := 0
	for _, p := range prompts {
		total += p
	}
	var dt float64
	for k, st := range inst.stages {
		dt += parallelizer.StagePrefillTime(est, st, prompts, inst.links[k])
	}
	if len(inst.stages) > 1 {
		dt += float64(len(inst.stages)-1) * perf.P2PTime(cfg.Cluster.InterLink, cfg.Model.HiddenStateBytes(total))
	}
	last := inst.stages[len(inst.stages)-1]
	dt += est.LMHeadTime(last.Spec, len(prompts), last.TP)

	// KV scatter: shards dispatched to pool workers ship over their links
	// concurrently; the slowest leg gates the iteration.
	groupTok := cfg.Model.KVBytesPerTokenHeadGroup() * int64(cfg.Model.Layers)
	r := cfg.Model.GroupRatio()
	var maxLeg float64
	for wi := len(inst.stages); wi < inst.disp.NumWorkers(); wi++ {
		var bytes int64
		for _, req := range admitted {
			x := inst.disp.PlacementView(req.wl.ID)
			if x == nil || x[wi] == 0 {
				continue
			}
			bytes += int64(x[wi]/r) * int64(req.restartCtx) * groupTok
		}
		if bytes > 0 {
			if leg := perf.P2PTime(inst.workerLink[wi], bytes); leg > maxLeg {
				maxLeg = leg
			}
		}
	}
	return dt + maxLeg
}

// decodeCostFor memoizes the dense side of a decode iteration per batch
// size; batch sizes repeat constantly across iterations, so after warmup
// the hot path is a map hit instead of re-walking the cost model.
func (inst *hetisInstance) decodeCostFor(batch int) *decodeCost {
	if c, ok := inst.decodeMemo[batch]; ok {
		return c
	}
	est := inst.eng.est
	cfg := inst.cfg
	stageTimes := make([]float64, len(inst.stages))
	var dense float64
	for k, st := range inst.stages {
		stageTimes[k] = parallelizer.StageDecodeTime(est, st, batch, inst.links[k])
		dense += stageTimes[k]
	}
	if len(inst.stages) > 1 {
		dense += float64(len(inst.stages)-1) * perf.P2PTime(cfg.Cluster.InterLink, cfg.Model.HiddenStateBytes(batch))
	}
	last := inst.stages[len(inst.stages)-1]
	dense += est.LMHeadTime(last.Spec, batch, last.TP)
	c := &decodeCost{denseModule: moduleLatency(stageTimes), dense: dense}
	if inst.decodeMemo == nil {
		inst.decodeMemo = make(map[int]*decodeCost)
	}
	inst.decodeMemo[batch] = c
	return c
}

// tryDecode runs one decode iteration over the running batch.
func (inst *hetisInstance) tryDecode(s *sim.Simulator) bool {
	if len(inst.running) == 0 {
		return false
	}
	cfg := inst.cfg
	batch := len(inst.running)

	cost := inst.decodeCostFor(batch)
	attnPerLayer := inst.disp.AttnStepTime()
	attn := float64(cfg.Model.Layers) * attnPerLayer

	// §7.3 module metrics.
	inst.res.DenseTimes = append(inst.res.DenseTimes, cost.denseModule)
	if inst.attnScratch == nil {
		inst.attnScratch = make([]float64, len(inst.stages))
	}
	for k, st := range inst.stages {
		inst.attnScratch[k] = float64(st.Layers) * attnPerLayer
	}
	inst.res.AttnTimes = append(inst.res.AttnTimes, moduleLatency(inst.attnScratch))

	dt := cost.dense + attn + inst.pendingDelay
	inst.pendingDelay = 0
	inst.pending = s.After(dt, "decode-done", func(s *sim.Simulator) {
		inst.afterDecode(s)
		inst.step(s)
	})
	return true
}

// afterDecode advances every running request by one token and runs the
// §5.3 maintenance: memory-pressure handling and compute re-balancing.
func (inst *hetisInstance) afterDecode(s *sim.Simulator) {
	cfg := inst.cfg
	// still reuses a second buffer double-swapped with running, so the
	// per-iteration batch rebuild allocates nothing once warm. The two
	// backing arrays are always distinct, preserving the original
	// semantics: evictions triggered mid-loop splice inst.running (the old
	// array) and never touch still.
	still := inst.stillBuf[:0]
	if inst.overflowHit == nil {
		inst.overflowHit = make([]bool, inst.disp.NumWorkers())
	}
	anyOverflow := false
	for _, r := range inst.running {
		r.generated++
		if r.done() {
			inst.finishDeferred(s, r)
			continue
		}
		over, err := inst.disp.ExtendContext(r.wl.ID, 1)
		if err == nil {
			for _, w := range over {
				inst.overflowHit[w] = true
				anyOverflow = true
			}
		}
		inst.kvExtend(s, r.wl.ID)
		still = append(still, r)
	}
	inst.fleet.flushFinishes()
	prev := inst.running
	inst.running = still
	prev = prev[:cap(prev)]
	for i := range prev {
		prev[i] = nil // drop stale request pointers before reuse as scratch
	}
	inst.stillBuf = prev[:0]
	inst.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindDecode, Value: float64(len(still))})

	if anyOverflow {
		// Ascending worker order, like the sorted map keys it replaces.
		for w := range inst.overflowHit {
			if inst.overflowHit[w] {
				inst.overflowHit[w] = false
				inst.handleMemoryPressure(s, w)
			}
		}
	}
	inst.decodeSteps++
	every := cfg.RebalanceEvery
	if every <= 0 {
		every = 8
	}
	if !cfg.DisableRedispatch && len(inst.running) > 0 && inst.decodeSteps%every == 0 {
		if rd, err := inst.disp.RebalanceCompute(cfg.Theta, inst.frozenRequests(every)); err == nil && rd != nil {
			inst.applyRedispatch(s, rd)
		}
	}
	inst.trackPeak()
}

// underWatermark reports whether admitting ctx more tokens of full-head
// cache keeps the instance below the admission watermark.
func (inst *hetisInstance) underWatermark(ctx int) bool {
	wm := inst.cfg.AdmitWatermark
	if wm <= 0 {
		wm = 0.92
	}
	var used, capTotal float64
	for i, w := range inst.disp.Workers() {
		used += inst.disp.CacheBytes(i)
		capTotal += w.CapacityBytes
	}
	if capTotal <= 0 {
		return false
	}
	add := float64(inst.cfg.Model.Heads) * float64(ctx) *
		float64(inst.cfg.Model.KVBytesPerTokenHeadGroup()) / float64(inst.cfg.Model.GroupRatio())
	return (used+add)/capTotal <= wm
}

// kvAlloc mirrors a dispatch placement into the block managers.
func (inst *hetisInstance) kvAlloc(s *sim.Simulator, id int64, ctx int) bool {
	x := inst.disp.PlacementView(id)
	if x == nil {
		return false
	}
	r := inst.cfg.Model.GroupRatio()
	for i, heads := range x {
		if heads == 0 {
			continue
		}
		if err := inst.kv[i].Alloc(kvcache.RequestID(id), heads/r, ctx); err != nil {
			// Roll back earlier workers.
			for j := 0; j < i; j++ {
				inst.kv[j].Free(kvcache.RequestID(id))
			}
			return false
		}
	}
	return true
}

// kvExtend grows the block allocation by one token on every worker holding
// the request, force-evicting on block exhaustion.
func (inst *hetisInstance) kvExtend(s *sim.Simulator, id int64) {
	x := inst.disp.PlacementView(id)
	if x == nil {
		return
	}
	for i, heads := range x {
		if heads == 0 {
			continue
		}
		for inst.kv[i].Extend(kvcache.RequestID(id), 1) != nil {
			if !inst.evictOn(s, i, id) {
				return // nothing left to evict; accounting stays best-effort
			}
		}
	}
}

// kvFree releases a request everywhere.
func (inst *hetisInstance) kvFree(id int64) {
	for _, m := range inst.kv {
		m.Free(kvcache.RequestID(id))
	}
}

// frozenRequests lists requests migrated within the last `window` decode
// steps; they are exempt from further re-dispatching to damp ping-pong.
func (inst *hetisInstance) frozenRequests(window int) map[int64]bool {
	if len(inst.lastMig) == 0 {
		return nil // reads on a nil map are false, and no allocation
	}
	out := make(map[int64]bool)
	//hetis:ordered builds a membership set; callers only test membership, so insertion order is invisible
	for id, step := range inst.lastMig {
		if inst.decodeSteps-step < 2*window {
			out[id] = true
		}
	}
	return out
}

// handleMemoryPressure implements §5.3.2 for one exhausted worker: first
// try re-dispatching the device's newest request into cluster slack, then
// fall back to eviction. Memory pressure overrides the migration cooldown:
// relieving an exhausted device beats damping.
func (inst *hetisInstance) handleMemoryPressure(s *sim.Simulator, w int) {
	cfg := inst.cfg
	if !cfg.DisableRedispatch {
		ids := make([]int64, 0)
		for _, rid := range inst.kv[w].Requests() {
			ids = append(ids, int64(rid))
		}
		for _, id := range newestFirst(ids, inst.byID) {
			if inst.disp.CacheBytes(w) <= inst.disp.Workers()[w].CapacityBytes {
				return
			}
			rd, err := inst.disp.RebalanceMemory(w, []int64{id})
			if err != nil || rd == nil {
				break
			}
			inst.applyRedispatch(s, rd)
		}
		if inst.disp.CacheBytes(w) <= inst.disp.Workers()[w].CapacityBytes {
			return
		}
	}
	// Eviction. Plain LIFO (baseline) picks the globally newest running
	// request; Hetis' modified LIFO picks the newest holding memory on w.
	for inst.disp.CacheBytes(w) > inst.disp.Workers()[w].CapacityBytes {
		var victim int64 = -1
		if cfg.DisableRedispatch {
			var seq int64 = -1
			for _, r := range inst.running {
				if r.seq > seq {
					seq = r.seq
					victim = r.wl.ID
				}
			}
		} else if v, ok := inst.kv[w].VictimLIFO(); ok {
			victim = int64(v)
		}
		if victim < 0 {
			return
		}
		if !inst.evict(s, victim) {
			return
		}
	}
}

// evictOn evicts the LIFO victim holding blocks on worker w, preferring a
// request other than protect.
func (inst *hetisInstance) evictOn(s *sim.Simulator, w int, protect int64) bool {
	reqs := inst.kv[w].Requests()
	for k := len(reqs) - 1; k >= 0; k-- {
		id := int64(reqs[k])
		if id == protect {
			continue
		}
		return inst.evict(s, id)
	}
	return false
}

// evict removes a request from the batch and recycles it to the waiting
// queue for recomputation.
func (inst *hetisInstance) evict(s *sim.Simulator, id int64) bool {
	r, ok := inst.byID[id]
	if !ok {
		return false
	}
	inst.disp.Remove(id)
	inst.kvFree(id)
	for k, rr := range inst.running {
		if rr.wl.ID == id {
			inst.running = append(inst.running[:k], inst.running[k+1:]...)
			break
		}
	}
	delete(inst.byID, id)
	r.evicted = true
	r.restartCtx = r.contextLen()
	r.hauled = false
	inst.waiting.pushFront(r)
	inst.res.Evictions++
	inst.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindEviction, Request: id})
	return true
}

// preemptFor evicts the cheapest strictly-lower-priority running request
// so r can admit (multi-tier chaos only): lowest priority first, newest
// within a priority. The victim requeues — preemption costs latency, not a
// completion. Returns false when no lower-priority victim exists.
func (inst *hetisInstance) preemptFor(s *sim.Simulator, r *request) bool {
	idx := -1
	for i, v := range inst.running {
		if v.prio >= r.prio {
			continue
		}
		if idx == -1 {
			idx = i
			continue
		}
		b := inst.running[idx]
		if v.prio < b.prio || (v.prio == b.prio && v.seq > b.seq) {
			idx = i
		}
	}
	if idx < 0 {
		return false
	}
	v := inst.running[idx]
	inst.running = append(inst.running[:idx], inst.running[idx+1:]...)
	inst.disp.Remove(v.wl.ID)
	inst.kvFree(v.wl.ID)
	delete(inst.byID, v.wl.ID)
	delete(inst.lastMig, v.wl.ID)
	v.evicted = true
	v.restartCtx = v.contextLen()
	v.hauled = false
	inst.waiting.push(v)
	inst.fleet.ctl.notePreempt(s, v)
	return true
}

// applyRedispatch moves block allocations to match a new placement and
// accounts the migration (overlapped on low-priority streams unless the
// blocking ablation is on).
func (inst *hetisInstance) applyRedispatch(s *sim.Simulator, rd *dispatch.Redispatch) {
	cfg := inst.cfg
	r := cfg.Model.GroupRatio()
	ctx := inst.disp.ContextLen(rd.Request)
	groupTok := cfg.Model.KVBytesPerTokenHeadGroup() * int64(cfg.Model.Layers)

	oldMap := map[int]int{}
	newMap := map[int]int{}
	for i := range rd.Old {
		if rd.Old[i] > 0 {
			oldMap[i] = rd.Old[i] / r
		}
		if rd.New[i] > 0 {
			newMap[i] = rd.New[i] / r
		}
	}
	moves, err := kvcache.PlanMigration(oldMap, newMap, ctx, groupTok)
	if err != nil {
		return
	}
	// Apply to managers: shrink sources first to free blocks, then grow
	// destinations.
	id := kvcache.RequestID(rd.Request)
	for i := range inst.kv {
		oldG, newG := oldMap[i], newMap[i]
		if newG < oldG {
			if newG == 0 {
				inst.kv[i].Free(id)
			} else {
				_ = inst.kv[i].ShrinkGroups(id, oldG-newG)
			}
		}
	}
	for i := range inst.kv {
		oldG, newG := oldMap[i], newMap[i]
		if newG > oldG {
			var err error
			if oldG == 0 {
				err = inst.kv[i].Alloc(id, newG, ctx)
			} else {
				err = inst.kv[i].GrowGroups(id, newG-oldG)
			}
			for errors.Is(err, kvcache.ErrNoSpace) {
				if !inst.evictOn(s, i, rd.Request) {
					break
				}
				if oldG == 0 {
					err = inst.kv[i].Alloc(id, newG, ctx)
				} else {
					err = inst.kv[i].GrowGroups(id, newG-oldG)
				}
			}
		}
	}
	bytes := kvcache.TotalMoveBytes(moves)
	inst.lastMig[rd.Request] = inst.decodeSteps
	inst.res.Migrations++
	inst.res.MigratedBytes += bytes
	inst.res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindRedispatch, Request: rd.Request, Value: float64(bytes)})
	if cfg.BlockingMigration && len(moves) > 0 {
		var maxLeg float64
		for _, mv := range moves {
			link := inst.cfg.Cluster.Link(inst.workerDev[mv.From], inst.workerDev[mv.To])
			if t := perf.P2PTime(link, mv.Bytes); t > maxLeg {
				maxLeg = t
			}
		}
		inst.pendingDelay += maxLeg
	}
}

// finishDeferred is finish with the sink append batched (see
// fleetCore.finishDeferred); the iteration loops use it and flush once
// per batch. The dispatcher/KV release stays inline: later requests in
// the same loop observe the freed capacity exactly as before.
func (inst *hetisInstance) finishDeferred(s *sim.Simulator, r *request) {
	inst.disp.Remove(r.wl.ID)
	inst.kvFree(r.wl.ID)
	delete(inst.byID, r.wl.ID)
	delete(inst.lastMig, r.wl.ID)
	inst.fleet.finishDeferred(s, r)
}

func (inst *hetisInstance) trackPeak() {
	var used int64
	for _, m := range inst.kv {
		used += m.UsedBytes()
	}
	if used > inst.res.PeakCacheUsed {
		inst.res.PeakCacheUsed = used
	}
}

// seriesName caches the per-device sampler series names ("heads-3",
// "cache-7"): sample runs on a timer for the whole horizon, and the small
// device IDs repeat every tick, so formatting them once is enough.
var seriesName struct {
	sync.Mutex
	heads map[int]string
	cache map[int]string
}

// sampleSeriesName returns the cached name for one sampler family,
// formatting it on first use.
func sampleSeriesName(byDev *map[int]string, prefix string, dev int) string {
	seriesName.Lock()
	defer seriesName.Unlock()
	if *byDev == nil {
		*byDev = make(map[int]string)
	}
	name, ok := (*byDev)[dev]
	if !ok {
		name = fmt.Sprintf("%s-%d", prefix, dev)
		(*byDev)[dev] = name
	}
	return name
}

// sample records per-device head counts and cache utilization (Fig. 14).
func (inst *hetisInstance) sample(now float64) {
	for i, dev := range inst.workerDev {
		hs, ok := inst.res.HeadSeries[dev]
		if !ok {
			hs = &metrics.Series{Name: sampleSeriesName(&seriesName.heads, "heads", int(dev))}
			inst.res.HeadSeries[dev] = hs
		}
		hs.Append(now, inst.disp.Heads(i))

		cs, ok := inst.res.CacheSeries[dev]
		if !ok {
			cs = &metrics.Series{Name: sampleSeriesName(&seriesName.cache, "cache", int(dev))}
			inst.res.CacheSeries[dev] = cs
		}
		cs.Append(now, inst.kv[i].Utilization()*100)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Profile returns the fitted attention/network models the engine plans
// with.
func (h *Hetis) Profile() *profile.Profile { return h.prof }
