package engine

import (
	"fmt"

	"hetis/internal/hardware"
	"hetis/internal/parallelizer"
	"hetis/internal/perf"
	"hetis/internal/workload"
)

// VLLM is a homogeneous reference system: vLLM-style tensor-parallel
// serving on the cluster's top GPU tier only, ignoring every low-end
// device. It answers the motivating question of §1 — how much do the
// heterogeneous leftovers actually buy — by providing the
// high-end-only floor that Hetis must beat to justify itself.
type VLLM struct {
	cfg  Config
	est  *perf.Estimator
	pipe *staticPipeline
}

// NewVLLM builds the reference engine on the highest-tier GPU type.
func NewVLLM(cfg Config) (*VLLM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	est := perf.New(cfg.Model)
	groups := cfg.Cluster.DevicesByType()
	top := groups[:1]
	pipe, err := buildStaticPipeline(cfg, est, cfg.Cluster, top, 32)
	if err != nil {
		return nil, fmt.Errorf("engine: vllm: %w", err)
	}
	return &VLLM{cfg: cfg, est: est, pipe: pipe}, nil
}

// Name implements Engine.
func (v *VLLM) Name() string { return "vllm" }

// CacheCapacity implements Engine.
func (v *VLLM) CacheCapacity() int64 { return v.pipe.cacheCapacityBytes(v.cfg.Model) }

// Stages exposes the layout.
func (v *VLLM) Stages() []parallelizer.Stage { return v.pipe.stages }

// Devices lists the GPUs the reference engine actually uses.
func (v *VLLM) Devices() []hardware.DeviceID {
	var out []hardware.DeviceID
	for _, st := range v.pipe.stages {
		out = append(out, st.Devices...)
	}
	return out
}

// Run implements Engine, reusing the colocated static runtime.
func (v *VLLM) Run(reqs []workload.Request, horizon float64) (*Result, error) {
	return runStatic(v.Name(), v.cfg, v.est, v.pipe, v.CacheCapacity(), reqs, horizon)
}
