package engine

import (
	"fmt"

	"hetis/internal/hardware"
	"hetis/internal/parallelizer"
	"hetis/internal/perf"
	"hetis/internal/sim"
	"hetis/internal/trace"
	"hetis/internal/workload"
)

// VLLM is a homogeneous reference system: vLLM-style tensor-parallel
// serving on the cluster's top GPU tier only, ignoring every low-end
// device. It answers the motivating question of §1 — how much do the
// heterogeneous leftovers actually buy — by providing the
// high-end-only floor that Hetis must beat to justify itself.
type VLLM struct {
	cfg  Config
	est  *perf.Estimator
	pipe *staticPipeline
}

// NewVLLM builds the reference engine on the highest-tier GPU type.
func NewVLLM(cfg Config) (*VLLM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	est := perf.New(cfg.Model)
	groups := cfg.Cluster.DevicesByType()
	top := groups[:1]
	pipe, err := buildStaticPipeline(cfg, est, cfg.Cluster, top, 32)
	if err != nil {
		return nil, fmt.Errorf("engine: vllm: %w", err)
	}
	return &VLLM{cfg: cfg, est: est, pipe: pipe}, nil
}

// Name implements Engine.
func (v *VLLM) Name() string { return "vllm" }

// CacheCapacity implements Engine.
func (v *VLLM) CacheCapacity() int64 { return v.pipe.cacheCapacityBytes(v.cfg.Model) }

// Stages exposes the layout.
func (v *VLLM) Stages() []parallelizer.Stage { return v.pipe.stages }

// Devices lists the GPUs the reference engine actually uses.
func (v *VLLM) Devices() []hardware.DeviceID {
	var out []hardware.DeviceID
	for _, st := range v.pipe.stages {
		out = append(out, st.Devices...)
	}
	return out
}

// Run implements Engine, reusing the colocated static runtime.
func (v *VLLM) Run(reqs []workload.Request, horizon float64) (*Result, error) {
	reqs = workload.Truncate(reqs, v.cfg.Model.MaxSeqLen)
	sink, rec := v.cfg.newRunSink()
	res := &Result{
		Engine:        v.Name(),
		Sink:          sink,
		Recorder:      rec,
		Trace:         v.cfg.newTraceLog(),
		CacheCapacity: v.CacheCapacity(),
	}
	iters := moduleSeriesCap(reqs)
	res.DenseTimes = make([]float64, 0, iters)
	res.AttnTimes = make([]float64, 0, iters)
	v.pipe.usedTokens = 0
	rt := &staticRuntime{
		cfg:  v.cfg,
		est:  v.est,
		pipe: v.pipe,
		res:  res,
		byID: map[int64]*request{},
		seq:  map[int64]int64{},
	}
	s := sim.New()
	s.MaxEvents = v.cfg.MaxSimEvents(len(reqs))
	scheduleArrivals(s, reqs, func(s *sim.Simulator, r *request) {
		rt.waiting.push(r)
		rt.seq[r.wl.ID] = rt.nextSeq
		rt.nextSeq++
		res.Trace.Add(trace.Event{At: s.Now(), Kind: trace.KindArrival, Request: r.wl.ID})
		rt.kick(s)
	})
	if err := s.Run(horizon); err != nil {
		return nil, err
	}
	res.Horizon = s.Now()
	res.Events = s.Executed
	return res, nil
}
