package engine

import (
	"testing"

	"hetis/internal/workload"
)

// refDeque is the trivially-correct oracle for the ring-backed queue: a
// plain slice where pushFront really prepends and pop really shifts.
// Mirrors the frozen-reference pattern of internal/sim's
// FuzzQueueEquivalence and internal/lp's reference solver.
type refDeque struct{ items []*request }

func (d *refDeque) push(r *request)      { d.items = append(d.items, r) }
func (d *refDeque) pushFront(r *request) { d.items = append([]*request{r}, d.items...) }
func (d *refDeque) len() int             { return len(d.items) }
func (d *refDeque) peek() *request {
	if len(d.items) == 0 {
		return nil
	}
	return d.items[0]
}
func (d *refDeque) pop() *request {
	if len(d.items) == 0 {
		return nil
	}
	r := d.items[0]
	d.items = d.items[1:]
	return r
}

// FuzzRequestQueueEquivalence drives the ring deque and the oracle with
// the same operation stream — each input byte is one op — and requires
// identical results throughout: same pops, same peeks, same lengths.
func FuzzRequestQueueEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 3, 2, 2, 2})
	f.Add([]byte{1, 1, 1, 1, 2, 0, 2, 1, 2, 2, 2})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 2, 2, 2, 2, 2, 2, 2})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var q queue
		var ref refDeque
		next := int64(0)
		for i, op := range ops {
			switch op % 4 {
			case 0, 1:
				r := &request{wl: workload.Request{ID: next}}
				next++
				if op%4 == 0 {
					q.push(r)
					ref.push(r)
				} else {
					q.pushFront(r)
					ref.pushFront(r)
				}
			case 2:
				got, want := q.pop(), ref.pop()
				if got != want {
					t.Fatalf("op %d: pop mismatch: ring %v, oracle %v", i, got, want)
				}
			case 3:
				got, want := q.peek(), ref.peek()
				if got != want {
					t.Fatalf("op %d: peek mismatch: ring %v, oracle %v", i, got, want)
				}
			}
			if q.len() != ref.len() {
				t.Fatalf("op %d: length mismatch: ring %d, oracle %d", i, q.len(), ref.len())
			}
		}
		for ref.len() > 0 {
			if got, want := q.pop(), ref.pop(); got != want {
				t.Fatalf("drain: pop mismatch: ring %v, oracle %v", got, want)
			}
		}
		if q.pop() != nil {
			t.Fatal("ring queue pops after the oracle drained")
		}
	})
}
