package engine

import (
	"testing"

	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/workload"
)

// Engines are long-lived objects in a real deployment; running the same
// engine twice must not leak state from the first run into the second.

func TestHetisRunTwice(t *testing.T) {
	reqs := workload.Poisson(workload.ShareGPT, 3, 15, 21)
	h := buildHetis(t, model.Llama13B, reqs)
	a, err := h.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.Horizon != b.Horizon {
		t.Fatalf("second run diverged: %d@%g vs %d@%g", a.Completed, a.Horizon, b.Completed, b.Horizon)
	}
}

func TestHexGenRunTwice(t *testing.T) {
	cfg := DefaultConfig(model.Llama13B, hardware.PaperCluster())
	hx, err := NewHexGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.Poisson(workload.HumanEval, 4, 15, 22)
	a, err := hx.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hx.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.Horizon != b.Horizon {
		t.Fatalf("second run diverged: %d@%g vs %d@%g", a.Completed, a.Horizon, b.Completed, b.Horizon)
	}
}

func TestSplitwiseRunTwice(t *testing.T) {
	cfg := DefaultConfig(model.Llama13B, hardware.PaperCluster())
	sw, err := NewSplitwise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.Poisson(workload.HumanEval, 4, 15, 23)
	a, err := sw.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sw.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.Horizon != b.Horizon {
		t.Fatalf("second run diverged: %d@%g vs %d@%g", a.Completed, a.Horizon, b.Completed, b.Horizon)
	}
}

func TestVLLMRunTwice(t *testing.T) {
	cfg := DefaultConfig(model.Llama13B, hardware.PaperCluster())
	v, err := NewVLLM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.Poisson(workload.ShareGPT, 3, 15, 24)
	a, err := v.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := v.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.Horizon != b.Horizon {
		t.Fatalf("second run diverged: %d@%g vs %d@%g", a.Completed, a.Horizon, b.Completed, b.Horizon)
	}
}

func TestSplitwiseHandoffSerialization(t *testing.T) {
	// Two requests prefilled in one batch must hand off back to back on
	// the NIC: migration count equals decoded requests and migrated bytes
	// equal the sum of their full-context KV.
	cfg := DefaultConfig(model.Llama13B, hardware.PaperCluster())
	sw, err := NewSplitwise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []workload.Request{
		{ID: 0, ArrivalAt: 0, PromptLen: 400, OutputLen: 8},
		{ID: 1, ArrivalAt: 0, PromptLen: 600, OutputLen: 8},
	}
	res, err := sw.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 2 {
		t.Fatalf("want 2 handoffs, got %d", res.Migrations)
	}
	kv := model.Llama13B.KVBytesPerToken()
	want := (400 + 1 + 600 + 1) * kv // context includes the first token
	if res.MigratedBytes != want {
		t.Fatalf("migrated %d bytes, want %d", res.MigratedBytes, want)
	}
	if res.Completed != 2 {
		t.Fatalf("completed %d", res.Completed)
	}
}
