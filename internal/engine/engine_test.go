package engine

import (
	"testing"

	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/trace"
	"hetis/internal/workload"
)

// buildHetis constructs the Hetis engine on the paper cluster.
func buildHetis(t *testing.T, m model.Config, reqs []workload.Request) *Hetis {
	t.Helper()
	cfg := DefaultConfig(m, hardware.PaperCluster())
	plan, err := PlanForWorkload(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHetis(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func shortTrace(dist workload.LengthDist, rate, dur float64, seed int64) []workload.Request {
	return workload.Poisson(dist, rate, dur, seed)
}

func TestHetisCompletesAllRequests(t *testing.T) {
	reqs := shortTrace(workload.HumanEval, 4, 20, 1)
	h := buildHetis(t, model.Llama13B, reqs)
	res, err := h.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(reqs) {
		t.Fatalf("completed %d of %d requests", res.Completed, len(reqs))
	}
	if res.Recorder.Count() != len(reqs) {
		t.Fatalf("recorder holds %d records, want %d", res.Recorder.Count(), len(reqs))
	}
	for _, r := range res.Recorder.Records() {
		if r.TTFT() <= 0 {
			t.Fatalf("request %d has non-positive TTFT %g", r.ID, r.TTFT())
		}
		if r.FinishedAt < r.FirstToken {
			t.Fatalf("request %d finished before first token", r.ID)
		}
	}
}

func TestHetisDeterministic(t *testing.T) {
	reqs := shortTrace(workload.ShareGPT, 2, 15, 7)
	h1 := buildHetis(t, model.Llama13B, reqs)
	r1, err := h1.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	h2 := buildHetis(t, model.Llama13B, reqs)
	r2, err := h2.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Completed != r2.Completed || r1.Horizon != r2.Horizon {
		t.Fatalf("non-deterministic: %d@%g vs %d@%g", r1.Completed, r1.Horizon, r2.Completed, r2.Horizon)
	}
	s1 := r1.Recorder.NormLatencySummary()
	s2 := r2.Recorder.NormLatencySummary()
	if s1.Mean != s2.Mean || s1.P95 != s2.P95 {
		t.Fatalf("latency summaries differ: %+v vs %+v", s1, s2)
	}
}

func TestBaselinesComplete(t *testing.T) {
	reqs := shortTrace(workload.HumanEval, 4, 20, 2)
	cfg := DefaultConfig(model.Llama13B, hardware.PaperCluster())

	hx, err := NewHexGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resH, err := hx.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resH.Completed != len(reqs) {
		t.Errorf("hexgen completed %d of %d", resH.Completed, len(reqs))
	}

	sw, err := NewSplitwise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resS, err := sw.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resS.Completed != len(reqs) {
		t.Errorf("splitwise completed %d of %d", resS.Completed, len(reqs))
	}
	// Splitwise must have paid one cache handoff per decoded request.
	if resS.Migrations == 0 {
		t.Error("splitwise ran without any KV handoffs")
	}
}

func TestCacheCapacityOrderingFig11(t *testing.T) {
	// Fig. 11: Hetis provides the largest KV space, up to 1.87x more;
	// Splitwise the least (two full model copies).
	for _, m := range []model.Config{model.Llama13B, model.OPT30B, model.Llama70B} {
		cfg := DefaultConfig(m, hardware.PaperCluster())
		plan, err := PlanForWorkload(cfg, nil)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		het, err := NewHetis(cfg, plan)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		hx, err := NewHexGen(cfg)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		sw, err := NewSplitwise(cfg)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		ch, cx, cs := het.CacheCapacity(), hx.CacheCapacity(), sw.CacheCapacity()
		t.Logf("%s cache: hetis %.0fGB, hexgen %.0fGB, splitwise %.0fGB",
			m.Name, float64(ch)/1e9, float64(cx)/1e9, float64(cs)/1e9)
		if ch <= cx {
			t.Errorf("%s: hetis cache (%d) should exceed hexgen (%d)", m.Name, ch, cx)
		}
		if cx <= cs {
			t.Errorf("%s: hexgen cache (%d) should exceed splitwise (%d)", m.Name, cx, cs)
		}
	}
}

func TestHexGenStagesMatchPaperLayout(t *testing.T) {
	cfg := DefaultConfig(model.Llama70B, hardware.PaperCluster())
	hx, err := NewHexGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stages := hx.Stages()
	// §7.2: four stages of homogeneous GPUs (A100s, 3090s, 3090s, P100s).
	if len(stages) != 4 {
		t.Fatalf("hexgen has %d stages, want 4: %+v", len(stages), stages)
	}
	names := []string{stages[0].Spec.Name, stages[1].Spec.Name, stages[2].Spec.Name, stages[3].Spec.Name}
	want := []string{"A100", "3090", "3090", "P100"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("stage order %v, want %v", names, want)
		}
	}
	// A100 stage must hold the most layers (asymmetric split).
	if stages[0].Layers <= stages[3].Layers {
		t.Errorf("A100 stage has %d layers, P100 stage %d; want asymmetric", stages[0].Layers, stages[3].Layers)
	}
	total := 0
	for _, s := range stages {
		total += s.Layers
	}
	if total != model.Llama70B.Layers {
		t.Fatalf("stages hold %d layers, want %d", total, model.Llama70B.Layers)
	}
}

func TestSplitwisePhaseSplit(t *testing.T) {
	cfg := DefaultConfig(model.Llama13B, hardware.PaperCluster())
	sw, err := NewSplitwise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Prefill side should be A100-only for a 13B model.
	for _, st := range sw.PrefillStages() {
		if st.Spec.Name != "A100" {
			t.Errorf("prefill stage on %s, want A100", st.Spec.Name)
		}
	}
	// Decode side must not contain any prefill device.
	prefillDevs := map[hardware.DeviceID]bool{}
	for _, st := range sw.PrefillStages() {
		for _, id := range st.Devices {
			prefillDevs[id] = true
		}
	}
	for _, st := range sw.DecodeStages() {
		for _, id := range st.Devices {
			if prefillDevs[id] {
				t.Errorf("device %d serves both phases", id)
			}
		}
	}
}

func TestSplitwiseLlama70BStillConstructs(t *testing.T) {
	// Llama-70B weights do not fit on 3090s+P100s alone; the planner must
	// shift A100s to the decode side rather than fail.
	cfg := DefaultConfig(model.Llama70B, hardware.PaperCluster())
	sw, err := NewSplitwise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.PrefillStages()) == 0 || len(sw.DecodeStages()) == 0 {
		t.Fatal("both phases need devices")
	}
}

func TestHetisBeatsBaselinesUnderLoad(t *testing.T) {
	// The headline result (Figs. 8-10): at a rate that pressures the
	// baselines, Hetis sustains lower normalized latency.
	reqs := shortTrace(workload.ShareGPT, 6, 30, 3)
	m := model.Llama13B
	cfg := DefaultConfig(m, hardware.PaperCluster())

	h := buildHetis(t, m, reqs)
	resHet, err := h.Run(reqs, 3600)
	if err != nil {
		t.Fatal(err)
	}
	hx, err := NewHexGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resHx, err := hx.Run(reqs, 3600)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSplitwise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resSw, err := sw.Run(reqs, 3600)
	if err != nil {
		t.Fatal(err)
	}

	lat := func(r *Result) float64 { return r.Recorder.NormLatencySummary().Mean }
	t.Logf("norm latency: hetis %.4f, hexgen %.4f, splitwise %.4f (completed %d/%d/%d)",
		lat(resHet), lat(resHx), lat(resSw), resHet.Completed, resHx.Completed, resSw.Completed)
	if resHet.Completed < resHx.Completed || resHet.Completed < resSw.Completed {
		t.Errorf("hetis completed fewer requests than a baseline")
	}
	if lat(resHet) >= lat(resHx) {
		t.Errorf("hetis latency %.4f should beat hexgen %.4f", lat(resHet), lat(resHx))
	}
	if lat(resHet) >= lat(resSw) {
		t.Errorf("hetis latency %.4f should beat splitwise %.4f", lat(resHet), lat(resSw))
	}
}

func TestEvictionUnderMemoryPressure(t *testing.T) {
	// A tiny two-GPU cluster with LongBench-scale contexts must trigger
	// evictions or drops without deadlocking.
	cluster := hardware.NewBuilder(hardware.LAN100G).
		AddHost("h0", hardware.PCIe4x16, hardware.A100, 1).
		AddHost("h1", hardware.PCIe3x16, hardware.P100, 1).
		MustBuild()
	m := model.Llama13B
	cfg := DefaultConfig(m, cluster)
	reqs := workload.Poisson(workload.LongBench, 3, 20, 5)
	plan, err := PlanForWorkload(cfg, reqs)
	if err != nil {
		t.Skipf("plan infeasible on tiny cluster: %v", err)
	}
	h, err := NewHetis(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Run(reqs, 2000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tiny cluster: %d completed, %d evictions, horizon %.1fs",
		res.Completed, res.Evictions, res.Horizon)
	if res.Completed == 0 {
		t.Fatal("nothing completed on the tiny cluster")
	}
}

func TestTraceEventsEmitted(t *testing.T) {
	reqs := shortTrace(workload.HumanEval, 3, 10, 9)
	h := buildHetis(t, model.Llama13B, reqs)
	res, err := h.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Count(trace.KindArrival) != len(reqs) {
		t.Errorf("arrivals %d want %d", res.Trace.Count(trace.KindArrival), len(reqs))
	}
	if res.Trace.Count(trace.KindFinish) != len(reqs) {
		t.Errorf("finishes %d want %d", res.Trace.Count(trace.KindFinish), len(reqs))
	}
	if res.Trace.Count(trace.KindPrefill) == 0 || res.Trace.Count(trace.KindDecode) == 0 {
		t.Error("missing prefill/decode events")
	}
}

func TestSampledSeries(t *testing.T) {
	reqs := shortTrace(workload.ShareGPT, 3, 12, 4)
	h := buildHetis(t, model.Llama13B, reqs)
	res, err := h.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HeadSeries) == 0 || len(res.CacheSeries) == 0 {
		t.Fatal("no sampled series")
	}
	for dev, s := range res.CacheSeries {
		for _, v := range s.Values {
			if v < 0 || v > 100 {
				t.Fatalf("device %d cache utilization %g out of [0,100]", dev, v)
			}
		}
	}
}

func TestModuleTimesRecorded(t *testing.T) {
	reqs := shortTrace(workload.ShareGPT, 3, 12, 8)
	h := buildHetis(t, model.Llama13B, reqs)
	res, err := h.Run(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DenseTimes) == 0 || len(res.AttnTimes) == 0 {
		t.Fatal("module times missing")
	}
	for _, v := range res.DenseTimes {
		if v <= 0 {
			t.Fatal("non-positive dense module time")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig(model.Llama13B, hardware.PaperCluster())
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Cluster = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil cluster should fail")
	}
	bad = good
	bad.Theta = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative theta should fail")
	}
	bad = good
	bad.MaxRunning = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MaxRunning should fail")
	}
	if _, err := NewHetis(good, nil); err == nil {
		t.Error("nil plan should fail")
	}
}

func TestQueueBasics(t *testing.T) {
	var q queue
	if q.pop() != nil || q.peek() != nil || q.len() != 0 {
		t.Fatal("empty queue misbehaves")
	}
	a := &request{}
	b := &request{}
	c := &request{}
	q.push(a)
	q.push(b)
	q.pushFront(c)
	if q.len() != 3 || q.pop() != c || q.pop() != a || q.pop() != b {
		t.Fatal("queue ordering broken")
	}
	// pushFront after pops reuses the vacated slot.
	q.push(a)
	q.pop()
	q.pushFront(b)
	if q.len() != 1 || q.pop() != b {
		t.Fatal("pushFront after pop broken")
	}
}

func TestModuleLatencyMetric(t *testing.T) {
	if got := moduleLatency(nil); got != 0 {
		t.Fatalf("empty moduleLatency = %g", got)
	}
	if got := moduleLatency([]float64{1, 3, 2}); got != 9 {
		t.Fatalf("moduleLatency = %g want 9 (max 3 x 3 stages)", got)
	}
}
