// Package engine contains the iteration-level serving simulators: the Hetis
// engine (primary workers + pooled attention workers with dynamic head-wise
// dispatch) and the two baselines of §7 — Splitwise (prefill/decode
// disaggregation) and HexGen (static asymmetric parallelism). All engines
// run on the discrete-event kernel with costs from the perf model, share
// the continuous-batching loop structure, and produce the same Result so
// experiments can compare them row by row.
package engine

import (
	"fmt"
	"sort"

	"hetis/internal/hardware"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/sim"
	"hetis/internal/trace"
	"hetis/internal/workload"
)

// Config carries the knobs shared by all engines.
type Config struct {
	Model   model.Config
	Cluster *hardware.Cluster

	// Theta is Hetis' re-dispatching threshold (§5.3); default 0.5.
	Theta float64
	// DisableRedispatch turns §5.3 off: memory exhaustion falls back to a
	// plain (device-oblivious) LIFO eviction — the Fig. 15(a) baseline.
	DisableRedispatch bool
	// BlockingMigration charges cache-migration time to the iteration
	// instead of overlapping it on low-priority streams (ablation).
	BlockingMigration bool
	// RebalanceEvery is the number of decode iterations between §5.3.1
	// imbalance checks (each check solves the ideal-placement LP).
	RebalanceEvery int
	// GreedyDispatch replaces the Eq. 7 LP with the greedy
	// longest-processing-time heuristic (ablation).
	GreedyDispatch bool
	// DisableLPWarmStart turns off the dispatcher's warm-start/patching
	// layer, keeping the exact-input memo and lower-bound skip — the
	// pre-warm-start solver behavior BENCH.json baselines are recorded
	// with. Decisions are identical either way; only solver work changes.
	DisableLPWarmStart bool

	// MaxPrefillTokens bounds the tokens prefilled per iteration.
	MaxPrefillTokens int
	// MaxPrefillRequests bounds the prompts admitted per iteration.
	MaxPrefillRequests int
	// MaxRunning bounds the decode batch per instance.
	MaxRunning int
	// AdmitWatermark is the cache-utilization ceiling for admitting new
	// (or recycled) requests: admission stops when the projected
	// utilization exceeds it, leaving slack for running requests to grow.
	// This is the hysteresis that keeps eviction storms from livelocking
	// the batch under overload (vLLM's watermark, made explicit).
	AdmitWatermark float64

	// MaxEventsPerRequest scales the simulator's runaway guard to the
	// trace: a run aborts after len(reqs)×MaxEventsPerRequest events (but
	// never fewer than minEventBudget, so tiny traces keep slack for
	// sampling timers and rebalance checks). 0 takes
	// DefaultMaxEventsPerRequest. See Config.MaxSimEvents.
	MaxEventsPerRequest int

	// MemHeadroom is the memory fraction reserved for activations.
	MemHeadroom float64
	// SampleEvery is the trace-sampling period in seconds (0 disables).
	SampleEvery float64
	// Seed drives any randomized tie-breaking (none today; kept for
	// forward compatibility).
	Seed int64

	// Sink receives every finished request's metrics.RequestRecord as the
	// run emits it. Nil (the default) stores records exactly in a fresh
	// metrics.Recorder per run — the behaviour golden traces pin. Injecting
	// a streaming sink (metrics.StreamingSink, WindowedSeries, TenantMux,
	// or a Tee of them) bounds measurement memory for million-request
	// traces. A non-nil Sink is per-run state: reuse across runs
	// accumulates.
	Sink metrics.Sink
	// NoTrace disables the per-event structured trace log; Result.Trace is
	// nil (trace.Log is nil-safe) and the run stops holding O(events)
	// memory for it. Large-scale streaming runs want this on.
	NoTrace bool

	// Chaos configures the resilience layer: replica failure windows,
	// SLO-driven autoscaling, and priority tiers with admission control and
	// preemption. Nil — or a config whose normalize() reports it inert —
	// leaves the engines on the exact legacy code path, so healthy runs stay
	// byte-identical to their pre-chaos golden traces.
	Chaos *ChaosConfig
}

// DefaultConfig returns the standard engine configuration for a model on a
// cluster.
func DefaultConfig(cfg model.Config, cluster *hardware.Cluster) Config {
	return Config{
		Model:              cfg,
		Cluster:            cluster,
		Theta:              0.5,
		RebalanceEvery:     8,
		MaxPrefillTokens:   8192,
		MaxPrefillRequests: 8,
		MaxRunning:         512,
		AdmitWatermark:     0.92,
		MemHeadroom:        0.08,
		SampleEvery:        1.0,
	}
}

// DefaultMaxEventsPerRequest is the per-request event budget of the
// simulator's runaway guard. A request's worst case — solo decode of a
// full context window plus repeated eviction/re-prefill cycles — stays
// well under it, while a genuine scheduling livelock (events that never
// advance a request) still trips the guard quickly.
const DefaultMaxEventsPerRequest = 65536

// minEventBudget floors the runaway guard so tiny traces keep slack for
// per-second sampling timers and rebalance cadence events.
const minEventBudget = 1_000_000

// MaxSimEvents is the runaway-guard event budget for a trace of n
// requests: n×MaxEventsPerRequest, floored at minEventBudget. Scaling with
// the trace keeps the guard meaningful for small runs without tripping on
// million-request traces (the old fixed 20M literal did).
//
// Chaos multiplies legitimate work per request — every replica runs its
// own loop timers, each failure window re-dispatches (and possibly
// re-prefills) a replica's whole population, autoscaling adds a tick loop
// plus drain/activate churn, and tier preemption requeues victims — so a
// chaotic run scales the budget by the fleet width and the configured
// chaos event classes. A genuine livelock still trips the guard: the
// multiplier is a constant for a given config, while a livelock generates
// events without bound.
func (c Config) MaxSimEvents(n int) uint64 {
	per := c.MaxEventsPerRequest
	if per <= 0 {
		per = DefaultMaxEventsPerRequest
	}
	budget := uint64(per) * uint64(n)
	if chaos := c.Chaos.normalize(); chaos != nil {
		mult := uint64(chaos.maxReplicas())
		// Each failure window can force a full re-dispatch/re-prefill pass;
		// autoscaling and tiering each add their own event class.
		mult += uint64(len(chaos.Failures))
		if chaos.Autoscale != nil {
			mult++
		}
		if tiersActive(chaos.Tiers) {
			mult++
		}
		budget *= mult
	}
	if budget < minEventBudget {
		budget = minEventBudget
	}
	return budget
}

// Validate reports config errors.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.Cluster == nil || c.Cluster.NumDevices() == 0 {
		return fmt.Errorf("engine: empty cluster")
	}
	if c.Theta < 0 {
		return fmt.Errorf("engine: negative Theta %g", c.Theta)
	}
	if c.MaxPrefillTokens <= 0 || c.MaxPrefillRequests <= 0 || c.MaxRunning <= 0 {
		return fmt.Errorf("engine: batching limits must be positive")
	}
	if err := c.Chaos.Validate(); err != nil {
		return err
	}
	return nil
}

// Result is what an engine run produces.
type Result struct {
	Engine string
	// Sink is the measurement sink the run fed — the injected Config.Sink,
	// or the run's own exact recorder by default. Always non-nil.
	Sink metrics.Sink
	// Recorder is the exact record store when the run measured exactly
	// (the default); nil when a custom streaming sink was injected. Exact
	// consumers (golden tables, paper experiments) read it; sink-aware
	// consumers use Sink.Snapshot().
	Recorder *metrics.Recorder
	// Trace is the structured event log (nil with Config.NoTrace).
	Trace *trace.Log

	// CacheCapacity is the KV space the deployment can hold (Fig. 11).
	CacheCapacity int64
	// PeakCacheUsed is the maximum observed total cache allocation.
	PeakCacheUsed int64

	// DenseTimes and AttnTimes are per-decode-iteration module latencies
	// (max across stages × stage count, as §7.3 defines), for Fig. 13.
	DenseTimes []float64
	AttnTimes  []float64

	// HeadSeries and CacheSeries sample per-device head counts and cache
	// utilization over time (Fig. 14), keyed by device ID.
	HeadSeries  map[hardware.DeviceID]*metrics.Series
	CacheSeries map[hardware.DeviceID]*metrics.Series

	Completed int
	Evictions int
	// Migrations counts §5.3 re-dispatch cache moves; MigratedBytes their
	// volume.
	Migrations    int
	MigratedBytes int64

	// Dropped counts requests the run refused or shed (admission control,
	// unservable size, no capacity after preemption); each also produced a
	// Dropped RequestRecord on the sink. Queued counts requests still in
	// the system when the run ended (admitted, neither completed nor
	// dropped) — nonzero only when the horizon cut the run short. Together
	// they close the conservation ledger:
	// offered == Completed + Dropped + Queued.
	Dropped int
	Queued  int
	// Preempted counts priority preemptions: lower-tier victims evicted
	// mid-flight to admit higher-tier work. Victims are requeued, not
	// dropped — a preemption costs latency. PreemptedByTenant attributes
	// the victims (nil when no preemption happened).
	Preempted         int
	PreemptedByTenant map[string]int
	// RecoveryTimes holds, per failure window, the time from the failure
	// instant to the first completion at or after it — a
	// service-restoration measure that is ~0 when surviving replicas mask
	// the failure. ScaleUps/ScaleDowns count autoscaler decisions.
	RecoveryTimes        []float64
	ScaleUps, ScaleDowns int
	// Horizon is the simulated time at which the run ended.
	Horizon float64

	// Events is the number of discrete events the run executed — the
	// denominator-free measure of simulation work that the perf trajectory
	// (internal/bench) divides by wall-clock for events/sec.
	Events uint64
	// LPSolves counts dispatch/ideal-placement LP solves across the run's
	// dispatchers; LPSolvesAvoided counts solves the caching layer skipped.
	// Both are zero for engines without dynamic dispatch.
	LPSolves, LPSolvesAvoided int
	// LPIdealSolves is the subset of LPSolves that were §5.3.1
	// ideal-relaxation solves — the warm-startable (and most expensive)
	// class.
	LPIdealSolves int
	// LPWarmStarts counts solves answered from a cached optimal basis
	// (phase 1 skipped, decision-equivalence certified); LPPhase1Skips
	// counts solver-level phase-1 skips including warm attempts whose
	// result a guard then re-solved cold; LPPatchedRows counts constraint
	// rows mutated in place when recurring LPs were re-posed as patches
	// instead of rebuilt. See internal/dispatch.
	LPWarmStarts, LPPhase1Skips, LPPatchedRows int
	// LPSolveSeconds is wall-clock spent inside simplex solves, the
	// numerator of the perf trajectory's "LP share of engine time".
	LPSolveSeconds float64
}

// Throughput is completed requests per simulated second.
func (r *Result) Throughput() float64 {
	if r.Horizon <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Horizon
}

// Engine is a runnable serving system simulation.
type Engine interface {
	// Name identifies the system ("hetis", "splitwise", "hexgen").
	Name() string
	// Run serves the trace until all requests finish or the horizon
	// (seconds; <= 0 means unbounded) passes.
	Run(reqs []workload.Request, horizon float64) (*Result, error)
	// CacheCapacity reports the KV space of the deployment without
	// running it.
	CacheCapacity() int64
}

// request is the runtime state of one in-flight request. Requests live in
// a per-run slab (see scheduleArrivals): one contiguous arena indexed by
// dense arrival order, so the victim-selection and decode loops chase
// pointers within one allocation instead of across a heap of individual
// structs.
type request struct {
	wl        workload.Request
	generated int // tokens produced so far
	firstTok  float64
	evicted   bool
	// restartCtx is the context length to re-prefill after an eviction.
	restartCtx int
	// hauled marks a request whose KV cache survived a replica failure by
	// being hauled to a survivor: its next "prefill" only re-establishes
	// attention state (one token of prefill work) while cache accounting
	// still charges the full hauled context.
	hauled bool
	// prio is the request's tier priority under chaos (higher preempts
	// lower); 0 outside tiered runs.
	prio int
	// seq is the global admission order (fleetCore.admitArrival assigns
	// it), the key of every "newest first" victim choice. It replaced the
	// fleet-level map[int64]int64 so the selection loops read a field
	// instead of hashing.
	seq int64
}

func (r *request) contextLen() int { return r.wl.PromptLen + r.generated }

// prefillLen is the prompt length the next prefill must process: the
// restart context normally, but a single token for a hauled request whose
// KV already moved with it.
func (r *request) prefillLen() int {
	if r.hauled {
		return 1
	}
	return r.restartCtx
}

func (r *request) done() bool { return r.generated >= r.wl.OutputLen }

// queue is a deque of requests on a power-of-two ring: push, pushFront,
// and pop are all O(1) amortized. pushFront is the requeue path eviction
// and preemption storms hammer (a victim goes back to the head so it
// keeps its place in line); the previous slice-backed version paid a
// full copy whenever the head was already at slot 0. Popped slots are
// nil'd immediately so a served request never stays pinned behind the
// ring's lifetime.
type queue struct {
	ring []*request // empty or power-of-two length
	head int        // index of the front element
	n    int        // live element count
}

func (q *queue) grow() {
	size := 2 * len(q.ring)
	if size == 0 {
		size = 8
	}
	ring := make([]*request, size)
	mask := len(q.ring) - 1
	for i := 0; i < q.n; i++ {
		ring[i] = q.ring[(q.head+i)&mask]
	}
	q.ring = ring
	q.head = 0
}

func (q *queue) push(r *request) {
	if q.n == len(q.ring) {
		q.grow()
	}
	q.ring[(q.head+q.n)&(len(q.ring)-1)] = r
	q.n++
}

func (q *queue) pushFront(r *request) {
	if q.n == len(q.ring) {
		q.grow()
	}
	q.head = (q.head - 1) & (len(q.ring) - 1)
	q.ring[q.head] = r
	q.n++
}

func (q *queue) len() int { return q.n }

func (q *queue) peek() *request {
	if q.n == 0 {
		return nil
	}
	return q.ring[q.head]
}

func (q *queue) pop() *request {
	if q.n == 0 {
		return nil
	}
	r := q.ring[q.head]
	q.ring[q.head] = nil // release: served requests must be collectable
	q.head = (q.head + 1) & (len(q.ring) - 1)
	q.n--
	return r
}

// QueueStorm is the benchmark surface for the (unexported) request deque:
// it fills a queue `fill` deep, requeues `storm` victims at the head —
// the preemption-storm pattern, where the retired slice-backed queue paid
// a full copy per head insert — then drains, returning the pop count so
// callers can assert nothing was lost.
func QueueStorm(fill, storm int) int {
	var q queue
	reqs := make([]request, fill+storm)
	for i := 0; i < fill; i++ {
		q.push(&reqs[i])
	}
	for i := 0; i < storm; i++ {
		q.pushFront(&reqs[fill+i])
	}
	pops := 0
	for q.pop() != nil {
		pops++
	}
	return pops
}

// scheduleArrivals feeds the trace into the engines' admission path.
//
// Request state comes from slab chunks carved on demand, so the hot loops
// walk a handful of large allocations instead of one heap object per
// request; chunks never reallocate, keeping every *request stable for the
// life of the run.
//
// Arrivals feed lazily: instead of pushing all n arrival events into the
// queue up front (for a million-request trace that alone dominated queue
// occupancy), each arrival schedules the next, so at most one arrival is
// pending at a time. Sequence numbers for all n arrivals are reserved up
// front, which makes the lazy feed produce byte-identical (At, seq) event
// keys — and therefore identical tie-breaking — to the eager loop it
// replaced. Traces not sorted by arrival time fall back to the eager loop
// with the same reserved numbering.
// requestSlabChunk is the number of request structs carved per slab chunk.
// Big enough to amortize allocator and GC bookkeeping to noise, small
// enough that a chunk stays in the small-object allocator (256 × 104B ≈
// 26KB < 32KB), where freed chunks recycle through size-class spans
// instead of demanding fresh zeroed pages — the large-object path is
// dramatically slower on scavenger-happy hosts.
const requestSlabChunk = 256

func scheduleArrivals(s *sim.Simulator, reqs []workload.Request, admit func(s *sim.Simulator, r *request)) {
	n := len(reqs)
	if n == 0 {
		return
	}
	// Request state is slab-allocated in fixed-size chunks: pointers stay
	// stable for the run, each chunk amortizes ~1k heap objects into one,
	// and chunks are only carved as arrivals actually fire (the lazy feeder
	// below), so a megascale trace never zeroes hundreds of MB up front.
	var slab []request
	alloc := func(i int) *request {
		if len(slab) == 0 {
			slab = make([]request, requestSlabChunk)
		}
		r := &slab[0]
		slab = slab[1:]
		*r = request{wl: reqs[i], restartCtx: reqs[i].PromptLen}
		return r
	}
	first := s.ReserveSeq(n)
	sorted := true
	for i := 1; i < n; i++ {
		if reqs[i].ArrivalAt < reqs[i-1].ArrivalAt {
			sorted = false
			break
		}
	}
	if !sorted {
		for i := range reqs {
			i := i
			s.ScheduleSeq(first+uint64(i), reqs[i].ArrivalAt, "arrival", func(s *sim.Simulator) {
				admit(s, alloc(i))
			})
		}
		return
	}
	f := &arrivalFeeder{reqs: reqs, first: first, admit: admit, alloc: alloc}
	f.fn = f.fire
	s.ScheduleSeq(first, reqs[0].ArrivalAt, "arrival", f.fn)
}

// arrivalFeeder is the sorted-trace lazy feed as a value: one cached
// callback fires every arrival instead of a fresh closure per request
// (a megascale trace paid one heap allocation per arrival for those).
// next advances monotonically because exactly one arrival is pending at a
// time, and fire schedules the successor before admitting — the identical
// order the closure chain produced.
type arrivalFeeder struct {
	reqs  []workload.Request
	first uint64
	next  int
	admit func(*sim.Simulator, *request)
	alloc func(int) *request
	fn    func(*sim.Simulator)
}

func (f *arrivalFeeder) fire(s *sim.Simulator) {
	i := f.next
	f.next++
	if i+1 < len(f.reqs) {
		s.ScheduleSeq(f.first+uint64(i+1), f.reqs[i+1].ArrivalAt, "arrival", f.fn)
	}
	f.admit(s, f.alloc(i))
}

// newRunSink resolves a run's measurement sink: the injected Config.Sink,
// or a fresh exact recorder pre-sized for the run's request count (every
// request surfaces at most once — as a completion or a drop — so expected
// bounds the record count and the recorder fills one contiguous slab).
// The second return is the recorder view when the sink stores records
// exactly (nil otherwise) — what Result.Recorder carries for exact
// consumers.
func (c Config) newRunSink(expected int) (metrics.Sink, *metrics.Recorder) {
	if c.Sink != nil {
		rec, _ := c.Sink.(*metrics.Recorder)
		return c.Sink, rec
	}
	rec := metrics.NewRecorderCap(expected)
	return rec, rec
}

// newTraceLog resolves a run's event log: nil under NoTrace (trace.Log
// methods are nil-safe no-ops, so engines trace unconditionally).
func (c Config) newTraceLog() *trace.Log {
	if c.NoTrace {
		return nil
	}
	return &trace.Log{}
}

// finishRecord builds the completion record recordFinish and the batched
// finish path share.
func finishRecord(r *request, now float64) metrics.RequestRecord {
	return metrics.RequestRecord{
		ID:         r.wl.ID,
		ArrivalAt:  r.wl.ArrivalAt,
		FirstToken: r.firstTok,
		FinishedAt: now,
		PromptLen:  r.wl.PromptLen,
		OutputLen:  r.wl.OutputLen,
		Tenant:     r.wl.Tenant,
		Evicted:    r.evicted,
	}
}

// recordDrop surfaces a request the run gave up on as a Dropped record:
// it stays in the attainment denominator (see metrics.RequestRecord) but
// contributes no latency samples.
func recordDrop(sink metrics.Sink, r *request, now float64) {
	sink.Observe(metrics.RequestRecord{
		ID:         r.wl.ID,
		ArrivalAt:  r.wl.ArrivalAt,
		FinishedAt: now,
		PromptLen:  r.wl.PromptLen,
		OutputLen:  r.wl.OutputLen,
		Tenant:     r.wl.Tenant,
		Evicted:    r.evicted,
		Dropped:    true,
	})
}

// moduleSeriesCap estimates the decode-iteration count of a trace for
// preallocating the §7.3 DenseTimes/AttnTimes series: iterations are
// bounded by total output tokens (every iteration emits at least one),
// capped so huge traces don't over-reserve — beyond the cap, growth
// amortizes as usual.
func moduleSeriesCap(reqs []workload.Request) int {
	const maxCap = 1 << 20
	total := 0
	for _, r := range reqs {
		total += r.OutputLen
		if total >= maxCap {
			return maxCap
		}
	}
	return total
}

// moduleLatency implements §7.3's metric: the maximum per-stage execution
// time multiplied by the number of stages, reflecting pipeline bubbles.
func moduleLatency(perStage []float64) float64 {
	if len(perStage) == 0 {
		return 0
	}
	max := perStage[0]
	for _, v := range perStage[1:] {
		if v > max {
			max = v
		}
	}
	return max * float64(len(perStage))
}

// pickLeastLoaded returns the index of the instance with the fewest
// outstanding requests; ties break to the lowest index.
func pickLeastLoaded(loads []int) int {
	best := 0
	for i, l := range loads {
		if l < loads[best] {
			best = i
		}
	}
	return best
}

// sortedKeys returns a map's int keys in ascending order, for
// deterministic iteration.
func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// newestFirst sorts request IDs by arrival sequence descending, reading
// each request's seq through the instance's byID index. IDs without a
// live request sort oldest, mirroring the zero-value reads the old
// fleet-level sequence map gave them.
func newestFirst(ids []int64, byID map[int64]*request) []int64 {
	out := append([]int64(nil), ids...)
	seqOf := func(id int64) int64 {
		if r, ok := byID[id]; ok {
			return r.seq
		}
		return 0
	}
	sort.Slice(out, func(i, j int) bool { return seqOf(out[i]) > seqOf(out[j]) })
	return out
}
