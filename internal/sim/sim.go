// Package sim provides a minimal discrete-event simulation kernel used by
// the serving engines. Time is a float64 number of seconds since simulation
// start. Events are scheduled on a hierarchical calendar queue (a time
// wheel) and executed in timestamp order; ties are broken by insertion
// order so runs are fully deterministic.
package sim

import (
	"fmt"
	"math"
	"math/bits"
)

// Event is a callback scheduled to run at a particular virtual time.
//
// Events are pooled: once an event has fired (or been cancelled), its
// struct may be recycled for a later Schedule call. Handles carry the
// generation at which they were issued, so cancelling a handle whose
// event already ran — even if the struct now backs a newer event — is a
// safe no-op.
type Event struct {
	// At is the virtual time, in seconds, at which the event fires.
	At float64
	// Name is an optional label used in error messages and traces.
	Name string
	// Fn is the callback. It receives the owning simulator so it can
	// schedule follow-up events.
	Fn func(s *Simulator)

	seq  uint64 // insertion order, for deterministic tie-breaking
	gen  uint64 // bumped whenever the struct retires, invalidating handles
	tick uint64 // quantized At, the wheel bucket key
	pos  int32  // index within its bucket slice
	lvl  int16  // wheel level, or -1 when not queued
	slot uint16 // slot within the level
}

// Handle identifies one scheduled occurrence of a (possibly recycled)
// Event for cancellation. The zero Handle is inert: Cancel returns
// false for it.
type Handle struct {
	ev  *Event
	gen uint64
}

// Wheel geometry. Eleven levels of 64 slots (6 bits each) cover the full
// 62-bit tick range; at 4096 ticks per simulated second a level-0 slot is
// ~244µs wide, so the dense near-future events these traces produce land
// in level 0 and schedule/pop in O(1).
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 11
	// tickScale is a power of two, so At*tickScale is exact (no rounding)
	// and tick order agrees with At order.
	tickScale = 4096.0
	maxTick   = uint64(1)<<62 - 1
)

// tickOf quantizes a timestamp to its wheel bucket key. Times past the
// representable range (including +Inf) clamp to the last bucket; ordering
// inside a bucket is by exact (At, seq), so clamping never reorders.
func tickOf(at float64) uint64 {
	t := at * tickScale
	if t >= float64(maxTick) {
		return maxTick
	}
	return uint64(t)
}

// calendarQueue is a hierarchical time wheel with absolute slot indexing.
//
// Invariants:
//   - every pending event has tick >= cur (insert below cur rebases);
//   - an event sits at the level of its highest tick digit differing from
//     cur, so for any level >= 1 the slot holding cur's own digit is empty
//     and occupied slots are strictly above it — bucket order is tick
//     order with no straddling;
//   - min() cascades the lowest occupied bucket of levels >= 1 down the
//     wheel until the minimum lives in level 0, advancing cur only to
//     bucket bases that are <= the minimum pending tick.
//
// Ticks quantize time, so one bucket may hold events with different
// timestamps; min() selects by exact (At, seq) inside the bucket, which
// keeps pop order byte-identical to the old binary heap's.
type calendarQueue struct {
	cur uint64
	n   int
	occ [wheelLevels]uint64
	buk [wheelLevels][wheelSlots][]*Event
}

// levelOf places tick t relative to the cursor: the level of the highest
// differing 6-bit digit, or 0 when t equals the cursor.
func (q *calendarQueue) levelOf(t uint64) int {
	x := t ^ q.cur
	if x == 0 {
		return 0
	}
	return (bits.Len64(x) - 1) / wheelBits
}

func (q *calendarQueue) insert(ev *Event) {
	t := ev.tick
	if t < q.cur {
		// Only reachable when a run stopped at its horizon (the cursor may
		// sit at the far-future minimum) and the caller then scheduled an
		// earlier event. Rare, so an O(n) re-bucketing keeps the hot path
		// branch-free.
		q.rebase(t)
	}
	lvl := q.levelOf(t)
	slot := (t >> (uint(lvl) * wheelBits)) & wheelMask
	b := q.buk[lvl][slot]
	ev.lvl = int16(lvl)
	ev.slot = uint16(slot)
	ev.pos = int32(len(b))
	q.buk[lvl][slot] = append(b, ev)
	q.occ[lvl] |= 1 << slot
	q.n++
}

// unlink removes a pending event (swap-remove within its bucket). It never
// moves the cursor, so a peeked-but-not-fired minimum — the horizon case —
// leaves the queue consistent.
func (q *calendarQueue) unlink(ev *Event) {
	lvl, slot := int(ev.lvl), int(ev.slot)
	b := q.buk[lvl][slot]
	last := len(b) - 1
	if int(ev.pos) != last {
		moved := b[last]
		b[ev.pos] = moved
		moved.pos = ev.pos
	}
	b[last] = nil
	q.buk[lvl][slot] = b[:last]
	if last == 0 {
		q.occ[lvl] &^= 1 << slot
	}
	ev.lvl = -1
	q.n--
}

// rebase re-buckets every pending event around a new, lower cursor.
func (q *calendarQueue) rebase(newCur uint64) {
	var pending []*Event
	for lvl := 0; lvl < wheelLevels; lvl++ {
		for occ := q.occ[lvl]; occ != 0; occ &= occ - 1 {
			slot := bits.TrailingZeros64(occ)
			b := q.buk[lvl][slot]
			pending = append(pending, b...)
			for i := range b {
				b[i] = nil
			}
			q.buk[lvl][slot] = b[:0]
		}
		q.occ[lvl] = 0
	}
	q.cur = newCur
	q.n = 0
	for _, ev := range pending {
		q.insert(ev)
	}
}

// min returns the pending event with the smallest (At, seq) without
// removing it, cascading higher-level buckets down the wheel as needed.
// It returns nil when the queue is empty.
func (q *calendarQueue) min() *Event {
	if q.n == 0 {
		return nil
	}
	for {
		lvl := 0
		for lvl < wheelLevels && q.occ[lvl] == 0 {
			lvl++
		}
		slot := bits.TrailingZeros64(q.occ[lvl])
		if lvl == 0 {
			b := q.buk[0][slot]
			best := b[0]
			for _, ev := range b[1:] {
				if ev.At < best.At || (ev.At == best.At && ev.seq < best.seq) {
					best = ev
				}
			}
			return best
		}
		// Cascade: drain the lowest occupied bucket and re-level its events
		// around the bucket's base tick. The base is <= every pending tick
		// (all other occupied slots are above this one), so advancing the
		// cursor to it preserves the tick >= cur invariant.
		shift := uint(lvl) * wheelBits
		base := q.cur&^(uint64(1)<<(shift+wheelBits)-1) | uint64(slot)<<shift
		b := q.buk[lvl][slot]
		// Keep the bucket's capacity for future inserts; the drained events
		// all re-level strictly below lvl (their high digits now match the
		// cursor), so insert never appends to the slice being drained.
		q.buk[lvl][slot] = b[:0]
		q.occ[lvl] &^= 1 << slot
		q.cur = base
		q.n -= len(b)
		for i, ev := range b {
			q.insert(ev)
			b[i] = nil
		}
	}
}

// Simulator owns the virtual clock and the pending event queue.
type Simulator struct {
	now     float64
	queue   calendarQueue
	nextSeq uint64
	stopped bool

	// Executed counts events that have fired, useful as a progress and
	// runaway guard.
	Executed uint64
	// MaxEvents, when non-zero, aborts Run with an error after that many
	// events. It protects experiments from accidental infinite loops.
	MaxEvents uint64

	// free recycles retired (fired or cancelled) events; Schedule pops
	// from it before allocating. Generation counters keep stale handles
	// from aliasing recycled structs.
	free []*Event
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Schedule registers fn to run at absolute time at. Scheduling in the past
// (before Now) is clamped to Now; this makes "run immediately after current
// event" trivially safe. It returns the event so callers may cancel it.
func (s *Simulator) Schedule(at float64, name string, fn func(s *Simulator)) Handle {
	if math.IsNaN(at) {
		panic(fmt.Sprintf("sim: NaN schedule time for event %q", name))
	}
	if at < s.now {
		at = s.now
	}
	var ev *Event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free = s.free[:n-1]
		*ev = Event{At: at, Name: name, Fn: fn, seq: s.nextSeq, gen: ev.gen}
	} else {
		ev = &Event{At: at, Name: name, Fn: fn, seq: s.nextSeq}
	}
	s.nextSeq++
	ev.tick = tickOf(at)
	s.queue.insert(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// ReserveSeq pre-allocates n insertion-order slots and returns the first.
// Callers that know a batch of future events up front (the engines' lazy
// arrival feeders) use it to schedule those events later — interleaved
// with other work — while keeping the exact tie-break order an eager
// up-front scheduling loop would have produced. ScheduleSeq consumes the
// reserved numbers.
func (s *Simulator) ReserveSeq(n int) uint64 {
	first := s.nextSeq
	s.nextSeq += uint64(n)
	return first
}

// ScheduleSeq is Schedule with an explicit insertion-order number obtained
// from ReserveSeq. The timestamp rules are identical to Schedule's.
func (s *Simulator) ScheduleSeq(seq uint64, at float64, name string, fn func(s *Simulator)) Handle {
	if math.IsNaN(at) {
		panic(fmt.Sprintf("sim: NaN schedule time for event %q", name))
	}
	if at < s.now {
		at = s.now
	}
	var ev *Event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free = s.free[:n-1]
		*ev = Event{At: at, Name: name, Fn: fn, seq: seq, gen: ev.gen}
	} else {
		ev = &Event{At: at, Name: name, Fn: fn, seq: seq}
	}
	ev.tick = tickOf(at)
	s.queue.insert(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// After schedules fn to run delay seconds after the current time.
func (s *Simulator) After(delay float64, name string, fn func(s *Simulator)) Handle {
	if delay < 0 {
		delay = 0
	}
	return s.Schedule(s.now+delay, name, fn)
}

// Cancel removes the handle's event from the queue if it is still
// pending. It returns false — safely, with no side effects — for the
// zero Handle, an already-cancelled handle, or a stale handle whose
// event has fired (the generation check makes aliasing a recycled
// struct impossible). Cancelled event structs are recycled like fired
// ones.
func (s *Simulator) Cancel(h Handle) bool {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.lvl < 0 {
		return false
	}
	s.queue.unlink(ev)
	ev.gen++ // retire: outstanding handles to this occurrence go stale
	ev.Fn = nil
	s.free = append(s.free, ev)
	return true
}

// Stop makes Run return after the current event completes. Pending events
// stay in the queue; a subsequent Run resumes them.
func (s *Simulator) Stop() { s.stopped = true }

// Pending reports how many events remain in the queue.
func (s *Simulator) Pending() int { return s.queue.n }

// Run executes events in time order until the queue drains, Stop is called,
// or the optional horizon (seconds; <=0 means unbounded) is passed. Events
// scheduled exactly at the horizon still run.
//
// With a positive horizon, Run always leaves the clock at the horizon when
// it returns without pending work: draining the queue early advances Now to
// the horizon instead of freezing it at the last event. Rates measured over
// the run (throughput, goodput) therefore divide by the window the caller
// asked for, so two systems serving the same trace share a denominator even
// when one finishes sooner.
func (s *Simulator) Run(horizon float64) error {
	s.stopped = false
	for s.queue.n > 0 && !s.stopped {
		ev := s.queue.min()
		if horizon > 0 && ev.At > horizon {
			// Peeked, not popped: the event stays queued for a later Run.
			s.now = horizon
			return nil
		}
		if ev.At < s.now {
			return fmt.Errorf("sim: time went backwards: event %q at %g < now %g", ev.Name, ev.At, s.now)
		}
		s.now = ev.At
		// Dispatch every event sharing this timestamp in one batch: the
		// horizon and monotonicity checks above hold for the whole batch,
		// so the inner loop skips them.
		at := ev.At
		for {
			s.queue.unlink(ev)
			s.Executed++
			if s.MaxEvents > 0 && s.Executed > s.MaxEvents {
				return fmt.Errorf("sim: exceeded MaxEvents=%d (runaway simulation?)", s.MaxEvents)
			}
			ev.Fn(s)
			ev.Fn = nil // drop the closure before pooling
			ev.gen++    // retire: handles to the fired occurrence go stale
			s.free = append(s.free, ev)
			if s.stopped || s.queue.n == 0 {
				break
			}
			ev = s.queue.min()
			if ev.At != at {
				break
			}
		}
	}
	if horizon > 0 && !s.stopped && s.queue.n == 0 && s.now < horizon {
		s.now = horizon
	}
	return nil
}

// RunUntilIdle runs with no horizon and panics on internal error; it is a
// convenience for tests where errors indicate bugs.
func (s *Simulator) RunUntilIdle() {
	if err := s.Run(0); err != nil {
		panic(err)
	}
}

// Alive reports whether the handle's event is still pending: scheduled and
// neither fired nor cancelled. The zero Handle and stale handles (whose
// event ran, possibly with the struct since recycled) are not alive.
func (s *Simulator) Alive(h Handle) bool {
	ev := h.ev
	return ev != nil && ev.gen == h.gen && ev.lvl >= 0
}

// Group collects the handles of related scheduled events so they can be
// cancelled together — the primitive instance-failure handling is built on:
// a serving replica tracks its in-flight iteration events in a Group and a
// kill event aborts them all. The zero Group is ready to use.
//
// Handles of events that have already fired go stale on their own (see
// Handle), so tracking every event a component schedules is safe; Track
// prunes dead handles periodically, keeping the group's memory proportional
// to the live event count rather than the total ever scheduled.
type Group struct {
	handles []Handle
	// pruneAt is the adaptive prune threshold: twice the live count found
	// by the previous prune, floored at 64. A fixed threshold would make a
	// group holding more than that many live handles rescan the whole
	// slice on every Track — O(n²) across n Tracks.
	pruneAt int
	// prunes counts prune passes, for regression tests on the amortized
	// cost.
	prunes int
}

// Track registers a handle with the group. When the group has accumulated
// enough entries, dead handles (fired or cancelled) are pruned in place, so
// long-running components can track every event they schedule without the
// group growing with simulation length. The threshold doubles with the
// surviving live count, so each handle is rescanned O(1) times on average
// no matter how many stay live.
func (g *Group) Track(s *Simulator, h Handle) {
	g.handles = append(g.handles, h)
	if g.pruneAt < 64 {
		g.pruneAt = 64
	}
	if len(g.handles) < g.pruneAt {
		return
	}
	g.prunes++
	live := g.handles[:0]
	for _, old := range g.handles {
		if s.Alive(old) {
			live = append(live, old)
		}
	}
	for i := len(live); i < len(g.handles); i++ {
		g.handles[i] = Handle{}
	}
	g.handles = live
	g.pruneAt = 2 * len(live)
	if g.pruneAt < 64 {
		g.pruneAt = 64
	}
}

// Len reports the number of tracked handles (live and stale, between
// prunes).
func (g *Group) Len() int { return len(g.handles) }

// CancelAll cancels every still-pending tracked event and empties the
// group, returning how many events were actually cancelled. Stale handles
// are skipped safely, so CancelAll after events have fired is a no-op for
// them.
func (g *Group) CancelAll(s *Simulator) int {
	n := 0
	for _, h := range g.handles {
		if s.Cancel(h) {
			n++
		}
	}
	g.handles = g.handles[:0]
	g.pruneAt = 0
	return n
}
