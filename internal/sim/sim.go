// Package sim provides a minimal discrete-event simulation kernel used by
// the serving engines. Time is a float64 number of seconds since simulation
// start. Events are scheduled on a binary heap and executed in timestamp
// order; ties are broken by insertion order so runs are fully deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a callback scheduled to run at a particular virtual time.
//
// Events are pooled: once an event has fired (or been cancelled), its
// struct may be recycled for a later Schedule call. Handles carry the
// generation at which they were issued, so cancelling a handle whose
// event already ran — even if the struct now backs a newer event — is a
// safe no-op.
type Event struct {
	// At is the virtual time, in seconds, at which the event fires.
	At float64
	// Name is an optional label used in error messages and traces.
	Name string
	// Fn is the callback. It receives the owning simulator so it can
	// schedule follow-up events.
	Fn func(s *Simulator)

	seq   uint64 // insertion order, for deterministic tie-breaking
	index int    // heap index
	gen   uint64 // bumped whenever the struct retires, invalidating handles
}

// Handle identifies one scheduled occurrence of a (possibly recycled)
// Event for cancellation. The zero Handle is inert: Cancel returns
// false for it.
type Handle struct {
	ev  *Event
	gen uint64
}

// eventQueue implements heap.Interface ordered by (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Simulator owns the virtual clock and the pending event queue.
type Simulator struct {
	now     float64
	queue   eventQueue
	nextSeq uint64
	stopped bool

	// Executed counts events that have fired, useful as a progress and
	// runaway guard.
	Executed uint64
	// MaxEvents, when non-zero, aborts Run with an error after that many
	// events. It protects experiments from accidental infinite loops.
	MaxEvents uint64

	// free recycles retired (fired or cancelled) events; Schedule pops
	// from it before allocating. Generation counters keep stale handles
	// from aliasing recycled structs.
	free []*Event
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Schedule registers fn to run at absolute time at. Scheduling in the past
// (before Now) is clamped to Now; this makes "run immediately after current
// event" trivially safe. It returns the event so callers may cancel it.
func (s *Simulator) Schedule(at float64, name string, fn func(s *Simulator)) Handle {
	if math.IsNaN(at) {
		panic(fmt.Sprintf("sim: NaN schedule time for event %q", name))
	}
	if at < s.now {
		at = s.now
	}
	var ev *Event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free = s.free[:n-1]
		*ev = Event{At: at, Name: name, Fn: fn, seq: s.nextSeq, gen: ev.gen}
	} else {
		ev = &Event{At: at, Name: name, Fn: fn, seq: s.nextSeq}
	}
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return Handle{ev: ev, gen: ev.gen}
}

// After schedules fn to run delay seconds after the current time.
func (s *Simulator) After(delay float64, name string, fn func(s *Simulator)) Handle {
	if delay < 0 {
		delay = 0
	}
	return s.Schedule(s.now+delay, name, fn)
}

// Cancel removes the handle's event from the queue if it is still
// pending. It returns false — safely, with no side effects — for the
// zero Handle, an already-cancelled handle, or a stale handle whose
// event has fired (the generation check makes aliasing a recycled
// struct impossible). Cancelled event structs are recycled like fired
// ones.
func (s *Simulator) Cancel(h Handle) bool {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.index < 0 || ev.index >= len(s.queue) || s.queue[ev.index] != ev {
		return false
	}
	heap.Remove(&s.queue, ev.index)
	ev.gen++ // retire: outstanding handles to this occurrence go stale
	ev.Fn = nil
	s.free = append(s.free, ev)
	return true
}

// Stop makes Run return after the current event completes. Pending events
// stay in the queue; a subsequent Run resumes them.
func (s *Simulator) Stop() { s.stopped = true }

// Pending reports how many events remain in the queue.
func (s *Simulator) Pending() int { return len(s.queue) }

// Run executes events in time order until the queue drains, Stop is called,
// or the optional horizon (seconds; <=0 means unbounded) is passed. Events
// scheduled exactly at the horizon still run.
//
// With a positive horizon, Run always leaves the clock at the horizon when
// it returns without pending work: draining the queue early advances Now to
// the horizon instead of freezing it at the last event. Rates measured over
// the run (throughput, goodput) therefore divide by the window the caller
// asked for, so two systems serving the same trace share a denominator even
// when one finishes sooner.
func (s *Simulator) Run(horizon float64) error {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		if horizon > 0 && s.queue[0].At > horizon {
			s.now = horizon
			return nil
		}
		ev := heap.Pop(&s.queue).(*Event)
		if ev.At < s.now {
			return fmt.Errorf("sim: time went backwards: event %q at %g < now %g", ev.Name, ev.At, s.now)
		}
		s.now = ev.At
		s.Executed++
		if s.MaxEvents > 0 && s.Executed > s.MaxEvents {
			return fmt.Errorf("sim: exceeded MaxEvents=%d (runaway simulation?)", s.MaxEvents)
		}
		ev.Fn(s)
		ev.Fn = nil // drop the closure before pooling
		ev.gen++    // retire: handles to the fired occurrence go stale
		s.free = append(s.free, ev)
	}
	if horizon > 0 && !s.stopped && len(s.queue) == 0 && s.now < horizon {
		s.now = horizon
	}
	return nil
}

// RunUntilIdle runs with no horizon and panics on internal error; it is a
// convenience for tests where errors indicate bugs.
func (s *Simulator) RunUntilIdle() {
	if err := s.Run(0); err != nil {
		panic(err)
	}
}

// Alive reports whether the handle's event is still pending: scheduled and
// neither fired nor cancelled. The zero Handle and stale handles (whose
// event ran, possibly with the struct since recycled) are not alive.
func (s *Simulator) Alive(h Handle) bool {
	ev := h.ev
	return ev != nil && ev.gen == h.gen && ev.index >= 0 && ev.index < len(s.queue) && s.queue[ev.index] == ev
}

// Group collects the handles of related scheduled events so they can be
// cancelled together — the primitive instance-failure handling is built on:
// a serving replica tracks its in-flight iteration events in a Group and a
// kill event aborts them all. The zero Group is ready to use.
//
// Handles of events that have already fired go stale on their own (see
// Handle), so tracking every event a component schedules is safe; Track
// prunes dead handles periodically, keeping the group's memory proportional
// to the live event count rather than the total ever scheduled.
type Group struct {
	handles []Handle
}

// Track registers a handle with the group. When the group has accumulated
// enough entries, dead handles (fired or cancelled) are pruned in place, so
// long-running components can track every event they schedule without the
// group growing with simulation length.
func (g *Group) Track(s *Simulator, h Handle) {
	g.handles = append(g.handles, h)
	if len(g.handles) >= 64 {
		live := g.handles[:0]
		for _, old := range g.handles {
			if s.Alive(old) {
				live = append(live, old)
			}
		}
		for i := len(live); i < len(g.handles); i++ {
			g.handles[i] = Handle{}
		}
		g.handles = live
	}
}

// Len reports the number of tracked handles (live and stale, between
// prunes).
func (g *Group) Len() int { return len(g.handles) }

// CancelAll cancels every still-pending tracked event and empties the
// group, returning how many events were actually cancelled. Stale handles
// are skipped safely, so CancelAll after events have fired is a no-op for
// them.
func (g *Group) CancelAll(s *Simulator) int {
	n := 0
	for _, h := range g.handles {
		if s.Cancel(h) {
			n++
		}
	}
	g.handles = g.handles[:0]
	return n
}
