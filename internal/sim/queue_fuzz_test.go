package sim

import (
	"math"
	"testing"
)

// FuzzQueueEquivalence drives the calendar queue and the frozen binary
// heap (reference_queue.go) through the same random schedule/cancel/pop
// sequence and requires identical (At, seq) pop orders. The byte stream
// decodes to ops of three bytes: the first selects the op, the next two
// parameterize it. Timestamps deliberately include sub-tick jitter (so
// buckets hold distinct At values), exact ties (so seq breaks them), and
// jumps below the wheel cursor (so the rebase path runs).
func FuzzQueueEquivalence(f *testing.F) {
	f.Add([]byte{})
	// Dense same-timestamp burst: one bucket, seq tie-breaks.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 3, 0, 0})
	// Spread inserts then drain.
	f.Add([]byte{0, 10, 1, 0, 200, 7, 0, 3, 255, 1, 90, 0, 3, 0, 0, 3, 0, 0, 3, 0, 0})
	// Cancel-heavy.
	f.Add([]byte{0, 5, 0, 0, 6, 0, 2, 0, 0, 0, 7, 0, 2, 1, 0, 3, 0, 0, 3, 0, 0})
	// Far-future then near-past: exercises cascades and rebase.
	f.Add([]byte{1, 255, 255, 3, 0, 0, 0, 1, 1, 3, 0, 0, 1, 200, 0, 0, 2, 2, 3, 0, 0, 3, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		var (
			cal  calendarQueue
			ref  referenceQueue
			seq  uint64
			live []struct {
				ev  *Event
				ref *refEvent
			}
		)
		for i := 0; i+2 < len(data); i += 3 {
			op, a, b := data[i], data[i+1], data[i+2]
			switch op % 4 {
			case 0, 1: // schedule
				// Coarse part lands across buckets and levels; the /7.0
				// fraction is not tick-aligned, so buckets mix distinct
				// timestamps. op==1 widens the range to force level >= 1
				// cascades.
				at := float64(a)/7.0 + float64(b)
				if op%4 == 1 {
					at = float64(a)*97.0 + float64(b)/3.0
				}
				ev := &Event{At: at, seq: seq, tick: tickOf(at)}
				cal.insert(ev)
				re := ref.refSchedule(at, seq)
				seq++
				live = append(live, struct {
					ev  *Event
					ref *refEvent
				}{ev, re})
			case 2: // cancel
				if len(live) == 0 {
					continue
				}
				k := (int(a)<<8 | int(b)) % len(live)
				v := live[k]
				live = append(live[:k], live[k+1:]...)
				gotLive := v.ev.lvl >= 0
				refLive := v.ref.index >= 0
				if gotLive != refLive {
					t.Fatalf("liveness diverged for seq=%d: calendar=%v reference=%v", v.ev.seq, gotLive, refLive)
				}
				if gotLive {
					cal.unlink(v.ev)
					ref.refCancel(v.ref)
				}
			case 3: // pop the minimum
				got := cal.min()
				want := ref.refPop()
				if (got == nil) != (want == nil) {
					t.Fatalf("emptiness diverged: calendar=%v reference=%v", got != nil, want != nil)
				}
				if got == nil {
					continue
				}
				if got.At != want.at || got.seq != want.seq {
					t.Fatalf("pop diverged: calendar (At=%g, seq=%d) vs reference (At=%g, seq=%d)",
						got.At, got.seq, want.at, want.seq)
				}
				cal.unlink(got)
			}
			if cal.n != ref.Len() {
				t.Fatalf("length diverged: calendar=%d reference=%d", cal.n, ref.Len())
			}
		}
		// Drain both fully: every remaining event must come out in the
		// same order.
		for {
			got := cal.min()
			want := ref.refPop()
			if (got == nil) != (want == nil) {
				t.Fatalf("drain emptiness diverged: calendar=%v reference=%v", got != nil, want != nil)
			}
			if got == nil {
				break
			}
			if got.At != want.at || got.seq != want.seq {
				t.Fatalf("drain diverged: calendar (At=%g, seq=%d) vs reference (At=%g, seq=%d)",
					got.At, got.seq, want.at, want.seq)
			}
			cal.unlink(got)
		}
	})
}

// TestQueueInfinityClamp pins the tick clamp: events past the
// representable tick range (including +Inf) still order by exact (At, seq)
// within the shared overflow bucket.
func TestQueueInfinityClamp(t *testing.T) {
	var q calendarQueue
	huge := float64(maxTick) // well past the clamp once scaled by tickScale
	evs := []*Event{
		{At: math.Inf(1), seq: 0},
		{At: huge * 2, seq: 1},
		{At: huge, seq: 2},
		{At: huge, seq: 3},
	}
	for _, ev := range evs {
		ev.tick = tickOf(ev.At)
		q.insert(ev)
	}
	wantSeq := []uint64{2, 3, 1, 0}
	for i, want := range wantSeq {
		got := q.min()
		if got.seq != want {
			t.Fatalf("pop %d: got seq %d, want %d", i, got.seq, want)
		}
		q.unlink(got)
	}
	if q.n != 0 {
		t.Fatalf("queue not drained: n=%d", q.n)
	}
}
