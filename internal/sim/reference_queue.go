// Frozen copy of the binary-heap event queue that the calendar queue in
// sim.go replaced. It exists only as a differential-testing oracle (see
// FuzzQueueEquivalence): random schedule/cancel/pop sequences must produce
// the same (At, seq) order from both implementations. Mirrors the frozen
// reference solver in internal/lp/reference.go.
//
// Do not optimize this file. Its value is that it stays byte-for-byte the
// ordering logic the goldens were recorded against.
package sim

import "container/heap"

// refEvent is the oracle's pending entry: the ordering key only, since the
// oracle never fires callbacks.
type refEvent struct {
	at    float64
	seq   uint64
	index int
}

// referenceQueue implements heap.Interface ordered by (at, seq), exactly
// as the retired eventQueue did.
type referenceQueue []*refEvent

func (q referenceQueue) Len() int { return len(q) }

func (q referenceQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q referenceQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *referenceQueue) Push(x any) {
	ev := x.(*refEvent)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *referenceQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// refSchedule inserts an entry and returns it for later cancellation.
func (q *referenceQueue) refSchedule(at float64, seq uint64) *refEvent {
	ev := &refEvent{at: at, seq: seq}
	heap.Push(q, ev)
	return ev
}

// refCancel removes a pending entry; stale entries (already popped) report
// false, matching Simulator.Cancel's contract.
func (q *referenceQueue) refCancel(ev *refEvent) bool {
	if ev.index < 0 {
		return false
	}
	heap.Remove(q, ev.index)
	return true
}

// refPop removes and returns the minimum entry, or nil when empty.
func (q *referenceQueue) refPop() *refEvent {
	if len(*q) == 0 {
		return nil
	}
	return heap.Pop(q).(*refEvent)
}
