package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRunOrder(t *testing.T) {
	s := New()
	var got []float64
	for _, at := range []float64{3, 1, 2, 0.5, 2} {
		at := at
		s.Schedule(at, "e", func(s *Simulator) { got = append(got, at) })
	}
	s.RunUntilIdle()
	want := []float64{0.5, 1, 2, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order mismatch at %d: got %v want %v", i, got, want)
		}
	}
}

func TestTieBreakInsertionOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1.0, "tie", func(s *Simulator) { got = append(got, i) })
	}
	s.RunUntilIdle()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("ties not FIFO: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New()
	s.Schedule(5, "a", func(s *Simulator) {
		if s.Now() != 5 {
			t.Errorf("Now=%g want 5", s.Now())
		}
		s.After(2.5, "b", func(s *Simulator) {
			if s.Now() != 7.5 {
				t.Errorf("Now=%g want 7.5", s.Now())
			}
		})
	})
	s.RunUntilIdle()
	if s.Now() != 7.5 {
		t.Fatalf("final Now=%g want 7.5", s.Now())
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	s := New()
	ran := false
	s.Schedule(10, "first", func(s *Simulator) {
		s.Schedule(3, "past", func(s *Simulator) {
			ran = true
			if s.Now() != 10 {
				t.Errorf("past event ran at %g want 10", s.Now())
			}
		})
	})
	s.RunUntilIdle()
	if !ran {
		t.Fatal("past-scheduled event never ran")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	ev := s.Schedule(1, "x", func(s *Simulator) { ran = true })
	if !s.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(ev) {
		t.Fatal("double Cancel returned true")
	}
	s.RunUntilIdle()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestCancelMiddleOfQueue(t *testing.T) {
	s := New()
	var got []string
	a := s.Schedule(1, "a", func(s *Simulator) { got = append(got, "a") })
	b := s.Schedule(2, "b", func(s *Simulator) { got = append(got, "b") })
	c := s.Schedule(3, "c", func(s *Simulator) { got = append(got, "c") })
	_ = a
	_ = c
	s.Cancel(b)
	s.RunUntilIdle()
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("got %v want [a c]", got)
	}
}

// TestCancelStaleHandleIsNoop pins the generation counter: cancelling a
// handle whose event already fired must be a safe no-op even when the
// pooled Event struct has been recycled into a newer scheduled event.
func TestCancelStaleHandleIsNoop(t *testing.T) {
	s := New()
	fired := 0
	stale := s.Schedule(1, "first", func(s *Simulator) { fired++ })
	s.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("first event fired %d times", fired)
	}
	fresh := s.Schedule(2, "second", func(s *Simulator) { fired++ })
	if fresh.ev != stale.ev {
		t.Fatalf("test setup: pool did not recycle the fired event struct")
	}
	if s.Cancel(stale) {
		t.Fatal("stale handle cancelled a recycled event")
	}
	s.RunUntilIdle()
	if fired != 2 {
		t.Fatalf("second event did not survive the stale cancel (fired=%d)", fired)
	}
	// The fresh handle is now stale too (its event fired).
	if s.Cancel(fresh) {
		t.Fatal("handle of a fired event reported a cancel")
	}
}

// TestCancelledEventRecycled pins that cancelled events return to the
// pool and their handles retire: a double Cancel through the recycled
// struct must not cancel the successor.
func TestCancelledEventRecycled(t *testing.T) {
	s := New()
	ran := false
	a := s.Schedule(1, "a", func(s *Simulator) {})
	if !s.Cancel(a) {
		t.Fatal("live handle failed to cancel")
	}
	b := s.Schedule(1, "b", func(s *Simulator) { ran = true })
	if b.ev != a.ev {
		t.Fatalf("test setup: cancelled struct was not recycled")
	}
	if s.Cancel(a) {
		t.Fatal("retired handle cancelled its successor")
	}
	s.RunUntilIdle()
	if !ran {
		t.Fatal("successor event did not run")
	}
	if s.Cancel(Handle{}) {
		t.Fatal("zero Handle cancelled something")
	}
}

func TestHorizon(t *testing.T) {
	s := New()
	count := 0
	s.Schedule(1, "in", func(s *Simulator) { count++ })
	s.Schedule(5, "at", func(s *Simulator) { count++ })
	s.Schedule(5.0001, "out", func(s *Simulator) { count++ })
	if err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count=%d want 2 (horizon-inclusive)", count)
	}
	if s.Now() != 5 {
		t.Fatalf("Now=%g want horizon 5", s.Now())
	}
	// Resuming runs the rest.
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count=%d want 3 after resume", count)
	}
}

// TestHorizonDrainAdvancesClock pins the horizon-denominator fix: a run
// whose queue drains before a positive horizon still ends with Now at the
// horizon, so rates measured over the run divide by the requested window,
// not by the last event time.
func TestHorizonDrainAdvancesClock(t *testing.T) {
	s := New()
	fired := 0
	s.Schedule(1, "only", func(s *Simulator) { fired++ })
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired=%d want 1", fired)
	}
	if s.Now() != 10 {
		t.Fatalf("Now=%g want horizon 10 after early drain", s.Now())
	}
	// Unbounded runs keep the last-event clock: there is no window to
	// advance to.
	s2 := New()
	s2.Schedule(1, "only", func(s *Simulator) {})
	s2.RunUntilIdle()
	if s2.Now() != 1 {
		t.Fatalf("unbounded Now=%g want 1", s2.Now())
	}
	// Stop leaves the clock where it stopped: pending work resumes later.
	s3 := New()
	s3.Schedule(1, "stop", func(s *Simulator) { s.Stop() })
	s3.Schedule(2, "later", func(s *Simulator) {})
	if err := s3.Run(10); err != nil {
		t.Fatal(err)
	}
	if s3.Now() != 1 {
		t.Fatalf("stopped Now=%g want 1 (pending work remains)", s3.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	s.Schedule(1, "a", func(s *Simulator) { count++; s.Stop() })
	s.Schedule(2, "b", func(s *Simulator) { count++ })
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count=%d want 1 after Stop", count)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending=%d want 1", s.Pending())
	}
}

func TestMaxEventsGuard(t *testing.T) {
	s := New()
	s.MaxEvents = 100
	var loop func(s *Simulator)
	loop = func(s *Simulator) { s.After(1, "loop", loop) }
	s.Schedule(0, "loop", loop)
	if err := s.Run(0); err == nil {
		t.Fatal("expected runaway error, got nil")
	}
}

func TestPropertyOrderingRandom(t *testing.T) {
	// Property: for any multiset of schedule times, execution order is the
	// sorted order of the times.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		times := make([]float64, 0, int(n)%64+1)
		var got []float64
		for i := 0; i < cap(times); i++ {
			at := rng.Float64() * 100
			times = append(times, at)
			s.Schedule(at, "r", func(s *Simulator) { got = append(got, at) })
		}
		s.RunUntilIdle()
		sort.Float64s(times)
		if len(got) != len(times) {
			return false
		}
		for i := range times {
			if got[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on NaN schedule time")
		}
	}()
	s := New()
	zero := 0.0
	nan := zero / zero // NaN without importing math in the test
	s.Schedule(nan, "bad", func(*Simulator) {})
}
