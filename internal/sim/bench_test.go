package sim

import "testing"

// BenchmarkScheduleRun measures event-kernel throughput: schedule and
// drain 1024 events per iteration.
func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for k := 0; k < 1024; k++ {
			s.Schedule(float64(k%37), "e", func(*Simulator) {})
		}
		s.RunUntilIdle()
	}
}
